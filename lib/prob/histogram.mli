(** Fixed-width bucket histograms (Figure 9(c) error histogram) and
    arbitrary-edge range counters (Table 3 error-range counts). *)

type t
(** A histogram with fixed-width buckets over a closed range. *)

val create : lo:float -> hi:float -> buckets:int -> t
(** [create ~lo ~hi ~buckets] divides [lo, hi] into [buckets] equal-width
    buckets.  Values below [lo] count into the first bucket, values at or
    above [hi] into the last (so total mass is conserved).
    @raise Invalid_argument if [buckets <= 0] or [hi <= lo]. *)

val add : t -> float -> unit
(** Record one observation. *)

val counts : t -> int array
(** Per-bucket counts, length [buckets]. *)

val total : t -> int
(** Number of observations recorded. *)

val bucket_bounds : t -> int -> float * float
(** [(lo_i, hi_i)] of bucket [i]. *)

val pp : Format.formatter -> t -> unit
(** Render as "[lo, hi): count" lines. *)

(** Counting into caller-specified half-open ranges, e.g. the paper's
    Table 3 ranges [0, 0.01], (0.01, 0.1], (0.1, 1], (1, 3], (3, ∞). *)
module Ranges : sig
  type t

  val create : float list -> t
  (** [create edges] builds ranges (-∞, e1], (e1, e2], ..., (ek, ∞) from the
      strictly increasing [edges]. *)

  val add : t -> float -> unit
  val counts : t -> int array
  (** Length [List.length edges + 1]. *)

  val labels : t -> string list
  (** Range labels aligned with {!counts}. *)
end
