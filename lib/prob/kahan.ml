type t = { mutable sum : float; mutable compensation : float }

let create () = { sum = 0.; compensation = 0. }

(* Neumaier's variant: also correct when the addend dominates the sum. *)
let add t x =
  let s = t.sum +. x in
  let c =
    if Float.abs t.sum >= Float.abs x then t.sum -. s +. x else x -. s +. t.sum
  in
  t.compensation <- t.compensation +. c;
  t.sum <- s

let total t = t.sum +. t.compensation

let sum_array a =
  let t = create () in
  Array.iter (add t) a;
  total t

let sum_list l =
  let t = create () in
  List.iter (add t) l;
  total t
