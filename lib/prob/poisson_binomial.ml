let check ps =
  Array.iter
    (fun p ->
      if p < 0. || p > 1. || Float.is_nan p then
        invalid_arg "Poisson_binomial: probability outside [0, 1]")
    ps

(* dp.(k) = Pr(k successes among the trials seen so far). *)
let pmf ps =
  check ps;
  let n = Array.length ps in
  let dp = Array.make (n + 1) 0. in
  dp.(0) <- 1.;
  Array.iteri
    (fun i p ->
      for k = i + 1 downto 1 do
        dp.(k) <- (dp.(k) *. (1. -. p)) +. (dp.(k - 1) *. p)
      done;
      dp.(0) <- dp.(0) *. (1. -. p))
    ps;
  dp

let tail_at_least ps k =
  let dp = pmf ps in
  let n = Array.length ps in
  if k <= 0 then 1.
  else if k > n then 0.
  else begin
    let acc = Kahan.create () in
    for j = k to n do
      Kahan.add acc dp.(j)
    done;
    Kahan.total acc
  end

let cdf ps k =
  let n = Array.length ps in
  if k >= n then 1. else if k < 0 then 0. else 1. -. tail_at_least ps (k + 1)

let expectation ps = Kahan.sum_array ps

let variance ps =
  Kahan.sum_array (Array.map (fun p -> p *. (1. -. p)) ps)

let majority_correct qs =
  let n = Array.length qs in
  if n = 0 then 0.5
  else if n mod 2 = 1 then tail_at_least qs ((n / 2) + 1)
  else begin
    let dp = pmf qs in
    let acc = Kahan.create () in
    for k = (n / 2) + 1 to n do
      Kahan.add acc dp.(k)
    done;
    Kahan.add acc (0.5 *. dp.(n / 2));
    Kahan.total acc
  end
