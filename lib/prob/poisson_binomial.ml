let check ps =
  Array.iter
    (fun p ->
      if p < 0. || p > 1. || Float.is_nan p then
        invalid_arg "Poisson_binomial: probability outside [0, 1]")
    ps

(* dp.(k) = Pr(k successes among the trials seen so far). *)
let pmf ps =
  check ps;
  let n = Array.length ps in
  let dp = Array.make (n + 1) 0. in
  dp.(0) <- 1.;
  Array.iteri
    (fun i p ->
      for k = i + 1 downto 1 do
        dp.(k) <- (dp.(k) *. (1. -. p)) +. (dp.(k - 1) *. p)
      done;
      dp.(0) <- dp.(0) *. (1. -. p))
    ps;
  dp

let tail_at_least ps k =
  let dp = pmf ps in
  let n = Array.length ps in
  if k <= 0 then 1.
  else if k > n then 0.
  else begin
    let acc = Kahan.create () in
    for j = k to n do
      Kahan.add acc dp.(j)
    done;
    Kahan.total acc
  end

let cdf ps k =
  let n = Array.length ps in
  if k >= n then 1. else if k < 0 then 0. else 1. -. tail_at_least ps (k + 1)

let expectation ps = Kahan.sum_array ps

let variance ps =
  Kahan.sum_array (Array.map (fun p -> p *. (1. -. p)) ps)

let majority_correct qs =
  let n = Array.length qs in
  if n = 0 then 0.5
  else if n mod 2 = 1 then tail_at_least qs ((n / 2) + 1)
  else begin
    let dp = pmf qs in
    let acc = Kahan.create () in
    for k = (n / 2) + 1 to n do
      Kahan.add acc dp.(k)
    done;
    Kahan.add acc (0.5 *. dp.(n / 2));
    Kahan.total acc
  end

(* ---- Incremental pmf maintenance -------------------------------------- *)

module Incremental = struct
  type t = {
    mutable dp : float array;   (* dp.(k) = Pr(k successes), length >= n+1 *)
    mutable n : int;
    mutable ps : float list;    (* trial multiset, for rebuilds *)
    mutable removals : int;
    mutable rebuilds : int;
  }

  let rebuild_period = 512

  let create () =
    let dp = Array.make 8 0. in
    dp.(0) <- 1.;
    { dp; n = 0; ps = []; removals = 0; rebuilds = 0 }

  let size t = t.n

  let validate name p =
    if p < 0. || p > 1. || Float.is_nan p then
      invalid_arg (Printf.sprintf "Poisson_binomial.Incremental.%s: probability outside [0, 1]" name)

  let grow t =
    if t.n + 1 >= Array.length t.dp then begin
      let dp = Array.make (2 * Array.length t.dp) 0. in
      Array.blit t.dp 0 dp 0 (t.n + 1);
      t.dp <- dp
    end

  (* One O(n) convolution step, identical to the batch [pmf] recurrence. *)
  let convolve t p =
    grow t;
    let dp = t.dp in
    dp.(t.n + 1) <- 0.;
    for k = t.n + 1 downto 1 do
      dp.(k) <- (dp.(k) *. (1. -. p)) +. (dp.(k - 1) *. p)
    done;
    dp.(0) <- dp.(0) *. (1. -. p);
    t.n <- t.n + 1

  let add t p =
    validate "add" p;
    t.ps <- p :: t.ps;
    convolve t p

  let rebuild t =
    let dp = Array.make (Array.length t.dp) 0. in
    dp.(0) <- 1.;
    t.dp <- dp;
    let ps = t.ps in
    t.n <- 0;
    t.ps <- [];
    List.iter (fun p -> t.ps <- p :: t.ps; convolve t p) ps;
    t.removals <- 0;
    t.rebuilds <- t.rebuilds + 1

  let rec drop p = function
    | [] -> None
    | x :: rest ->
        if x = p then Some rest
        else Option.map (fun r -> x :: r) (drop p rest)

  (* Inverse convolution: new[k] = p·prev[k−1] + (1−p)·prev[k].  The
     recurrence can be solved in ascending k (divide by 1−p) or
     descending k (divide by p); always picking the direction whose
     divisor is ≥ 1/2 keeps the per-step error amplification bounded —
     solving ascending with p near 1 divides by a vanishing 1−p and
     explodes (high-quality workers make such p common on the serving
     path).  O(n); falls back to a rebuild when drift still shows
     (negative mass or total off 1) or periodically. *)
  let deconvolve t p =
    let dp = t.dp in
    let n = t.n in
    let ok = ref true in
    if p = 1. then
      (* Every trial succeeded: prev[k] = new[k+1]. *)
      for k = 0 to n - 1 do
        dp.(k) <- dp.(k + 1)
      done
    else begin
      let total = ref 0. in
      let clamp v =
        if v > 0. then v
        else begin
          if v < -1e-9 then ok := false;
          0.
        end
      in
      if p < 0.5 then begin
        (* Ascending: prev[k] = (new[k] − p·prev[k−1]) / (1−p). *)
        let prev = ref 0. in
        for k = 0 to n - 1 do
          let v = clamp ((dp.(k) -. (p *. !prev)) /. (1. -. p)) in
          dp.(k) <- v;
          prev := v;
          total := !total +. v
        done
      end
      else begin
        (* Descending: prev[k−1] = (new[k] − (1−p)·prev[k]) / p.  Each
           step reads new[k] before anything overwrites it, so prev
           lands shifted one slot up and is moved down afterwards. *)
        let prev = ref 0. in
        for k = n downto 1 do
          let v = clamp ((dp.(k) -. ((1. -. p) *. !prev)) /. p) in
          dp.(k) <- v;
          prev := v;
          total := !total +. v
        done;
        for k = 0 to n - 1 do
          dp.(k) <- dp.(k + 1)
        done
      end;
      if Float.abs (!total -. 1.) > 1e-6 then ok := false
    end;
    dp.(n) <- 0.;
    t.n <- n - 1;
    if not !ok then rebuild t

  let remove t p =
    validate "remove" p;
    (match drop p t.ps with
    | None -> invalid_arg "Poisson_binomial.Incremental.remove: trial not present"
    | Some rest -> t.ps <- rest);
    t.removals <- t.removals + 1;
    if t.removals >= rebuild_period then begin
      t.n <- t.n - 1;
      rebuild t
    end
    else deconvolve t p

  let pmf t = Array.sub t.dp 0 (t.n + 1)

  let tail_at_least t k =
    if k <= 0 then 1.
    else if k > t.n then 0.
    else begin
      let acc = Kahan.create () in
      for j = k to t.n do
        Kahan.add acc t.dp.(j)
      done;
      Kahan.total acc
    end

  let rebuilds t = t.rebuilds
end
