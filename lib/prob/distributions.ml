let gaussian_pdf ~mu ~sigma x =
  let z = (x -. mu) /. sigma in
  exp (-0.5 *. z *. z) /. (sigma *. sqrt (2. *. Float.pi))

(* Abramowitz & Stegun 7.1.26, |error| < 1.5e-7. *)
let erf x =
  let sign = if x < 0. then -1. else 1. in
  let x = Float.abs x in
  let t = 1. /. (1. +. (0.3275911 *. x)) in
  let poly =
    ((((((1.061405429 *. t) -. 1.453152027) *. t) +. 1.421413741) *. t
      -. 0.284496736)
     *. t
    +. 0.254829592)
    *. t
  in
  sign *. (1. -. (poly *. exp (-.x *. x)))

let gaussian_cdf ~mu ~sigma x =
  0.5 *. (1. +. erf ((x -. mu) /. (sigma *. sqrt 2.)))

let sample_gaussian g ~mu ~sigma = Rng.gaussian g ~mu ~sigma

let sample_gaussian_clamped g ~mu ~sigma ~lo ~hi =
  Float.min hi (Float.max lo (Rng.gaussian g ~mu ~sigma))

let sample_gaussian_truncated g ~mu ~sigma ~lo ~hi =
  if lo >= hi then invalid_arg "Distributions.sample_gaussian_truncated";
  let rec draw attempts =
    if attempts > 10_000 then
      (* Interval mass is negligible; fall back to clamping to stay total. *)
      sample_gaussian_clamped g ~mu ~sigma ~lo ~hi
    else
      let x = Rng.gaussian g ~mu ~sigma in
      if x >= lo && x <= hi then x else draw (attempts + 1)
  in
  draw 0

(* Marsaglia–Tsang (2000) for shape >= 1; boosting trick below 1. *)
let rec sample_gamma g ~shape =
  if shape < 1. then
    let u = Rng.unit_float g in
    sample_gamma g ~shape:(shape +. 1.) *. (u ** (1. /. shape))
  else
    let d = shape -. (1. /. 3.) in
    let c = 1. /. sqrt (9. *. d) in
    let rec draw () =
      let x = Rng.gaussian g ~mu:0. ~sigma:1. in
      let v = (1. +. (c *. x)) ** 3. in
      if v <= 0. then draw ()
      else
        let u = Rng.unit_float g in
        if log u < (0.5 *. x *. x) +. d -. (d *. v) +. (d *. log v) then d *. v
        else draw ()
    in
    draw ()

let sample_beta g ~a ~b =
  let x = sample_gamma g ~shape:a in
  let y = sample_gamma g ~shape:b in
  x /. (x +. y)

let sample_uniform g ~lo ~hi = lo +. Rng.float g (hi -. lo)
let sample_bernoulli g p = if Rng.bernoulli g p then 1 else 0

let sample_categorical g weights =
  let n = Array.length weights in
  if n = 0 then invalid_arg "Distributions.sample_categorical: empty";
  let total = Kahan.sum_array weights in
  if total <= 0. then invalid_arg "Distributions.sample_categorical: zero mass";
  let target = Rng.unit_float g *. total in
  let rec scan i acc =
    if i = n - 1 then i
    else
      let acc = acc +. weights.(i) in
      if target < acc then i else scan (i + 1) acc
  in
  scan 0 0.
