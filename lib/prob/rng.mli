(** Deterministic, splittable pseudo-random number generator.

    The implementation is xoshiro256** seeded through splitmix64, giving
    high-quality 64-bit streams that are fully reproducible from an integer
    seed.  Every stochastic component of the library (pool generation, vote
    simulation, randomized voting strategies, simulated annealing) threads an
    explicit [t] so that experiments can be replicated exactly and parallel
    replications can draw from independent streams via {!split}. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from an integer seed.  Equal seeds give
    equal streams. *)

val copy : t -> t
(** [copy g] is an independent generator whose future output equals [g]'s. *)

val fingerprint : t -> string
(** [fingerprint g] is a compact textual digest of [g]'s current state.  It
    does not advance the stream, and two generators fingerprint equally iff
    their future outputs coincide.  Used to key caches by RNG trajectory. *)

val split : t -> t
(** [split g] advances [g] and returns a new generator whose stream is
    statistically independent of [g]'s subsequent output.  Used to hand a
    private stream to each replication of an experiment. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g bound] is uniform on [0, bound); requires [bound > 0]. *)

val float : t -> float -> float
(** [float g bound] is uniform on [0, bound). *)

val unit_float : t -> float
(** Uniform on [0, 1). *)

val bool : t -> bool
(** Fair coin flip. *)

val bernoulli : t -> float -> bool
(** [bernoulli g p] is [true] with probability [p]. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** One draw from N(mu, sigma^2) via the Box–Muller transform. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniformly random element of a non-empty array.
    @raise Invalid_argument on an empty array. *)

val sample_without_replacement : t -> int -> 'a array -> 'a array
(** [sample_without_replacement g k arr] is [k] distinct elements of [arr]
    in random order; requires [0 <= k <= Array.length arr]. *)
