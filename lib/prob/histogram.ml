type t = {
  lo : float;
  hi : float;
  width : float;
  counts : int array;
  mutable total : int;
}

let create ~lo ~hi ~buckets =
  if buckets <= 0 then invalid_arg "Histogram.create: buckets <= 0";
  if hi <= lo then invalid_arg "Histogram.create: hi <= lo";
  {
    lo;
    hi;
    width = (hi -. lo) /. float_of_int buckets;
    counts = Array.make buckets 0;
    total = 0;
  }

let add t x =
  let n = Array.length t.counts in
  let i = int_of_float (Float.floor ((x -. t.lo) /. t.width)) in
  let i = if i < 0 then 0 else if i >= n then n - 1 else i in
  t.counts.(i) <- t.counts.(i) + 1;
  t.total <- t.total + 1

let counts t = Array.copy t.counts
let total t = t.total

let bucket_bounds t i =
  (t.lo +. (float_of_int i *. t.width), t.lo +. (float_of_int (i + 1) *. t.width))

let pp ppf t =
  Array.iteri
    (fun i c ->
      let lo, hi = bucket_bounds t i in
      Format.fprintf ppf "[%.6g, %.6g): %d@." lo hi c)
    t.counts

module Ranges = struct
  type nonrec t = { edges : float array; counts : int array }

  let create edges =
    let arr = Array.of_list edges in
    let increasing = ref true in
    Array.iteri (fun i e -> if i > 0 && e <= arr.(i - 1) then increasing := false) arr;
    if not !increasing then invalid_arg "Histogram.Ranges.create: edges not increasing";
    { edges = arr; counts = Array.make (Array.length arr + 1) 0 }

  let add t x =
    let n = Array.length t.edges in
    let rec find i = if i = n then n else if x <= t.edges.(i) then i else find (i + 1) in
    let i = find 0 in
    t.counts.(i) <- t.counts.(i) + 1

  let counts t = Array.copy t.counts

  let labels t =
    let n = Array.length t.edges in
    List.init (n + 1) (fun i ->
        if i = 0 then Printf.sprintf "<= %g" t.edges.(0)
        else if i = n then Printf.sprintf "> %g" t.edges.(n - 1)
        else Printf.sprintf "(%g, %g]" t.edges.(i - 1) t.edges.(i))
end
