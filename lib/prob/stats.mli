(** Descriptive statistics over replicate experiment results. *)

type summary = {
  count : int;
  mean : float;
  variance : float;  (** Unbiased (n−1) sample variance; 0 for n < 2. *)
  stddev : float;
  min : float;
  max : float;
}

val mean : float array -> float
(** Arithmetic mean (compensated); [nan] on the empty array. *)

val variance : float array -> float
(** Unbiased sample variance; 0 when fewer than two points. *)

val stddev : float array -> float
(** Square root of {!variance}. *)

val summarize : float array -> summary
(** All of the above in one pass structure; [count = 0] gives NaN moments. *)

val quantile : float array -> float -> float
(** [quantile xs p] with [0 <= p <= 1]: linear-interpolation quantile of
    the data, sorted with the monomorphic [Float.compare].
    @raise Invalid_argument on empty input, NaN in the data, or [p]
    outside [0, 1] (including NaN). *)

val median : float array -> float
(** [quantile xs 0.5]. *)

val confidence_interval_95 : float array -> float * float
(** Normal-approximation 95% confidence interval for the mean:
    mean ± 1.96 · stddev / sqrt n. *)

val pp_summary : Format.formatter -> summary -> unit
(** Human-readable one-line rendering. *)
