(** Samplers and density/distribution functions for the handful of
    distributions the paper's experiments need: Gaussians for worker quality
    and cost (§6.1.1), Bernoulli for votes, Beta for alternative quality
    profiles, and truncation/clamping helpers used when a Gaussian draw must
    land in a legal range such as quality in [0.5, 0.99]. *)

val gaussian_pdf : mu:float -> sigma:float -> float -> float
(** Density of N(mu, sigma^2) at a point. *)

val gaussian_cdf : mu:float -> sigma:float -> float -> float
(** Distribution function of N(mu, sigma^2), via [erf]. *)

val erf : float -> float
(** Error function (Abramowitz–Stegun 7.1.26 rational approximation,
    absolute error < 1.5e-7 — ample for experiment reporting). *)

val sample_gaussian : Rng.t -> mu:float -> sigma:float -> float
(** Unconstrained Gaussian draw. *)

val sample_gaussian_clamped :
  Rng.t -> mu:float -> sigma:float -> lo:float -> hi:float -> float
(** Gaussian draw clamped into [lo, hi].  This mirrors the paper's setup
    where qualities drawn from N(0.7, 0.05) are kept within a legal
    probability range (§3.3 assumes q >= 0.5). *)

val sample_gaussian_truncated :
  Rng.t -> mu:float -> sigma:float -> lo:float -> hi:float -> float
(** Gaussian draw resampled until it lands in [lo, hi] (true truncated
    Gaussian; rejection sampling).  Requires the interval to have positive
    mass. *)

val sample_beta : Rng.t -> a:float -> b:float -> float
(** Beta(a, b) draw via Jöhnk / gamma ratio (Marsaglia–Tsang gammas). *)

val sample_uniform : Rng.t -> lo:float -> hi:float -> float
(** Uniform draw on [lo, hi). *)

val sample_bernoulli : Rng.t -> float -> int
(** [sample_bernoulli g p] is 1 with probability [p], else 0. *)

val sample_categorical : Rng.t -> float array -> int
(** Draw an index with probability proportional to the (nonnegative)
    weights.  @raise Invalid_argument if weights are empty or sum to 0. *)
