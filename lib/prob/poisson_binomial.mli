(** Poisson–binomial distribution: the number of successes among independent
    Bernoulli trials with heterogeneous probabilities.

    Under Majority Voting with jury qualities [q_1 .. q_n], the jury answers
    correctly exactly when at least ceil((n+1)/2) workers vote correctly, so
    [JQ(J, MV, 0.5)] is a Poisson–binomial tail probability.  This module is
    the exact dynamic-programming engine behind that closed form (the
    polynomial algorithm attributed to Cao et al. [7] in §4.1). *)

val pmf : float array -> float array
(** [pmf ps] has length [n + 1]; entry [k] is the probability that exactly
    [k] of the [n] trials succeed.  O(n^2) time, O(n) space.
    @raise Invalid_argument if some probability lies outside [0, 1]. *)

val tail_at_least : float array -> int -> float
(** [tail_at_least ps k] is [Pr(successes >= k)]. *)

val cdf : float array -> int -> float
(** [cdf ps k] is [Pr(successes <= k)]. *)

val expectation : float array -> float
(** Mean number of successes: [sum ps]. *)

val variance : float array -> float
(** Variance: [sum p(1-p)]. *)

val majority_correct : float array -> float
(** [majority_correct qs] is the probability that a strict majority of the
    trials succeed, counting exact ties as a coin flip — the MV convention
    of the paper (a tie on an even jury is broken at random, contributing
    half its mass).  With an odd jury this is just
    [tail_at_least qs ((n / 2) + 1)]. *)

(** Incremental pmf over a mutable trial multiset: [add] and [remove] are
    each one O(n) convolution pass instead of the O(n^2) batch rebuild —
    the hot-path primitive behind the MVJS annealer's per-swap scoring.
    Removal is the exact algebraic inverse of addition; float drift is
    caught by a mass check per deconvolution plus a periodic full rebuild
    from the tracked multiset. *)
module Incremental : sig
  type t

  val create : unit -> t
  (** Zero trials: pmf = [|1.|]. *)

  val add : t -> float -> unit
  (** Fold one trial of success probability [p] in, O(n).
      @raise Invalid_argument for [p] outside [0, 1]. *)

  val remove : t -> float -> unit
  (** Take one trial of success probability [p] back out, O(n).
      @raise Invalid_argument for [p] outside [0, 1] or not present. *)

  val size : t -> int
  (** Current number of trials. *)

  val pmf : t -> float array
  (** A fresh copy of the current pmf, length [size t + 1]. *)

  val tail_at_least : t -> int -> float
  (** [Pr(successes >= k)] under the current multiset, without copying. *)

  val rebuilds : t -> int
  (** Full rebuilds performed so far (drift guard / periodic fallback). *)
end
