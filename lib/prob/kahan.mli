(** Compensated (Kahan–Neumaier) summation.

    JQ accumulates up to 2^n tiny probabilities; naive [( +. )] folds lose
    several digits there.  The experiment harness also averages thousands of
    replicate results.  Both paths sum through this module. *)

type t
(** Mutable accumulator. *)

val create : unit -> t
(** Fresh accumulator holding 0. *)

val add : t -> float -> unit
(** Accumulate one term. *)

val total : t -> float
(** Current compensated sum. *)

val sum_array : float array -> float
(** One-shot compensated sum of an array. *)

val sum_list : float list -> float
(** One-shot compensated sum of a list. *)
