type summary = {
  count : int;
  mean : float;
  variance : float;
  stddev : float;
  min : float;
  max : float;
}

let mean xs =
  let n = Array.length xs in
  if n = 0 then nan else Kahan.sum_array xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.
  else
    let m = mean xs in
    let acc = Kahan.create () in
    Array.iter (fun x -> Kahan.add acc ((x -. m) ** 2.)) xs;
    Kahan.total acc /. float_of_int (n - 1)

let stddev xs = sqrt (variance xs)

let summarize xs =
  let n = Array.length xs in
  if n = 0 then
    { count = 0; mean = nan; variance = nan; stddev = nan; min = nan; max = nan }
  else
    {
      count = n;
      mean = mean xs;
      variance = variance xs;
      stddev = stddev xs;
      min = Array.fold_left Float.min xs.(0) xs;
      max = Array.fold_left Float.max xs.(0) xs;
    }

let quantile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.quantile: empty data";
  if not (p >= 0. && p <= 1.) then
    invalid_arg "Stats.quantile: p outside [0, 1]";
  let sorted = Array.copy xs in
  (* Monomorphic compare: polymorphic [compare] on a float array is both
     slow (tag dispatch per comparison on the hot stats path) and
     NaN-unsafe (inconsistent order poisons the sort).  [Float.compare]
     totals NaN below every number, so any NaN ends up at index 0. *)
  Array.sort Float.compare sorted;
  if Float.is_nan sorted.(0) then invalid_arg "Stats.quantile: NaN in data";
  let position = p *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor position) in
  let hi = int_of_float (Float.ceil position) in
  if lo = hi then sorted.(lo)
  else
    let w = position -. float_of_int lo in
    ((1. -. w) *. sorted.(lo)) +. (w *. sorted.(hi))

let median xs = quantile xs 0.5

let confidence_interval_95 xs =
  let n = Array.length xs in
  if n = 0 then (nan, nan)
  else
    let m = mean xs in
    let half = 1.96 *. stddev xs /. sqrt (float_of_int n) in
    (m -. half, m +. half)

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.6g sd=%.6g min=%.6g max=%.6g" s.count s.mean
    s.stddev s.min s.max
