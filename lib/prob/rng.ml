type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64: expands an integer seed into well-mixed 64-bit words, the
   recommended way to initialize xoshiro state. *)
let splitmix64_next state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64_next state in
  let s1 = splitmix64_next state in
  let s2 = splitmix64_next state in
  let s3 = splitmix64_next state in
  { s0; s1; s2; s3 }

let copy g = { s0 = g.s0; s1 = g.s1; s2 = g.s2; s3 = g.s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 g =
  let open Int64 in
  let result = mul (rotl (mul g.s1 5L) 7) 9L in
  let t = shift_left g.s1 17 in
  g.s2 <- logxor g.s2 g.s0;
  g.s3 <- logxor g.s3 g.s1;
  g.s1 <- logxor g.s1 g.s2;
  g.s0 <- logxor g.s0 g.s3;
  g.s2 <- logxor g.s2 t;
  g.s3 <- rotl g.s3 45;
  result

let fingerprint g =
  (* Reads the state words without advancing the stream: two generators have
     equal fingerprints iff their future outputs coincide. *)
  Printf.sprintf "%Lx.%Lx.%Lx.%Lx" g.s0 g.s1 g.s2 g.s3

let split g =
  (* Reseed a fresh generator from the parent's stream; splitmix64 mixing
     decorrelates the child from the parent's continuation. *)
  let state = ref (bits64 g) in
  let s0 = splitmix64_next state in
  let s1 = splitmix64_next state in
  let s2 = splitmix64_next state in
  let s3 = splitmix64_next state in
  { s0; s1; s2; s3 }

let int g bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling on the top 62 bits (OCaml ints are 63-bit, so a
     63-bit value could come out negative) avoids modulo bias. *)
  let rec draw () =
    let r = Int64.to_int (Int64.shift_right_logical (bits64 g) 2) in
    let v = r mod bound in
    if r - v > max_int - bound + 1 then draw () else v
  in
  draw ()

let unit_float g =
  (* 53 uniform bits mapped to [0, 1). *)
  let r = Int64.to_int (Int64.shift_right_logical (bits64 g) 11) in
  float_of_int r *. 0x1p-53

let float g bound = unit_float g *. bound
let bool g = Int64.logand (bits64 g) 1L = 1L
let bernoulli g p = unit_float g < p

let gaussian g ~mu ~sigma =
  let rec nonzero () =
    let u = unit_float g in
    if u > 0. then u else nonzero ()
  in
  let u1 = nonzero () in
  let u2 = unit_float g in
  let z = sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2) in
  mu +. (sigma *. z)

let shuffle g arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let choose g arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int g (Array.length arr))

let sample_without_replacement g k arr =
  let n = Array.length arr in
  if k < 0 || k > n then invalid_arg "Rng.sample_without_replacement";
  let pool = Array.copy arr in
  (* Partial Fisher–Yates: the first k slots end up as the sample. *)
  for i = 0 to k - 1 do
    let j = i + int g (n - i) in
    let tmp = pool.(i) in
    pool.(i) <- pool.(j);
    pool.(j) <- tmp
  done;
  Array.sub pool 0 k
