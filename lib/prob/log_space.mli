(** Log-domain probability arithmetic.

    The bucket algorithm of the paper works on the quantity
    [phi q = ln (q / (1 - q))] (the logit, written φ(q) in §4.2) and on
    log-likelihoods [u(V) = ln Pr(V | t = 0)].  This module centralizes that
    arithmetic so products of many small probabilities never underflow. *)

val logit : float -> float
(** [logit q] is [ln (q /. (1. -. q))], the paper's φ(q).  Requires
    [0 < q < 1].  Nonnegative whenever [q >= 0.5]. *)

val of_prob : float -> float
(** [of_prob p] is [ln p]; [neg_infinity] when [p = 0.]. *)

val to_prob : float -> float
(** [to_prob l] is [exp l]. *)

val add : float -> float -> float
(** [add a b] is [ln (e^a + e^b)] computed stably (log-sum-exp). *)

val sum : float list -> float
(** Stable log-sum-exp of a list of log-values; [neg_infinity] on []. *)

val sum_array : float array -> float
(** Stable log-sum-exp over an array. *)

val mul : float -> float -> float
(** Product of probabilities in the log domain, i.e. [( +. )]; provided for
    readability at call sites. *)
