let logit q =
  if q <= 0. || q >= 1. then invalid_arg "Log_space.logit: q must lie in (0, 1)";
  log (q /. (1. -. q))

let of_prob p = if p = 0. then neg_infinity else log p
let to_prob l = exp l

let add a b =
  if a = neg_infinity then b
  else if b = neg_infinity then a
  else
    let hi = Float.max a b and lo = Float.min a b in
    hi +. log1p (exp (lo -. hi))

let sum = function
  | [] -> neg_infinity
  | l ->
      let hi = List.fold_left Float.max neg_infinity l in
      if hi = neg_infinity then neg_infinity
      else hi +. log (List.fold_left (fun acc x -> acc +. exp (x -. hi)) 0. l)

let sum_array a =
  if Array.length a = 0 then neg_infinity
  else
    let hi = Array.fold_left Float.max neg_infinity a in
    if hi = neg_infinity then neg_infinity
    else hi +. log (Array.fold_left (fun acc x -> acc +. exp (x -. hi)) 0. a)

let mul a b = a +. b
