type table = {
  id : string;
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;
}

let make ~id ~title ~header ?(notes = []) rows = { id; title; header; rows; notes }

let cell_pct x = Printf.sprintf "%.2f%%" (100. *. x)
let cell_float x = Printf.sprintf "%.6g" x
let cell_int = string_of_int

let widths t =
  let all = t.header :: t.rows in
  let n = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let w = Array.make n 0 in
  List.iter
    (fun row ->
      List.iteri (fun i c -> if String.length c > w.(i) then w.(i) <- String.length c) row)
    all;
  w

let pp ppf t =
  let w = widths t in
  let line row =
    String.concat "  "
      (List.mapi (fun i c -> Printf.sprintf "%-*s" w.(i) c) row)
  in
  Format.fprintf ppf "== %s: %s ==@." t.id t.title;
  Format.fprintf ppf "%s@." (line t.header);
  Format.fprintf ppf "%s@."
    (String.concat "  " (Array.to_list (Array.map (fun n -> String.make n '-') w)));
  List.iter (fun r -> Format.fprintf ppf "%s@." (line r)) t.rows;
  List.iter (fun n -> Format.fprintf ppf "note: %s@." n) t.notes;
  Format.fprintf ppf "@."

let print t = pp Format.std_formatter t

let escape_csv c =
  if String.exists (fun ch -> ch = ',' || ch = '"' || ch = '\n') c then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' c) ^ "\""
  else c

let to_csv t =
  String.concat "\n"
    (List.map
       (fun row -> String.concat "," (List.map escape_csv row))
       (t.header :: t.rows))

let save_csv ~dir t =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (t.id ^ ".csv") in
  let oc = open_out path in
  output_string oc (to_csv t);
  output_string oc "\n";
  close_out oc;
  path
