(** Domain-based parallel map for replications.

    Replicated experiment points are embarrassingly parallel once each
    replication owns a pre-split RNG stream; this module fans a list of
    independent thunks across OCaml 5 domains.  Results are returned in
    input order, so a parallel run produces *exactly* the same numbers as a
    sequential one — only faster. *)

val recommended_domains : unit -> int
(** [Domain.recommended_domain_count ()], capped at 8. *)

val map_array :
  ?domains:int ->
  ?chunk:int ->
  ?sched:[ `Fixed | `Guided ] ->
  ('a -> 'b) ->
  'a array ->
  'b array
(** [map_array ~domains f xs] applies [f] to every element across up to
    [domains] domains (default 1 = plain [Array.map]; values above the
    array length are clamped), claiming index ranges from a shared atomic
    counter, so uneven per-point costs rebalance dynamically.  [sched]
    picks the claim size: [`Fixed] (default) takes constant chunks of
    [chunk] indices (default ~n/8D); [`Guided] is self-scheduling — each
    claim takes half an even share of the remaining indices (never less
    than 1), so claims start large and shrink toward single indices at the
    tail, which keeps domains busy when per-element costs are heavily
    skewed (a fixed chunk can strand several expensive elements behind one
    slow domain).  An explicit [chunk] forces fixed-size claims and
    overrides [sched].  Results are returned in input order.
    [f] must not share mutable state across calls — in particular, kernel
    evaluations inside [f] pick up their own domain's {!Jq.Workspace}
    automatically, so JQ sweeps scale without shared kernel state.
    Exceptions raised by [f] are re-raised in the caller.
    @raise Invalid_argument for domains <= 0 or chunk <= 0. *)

val map :
  ?domains:int ->
  ?sched:[ `Fixed | `Guided ] ->
  ('a -> 'b) ->
  'a list ->
  'b list
(** List façade over {!map_array}: same contract, same ordering guarantee
    (a parallel run produces exactly the numbers of a sequential one). *)
