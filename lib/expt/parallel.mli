(** Domain-based parallel map for replications.

    Replicated experiment points are embarrassingly parallel once each
    replication owns a pre-split RNG stream; this module fans a list of
    independent thunks across OCaml 5 domains.  Results are returned in
    input order, so a parallel run produces *exactly* the same numbers as a
    sequential one — only faster. *)

val recommended_domains : unit -> int
(** [Domain.recommended_domain_count ()], capped at 8. *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~domains f xs] applies [f] to every element, using up to [domains]
    domains (default 1 = plain [List.map]; values above the list length are
    clamped).  [f] must not share mutable state across calls.  Exceptions
    raised by [f] are re-raised in the caller.
    @raise Invalid_argument for domains <= 0. *)
