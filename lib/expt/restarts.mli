(** Best-of-N annealing restarts across domains.

    Annealing is randomized: restarting from several seeds and keeping the
    best jury dominates any single run.  Restarts are independent (each
    owns its RNG, incremental accumulator and score cache), so they fan out
    over {!Parallel.map}; results come back in seed order and the outcome
    is bit-identical whatever the domain count.  The outcome is polymorphic
    in the jury representation, so binary, engine-level and multi-class
    solvers share it. *)

type 'jury outcome = {
  best : 'jury Jsp.Solver.result;        (** Highest-scoring restart. *)
  seed : int;                            (** The seed that produced it. *)
  runs : 'jury Jsp.Solver.result list;
      (** All per-seed results, in seed order. *)
}

val run :
  ?domains:int ->
  ?params:Jsp.Annealing.params ->
  ?cache:bool ->
  seeds:int list ->
  alpha:float ->
  budget:Jsp.Budget.t ->
  Jsp.Objective.Incremental.t ->
  Workers.Pool.t ->
  Workers.Pool.t outcome
(** One {!Jsp.Annealing.solve_incremental} per seed, best kept (score ties
    go to the earlier seed).  [domains] defaults to 1 (sequential).
    @raise Invalid_argument when [seeds] is empty. *)

val run_optjs :
  ?domains:int ->
  ?params:Jsp.Annealing.params ->
  ?num_buckets:int ->
  ?cache:bool ->
  seeds:int list ->
  alpha:float ->
  budget:Jsp.Budget.t ->
  Workers.Pool.t ->
  Workers.Pool.t outcome
(** {!run} over {!Jsp.Objective.bv_bucket_incremental}. *)

val run_mvjs :
  ?domains:int ->
  ?params:Jsp.Annealing.params ->
  ?cache:bool ->
  seeds:int list ->
  alpha:float ->
  budget:Jsp.Budget.t ->
  Workers.Pool.t ->
  Workers.Pool.t outcome
(** {!run} over {!Jsp.Objective.mv_closed_incremental}. *)

val run_engine :
  ?domains:int ->
  ?params:Jsp.Annealing.params ->
  ?num_buckets:int ->
  ?cache:bool ->
  seeds:int list ->
  task:Engine.Task.t ->
  budget:Jsp.Budget.t ->
  Engine.Pool.t ->
  Engine.Pool.t outcome
(** One {!Jsp.Annealing.solve_engine} per seed — restarts for any worker
    model.  @raise Invalid_argument when [seeds] is empty. *)

val run_multi :
  ?domains:int ->
  ?params:Jsp.Annealing.params ->
  ?num_buckets:int ->
  ?cache:bool ->
  seeds:int list ->
  prior:float array ->
  budget:Jsp.Budget.t ->
  Workers.Confusion.t array ->
  Workers.Confusion.t array outcome
(** One {!Jsp.Multi_jsp.anneal} per seed over confusion-matrix candidates.
    @raise Invalid_argument when [seeds] is empty. *)

val cache_totals : 'jury Jsp.Solver.result list -> Jsp.Objective_cache.stats option
(** Pointwise sum of the runs' cache counters ([None] when no run cached). *)

val seeds_from : seed:int -> restarts:int -> int list
(** [seed, seed+1, …, seed+restarts−1].
    @raise Invalid_argument for [restarts <= 0]. *)
