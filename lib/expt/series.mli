(** Replication plumbing: every plotted point is the mean of [reps]
    independent replications, each on a private RNG stream split from the
    master seed, so adding experiments never perturbs earlier ones.

    All streams are split *before* any replication runs, which makes the
    results independent of execution order — passing [domains > 1] fans the
    replications over OCaml domains and returns bit-identical numbers. *)

val replicate_collect :
  ?domains:int -> Prob.Rng.t -> reps:int -> (Prob.Rng.t -> 'a) -> 'a list
(** Run [reps] replications, each with its own split stream, optionally in
    parallel (default sequential). *)

val replicate :
  ?domains:int -> Prob.Rng.t -> reps:int -> (Prob.Rng.t -> float) -> Prob.Stats.summary
(** Summary statistics of {!replicate_collect}. *)

val mean :
  ?domains:int -> Prob.Rng.t -> reps:int -> (Prob.Rng.t -> float) -> float
(** Mean of {!replicate}. *)

val timed : (unit -> 'a) -> 'a * float
(** CPU seconds consumed by the thunk (Sys.time based — the coarse timings
    of the runtime figures; Bechamel gives the precise ones in bench/). *)
