type t = {
  seed : int;
  reps : int;
  n_workers : int;
  budget : float;
  alpha : float;
  num_buckets : int;
  generator : Workers.Generator.params;
  annealing : Jsp.Annealing.params;
  amt_questions : int;
  domains : int;
}

let default =
  {
    seed = 20150323;  (* EDBT 2015 opening day. *)
    reps = 100;
    n_workers = 50;
    budget = 0.5;
    alpha = 0.5;
    num_buckets = 50;
    generator = Workers.Generator.default;
    annealing = Jsp.Annealing.default_params;
    amt_questions = 150;
    domains = 1;
  }

let fast =
  {
    default with
    reps = 3;
    amt_questions = 20;
    annealing = { Jsp.Annealing.default_params with epsilon = 1e-3 };
  }

let rng t = Prob.Rng.create t.seed
let with_reps reps t = { t with reps }
let with_seed seed t = { t with seed }
let with_questions amt_questions t = { t with amt_questions }
let with_domains domains t = { t with domains = max 1 domains }
