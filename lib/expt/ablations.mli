(** Ablation benches for the library's own design choices — not paper
    artifacts, but the measurements that justify the defaults DESIGN.md
    records (solver choice, bucket resolution, keep-best memory, tie
    conventions, quality estimators, the static-vs-online trade-off, and
    the §7 multi-class solver). *)

type driver = ?config:Config.t -> unit -> Report.table

val solver_comparison : driver
(** [abl-solver] — exhaustive vs annealing vs beam (widths 8/32) vs greedy
    on N = 12 pools across budgets: mean JQ and objective evaluations. *)

val bucket_resolution : driver
(** [abl-buckets] — numBuckets vs estimate error (against a 5000-bucket
    reference) and CPU time for n = 50 juries: the accuracy/cost knee that
    motivates numBuckets = 50. *)

val keep_best : driver
(** [abl-keepbest] — annealing with and without best-seen memory against
    the exhaustive optimum (N = 11): the literal Algorithm 3 returns its
    final state; memory is free insurance. *)

val tie_breaking : driver
(** [abl-ties] — JQ of MV (ties to 1), MV-coin (random ties) and Half
    (ties to 0) on even juries across priors: the conventions only separate
    when the prior is skewed. *)

val estimators : driver
(** [abl-estimators] — gold-question empirical estimation vs Dawid-Skene EM
    (no gold needed): RMSE of recovered qualities as votes per worker grow. *)

val online_vs_static : driver
(** [abl-online] — static OPTJS jury vs adaptive collection (quality /
    cost / information-gain policies) at equal budget: accuracy and money
    actually spent. *)

val multiclass_solvers : driver
(** [abl-multiclass] — the §7 extension's solvers (exhaustive vs annealing
    vs spammer-score greedy) on 3-label confusion-matrix pools. *)

val estimation_noise : driver
(** [abl-noise] — perturb the (assumed-known) qualities and measure both
    the JQ evaluation error and the selection regret of exhaustive JSP:
    how much the "qualities are known in advance" assumption is worth. *)

val difficulty_robustness : driver
(** [abl-difficulty] — deliberately violate the constant-quality model with
    GLAD-style task difficulties and measure how far realized accuracy
    drops below the difficulty-blind JQ prediction. *)

val ids : string list
val by_id : string -> driver option
val all : ?config:Config.t -> unit -> Report.table list
