let replicate_collect ?(domains = 1) rng ~reps f =
  (* Split every stream up front so the set of streams does not depend on
     how the work is scheduled. *)
  let streams = List.init reps (fun _ -> Prob.Rng.split rng) in
  Parallel.map ~domains f streams

let replicate ?domains rng ~reps f =
  Prob.Stats.summarize (Array.of_list (replicate_collect ?domains rng ~reps f))

let mean ?domains rng ~reps f = (replicate ?domains rng ~reps f).Prob.Stats.mean

let timed f =
  let start = Sys.time () in
  let result = f () in
  (result, Sys.time () -. start)
