(** Tabular reporting for experiment results: the "same rows/series the
    paper reports", rendered as aligned ASCII and exportable as CSV. *)

type table = {
  id : string;             (** Experiment id, e.g. "fig6a". *)
  title : string;          (** Human caption, e.g. the figure caption. *)
  header : string list;    (** Column names; first column is the x-axis. *)
  rows : string list list; (** One list of cells per row. *)
  notes : string list;     (** Paper-vs-measured commentary lines. *)
}

val make :
  id:string ->
  title:string ->
  header:string list ->
  ?notes:string list ->
  string list list ->
  table

val cell_pct : float -> string
(** "93.27%" *)

val cell_float : float -> string
(** 6 significant digits. *)

val cell_int : int -> string

val pp : Format.formatter -> table -> unit
(** Aligned rendering with the id/title banner and notes. *)

val print : table -> unit
(** [pp] to stdout. *)

val to_csv : table -> string

val save_csv : dir:string -> table -> string
(** Write [<dir>/<id>.csv]; returns the path.  Creates [dir] if needed. *)
