let recommended_domains () = min 8 (Domain.recommended_domain_count ())

let default_chunk ~n ~domains =
  (* Small enough that an uneven point mix still balances, large enough
     that the atomic claim is noise. *)
  max 1 (n / (domains * 8))

let map_array ?(domains = 1) ?chunk ?(sched = `Fixed) f xs =
  if domains <= 0 then invalid_arg "Parallel.map_array: domains <= 0";
  (match chunk with
  | Some c when c <= 0 -> invalid_arg "Parallel.map_array: chunk <= 0"
  | _ -> ());
  let n = Array.length xs in
  let domains = min domains n in
  if domains <= 1 then Array.map f xs
  else begin
    let outputs = Array.make n None in
    (* Dynamic partition: workers claim index ranges from a shared counter,
       so domains that draw cheap points keep working instead of idling at
       a static block boundary.  Outputs land at their input index, so the
       result order (and with pre-split per-point state, the numbers
       themselves) is schedule-independent.

       [`Fixed] claims constant [chunk]-sized ranges.  [`Guided] is
       self-scheduling: each claim takes half an even share of what
       remains — max 1 ((n - done) / (2 * domains)) — so early claims are
       large (few atomic rounds) while the tail degrades to single indices
       and a handful of skewed-cost points cannot strand a whole chunk
       behind one slow domain.  An explicit [chunk] forces fixed-size
       claims regardless of [sched]. *)
    let next = Atomic.make 0 in
    let claim =
      match (chunk, sched) with
      | (Some _, _) | (None, `Fixed) ->
          let c =
            match chunk with
            | Some c -> c
            | None -> default_chunk ~n ~domains
          in
          fun () ->
            let lo = Atomic.fetch_and_add next c in
            if lo >= n then None else Some (lo, min n (lo + c))
      | None, `Guided ->
          let rec claim () =
            let lo = Atomic.get next in
            if lo >= n then None
            else begin
              let take = max 1 ((n - lo) / (2 * domains)) in
              let hi = min n (lo + take) in
              if Atomic.compare_and_set next lo hi then Some (lo, hi)
              else claim ()
            end
          in
          claim
    in
    let worker () =
      let rec loop () =
        match claim () with
        | None -> ()
        | Some (lo, hi) ->
            for i = lo to hi - 1 do
              outputs.(i) <- Some (f xs.(i))
            done;
            loop ()
      in
      loop ()
    in
    let spawned = List.init (domains - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join spawned;
    Array.map
      (function Some y -> y | None -> assert false)
      outputs
  end

let map ?(domains = 1) ?sched f xs =
  if domains <= 0 then invalid_arg "Parallel.map: domains <= 0";
  if domains <= 1 then List.map f xs
  else Array.to_list (map_array ~domains ?sched f (Array.of_list xs))
