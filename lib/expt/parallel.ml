let recommended_domains () = min 8 (Domain.recommended_domain_count ())

let default_chunk ~n ~domains =
  (* Small enough that an uneven point mix still balances, large enough
     that the atomic claim is noise. *)
  max 1 (n / (domains * 8))

let map_array ?(domains = 1) ?chunk f xs =
  if domains <= 0 then invalid_arg "Parallel.map_array: domains <= 0";
  (match chunk with
  | Some c when c <= 0 -> invalid_arg "Parallel.map_array: chunk <= 0"
  | _ -> ());
  let n = Array.length xs in
  let domains = min domains n in
  if domains <= 1 then Array.map f xs
  else begin
    let chunk =
      match chunk with Some c -> c | None -> default_chunk ~n ~domains
    in
    let outputs = Array.make n None in
    (* Dynamic chunked partition: workers claim the next [chunk] indices
       from a shared counter, so domains that draw cheap points keep
       working instead of idling at a static block boundary.  Outputs land
       at their input index, so the result order (and with pre-split
       per-point state, the numbers themselves) is schedule-independent. *)
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let lo = Atomic.fetch_and_add next chunk in
        if lo < n then begin
          let hi = min n (lo + chunk) in
          for i = lo to hi - 1 do
            outputs.(i) <- Some (f xs.(i))
          done;
          loop ()
        end
      in
      loop ()
    in
    let spawned = List.init (domains - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join spawned;
    Array.map
      (function Some y -> y | None -> assert false)
      outputs
  end

let map ?(domains = 1) f xs =
  if domains <= 0 then invalid_arg "Parallel.map: domains <= 0";
  if domains <= 1 then List.map f xs
  else Array.to_list (map_array ~domains f (Array.of_list xs))
