let recommended_domains () = min 8 (Domain.recommended_domain_count ())

let map ?(domains = 1) f xs =
  if domains <= 0 then invalid_arg "Parallel.map: domains <= 0";
  let n = List.length xs in
  let domains = min domains n in
  if domains <= 1 then List.map f xs
  else begin
    let inputs = Array.of_list xs in
    let outputs = Array.make n None in
    (* Static block partition: domain d owns indices [d*n/D, (d+1)*n/D). *)
    let worker d () =
      let lo = d * n / domains and hi = (d + 1) * n / domains in
      for i = lo to hi - 1 do
        outputs.(i) <- Some (f inputs.(i))
      done
    in
    let spawned =
      List.init (domains - 1) (fun d -> Domain.spawn (worker (d + 1)))
    in
    worker 0 ();
    List.iter Domain.join spawned;
    List.init n (fun i ->
        match outputs.(i) with
        | Some y -> y
        | None -> assert false)
  end
