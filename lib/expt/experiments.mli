(** One driver per paper artifact (the per-experiment index of DESIGN.md).

    Every driver regenerates the rows/series of its figure or table and
    returns them as a {!Report.table}; `bench/main.exe` prints them all and
    `bin/optjs_cli.ml expt <id>` prints one.  Absolute numbers depend on
    [reps] and hardware (timings); the *shape* — who wins, by what margin,
    where curves bend — is the reproduction target recorded in
    EXPERIMENTS.md. *)

type driver = ?config:Config.t -> unit -> Report.table

val fig1 : driver
(** Figure 1: budget–quality table for the seven workers A–G. *)

val fig2 : driver
(** Figure 2: the worked JQ example — per-voting contributions for MV and
    BV on qualities (0.9, 0.6, 0.6); totals 79.2% vs 90%. *)

val fig6a : driver
(** Figure 6(a): MVJS vs OPTJS, varying quality mean µ ∈ [0.5, 1]. *)

val fig6b : driver
(** Figure 6(b): varying budget B ∈ [0.1, 1]. *)

val fig6c : driver
(** Figure 6(c): varying pool size N ∈ [10, 100]. *)

val fig6d : driver
(** Figure 6(d): varying cost deviation σ̂ ∈ [0.1, 1]. *)

val fig7a : driver
(** Figure 7(a): JQ of the exhaustive optimum J* vs the annealed Ĵ,
    N = 11, B ∈ [0.05, 0.5]. *)

val tab3 : driver
(** Table 3: counts of JQ(J star) minus JQ(J hat) in the paper's error
    ranges (percent). *)

val fig7a_and_tab3 : ?config:Config.t -> unit -> Report.table * Report.table
(** Both of the above from one run (they share their data). *)

val fig7b : driver
(** Figure 7(b): JSP wall-clock vs N ∈ [100, 500] for four budgets. *)

val fig8a : driver
(** Figure 8(a): exact JQ of MV/BV/RBV/RMV, n = 11, varying µ. *)

val fig8b : driver
(** Figure 8(b): same strategies, µ = 0.7, varying jury size n ∈ [1, 11]. *)

val fig9a : driver
(** Figure 9(a): JQ(J, BV, 0.5) vs µ for quality variances
    {0.01, 0.03, 0.05, 0.1}. *)

val fig9b : driver
(** Figure 9(b): mean approximation error vs numBuckets ∈ [10, 200]. *)

val fig9c : driver
(** Figure 9(c): histogram of approximation errors at numBuckets = 50. *)

val fig9d : driver
(** Figure 9(d): EstimateJQ runtime with vs without pruning,
    n ∈ [100, 500]. *)

val fig10a : driver
(** Figure 10(a): synthetic-AMT data, MVJS vs OPTJS, varying B. *)

val fig10b : driver
(** Figure 10(b): varying candidate count N ∈ [3, 20]. *)

val fig10c : driver
(** Figure 10(c): varying cost deviation σ̂. *)

val fig10d : driver
(** Figure 10(d): is JQ a good prediction? Accuracy vs average JQ for the
    first z votes, z ∈ [3, 20]. *)

val ids : string list
(** All experiment ids, in paper order. *)

val by_id : string -> driver option
(** Case-insensitive lookup. *)

val all : ?config:Config.t -> unit -> Report.table list
(** Every table, in paper order (sharing work where drivers overlap). *)
