type driver = ?config:Config.t -> unit -> Report.table

let pct = Report.cell_pct
let mean_of xs = Prob.Stats.mean (Array.of_list xs)

(* ---- abl-solver ------------------------------------------------------ *)

let solver_comparison ?(config = Config.default) () =
  let rng = Config.rng config in
  let n = 12 in
  let objective = Jsp.Objective.bv_bucket ~num_buckets:config.num_buckets () in
  let solvers =
    [
      ( "exact",
        fun ~budget pool _rng -> Jsp.Enumerate.solve objective ~alpha:config.alpha ~budget pool );
      ( "anneal",
        fun ~budget pool rng ->
          Jsp.Annealing.solve ~params:config.annealing objective ~rng
            ~alpha:config.alpha ~budget pool );
      ( "beam32",
        fun ~budget pool _rng ->
          Jsp.Beam.solve ~width:32 objective ~alpha:config.alpha ~budget pool );
      ( "beam8",
        fun ~budget pool _rng ->
          Jsp.Beam.solve ~width:8 objective ~alpha:config.alpha ~budget pool );
      ( "greedy",
        fun ~budget pool _rng ->
          Jsp.Greedy.best_of_all objective ~alpha:config.alpha ~budget pool );
    ]
  in
  let rows =
    List.map
      (fun budget ->
        (* Every solver sees the same pools (and a private copy of the same
           stream), so the columns are directly comparable. *)
        let per_rep =
          Series.replicate_collect ~domains:config.Config.domains rng ~reps:config.reps (fun r ->
              let pool = Workers.Generator.gaussian_pool r config.generator n in
              List.map
                (fun (_, solve) ->
                  (solve ~budget pool (Prob.Rng.copy r)).Jsp.Solver.score)
                solvers)
        in
        Printf.sprintf "%.2f" budget
        :: List.mapi
             (fun i _ -> pct (mean_of (List.map (fun row -> List.nth row i) per_rep)))
             solvers)
      [ 0.1; 0.2; 0.3; 0.4; 0.5 ]
  in
  Report.make ~id:"abl-solver"
    ~title:"Solver ablation: mean JQ of the selected jury (N = 12)"
    ~header:("B" :: List.map fst solvers)
    ~notes:
      [
        "expected: exact >= anneal ~ beam32 >= beam8 >= greedy, with small gaps";
      ]
    rows

(* ---- abl-buckets ------------------------------------------------------ *)

let bucket_resolution ?(config = Config.default) () =
  let rng = Config.rng config in
  let n = 30 in
  (* Mediocre, heterogeneous juries: high-quality pools saturate JQ at ~1
     where every resolution looks perfect; the interesting regime is
     JQ ~ 0.8-0.95 with spread-out logits.  Exact JQ is out of reach at
     n = 30, so a 5000-bucket run is the reference (its own bound is ~100x
     tighter than the coarsest setting measured). *)
  let generator =
    {
      config.generator with
      Workers.Generator.quality_mu = 0.58;
      quality_sigma = 0.08;
      quality_hi = 0.9;
    }
  in
  let rows =
    List.map
      (fun num_buckets ->
        let samples =
          Series.replicate_collect ~domains:config.Config.domains rng ~reps:config.reps (fun r ->
              let qs =
                Workers.Pool.qualities
                  (Workers.Generator.gaussian_pool r generator n)
              in
              let reference = Jq.Bucket.estimate ~num_buckets:5000 qs in
              let (value, seconds) =
                Series.timed (fun () -> Jq.Bucket.estimate ~num_buckets qs)
              in
              (Float.abs (reference -. value), seconds))
        in
        [
          string_of_int num_buckets;
          Printf.sprintf "%.5f%%" (100. *. mean_of (List.map fst samples));
          Printf.sprintf "%.2f ms" (1000. *. mean_of (List.map snd samples));
        ])
      [ 5; 10; 25; 50; 100; 200; 500 ]
  in
  Report.make ~id:"abl-buckets"
    ~title:"Bucket-resolution ablation: error vs cost (n = 30, mediocre juries)"
    ~header:[ "numBuckets"; "error vs 5000-bucket ref"; "time" ]
    ~notes:[ "expected: error falls fast; 50 buckets already lands near zero" ]
    rows

(* ---- abl-keepbest ------------------------------------------------------ *)

let keep_best ?(config = Config.default) () =
  let rng = Config.rng config in
  let n = 11 in
  let objective = Jsp.Objective.bv_bucket ~num_buckets:config.num_buckets () in
  let rows =
    List.map
      (fun budget ->
        let gaps =
          Series.replicate_collect ~domains:config.Config.domains rng ~reps:config.reps (fun r ->
              let pool = Workers.Generator.gaussian_pool r config.generator n in
              let star =
                (Jsp.Enumerate.solve objective ~alpha:config.alpha ~budget pool)
                  .Jsp.Solver.score
              in
              let with_memory =
                (Jsp.Annealing.solve
                   ~params:{ config.annealing with keep_best = true }
                   objective ~rng:(Prob.Rng.copy r) ~alpha:config.alpha ~budget pool)
                  .Jsp.Solver.score
              in
              let without =
                (Jsp.Annealing.solve
                   ~params:{ config.annealing with keep_best = false }
                   objective ~rng:r ~alpha:config.alpha ~budget pool)
                  .Jsp.Solver.score
              in
              (star -. with_memory, star -. without))
        in
        [
          Printf.sprintf "%.2f" budget;
          Printf.sprintf "%.4f%%" (100. *. mean_of (List.map fst gaps));
          Printf.sprintf "%.4f%%" (100. *. mean_of (List.map snd gaps));
        ])
      [ 0.1; 0.3; 0.5 ]
  in
  Report.make ~id:"abl-keepbest"
    ~title:"Annealing memory ablation: gap to exhaustive optimum (N = 11)"
    ~header:[ "B"; "gap with keep_best"; "gap without" ]
    ~notes:[ "expected: keep_best never larger; both gaps tiny" ]
    rows

(* ---- abl-ties ----------------------------------------------------------- *)

let tie_breaking ?(config = Config.default) () =
  let rng = Config.rng config in
  let n = 8 in
  let strategies =
    [ Voting.Classic.majority; Voting.Classic.majority_tie_coin;
      Voting.Classic.half ]
  in
  let rows =
    List.concat_map
      (fun alpha ->
        List.map
          (fun size ->
            (* One pool per replication, all three conventions on it. *)
            let per_rep =
              Series.replicate_collect ~domains:config.Config.domains rng ~reps:config.reps (fun r ->
                  let qs =
                    Workers.Pool.qualities
                      (Workers.Generator.gaussian_pool r config.generator size)
                  in
                  List.map (fun s -> Jq.Exact.jq s ~alpha ~qualities:qs) strategies)
            in
            Printf.sprintf "%.1f" alpha :: string_of_int size
            :: List.mapi
                 (fun i _ ->
                   pct (mean_of (List.map (fun row -> List.nth row i) per_rep)))
                 strategies)
          [ 4; n ])
      [ 0.3; 0.5; 0.7 ]
  in
  Report.make ~id:"abl-ties"
    ~title:"Tie-breaking ablation on even juries: MV vs MV-coin vs Half"
    ~header:[ "alpha"; "n"; "MV (tie->1)"; "MV-coin"; "Half (tie->0)" ]
    ~notes:
      [
        "expected: identical at alpha = 0.5; the prior's favourite side wins \
         ties when alpha is skewed";
      ]
    rows

(* ---- abl-estimators ------------------------------------------------------ *)

let estimators ?(config = Config.default) () =
  let rng = Config.rng config in
  let n_workers = 15 in
  let rows =
    List.map
      (fun votes_per_worker ->
        let rmses =
          Series.replicate_collect ~domains:config.Config.domains rng ~reps:config.reps (fun r ->
              let truths =
                Array.init votes_per_worker (fun i -> i mod 2)
              in
              let qualities =
                Array.init n_workers (fun _ ->
                    Prob.Distributions.sample_gaussian_clamped r ~mu:0.75
                      ~sigma:0.1 ~lo:0.55 ~hi:0.95)
              in
              let votes = ref [] in
              let histories =
                Array.init n_workers (fun worker_id ->
                    Workers.History.create ~worker_id ())
              in
              Array.iteri
                (fun task truth ->
                  Array.iteri
                    (fun worker q ->
                      let label =
                        if Prob.Rng.bernoulli r q then truth else 1 - truth
                      in
                      votes := { Workers.Dawid_skene.task; worker; label } :: !votes;
                      Workers.History.record_gold histories.(worker) ~task_id:task
                        ~vote:label ~truth)
                    qualities)
                truths;
              let rmse estimates =
                sqrt
                  (Prob.Stats.mean
                     (Array.mapi
                        (fun i e -> (e -. qualities.(i)) ** 2.)
                        estimates))
              in
              let gold =
                Array.map (fun h -> Workers.Estimator.empirical h) histories
              in
              let ds =
                Workers.Dawid_skene.binary_qualities
                  (Workers.Dawid_skene.run ~n_tasks:votes_per_worker
                     ~n_workers ~n_labels:2 !votes)
              in
              (* EM may converge to the globally flipped solution. *)
              let ds_flipped = Array.map (fun q -> 1. -. q) ds in
              (rmse gold, Float.min (rmse ds) (rmse ds_flipped)))
        in
        [
          string_of_int votes_per_worker;
          Printf.sprintf "%.4f" (mean_of (List.map fst rmses));
          Printf.sprintf "%.4f" (mean_of (List.map snd rmses));
        ])
      [ 10; 20; 50; 100; 200 ]
  in
  Report.make ~id:"abl-estimators"
    ~title:"Quality-estimation ablation: gold-question empirical vs Dawid-Skene EM"
    ~header:[ "answers/worker"; "RMSE gold-empirical"; "RMSE Dawid-Skene" ]
    ~notes:
      [
        "gold-empirical sees the truth (upper bound); Dawid-Skene needs none \
         and should trail it only slightly once answers accumulate";
      ]
    rows

(* ---- abl-online ------------------------------------------------------------ *)

let online_vs_static ?(config = Config.default) () =
  let rng = Config.rng config in
  let n = 20 in
  let tasks = 200 in
  let confidence = 0.95 in
  let rows =
    List.map
      (fun budget ->
        let per_rep =
          Series.replicate_collect rng
            ~reps:(max 1 (config.reps / 4))
            (fun r ->
              let pool = Workers.Generator.gaussian_pool r config.generator n in
              (* Static: pick the jury once, pay it every task. *)
              let static =
                Optjs.select_jury
                  ~config:
                    {
                      Optjs.annealing = config.annealing;
                      num_buckets = config.num_buckets;
                    }
                  ~rng:r ~alpha:config.alpha ~budget pool
              in
              let static_cost = Jsp.Budget.jury_cost static.Jsp.Solver.jury in
              let adaptive policy =
                Crowd.Online.simulate_many r ~policy ~confidence ~budget
                  ~alpha:config.alpha ~tasks pool
              in
              let gain = adaptive Crowd.Online.By_information_gain in
              let qual = adaptive Crowd.Online.By_quality in
              ( static.Jsp.Solver.score,
                static_cost,
                gain.Crowd.Online.accuracy,
                gain.Crowd.Online.mean_cost,
                qual.Crowd.Online.accuracy,
                qual.Crowd.Online.mean_cost ))
        in
        let nth f = mean_of (List.map f per_rep) in
        [
          Printf.sprintf "%.2f" budget;
          pct (nth (fun (a, _, _, _, _, _) -> a));
          Printf.sprintf "%.3f" (nth (fun (_, b, _, _, _, _) -> b));
          pct (nth (fun (_, _, c, _, _, _) -> c));
          Printf.sprintf "%.3f" (nth (fun (_, _, _, d, _, _) -> d));
          pct (nth (fun (_, _, _, _, e, _) -> e));
          Printf.sprintf "%.3f" (nth (fun (_, _, _, _, _, f) -> f));
        ])
      [ 0.2; 0.4; 0.6 ]
  in
  Report.make ~id:"abl-online"
    ~title:
      "Static JSP vs adaptive collection (confidence 0.95, equal budget cap)"
    ~header:
      [
        "B"; "static JQ"; "static cost"; "adaptive(gain) acc"; "cost";
        "adaptive(quality) acc"; "cost";
      ]
    ~notes:
      [
        "expected: adaptive reaches comparable accuracy while spending less \
         on easy tasks; static has zero latency overhead";
      ]
    rows

(* ---- abl-multiclass ---------------------------------------------------------- *)

let random_confusion rng ~labels ~id =
  (* Diagonally-dominant random worker: diagonal weight drawn, off-diagonal
     mass split by a Dirichlet-ish draw. *)
  let diag = Prob.Distributions.sample_uniform rng ~lo:0.45 ~hi:0.9 in
  let matrix =
    Array.init labels (fun j ->
        Array.init labels (fun k ->
            if j = k then diag else (1. -. diag) /. float_of_int (labels - 1)))
  in
  let cost = Prob.Distributions.sample_uniform rng ~lo:0.02 ~hi:0.2 in
  Workers.Confusion.make ~id ~matrix ~cost ()

let multiclass_solvers ?(config = Config.default) () =
  let rng = Config.rng config in
  let labels = 3 in
  let n = 10 in
  let prior = Array.make labels (1. /. float_of_int labels) in
  let rows =
    List.map
      (fun budget ->
        let per_rep =
          Series.replicate_collect rng
            ~reps:(max 1 (config.reps / 4))
            (fun r ->
              let candidates =
                Array.init n (fun id -> random_confusion r ~labels ~id)
              in
              let exact =
                Jsp.Multi_jsp.exhaustive ~num_buckets:config.num_buckets ~prior
                  ~budget candidates
              in
              let annealed =
                Jsp.Multi_jsp.anneal ~params:config.annealing
                  ~num_buckets:config.num_buckets ~rng:r ~prior ~budget candidates
              in
              let greedy =
                Jsp.Multi_jsp.greedy ~num_buckets:config.num_buckets ~prior
                  ~budget candidates
              in
              ( exact.Jsp.Solver.score,
                annealed.Jsp.Solver.score,
                greedy.Jsp.Solver.score ))
        in
        [
          Printf.sprintf "%.2f" budget;
          pct (mean_of (List.map (fun (a, _, _) -> a) per_rep));
          pct (mean_of (List.map (fun (_, b, _) -> b) per_rep));
          pct (mean_of (List.map (fun (_, _, c) -> c) per_rep));
        ])
      [ 0.15; 0.3; 0.6 ]
  in
  Report.make ~id:"abl-multiclass"
    ~title:"Multi-class JSP solvers (3 labels, N = 10 matrix workers)"
    ~header:[ "B"; "exhaustive"; "anneal"; "greedy (spammer-score)" ]
    ~notes:[ "expected: anneal tracks exhaustive; greedy close behind" ]
    rows

(* ---- abl-difficulty -------------------------------------------------------------- *)

let difficulty_robustness ?(config = Config.default) () =
  let rng = Config.rng config in
  let tasks = 2_000 in
  let rows =
    List.map
      (fun spread ->
        let per_rep =
          Series.replicate_collect rng
            ~reps:(max 2 (config.reps / 4))
            (fun r ->
              let pool = Workers.Generator.gaussian_pool r config.generator 30 in
              let jury =
                (Optjs.select_jury
                   ~config:
                     {
                       Optjs.annealing = config.annealing;
                       num_buckets = config.num_buckets;
                     }
                   ~rng:r ~alpha:config.alpha ~budget:config.budget pool)
                  .Jsp.Solver.jury
              in
              let o =
                Crowd.Difficulty.campaign r ~jury ~alpha:config.alpha ~spread
                  ~tasks
              in
              (o.Crowd.Difficulty.predicted_jq, o.Crowd.Difficulty.realized_accuracy))
        in
        let predicted = mean_of (List.map fst per_rep) in
        let realized = mean_of (List.map snd per_rep) in
        [
          Printf.sprintf "%.2f" spread;
          pct predicted;
          pct realized;
          Printf.sprintf "%.2f%%" (100. *. (predicted -. realized));
        ])
      [ 0.0; 0.2; 0.4; 0.6; 0.8 ]
  in
  Report.make ~id:"abl-difficulty"
    ~title:
      "Model-violation robustness: JQ prediction vs realized accuracy under \
       task difficulty (GLAD-style)"
    ~header:[ "difficulty spread"; "predicted JQ"; "realized accuracy"; "gap" ]
    ~notes:
      [
        "spread = 0 is the paper's constant-quality model (gap ~ 0); the gap \
         grows with the spread, quantifying how much the model assumption \
         matters";
      ]
    rows

(* ---- abl-noise -------------------------------------------------------------------- *)

let estimation_noise ?(config = Config.default) () =
  let rng = Config.rng config in
  let rows =
    List.map
      (fun sigma ->
        let per_rep =
          Series.replicate_collect ~domains:config.Config.domains rng
            ~reps:(max 2 (config.reps / 4))
            (fun r ->
              let pool = Workers.Generator.gaussian_pool r config.generator 10 in
              let o =
                Jsp.Sensitivity.measure r ~samples:10 ~alpha:config.alpha
                  ~budget:0.3 ~sigma pool
              in
              (o.Jsp.Sensitivity.evaluation_error, o.Jsp.Sensitivity.selection_regret))
        in
        [
          Printf.sprintf "%.2f" sigma;
          Printf.sprintf "%.3f%%" (100. *. mean_of (List.map fst per_rep));
          Printf.sprintf "%.3f%%" (100. *. mean_of (List.map snd per_rep));
        ])
      [ 0.0; 0.02; 0.05; 0.10; 0.15 ]
  in
  Report.make ~id:"abl-noise"
    ~title:
      "Quality-estimation noise: JQ evaluation error and selection regret \
       (exhaustive JSP, N = 10, B = 0.3)"
    ~header:[ "noise sigma"; "evaluation error"; "selection regret" ]
    ~notes:
      [
        "both are zero when qualities are known exactly and grow with the \
         estimation noise; regret stays well below the evaluation error \
         (selection is more robust than prediction)";
      ]
    rows

(* ---- Index --------------------------------------------------------------------- *)

let ids =
  [
    "abl-solver"; "abl-buckets"; "abl-keepbest"; "abl-ties"; "abl-estimators";
    "abl-online"; "abl-multiclass"; "abl-difficulty"; "abl-noise";
  ]

let by_id name =
  match String.lowercase_ascii name with
  | "abl-solver" -> Some solver_comparison
  | "abl-buckets" -> Some bucket_resolution
  | "abl-keepbest" -> Some keep_best
  | "abl-ties" -> Some tie_breaking
  | "abl-estimators" -> Some estimators
  | "abl-online" -> Some online_vs_static
  | "abl-multiclass" -> Some multiclass_solvers
  | "abl-difficulty" -> Some difficulty_robustness
  | "abl-noise" -> Some estimation_noise
  | _ -> None

let all ?config () =
  [
    solver_comparison ?config (); bucket_resolution ?config ();
    keep_best ?config (); tie_breaking ?config (); estimators ?config ();
    online_vs_static ?config (); multiclass_solvers ?config ();
    difficulty_robustness ?config (); estimation_noise ?config ();
  ]
