(** ASCII charts for experiment tables.

    Renders a {!Report.table} whose first column is the x-axis and whose
    remaining columns are numeric series (plain numbers, percentages like
    ["93.40%"], or timings like ["0.012s"]) as a fixed-height character
    grid, one plotting symbol per series — enough to eyeball the shape of
    a figure (who is on top, where curves bend) straight from the bench
    output, without leaving the terminal. *)

val symbols : char array
(** Plotting symbols assigned to series columns in order: '*', '+', 'o',
    'x', '#', '@'. *)

val parse_cell : string -> float option
(** Numeric value of a cell: ["84.50%"] → 0.845, ["0.012s"] → 0.012,
    ["17"] → 17.; [None] when the cell is not numeric. *)

val render : ?height:int -> ?width:int -> Report.table -> string option
(** [render table] is the chart, or [None] when fewer than two rows or no
    numeric series column exists.  Default grid: 12 rows by up to 72
    columns.  The y-range spans the data (with a small margin); a legend
    line maps symbols to column names.  When two series collide on a cell
    the later series' symbol wins (drawn last ⇒ visible), which is the
    useful behaviour for "curves nearly coincide" figures. *)
