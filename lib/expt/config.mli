(** Experiment configuration — the §6.1.1 defaults in one record.

    The paper averages every point over 1,000 repetitions; that is
    wall-clock-prohibitive for a full regeneration run, so [reps] defaults
    lower and can be raised from the CLI ([--reps]).  All other values are
    the paper's. *)

type t = {
  seed : int;              (** Master seed; every replication splits from it. *)
  reps : int;              (** Replications averaged per plotted point
                               (default 100; paper: 1000 — raise with
                               [--reps] if you have the minutes). *)
  n_workers : int;         (** Candidate pool size N (paper: 50). *)
  budget : float;          (** Budget B (paper: 0.5). *)
  alpha : float;           (** Prior α (paper: 0.5). *)
  num_buckets : int;       (** Algorithm-1 resolution (paper: 50). *)
  generator : Workers.Generator.params;  (** Quality/cost Gaussians. *)
  annealing : Jsp.Annealing.params;      (** JSP schedule (paper ε = 1e-8). *)
  amt_questions : int;
      (** How many of the 600 synthetic-AMT questions the Figure-10 JSP
          sweeps solve (the paper solves all 600; default subsamples for
          wall-clock; raise with [--questions]). *)
  domains : int;
      (** OCaml domains used for replications (default 1; results are
          identical at any value — streams are pre-split). *)
}

val default : t

val fast : t
(** A smoke-test configuration (tiny reps) used by `dune runtest`. *)

val rng : t -> Prob.Rng.t
(** Fresh master generator for this configuration. *)

val with_reps : int -> t -> t
val with_seed : int -> t -> t
val with_questions : int -> t -> t
val with_domains : int -> t -> t
