let symbols = [| '*'; '+'; 'o'; 'x'; '#'; '@' |]

let parse_cell cell =
  let cell = String.trim cell in
  let number prefix_len = float_of_string_opt (String.trim (String.sub cell 0 prefix_len)) in
  let n = String.length cell in
  if n = 0 then None
  else if cell.[n - 1] = '%' then Option.map (fun v -> v /. 100.) (number (n - 1))
  else if n > 2 && String.sub cell (n - 2) 2 = "ms" then
    Option.map (fun v -> v /. 1e3) (number (n - 2))
  else if n > 2 && String.sub cell (n - 2) 2 = "us" then
    Option.map (fun v -> v /. 1e6) (number (n - 2))
  else if n > 1 && cell.[n - 1] = 's' then number (n - 1)
  else float_of_string_opt cell

(* Columns (beyond the first) where every row parses as a number. *)
let numeric_columns (table : Report.table) =
  let n_cols = List.length table.header in
  List.filter
    (fun col ->
      List.for_all
        (fun row ->
          match List.nth_opt row col with
          | Some cell -> parse_cell cell <> None
          | None -> false)
        table.rows)
    (List.init (n_cols - 1) (fun i -> i + 1))

let render ?(height = 12) ?(width = 72) (table : Report.table) =
  let columns = numeric_columns table in
  let n_rows = List.length table.rows in
  if columns = [] || n_rows < 2 || height < 2 then None
  else begin
    let series =
      List.map
        (fun col ->
          ( List.nth table.header col,
            List.map
              (fun row -> Option.get (parse_cell (List.nth row col)))
              table.rows ))
        columns
    in
    let all = List.concat_map snd series in
    let lo = List.fold_left Float.min infinity all in
    let hi = List.fold_left Float.max neg_infinity all in
    let margin = Float.max 1e-9 (0.05 *. (hi -. lo)) in
    let lo = lo -. margin and hi = hi +. margin in
    (* Spread the points over at least ~3 columns each so neighbouring
       series stay distinguishable on short sweeps. *)
    let plot_width = min width (max 24 (3 * n_rows)) in
    let grid = Array.make_matrix height plot_width ' ' in
    let x_of i = (i * (plot_width - 1)) / max 1 (n_rows - 1) in
    let y_of v =
      let frac = (v -. lo) /. (hi -. lo) in
      let y = int_of_float (Float.round (frac *. float_of_int (height - 1))) in
      height - 1 - max 0 (min (height - 1) y)
    in
    List.iteri
      (fun s (_, values) ->
        let symbol = symbols.(s mod Array.length symbols) in
        List.iteri (fun i v -> grid.(y_of v).(x_of i) <- symbol) values)
      series;
    let buf = Buffer.create 1024 in
    Array.iteri
      (fun row_idx row ->
        let label =
          if row_idx = 0 then Printf.sprintf "%8.4g |" hi
          else if row_idx = height - 1 then Printf.sprintf "%8.4g |" lo
          else Printf.sprintf "%8s |" ""
        in
        Buffer.add_string buf label;
        Buffer.add_string buf (String.init plot_width (Array.get row));
        Buffer.add_char buf '\n')
      grid;
    Buffer.add_string buf (Printf.sprintf "%8s +%s\n" "" (String.make plot_width '-'));
    let x_first = match table.rows with r :: _ -> List.hd r | [] -> "" in
    let x_last =
      match List.rev table.rows with r :: _ -> List.hd r | [] -> ""
    in
    Buffer.add_string
      (buf)
      (Printf.sprintf "%8s  %s%s%s\n" "" x_first
         (String.make (max 1 (plot_width - String.length x_first - String.length x_last)) ' ')
         x_last);
    Buffer.add_string buf "legend: ";
    List.iteri
      (fun s (name, _) ->
        if s > 0 then Buffer.add_string buf "  ";
        Buffer.add_char buf (symbols.(s mod Array.length symbols));
        Buffer.add_char buf '=';
        Buffer.add_string buf name)
      series;
    Buffer.add_char buf '\n';
    Some (Buffer.contents buf)
  end
