type driver = ?config:Config.t -> unit -> Report.table

let pct = Report.cell_pct

(* x-axis sweeps: inclusive float ranges. *)
let frange lo hi step =
  let n = int_of_float (Float.round ((hi -. lo) /. step)) in
  List.init (n + 1) (fun i -> lo +. (float_of_int i *. step))

let irange lo hi step =
  let rec go x acc = if x > hi then List.rev acc else go (x + step) (x :: acc) in
  go lo []

let mean_of xs = Prob.Stats.mean (Array.of_list xs)

(* Replicate a paired (mvjs, optjs) measurement and average both sides. *)
let mean_pair ?domains rng ~reps f =
  let pairs = Series.replicate_collect ?domains rng ~reps f in
  (mean_of (List.map fst pairs), mean_of (List.map snd pairs))

let optjs_config (config : Config.t) =
  { Optjs.num_buckets = config.num_buckets; annealing = config.annealing }

(* ------------------------------------------------------------------ *)
(* Figure 1                                                            *)
(* ------------------------------------------------------------------ *)

let fig1 ?config:_ () =
  let pool = Workers.Generator.figure1_pool () in
  let table =
    Jsp.Table.build ~budgets:[ 5.; 10.; 15.; 20. ] pool ~solve:(fun ~budget pool ->
        Jsp.Enumerate.solve Jsp.Objective.bv_exact ~alpha:0.5 ~budget pool)
  in
  let rows =
    List.map
      (fun (r : Jsp.Table.row) ->
        [
          Printf.sprintf "%g" r.budget;
          "{"
          ^ String.concat ", "
              (List.map Workers.Worker.name (Workers.Pool.to_list r.jury))
          ^ "}";
          pct r.quality;
          Printf.sprintf "%g" r.required;
        ])
      table
  in
  Report.make ~id:"fig1" ~title:"Budget-quality table for workers A-G (Figure 1)"
    ~header:[ "Budget"; "Optimal Jury Set"; "Quality"; "Required" ]
    ~notes:
      [
        "paper rows: 5 -> {F,G} 75%; 10 -> {C,G} 80%; 15 -> {B,C,G} 84.5%; \
         20 -> {A,C,F,G} 86.95%";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* Figure 2                                                            *)
(* ------------------------------------------------------------------ *)

let fig2 ?config:_ () =
  let qualities = Workers.Generator.example2_qualities in
  let alpha = 0.5 in
  let breakdown strategy =
    Jq.Exact.jq_table strategy ~alpha ~qualities
  in
  let mv_rows = breakdown Voting.Classic.majority in
  let bv_rows = breakdown Voting.Bayesian.strategy in
  let fmt_voting v =
    "{"
    ^ String.concat ","
        (List.map (fun x -> string_of_int (Voting.Vote.to_int x)) (Array.to_list v))
    ^ "}"
  in
  let rows =
    List.map2
      (fun (v, p0, p1, mv_contrib) (_, _, _, bv_contrib) ->
        [
          fmt_voting v;
          Report.cell_float p0;
          Report.cell_float p1;
          Report.cell_float mv_contrib;
          Report.cell_float bv_contrib;
        ])
      mv_rows bv_rows
  in
  let jq_mv = Jq.Exact.jq Voting.Classic.majority ~alpha ~qualities in
  let jq_bv = Jq.Exact.jq Voting.Bayesian.strategy ~alpha ~qualities in
  Report.make ~id:"fig2"
    ~title:"Worked JQ example, qualities (0.9, 0.6, 0.6), alpha = 0.5 (Figure 2)"
    ~header:[ "V"; "P0(V)"; "P1(V)"; "MV adds"; "BV adds" ]
    ~notes:
      [
        Printf.sprintf "JQ(J,MV,0.5) = %s (paper: 79.2%%)" (pct jq_mv);
        Printf.sprintf "JQ(J,BV,0.5) = %s (paper: 90%%)" (pct jq_bv);
      ]
    rows

(* ------------------------------------------------------------------ *)
(* Figure 6: end-to-end MVJS vs OPTJS                                  *)
(* ------------------------------------------------------------------ *)

let compare_systems (config : Config.t) rng ~generator ~n ~budget =
  let pool = Workers.Generator.gaussian_pool rng generator n in
  let mv =
    Jsp.Mvjs.select ~params:config.annealing ~rng ~alpha:config.alpha ~budget pool
  in
  let opt =
    Optjs.select_jury ~config:(optjs_config config) ~rng ~alpha:config.alpha
      ~budget pool
  in
  (mv.Jsp.Solver.score, opt.Jsp.Solver.score)

let fig6 ~id ~title ~xlabel ~xs ~fmt_x ~instantiate config =
  let rng = Config.rng config in
  let rows =
    List.map
      (fun x ->
        let generator, n, budget = instantiate config x in
        let mv, opt =
          mean_pair ~domains:config.Config.domains rng ~reps:config.Config.reps (fun r ->
              compare_systems config r ~generator ~n ~budget)
        in
        [ fmt_x x; pct mv; pct opt ])
      xs
  in
  Report.make ~id ~title ~header:[ xlabel; "MVJS"; "OPTJS" ]
    ~notes:
      [
        Printf.sprintf "reps=%d seed=%d; paper averages 1000 reps"
          config.Config.reps config.Config.seed;
        "expected shape: OPTJS above MVJS everywhere";
      ]
    rows

let fig6a ?(config = Config.default) () =
  fig6 ~id:"fig6a" ~title:"MVJS vs OPTJS, varying quality mean (Figure 6a)"
    ~xlabel:"mu" ~xs:(frange 0.5 1.0 0.05)
    ~fmt_x:(Printf.sprintf "%.2f")
    ~instantiate:(fun c mu ->
      ({ c.generator with quality_mu = mu }, c.n_workers, c.budget))
    config

let fig6b ?(config = Config.default) () =
  fig6 ~id:"fig6b" ~title:"MVJS vs OPTJS, varying budget (Figure 6b)"
    ~xlabel:"B" ~xs:(frange 0.1 1.0 0.1)
    ~fmt_x:(Printf.sprintf "%.1f")
    ~instantiate:(fun c budget -> (c.generator, c.n_workers, budget))
    config

let fig6c ?(config = Config.default) () =
  fig6 ~id:"fig6c" ~title:"MVJS vs OPTJS, varying pool size (Figure 6c)"
    ~xlabel:"N"
    ~xs:(List.map float_of_int (irange 10 100 10))
    ~fmt_x:(fun x -> string_of_int (int_of_float x))
    ~instantiate:(fun c n -> (c.generator, int_of_float n, c.budget))
    config

let fig6d ?(config = Config.default) () =
  fig6 ~id:"fig6d" ~title:"MVJS vs OPTJS, varying cost deviation (Figure 6d)"
    ~xlabel:"cost_sigma" ~xs:(frange 0.1 1.0 0.1)
    ~fmt_x:(Printf.sprintf "%.1f")
    ~instantiate:(fun c sigma ->
      ({ c.generator with cost_sigma = sigma }, c.n_workers, c.budget))
    config

(* ------------------------------------------------------------------ *)
(* Figure 7(a) + Table 3: annealing vs exhaustive optimum              *)
(* ------------------------------------------------------------------ *)

let fig7a_and_tab3 ?(config = Config.default) () =
  let rng = Config.rng config in
  let budgets = frange 0.05 0.5 0.05 in
  let n = 11 in
  let objective = Jsp.Objective.bv_bucket ~num_buckets:config.num_buckets () in
  let differences = ref [] in
  let rows =
    List.map
      (fun budget ->
        let pairs =
          Series.replicate_collect ~domains:config.Config.domains rng ~reps:config.reps (fun r ->
              let pool = Workers.Generator.gaussian_pool r config.generator n in
              let star =
                Jsp.Enumerate.solve objective ~alpha:config.alpha ~budget pool
              in
              (* The production solver: annealing plus greedy seeds (the
                 swap-only neighborhood cannot shrink a full jury, so the
                 greedy seeds cover compositions annealing cannot reach). *)
              let annealed =
                Jsp.Annealing.solve ~params:config.annealing objective ~rng:r
                  ~alpha:config.alpha ~budget pool
              in
              let greedy =
                Jsp.Greedy.best_of_all objective ~alpha:config.alpha ~budget pool
              in
              let hat = Jsp.Solver.best annealed greedy in
              (star.Jsp.Solver.score, hat.Jsp.Solver.score))
        in
        List.iter (fun (s, h) -> differences := (s -. h) :: !differences) pairs;
        [
          Printf.sprintf "%.2f" budget;
          pct (mean_of (List.map fst pairs));
          pct (mean_of (List.map snd pairs));
        ])
      budgets
  in
  let fig =
    Report.make ~id:"fig7a"
      ~title:"JQ of optimal J* vs annealed J^, N = 11 (Figure 7a)"
      ~header:[ "B"; "JQ(J*)"; "JQ(J^)" ]
      ~notes:[ "expected shape: the two curves nearly coincide" ]
      rows
  in
  (* Table 3 counts the per-run gaps in percent ranges
     [0, 0.01], (0.01, 0.1], (0.1, 1], (1, 3], (3, inf). *)
  let ranges = Prob.Histogram.Ranges.create [ 0.0001; 0.001; 0.01; 0.03 ] in
  List.iter (fun d -> Prob.Histogram.Ranges.add ranges (Float.max 0. d)) !differences;
  let labels = [ "[0,0.01]%"; "(0.01,0.1]%"; "(0.1,1]%"; "(1,3]%"; "(3,inf)%" ] in
  let counts = Array.to_list (Prob.Histogram.Ranges.counts ranges) in
  let tab =
    Report.make ~id:"tab3"
      ~title:"Counts of JQ(J*) - JQ(J^) per error range (Table 3)"
      ~header:[ "range"; "count" ]
      ~notes:
        [
          Printf.sprintf "total runs: %d (paper: 10000)" (List.length !differences);
          "paper counts: 9301 / 231 / 408 / 60 / 0 - mass concentrated in \
           the lowest range, none above 3%";
        ]
      (List.map2 (fun l c -> [ l; string_of_int c ]) labels counts)
  in
  (fig, tab)

let fig7a ?config () = fst (fig7a_and_tab3 ?config ())
let tab3 ?config () = snd (fig7a_and_tab3 ?config ())

(* ------------------------------------------------------------------ *)
(* Figure 7(b): JSP runtime scaling                                    *)
(* ------------------------------------------------------------------ *)

(* Per-cell comparison: the seed solver (from-scratch Bucket.run per move)
   against the cached + incremental engine on the same pools.  The per-rep
   closure returns cache stats rather than bumping shared counters — the
   reps fan out over domains. *)
let fig7b ?(config = Config.default) () =
  let rng = Config.rng config in
  let budgets = [ 0.05; 0.20; 0.35; 0.50 ] in
  let reps = max 1 (config.reps / 10) in
  let totals = ref Jsp.Objective_cache.empty_stats in
  let rows =
    List.map
      (fun n ->
        let cells =
          List.map
            (fun budget ->
              let runs =
                Series.replicate_collect ~domains:config.Config.domains rng ~reps (fun r ->
                    let pool = Workers.Generator.gaussian_pool r config.generator n in
                    let _, seed_s =
                      Series.timed (fun () ->
                          Jsp.Annealing.solve ~params:config.annealing
                            (Jsp.Objective.bv_bucket
                               ~num_buckets:config.num_buckets ())
                            ~rng:r ~alpha:config.alpha ~budget pool)
                    in
                    let inc, inc_s =
                      Series.timed (fun () ->
                          Jsp.Annealing.solve_optjs ~params:config.annealing
                            ~num_buckets:config.num_buckets ~rng:r
                            ~alpha:config.alpha ~budget pool)
                    in
                    (seed_s, inc_s, inc.Jsp.Solver.cache))
              in
              List.iter
                (fun (_, _, cache) ->
                  match cache with
                  | Some s -> totals := Jsp.Objective_cache.merge_stats !totals s
                  | None -> ())
                runs;
              let seed_t = mean_of (List.map (fun (s, _, _) -> s) runs) in
              let inc_t = mean_of (List.map (fun (_, s, _) -> s) runs) in
              Printf.sprintf "%.3fs→%.3fs (%.1fx)" seed_t inc_t
                (if inc_t > 0. then seed_t /. inc_t else Float.infinity))
            budgets
        in
        string_of_int n :: cells)
      (irange 100 500 100)
  in
  Report.make ~id:"fig7b"
    ~title:"JSP (annealing) runtime vs N: seed solver → cached incremental (Figure 7b)"
    ~header:("N" :: List.map (Printf.sprintf "B=%.2f") budgets)
    ~notes:
      [
        "expected shape: roughly linear in N; paper reports < 2.5s at N=500 \
         (Python 2.7)";
        "cells: from-scratch solver → cached+incremental engine (speedup)";
        Format.asprintf "cache totals: %a" Jsp.Objective_cache.pp_stats !totals;
      ]
    rows

(* ------------------------------------------------------------------ *)
(* Figure 8: strategy comparison                                       *)
(* ------------------------------------------------------------------ *)

let strategy_names = [ "MV"; "BV"; "RBV"; "RMV" ]

let strategy_jqs config rng ~mu ~n =
  let generator = { config.Config.generator with quality_mu = mu } in
  let qualities =
    Workers.Pool.qualities (Workers.Generator.gaussian_pool rng generator n)
  in
  List.map
    (fun s -> Jq.Exact.jq s ~alpha:config.Config.alpha ~qualities)
    Voting.Registry.comparison_set

let fig8 ~id ~title ~xlabel ~xs ~fmt_x ~point config =
  let rng = Config.rng config in
  let rows =
    List.map
      (fun x ->
        let samples =
          Series.replicate_collect ~domains:config.Config.domains rng ~reps:config.Config.reps (fun r ->
              point config r x)
        in
        let means =
          List.init (List.length strategy_names) (fun i ->
              mean_of (List.map (fun l -> List.nth l i) samples))
        in
        fmt_x x :: List.map pct means)
      xs
  in
  Report.make ~id ~title
    ~header:(xlabel :: strategy_names)
    ~notes:[ "expected shape: BV highest everywhere; RBV pinned at 50%" ]
    rows

let fig8a ?(config = Config.default) () =
  fig8 ~id:"fig8a" ~title:"JQ per strategy, n = 11, varying mu (Figure 8a)"
    ~xlabel:"mu" ~xs:(frange 0.5 1.0 0.05)
    ~fmt_x:(Printf.sprintf "%.2f")
    ~point:(fun config r mu -> strategy_jqs config r ~mu ~n:11)
    config

let fig8b ?(config = Config.default) () =
  fig8 ~id:"fig8b" ~title:"JQ per strategy, mu = 0.7, varying n (Figure 8b)"
    ~xlabel:"n"
    ~xs:(List.map float_of_int (irange 1 11 1))
    ~fmt_x:(fun x -> string_of_int (int_of_float x))
    ~point:(fun config r n -> strategy_jqs config r ~mu:0.7 ~n:(int_of_float n))
    config

(* ------------------------------------------------------------------ *)
(* Figure 9: JQ(J, BV, 0.5) computation                                *)
(* ------------------------------------------------------------------ *)

let fig9a ?(config = Config.default) () =
  let rng = Config.rng config in
  let variances = [ 0.01; 0.03; 0.05; 0.10 ] in
  let rows =
    List.map
      (fun mu ->
        let cells =
          List.map
            (fun variance ->
              let generator =
                {
                  config.generator with
                  quality_mu = mu;
                  quality_sigma = sqrt variance;
                }
              in
              pct
                (Series.mean ~domains:config.Config.domains rng ~reps:config.reps (fun r ->
                     Jq.Bucket.estimate ~num_buckets:config.num_buckets
                       ~alpha:config.alpha
                       (Workers.Pool.qualities
                          (Workers.Generator.gaussian_pool r generator 11)))))
            variances
        in
        Printf.sprintf "%.2f" mu :: cells)
      (frange 0.5 1.0 0.05)
  in
  Report.make ~id:"fig9a"
    ~title:"JQ(J, BV, 0.5) vs mu for quality variances (Figure 9a)"
    ~header:("mu" :: List.map (Printf.sprintf "var=%.2f") variances)
    ~notes:
      [ "expected shape: higher variance helps at mu = 0.5, curves merge near 1" ]
    rows

let approximation_errors config rng ~num_buckets ~samples =
  Series.replicate_collect ~domains:config.Config.domains rng ~reps:samples (fun r ->
      let qualities =
        Workers.Pool.qualities
          (Workers.Generator.gaussian_pool r config.Config.generator 11)
      in
      let exact = Jq.Exact.jq_optimal ~alpha:config.Config.alpha ~qualities in
      let approx =
        Jq.Bucket.estimate ~num_buckets ~alpha:config.Config.alpha qualities
      in
      exact -. approx)

let fig9b ?(config = Config.default) () =
  let rng = Config.rng config in
  let rows =
    List.map
      (fun num_buckets ->
        let errors =
          approximation_errors config rng ~num_buckets ~samples:config.reps
        in
        [
          string_of_int num_buckets;
          Printf.sprintf "%.5f%%" (100. *. mean_of errors);
          Printf.sprintf "%.5f%%"
            (100.
            *. Jq.Bounds.additive_bound ~upper:Jq.Bounds.logit_upper_default
                 ~num_buckets ~n:11);
        ])
      [ 10; 25; 50; 75; 100; 150; 200 ]
  in
  Report.make ~id:"fig9b"
    ~title:"Approximation error vs numBuckets, n = 11 (Figure 9b)"
    ~header:[ "numBuckets"; "mean error"; "worst-case bound" ]
    ~notes:[ "expected shape: error drops sharply and approaches 0" ]
    rows

let fig9c ?(config = Config.default) () =
  let rng = Config.rng config in
  let samples = max 200 (config.reps * 10) in
  let errors =
    approximation_errors config rng ~num_buckets:config.num_buckets ~samples
  in
  let hist = Prob.Histogram.create ~lo:0. ~hi:0.0001 ~buckets:5 in
  List.iter (fun e -> Prob.Histogram.add hist (Float.max 0. e)) errors;
  let rows =
    List.mapi
      (fun i c ->
        let lo, hi = Prob.Histogram.bucket_bounds hist i in
        [ Printf.sprintf "[%.3f%%, %.3f%%)" (100. *. lo) (100. *. hi); string_of_int c ])
      (Array.to_list (Prob.Histogram.counts hist))
  in
  Report.make ~id:"fig9c"
    ~title:"Histogram of approximation errors, numBuckets = 50 (Figure 9c)"
    ~header:[ "error range"; "frequency" ]
    ~notes:
      [
        Printf.sprintf "samples: %d; max observed error: %.5f%%" samples
          (100. *. List.fold_left Float.max 0. errors);
        "expected shape: heavily skewed to the lowest bucket; max within 0.01%";
      ]
    rows

let fig9d ?(config = Config.default) () =
  let rng = Config.rng config in
  let reps = max 1 (config.reps / 10) in
  let rows =
    List.map
      (fun n ->
        let time ~pruning =
          mean_of
            (Series.replicate_collect ~domains:config.Config.domains rng ~reps (fun r ->
                 let qualities =
                   Workers.Pool.qualities
                     (Workers.Generator.gaussian_pool r config.generator n)
                 in
                 snd
                   (Series.timed (fun () ->
                        Jq.Bucket.estimate ~num_buckets:config.num_buckets
                          ~pruning ~alpha:config.alpha qualities))))
        in
        (* Per-swap cost of the incremental accumulator on the same jury
           size: one remove + add + value against a warm key map, i.e. what
           the annealer pays per move instead of a full re-estimate. *)
        let swap_time =
          mean_of
            (Series.replicate_collect ~domains:config.Config.domains rng ~reps (fun r ->
                 let qualities =
                   Workers.Pool.qualities
                     (Workers.Generator.gaussian_pool r config.generator n)
                 in
                 let acc =
                   Jq.Incremental.create ~num_buckets:config.num_buckets
                     ~alpha:config.alpha ()
                 in
                 Array.iter (Jq.Incremental.add_worker acc) qualities;
                 let q = qualities.(0) in
                 snd
                   (Series.timed (fun () ->
                        Jq.Incremental.remove_worker acc q;
                        Jq.Incremental.add_worker acc q;
                        ignore (Jq.Incremental.value acc)))))
        in
        [
          string_of_int n;
          Printf.sprintf "%.3fs" (time ~pruning:true);
          Printf.sprintf "%.3fs" (time ~pruning:false);
          Printf.sprintf "%.2f ms" (1000. *. swap_time);
        ])
      (irange 100 500 100)
  in
  Report.make ~id:"fig9d"
    ~title:"EstimateJQ runtime with vs without pruning (Figure 9d)"
    ~header:[ "n"; "with pruning"; "without pruning"; "incr per swap" ]
    ~notes:
      [
        "expected shape: pruning at least halves the cost; paper reports \
         ~1s vs ~2.5s at n = 500 (Python 2.7)";
        "incr per swap: one remove+add+value on a warm Jq.Incremental map \
         (what the annealer pays per move)";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* Figure 10: synthetic-AMT dataset                                    *)
(* ------------------------------------------------------------------ *)

let amt_dataset config =
  Crowd.Amt_dataset.generate (Prob.Rng.create (config.Config.seed + 1))

(* Evenly spaced question subsample so a cheap run still spans the corpus. *)
let question_sample config (dataset : Crowd.Amt_dataset.t) =
  let total = Array.length dataset.tasks in
  let wanted = min config.Config.amt_questions total in
  List.init wanted (fun i -> i * total / wanted)

let draw_costs rng ~n_workers ~cost_sigma =
  Array.init n_workers (fun _ ->
      Prob.Distributions.sample_gaussian_truncated rng ~mu:0.05 ~sigma:cost_sigma
        ~lo:0.01 ~hi:infinity)

let amt_compare config rng dataset ~budget ~n_candidates ~cost_sigma =
  let costs =
    draw_costs rng ~n_workers:dataset.Crowd.Amt_dataset.params.n_workers ~cost_sigma
  in
  let questions = question_sample config dataset in
  let scores =
    List.map
      (fun task_id ->
        let pool =
          Workers.Pool.take n_candidates
            (Crowd.Amt_dataset.candidate_pool dataset ~costs ~task_id)
        in
        let mv =
          Jsp.Mvjs.select ~params:config.Config.annealing ~rng
            ~alpha:config.Config.alpha ~budget pool
        in
        let opt =
          Optjs.select_jury ~config:(optjs_config config) ~rng
            ~alpha:config.Config.alpha ~budget pool
        in
        (mv.Jsp.Solver.score, opt.Jsp.Solver.score))
      questions
  in
  (mean_of (List.map fst scores), mean_of (List.map snd scores))

let fig10 ~id ~title ~xlabel ~xs ~fmt_x ~instantiate config =
  let dataset = amt_dataset config in
  let rng = Config.rng config in
  let reps = max 1 (config.Config.reps / 10) in
  let rows =
    List.map
      (fun x ->
        let budget, n_candidates, cost_sigma = instantiate config x in
        let mv, opt =
          mean_pair ~domains:config.Config.domains rng ~reps (fun r ->
              amt_compare config r dataset ~budget ~n_candidates ~cost_sigma)
        in
        [ fmt_x x; pct mv; pct opt ])
      xs
  in
  Report.make ~id ~title ~header:[ xlabel; "MVJS"; "OPTJS" ]
    ~notes:
      [
        Printf.sprintf "questions=%d reps=%d (paper: all 600 questions)"
          config.Config.amt_questions reps;
        "expected shape: same pattern as the synthetic Figure 6 sweeps; \
         OPTJS above MVJS";
      ]
    rows

let fig10a ?(config = Config.default) () =
  fig10 ~id:"fig10a" ~title:"Synthetic-AMT data, varying budget (Figure 10a)"
    ~xlabel:"B" ~xs:(frange 0.2 1.0 0.1)
    ~fmt_x:(Printf.sprintf "%.1f")
    ~instantiate:(fun _ b -> (b, 20, sqrt 0.2))
    config

let fig10b ?(config = Config.default) () =
  fig10 ~id:"fig10b" ~title:"Synthetic-AMT data, varying N (Figure 10b)"
    ~xlabel:"N"
    ~xs:(List.map float_of_int [ 3; 6; 9; 12; 15; 18; 20 ])
    ~fmt_x:(fun x -> string_of_int (int_of_float x))
    ~instantiate:(fun c n -> (c.Config.budget, int_of_float n, sqrt 0.2))
    config

let fig10c ?(config = Config.default) () =
  fig10 ~id:"fig10c"
    ~title:"Synthetic-AMT data, varying cost deviation (Figure 10c)"
    ~xlabel:"cost_sigma" ~xs:(frange 0.1 1.0 0.1)
    ~fmt_x:(Printf.sprintf "%.1f")
    ~instantiate:(fun c s -> (c.Config.budget, 20, s))
    config

let fig10d ?(config = Config.default) () =
  let dataset = amt_dataset config in
  let rows =
    List.map
      (fun z ->
        let grade =
          Crowd.Evaluate.strategy_on_dataset ~num_buckets:config.num_buckets
            ~strategy:Voting.Bayesian.strategy ~z dataset
        in
        [ string_of_int z; pct grade.accuracy; pct grade.average_jq ])
      (irange 3 20 1)
  in
  Report.make ~id:"fig10d"
    ~title:"Is JQ a good prediction? First-z-votes accuracy vs JQ (Figure 10d)"
    ~header:[ "z"; "accuracy"; "average JQ" ]
    ~notes:[ "expected shape: the two columns track each other closely" ]
    rows

(* ------------------------------------------------------------------ *)
(* Index                                                               *)
(* ------------------------------------------------------------------ *)

let ids =
  [
    "fig1"; "fig2"; "fig6a"; "fig6b"; "fig6c"; "fig6d"; "fig7a"; "tab3";
    "fig7b"; "fig8a"; "fig8b"; "fig9a"; "fig9b"; "fig9c"; "fig9d"; "fig10a";
    "fig10b"; "fig10c"; "fig10d";
  ]

let by_id name =
  match String.lowercase_ascii name with
  | "fig1" -> Some fig1
  | "fig2" -> Some fig2
  | "fig6a" -> Some fig6a
  | "fig6b" -> Some fig6b
  | "fig6c" -> Some fig6c
  | "fig6d" -> Some fig6d
  | "fig7a" -> Some fig7a
  | "tab3" -> Some tab3
  | "fig7b" -> Some fig7b
  | "fig8a" -> Some fig8a
  | "fig8b" -> Some fig8b
  | "fig9a" -> Some fig9a
  | "fig9b" -> Some fig9b
  | "fig9c" -> Some fig9c
  | "fig9d" -> Some fig9d
  | "fig10a" -> Some fig10a
  | "fig10b" -> Some fig10b
  | "fig10c" -> Some fig10c
  | "fig10d" -> Some fig10d
  | _ -> None

let all ?config () =
  let fig7a_t, tab3_t = fig7a_and_tab3 ?config () in
  [
    fig1 ?config (); fig2 ?config (); fig6a ?config (); fig6b ?config ();
    fig6c ?config (); fig6d ?config (); fig7a_t; tab3_t; fig7b ?config ();
    fig8a ?config (); fig8b ?config (); fig9a ?config (); fig9b ?config ();
    fig9c ?config (); fig9d ?config (); fig10a ?config (); fig10b ?config ();
    fig10c ?config (); fig10d ?config ();
  ]
