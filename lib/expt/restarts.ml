(* Multi-seed annealing restarts.

   Annealing is a randomized search: independent restarts from distinct RNG
   seeds explore different trajectories, and the best-of fold dominates any
   single run.  Each restart owns its own seed-derived RNG and its own
   incremental accumulator/cache, so the restarts are embarrassingly
   parallel and [Parallel.map] keeps results in seed order — the outcome is
   bit-identical whatever the domain count. *)

type 'jury outcome = {
  best : 'jury Jsp.Solver.result;
  seed : int;                            (* The seed that produced [best]. *)
  runs : 'jury Jsp.Solver.result list;   (* Per-seed results, in seed order. *)
}

let cache_totals runs =
  List.fold_left
    (fun acc (r : _ Jsp.Solver.result) ->
      match r.cache with
      | None -> acc
      | Some s -> Some (Jsp.Objective_cache.merge_stats (Option.value acc ~default:Jsp.Objective_cache.empty_stats) s))
    None runs

let best_of ~seeds runs =
  let best, seed =
    List.fold_left2
      (fun (b, bs) r s -> if r.Jsp.Solver.score > b.Jsp.Solver.score then (r, s) else (b, bs))
      (List.hd runs, List.hd seeds)
      (List.tl runs) (List.tl seeds)
  in
  { best; seed; runs }

let run ?domains ?params ?cache ~seeds ~alpha ~budget objective pool =
  if seeds = [] then invalid_arg "Restarts.run: no seeds";
  let solve seed =
    let rng = Prob.Rng.create seed in
    Jsp.Annealing.solve_incremental ?params ?cache objective ~rng ~alpha
      ~budget pool
  in
  best_of ~seeds (Parallel.map ?domains solve seeds)

let run_optjs ?domains ?params ?num_buckets ?cache ~seeds ~alpha ~budget pool =
  run ?domains ?params ?cache ~seeds ~alpha ~budget
    (Jsp.Objective.bv_bucket_incremental ?num_buckets ())
    pool

let run_mvjs ?domains ?params ?cache ~seeds ~alpha ~budget pool =
  run ?domains ?params ?cache ~seeds ~alpha ~budget
    Jsp.Objective.mv_closed_incremental pool

let run_engine ?domains ?params ?num_buckets ?cache ~seeds ~task ~budget epool =
  if seeds = [] then invalid_arg "Restarts.run_engine: no seeds";
  let solve seed =
    let rng = Prob.Rng.create seed in
    Jsp.Annealing.solve_engine ?params ?num_buckets ?cache ~rng ~task ~budget
      epool
  in
  best_of ~seeds (Parallel.map ?domains solve seeds)

let run_multi ?domains ?params ?num_buckets ?cache ~seeds ~prior ~budget
    candidates =
  if seeds = [] then invalid_arg "Restarts.run_multi: no seeds";
  let solve seed =
    let rng = Prob.Rng.create seed in
    Jsp.Multi_jsp.anneal ?params ?num_buckets ?cache ~rng ~prior ~budget
      candidates
  in
  best_of ~seeds (Parallel.map ?domains solve seeds)

let seeds_from ~seed ~restarts =
  if restarts <= 0 then invalid_arg "Restarts.seeds_from: restarts <= 0";
  List.init restarts (fun i -> seed + i)
