(** Confusion-matrix worker model for multi-choice tasks (§7).

    A worker over ℓ labels is described by an ℓ×ℓ row-stochastic matrix C
    where [C.(j).(k)] is the probability of voting label [k] when the true
    answer is label [j].  The binary single-quality model embeds as the 2×2
    matrix [[q, 1−q], [1−q, q]]. *)

type t
(** A validated confusion matrix together with the worker's cost. *)

val make : ?name:string -> id:int -> matrix:float array array -> cost:float -> unit -> t
(** Validates: square, ℓ ≥ 2, rows nonnegative summing to 1 (±1e-9), cost ≥ 0.
    Rows are renormalized to remove the residual rounding.  The matrix is
    copied.  @raise Invalid_argument on violations. *)

val of_binary : Worker.t -> t
(** Embed a binary quality-q worker as a symmetric 2×2 matrix. *)

val id : t -> int
val name : t -> string
val cost : t -> float
val labels : t -> int
(** Number of labels ℓ. *)

val prob : t -> truth:int -> vote:int -> float
(** [prob c ~truth ~vote] is Pr(worker votes [vote] | true label [truth]).
    @raise Invalid_argument on out-of-range labels. *)

val row : t -> int -> float array
(** Copy of the distribution over votes when the truth is the given label. *)

val unsafe_row : t -> int -> float array
(** The same distribution {e without} the defensive copy — the backing
    array itself, which must not be mutated.  For allocation-free kernel
    prologues ({!Jq.Multiclass_jq}) that read each row element-wise:
    unlike per-entry {!prob} calls, float reads from the returned array
    stay unboxed.  @raise Invalid_argument on an out-of-range label. *)

val accuracy_given_uniform_prior : t -> float
(** Mean diagonal: the probability of a correct vote when all truths are
    equally likely — a scalar summary used when ranking matrix workers. *)

val diagonal_dominant : t -> bool
(** Whether each row's diagonal entry is its (weak) maximum — the
    matrix analogue of q ≥ 0.5. *)

val symmetric_quality : t -> float option
(** [Some q] when the matrix is exactly (bitwise) the symmetric 2×2
    [[q, 1−q], [1−q, q]] — i.e. the worker admits a lossless scalar-quality
    representation — and [None] otherwise.  The engine uses this to route
    ℓ=2 symmetric pools onto the dense binary fast paths. *)

val symmetric_binary : quality:float -> id:int -> cost:float -> t
(** Convenience builder for a 2×2 quality-q matrix. *)

val uniform_spammer : labels:int -> id:int -> cost:float -> t
(** The worker who votes uniformly at random regardless of the truth. *)

val pp : Format.formatter -> t -> unit
