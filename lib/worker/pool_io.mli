(** Loading and saving worker pools as CSV.

    Format: a header line [name,quality,cost] (optional) followed by one
    worker per line, e.g.

    {v
    name,quality,cost
    A,0.77,9
    B,0.7,5
    v}

    Ids are assigned by position.  Lines that are empty or start with [#]
    are skipped. *)

val of_csv_string : string -> Pool.t
(** Parse a CSV document.  @raise Failure with a line-numbered message on
    malformed rows, NaN or out-of-range qualities ([0, 1]) and costs
    (finite, nonnegative). *)

val to_csv_string : Pool.t -> string
(** Serialize with a header line.  [of_csv_string (to_csv_string p)] equals
    [p] up to ids being renumbered by position. *)

val load : string -> Pool.t
(** Read a pool from a file path.  The channel is closed even when parsing
    fails.  @raise Sys_error / Failure. *)

val save : string -> Pool.t -> unit
(** Write a pool to a file path (channel closed on error too). *)
