(** Loading and saving worker pools as CSV.

    Scalar format: a header line [name,quality,cost] (optional) followed
    by one worker per line, e.g.

    {v
    name,quality,cost
    A,0.77,9
    B,0.7,5
    v}

    Matrix format (§7 confusion-matrix workers): header [name,cost,matrix]
    (optional), then [name,cost] followed by the ℓ² row-major entries of a
    row-stochastic ℓ×ℓ matrix — ℓ is inferred from the field count, e.g.
    for ℓ = 3:

    {v
    name,cost,matrix
    A,2,0.8,0.1,0.1,0.2,0.7,0.1,0.1,0.2,0.7
    v}

    A scalar row has exactly 3 fields and a matrix row at least 6, so the
    first data row fixes a document's kind unambiguously; one document
    holds one kind.  Ids are assigned by position.  Lines that are empty
    or start with [#] are skipped. *)

type doc =
  | Scalar_rows of Pool.t
  | Matrix_rows of Confusion.t array
      (** A parsed document: one worker model throughout. *)

val of_csv_string : string -> Pool.t
(** Parse a CSV document.  @raise Failure with a line-numbered message on
    malformed rows, NaN or out-of-range qualities ([0, 1]) and costs
    (finite, nonnegative). *)

val to_csv_string : Pool.t -> string
(** Serialize with a header line.  [of_csv_string (to_csv_string p)] equals
    [p] up to ids being renumbered by position. *)

val doc_of_csv_string : string -> doc
(** Parse either format; the first data row decides which (3 fields =
    scalar, otherwise matrix).  An empty document is an empty
    [Scalar_rows].  @raise Failure with a line-numbered message on
    malformed rows, mixed label counts, non-square matrix rows or rows not
    summing to 1 (±1e-9 — the {!Confusion.make} tolerance). *)

val doc_to_csv_string : doc -> string
(** Serialize with the kind's header line; inverse of
    {!doc_of_csv_string} up to ids being renumbered by position. *)

val load : string -> Pool.t
(** Read a pool from a file path.  The channel is closed even when parsing
    fails.  @raise Sys_error / Failure. *)

val save : string -> Pool.t -> unit
(** Write a pool to a file path (channel closed on error too). *)

val load_doc : string -> doc
(** {!doc_of_csv_string} over a file.  @raise Sys_error / Failure. *)

val save_doc : string -> doc -> unit
(** {!doc_to_csv_string} to a file. *)
