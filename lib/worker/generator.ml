type params = {
  quality_mu : float;
  quality_sigma : float;
  cost_mu : float;
  cost_sigma : float;
  quality_lo : float;
  quality_hi : float;
  cost_lo : float;
}

let default =
  {
    quality_mu = 0.7;
    quality_sigma = sqrt 0.05;
    cost_mu = 0.05;
    cost_sigma = sqrt 0.2;
    quality_lo = 0.5;
    quality_hi = 0.99;
    cost_lo = 0.01;
  }

let draw_quality rng params =
  Prob.Distributions.sample_gaussian_clamped rng ~mu:params.quality_mu
    ~sigma:params.quality_sigma ~lo:params.quality_lo ~hi:params.quality_hi

(* Truncated (resampled) rather than clamped: clamping would pile an atom
   of identical minimum-cost workers at the floor, which distorts the
   budget sweeps; resampling keeps the cheap tail spread out. *)
let draw_cost rng params =
  Prob.Distributions.sample_gaussian_truncated rng ~mu:params.cost_mu
    ~sigma:params.cost_sigma ~lo:params.cost_lo ~hi:infinity

let gaussian_pool rng params n =
  Pool.of_list
    (List.init n (fun id ->
         Worker.make ~id ~quality:(draw_quality rng params)
           ~cost:(draw_cost rng params) ()))

let uniform_cost_pool rng params ~cost n =
  Pool.of_list
    (List.init n (fun id ->
         Worker.make ~id ~quality:(draw_quality rng params) ~cost ()))

let free_pool rng params n = uniform_cost_pool rng params ~cost:0. n

let beta_quality_pool rng ~a ~b params n =
  let range = params.quality_hi -. params.quality_lo in
  Pool.of_list
    (List.init n (fun id ->
         let q = params.quality_lo +. (range *. Prob.Distributions.sample_beta rng ~a ~b) in
         Worker.make ~id ~quality:q ~cost:(draw_cost rng params) ()))

let figure1_pool () =
  let specs =
    [
      ("A", 0.77, 9.); ("B", 0.7, 5.); ("C", 0.8, 6.); ("D", 0.65, 7.);
      ("E", 0.6, 5.); ("F", 0.6, 2.); ("G", 0.75, 3.);
    ]
  in
  Pool.of_list
    (List.mapi
       (fun id (name, quality, cost) -> Worker.make ~name ~id ~quality ~cost ())
       specs)

let example2_qualities = [| 0.9; 0.6; 0.6 |]
