(** Streaming worker-quality calibration.

    The paper takes worker qualities as "known in advance" from answering
    history (§2.1); this module maintains that history live.  Votes are fed
    in batches; each calibration step folds them into bounded per-worker
    {!History} rings and re-estimates qualities from three evidence sources:

    - a weak anchor prior centered on the registered quality (Beta pseudo
      counts of strength [prior_strength]);
    - gold questions (votes carrying ground truth) as exact Beta/Dirichlet
      counts;
    - a mini-batch Dawid–Skene EM over the retained window of ungraded
      votes ([task_window] most recent distinct tasks), warm-started from
      the previous fit — on a full replay with {!recalibrate} it coincides
      with the offline {!Dawid_skene.run} over the same votes.

    A windowed drift detector compares each worker's recent agreement rate
    (against gold truth or the EM consensus) with the current estimate
    under a binomial null model, with a dedicated spammer-onset test in the
    style of {!Spammer} (recent behavior indistinguishable from chance
    while the standing estimate is informative).  Flagged workers are
    re-anchored on their recent window so the estimate tracks the new
    regime instead of averaging across it. *)

type vote = {
  task : int;    (** External task id; used to group votes for EM. *)
  worker : int;  (** Index into the pool, [0 .. n_workers - 1]. *)
  label : int;
  truth : int option;  (** Ground truth when the vote is a gold question. *)
}

type config = {
  window : int;             (** Per-worker history ring capacity. *)
  task_window : int;        (** Distinct tasks retained for EM. *)
  batch : int;              (** Pending votes that make a step {!due}. *)
  em_iterations : int;      (** EM iterations per mini-batch step. *)
  prior_strength : float;   (** Anchor pseudo-count weight. *)
  smoothing : float;        (** EM confusion smoothing. *)
  drift_window : int;       (** Recent entries examined for drift. *)
  drift_min : int;          (** Minimum referenced entries to test. *)
  drift_z : float;          (** Binomial null-model threshold, in std devs. *)
  spammer_threshold : float; (** Max |rate - chance| that reads as spam. *)
}

val default_config : config

type drift_kind = Quality_shift | Spammer_onset

type drift = {
  worker : int;
  kind : drift_kind;
  before : float;  (** Estimate before the flag. *)
  after : float;   (** Recent-window agreement rate (new anchor). *)
}

type step_result = {
  applied : int;         (** Pending votes folded in by this step. *)
  changed : bool;        (** Whether any estimate moved (or drift fired). *)
  drifted : drift list;
}

type base =
  | Scalar of float array  (** Registered scalar qualities (2 labels). *)
  | Matrix of float array array array  (** Registered ℓ×ℓ confusions. *)

type t

val create : ?config:config -> base:base -> unit -> t
(** @raise Invalid_argument on an empty/ragged base, qualities outside
    [0,1], or a nonsensical config. *)

val n_workers : t -> int
val labels : t -> int

val feed : t -> vote list -> (int, string) result
(** Buffer votes for the next step; nothing is applied yet.  Validates the
    whole batch first — on [Error] nothing is buffered.  [Ok pending]
    returns the buffered count. *)

val pending : t -> int
val due : t -> bool
(** [pending t >= batch]: the ingest path should run {!step} now. *)

val step : t -> step_result
(** Apply pending votes and run one mini-batch calibration: warm-started
    EM capped at [em_iterations], drift detection, evidence blend. *)

val recalibrate : t -> step_result
(** Like {!step} but runs EM to convergence from the canonical
    soft-majority initialization — the forced full calibration behind the
    [recal] wire verb, and the anchor for the offline-equivalence tests
    (the fit depends only on the retained vote set, not ingestion order). *)

val quality : t -> int -> float
(** Current blended scalar estimate, clamped to [0.01, 0.99]. *)

val qualities : t -> float array

val confusion : t -> int -> float array array
(** Current blended row-stochastic confusion estimate. *)

val votes_seen : t -> int -> int
(** Applied votes by this worker (full stream). *)

val applied_total : t -> int
val drift_count : t -> int

val em_qualities : t -> float array option
(** Scalar summary (prior-weighted confusion diagonal) of the last EM fit
    over the retained window, or [None] when EM has not run — what the
    offline-equivalence property compares against {!Dawid_skene.run}. *)
