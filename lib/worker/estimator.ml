let empirical ?(prior_strength = 0.) h =
  let graded = float_of_int (History.graded_count h) in
  let correct = float_of_int (History.correct_count h) in
  if graded +. prior_strength = 0. then 0.5
  else (correct +. (prior_strength /. 2.)) /. (graded +. prior_strength)

let beta_posterior_mean ~a ~b h =
  let graded = float_of_int (History.graded_count h) in
  let correct = float_of_int (History.correct_count h) in
  (correct +. a) /. (graded +. a +. b)

let estimate_pool ?(prior_strength = 0.) ~costs histories =
  Pool.of_list
    (List.map
       (fun h ->
         let id = History.worker_id h in
         Worker.make ~id ~quality:(empirical ~prior_strength h) ~cost:(costs id) ())
       histories)

let confusion_empirical ~labels ~prior_strength h =
  if labels < 2 then invalid_arg "Estimator.confusion_empirical";
  let smoothing = prior_strength /. float_of_int labels in
  let counts = Array.make_matrix labels labels smoothing in
  List.iter
    (fun (e : History.entry) ->
      match e.truth with
      | Some truth when truth >= 0 && truth < labels && e.vote >= 0 && e.vote < labels ->
          counts.(truth).(e.vote) <- counts.(truth).(e.vote) +. 1.
      | Some _ | None -> ())
    (History.entries h);
  Array.map
    (fun row ->
      let s = Prob.Kahan.sum_array row in
      if s = 0. then Array.make labels (1. /. float_of_int labels)
      else Array.map (fun c -> c /. s) row)
    counts
