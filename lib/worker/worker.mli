(** The paper's binary worker model (§2.1).

    A worker has a quality [q ∈ [0, 1]] — the probability of voting the true
    answer — and a nonnegative cost, the reward required per vote.  Workers
    carry a stable id (their index in the candidate pool) and an optional
    human-readable name (Figure 1 labels its workers A–G). *)

type t = private { id : int; name : string; quality : float; cost : float }

val make : ?name:string -> id:int -> quality:float -> cost:float -> unit -> t
(** Smart constructor validating [0 <= quality <= 1] and [cost >= 0].
    Default name is ["w<id>"].
    @raise Invalid_argument on violations. *)

val id : t -> int
val name : t -> string
val quality : t -> float
val cost : t -> float

val with_quality : t -> float -> t
(** Same worker with a replacement quality (used by monotonicity tests and
    the q < 0.5 reinterpretation).  Validated as in {!make}. *)

val reliable : t -> bool
(** [quality >= 0.5] — the standing assumption of §3.3. *)

val compare_by_quality_desc : t -> t -> int
(** Sort key: decreasing quality, ties by increasing cost then id (total
    order, so sorts are deterministic). *)

val compare_by_cost : t -> t -> int
(** Sort key: increasing cost, ties by decreasing quality then id. *)

val equal : t -> t -> bool
(** Structural equality. *)

val pp : Format.formatter -> t -> unit
(** E.g. ["A(q=0.77, c=9)"]. *)
