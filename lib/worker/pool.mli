(** Worker pools: the candidate set W of §2.1 and juries J ⊆ W.

    A pool is an immutable array of workers.  Juries are just (small) pools;
    all jury-level quantities (cost, quality vector) live here. *)

type t
(** Immutable ordered collection of workers. *)

val of_list : Worker.t list -> t
val of_array : Worker.t array -> t
(** The array is copied. *)

val to_list : t -> Worker.t list
val to_array : t -> Worker.t array
(** A fresh copy; mutating it does not affect the pool. *)

val size : t -> int
val is_empty : t -> bool
val get : t -> int -> Worker.t
(** Positional access. @raise Invalid_argument when out of bounds. *)

val qualities : t -> float array
(** Quality of each worker, in pool order. *)

val costs : t -> float array
val total_cost : t -> float
(** Jury cost: sum of member costs (§1). *)

val mean_quality : t -> float
(** Average member quality; [nan] on the empty pool. *)

val add : t -> Worker.t -> t
(** Append one worker. *)

val remove_id : t -> int -> t
(** Drop every worker whose id matches. *)

val mem_id : t -> int -> bool
val find_id : t -> int -> Worker.t option

val filter : (Worker.t -> bool) -> t -> t
val sub : t -> int list -> t
(** [sub pool idxs] selects positions [idxs] (in the given order).
    @raise Invalid_argument on out-of-range positions. *)

val sorted_by_quality_desc : t -> t
val sorted_by_cost : t -> t

val take : int -> t -> t
(** First [k] workers (or all if fewer). *)

val subsets : t -> t Seq.t
(** All 2^n sub-pools, for exact JSP enumeration on small pools.  Lazy. *)

val union : t -> t -> t
(** Concatenation (no dedup — ids are the caller's responsibility). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
