type vote = { task : int; worker : int; label : int }

type result = {
  confusions : float array array array;
  class_priors : float array;
  posteriors : float array array;
  labels : int array;
  log_likelihood : float;
  iterations : int;
}

let validate ~n_tasks ~n_workers ~n_labels votes =
  List.iter
    (fun v ->
      if v.task < 0 || v.task >= n_tasks then invalid_arg "Dawid_skene: task id";
      if v.worker < 0 || v.worker >= n_workers then invalid_arg "Dawid_skene: worker id";
      if v.label < 0 || v.label >= n_labels then invalid_arg "Dawid_skene: label")
    votes

(* Group votes by task once; EM iterates over this index. *)
let votes_by_task ~n_tasks votes =
  let by_task = Array.make n_tasks [] in
  List.iter (fun v -> by_task.(v.task) <- (v.worker, v.label) :: by_task.(v.task)) votes;
  by_task

let soft_majority_init ~n_tasks ~n_labels by_task =
  Array.init n_tasks (fun t ->
      let counts = Array.make n_labels 0. in
      List.iter (fun (_, l) -> counts.(l) <- counts.(l) +. 1.) by_task.(t);
      let total = Prob.Kahan.sum_array counts in
      if total = 0. then Array.make n_labels (1. /. float_of_int n_labels)
      else Array.map (fun c -> c /. total) counts)

let m_step ~n_workers ~n_labels ~smoothing votes posteriors =
  let confusions =
    Array.init n_workers (fun _ -> Array.make_matrix n_labels n_labels smoothing)
  in
  List.iter
    (fun v ->
      let post = posteriors.(v.task) in
      let m = confusions.(v.worker) in
      for j = 0 to n_labels - 1 do
        m.(j).(v.label) <- m.(j).(v.label) +. post.(j)
      done)
    votes;
  let confusions =
    Array.map
      (fun m ->
        Array.map
          (fun row ->
            let s = Prob.Kahan.sum_array row in
            if s = 0. then Array.make n_labels (1. /. float_of_int n_labels)
            else Array.map (fun c -> c /. s) row)
          m)
      confusions
  in
  let priors = Array.make n_labels 0. in
  Array.iter
    (fun post ->
      for j = 0 to n_labels - 1 do
        priors.(j) <- priors.(j) +. post.(j)
      done)
    posteriors;
  let total = Prob.Kahan.sum_array priors in
  let priors =
    if total = 0. then Array.make n_labels (1. /. float_of_int n_labels)
    else Array.map (fun p -> p /. total) priors
  in
  (confusions, priors)

(* E-step in the log domain; also returns the observed-data log-likelihood
   sum_t ln sum_j prior_j * prod_votes Pr(vote | truth = j). *)
let e_step ~n_labels confusions priors by_task =
  let loglik = Prob.Kahan.create () in
  let posteriors =
    Array.map
      (fun task_votes ->
        let log_joint =
          Array.init n_labels (fun j ->
              List.fold_left
                (fun acc (w, l) -> acc +. Prob.Log_space.of_prob confusions.(w).(j).(l))
                (Prob.Log_space.of_prob priors.(j))
                task_votes)
        in
        let log_z = Prob.Log_space.sum_array log_joint in
        Prob.Kahan.add loglik log_z;
        if log_z = neg_infinity then Array.make n_labels (1. /. float_of_int n_labels)
        else Array.map (fun lj -> exp (lj -. log_z)) log_joint)
      by_task
  in
  (posteriors, Prob.Kahan.total loglik)

let argmax arr =
  let best = ref 0 in
  Array.iteri (fun i x -> if x > arr.(!best) then best := i) arr;
  !best

let run ?(max_iterations = 100) ?(tolerance = 1e-7) ?(smoothing = 0.01) ?init
    ~n_tasks ~n_workers ~n_labels votes =
  if n_labels < 2 then invalid_arg "Dawid_skene.run: need at least 2 labels";
  validate ~n_tasks ~n_workers ~n_labels votes;
  let by_task = votes_by_task ~n_tasks votes in
  let initial_posteriors =
    match init with
    | None -> soft_majority_init ~n_tasks ~n_labels by_task
    | Some (confusions, priors) ->
        if Array.length confusions <> n_workers then
          invalid_arg "Dawid_skene.run: init confusions must cover n_workers";
        if Array.length priors <> n_labels then
          invalid_arg "Dawid_skene.run: init priors must cover n_labels";
        fst (e_step ~n_labels confusions priors by_task)
  in
  let posteriors = ref initial_posteriors in
  let confusions = ref [||] in
  let priors = ref [||] in
  let loglik = ref neg_infinity in
  let iterations = ref 0 in
  (try
     for i = 1 to max_iterations do
       let c, p = m_step ~n_workers ~n_labels ~smoothing votes !posteriors in
       let post, ll = e_step ~n_labels c p by_task in
       confusions := c;
       priors := p;
       posteriors := post;
       iterations := i;
       let gain = ll -. !loglik in
       loglik := ll;
       if gain < tolerance && i > 1 then raise Exit
     done
   with Exit -> ());
  {
    confusions = !confusions;
    class_priors = !priors;
    posteriors = !posteriors;
    labels = Array.map argmax !posteriors;
    log_likelihood = !loglik;
    iterations = !iterations;
  }

let binary_qualities r =
  Array.map
    (fun m ->
      if Array.length m <> 2 then
        invalid_arg "Dawid_skene.binary_qualities: not a 2-label fit";
      (r.class_priors.(0) *. m.(0).(0)) +. (r.class_priors.(1) *. m.(1).(1)))
    r.confusions
