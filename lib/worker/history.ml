type entry = { task_id : int; vote : int; truth : int option }

let default_window = 1024
let placeholder = { task_id = -1; vote = 0; truth = None }

(* Bounded ring of the most recent [window] entries plus running summary
   counters.  The counters cover the full stream, so [empirical_quality]
   and the graded counts stay exact even after old entries are evicted. *)
type t = {
  worker_id : int;
  window : int;
  mutable ring : entry array; (* grows to [window], then wraps *)
  mutable start : int;        (* index of the oldest resident entry *)
  mutable resident : int;     (* entries currently in the ring *)
  mutable total : int;        (* entries ever recorded *)
  mutable correct : int;      (* graded entries with vote = truth, full stream *)
  mutable graded : int;       (* entries with known truth, full stream *)
}

let create ?(window = default_window) ~worker_id () =
  if window < 1 then invalid_arg "History.create: window must be >= 1";
  {
    worker_id;
    window;
    ring = Array.make (min window 16) placeholder;
    start = 0;
    resident = 0;
    total = 0;
    correct = 0;
    graded = 0;
  }

let worker_id t = t.worker_id
let window t = t.window
let resident t = t.resident

let grow t =
  let cap = Array.length t.ring in
  if t.resident = cap && cap < t.window then begin
    let cap' = min t.window (cap * 2) in
    let ring' = Array.make cap' placeholder in
    for i = 0 to t.resident - 1 do
      ring'.(i) <- t.ring.((t.start + i) mod cap)
    done;
    t.ring <- ring';
    t.start <- 0
  end

let record t e =
  grow t;
  let cap = Array.length t.ring in
  if t.resident = cap then begin
    (* full window: overwrite the oldest slot *)
    t.ring.(t.start) <- e;
    t.start <- (t.start + 1) mod cap
  end
  else begin
    t.ring.((t.start + t.resident) mod cap) <- e;
    t.resident <- t.resident + 1
  end;
  t.total <- t.total + 1;
  match e.truth with
  | Some tr ->
      t.graded <- t.graded + 1;
      if tr = e.vote then t.correct <- t.correct + 1
  | None -> ()

let record_vote t ~task_id ~vote = record t { task_id; vote; truth = None }

let record_gold t ~task_id ~vote ~truth =
  record t { task_id; vote; truth = Some truth }

let nth_resident t i = t.ring.((t.start + i) mod Array.length t.ring)

let entries t = List.init t.resident (fun i -> nth_resident t i)

let recent t k =
  let k = min k t.resident in
  List.init k (fun i -> nth_resident t (t.resident - k + i))

let length t = t.total

let answered_tasks t =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun e ->
      if Hashtbl.mem seen e.task_id then None
      else begin
        Hashtbl.add seen e.task_id ();
        Some e.task_id
      end)
    (entries t)

let recent_class_counts t ~labels ~k ~truth =
  if labels < 1 then invalid_arg "History.recent_class_counts: labels < 1";
  let graded = Array.make labels 0 and correct = Array.make labels 0 in
  List.iter
    (fun e ->
      match truth e with
      | Some tr when tr >= 0 && tr < labels ->
          graded.(tr) <- graded.(tr) + 1;
          if e.vote = tr then correct.(tr) <- correct.(tr) + 1
      | _ -> ())
    (recent t k);
  (graded, correct)

let correct_count t = t.correct
let graded_count t = t.graded

let empirical_quality t =
  if t.graded = 0 then None
  else Some (float_of_int t.correct /. float_of_int t.graded)
