type entry = { task_id : int; vote : int; truth : int option }

type t = { worker_id : int; mutable rev_entries : entry list; mutable count : int }

let create ~worker_id = { worker_id; rev_entries = []; count = 0 }
let worker_id t = t.worker_id

let record t e =
  t.rev_entries <- e :: t.rev_entries;
  t.count <- t.count + 1

let record_vote t ~task_id ~vote = record t { task_id; vote; truth = None }

let record_gold t ~task_id ~vote ~truth =
  record t { task_id; vote; truth = Some truth }

let entries t = List.rev t.rev_entries
let length t = t.count

let answered_tasks t =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun e ->
      if Hashtbl.mem seen e.task_id then None
      else begin
        Hashtbl.add seen e.task_id ();
        Some e.task_id
      end)
    (entries t)

let correct_count t =
  List.fold_left
    (fun acc e ->
      match e.truth with Some tr when tr = e.vote -> acc + 1 | _ -> acc)
    0 t.rev_entries

let graded_count t =
  List.fold_left
    (fun acc e -> match e.truth with Some _ -> acc + 1 | None -> acc)
    0 t.rev_entries

let empirical_quality t =
  let graded = graded_count t in
  if graded = 0 then None
  else Some (float_of_int (correct_count t) /. float_of_int graded)
