let total_variation row_a row_b =
  let acc = ref 0. in
  Array.iteri (fun k a -> acc := !acc +. Float.abs (a -. row_b.(k))) row_a;
  !acc /. 2.

let score_matrix m =
  let l = Array.length m in
  if l < 2 then invalid_arg "Spammer.score_matrix: need at least 2 rows";
  let acc = ref 0. and pairs = ref 0 in
  for j = 0 to l - 1 do
    for j' = j + 1 to l - 1 do
      acc := !acc +. total_variation m.(j) m.(j');
      incr pairs
    done
  done;
  !acc /. float_of_int !pairs

let score c =
  Array.init (Confusion.labels c) (fun j -> Confusion.row c j) |> score_matrix

let is_spammer ?(threshold = 0.05) c = score c < threshold

let rank jury =
  let ranked = Array.copy jury in
  Array.sort
    (fun a b ->
      match compare (score b) (score a) with
      | 0 -> compare (Confusion.id a) (Confusion.id b)
      | cmp -> cmp)
    ranked;
  ranked

let binary_score_matches_quality ~quality = Float.abs ((2. *. quality) -. 1.)
