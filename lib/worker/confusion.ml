type t = { id : int; name : string; cost : float; matrix : float array array }

let validate matrix =
  let l = Array.length matrix in
  if l < 2 then invalid_arg "Confusion.make: need at least 2 labels";
  Array.iter
    (fun r ->
      if Array.length r <> l then invalid_arg "Confusion.make: matrix not square";
      Array.iter
        (fun p ->
          if p < 0. || Float.is_nan p then
            invalid_arg "Confusion.make: negative entry")
        r;
      let s = Prob.Kahan.sum_array r in
      if Float.abs (s -. 1.) > 1e-9 then
        invalid_arg "Confusion.make: row does not sum to 1")
    matrix

let normalize_rows matrix =
  Array.map
    (fun r ->
      let s = Prob.Kahan.sum_array r in
      Array.map (fun p -> p /. s) r)
    matrix

let make ?name ~id ~matrix ~cost () =
  validate matrix;
  if cost < 0. || Float.is_nan cost then
    invalid_arg "Confusion.make: cost must be nonnegative";
  let name = match name with Some n -> n | None -> Printf.sprintf "w%d" id in
  { id; name; cost; matrix = normalize_rows matrix }

let of_binary w =
  let q = Worker.quality w in
  make ~name:(Worker.name w) ~id:(Worker.id w)
    ~matrix:[| [| q; 1. -. q |]; [| 1. -. q; q |] |]
    ~cost:(Worker.cost w) ()

let id c = c.id
let name c = c.name
let cost c = c.cost
let labels c = Array.length c.matrix

let prob c ~truth ~vote =
  let l = labels c in
  if truth < 0 || truth >= l || vote < 0 || vote >= l then
    invalid_arg "Confusion.prob: label out of range";
  c.matrix.(truth).(vote)

let row c j =
  if j < 0 || j >= labels c then invalid_arg "Confusion.row";
  Array.copy c.matrix.(j)

let unsafe_row c j =
  if j < 0 || j >= labels c then invalid_arg "Confusion.unsafe_row";
  c.matrix.(j)

let accuracy_given_uniform_prior c =
  let l = labels c in
  let acc = ref 0. in
  for j = 0 to l - 1 do
    acc := !acc +. c.matrix.(j).(j)
  done;
  !acc /. float_of_int l

let diagonal_dominant c =
  let l = labels c in
  let ok = ref true in
  for j = 0 to l - 1 do
    for k = 0 to l - 1 do
      if c.matrix.(j).(k) > c.matrix.(j).(j) then ok := false
    done
  done;
  !ok

let symmetric_quality c =
  (* Bitwise comparison on purpose: lowering a matrix worker to a scalar one
     must be exact, or the two representations would score ulp-differently. *)
  if labels c <> 2 then None
  else
    let m = c.matrix in
    if m.(0).(0) = m.(1).(1) && m.(0).(1) = m.(1).(0) then Some m.(0).(0)
    else None

let symmetric_binary ~quality ~id ~cost =
  if quality < 0. || quality > 1. then
    invalid_arg "Confusion.symmetric_binary: quality outside [0, 1]";
  make ~id ~matrix:[| [| quality; 1. -. quality |]; [| 1. -. quality; quality |] |] ~cost ()

let uniform_spammer ~labels ~id ~cost =
  if labels < 2 then invalid_arg "Confusion.uniform_spammer";
  let p = 1. /. float_of_int labels in
  make ~id ~matrix:(Array.make_matrix labels labels p) ~cost ()

let pp ppf c =
  Format.fprintf ppf "%s(l=%d, c=%g, acc=%.3f)" c.name (labels c) c.cost
    (accuracy_given_uniform_prior c)
