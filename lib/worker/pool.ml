type t = Worker.t array

let of_list l = Array.of_list l
let of_array a = Array.copy a
let to_list t = Array.to_list t
let to_array t = Array.copy t
let size t = Array.length t
let is_empty t = Array.length t = 0

let get t i =
  if i < 0 || i >= Array.length t then invalid_arg "Pool.get: index out of bounds";
  t.(i)

let qualities t = Array.map Worker.quality t
let costs t = Array.map Worker.cost t
let total_cost t = Prob.Kahan.sum_array (costs t)
let mean_quality t = Prob.Stats.mean (qualities t)
let add t w = Array.append t [| w |]
let remove_id t id = Array.of_seq (Seq.filter (fun w -> Worker.id w <> id) (Array.to_seq t))
let mem_id t id = Array.exists (fun w -> Worker.id w = id) t
let find_id t id = Array.find_opt (fun w -> Worker.id w = id) t
let filter p t = Array.of_seq (Seq.filter p (Array.to_seq t))

let sub t idxs =
  Array.of_list (List.map (fun i -> get t i) idxs)

let sorted_by_quality_desc t =
  let c = Array.copy t in
  Array.sort Worker.compare_by_quality_desc c;
  c

let sorted_by_cost t =
  let c = Array.copy t in
  Array.sort Worker.compare_by_cost c;
  c

let take k t = if k >= Array.length t then Array.copy t else Array.sub t 0 (max 0 k)

let subsets t =
  let n = Array.length t in
  if n > 25 then invalid_arg "Pool.subsets: pool too large to enumerate";
  let count = 1 lsl n in
  let subset_of mask =
    let members = ref [] in
    for i = n - 1 downto 0 do
      if mask land (1 lsl i) <> 0 then members := t.(i) :: !members
    done;
    Array.of_list !members
  in
  Seq.map subset_of (Seq.init count Fun.id)

let union = Array.append

let equal a b =
  Array.length a = Array.length b && Array.for_all2 Worker.equal a b

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_array ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") Worker.pp)
    t
