type t = { id : int; name : string; quality : float; cost : float }

let make ?name ~id ~quality ~cost () =
  if quality < 0. || quality > 1. || Float.is_nan quality then
    invalid_arg "Worker.make: quality must lie in [0, 1]";
  if cost < 0. || Float.is_nan cost then
    invalid_arg "Worker.make: cost must be nonnegative";
  let name = match name with Some n -> n | None -> Printf.sprintf "w%d" id in
  { id; name; quality; cost }

let id w = w.id
let name w = w.name
let quality w = w.quality
let cost w = w.cost

let with_quality w quality =
  make ~name:w.name ~id:w.id ~quality ~cost:w.cost ()

let reliable w = w.quality >= 0.5

let compare_by_quality_desc a b =
  match compare b.quality a.quality with
  | 0 -> ( match compare a.cost b.cost with 0 -> compare a.id b.id | c -> c)
  | c -> c

let compare_by_cost a b =
  match compare a.cost b.cost with
  | 0 -> (
      match compare b.quality a.quality with 0 -> compare a.id b.id | c -> c)
  | c -> c

let equal a b =
  a.id = b.id && String.equal a.name b.name && a.quality = b.quality
  && a.cost = b.cost

let pp ppf w = Format.fprintf ppf "%s(q=%g, c=%g)" w.name w.quality w.cost
