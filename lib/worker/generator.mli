(** Synthetic worker-pool generators reproducing the paper's experimental
    setup (§6.1.1): qualities and costs drawn from Gaussians
    [q ~ N(mu, sigma²)], [c ~ N(cost_mu, cost_sigma²)].

    Qualities are clamped into [quality_lo, quality_hi] (default
    [0.5, 0.99]): §3.3 assumes q ≥ 0.5 without loss of generality, and
    §4.4's error-bound argument treats q > 0.99 separately.  Costs are
    drawn from the Gaussian *truncated* below at [cost_lo] (default 0.01,
    by resampling) since the paper's cost model N(0.05, 0.2²) would
    otherwise produce negative rewards; truncation rather than clamping
    keeps the cheap tail spread out instead of piling an atom of
    identical minimum-cost workers at the floor. *)

type params = {
  quality_mu : float;      (** µ of the quality Gaussian (paper default 0.7). *)
  quality_sigma : float;   (** σ of the quality Gaussian (√0.05 by default). *)
  cost_mu : float;         (** µ̂ of the cost Gaussian (paper default 0.05). *)
  cost_sigma : float;      (** σ̂ of the cost Gaussian (√0.2 by default:
                               the paper gives the *variance* σ̂² = 0.2). *)
  quality_lo : float;
  quality_hi : float;
  cost_lo : float;
}

val default : params
(** The §6.1.1 defaults: quality_mu = 0.7, quality_sigma = sqrt 0.05,
    cost_mu = 0.05, cost_sigma = sqrt 0.2, quality range [0.5, 0.99],
    cost floor 0.01. *)

val gaussian_pool : Prob.Rng.t -> params -> int -> Pool.t
(** [gaussian_pool rng params n] draws [n] workers with ids 0..n−1. *)

val uniform_cost_pool :
  Prob.Rng.t -> params -> cost:float -> int -> Pool.t
(** Pool with Gaussian qualities but one shared cost — the Lemma-2 top-k
    special case. *)

val free_pool : Prob.Rng.t -> params -> int -> Pool.t
(** Pool of volunteers (cost 0) — the Lemma-1 select-everyone case. *)

val beta_quality_pool :
  Prob.Rng.t -> a:float -> b:float -> params -> int -> Pool.t
(** Qualities drawn from Beta(a, b) rescaled into the legal range — an
    alternative ability profile used by robustness benches. *)

val figure1_pool : unit -> Pool.t
(** The seven workers A–G of Figure 1 with their printed qualities and
    costs: A(0.77,$9) B(0.7,$5) C(0.8,$6) D(0.65,$7) E(0.6,$5) F(0.6,$2)
    G(0.75,$3). *)

val example2_qualities : float array
(** The (0.9, 0.6, 0.6) jury of Figure 2 / Examples 2–3. *)
