(** Per-worker answer histories.

    The paper assumes qualities are "known in advance", derived from
    answering history (§2.1, refs [7, 25, 37]).  This module is the record
    of that history: which tasks a worker answered, what they voted, and —
    when available — the ground truth.  {!Estimator} and {!Dawid_skene}
    consume it. *)

type entry = {
  task_id : int;
  vote : int;                (** The label the worker chose. *)
  truth : int option;        (** Ground truth if known (gold questions). *)
}

type t
(** Append-only log for one worker. *)

val create : worker_id:int -> t
val worker_id : t -> int

val record : t -> entry -> unit
val record_vote : t -> task_id:int -> vote:int -> unit
val record_gold : t -> task_id:int -> vote:int -> truth:int -> unit

val entries : t -> entry list
(** Oldest first. *)

val length : t -> int

val answered_tasks : t -> int list
(** Distinct task ids, oldest first. *)

val correct_count : t -> int
(** Entries with known truth where [vote = truth]. *)

val graded_count : t -> int
(** Entries with known truth. *)

val empirical_quality : t -> float option
(** [correct / graded], or [None] when nothing was graded.  This is exactly
    the paper's §6.2.1 definition: "the proportion of correctly answered
    questions by the worker in all her answered questions". *)
