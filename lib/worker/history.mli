(** Per-worker answer histories.

    The paper assumes qualities are "known in advance", derived from
    answering history (§2.1, refs [7, 25, 37]).  This module is the record
    of that history: which tasks a worker answered, what they voted, and —
    when available — the ground truth.  {!Estimator} and {!Dawid_skene}
    consume it.

    Entries live in a bounded ring: only the most recent [window] entries
    are retained, but the summary counters ([length], [correct_count],
    [graded_count], [empirical_quality]) cover the full stream, so
    estimation over counts stays exact while memory is capped. *)

type entry = {
  task_id : int;
  vote : int;                (** The label the worker chose. *)
  truth : int option;        (** Ground truth if known (gold questions). *)
}

type t
(** Bounded log for one worker. *)

val default_window : int
(** Ring capacity used when [create] is not given [?window] (1024). *)

val create : ?window:int -> worker_id:int -> unit -> t
(** [window] bounds the retained entries; summary counts are unaffected.
    Raises [Invalid_argument] when [window < 1]. *)

val worker_id : t -> int

val window : t -> int
(** Ring capacity. *)

val resident : t -> int
(** Entries currently retained ([min (length t) (window t)]). *)

val record : t -> entry -> unit
val record_vote : t -> task_id:int -> vote:int -> unit
val record_gold : t -> task_id:int -> vote:int -> truth:int -> unit

val entries : t -> entry list
(** Retained entries, oldest first. *)

val recent : t -> int -> entry list
(** [recent t k] is the newest [min k (resident t)] entries, oldest
    first — the drift-detection window. *)

val length : t -> int
(** Entries ever recorded (full stream, O(1)). *)

val answered_tasks : t -> int list
(** Distinct task ids among retained entries, oldest first. *)

val recent_class_counts :
  t ->
  labels:int ->
  k:int ->
  truth:(entry -> int option) ->
  int array * int array
(** [recent_class_counts t ~labels ~k ~truth] buckets the newest [k]
    entries by true class: each entry is resolved through [truth] (gold,
    or a caller-supplied consensus resolver) and counted into
    [(graded, correct)], both of length [labels], at its resolved label.
    Entries resolving to [None] or to an out-of-range label are skipped.
    This is the drift detector's per-class view of the window — a matrix
    worker who turns bad on one truth label shows up in that label's
    [correct/graded] rate even when the pooled scalar rate still looks
    healthy.  Raises [Invalid_argument] when [labels < 1]. *)

val correct_count : t -> int
(** Full-stream entries with known truth where [vote = truth], O(1). *)

val graded_count : t -> int
(** Full-stream entries with known truth, O(1). *)

val empirical_quality : t -> float option
(** [correct / graded] over the full stream, or [None] when nothing was
    graded.  This is exactly the paper's §6.2.1 definition: "the proportion
    of correctly answered questions by the worker in all her answered
    questions". *)
