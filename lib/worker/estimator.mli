(** Quality estimation from answer histories.

    Two estimators the crowdsourcing literature the paper builds on uses:

    - the empirical (gold-question) estimator of CDAS [25] / the paper's own
      §6.2.1: quality = fraction of graded answers that were correct, with
      optional Laplace smoothing so a worker with few answers is not pinned
      to 0 or 1;
    - a smoothed Beta posterior-mean estimator, the Bayesian version of the
      same idea. *)

val empirical : ?prior_strength:float -> History.t -> float
(** [empirical h] is [(correct + s/2) / (graded + s)] where [s] is
    [prior_strength] (default 0: the raw paper definition).  Returns 0.5
    when nothing was graded. *)

val beta_posterior_mean : a:float -> b:float -> History.t -> float
(** Posterior mean of quality under a Beta(a, b) prior:
    [(correct + a) / (graded + a + b)]. *)

val estimate_pool :
  ?prior_strength:float ->
  costs:(int -> float) ->
  History.t list ->
  Pool.t
(** Build a candidate pool from histories: one worker per history, with the
    empirical quality and the cost given by [costs worker_id].  Pool order
    follows the list order; worker ids are the history ids. *)

val confusion_empirical :
  labels:int -> prior_strength:float -> History.t -> float array array
(** Empirical confusion matrix over [labels] labels with additive smoothing
    [prior_strength / labels] per cell (rows renormalized).  Rows with no
    graded answers fall back to uniform. *)
