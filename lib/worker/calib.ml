type vote = { task : int; worker : int; label : int; truth : int option }

type config = {
  window : int;
  task_window : int;
  batch : int;
  em_iterations : int;
  prior_strength : float;
  smoothing : float;
  drift_window : int;
  drift_min : int;
  drift_z : float;
  spammer_threshold : float;
}

let default_config =
  {
    window = 256;
    task_window = 512;
    batch = 64;
    em_iterations = 8;
    prior_strength = 8.;
    smoothing = 0.01;
    drift_window = 24;
    drift_min = 12;
    drift_z = 3.5;
    spammer_threshold = 0.12;
  }

type drift_kind = Quality_shift | Spammer_onset

type drift = { worker : int; kind : drift_kind; before : float; after : float }

type step_result = { applied : int; changed : bool; drifted : drift list }

type base = Scalar of float array | Matrix of float array array array

type t = {
  config : config;
  labels : int;
  n : int;
  matrix_base : bool;
  (* per-worker anchor: a weak Beta/Dirichlet prior re-centered on drift *)
  anchor_q : float array;
  anchor_m : float array array array; (* row-stochastic anchor matrices *)
  anchor_w : float array;
  (* per-worker gold evidence, resettable on drift *)
  gold_a : float array;
  gold_b : float array;
  gold_counts : float array array array; (* truth row x voted label *)
  histories : History.t array;
  seen : int array; (* applied votes per worker *)
  (* retained ungraded votes for EM, bounded by [task_window] tasks *)
  tasks : (int, (int * int) list ref) Hashtbl.t; (* task -> (worker, label) rev *)
  task_order : int Queue.t;
  mutable em : Dawid_skene.result option;
  mutable em_index : (int, int) Hashtbl.t; (* task id -> dense index of last fit *)
  pending : vote Queue.t;
  qualities : float array; (* current blended scalar estimates *)
  confusions : float array array array; (* current blended matrices *)
  mutable applied_total : int;
  mutable drift_total : int;
}

let clamp01 q = Float.max 0.01 (Float.min 0.99 q)

let symmetric_matrix ~labels q =
  let off = (1. -. q) /. float_of_int (labels - 1) in
  Array.init labels (fun j -> Array.init labels (fun k -> if j = k then q else off))

let matrix_scalar ?priors m =
  let l = Array.length m in
  let p j = match priors with Some pr -> pr.(j) | None -> 1. /. float_of_int l in
  let acc = ref 0. in
  for j = 0 to l - 1 do
    acc := !acc +. (p j *. m.(j).(j))
  done;
  !acc

let validate_config c =
  if c.window < 1 || c.task_window < 1 || c.batch < 1 || c.em_iterations < 1 then
    invalid_arg "Calib.create: window/task_window/batch/em_iterations must be >= 1";
  if c.drift_min < 2 || c.drift_window < c.drift_min then
    invalid_arg "Calib.create: need drift_window >= drift_min >= 2";
  if c.prior_strength < 0. || c.drift_z <= 0. || c.spammer_threshold <= 0. then
    invalid_arg "Calib.create: prior_strength/drift_z/spammer_threshold out of range"

let create ?(config = default_config) ~base () =
  validate_config config;
  let labels, n, matrix_base, anchor_q, anchor_m =
    match base with
    | Scalar qs ->
        let n = Array.length qs in
        if n = 0 then invalid_arg "Calib.create: empty base";
        Array.iter
          (fun q ->
            if not (Float.is_finite q) || q < 0. || q > 1. then
              invalid_arg "Calib.create: base quality out of [0,1]")
          qs;
        let qs = Array.map clamp01 qs in
        (2, n, false, qs, Array.map (symmetric_matrix ~labels:2) qs)
    | Matrix ms ->
        let n = Array.length ms in
        if n = 0 then invalid_arg "Calib.create: empty base";
        let l = Array.length ms.(0) in
        if l < 2 then invalid_arg "Calib.create: need at least 2 labels";
        Array.iter
          (fun m ->
            if Array.length m <> l then invalid_arg "Calib.create: ragged base";
            Array.iter
              (fun row ->
                if Array.length row <> l then invalid_arg "Calib.create: ragged base")
              m)
          ms;
        let copy = Array.map (Array.map Array.copy) ms in
        (l, n, true, Array.map matrix_scalar copy, copy)
  in
  {
    config;
    labels;
    n;
    matrix_base;
    anchor_q;
    anchor_m;
    anchor_w = Array.make n config.prior_strength;
    gold_a = Array.make n 0.;
    gold_b = Array.make n 0.;
    gold_counts = Array.init n (fun _ -> Array.make_matrix labels labels 0.);
    histories =
      Array.init n (fun worker_id ->
          History.create ~window:config.window ~worker_id ());
    seen = Array.make n 0;
    tasks = Hashtbl.create 64;
    task_order = Queue.create ();
    em = None;
    em_index = Hashtbl.create 16;
    pending = Queue.create ();
    qualities = Array.copy anchor_q;
    confusions = Array.map (Array.map Array.copy) anchor_m;
    applied_total = 0;
    drift_total = 0;
  }

let n_workers t = t.n
let labels t = t.labels
let pending t = Queue.length t.pending
let due t = Queue.length t.pending >= t.config.batch
let quality t i = t.qualities.(i)
let qualities t = Array.copy t.qualities
let confusion t i = Array.map Array.copy t.confusions.(i)
let votes_seen t i = t.seen.(i)
let applied_total t = t.applied_total
let drift_count t = t.drift_total

let em_qualities t =
  match t.em with
  | None -> None
  | Some r ->
      Some
        (Array.map (matrix_scalar ~priors:r.class_priors) r.confusions)

let check_vote t v =
  if v.task < 0 then Error "report: task id must be >= 0"
  else if v.worker < 0 || v.worker >= t.n then Error "report: worker id out of pool"
  else if v.label < 0 || v.label >= t.labels then Error "report: label out of range"
  else
    match v.truth with
    | Some tr when tr < 0 || tr >= t.labels -> Error "report: truth label out of range"
    | _ -> Ok ()

let feed t votes =
  let rec check = function
    | [] -> Ok ()
    | v :: rest -> ( match check_vote t v with Ok () -> check rest | Error _ as e -> e)
  in
  match check votes with
  | Error _ as e -> e
  | Ok () ->
      List.iter (fun v -> Queue.push v t.pending) votes;
      Ok (Queue.length t.pending)

(* --- applying pending votes into the retained state ------------------- *)

let retain_task t task worker label =
  (match Hashtbl.find_opt t.tasks task with
  | Some cell -> cell := (worker, label) :: !cell
  | None ->
      Hashtbl.add t.tasks task (ref [ (worker, label) ]);
      Queue.push task t.task_order);
  while Queue.length t.task_order > t.config.task_window do
    Hashtbl.remove t.tasks (Queue.pop t.task_order)
  done

let apply_pending t =
  let applied = ref 0 in
  while not (Queue.is_empty t.pending) do
    let v = Queue.pop t.pending in
    incr applied;
    t.seen.(v.worker) <- t.seen.(v.worker) + 1;
    (match v.truth with
    | Some truth ->
        History.record_gold t.histories.(v.worker) ~task_id:v.task ~vote:v.label
          ~truth;
        if v.label = truth then t.gold_a.(v.worker) <- t.gold_a.(v.worker) +. 1.
        else t.gold_b.(v.worker) <- t.gold_b.(v.worker) +. 1.;
        let gc = t.gold_counts.(v.worker) in
        gc.(truth).(v.label) <- gc.(truth).(v.label) +. 1.
    | None ->
        History.record_vote t.histories.(v.worker) ~task_id:v.task ~vote:v.label;
        retain_task t v.task v.worker v.label)
  done;
  t.applied_total <- t.applied_total + !applied;
  !applied

(* --- EM over the retained ungraded votes ------------------------------ *)

(* Canonical ordering (tasks by id, votes by worker then label) makes the
   fit a function of the retained *set*, independent of ingestion order. *)
let em_votes t =
  let task_ids =
    Hashtbl.fold (fun task _ acc -> task :: acc) t.tasks [] |> List.sort compare
  in
  let index = Hashtbl.create (List.length task_ids) in
  List.iteri (fun i task -> Hashtbl.add index task i) task_ids;
  let votes =
    List.concat_map
      (fun task ->
        let dense = Hashtbl.find index task in
        !(Hashtbl.find t.tasks task)
        |> List.sort compare
        |> List.map (fun (w, l) ->
               { Dawid_skene.task = dense; worker = w; label = l }))
      task_ids
  in
  (List.length task_ids, votes, index)

let run_em t ~warm ~max_iterations =
  let n_tasks, votes, index = em_votes t in
  if n_tasks = 0 then begin
    t.em <- None;
    t.em_index <- Hashtbl.create 1
  end
  else begin
    let init =
      match (warm, t.em) with
      | true, Some r -> Some (r.Dawid_skene.confusions, r.class_priors)
      | _ -> None
    in
    let r =
      Dawid_skene.run ?init ~max_iterations ~smoothing:t.config.smoothing
        ~n_tasks ~n_workers:t.n ~n_labels:t.labels votes
    in
    t.em <- Some r;
    t.em_index <- index
  end

(* Retained ungraded vote count per worker, for evidence weighting. *)
let em_support t =
  let u = Array.make t.n 0. in
  Hashtbl.iter
    (fun _ cell -> List.iter (fun (w, _) -> u.(w) <- u.(w) +. 1.) !cell)
    t.tasks;
  u

(* --- drift detection -------------------------------------------------- *)

(* Reference label for a history entry: gold truth, or the current EM
   consensus when the task is still retained. *)
let reference t (e : History.entry) =
  match e.truth with
  | Some tr -> Some tr
  | None -> (
      match (t.em, Hashtbl.find_opt t.em_index e.task_id) with
      | Some r, Some dense -> Some r.Dawid_skene.labels.(dense)
      | _ -> None)

let detect_drift t ~prev i =
  let cfg = t.config in
  let recent = History.recent t.histories.(i) cfg.drift_window in
  let k = ref 0 and matches = ref 0 in
  List.iter
    (fun e ->
      match reference t e with
      | Some tr ->
          incr k;
          if tr = e.vote then incr matches
      | None -> ())
    recent;
  if !k < cfg.drift_min then None
  else begin
    let rate = float_of_int !matches /. float_of_int !k in
    let q = Float.max 0.05 (Float.min 0.95 prev.(i)) in
    let chance = 1. /. float_of_int t.labels in
    let spammer_now = Float.abs (rate -. chance) < cfg.spammer_threshold in
    (* The regime test uses the anchor, not the blended estimate: under
       mini-batch ingestion the blend tracks fresh gold down smoothly, so
       by the time a window of chance-level answers is in, the blend is no
       longer informative — but the standing regime (anchor, which only
       moves on reset) still is. *)
    let was_informative =
      Float.abs (t.anchor_q.(i) -. chance) >= 2. *. cfg.spammer_threshold
    in
    if spammer_now && was_informative then
      Some { worker = i; kind = Spammer_onset; before = prev.(i); after = rate }
    else
      let bound = cfg.drift_z *. sqrt (q *. (1. -. q) /. float_of_int !k) in
      if Float.abs (rate -. q) > bound then
        Some { worker = i; kind = Quality_shift; before = prev.(i); after = rate }
      else if t.matrix_base then begin
        (* Per-class shift test: a matrix worker who turns bad on one truth
           label can keep the pooled windowed rate inside the global bound —
           the damage is diluted by the classes she still answers well.
           Bucket the same window by resolved truth and run the binomial
           null per class against the anchor matrix diagonal (the standing
           regime, like the scalar spammer test above). *)
        let graded, correct =
          History.recent_class_counts t.histories.(i) ~labels:t.labels
            ~k:cfg.drift_window ~truth:(reference t)
        in
        let per_class_min = Int.max 2 (cfg.drift_min / t.labels) in
        let hit = ref None in
        for j = 0 to t.labels - 1 do
          if !hit = None && graded.(j) >= per_class_min then begin
            let kj = float_of_int graded.(j) in
            let rate_j = float_of_int correct.(j) /. kj in
            let qj = Float.max 0.05 (Float.min 0.95 t.anchor_m.(i).(j).(j)) in
            let bound_j = cfg.drift_z *. sqrt (qj *. (1. -. qj) /. kj) in
            if Float.abs (rate_j -. qj) > bound_j then
              hit :=
                Some
                  { worker = i; kind = Quality_shift; before = prev.(i); after = rate }
          end
        done;
        !hit
      end
      else None
  end

(* On drift the old evidence describes a worker that no longer exists:
   re-anchor on the recent window and drop the worker's retained EM votes. *)
let reset_worker t d =
  let i = d.worker in
  let rate = clamp01 d.after in
  t.anchor_q.(i) <- rate;
  t.anchor_m.(i) <- symmetric_matrix ~labels:t.labels rate;
  t.anchor_w.(i) <- 2.;
  t.gold_a.(i) <- 0.;
  t.gold_b.(i) <- 0.;
  t.gold_counts.(i) <- Array.make_matrix t.labels t.labels 0.;
  Hashtbl.iter
    (fun _ cell -> cell := List.filter (fun (w, _) -> w <> i) !cell)
    t.tasks

(* --- blending --------------------------------------------------------- *)

let blend t =
  let em_q = em_qualities t in
  let u = em_support t in
  let em_priors = match t.em with Some r -> Some r.class_priors | None -> None in
  let changed = ref false in
  for i = 0 to t.n - 1 do
    let a = ref ((t.anchor_w.(i) *. t.anchor_q.(i)) +. t.gold_a.(i)) in
    let b = ref ((t.anchor_w.(i) *. (1. -. t.anchor_q.(i))) +. t.gold_b.(i)) in
    (match em_q with
    | Some eq when u.(i) > 0. ->
        a := !a +. (eq.(i) *. u.(i));
        b := !b +. ((1. -. eq.(i)) *. u.(i))
    | _ -> ());
    let q = clamp01 (!a /. (!a +. !b)) in
    if Float.abs (q -. t.qualities.(i)) > 1e-12 then changed := true;
    t.qualities.(i) <- q;
    (* matrix estimate: anchor + gold counts + EM soft counts, row-normalized *)
    let m =
      Array.init t.labels (fun j ->
          let row = Array.make t.labels 0. in
          let anchor_row = t.anchor_m.(i).(j) in
          let gold_row = t.gold_counts.(i).(j) in
          let em_row =
            match (t.em, u.(i) > 0.) with
            | Some r, true -> Some r.Dawid_skene.confusions.(i).(j)
            | _ -> None
          in
          let prior_j =
            match em_priors with
            | Some p -> p.(j)
            | None -> 1. /. float_of_int t.labels
          in
          for k = 0 to t.labels - 1 do
            row.(k) <- t.anchor_w.(i) *. anchor_row.(k) +. gold_row.(k);
            (match em_row with
            | Some er -> row.(k) <- row.(k) +. (u.(i) *. prior_j *. er.(k))
            | None -> ())
          done;
          let s = Array.fold_left ( +. ) 0. row in
          if s <= 0. then Array.make t.labels (1. /. float_of_int t.labels)
          else Array.map (fun c -> c /. s) row)
    in
    t.confusions.(i) <- m
  done;
  !changed

let calibrate t ~warm ~max_iterations =
  let applied = apply_pending t in
  run_em t ~warm ~max_iterations;
  let prev = Array.copy t.qualities in
  let drifted = ref [] in
  for i = t.n - 1 downto 0 do
    match detect_drift t ~prev i with
    | Some d ->
        drifted := d :: !drifted;
        reset_worker t d
    | None -> ()
  done;
  let drifted = !drifted in
  if drifted <> [] then run_em t ~warm:false ~max_iterations;
  t.drift_total <- t.drift_total + List.length drifted;
  let changed = blend t in
  { applied; changed = changed || drifted <> []; drifted }

let step t = calibrate t ~warm:true ~max_iterations:t.config.em_iterations
let recalibrate t = calibrate t ~warm:false ~max_iterations:200
