(** Spammer scoring for confusion-matrix workers.

    §7 notes that ranking matrix workers (Raykar & Yu [34], Ipeirotis et
    al. [18]) "may provide good heuristics" for multi-class jury selection.
    A spammer votes independently of the truth, i.e. her confusion matrix
    has identical rows; an informative worker's rows differ.  The score here
    is the mean total-variation distance between pairs of rows:

      score(C) = avg over j < j' of  ½ Σ_k |C(j,k) − C(j',k)|  ∈ [0, 1]

    0 exactly for spammers, 1 for workers whose answer distributions under
    different truths are disjoint (e.g. a perfect worker). *)

val score : Confusion.t -> float
(** The informativeness score described above. *)

val score_matrix : float array array -> float
(** Same score on a raw row-stochastic matrix — used by the streaming
    calibrator's drift detector on windowed empirical matrices.
    @raise Invalid_argument with fewer than 2 rows. *)

val is_spammer : ?threshold:float -> Confusion.t -> bool
(** [score c < threshold] (default 0.05). *)

val rank : Confusion.t array -> Confusion.t array
(** Workers sorted by decreasing score (stable on ties by id). *)

val binary_score_matches_quality : quality:float -> float
(** For a symmetric binary worker of the given quality the score reduces to
    |2q − 1| — exposed so tests can pin the correspondence. *)
