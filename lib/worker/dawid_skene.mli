(** Dawid–Skene EM estimation of worker confusion matrices and task labels
    (paper references [1] — Dawid & Skene 1979 — and [18] — Ipeirotis et
    al. 2010).

    When no gold questions are available, worker qualities must be inferred
    jointly with the unknown true answers.  EM alternates between:
    - E-step: posterior over each task's true label given current worker
      matrices and class priors;
    - M-step: re-estimate each worker's confusion matrix and the class
      priors from the soft labels.

    Initialization is (soft) majority voting.  Smoothing keeps matrices
    strictly positive so the log-likelihood is finite. *)

type vote = { task : int; worker : int; label : int }

type result = {
  confusions : float array array array;
      (** [confusions.(w)] is worker [w]'s estimated ℓ×ℓ matrix. *)
  class_priors : float array;       (** Estimated Pr(truth = j). *)
  posteriors : float array array;   (** [posteriors.(t).(j)] = Pr(truth_t = j | votes). *)
  labels : int array;               (** argmax of each posterior. *)
  log_likelihood : float;           (** Final observed-data log-likelihood. *)
  iterations : int;                 (** EM iterations executed. *)
}

val run :
  ?max_iterations:int ->
  ?tolerance:float ->
  ?smoothing:float ->
  ?init:float array array array * float array ->
  n_tasks:int ->
  n_workers:int ->
  n_labels:int ->
  vote list ->
  result
(** [run ~n_tasks ~n_workers ~n_labels votes] fits the model.  Defaults:
    [max_iterations = 100], [tolerance = 1e-7] (stop when the log-likelihood
    gain drops below it), [smoothing = 0.01] added per confusion cell.
    [init] warm-starts EM from [(confusions, class_priors)] instead of the
    soft-majority initialization — the streaming calibrator uses this to
    resume from its previous fit on each mini-batch.
    Tasks or workers with no votes get uniform posteriors / matrices.
    @raise Invalid_argument on out-of-range ids or labels, or [init] of the
    wrong shape. *)

val binary_qualities : result -> float array
(** For a 2-label fit: each worker's scalar quality, the prior-weighted
    diagonal of the confusion matrix — comparable to {!Worker.quality}. *)
