type doc = Scalar_rows of Pool.t | Matrix_rows of Confusion.t array

let parse_line ~line_number line =
  let bad what =
    failwith (Printf.sprintf "Pool_io: line %d: %s: %S" line_number what line)
  in
  match String.split_on_char ',' line with
  | [ name; quality; cost ] -> (
      let name = String.trim name in
      match
        (float_of_string_opt (String.trim quality), float_of_string_opt (String.trim cost))
      with
      | Some q, Some c ->
          (* Range-check here so a bad row reports its line number instead
             of surfacing later as a bare Worker.make failure. *)
          if Float.is_nan q || q < 0. || q > 1. then
            bad "quality must lie in [0, 1]";
          if (not (Float.is_finite c)) || c < 0. then
            bad "cost must be finite and nonnegative";
          (name, q, c)
      | _ -> bad "quality/cost not numbers")
  | _ -> bad "expected 'name,quality,cost'"

(* One confusion-matrix row: name,cost,m00,m01,…  (ℓ² entries, row major).
   ℓ is inferred from the field count; 3 fields always mean a scalar row,
   so the two formats cannot collide (ℓ ≥ 2 needs at least 6 fields). *)
let parse_matrix_line ~line_number line =
  let bad what =
    failwith (Printf.sprintf "Pool_io: line %d: %s: %S" line_number what line)
  in
  match String.split_on_char ',' line with
  | name :: cost :: entries when List.length entries >= 4 ->
      let k = List.length entries in
      let labels =
        let rec side l = if l * l >= k then l else side (l + 1) in
        let l = side 2 in
        if l * l <> k then
          bad "matrix rows need name,cost followed by l*l entries (l >= 2)"
        else l
      in
      let cost =
        match float_of_string_opt (String.trim cost) with
        | Some c when Float.is_finite c && c >= 0. -> c
        | _ -> bad "cost must be finite and nonnegative"
      in
      let flat =
        List.map
          (fun tok ->
            match float_of_string_opt (String.trim tok) with
            | Some p when (not (Float.is_nan p)) && p >= 0. && p <= 1. -> p
            | _ -> bad "matrix entries must lie in [0, 1]")
          entries
      in
      let flat = Array.of_list flat in
      let matrix =
        Array.init labels (fun j ->
            Array.init labels (fun v -> flat.((j * labels) + v)))
      in
      Array.iter
        (fun row ->
          (* Same Kahan tolerance as Confusion.make, so a row accepted
             here cannot fail construction later without a line number. *)
          let sum = ref 0. and comp = ref 0. in
          Array.iter
            (fun p ->
              let y = p -. !comp in
              let t = !sum +. y in
              comp := t -. !sum -. y;
              sum := t)
            row;
          if Float.abs (!sum -. 1.) > 1e-9 then
            bad "matrix row does not sum to 1")
        matrix;
      (String.trim name, cost, matrix)
  | _ -> bad "expected 'name,cost,m00,m01,...'"

let is_header line =
  match String.lowercase_ascii (String.trim line) with
  | "name,quality,cost" | "name,cost,matrix" -> true
  | _ -> false

let of_csv_string doc =
  let lines = String.split_on_char '\n' doc in
  let rows = ref [] in
  List.iteri
    (fun idx raw ->
      let line = String.trim raw in
      if line = "" || line.[0] = '#' || (idx = 0 && is_header line) then ()
      else rows := parse_line ~line_number:(idx + 1) line :: !rows)
    lines;
  let rows = List.rev !rows in
  try
    Pool.of_list
      (List.mapi
         (fun id (name, quality, cost) -> Worker.make ~name ~id ~quality ~cost ())
         rows)
  with Invalid_argument msg -> failwith ("Pool_io: " ^ msg)

(* A document's first data row fixes its kind: 3 fields = scalar pool,
   anything else = matrix pool.  Rows of the other kind are then errors. *)
let doc_of_csv_string text =
  let lines = String.split_on_char '\n' text in
  let rows = ref [] in
  List.iteri
    (fun idx raw ->
      let line = String.trim raw in
      if line = "" || line.[0] = '#' || (idx = 0 && is_header line) then ()
      else rows := (idx + 1, line) :: !rows)
    lines;
  match List.rev !rows with
  | [] -> Scalar_rows (Pool.of_list [])
  | ((_, first) :: _) as rows ->
      let scalar =
        match String.split_on_char ',' first with [ _; _; _ ] -> true | _ -> false
      in
      if scalar then
        Scalar_rows
          (try
             Pool.of_list
               (List.mapi
                  (fun id (line_number, line) ->
                    let name, quality, cost = parse_line ~line_number line in
                    Worker.make ~name ~id ~quality ~cost ())
                  rows)
           with Invalid_argument msg -> failwith ("Pool_io: " ^ msg))
      else begin
        let parsed =
          List.mapi
            (fun id (line_number, line) ->
              let name, cost, matrix = parse_matrix_line ~line_number line in
              try Confusion.make ~name ~id ~matrix ~cost ()
              with Invalid_argument msg ->
                failwith (Printf.sprintf "Pool_io: line %d: %s" line_number msg))
            rows
        in
        let labels = Confusion.labels (List.hd parsed) in
        List.iter2
          (fun (line_number, line) c ->
            if Confusion.labels c <> labels then
              failwith
                (Printf.sprintf
                   "Pool_io: line %d: matrix rows disagree on label count: %S"
                   line_number line))
          rows parsed;
        Matrix_rows (Array.of_list parsed)
      end

let to_csv_string pool =
  let line w =
    Printf.sprintf "%s,%.12g,%.12g" (Worker.name w) (Worker.quality w)
      (Worker.cost w)
  in
  String.concat "\n" ("name,quality,cost" :: List.map line (Pool.to_list pool))
  ^ "\n"

let doc_to_csv_string = function
  | Scalar_rows pool -> to_csv_string pool
  | Matrix_rows confusions ->
      let line c =
        let l = Confusion.labels c in
        let entries = ref [] in
        for j = l - 1 downto 0 do
          let row = Confusion.row c j in
          for v = l - 1 downto 0 do
            entries := Printf.sprintf "%.12g" row.(v) :: !entries
          done
        done;
        String.concat ","
          (Confusion.name c :: Printf.sprintf "%.12g" (Confusion.cost c)
           :: !entries)
      in
      String.concat "\n"
        ("name,cost,matrix" :: List.map line (Array.to_list confusions))
      ^ "\n"

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path text =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc text)

let load path = of_csv_string (read_file path)
let save path pool = write_file path (to_csv_string pool)
let load_doc path = doc_of_csv_string (read_file path)
let save_doc path doc = write_file path (doc_to_csv_string doc)
