let parse_line ~line_number line =
  let bad what =
    failwith (Printf.sprintf "Pool_io: line %d: %s: %S" line_number what line)
  in
  match String.split_on_char ',' line with
  | [ name; quality; cost ] -> (
      let name = String.trim name in
      match
        (float_of_string_opt (String.trim quality), float_of_string_opt (String.trim cost))
      with
      | Some q, Some c ->
          (* Range-check here so a bad row reports its line number instead
             of surfacing later as a bare Worker.make failure. *)
          if Float.is_nan q || q < 0. || q > 1. then
            bad "quality must lie in [0, 1]";
          if (not (Float.is_finite c)) || c < 0. then
            bad "cost must be finite and nonnegative";
          (name, q, c)
      | _ -> bad "quality/cost not numbers")
  | _ -> bad "expected 'name,quality,cost'"

let is_header line =
  String.lowercase_ascii (String.trim line) = "name,quality,cost"

let of_csv_string doc =
  let lines = String.split_on_char '\n' doc in
  let rows = ref [] in
  List.iteri
    (fun idx raw ->
      let line = String.trim raw in
      if line = "" || line.[0] = '#' || (idx = 0 && is_header line) then ()
      else rows := parse_line ~line_number:(idx + 1) line :: !rows)
    lines;
  let rows = List.rev !rows in
  try
    Pool.of_list
      (List.mapi
         (fun id (name, quality, cost) -> Worker.make ~name ~id ~quality ~cost ())
         rows)
  with Invalid_argument msg -> failwith ("Pool_io: " ^ msg)

let to_csv_string pool =
  let line w =
    Printf.sprintf "%s,%.12g,%.12g" (Worker.name w) (Worker.quality w)
      (Worker.cost w)
  in
  String.concat "\n" ("name,quality,cost" :: List.map line (Pool.to_list pool))
  ^ "\n"

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> of_csv_string (really_input_string ic (in_channel_length ic)))

let save path pool =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_csv_string pool))
