let parse_line ~line_number line =
  match String.split_on_char ',' line with
  | [ name; quality; cost ] -> (
      let name = String.trim name in
      match
        (float_of_string_opt (String.trim quality), float_of_string_opt (String.trim cost))
      with
      | Some q, Some c -> (name, q, c)
      | _ ->
          failwith
            (Printf.sprintf "Pool_io: line %d: quality/cost not numbers: %S"
               line_number line))
  | _ ->
      failwith
        (Printf.sprintf "Pool_io: line %d: expected 'name,quality,cost': %S"
           line_number line)

let is_header line =
  String.lowercase_ascii (String.trim line) = "name,quality,cost"

let of_csv_string doc =
  let lines = String.split_on_char '\n' doc in
  let rows = ref [] in
  List.iteri
    (fun idx raw ->
      let line = String.trim raw in
      if line = "" || line.[0] = '#' || (idx = 0 && is_header line) then ()
      else rows := parse_line ~line_number:(idx + 1) line :: !rows)
    lines;
  let rows = List.rev !rows in
  try
    Pool.of_list
      (List.mapi
         (fun id (name, quality, cost) -> Worker.make ~name ~id ~quality ~cost ())
         rows)
  with Invalid_argument msg -> failwith ("Pool_io: " ^ msg)

let to_csv_string pool =
  let line w =
    Printf.sprintf "%s,%.12g,%.12g" (Worker.name w) (Worker.quality w)
      (Worker.cost w)
  in
  String.concat "\n" ("name,quality,cost" :: List.map line (Pool.to_list pool))
  ^ "\n"

let load path =
  let ic = open_in path in
  let size = in_channel_length ic in
  let content = really_input_string ic size in
  close_in ic;
  of_csv_string content

let save path pool =
  let oc = open_out path in
  output_string oc (to_csv_string pool);
  close_out oc
