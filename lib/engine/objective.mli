(** Model-polymorphic JQ objectives.

    One objective scores any {!Pool} under any {!Task}, dispatching on the
    pool's representation: [Binary] pools go through the dense binary stack
    ({!Jq.Bucket.estimate} / {!Jq.Exact.jq_optimal}, bitwise identical to
    {!Jsp.Objective}'s scores), [Matrix] pools through §7's tuple-key
    machinery ({!Jq.Multiclass_jq}).  Empty juries score
    {!Task.empty_score} in either representation. *)

type t

val name : t -> string
val score : t -> task:Task.t -> Pool.t -> float

val bv_bucket : ?num_buckets:int -> ?workspace:Jq.Workspace.t -> unit -> t
(** JQ under Bayesian Voting by the bucket approximation — Algorithm 1 for
    binary pools, the ℓ-tuple-key generalization for matrix pools.
    [num_buckets] defaults to {!Jq.Bucket.default_num_buckets}.
    [workspace] pins the kernels' scratch buffers (one owner at a time,
    never shared across domains — see {!Jq.Workspace}); by default each
    evaluation reuses the calling domain's workspace.
    @raise Invalid_argument when a non-empty pool's label count differs
    from the task's. *)

type scored = {
  score : float;  (** The JQ estimate — identical to {!score} of {!bv_bucket}. *)
  bound : float;
      (** Certified additive error: the §4.4 bound for binary pools,
          Σ α_t·{!Jq.Bounds.multiclass_bound} + truncation loss for matrix
          pools. *)
  flat_fallbacks : int;
      (** Matrix-pool truth evaluations that overflowed the flat kernel's
          frontier cap and fell back to the hashtable oracle (0 for binary
          pools). *)
}

val bv_bucket_scored :
  ?num_buckets:int ->
  ?workspace:Jq.Workspace.t ->
  unit ->
  task:Task.t ->
  Pool.t ->
  scored
(** {!bv_bucket}'s score together with its certified error bound and the
    fallback count, for callers (the serve data plane, CLIs) that surface
    bound and kernel health alongside the value.  Same dispatch,
    arguments, and exceptions as {!bv_bucket}. *)

val bv_exact : t
(** Exact JQ under BV by enumeration — 2^n votings for binary pools
    (juries of ≤ {!Jq.Exact.max_jury}), ℓ^n for matrix pools (bounded by
    {!Voting.Multiclass.enumeration_cap}).
    @raise Invalid_argument beyond those limits or on a label mismatch. *)

val bv_exact_capped : ?cap:int -> unit -> t
(** {!bv_exact} with the enumeration ceiling moved to [cap] votings in
    either representation (defaults as in {!bv_exact}; binary juries
    still top out at 25 workers, the {!Voting.Vote.enumerate} hard
    limit). *)
