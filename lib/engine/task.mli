(** Task model: ℓ labels and a prior distribution over them.

    The paper's binary task (§2, prior α = Pr(t = 0)) is the ℓ = 2
    specialization; §7's multi-choice task carries an ℓ-vector prior.  A
    task says nothing about workers — pair it with an {!Pool} whose worker
    model matches (scalar qualities for ℓ = 2, confusion matrices for any
    ℓ). *)

type t
(** An immutable task model: a label count ℓ ≥ 2 and a prior vector. *)

val make : prior:float array -> t
(** Validates: ≥ 2 entries, each in [0, 1], summing to 1 (±1e-9).  The
    array is copied.  @raise Invalid_argument on violations. *)

val binary : alpha:float -> t
(** The classic binary task: prior [α; 1 − α].
    @raise Invalid_argument when α lies outside [0, 1]. *)

val labels : t -> int
(** Number of labels ℓ. *)

val prior : t -> float array
(** Copy of the prior vector. *)

val is_binary : t -> bool
(** ℓ = 2. *)

val alpha : t -> float
(** Pr(t = 0) of a binary task — the first prior entry.
    @raise Invalid_argument when ℓ ≠ 2. *)

val empty_score : t -> float
(** JQ of the empty jury: max prior entry (guess the mode).  For a task
    built by {!binary} this equals the binary stack's
    [Float.max alpha (1. -. alpha)] bitwise. *)

val equal : t -> t -> bool

val fingerprint : t -> string
(** Bit-exact textual digest of the prior, for cache keys: two tasks
    fingerprint equally iff every objective scores them equally. *)

val pp : Format.formatter -> t -> unit
