type t = { name : string; score : task:Task.t -> Pool.t -> float }

let name t = t.name
let score t = t.score

let check_labels ~what ~task pool =
  if Pool.labels pool <> Task.labels task then
    invalid_arg
      (Printf.sprintf "%s: pool has %d labels but task has %d" what
         (Pool.labels pool) (Task.labels task))

let bv_bucket ?num_buckets ?workspace () =
  {
    name = "BV/bucket";
    score =
      (fun ~task pool ->
        if Pool.is_empty pool then Task.empty_score task
        else begin
          check_labels ~what:"Engine.Objective.bv_bucket" ~task pool;
          match Pool.repr pool with
          | Pool.Binary p ->
              Jq.Bucket.estimate ?workspace ?num_buckets
                ~alpha:(Task.alpha task) (Workers.Pool.qualities p)
          | Pool.Matrix jury ->
              Jq.Multiclass_jq.estimate_bv ?workspace ?num_buckets
                ~prior:(Task.prior task) jury
        end);
  }

type scored = { score : float; bound : float; flat_fallbacks : int }

let bv_bucket_scored ?num_buckets ?workspace () ~task pool =
  if Pool.is_empty pool then
    { score = Task.empty_score task; bound = 0.; flat_fallbacks = 0 }
  else begin
    check_labels ~what:"Engine.Objective.bv_bucket_scored" ~task pool;
    match Pool.repr pool with
    | Pool.Binary p ->
        let s =
          Jq.Bucket.estimate_stats ?workspace ?num_buckets
            ~alpha:(Task.alpha task) (Workers.Pool.qualities p)
        in
        {
          score = s.Jq.Bucket.value;
          bound = s.Jq.Bucket.error_bound;
          flat_fallbacks = 0;
        }
    | Pool.Matrix jury ->
        let s =
          Jq.Multiclass_jq.estimate_bv_stats ?workspace ?num_buckets
            ~prior:(Task.prior task) jury
        in
        {
          score = s.Jq.Multiclass_jq.value;
          bound = s.Jq.Multiclass_jq.error_bound;
          flat_fallbacks = s.Jq.Multiclass_jq.fallbacks;
        }
  end

let bv_exact_capped ?cap () =
  {
    name = "BV/exact";
    score =
      (fun ~task pool ->
        if Pool.is_empty pool then Task.empty_score task
        else begin
          check_labels ~what:"Engine.Objective.bv_exact" ~task pool;
          match Pool.repr pool with
          | Pool.Binary p -> (
              let alpha = Task.alpha task
              and qualities = Workers.Pool.qualities p in
              match cap with
              | None -> Jq.Exact.jq_optimal ~alpha ~qualities
              | Some cap -> Jq.Exact.jq_optimal_capped ~cap ~alpha ~qualities)
          | Pool.Matrix jury ->
              Jq.Multiclass_jq.jq_exact ?cap Voting.Multiclass.bayesian
                ~prior:(Task.prior task) ~jury
        end);
  }

let bv_exact = bv_exact_capped ()
