(** Engine pools: one worker-pool type over both worker models.

    A pool is either [Binary] — scalar-quality workers, the paper's §2
    model, eligible for the dense {!Jq.Bucket} / {!Jq.Incremental} fast
    paths — or [Matrix] — §7 confusion-matrix workers over ℓ labels.

    {!of_confusions} *lowers* automatically: a pool in which every matrix
    is exactly the symmetric 2×2 [[q, 1−q], [1−q, q]] is represented as
    [Binary] (ids, names and costs preserved), so ℓ=2 symmetric matrix
    pools ride the binary hot paths end to end.  Theorem 3's pseudo-worker
    trick for α ≠ 0.5 stays inside the binary stack — it is never visible
    at this layer. *)

type repr =
  | Binary of Workers.Pool.t
  | Matrix of Workers.Confusion.t array

type t

val repr : t -> repr
(** The underlying representation.  The [Matrix] array is the pool's own —
    treat it as read-only. *)

val of_workers : Workers.Pool.t -> t
(** A binary pool, verbatim. *)

val of_confusions : Workers.Confusion.t array -> t
(** A matrix pool over uniform ℓ, lowered to [Binary] when every worker is
    an exactly-symmetric 2×2 matrix (bitwise test, so the scalar and matrix
    representations score identically).  The array is copied.
    @raise Invalid_argument on mixed label counts. *)

val size : t -> int
val is_empty : t -> bool

val labels : t -> int
(** ℓ of the worker model (2 for binary and for the empty pool). *)

val cost : t -> int -> float
(** Positional cost.  @raise Invalid_argument when out of bounds. *)

val costs : t -> float array
val total_cost : t -> float
val ids : t -> int list

val sub : t -> bool array -> t
(** [sub t selected] keeps the members whose flag is set, preserving order
    and representation (no re-lowering — a [Matrix] subset stays [Matrix]).
    @raise Invalid_argument when the flag array length differs from
    [size t]. *)

val to_workers : t -> Workers.Pool.t option
(** The scalar pool when the representation is [Binary]. *)

val to_confusions : t -> Workers.Confusion.t array
(** Matrix view of any pool; binary workers embed via
    {!Workers.Confusion.of_binary}. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
