type repr =
  | Binary of Workers.Pool.t
  | Matrix of Workers.Confusion.t array

type t = repr

let repr t = t
let of_workers p = Binary p

let lower confusions =
  (* A pool of exactly-symmetric 2x2 matrices is the binary model in
     disguise: recover the scalar qualities so downstream consumers hit the
     dense Bucket/Incremental fast paths.  All-or-nothing on purpose — a
     mixed pool must be scored by the matrix machinery anyway. *)
  let n = Array.length confusions in
  let rec go i acc =
    if i = n then Some (Workers.Pool.of_list (List.rev acc))
    else
      match Workers.Confusion.symmetric_quality confusions.(i) with
      | None -> None
      | Some q ->
          let c = confusions.(i) in
          let w =
            Workers.Worker.make
              ~name:(Workers.Confusion.name c)
              ~id:(Workers.Confusion.id c)
              ~quality:q
              ~cost:(Workers.Confusion.cost c)
              ()
          in
          go (i + 1) (w :: acc)
  in
  go 0 []

let of_confusions confusions =
  let n = Array.length confusions in
  if n = 0 then Binary (Workers.Pool.of_list [])
  else begin
    let l = Workers.Confusion.labels confusions.(0) in
    Array.iter
      (fun c ->
        if Workers.Confusion.labels c <> l then
          invalid_arg "Engine.Pool.of_confusions: mixed label counts")
      confusions;
    match lower confusions with
    | Some pool -> Binary pool
    | None -> Matrix (Array.copy confusions)
  end

let size = function
  | Binary p -> Workers.Pool.size p
  | Matrix a -> Array.length a

let is_empty t = size t = 0

let labels = function
  | Binary _ -> 2
  | Matrix a -> if Array.length a = 0 then 2 else Workers.Confusion.labels a.(0)

let cost t i =
  match t with
  | Binary p -> Workers.Worker.cost (Workers.Pool.get p i)
  | Matrix a ->
      if i < 0 || i >= Array.length a then invalid_arg "Engine.Pool.cost";
      Workers.Confusion.cost a.(i)

let costs = function
  | Binary p -> Workers.Pool.costs p
  | Matrix a -> Array.map Workers.Confusion.cost a

let total_cost = function
  | Binary p -> Workers.Pool.total_cost p
  | Matrix a ->
      Prob.Kahan.sum_array (Array.map Workers.Confusion.cost a)

let ids = function
  | Binary p -> List.map Workers.Worker.id (Workers.Pool.to_list p)
  | Matrix a -> Array.to_list (Array.map Workers.Confusion.id a)

let sub t selected =
  let n = size t in
  if Array.length selected <> n then
    invalid_arg "Engine.Pool.sub: selection length mismatch";
  let idxs = ref [] in
  for i = n - 1 downto 0 do
    if selected.(i) then idxs := i :: !idxs
  done;
  match t with
  | Binary p -> Binary (Workers.Pool.sub p !idxs)
  | Matrix a -> Matrix (Array.of_list (List.map (Array.get a) !idxs))

let to_workers = function
  | Binary p -> Some p
  | Matrix _ -> None

let to_confusions = function
  | Binary p ->
      Array.map Workers.Confusion.of_binary (Workers.Pool.to_array p)
  | Matrix a -> Array.copy a

let equal a b =
  match (a, b) with
  | Binary p, Binary q -> Workers.Pool.equal p q
  | Matrix x, Matrix y ->
      Array.length x = Array.length y
      && Array.for_all2
           (fun c d ->
             Workers.Confusion.id c = Workers.Confusion.id d
             && Workers.Confusion.cost c = Workers.Confusion.cost d
             && Workers.Confusion.labels c = Workers.Confusion.labels d
             &&
             let l = Workers.Confusion.labels c in
             let ok = ref true in
             for j = 0 to l - 1 do
               for k = 0 to l - 1 do
                 if
                   Workers.Confusion.prob c ~truth:j ~vote:k
                   <> Workers.Confusion.prob d ~truth:j ~vote:k
                 then ok := false
               done
             done;
             !ok)
           x y
  | _ -> false

let pp ppf = function
  | Binary p -> Format.fprintf ppf "binary:%a" Workers.Pool.pp p
  | Matrix a ->
      Format.fprintf ppf "matrix(l=%d)[%a]" (labels (Matrix a))
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
           Workers.Confusion.pp)
        (Array.to_list a)
