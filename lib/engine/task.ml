type t = { labels : int; prior : float array }

let make ~prior =
  let l = Array.length prior in
  if l < 2 then invalid_arg "Task.make: need at least 2 labels";
  Array.iter
    (fun p ->
      if p < 0. || p > 1. || Float.is_nan p then
        invalid_arg "Task.make: prior entry outside [0, 1]")
    prior;
  if Float.abs (Prob.Kahan.sum_array prior -. 1.) > 1e-9 then
    invalid_arg "Task.make: prior does not sum to 1";
  { labels = l; prior = Array.copy prior }

let binary ~alpha =
  if alpha < 0. || alpha > 1. || Float.is_nan alpha then
    invalid_arg "Task.binary: alpha outside [0, 1]";
  { labels = 2; prior = [| alpha; 1. -. alpha |] }

let labels t = t.labels
let prior t = Array.copy t.prior
let is_binary t = t.labels = 2

let alpha t =
  if t.labels <> 2 then invalid_arg "Task.alpha: not a binary task";
  t.prior.(0)

let empty_score t = Array.fold_left Float.max 0. t.prior

let equal a b =
  a.labels = b.labels && Array.for_all2 Float.equal a.prior b.prior

let fingerprint t =
  (* Bit-exact: two tasks fingerprint equally iff they score equally. *)
  String.concat ","
    (Array.to_list
       (Array.map (fun p -> Printf.sprintf "%Lx" (Int64.bits_of_float p)) t.prior))

let pp ppf t =
  Format.fprintf ppf "task(l=%d, prior=[%s])" t.labels
    (String.concat "; "
       (Array.to_list (Array.map (Printf.sprintf "%g") t.prior)))
