(** Calibration of Bayesian Voting's posterior confidence.

    "Is JQ a good prediction?" (§6.2.3) asks about *average* accuracy; a
    sharper question is whether the per-task posterior Pr(t = 0 | V) is
    calibrated — among tasks answered with 90% confidence, are 90% right?
    When the worker model holds exactly, BV's posterior is the true
    conditional probability, so calibration should be perfect up to
    sampling noise; model violations (estimation error, task difficulty)
    show up as calibration drift.  This module bins predictions, builds a
    reliability table, and computes the Brier score and expected
    calibration error (ECE). *)

type t
(** Mutable accumulator of graded decisions. *)

type bin = {
  lo : float;
  hi : float;
  count : int;
  mean_confidence : float;    (** Average predicted probability in the bin. *)
  empirical_accuracy : float; (** Fraction of those predictions that hit. *)
}

type report = {
  bins : bin list;            (** Non-empty bins, low confidence first. *)
  brier : float;              (** Mean squared error of the probability. *)
  expected_calibration_error : float;
      (** Count-weighted mean |confidence − accuracy| over bins. *)
  samples : int;
}

val create : ?bins:int -> unit -> t
(** Accumulator with [bins] equal-width confidence bins on [0.5, 1]
    (default 10) — the confidence of a binary decision never falls below
    0.5.  @raise Invalid_argument for bins <= 0. *)

val observe : t -> confidence:float -> correct:bool -> unit
(** Record one graded decision: the winning posterior mass and whether the
    decision was right.  @raise Invalid_argument for confidence outside
    [0.5, 1] (tolerates tiny rounding). *)

val report : t -> report
(** Snapshot.  Empty accumulators give an empty bin list and NaN scores. *)

val pp : Format.formatter -> report -> unit

val of_simulation :
  Prob.Rng.t ->
  qualities:float array ->
  alpha:float ->
  tasks:int ->
  report
(** Simulate [tasks] decision tasks with the given jury, aggregate with BV,
    and grade its confidence — the model-holds baseline (should be
    calibrated). *)
