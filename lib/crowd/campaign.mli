(** End-to-end campaign orchestration.

    A *system* bundles the two decisions a crowdsourcing deployment makes —
    which jury to hire for a task, and how to aggregate its votes — behind
    one interface, so whole campaigns (select → collect → aggregate →
    grade) can be run and compared in one call.  The Optimal Jury Selection
    System of Figure 1 and the MVJS baseline are both packaged as systems
    by {!Optjs.system} / {!Optjs.mvjs_system} (in `lib/core`); custom
    systems are just records. *)

type system = {
  name : string;
  select :
    Prob.Rng.t -> alpha:float -> budget:float -> Workers.Pool.t -> Workers.Pool.t;
      (** Choose a feasible jury from the candidates. *)
  aggregate :
    Prob.Rng.t ->
    alpha:float ->
    qualities:float array ->
    Voting.Vote.voting ->
    Voting.Vote.t;
      (** Decide the answer from the jury's votes. *)
}

type result = {
  tasks : int;
  accuracy : float;         (** Fraction of tasks answered correctly. *)
  mean_jury_size : float;
  mean_jury_cost : float;
}

val run :
  Prob.Rng.t ->
  system ->
  alpha:float ->
  budget:float ->
  candidates:(int -> Workers.Pool.t) ->
  tasks:Task.t array ->
  result
(** Run the campaign: per task, select a jury from [candidates task_id],
    sample its votes against the task's ground truth, aggregate, grade.
    Tasks must carry modelled truths.
    @raise Invalid_argument on an empty task array. *)

val run_uniform :
  Prob.Rng.t ->
  system ->
  alpha:float ->
  budget:float ->
  pool:Workers.Pool.t ->
  n_tasks:int ->
  result
(** Convenience wrapper: the same candidate pool for every task, with
    truths drawn from the prior. *)
