open Voting

type policy = By_quality | By_cost | Random_order | By_information_gain

type outcome = {
  answer : Vote.t;
  posterior_no : float;
  votes_used : int;
  cost : float;
  asked : int list;
  predicted_jq : float;
}

let entropy p =
  let term x = if x <= 0. then 0. else -.x *. log x in
  term p +. term (1. -. p)

let posterior_entropy p =
  let acc = ref 0. in
  Array.iter (fun x -> if x > 0. then acc := !acc -. (x *. log x)) p;
  !acc

(* One Bayesian update: a quality-q worker voting v multiplies the odds. *)
let update_posterior ~posterior_no ~quality vote =
  let p = posterior_no in
  match (vote : Vote.t) with
  | Vote.No ->
      let m = (p *. quality) +. ((1. -. p) *. (1. -. quality)) in
      if m = 0. then p else p *. quality /. m
  | Vote.Yes ->
      let m = (p *. (1. -. quality)) +. ((1. -. p) *. quality) in
      if m = 0. then p else p *. (1. -. quality) /. m

let expected_entropy_gain ~posterior_no ~quality =
  let p = posterior_no in
  let m_no = (p *. quality) +. ((1. -. p) *. (1. -. quality)) in
  let m_yes = 1. -. m_no in
  let p_after_no = update_posterior ~posterior_no:p ~quality Vote.No in
  let p_after_yes = update_posterior ~posterior_no:p ~quality Vote.Yes in
  let expected = (m_no *. entropy p_after_no) +. (m_yes *. entropy p_after_yes) in
  Float.max 0. (entropy p -. expected)

let expected_entropy_gain_vector ~posterior ~confusion =
  let l = Array.length posterior in
  if l < 2 then invalid_arg "Online.expected_entropy_gain_vector: < 2 labels";
  if Workers.Confusion.labels confusion <> l then
    invalid_arg "Online.expected_entropy_gain_vector: label count mismatch";
  match (l, Workers.Confusion.symmetric_quality confusion) with
  | 2, Some q -> expected_entropy_gain ~posterior_no:posterior.(0) ~quality:q
  | _ ->
      let expected = ref 0. in
      let cond = Array.make l 0. in
      for v = 0 to l - 1 do
        let m = ref 0. in
        for j = 0 to l - 1 do
          let joint =
            posterior.(j) *. Workers.Confusion.prob confusion ~truth:j ~vote:v
          in
          cond.(j) <- joint;
          m := !m +. joint
        done;
        if !m > 0. then begin
          for j = 0 to l - 1 do
            cond.(j) <- cond.(j) /. !m
          done;
          expected := !expected +. (!m *. posterior_entropy cond)
        end
      done;
      Float.max 0. (posterior_entropy posterior -. !expected)

let pick rng policy ~posterior_no remaining =
  let affordable = remaining in
  match policy with
  | By_quality ->
      fst
        (List.fold_left
           (fun (best, bq) (i, w) ->
             let q = Workers.Worker.quality w in
             if q > bq then (Some (i, w), q) else (best, bq))
           (None, neg_infinity) affordable)
  | By_cost ->
      fst
        (List.fold_left
           (fun (best, bc) (i, w) ->
             let c = Workers.Worker.cost w in
             if c < bc then (Some (i, w), c) else (best, bc))
           (None, infinity) affordable)
  | Random_order ->
      let arr = Array.of_list affordable in
      if Array.length arr = 0 then None else Some (Prob.Rng.choose rng arr)
  | By_information_gain ->
      fst
        (List.fold_left
           (fun (best, bg) (i, w) ->
             let gain =
               expected_entropy_gain ~posterior_no
                 ~quality:(Workers.Worker.quality w)
               /. Float.max 1e-9 (Workers.Worker.cost w)
             in
             if gain > bg then (Some (i, w), gain) else (best, bg))
           (None, neg_infinity) affordable)

let run rng ?(policy = By_quality) ~confidence ~budget ~alpha ~truth pool =
  if confidence <= 0.5 || confidence > 1. then
    invalid_arg "Online.run: confidence outside (0.5, 1]";
  if budget < 0. || Float.is_nan budget then invalid_arg "Online.run: budget";
  if alpha < 0. || alpha > 1. then invalid_arg "Online.run: alpha";
  let workers = Workers.Pool.to_array pool in
  let remaining =
    ref (List.mapi (fun i w -> (i, w)) (Array.to_list workers))
  in
  let posterior = ref alpha in
  let spent = ref 0. in
  let asked = ref [] in
  let votes_used = ref 0 in
  let anytime_jq = Jq.Incremental.create ~alpha () in
  let confident () = Float.max !posterior (1. -. !posterior) >= confidence in
  let continue = ref true in
  while !continue && not (confident ()) do
    let affordable =
      List.filter
        (fun (_, w) -> !spent +. Workers.Worker.cost w <= budget +. 1e-9)
        !remaining
    in
    match pick rng policy ~posterior_no:!posterior affordable with
    | None -> continue := false
    | Some (i, w) ->
        remaining := List.filter (fun (j, _) -> j <> i) !remaining;
        let quality = Workers.Worker.quality w in
        let vote = Simulate.vote rng ~truth ~quality in
        posterior := update_posterior ~posterior_no:!posterior ~quality vote;
        spent := !spent +. Workers.Worker.cost w;
        asked := Workers.Worker.id w :: !asked;
        Jq.Incremental.add_worker anytime_jq quality;
        incr votes_used
  done;
  {
    answer = (if !posterior >= 0.5 then Vote.No else Vote.Yes);
    posterior_no = !posterior;
    votes_used = !votes_used;
    cost = !spent;
    asked = List.rev !asked;
    predicted_jq = Jq.Incremental.value anytime_jq;
  }

type summary = {
  tasks : int;
  accuracy : float;
  mean_cost : float;
  mean_votes : float;
}

type calibrated_summary = {
  tasks : int;
  votes : int;
  steps : int;
  drift_flags : int;
  estimates : float array;
  mean_abs_error : float;
  base_abs_error : float;
}

(* Pick [k] distinct worker indices by a partial Fisher–Yates pass. *)
let sample_workers rng ~n ~k =
  let idx = Array.init n Fun.id in
  for i = 0 to k - 1 do
    let j = i + Prob.Rng.int rng (n - i) in
    let tmp = idx.(i) in
    idx.(i) <- idx.(j);
    idx.(j) <- tmp
  done;
  Array.to_list (Array.sub idx 0 k)

let simulate_calibrated rng ?config ?(votes_per_task = 5) ?(gold_rate = 0.2)
    ~alpha ~tasks ~base pool =
  if tasks <= 0 then invalid_arg "Online.simulate_calibrated: tasks <= 0";
  if alpha < 0. || alpha > 1. then invalid_arg "Online.simulate_calibrated: alpha";
  if gold_rate < 0. || gold_rate > 1. then
    invalid_arg "Online.simulate_calibrated: gold_rate outside [0, 1]";
  let n = Workers.Pool.size pool in
  if Array.length base <> n then
    invalid_arg "Online.simulate_calibrated: base/pool size mismatch";
  let k = min votes_per_task n in
  if k <= 0 then invalid_arg "Online.simulate_calibrated: votes_per_task <= 0";
  let calib =
    Workers.Calib.create ?config ~base:(Workers.Calib.Scalar base) ()
  in
  let steps = ref 0 in
  let votes_total = ref 0 in
  for task = 0 to tasks - 1 do
    let truth = Simulate.sample_truth rng ~alpha in
    let gold = Prob.Rng.float rng 1. < gold_rate in
    let votes =
      List.map
        (fun worker ->
          let quality = Workers.Worker.quality (Workers.Pool.get pool worker) in
          let vote = Simulate.vote rng ~truth ~quality in
          {
            Workers.Calib.task;
            worker;
            label = Vote.to_int vote;
            truth = (if gold then Some (Vote.to_int truth) else None);
          })
        (sample_workers rng ~n ~k)
    in
    (match Workers.Calib.feed calib votes with
    | Ok _ -> ()
    | Error msg -> invalid_arg ("Online.simulate_calibrated: " ^ msg));
    votes_total := !votes_total + List.length votes;
    (* The ingest rule of the serve plane: step exactly when a batch is
       due, so the simulation exercises the same mini-batch cadence the
       wire path does. *)
    if Workers.Calib.due calib then begin
      ignore (Workers.Calib.step calib);
      incr steps
    end
  done;
  if Workers.Calib.pending calib > 0 then begin
    ignore (Workers.Calib.step calib);
    incr steps
  end;
  let mean_err of_i =
    let acc = Prob.Kahan.create () in
    for i = 0 to n - 1 do
      let latent = Workers.Worker.quality (Workers.Pool.get pool i) in
      Prob.Kahan.add acc (Float.abs (of_i i -. latent))
    done;
    Prob.Kahan.total acc /. float_of_int n
  in
  {
    tasks;
    votes = !votes_total;
    steps = !steps;
    drift_flags = Workers.Calib.drift_count calib;
    estimates = Workers.Calib.qualities calib;
    mean_abs_error = mean_err (Workers.Calib.quality calib);
    base_abs_error = mean_err (fun i -> base.(i));
  }

let simulate_many rng ?policy ~confidence ~budget ~alpha ~tasks pool =
  if tasks <= 0 then invalid_arg "Online.simulate_many: tasks <= 0";
  let correct = ref 0 in
  let cost_acc = Prob.Kahan.create () in
  let votes_acc = ref 0 in
  for _ = 1 to tasks do
    let truth = Simulate.sample_truth rng ~alpha in
    let o = run rng ?policy ~confidence ~budget ~alpha ~truth pool in
    if Vote.equal o.answer truth then incr correct;
    Prob.Kahan.add cost_acc o.cost;
    votes_acc := !votes_acc + o.votes_used
  done;
  let t = float_of_int tasks in
  {
    tasks;
    accuracy = float_of_int !correct /. t;
    mean_cost = Prob.Kahan.total cost_acc /. t;
    mean_votes = float_of_int !votes_acc /. t;
  }
