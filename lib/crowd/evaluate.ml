open Voting

type grade = { accuracy : float; average_jq : float; tasks : int }

let strategy_on_dataset ?num_buckets ?rng ~strategy ~z (dataset : Amt_dataset.t) =
  if z <= 0 then invalid_arg "Evaluate.strategy_on_dataset: z <= 0";
  let rng = match rng with Some r -> r | None -> Prob.Rng.create 0x5EED in
  let n_tasks = Array.length dataset.tasks in
  let correct = ref 0 in
  let jq_acc = Prob.Kahan.create () in
  for task_id = 0 to n_tasks - 1 do
    let votes = Amt_dataset.task_votes dataset ~task_id ~max_votes:z in
    let qualities =
      Array.map
        (fun (w, _) -> Amt_dataset.clamp_quality dataset.estimated_qualities.(w))
        votes
    in
    let voting = Array.map snd votes in
    let alpha = Task.prior dataset.tasks.(task_id) in
    let answer = Strategy.run strategy rng ~alpha ~qualities voting in
    if Vote.equal answer (Task.truth_exn dataset.tasks.(task_id)) then incr correct;
    Prob.Kahan.add jq_acc (Jq.Bucket.estimate ?num_buckets ~alpha qualities)
  done;
  {
    accuracy = float_of_int !correct /. float_of_int n_tasks;
    average_jq = Prob.Kahan.total jq_acc /. float_of_int n_tasks;
    tasks = n_tasks;
  }

let accuracy_of_juries ?rng ~strategy ~juries (dataset : Amt_dataset.t) =
  let rng = match rng with Some r -> r | None -> Prob.Rng.create 0x5EED in
  let n_tasks = Array.length dataset.tasks in
  if Array.length juries <> n_tasks then
    invalid_arg "Evaluate.accuracy_of_juries: one jury per task required";
  let correct = ref 0 in
  for task_id = 0 to n_tasks - 1 do
    let jury = juries.(task_id) in
    let members = Workers.Pool.to_array jury in
    let vote_of w =
      match
        Array.find_opt
          (fun (voter, _) -> voter = Workers.Worker.id w)
          dataset.votes.(task_id)
      with
      | Some (_, v) -> v
      | None -> invalid_arg "Evaluate.accuracy_of_juries: juror did not answer"
    in
    let voting = Array.map vote_of members in
    let qualities = Array.map Workers.Worker.quality members in
    let alpha = Task.prior dataset.tasks.(task_id) in
    let answer = Strategy.run strategy rng ~alpha ~qualities voting in
    if Vote.equal answer (Task.truth_exn dataset.tasks.(task_id)) then incr correct
  done;
  float_of_int !correct /. float_of_int n_tasks
