type record = { task : int; worker : int; vote : int; truth : int option }

let parse_int ~line_number ~what s =
  match int_of_string_opt (String.trim s) with
  | Some v when v >= 0 -> v
  | Some _ | None ->
      failwith
        (Printf.sprintf "Votes_io: line %d: %s is not a nonnegative integer: %S"
           line_number what s)

let parse_line ~line_number line =
  match String.split_on_char ',' line with
  | [ task; worker; vote ] ->
      {
        task = parse_int ~line_number ~what:"task" task;
        worker = parse_int ~line_number ~what:"worker" worker;
        vote = parse_int ~line_number ~what:"vote" vote;
        truth = None;
      }
  | [ task; worker; vote; truth ] ->
      {
        task = parse_int ~line_number ~what:"task" task;
        worker = parse_int ~line_number ~what:"worker" worker;
        vote = parse_int ~line_number ~what:"vote" vote;
        truth =
          (if String.trim truth = "" then None
           else Some (parse_int ~line_number ~what:"truth" truth));
      }
  | _ ->
      failwith
        (Printf.sprintf
           "Votes_io: line %d: expected 'task,worker,vote[,truth]': %S"
           line_number line)

let is_header line =
  match String.lowercase_ascii (String.trim line) with
  | "task,worker,vote" | "task,worker,vote,truth" -> true
  | _ -> false

let of_csv_string doc =
  let rows = ref [] in
  List.iteri
    (fun idx raw ->
      let line = String.trim raw in
      if line = "" || line.[0] = '#' || (idx = 0 && is_header line) then ()
      else rows := parse_line ~line_number:(idx + 1) line :: !rows)
    (String.split_on_char '\n' doc);
  List.rev !rows

let to_csv_string records =
  let line r =
    match r.truth with
    | Some t -> Printf.sprintf "%d,%d,%d,%d" r.task r.worker r.vote t
    | None -> Printf.sprintf "%d,%d,%d," r.task r.worker r.vote
  in
  String.concat "\n" ("task,worker,vote,truth" :: List.map line records) ^ "\n"

let load path =
  let ic = open_in path in
  let size = in_channel_length ic in
  let content = really_input_string ic size in
  close_in ic;
  of_csv_string content

let save path records =
  let oc = open_out path in
  output_string oc (to_csv_string records);
  close_out oc

let dimensions records =
  List.fold_left
    (fun (t, w, l) r ->
      let label_hi = match r.truth with Some tr -> max r.vote tr | None -> r.vote in
      (max t (r.task + 1), max w (r.worker + 1), max l (label_hi + 1)))
    (0, 0, 0) records

let to_dawid_skene records =
  List.map
    (fun r -> { Workers.Dawid_skene.task = r.task; worker = r.worker; label = r.vote })
    records

let histories records =
  let _, n_workers, _ = dimensions records in
  let hs = Array.init n_workers (fun worker_id -> Workers.History.create ~worker_id ()) in
  List.iter
    (fun r ->
      match r.truth with
      | Some truth ->
          Workers.History.record_gold hs.(r.worker) ~task_id:r.task ~vote:r.vote ~truth
      | None -> Workers.History.record_vote hs.(r.worker) ~task_id:r.task ~vote:r.vote)
    records;
  hs

let of_amt_dataset (dataset : Amt_dataset.t) =
  let records = ref [] in
  Array.iteri
    (fun task_id votes ->
      let truth = Voting.Vote.to_int (Task.truth_exn dataset.tasks.(task_id)) in
      Array.iter
        (fun (worker, v) ->
          records :=
            { task = task_id; worker; vote = Voting.Vote.to_int v; truth = Some truth }
            :: !records)
        votes)
    dataset.votes;
  List.rev !records
