type params = {
  n_tasks : int;
  labels : int;
  n_workers : int;
  votes_per_task : int;
  careful_share : float;
  spammer_share : float;
}

let default_params =
  {
    n_tasks = 200;
    labels = 3;
    n_workers = 40;
    votes_per_task = 7;
    careful_share = 0.4;
    spammer_share = 0.15;
  }

type t = {
  params : params;
  prior : float array;
  truths : int array;
  votes : (int * int) array array;
  true_matrices : Workers.Confusion.t array;
  estimated_matrices : Workers.Confusion.t array;
}

(* Worker archetypes over l labels. *)
let careful rng ~labels ~id ~cost =
  let diag = Prob.Distributions.sample_uniform rng ~lo:0.75 ~hi:0.92 in
  let off = (1. -. diag) /. float_of_int (labels - 1) in
  let matrix =
    Array.init labels (fun j ->
        Array.init labels (fun k -> if j = k then diag else off))
  in
  Workers.Confusion.make ~id ~matrix ~cost ()

let hedger rng ~labels ~id ~cost =
  (* Decent on the diagonal, but a chunk of mass drifts to the last label
     ("unsure") whatever the truth. *)
  let diag = Prob.Distributions.sample_uniform rng ~lo:0.45 ~hi:0.6 in
  let hedge = Prob.Distributions.sample_uniform rng ~lo:0.25 ~hi:0.4 in
  let matrix =
    Array.init labels (fun j ->
        Array.init labels (fun k ->
            if j = labels - 1 then
              (* The "unsure"-truth row has nowhere to hedge to. *)
              if j = k then diag else (1. -. diag) /. float_of_int (labels - 1)
            else
              let base =
                if j = k then diag
                else (1. -. diag -. hedge) /. float_of_int (labels - 1)
              in
              if k = labels - 1 then base +. hedge else base))
  in
  Workers.Confusion.make ~id ~matrix ~cost ()

let spammer ~labels ~id ~cost = Workers.Confusion.uniform_spammer ~labels ~id ~cost

let draw_workers rng p =
  let n_careful = int_of_float (Float.round (p.careful_share *. float_of_int p.n_workers)) in
  let n_spam = int_of_float (Float.round (p.spammer_share *. float_of_int p.n_workers)) in
  if n_careful + n_spam > p.n_workers then
    invalid_arg "Multi_dataset: archetype shares exceed 1";
  let archetypes =
    Array.init p.n_workers (fun i ->
        if i < n_careful then `Careful else if i < n_careful + n_spam then `Spam
        else `Hedger)
  in
  Prob.Rng.shuffle rng archetypes;
  Array.mapi
    (fun id archetype ->
      let cost = Prob.Distributions.sample_uniform rng ~lo:0.02 ~hi:0.15 in
      match archetype with
      | `Careful -> careful rng ~labels:p.labels ~id ~cost
      | `Hedger -> hedger rng ~labels:p.labels ~id ~cost
      | `Spam -> spammer ~labels:p.labels ~id ~cost)
    archetypes

let mild_prior labels =
  (* Mildly skewed: the last label (e.g. "unsure") is a priori rarer. *)
  let base = Array.make labels (1. /. float_of_int labels) in
  if labels < 2 then base
  else begin
    let shift = 0.5 /. float_of_int labels in
    base.(0) <- base.(0) +. shift;
    base.(labels - 1) <- base.(labels - 1) -. shift;
    base
  end

let generate ?(params = default_params) rng =
  let p = params in
  if p.labels < 2 || p.n_tasks <= 0 then invalid_arg "Multi_dataset: parameters";
  if p.votes_per_task > p.n_workers then
    invalid_arg "Multi_dataset: votes_per_task > n_workers";
  let true_matrices = draw_workers rng p in
  let prior = mild_prior p.labels in
  let truths =
    Array.init p.n_tasks (fun _ -> Prob.Distributions.sample_categorical rng prior)
  in
  let ids = Array.init p.n_workers Fun.id in
  let histories =
    Array.init p.n_workers (fun worker_id -> Workers.History.create ~worker_id ())
  in
  let votes =
    Array.mapi
      (fun task_id truth ->
        let panel = Prob.Rng.sample_without_replacement rng p.votes_per_task ids in
        Array.map
          (fun worker ->
            let label = Simulate.multi_vote rng ~truth true_matrices.(worker) in
            Workers.History.record_gold histories.(worker) ~task_id ~vote:label
              ~truth;
            (worker, label))
          panel)
      truths
  in
  let estimated_matrices =
    Array.mapi
      (fun id h ->
        Workers.Confusion.make ~id
          ~matrix:
            (Workers.Estimator.confusion_empirical ~labels:p.labels
               ~prior_strength:1.0 h)
          ~cost:(Workers.Confusion.cost true_matrices.(id))
          ())
      histories
  in
  { params = p; prior; truths; votes; true_matrices; estimated_matrices }

let candidate_jury t ~task_id =
  if task_id < 0 || task_id >= Array.length t.votes then
    invalid_arg "Multi_dataset.candidate_jury: task id";
  Array.map (fun (w, _) -> t.estimated_matrices.(w)) t.votes.(task_id)

let grade t strategy =
  let rng = Prob.Rng.create 0xACE in
  let correct = ref 0 in
  Array.iteri
    (fun task_id truth ->
      let jury = candidate_jury t ~task_id in
      let voting = Array.map snd t.votes.(task_id) in
      let answer = Voting.Multiclass.run strategy rng ~prior:t.prior ~jury voting in
      if answer = truth then incr correct)
    t.truths;
  float_of_int !correct /. float_of_int (Array.length t.truths)

let spammer_recall ?slack t =
  let spam_ids =
    List.filter
      (fun i -> Workers.Spammer.score t.true_matrices.(i) < 0.01)
      (List.init t.params.n_workers Fun.id)
  in
  match spam_ids with
  | [] -> 1.
  | _ ->
      let n_spam = List.length spam_ids in
      let slack = match slack with Some s -> s | None -> n_spam in
      let by_estimated_score =
        List.sort
          (fun a b ->
            compare
              (Workers.Spammer.score t.estimated_matrices.(a))
              (Workers.Spammer.score t.estimated_matrices.(b)))
          (List.init t.params.n_workers Fun.id)
      in
      let bottom = List.filteri (fun rank _ -> rank < n_spam + slack) by_estimated_score in
      let caught = List.length (List.filter (fun i -> List.mem i bottom) spam_ids) in
      float_of_int caught /. float_of_int n_spam
