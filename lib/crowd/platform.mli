(** A simulated micro-task platform in the AMT mould (§6.2.1): tasks are
    batched into HITs, a HIT is completed by several distinct workers, and
    every completion contributes one vote per task of the HIT, in arrival
    order.  The collected answers feed quality estimation and the
    evaluation drivers. *)

type hit = { hit_id : int; task_ids : int array }

type completion = { hit_id : int; worker_id : int }
(** One worker finishing one HIT (voting on all its tasks). *)

type collected = {
  tasks : Task.t array;
  votes : (int * Voting.Vote.t) array array;
      (** [votes.(task_id)] lists (worker id, vote) in arrival order. *)
  histories : Workers.History.t array;
      (** Per worker, every answer graded against the task's truth. *)
}

val batch : per_hit:int -> Task.t array -> hit array
(** Consecutive tasks grouped [per_hit] at a time (last batch may be
    short).  @raise Invalid_argument for per_hit <= 0. *)

val uniform_completions :
  Prob.Rng.t -> hits:hit array -> n_workers:int -> per_hit:int -> completion list
(** For each HIT draw [per_hit] distinct workers uniformly — the platform's
    default assignment policy.  @raise Invalid_argument when
    [per_hit > n_workers]. *)

val run :
  Prob.Rng.t ->
  tasks:Task.t array ->
  qualities:float array ->
  completions:completion list ->
  hits:hit array ->
  collected
(** Execute completions in list order: each worker votes on every task of
    the HIT with her latent quality (tasks must carry ground truth).
    @raise Invalid_argument on dangling worker/hit ids. *)
