type hit = { hit_id : int; task_ids : int array }
type completion = { hit_id : int; worker_id : int }

type collected = {
  tasks : Task.t array;
  votes : (int * Voting.Vote.t) array array;
  histories : Workers.History.t array;
}

let batch ~per_hit tasks =
  if per_hit <= 0 then invalid_arg "Platform.batch: per_hit <= 0";
  let n = Array.length tasks in
  let n_hits = (n + per_hit - 1) / per_hit in
  Array.init n_hits (fun h ->
      let start = h * per_hit in
      let len = min per_hit (n - start) in
      { hit_id = h; task_ids = Array.init len (fun i -> Task.id tasks.(start + i)) })

let uniform_completions rng ~hits ~n_workers ~per_hit =
  if per_hit > n_workers then
    invalid_arg "Platform.uniform_completions: per_hit > n_workers";
  let ids = Array.init n_workers Fun.id in
  Array.to_list hits
  |> List.concat_map (fun (h : hit) ->
         Array.to_list
           (Array.map
              (fun worker_id -> { hit_id = h.hit_id; worker_id })
              (Prob.Rng.sample_without_replacement rng per_hit ids)))

let run rng ~tasks ~qualities ~completions ~hits =
  let n_tasks = Array.length tasks in
  let n_workers = Array.length qualities in
  let votes_rev = Array.make n_tasks [] in
  let histories = Array.init n_workers (fun worker_id -> Workers.History.create ~worker_id ()) in
  List.iter
    (fun c ->
      if c.worker_id < 0 || c.worker_id >= n_workers then
        invalid_arg "Platform.run: dangling worker id";
      if c.hit_id < 0 || c.hit_id >= Array.length hits then
        invalid_arg "Platform.run: dangling hit id";
      Array.iter
        (fun task_id ->
          let task = tasks.(task_id) in
          let truth = Task.truth_exn task in
          let v = Simulate.vote rng ~truth ~quality:qualities.(c.worker_id) in
          votes_rev.(task_id) <- (c.worker_id, v) :: votes_rev.(task_id);
          Workers.History.record_gold histories.(c.worker_id) ~task_id
            ~vote:(Voting.Vote.to_int v) ~truth:(Voting.Vote.to_int truth))
        hits.(c.hit_id).task_ids)
    completions;
  {
    tasks;
    votes = Array.map (fun l -> Array.of_list (List.rev l)) votes_rev;
    histories;
  }
