type params = {
  n_tasks : int;
  tasks_per_hit : int;
  votes_per_task : int;
  n_workers : int;
  n_power_workers : int;
  n_single_workers : int;
}

let default_params =
  {
    n_tasks = 600;
    tasks_per_hit = 20;
    votes_per_task = 20;
    n_workers = 128;
    n_power_workers = 2;
    n_single_workers = 67;
  }

type t = {
  params : params;
  tasks : Task.t array;
  true_qualities : float array;
  estimated_qualities : float array;
  votes : (int * Voting.Vote.t) array array;
  histories : Workers.History.t array;
}

(* Three-tier *latent* quality profile tuned so that the *estimated*
   qualities (empirical proportions, noisy for one-HIT workers with only 20
   graded answers) match the published histogram: mean ~0.71, ~40 workers
   above 0.8, ~10% below 0.6.  Binomial noise leaks mass into both tails,
   so the latent middle tier sits above 0.6 and the low tier is slightly
   smaller than the target count. *)
let draw_qualities rng n =
  let n_high = int_of_float (Float.round (float_of_int n *. 42. /. 128.)) in
  let n_low = int_of_float (Float.round (float_of_int n *. 10. /. 128.)) in
  let n_mid = n - n_high - n_low in
  if n_mid < 0 then invalid_arg "Amt_dataset: too few workers for the profile";
  let qs =
    Array.concat
      [
        Array.init n_high (fun _ -> Prob.Distributions.sample_uniform rng ~lo:0.81 ~hi:0.95);
        Array.init n_low (fun _ -> Prob.Distributions.sample_uniform rng ~lo:0.50 ~hi:0.60);
        Array.init n_mid (fun _ -> Prob.Distributions.sample_uniform rng ~lo:0.60 ~hi:0.71);
      ]
  in
  Prob.Rng.shuffle rng qs;
  qs

let make_tasks rng n =
  let truths = Array.init n (fun i -> if i < n / 2 then Voting.Vote.No else Voting.Vote.Yes) in
  Prob.Rng.shuffle rng truths;
  Array.init n (fun id ->
      Task.make
        ~description:(Printf.sprintf "sentiment of tweet #%d is positive?" id)
        ~prior:0.5 ~truth:truths.(id) ~id ())

(* Worker roles: [0, n_power) answer every HIT; the next n_single answer one
   HIT each (round-robin); the remaining "mid" workers fill leftover seats
   in rotation.  Worker indices are shuffled afterwards via a permutation so
   role and quality tier stay independent. *)
let completions rng params ~n_hits =
  let p = params in
  let seats = p.votes_per_task in
  if seats > p.n_workers then invalid_arg "Amt_dataset: votes_per_task > n_workers";
  if p.n_power_workers + p.n_single_workers > p.n_workers then
    invalid_arg "Amt_dataset: role counts exceed n_workers";
  let n_mid = p.n_workers - p.n_power_workers - p.n_single_workers in
  let singles_in_hit h =
    (* Singles are dealt round-robin: HIT h hosts singles s with s mod n_hits = h. *)
    (p.n_single_workers / n_hits) + (if h < p.n_single_workers mod n_hits then 1 else 0)
  in
  for h = 0 to n_hits - 1 do
    let need = seats - p.n_power_workers - singles_in_hit h in
    if need < 0 then invalid_arg "Amt_dataset: too many single-HIT workers per HIT";
    if need > n_mid then invalid_arg "Amt_dataset: not enough mid workers to fill a HIT"
  done;
  let permutation = Array.init p.n_workers Fun.id in
  Prob.Rng.shuffle rng permutation;
  let mid_cursor = ref 0 in
  let next_single = ref 0 in
  List.concat
    (List.init n_hits (fun h ->
         let members = ref [] in
         for w = 0 to p.n_power_workers - 1 do
           members := w :: !members
         done;
         for _ = 1 to singles_in_hit h do
           members := (p.n_power_workers + !next_single) :: !members;
           incr next_single
         done;
         let need = seats - List.length !members in
         for _ = 1 to need do
           let mid = p.n_power_workers + p.n_single_workers + (!mid_cursor mod n_mid) in
           members := mid :: !members;
           incr mid_cursor
         done;
         let arr = Array.of_list !members in
         Prob.Rng.shuffle rng arr;
         Array.to_list
           (Array.map
              (fun w -> { Platform.hit_id = h; worker_id = permutation.(w) })
              arr)))

let generate ?(params = default_params) rng =
  if params.n_tasks <= 0 || params.tasks_per_hit <= 0 then
    invalid_arg "Amt_dataset.generate: task counts";
  let tasks = make_tasks rng params.n_tasks in
  let hits = Platform.batch ~per_hit:params.tasks_per_hit tasks in
  let true_qualities = draw_qualities rng params.n_workers in
  let completions = completions rng params ~n_hits:(Array.length hits) in
  let collected =
    Platform.run rng ~tasks ~qualities:true_qualities ~completions ~hits
  in
  let estimated_qualities =
    Array.map
      (fun h ->
        match Workers.History.empirical_quality h with
        | Some q -> q
        | None -> 0.5)
      collected.Platform.histories
  in
  {
    params;
    tasks;
    true_qualities;
    estimated_qualities;
    votes = collected.Platform.votes;
    histories = collected.Platform.histories;
  }

type statistics = {
  n_workers : int;
  mean_estimated_quality : float;
  above_080 : int;
  below_060 : int;
  answered_all : int;
  answered_min : int;
  mean_answers_per_worker : float;
}

let statistics t =
  let counts = Array.map Workers.History.length t.histories in
  let min_count = Array.fold_left min max_int counts in
  {
    n_workers = t.params.n_workers;
    mean_estimated_quality = Prob.Stats.mean t.estimated_qualities;
    above_080 =
      Array.fold_left (fun a q -> if q > 0.8 then a + 1 else a) 0 t.estimated_qualities;
    below_060 =
      Array.fold_left (fun a q -> if q < 0.6 then a + 1 else a) 0 t.estimated_qualities;
    answered_all =
      Array.fold_left (fun a c -> if c = t.params.n_tasks then a + 1 else a) 0 counts;
    answered_min =
      Array.fold_left (fun a c -> if c = min_count then a + 1 else a) 0 counts;
    mean_answers_per_worker =
      Prob.Stats.mean (Array.map float_of_int counts);
  }

(* Exact 0/1 empirical estimates would make logits blow up downstream; the
   paper's qualities never reach the boundary either. *)
let clamp_quality q = Float.min 0.99 (Float.max 0.01 q)

let candidate_pool t ~costs ~task_id =
  if task_id < 0 || task_id >= Array.length t.votes then
    invalid_arg "Amt_dataset.candidate_pool: task id";
  Workers.Pool.of_list
    (List.map
       (fun (worker_id, _) ->
         Workers.Worker.make ~id:worker_id
           ~quality:(clamp_quality t.estimated_qualities.(worker_id))
           ~cost:costs.(worker_id) ())
       (Array.to_list t.votes.(task_id)))

let task_votes t ~task_id ~max_votes =
  if task_id < 0 || task_id >= Array.length t.votes then
    invalid_arg "Amt_dataset.task_votes: task id";
  let all = t.votes.(task_id) in
  Array.sub all 0 (min max_votes (Array.length all))
