open Voting

let vote rng ~truth ~quality =
  if quality < 0. || quality > 1. || Float.is_nan quality then
    invalid_arg "Simulate.vote: quality outside [0, 1]";
  if Prob.Rng.bernoulli rng quality then truth else Vote.flip truth

let voting rng ~truth qualities =
  Array.map (fun q -> vote rng ~truth ~quality:q) qualities

let voting_of_jury rng ~truth jury =
  voting rng ~truth (Workers.Pool.qualities jury)

let sample_truth rng ~alpha =
  if alpha < 0. || alpha > 1. then invalid_arg "Simulate.sample_truth: alpha";
  if Prob.Rng.bernoulli rng alpha then Vote.No else Vote.Yes

let multi_vote rng ~truth confusion =
  Prob.Distributions.sample_categorical rng (Workers.Confusion.row confusion truth)

let multi_voting rng ~truth jury = Array.map (fun c -> multi_vote rng ~truth c) jury

let empirical_jq rng ~trials ~strategy ~alpha ~qualities =
  if trials <= 0 then invalid_arg "Simulate.empirical_jq: trials <= 0";
  let correct = ref 0 in
  for _ = 1 to trials do
    let truth = sample_truth rng ~alpha in
    let v = voting rng ~truth qualities in
    let answer = Strategy.run strategy rng ~alpha ~qualities v in
    if Vote.equal answer truth then incr correct
  done;
  float_of_int !correct /. float_of_int trials
