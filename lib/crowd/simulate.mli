(** Vote simulation: the generative model of §2.1 — worker j_i votes the
    truth with probability q_i, independently of everyone else. *)

val vote : Prob.Rng.t -> truth:Voting.Vote.t -> quality:float -> Voting.Vote.t
(** One vote from a quality-q worker. *)

val voting :
  Prob.Rng.t -> truth:Voting.Vote.t -> float array -> Voting.Vote.voting
(** One vote per quality, jury order. *)

val voting_of_jury :
  Prob.Rng.t -> truth:Voting.Vote.t -> Workers.Pool.t -> Voting.Vote.voting

val sample_truth : Prob.Rng.t -> alpha:float -> Voting.Vote.t
(** Draw the latent truth from the prior: [No] with probability α. *)

val multi_vote :
  Prob.Rng.t -> truth:int -> Workers.Confusion.t -> int
(** One multi-class vote drawn from the worker's confusion row. *)

val multi_voting :
  Prob.Rng.t -> truth:int -> Workers.Confusion.t array -> int array

val empirical_jq :
  Prob.Rng.t ->
  trials:int ->
  strategy:Voting.Strategy.t ->
  alpha:float ->
  qualities:float array ->
  float
(** Monte-Carlo JQ: fraction of [trials] simulated (truth, voting) pairs the
    strategy answers correctly.  Converges to Definition 3's JQ — the
    cross-check used by tests against the analytic computations. *)
