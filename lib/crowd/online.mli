(** Online (adaptive) vote collection.

    JSP commits to a jury *before* seeing any votes.  The online-processing
    systems the paper relates to (CDAS [25], Boim et al. [4], §8) instead
    ask one worker at a time and stop as soon as the answer is confident —
    often cheaper for easy tasks, at the price of latency.  This module
    implements that alternative over the same worker model so the trade-off
    can be measured (the `abl-online` ablation bench):

    - after each vote the Bayesian posterior Pr(t = 0 | votes) is updated;
    - collection stops when the posterior's favourite reaches [confidence],
      the [budget] cannot afford any remaining worker, or everyone voted;
    - the next worker is picked by a {!policy}. *)

type policy =
  | By_quality        (** Highest quality first. *)
  | By_cost           (** Cheapest first. *)
  | Random_order      (** Uniformly random among affordable workers. *)
  | By_information_gain
      (** Greatest expected entropy reduction of the posterior per unit
          cost — the "ask the most informative affordable worker" rule
          (the entropy-driven assignment of Boim et al. [4]). *)

type outcome = {
  answer : Voting.Vote.t;     (** Posterior argmax when collection stopped. *)
  posterior_no : float;       (** Pr(t = 0 | collected votes). *)
  votes_used : int;
  cost : float;               (** Total reward paid. *)
  asked : int list;           (** Worker ids in ask order. *)
  predicted_jq : float;
      (** Anytime JQ of the workers actually asked (incremental Algorithm-1
          estimate) — what a JSP-style prediction would have said about
          this ad-hoc jury. *)
}

val run :
  Prob.Rng.t ->
  ?policy:policy ->
  confidence:float ->
  budget:float ->
  alpha:float ->
  truth:Voting.Vote.t ->
  Workers.Pool.t ->
  outcome
(** Simulate one task.  Votes are sampled from each worker's latent quality
    against [truth]; the decision logic never sees [truth].
    @raise Invalid_argument for confidence outside (0.5, 1], a negative
    budget, or alpha outside [0, 1]. *)

type summary = {
  tasks : int;
  accuracy : float;
  mean_cost : float;
  mean_votes : float;
}

type calibrated_summary = {
  tasks : int;
  votes : int;            (** Total votes streamed into the calibrator. *)
  steps : int;            (** Mini-batch calibration steps that ran. *)
  drift_flags : int;      (** Drift events the calibrator raised. *)
  estimates : float array;  (** Final per-worker quality estimates. *)
  mean_abs_error : float;
      (** Mean |estimate − latent quality| after the stream. *)
  base_abs_error : float;
      (** Same error for the registered [base] — what serving the static
          registration would keep using. *)
}

val simulate_calibrated :
  Prob.Rng.t ->
  ?config:Workers.Calib.config ->
  ?votes_per_task:int ->
  ?gold_rate:float ->
  alpha:float ->
  tasks:int ->
  base:float array ->
  Workers.Pool.t ->
  calibrated_summary
(** Stream simulated crowdsourcing traffic through a {!Workers.Calib}
    exactly the way the serve plane's [report] verb does: each task draws
    its truth from the [alpha] prior, [votes_per_task] (default 5) random
    distinct workers answer it from their latent qualities, whole tasks
    are gold with probability [gold_rate] (default 0.2), and a mini-batch
    step runs whenever the calibrator reports one {!Workers.Calib.due}.
    [base] is what the pool was registered with — possibly wrong, which is
    the point: the summary compares the calibrated estimates' error
    against the registration's.
    @raise Invalid_argument on a size mismatch or out-of-range knobs. *)

val simulate_many :
  Prob.Rng.t ->
  ?policy:policy ->
  confidence:float ->
  budget:float ->
  alpha:float ->
  tasks:int ->
  Workers.Pool.t ->
  summary
(** Run many tasks with truths drawn from the prior and aggregate. *)

val expected_entropy_gain : posterior_no:float -> quality:float -> float
(** The information-gain score: H(p) − E[H(p | one vote from a quality-q
    worker)], in nats; nonnegative.  Exposed for tests. *)

val posterior_entropy : float array -> float
(** Shannon entropy (nats) of an ℓ-label posterior vector. *)

val expected_entropy_gain_vector :
  posterior:float array -> confusion:Workers.Confusion.t -> float
(** ℓ-label generalization of {!expected_entropy_gain}: the expected
    reduction in posterior entropy from one vote by a confusion-matrix
    worker, marginalizing the vote over the current posterior.  Routes ℓ=2
    symmetric matrices onto the scalar fast path bit-for-bit, so sequential
    sessions over binary pools score candidates exactly as {!run} does.
    @raise Invalid_argument when the posterior length and matrix dimension
    disagree or fewer than two labels are given. *)
