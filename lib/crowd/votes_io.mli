(** Loading and saving vote matrices as CSV.

    Format: a header line [task,worker,vote] or [task,worker,vote,truth]
    (optional), then one vote per line:

    {v
    task,worker,vote,truth
    0,3,1,1
    0,7,0,1
    v}

    Ids must be nonnegative; [truth] is optional per line (leave the column
    out or empty when unknown).  Lines that are empty or start with [#] are
    skipped.  This is the interchange point between a real crowdsourcing
    export and the estimation stack ({!Workers.Dawid_skene},
    {!Workers.Estimator}): `optjs_cli estimate` reads this format. *)

type record = { task : int; worker : int; vote : int; truth : int option }

val of_csv_string : string -> record list
(** @raise Failure with a line-numbered message on malformed rows. *)

val to_csv_string : record list -> string

val load : string -> record list
val save : string -> record list -> unit

val dimensions : record list -> int * int * int
(** [(n_tasks, n_workers, n_labels)] inferred as 1 + the maxima (labels
    also count truths).  (0, 0, 0) on the empty list. *)

val to_dawid_skene : record list -> Workers.Dawid_skene.vote list
(** Forget the truth column. *)

val histories : record list -> Workers.History.t array
(** One history per worker id (dense up to the max id); graded entries for
    records carrying a truth. *)

val of_amt_dataset : Amt_dataset.t -> record list
(** Export the synthetic AMT dataset (with truths) — so the full estimation
    loop can be exercised on files. *)
