open Voting

let effective_quality ~quality ~difficulty =
  if quality < 0. || quality > 1. then invalid_arg "Difficulty: quality";
  if difficulty < 0. || difficulty > 1. then invalid_arg "Difficulty: difficulty";
  0.5 +. ((quality -. 0.5) *. (1. -. difficulty))

let sample_difficulties rng ~spread ~n =
  if spread < 0. || spread > 1. then invalid_arg "Difficulty: spread outside [0, 1]";
  Array.init n (fun _ ->
      if spread = 0. then 0.
      else spread *. Prob.Distributions.sample_beta rng ~a:1. ~b:3.)

type outcome = { predicted_jq : float; realized_accuracy : float; tasks : int }

let campaign rng ~jury ~alpha ~spread ~tasks =
  if tasks <= 0 then invalid_arg "Difficulty.campaign: tasks <= 0";
  let qualities = Workers.Pool.qualities jury in
  let predicted_jq =
    if Workers.Pool.is_empty jury then Float.max alpha (1. -. alpha)
    else Jq.Bucket.estimate ~alpha qualities
  in
  let difficulties = sample_difficulties rng ~spread ~n:tasks in
  let correct = ref 0 in
  Array.iter
    (fun difficulty ->
      let truth = Simulate.sample_truth rng ~alpha in
      let votes =
        Array.map
          (fun q ->
            Simulate.vote rng ~truth
              ~quality:(effective_quality ~quality:q ~difficulty))
          qualities
      in
      (* Aggregation still believes the latent qualities — exactly the
         information OPTJS would have. *)
      let answer = Bayesian.decide_exact ~alpha ~qualities votes in
      if Vote.equal answer truth then incr correct)
    difficulties;
  {
    predicted_jq;
    realized_accuracy = float_of_int !correct /. float_of_int tasks;
    tasks;
  }
