open Voting

type t = {
  n_bins : int;
  counts : int array;
  hits : int array;
  confidence_sums : float array;
  mutable brier_acc : float;
  mutable samples : int;
}

type bin = {
  lo : float;
  hi : float;
  count : int;
  mean_confidence : float;
  empirical_accuracy : float;
}

type report = {
  bins : bin list;
  brier : float;
  expected_calibration_error : float;
  samples : int;
}

let create ?(bins = 10) () =
  if bins <= 0 then invalid_arg "Calibration.create: bins <= 0";
  {
    n_bins = bins;
    counts = Array.make bins 0;
    hits = Array.make bins 0;
    confidence_sums = Array.make bins 0.;
    brier_acc = 0.;
    samples = 0;
  }

let bin_index t confidence =
  let width = 0.5 /. float_of_int t.n_bins in
  let i = int_of_float ((confidence -. 0.5) /. width) in
  max 0 (min (t.n_bins - 1) i)

let observe t ~confidence ~correct =
  if confidence < 0.5 -. 1e-9 || confidence > 1. +. 1e-9 then
    invalid_arg "Calibration.observe: confidence outside [0.5, 1]";
  let confidence = Float.min 1. (Float.max 0.5 confidence) in
  let i = bin_index t confidence in
  t.counts.(i) <- t.counts.(i) + 1;
  if correct then t.hits.(i) <- t.hits.(i) + 1;
  t.confidence_sums.(i) <- t.confidence_sums.(i) +. confidence;
  let outcome = if correct then 1. else 0. in
  t.brier_acc <- t.brier_acc +. ((confidence -. outcome) ** 2.);
  t.samples <- t.samples + 1

let report t =
  let width = 0.5 /. float_of_int t.n_bins in
  let bins =
    List.filter_map
      (fun i ->
        if t.counts.(i) = 0 then None
        else
          let count = float_of_int t.counts.(i) in
          Some
            {
              lo = 0.5 +. (float_of_int i *. width);
              hi = 0.5 +. (float_of_int (i + 1) *. width);
              count = t.counts.(i);
              mean_confidence = t.confidence_sums.(i) /. count;
              empirical_accuracy = float_of_int t.hits.(i) /. count;
            })
      (List.init t.n_bins Fun.id)
  in
  let samples = float_of_int t.samples in
  let ece =
    List.fold_left
      (fun acc b ->
        acc
        +. (float_of_int b.count /. samples)
           *. Float.abs (b.mean_confidence -. b.empirical_accuracy))
      0. bins
  in
  {
    bins;
    brier = (if t.samples = 0 then nan else t.brier_acc /. samples);
    expected_calibration_error = (if t.samples = 0 then nan else ece);
    samples = t.samples;
  }

let pp ppf r =
  Format.fprintf ppf "samples=%d brier=%.4f ece=%.4f@." r.samples r.brier
    r.expected_calibration_error;
  List.iter
    (fun b ->
      Format.fprintf ppf "  [%.2f, %.2f): n=%d conf=%.3f acc=%.3f@." b.lo b.hi
        b.count b.mean_confidence b.empirical_accuracy)
    r.bins

let of_simulation rng ~qualities ~alpha ~tasks =
  if tasks <= 0 then invalid_arg "Calibration.of_simulation: tasks <= 0";
  let acc = create () in
  for _ = 1 to tasks do
    let truth = Simulate.sample_truth rng ~alpha in
    let votes = Simulate.voting rng ~truth qualities in
    let posterior_no = Bayesian.posterior_no ~alpha ~qualities votes in
    let answer = if posterior_no >= 0.5 then Vote.No else Vote.Yes in
    observe acc
      ~confidence:(Float.max posterior_no (1. -. posterior_no))
      ~correct:(Vote.equal answer truth)
  done;
  report acc
