(** Synthetic stand-in for the paper's real AMT sentiment dataset (§6.2.1).

    The original experiment crowdsourced 600 tweets (Sanders sentiment
    corpus) on Amazon Mechanical Turk: 30 HITs of 20 questions, 20
    assignments per HIT, 128 distinct workers, average worker quality 0.71,
    40 workers above 0.8 and about 10% below 0.6, two workers answering
    everything and 67 answering exactly one HIT, balanced ground truth,
    prior α = 0.5.

    Neither AMT nor the corpus is reachable offline, so — per the
    substitution rule recorded in DESIGN.md — this module generates a
    dataset with those *published statistics*: latent worker qualities are
    drawn from a three-tier profile matching the quality histogram, HIT
    participation follows the published skew (power / mid / one-HIT
    workers), votes are sampled from the latent qualities, and the
    *estimated* qualities handed to JSP are recomputed from the realized
    answers exactly as the paper does ("proportion of correctly answered
    questions"), preserving estimation noise. *)

type params = {
  n_tasks : int;          (** default 600 *)
  tasks_per_hit : int;    (** default 20 *)
  votes_per_task : int;   (** default 20 (the HIT's assignment count m) *)
  n_workers : int;        (** default 128 *)
  n_power_workers : int;  (** workers answering every HIT (default 2) *)
  n_single_workers : int; (** workers answering exactly one HIT (default 67) *)
}

val default_params : params

type t = {
  params : params;
  tasks : Task.t array;
  true_qualities : float array;       (** Latent, per worker. *)
  estimated_qualities : float array;  (** Empirical, per worker (§6.2.1). *)
  votes : (int * Voting.Vote.t) array array;
      (** Per task, (worker id, vote) in answering-sequence order. *)
  histories : Workers.History.t array;
}

val generate : ?params:params -> Prob.Rng.t -> t
(** Build one dataset.  Deterministic given the generator state.
    @raise Invalid_argument when the parameters are inconsistent (e.g. a
    HIT cannot seat [votes_per_task] distinct workers). *)

type statistics = {
  n_workers : int;
  mean_estimated_quality : float;
  above_080 : int;        (** Workers with estimated quality > 0.8. *)
  below_060 : int;        (** Workers with estimated quality < 0.6. *)
  answered_all : int;     (** Workers who answered every task. *)
  answered_min : int;     (** Workers who answered the minimum (one HIT). *)
  mean_answers_per_worker : float;
}

val statistics : t -> statistics
(** The §6.2.1 summary numbers, for validation against the paper. *)

val candidate_pool : t -> costs:float array -> task_id:int -> Workers.Pool.t
(** The JSP candidate set for one question: the workers who answered it,
    with their *estimated* qualities and caller-supplied per-worker costs.
    Worker ids refer to the dataset's worker indexing. *)

val clamp_quality : float -> float
(** Estimated qualities clamped into [0.01, 0.99]: exact-0/1 empirical
    estimates would blow up downstream logits, and the paper's measured
    qualities never reach the boundary either. *)

val task_votes :
  t -> task_id:int -> max_votes:int -> (int * Voting.Vote.t) array
(** The first [max_votes] answers of the question's answering sequence
    (Figure 10(d)'s "first z votes"). *)
