(** Grading aggregation strategies against ground truth, and checking that
    the analytic JQ predicts realized accuracy (§6.2.3 / Figure 10(d)). *)

type grade = {
  accuracy : float;     (** Fraction of tasks the strategy answered correctly. *)
  average_jq : float;   (** Mean predicted JQ over the same tasks. *)
  tasks : int;
}

val strategy_on_dataset :
  ?num_buckets:int ->
  ?rng:Prob.Rng.t ->
  strategy:Voting.Strategy.t ->
  z:int ->
  Amt_dataset.t ->
  grade
(** For every task: take the first [z] votes of its answering sequence,
    aggregate them with [strategy] using the dataset's estimated worker
    qualities and prior 0.5, grade against the truth; predict JQ for the
    same first-z jury with the bucket algorithm.  [rng] is only consulted
    for randomized strategies (defaults to a fixed seed). *)

val accuracy_of_juries :
  ?rng:Prob.Rng.t ->
  strategy:Voting.Strategy.t ->
  juries:Workers.Pool.t array ->
  Amt_dataset.t ->
  float
(** Grade per-task *selected* juries (e.g. the output of JSP): for each
    task, aggregate only the votes of that task's jury members.  Jury
    members must have answered the task. *)
