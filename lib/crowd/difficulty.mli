(** Task difficulty — a deliberate violation of the paper's worker model.

    The paper (like [7, 25]) models a worker's quality as a constant
    `q = Pr(v = t)` across tasks.  In reality some tasks are harder: in the
    GLAD-style model (Whitehill et al. [42], cited in §8) a worker of skill
    q facing a task of difficulty d ∈ [0, 1] answers correctly with
    probability

      effective_quality q d = 0.5 + (q − 0.5)·(1 − d)

    (d = 0: the model's assumption holds; d = 1: every worker is a coin).
    This module generates difficulty-aware campaigns so the robustness of
    JQ-based selection can be measured when the constant-quality assumption
    breaks — the `abl-difficulty` ablation reports how far realized
    accuracy falls below the (difficulty-blind) predicted JQ as the
    difficulty spread grows. *)

val effective_quality : quality:float -> difficulty:float -> float
(** The formula above.  @raise Invalid_argument for arguments outside
    [0, 1]. *)

val sample_difficulties :
  Prob.Rng.t -> spread:float -> n:int -> float array
(** [n] task difficulties drawn from Beta(1, b) scaled to [0, spread]
    (most tasks easy, a tail of hard ones); [spread = 0] reproduces the
    paper's model exactly.  @raise Invalid_argument for spread outside
    [0, 1]. *)

type outcome = {
  predicted_jq : float;    (** Difficulty-blind JQ of the fixed jury. *)
  realized_accuracy : float;
  tasks : int;
}

val campaign :
  Prob.Rng.t ->
  jury:Workers.Pool.t ->
  alpha:float ->
  spread:float ->
  tasks:int ->
  outcome
(** Fix a jury, predict its JQ from the latent qualities (as OPTJS would),
    then run [tasks] simulated tasks whose difficulties follow
    [sample_difficulties] and grade Bayesian Voting's answers.  The gap
    between the two numbers is the model-violation penalty. *)
