(** Decision-making and multi-choice tasks (§2.1, §7).

    A decision-making task carries a prior α = Pr(t = 0) and — in
    simulation — a latent ground truth, hidden from every selection or
    aggregation step and consulted only when grading answers. *)

type t = private {
  id : int;
  description : string;
  prior : float;                 (** α = Pr(t = 0). *)
  truth : Voting.Vote.t option;  (** Latent ground truth, if modelled. *)
}

val make :
  ?description:string ->
  ?prior:float ->
  ?truth:Voting.Vote.t ->
  id:int ->
  unit ->
  t
(** Defaults: empty description, prior 0.5, no ground truth.
    @raise Invalid_argument when the prior lies outside [0, 1]. *)

val id : t -> int
val prior : t -> float
val truth_exn : t -> Voting.Vote.t
(** @raise Invalid_argument when the task has no modelled truth. *)

val pp : Format.formatter -> t -> unit

(** Multi-choice tasks over ℓ labels with a prior vector. *)
module Multi : sig
  type t = private {
    id : int;
    description : string;
    prior : float array;      (** Distribution over labels (sums to 1). *)
    truth : int option;
  }

  val make :
    ?description:string ->
    ?truth:int ->
    id:int ->
    prior:float array ->
    unit ->
    t
  (** @raise Invalid_argument when the prior is not a distribution or the
      truth is out of range. *)

  val labels : t -> int
  val truth_exn : t -> int
end
