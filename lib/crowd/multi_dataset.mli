(** Synthetic multi-choice campaign (§7's setting, end to end).

    The binary {!Amt_dataset} has a multi-class sibling: ℓ-label tasks
    (e.g. entity resolution: same / different / unsure) answered by
    confusion-matrix workers drawn from three archetypes —

    - *careful*: strongly diagonal matrices,
    - *hedger*: decent accuracy but biased toward the last label,
    - *spammer*: votes uniformly at random —

    with votes sampled from each worker's true matrix.  Workers' matrices
    are then *re-estimated* from their graded answers (additive smoothing),
    so downstream selection sees realistic estimation noise, exactly as the
    binary pipeline does. *)

type params = {
  n_tasks : int;            (** default 200 *)
  labels : int;             (** default 3 *)
  n_workers : int;          (** default 40 *)
  votes_per_task : int;     (** default 7 *)
  careful_share : float;    (** default 0.4 *)
  spammer_share : float;    (** default 0.15 (rest are hedgers) *)
}

val default_params : params

type t = {
  params : params;
  prior : float array;
  truths : int array;                        (** Per task. *)
  votes : (int * int) array array;           (** Per task: (worker, label). *)
  true_matrices : Workers.Confusion.t array; (** Latent, per worker. *)
  estimated_matrices : Workers.Confusion.t array;
      (** Re-estimated from graded answers (smoothing 1.0). *)
}

val generate : ?params:params -> Prob.Rng.t -> t
(** Build one campaign.  Truths follow a mildly skewed prior.
    @raise Invalid_argument on inconsistent parameters. *)

val candidate_jury : t -> task_id:int -> Workers.Confusion.t array
(** The estimated matrices of the workers who answered the task, in
    answering order. *)

val grade : t -> Voting.Multiclass.t -> float
(** Accuracy of a multi-class strategy over all tasks, aggregating each
    task's realized votes with the *estimated* matrices (deterministic
    strategies only get exercised deterministically; randomized ones use a
    fixed seed). *)

val spammer_recall : ?slack:int -> t -> float
(** Rank-based spammer detection under estimation noise: the fraction of
    true spammers found among the [n_spammers + slack] lowest *estimated*
    spammer scores (slack defaults to [n_spammers]).  Rank-based because
    empirical total-variation scores carry a positive finite-sample bias
    that makes absolute thresholds meaningless at realistic answer
    counts. *)
