open Voting

type system = {
  name : string;
  select :
    Prob.Rng.t -> alpha:float -> budget:float -> Workers.Pool.t -> Workers.Pool.t;
  aggregate :
    Prob.Rng.t -> alpha:float -> qualities:float array -> Vote.voting -> Vote.t;
}

type result = {
  tasks : int;
  accuracy : float;
  mean_jury_size : float;
  mean_jury_cost : float;
}

let run rng system ~alpha ~budget ~candidates ~tasks =
  let n = Array.length tasks in
  if n = 0 then invalid_arg "Campaign.run: no tasks";
  let correct = ref 0 in
  let sizes = ref 0 in
  let costs = Prob.Kahan.create () in
  Array.iter
    (fun task ->
      let truth = Task.truth_exn task in
      let pool = candidates (Task.id task) in
      let jury = system.select rng ~alpha ~budget pool in
      let qualities = Workers.Pool.qualities jury in
      let votes = Simulate.voting rng ~truth qualities in
      let answer = system.aggregate rng ~alpha ~qualities votes in
      if Vote.equal answer truth then incr correct;
      sizes := !sizes + Workers.Pool.size jury;
      Prob.Kahan.add costs (Workers.Pool.total_cost jury))
    tasks;
  let t = float_of_int n in
  {
    tasks = n;
    accuracy = float_of_int !correct /. t;
    mean_jury_size = float_of_int !sizes /. t;
    mean_jury_cost = Prob.Kahan.total costs /. t;
  }

let run_uniform rng system ~alpha ~budget ~pool ~n_tasks =
  let tasks =
    Array.init n_tasks (fun id ->
        Task.make ~id ~prior:alpha ~truth:(Simulate.sample_truth rng ~alpha) ())
  in
  run rng system ~alpha ~budget ~candidates:(fun _ -> pool) ~tasks
