type t = {
  id : int;
  description : string;
  prior : float;
  truth : Voting.Vote.t option;
}

let make ?(description = "") ?(prior = 0.5) ?truth ~id () =
  if prior < 0. || prior > 1. || Float.is_nan prior then
    invalid_arg "Task.make: prior outside [0, 1]";
  { id; description; prior; truth }

let id t = t.id
let prior t = t.prior

let truth_exn t =
  match t.truth with
  | Some v -> v
  | None -> invalid_arg "Task.truth_exn: task has no modelled ground truth"

let pp ppf t =
  Format.fprintf ppf "task#%d(prior=%g%s)" t.id t.prior
    (match t.truth with
    | Some v -> Printf.sprintf ", truth=%d" (Voting.Vote.to_int v)
    | None -> "")

module Multi = struct
  type t = {
    id : int;
    description : string;
    prior : float array;
    truth : int option;
  }

  let make ?(description = "") ?truth ~id ~prior () =
    let l = Array.length prior in
    if l < 2 then invalid_arg "Task.Multi.make: need at least 2 labels";
    Array.iter
      (fun p -> if p < 0. || Float.is_nan p then invalid_arg "Task.Multi.make: prior")
      prior;
    if Float.abs (Prob.Kahan.sum_array prior -. 1.) > 1e-9 then
      invalid_arg "Task.Multi.make: prior does not sum to 1";
    (match truth with
    | Some v when v < 0 || v >= l -> invalid_arg "Task.Multi.make: truth out of range"
    | Some _ | None -> ());
    { id; description; prior = Array.copy prior; truth }

  let labels t = Array.length t.prior

  let truth_exn t =
    match t.truth with
    | Some v -> v
    | None -> invalid_arg "Task.Multi.truth_exn: no modelled ground truth"
end
