let max_tasks = 4
let max_workers = 8

let allocate ~ctx ~dev_weight specs =
  let n = ctx.Inner.n in
  let k = List.length specs in
  if k > max_tasks || n > max_workers then
    invalid_arg "Fleet.Exhaustive.allocate: instance too large";
  let specs_a = Array.of_list specs in
  let tasks = Array.map Spec.task specs_a in
  let budgets = Array.map Spec.budget specs_a in
  if k = 0 then []
  else begin
    (* owner.(pos) ∈ {-1 = unassigned, 0 .. k-1}; mixed-radix counter
       enumerated lexicographically so the first optimum wins ties. *)
    let owner = Array.make n (-1) in
    let best_util = ref Float.neg_infinity in
    let best = ref [||] in
    let continue_ = ref true in
    while !continue_ do
      let spent = Array.make k 0. in
      let feasible = ref true in
      Array.iteri
        (fun pos o ->
          if o >= 0 then begin
            spent.(o) <- spent.(o) +. ctx.Inner.costs.(pos);
            if spent.(o) > budgets.(o) +. 1e-9 then feasible := false
          end)
        owner;
      if !feasible then begin
        let util = ref 0. in
        for t = 0 to k - 1 do
          let jury = ref [] in
          for pos = n - 1 downto 0 do
            if owner.(pos) = t then jury := pos :: !jury
          done;
          let score = Inner.score_jury ctx ~task:tasks.(t) !jury in
          util := !util +. Inner.utility ~dev_weight specs_a.(t) ~score
        done;
        if !util > !best_util then begin
          best_util := !util;
          best := Array.copy owner
        end
      end;
      (* increment the mixed-radix counter *)
      let pos = ref 0 in
      let carrying = ref true in
      while !carrying && !pos < n do
        if owner.(!pos) < k - 1 then begin
          owner.(!pos) <- owner.(!pos) + 1;
          carrying := false
        end
        else begin
          owner.(!pos) <- -1;
          incr pos
        end
      done;
      if !carrying then continue_ := false
    done;
    let owner = !best in
    List.mapi
      (fun t spec ->
        let jury = ref [] in
        for pos = n - 1 downto 0 do
          if owner.(pos) = t then jury := pos :: !jury
        done;
        let score = Inner.score_jury ctx ~task:tasks.(t) !jury in
        { Inner.spec; jury = !jury; score })
      specs
  end
