(** One task's slot in the fleet: what it asks of the shared pool.

    A spec is the fleet-level view of a task — an ℓ-label prior (the
    {!Engine.Task.t} the inner JSP solvers score against), a per-task
    budget over true worker costs, a priority [tier] and an optional
    soft quality [target].  Tiers weight the allocator's aggregate
    objective geometrically (tier 0 outweighs tier 1 ten to one, as in
    the tiered MIP formulations this mirrors), and the commit pass
    breaks worker contention in {!compare_priority} order, so a tier-0
    task never loses a contested worker to a tier-2 one.  [target] is
    deviation-soft: falling short of it costs extra aggregate utility
    but never makes an instance infeasible. *)

type t

val make :
  ?tier:int ->
  ?target:float ->
  id:string ->
  prior:float array ->
  budget:float ->
  unit ->
  t
(** Validates: [id] non-empty and wire-safe (no spaces, ['='] or
    newlines), prior as in {!Engine.Task.make}, [budget >= 0] and finite,
    [tier >= 0], [target] in [0, 1] (default 0 = no target; tier
    defaults to 0 = highest priority).
    @raise Invalid_argument on violations. *)

val id : t -> string
val task : t -> Engine.Task.t
val prior : t -> float array
val labels : t -> int
val budget : t -> float
val tier : t -> int
val target : t -> float

val weight : t -> float
(** Aggregate-objective weight: [10^-tier]. *)

val signature : t -> string
(** Bit-exact digest of (prior, budget, tier, target) — everything the
    inner solver's answer depends on, and nothing else.  Two specs with
    equal signatures are interchangeable to the solver, so one priced
    proposal serves all of them; the id is deliberately excluded. *)

val compare_priority : t -> t -> int
(** Commit order: increasing tier, ties by id (total order). *)

val pp : Format.formatter -> t -> unit
