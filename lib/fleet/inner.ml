type ctx = {
  pool : Engine.Pool.t;
  n : int;
  costs : float array;
  rank : float array;
  mean_cost : float;
  num_buckets : int;
  obj : Engine.Objective.t;
}

let make_ctx ?(num_buckets = Jq.Bucket.default_num_buckets) pool =
  let n = Engine.Pool.size pool in
  let costs = Engine.Pool.costs pool in
  let rank =
    match Engine.Pool.repr pool with
    | Engine.Pool.Binary p ->
        Array.map
          (fun w -> Float.abs ((2. *. Workers.Worker.quality w) -. 1.))
          (Workers.Pool.to_array p)
    | Engine.Pool.Matrix a -> Array.map Workers.Spammer.score a
  in
  let mean_cost =
    if n = 0 then 1.
    else
      let m = Engine.Pool.total_cost pool /. float_of_int n in
      if m > 0. then m else 1.
  in
  let obj = Engine.Objective.bv_bucket ~num_buckets () in
  { pool; n; costs; rank; mean_cost; num_buckets; obj }

(* Positional subset in O(jury), not O(pool) — the commit pass scores
   every resident jury, so this must not scan the whole pool. *)
let subset ctx positions =
  List.iter
    (fun i ->
      if i < 0 || i >= ctx.n then
        invalid_arg "Fleet.Inner: position out of range")
    positions;
  match Engine.Pool.repr ctx.pool with
  | Engine.Pool.Binary p ->
      Engine.Pool.of_workers (Workers.Pool.sub p positions)
  | Engine.Pool.Matrix a ->
      Engine.Pool.of_confusions
        (Array.of_list (List.map (Array.get a) positions))

let score_jury ctx ~task positions =
  Engine.Objective.score ctx.obj ~task (subset ctx positions)

let jury_cost ctx positions =
  List.fold_left (fun acc i -> acc +. ctx.costs.(i)) 0. positions

let utility ~dev_weight spec ~score =
  let shortfall = Float.max 0. (Spec.target spec -. score) in
  Spec.weight spec *. (score -. (dev_weight *. shortfall))

type assignment = { spec : Spec.t; jury : int list; score : float }

let aggregate ~dev_weight assignments =
  List.fold_left
    (fun acc a -> acc +. utility ~dev_weight a.spec ~score:a.score)
    0. assignments

let sorted_positions ctx ~key =
  let idx = Array.init ctx.n Fun.id in
  (* Stable on the key so ties keep position order: deterministic scans. *)
  let cmp a b =
    match compare (key b) (key a) with 0 -> compare a b | c -> c
  in
  Array.sort cmp idx;
  idx

let density ctx ~eff i = ctx.rank.(i) /. Float.max 1e-9 eff.(i)
let density_order ctx ~eff = sorted_positions ctx ~key:(density ctx ~eff)

(* Greedy scan in the given position order: add every available worker
   whose true cost still fits the budget (Lemma 1 — more workers never
   hurt BV, so there is no reason to skip an affordable one). *)
let scan ctx ~budget ~avail order =
  let jury = ref [] and spent = ref 0. in
  Array.iter
    (fun i ->
      if avail.(i) && !spent +. ctx.costs.(i) <= budget +. 1e-9 then begin
        jury := i :: !jury;
        spent := !spent +. ctx.costs.(i)
      end)
    order;
  List.sort compare !jury

let greedy_orders ctx ~eff =
  [
    density_order ctx ~eff;
    sorted_positions ctx ~key:(fun i -> ctx.rank.(i));
    sorted_positions ctx ~key:(fun i -> Float.neg eff.(i));
  ]

let greedy_jury ?orders ctx ~spec ~avail ~eff =
  let budget = Spec.budget spec in
  let task = Spec.task spec in
  let orders =
    match orders with Some o -> o | None -> greedy_orders ctx ~eff
  in
  (* Distinct orders often produce the same jury (small budgets exhaust
     the affordable set); score each candidate jury once. *)
  let juries =
    List.fold_left
      (fun acc order ->
        let jury = scan ctx ~budget ~avail order in
        if List.mem jury acc then acc else jury :: acc)
      [] orders
  in
  List.fold_left
    (fun (best_jury, best_score) jury ->
      let score = score_jury ctx ~task jury in
      if score > best_score then (jury, score) else (best_jury, best_score))
    ([], Float.neg_infinity) (List.rev juries)
