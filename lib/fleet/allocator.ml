type config = {
  anneal : Jsp.Annealing.params;
  num_buckets : int;
  restarts : int;
  price_step : float;
  price_decay : float;
  max_rounds : int;
  delta_rounds : int;
  dev_weight : float;
  exact_tasks : int;
  exact_workers : int;
  delta_cap : int;
  domains : int;
  seed : int;
}

let default_config =
  {
    anneal =
      {
        Jsp.Annealing.default_params with
        epsilon = 1e-4;
        moves_per_temp = Some 128;
      };
    num_buckets = 64;
    restarts = 1;
    price_step = 0.25;
    price_decay = 0.5;
    max_rounds = 6;
    delta_rounds = 2;
    dev_weight = 0.5;
    exact_tasks = 3;
    exact_workers = 6;
    delta_cap = 32;
    domains = 1;
    seed = 0x5EED;
  }

type assignment = {
  id : string;
  jury : int list;
  score : float;
  cost : float;
  tier : int;
}

type stats = {
  submits : int;
  releases : int;
  decides : int;
  full_solves : int;
  delta_solves : int;
  price_rounds : int;
  inner_solves : int;
  proposal_hits : int;
  conflicts : int;
  resyncs : int;
}

type task = {
  spec : Spec.t;
  seq : int;
  mutable jury : int list;
  mutable score : float;
  mutable proposal : int list;
}

type t = {
  config : config;
  mutable ctx : Inner.ctx;
  mutable version : int;
  mutable prices : float array;
  mutable epoch : int;
  tasks : (string, task) Hashtbl.t;
  mutable owner : string option array;
  mutable arrivals : int;
  proposals : (string, int list) Hashtbl.t;
  memos : (string, Jsp.Objective_cache.t) Hashtbl.t;
  mutable submits : int;
  mutable releases : int;
  mutable decides : int;
  mutable full_solves : int;
  mutable delta_solves : int;
  mutable price_rounds : int;
  mutable inner_solves : int;
  mutable proposal_hits : int;
  mutable conflicts : int;
  mutable resyncs : int;
}

let proposal_cap = 8192
let memo_cap = 64

let validate_config c =
  if c.restarts < 1 then invalid_arg "Fleet.Allocator: restarts < 1";
  if c.price_step <= 0. then invalid_arg "Fleet.Allocator: price_step <= 0";
  if c.price_decay < 0. || c.price_decay >= 1. then
    invalid_arg "Fleet.Allocator: price_decay outside [0, 1)";
  if c.max_rounds < 1 then invalid_arg "Fleet.Allocator: max_rounds < 1";
  if c.delta_rounds < 1 then invalid_arg "Fleet.Allocator: delta_rounds < 1";
  if c.dev_weight < 0. then invalid_arg "Fleet.Allocator: dev_weight < 0";
  if c.exact_tasks < 0 || c.exact_workers < 0 then
    invalid_arg "Fleet.Allocator: negative exact caps";
  if c.exact_tasks > Exhaustive.max_tasks then
    invalid_arg "Fleet.Allocator: exact_tasks above Exhaustive.max_tasks";
  if c.exact_workers > Exhaustive.max_workers then
    invalid_arg "Fleet.Allocator: exact_workers above Exhaustive.max_workers";
  if c.delta_cap < 1 then invalid_arg "Fleet.Allocator: delta_cap < 1";
  if c.domains < 1 then invalid_arg "Fleet.Allocator: domains < 1"

let create ?(config = default_config) ~pool ~version () =
  validate_config config;
  let ctx = Inner.make_ctx ~num_buckets:config.num_buckets pool in
  {
    config;
    ctx;
    version;
    prices = Array.make ctx.Inner.n 0.;
    epoch = 0;
    tasks = Hashtbl.create 64;
    owner = Array.make ctx.Inner.n None;
    arrivals = 0;
    proposals = Hashtbl.create 64;
    memos = Hashtbl.create 8;
    submits = 0;
    releases = 0;
    decides = 0;
    full_solves = 0;
    delta_solves = 0;
    price_rounds = 0;
    inner_solves = 0;
    proposal_hits = 0;
    conflicts = 0;
    resyncs = 0;
  }

let config t = t.config
let pool t = t.ctx.Inner.pool
let pool_version t = t.version
let epoch t = t.epoch
let task_count t = Hashtbl.length t.tasks

let claimed t =
  Array.fold_left (fun acc o -> if o = None then acc else acc + 1) 0 t.owner

let priced t =
  Array.fold_left (fun acc p -> if p > 0. then acc + 1 else acc) 0 t.prices

let contention t =
  let n = t.ctx.Inner.n in
  if n = 0 then 0. else float_of_int (priced t) /. float_of_int n

let stats t =
  {
    submits = t.submits;
    releases = t.releases;
    decides = t.decides;
    full_solves = t.full_solves;
    delta_solves = t.delta_solves;
    price_rounds = t.price_rounds;
    inner_solves = t.inner_solves;
    proposal_hits = t.proposal_hits;
    conflicts = t.conflicts;
    resyncs = t.resyncs;
  }

let assignment_of t task =
  {
    id = Spec.id task.spec;
    jury = task.jury;
    score = task.score;
    cost = Inner.jury_cost t.ctx task.jury;
    tier = Spec.tier task.spec;
  }

let find t ~id =
  Option.map (assignment_of t) (Hashtbl.find_opt t.tasks id)

let sorted_tasks t =
  Hashtbl.fold (fun _ task acc -> task :: acc) t.tasks []
  |> List.sort (fun a b -> Spec.compare_priority a.spec b.spec)

let arrival_tasks t =
  Hashtbl.fold (fun _ task acc -> task :: acc) t.tasks []
  |> List.sort (fun a b -> compare a.seq b.seq)

let assignments t = List.map (assignment_of t) (sorted_tasks t)

let inner_assignments t =
  List.map
    (fun task -> { Inner.spec = task.spec; jury = task.jury; score = task.score })
    (sorted_tasks t)

let aggregate t =
  Inner.aggregate ~dev_weight:t.config.dev_weight (inner_assignments t)

let baseline_aggregate t =
  Baseline.aggregate ~ctx:t.ctx ~dev_weight:t.config.dev_weight
    (List.map (fun task -> task.spec) (arrival_tasks t))

let violations t =
  let n = t.ctx.Inner.n in
  let claims = Array.make n 0 in
  Hashtbl.iter
    (fun _ task -> List.iter (fun p -> claims.(p) <- claims.(p) + 1) task.jury)
    t.tasks;
  Array.fold_left (fun acc c -> if c > 1 then acc + (c - 1) else acc) 0 claims

let eff_costs t =
  Array.init t.ctx.Inner.n (fun i -> t.ctx.Inner.costs.(i) +. t.prices.(i))

let tiny t =
  Hashtbl.length t.tasks <= t.config.exact_tasks
  && t.ctx.Inner.n <= t.config.exact_workers

let memo_for t sign =
  match Hashtbl.find_opt t.memos sign with
  | Some m -> m
  | None ->
      if Hashtbl.length t.memos >= memo_cap then Hashtbl.reset t.memos;
      let m = Jsp.Objective_cache.create ~n:t.ctx.Inner.n () in
      Hashtbl.add t.memos sign m;
      m

let remember_proposal t key jury =
  if Hashtbl.length t.proposals >= proposal_cap then Hashtbl.reset t.proposals;
  Hashtbl.replace t.proposals key jury

let proposal_key t ~scope sign =
  Printf.sprintf "%d|%d|%s|%s" t.version t.epoch scope sign

(* One inner solve: the task's ordinary single-shot JSP over the available
   positions at effective (price-adjusted) costs — warm annealing floored
   by the greedy scans, so a proposal never lands below greedy.  Pure with
   respect to [t] (counters are the caller's job): it runs inside the
   Parallel fan. *)
let inner_solve ?orders t ~spec ~avail ~eff ~anneal ~memo ~seed =
  let ctx = t.ctx in
  let positions = ref [] in
  for i = ctx.Inner.n - 1 downto 0 do
    if avail.(i) then positions := i :: !positions
  done;
  let positions = !positions in
  if positions = [] then []
  else if not anneal then
    fst (Inner.greedy_jury ?orders ctx ~spec ~avail ~eff)
  else begin
    let epool =
      match Engine.Pool.repr ctx.Inner.pool with
      | Engine.Pool.Binary p ->
          Engine.Pool.of_workers
            (Workers.Pool.of_list
               (List.map
                  (fun i ->
                    let w = Workers.Pool.get p i in
                    Workers.Worker.make ~id:i
                      ~quality:(Workers.Worker.quality w)
                      ~cost:eff.(i) ())
                  positions))
      | Engine.Pool.Matrix a ->
          let l = Engine.Pool.labels ctx.Inner.pool in
          Engine.Pool.of_confusions
            (Array.of_list
               (List.map
                  (fun i ->
                    let c = a.(i) in
                    Workers.Confusion.make ~id:i
                      ~matrix:(Array.init l (Workers.Confusion.row c))
                      ~cost:eff.(i) ())
                  positions))
    in
    let cfg = t.config in
    let rng = Prob.Rng.create seed in
    let solve rng =
      Jsp.Annealing.solve_engine ~params:cfg.anneal
        ~num_buckets:cfg.num_buckets ?memo ~rng ~task:(Spec.task spec)
        ~budget:(Spec.budget spec) epool
    in
    let best = ref (solve rng) in
    for _ = 2 to cfg.restarts do
      let r = solve (Prob.Rng.split rng) in
      if r.Jsp.Solver.score > !best.Jsp.Solver.score then best := r
    done;
    let anneal_jury = List.sort compare (Engine.Pool.ids !best.Jsp.Solver.jury) in
    let greedy_jury, greedy_score =
      Inner.greedy_jury ?orders ctx ~spec ~avail ~eff
    in
    if greedy_score > !best.Jsp.Solver.score then greedy_jury else anneal_jury
  end

(* Distinct signatures of a priority-sorted task list, first-seen order,
   with one representative spec each. *)
let distinct_sigs group =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun task ->
      let sign = Spec.signature task.spec in
      if Hashtbl.mem seen sign then None
      else begin
        Hashtbl.add seen sign ();
        Some (sign, task.spec)
      end)
    group

(* Auction the [group]'s juries off against each other.  Positions owned
   by tasks outside the group are untouchable; everything else (including
   the group's own current claims) goes back on the block.  Rounds: one
   inner solve per distinct signature (cached per price epoch, fanned
   across domains), demand count, price raise on over-subscribed
   positions / decay on undemanded ones, until demand clears or
   [max_rounds] runs out.  Commit: priority order, claim proposal minus
   already-claimed, repair evicted seats greedily — non-overlap by
   construction. *)
let auction t ~mode group =
  let ctx = t.ctx in
  let n = ctx.Inner.n in
  let cfg = t.config in
  (* Delta auctions trade polish for latency: fewer price rounds and
     greedy-only inner solves (the standing prices still shape them).
     Quality is re-established by the next full solve's anneal+floor. *)
  let anneal, max_rounds =
    match mode with
    | `Full -> (true, cfg.max_rounds)
    | `Delta -> (false, min cfg.delta_rounds cfg.max_rounds)
  in
  let group = List.sort (fun a b -> Spec.compare_priority a.spec b.spec) group in
  if n = 0 then
    List.iter
      (fun task ->
        task.jury <- [];
        task.proposal <- [];
        task.score <- Engine.Task.empty_score (Spec.task task.spec))
      group
  else begin
    let in_group = Hashtbl.create 16 in
    List.iter (fun task -> Hashtbl.replace in_group (Spec.id task.spec) ()) group;
    let avail = Array.make n true in
    Hashtbl.iter
      (fun id task ->
        if not (Hashtbl.mem in_group id) then
          List.iter (fun p -> avail.(p) <- false) task.jury)
      t.tasks;
    let full_scope = Array.for_all Fun.id avail in
    let scope =
      let base =
        if full_scope then "full"
        else Printf.sprintf "s%x" (Hashtbl.hash avail)
      in
      (* greedy-only solves must not pollute the anneal-grade entries *)
      match mode with `Full -> base | `Delta -> base ^ "|g"
    in
    let sigs = Array.of_list (distinct_sigs group) in
    let cleared = ref false in
    let round = ref 0 in
    while (not !cleared) && !round < max_rounds do
      incr round;
      t.price_rounds <- t.price_rounds + 1;
      let eff = eff_costs t in
      (* one pool sort serves every signature this round *)
      let orders = Inner.greedy_orders ctx ~eff in
      (* Cache lookups and writes stay serial; only misses solve, fanned
         across domains with guided self-scheduling (solve times are
         skewed — warm memos and pool sizes differ per signature). *)
      let jobs =
        Array.map
          (fun (sign, spec) ->
            let key = proposal_key t ~scope sign in
            match Hashtbl.find_opt t.proposals key with
            | Some jury -> (sign, `Hit jury)
            | None ->
                let memo =
                  if full_scope && anneal then Some (memo_for t sign)
                  else None
                in
                let seed =
                  Hashtbl.hash (cfg.seed, t.version, t.epoch, scope, sign)
                in
                (sign, `Solve (key, spec, memo, seed)))
          sigs
      in
      let solved =
        Expt.Parallel.map_array ~domains:cfg.domains ~sched:`Guided
          (fun (sign, job) ->
            match job with
            | `Hit jury -> (sign, None, jury)
            | `Solve (key, spec, memo, seed) ->
                ( sign,
                  Some key,
                  inner_solve ~orders t ~spec ~avail ~eff ~anneal ~memo ~seed ))
          jobs
      in
      let by_sig = Hashtbl.create 16 in
      Array.iter
        (fun (sign, written, jury) ->
          (match written with
          | Some key ->
              t.inner_solves <- t.inner_solves + 1;
              remember_proposal t key jury
          | None -> t.proposal_hits <- t.proposal_hits + 1);
          Hashtbl.replace by_sig sign jury)
        solved;
      List.iter
        (fun task ->
          task.proposal <- Hashtbl.find by_sig (Spec.signature task.spec))
        group;
      let demand = Array.make n 0 in
      List.iter
        (fun task ->
          List.iter (fun p -> demand.(p) <- demand.(p) + 1) task.proposal)
        group;
      let moved = ref false and over = ref false in
      for p = 0 to n - 1 do
        if demand.(p) > 1 then begin
          over := true;
          moved := true;
          t.prices.(p) <-
            t.prices.(p)
            +. cfg.price_step *. ctx.Inner.mean_cost
               *. float_of_int (demand.(p) - 1)
        end
        else if avail.(p) && demand.(p) = 0 && t.prices.(p) > 0. then begin
          let decayed = t.prices.(p) *. cfg.price_decay in
          t.prices.(p) <-
            (if decayed < 1e-6 *. ctx.Inner.mean_cost then 0. else decayed);
          moved := true
        end
      done;
      if !moved then t.epoch <- t.epoch + 1;
      if not !over then cleared := true
    done;
    (* Commit pass: the group's old claims dissolve, then priority order
       decides who keeps contested seats. *)
    List.iter
      (fun task -> List.iter (fun p -> t.owner.(p) <- None) task.jury)
      group;
    let eff = eff_costs t in
    let order = Inner.density_order ctx ~eff in
    let claimed_here = Array.make n false in
    List.iter
      (fun task ->
        let keep =
          List.filter (fun p -> avail.(p) && not claimed_here.(p)) task.proposal
        in
        let lost = List.length task.proposal - List.length keep in
        let jury =
          if lost = 0 then keep
          else begin
            t.conflicts <- t.conflicts + 1;
            let budget = Spec.budget task.spec in
            let spent = ref (Inner.jury_cost ctx keep) in
            let on_keep = Array.make n false in
            List.iter (fun p -> on_keep.(p) <- true) keep;
            let added = ref [] and missing = ref lost in
            (try
               Array.iter
                 (fun p ->
                   if !missing = 0 then raise Exit;
                   if
                     avail.(p)
                     && (not claimed_here.(p))
                     && (not on_keep.(p))
                     && !spent +. ctx.Inner.costs.(p) <= budget +. 1e-9
                   then begin
                     added := p :: !added;
                     spent := !spent +. ctx.Inner.costs.(p);
                     decr missing
                   end)
                 order
             with Exit -> ());
            List.sort compare (keep @ !added)
          end
        in
        let id = Spec.id task.spec in
        List.iter
          (fun p ->
            claimed_here.(p) <- true;
            t.owner.(p) <- Some id)
          jury;
        task.jury <- jury;
        task.score <- Inner.score_jury ctx ~task:(Spec.task task.spec) jury)
      group
  end

(* Install a full assignment computed outside the auction (exhaustive or
   baseline): owner table rebuilt from scratch. *)
let install t assigns =
  Array.fill t.owner 0 (Array.length t.owner) None;
  List.iter
    (fun { Inner.spec; jury; score } ->
      let id = Spec.id spec in
      let task = Hashtbl.find t.tasks id in
      task.jury <- jury;
      task.score <- score;
      task.proposal <- jury;
      List.iter (fun p -> t.owner.(p) <- Some id) jury)
    assigns

let exact_allocate t =
  let specs = List.map (fun task -> task.spec) (sorted_tasks t) in
  install t
    (Exhaustive.allocate ~ctx:t.ctx ~dev_weight:t.config.dev_weight specs)

(* Full price-based re-allocation, floored by the independent-greedy
   baseline on the same instance: the adopted assignment is whichever
   aggregates higher, so price-based >= baseline holds by construction
   on every full solve. *)
let full_solve t =
  t.full_solves <- t.full_solves + 1;
  if tiny t then exact_allocate t
  else begin
    auction t ~mode:`Full (sorted_tasks t);
    let dev_weight = t.config.dev_weight in
    let auction_agg = aggregate t in
    let basel =
      Baseline.allocate ~ctx:t.ctx ~dev_weight
        (List.map (fun task -> task.spec) (arrival_tasks t))
    in
    if Inner.aggregate ~dev_weight basel > auction_agg then install t basel
  end

let reallocate t = if Hashtbl.length t.tasks > 0 then full_solve t

(* Cap a delta re-solve's blast radius: only the [delta_cap] highest
   priority affected juries go back to auction (must-keep tasks first). *)
let cap_affected t ~must tasks =
  let sorted =
    List.sort (fun a b -> Spec.compare_priority a.spec b.spec) tasks
  in
  let cap = t.config.delta_cap in
  let rec take acc k = function
    | [] -> List.rev acc
    | _ when k = 0 -> List.rev acc
    | x :: rest -> take (x :: acc) (k - 1) rest
  in
  let keep = take [] (max 0 (cap - List.length must)) sorted in
  must @ List.filter (fun task -> not (List.memq task must)) keep

let submit t spec =
  let id = Spec.id spec in
  if Hashtbl.mem t.tasks id then
    invalid_arg ("Fleet.Allocator.submit: duplicate task id " ^ id);
  let ctx = t.ctx in
  if ctx.Inner.n > 0 && Spec.labels spec <> Engine.Pool.labels ctx.Inner.pool
  then
    invalid_arg "Fleet.Allocator.submit: task and pool label counts differ";
  t.submits <- t.submits + 1;
  let task =
    {
      spec;
      seq = t.arrivals;
      jury = [];
      score = Engine.Task.empty_score (Spec.task spec);
      proposal = [];
    }
  in
  t.arrivals <- t.arrivals + 1;
  Hashtbl.replace t.tasks id task;
  if tiny t then begin
    t.full_solves <- t.full_solves + 1;
    exact_allocate t
  end
  else begin
    t.delta_solves <- t.delta_solves + 1;
    let cfg = t.config in
    let avail = Array.make ctx.Inner.n true in
    let eff = eff_costs t in
    let sign = Spec.signature spec in
    let key = proposal_key t ~scope:"full" sign in
    let jury =
      match Hashtbl.find_opt t.proposals key with
      | Some j ->
          t.proposal_hits <- t.proposal_hits + 1;
          j
      | None ->
          let seed =
            Hashtbl.hash (cfg.seed, t.version, t.epoch, "full", sign)
          in
          let j =
            inner_solve t ~spec ~avail ~eff ~anneal:true
              ~memo:(Some (memo_for t sign)) ~seed
          in
          t.inner_solves <- t.inner_solves + 1;
          remember_proposal t key j;
          j
    in
    task.proposal <- jury;
    let contested = List.filter (fun p -> t.owner.(p) <> None) jury in
    if contested = [] then begin
      task.jury <- jury;
      List.iter (fun p -> t.owner.(p) <- Some id) jury;
      task.score <- Inner.score_jury ctx ~task:(Spec.task spec) jury
    end
    else begin
      (* The wanted seats are contended: re-auction their owners together
         with the newcomer (the auction's own rounds do the repricing —
         bumping prices here would invalidate the proposal cache on every
         saturated arrival). *)
      let owner_ids = Hashtbl.create 8 in
      List.iter
        (fun p ->
          match t.owner.(p) with
          | Some oid -> Hashtbl.replace owner_ids oid ()
          | None -> ())
        contested;
      let owners =
        Hashtbl.fold
          (fun oid () acc -> Hashtbl.find t.tasks oid :: acc)
          owner_ids []
      in
      auction t ~mode:`Delta (cap_affected t ~must:[ task ] owners)
    end
  end;
  assignment_of t task

(* Bulk arrival: admit the whole batch, then allocate it jointly with one
   full solve — at 10k concurrent tasks this shares the per-signature
   inner solves across the entire batch instead of re-auctioning per
   arrival. *)
let submit_all t specs =
  (* validate everything before admitting anything *)
  let batch = Hashtbl.create 64 in
  List.iter
    (fun spec ->
      let id = Spec.id spec in
      if Hashtbl.mem t.tasks id || Hashtbl.mem batch id then
        invalid_arg ("Fleet.Allocator.submit_all: duplicate task id " ^ id);
      Hashtbl.add batch id ();
      if
        t.ctx.Inner.n > 0
        && Spec.labels spec <> Engine.Pool.labels t.ctx.Inner.pool
      then
        invalid_arg
          "Fleet.Allocator.submit_all: task and pool label counts differ")
    specs;
  List.iter
    (fun spec ->
      let id = Spec.id spec in
      t.submits <- t.submits + 1;
      let task =
        {
          spec;
          seq = t.arrivals;
          jury = [];
          score = Engine.Task.empty_score (Spec.task spec);
          proposal = [];
        }
      in
      t.arrivals <- t.arrivals + 1;
      Hashtbl.replace t.tasks id task)
    specs;
  if specs <> [] then full_solve t;
  List.map
    (fun spec -> assignment_of t (Hashtbl.find t.tasks (Spec.id spec)))
    specs

let release t ~id ~decided =
  match Hashtbl.find_opt t.tasks id with
  | None -> None
  | Some task ->
      let final = assignment_of t task in
      Hashtbl.remove t.tasks id;
      t.releases <- t.releases + 1;
      if decided then t.decides <- t.decides + 1;
      List.iter (fun p -> t.owner.(p) <- None) task.jury;
      let freed = task.jury in
      if Hashtbl.length t.tasks = 0 then begin
        if Array.exists (fun p -> p > 0.) t.prices then begin
          Array.fill t.prices 0 (Array.length t.prices) 0.;
          t.epoch <- t.epoch + 1
        end
      end
      else if tiny t then begin
        t.full_solves <- t.full_solves + 1;
        exact_allocate t
      end
      else if freed <> [] then begin
        (* Freed capacity relaxes contention: decay the freed seats'
           prices and re-auction the juries that wanted them. *)
        let moved = ref false in
        List.iter
          (fun p ->
            if t.prices.(p) > 0. then begin
              let decayed = t.prices.(p) *. t.config.price_decay in
              t.prices.(p) <-
                (if decayed < 1e-6 *. t.ctx.Inner.mean_cost then 0.
                 else decayed);
              moved := true
            end)
          freed;
        if !moved then t.epoch <- t.epoch + 1;
        let freed_set = Array.make t.ctx.Inner.n false in
        List.iter (fun p -> freed_set.(p) <- true) freed;
        let affected =
          Hashtbl.fold
            (fun _ other acc ->
              if List.exists (fun p -> freed_set.(p)) other.proposal then
                other :: acc
              else acc)
            t.tasks []
        in
        if affected <> [] then begin
          t.delta_solves <- t.delta_solves + 1;
          auction t ~mode:`Delta (cap_affected t ~must:[] affected)
        end
      end;
      Some final

let set_pool t ~pool ~version =
  if version <> t.version then begin
    t.resyncs <- t.resyncs + 1;
    t.version <- version;
    t.ctx <- Inner.make_ctx ~num_buckets:t.config.num_buckets pool;
    let n = t.ctx.Inner.n in
    t.prices <- Array.make n 0.;
    t.owner <- Array.make n None;
    t.epoch <- t.epoch + 1;
    Hashtbl.reset t.proposals;
    Hashtbl.reset t.memos;
    let l = Engine.Pool.labels pool in
    let dropped =
      Hashtbl.fold
        (fun id task acc ->
          if n > 0 && Spec.labels task.spec <> l then id :: acc else acc)
        t.tasks []
    in
    List.iter (Hashtbl.remove t.tasks) dropped;
    Hashtbl.iter
      (fun _ task ->
        task.jury <- [];
        task.proposal <- [];
        task.score <- Engine.Task.empty_score (Spec.task task.spec))
      t.tasks;
    if Hashtbl.length t.tasks > 0 then full_solve t
  end
