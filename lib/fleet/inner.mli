(** Shared per-instance machinery for the fleet solvers.

    A {!ctx} is the positional view of one shared pool that every fleet
    solver (priced auction, greedy baseline, exhaustive checker) works
    against: juries are ascending position lists into [pool], [costs]
    are the true per-position costs that budgets are charged against,
    and [rank] is a model-free informativeness score (|2q−1| for binary
    workers, the {!Workers.Spammer} row-distance score for matrix
    workers) used to order greedy scans.  Scoring goes through one
    bucket-approximated BV objective, so every solver's JQ numbers are
    directly comparable — the ≥-baseline guarantees in {!Allocator}
    are comparisons of identical evaluators. *)

type ctx = private {
  pool : Engine.Pool.t;
  n : int;
  costs : float array;
  rank : float array;
  mean_cost : float;  (** Mean true cost (1 on an empty pool) — the price unit. *)
  num_buckets : int;
  obj : Engine.Objective.t;
}

val make_ctx : ?num_buckets:int -> Engine.Pool.t -> ctx
(** [num_buckets] defaults to {!Jq.Bucket.default_num_buckets}.  The
    objective resolves its kernel workspace per call (the calling
    domain's default), so a ctx may be read from several domains. *)

val score_jury : ctx -> task:Engine.Task.t -> int list -> float
(** JQ estimate of the jury at the given positions (the empty jury
    scores {!Engine.Task.empty_score}).
    @raise Invalid_argument on out-of-range positions. *)

val jury_cost : ctx -> int list -> float
(** Σ true cost over the positions. *)

val utility : dev_weight:float -> Spec.t -> score:float -> float
(** Tier-weighted, deviation-soft task utility:
    [weight · (score − dev_weight · max 0 (target − score))]. *)

type assignment = { spec : Spec.t; jury : int list; score : float }

val aggregate : dev_weight:float -> assignment list -> float
(** Σ {!utility} over the assignments — the fleet objective. *)

val density_order : ctx -> eff:float array -> int array
(** All positions sorted by decreasing [rank/eff] (informativeness per
    effective cost unit; ties by position), the greedy scan order. *)

val greedy_orders : ctx -> eff:float array -> int array list
(** The three greedy scan orders (density, raw rank, cheapest-first) for
    one effective-cost vector — hoist across tasks that share [eff]:
    the orders are per-pool, not per-task. *)

val greedy_jury :
  ?orders:int array list ->
  ctx ->
  spec:Spec.t ->
  avail:bool array ->
  eff:float array ->
  int list * float
(** Best of three greedy scans over the available positions — by
    rank/[eff] density, by raw rank, and cheapest-[eff]-first — each
    adding every worker whose {e true} cost still fits the spec's
    budget (Lemma 1: affordable additions never hurt BV).  [eff] is the
    effective (price-adjusted) cost vector that shapes preference
    order; budgets are always charged true costs.  Returns the
    best-scoring jury (ascending positions) and its score. *)
