(** Exact fleet assignment by enumeration, for tiny instances.

    Enumerates every owner vector — each of the [n] pool positions goes
    to one of the [k] tasks or to nobody, [(k+1)^n] combinations — and
    keeps the budget-feasible assignment with the highest tier-weighted,
    deviation-soft aggregate utility ({!Inner.aggregate}).  Non-overlap
    holds by construction (a position has one owner).  This is the
    ground truth the allocator's qcheck optimality invariant compares
    against, and the allocator itself routes instances under its exact
    caps here, so tiny fleets are solved optimally rather than
    heuristically. *)

val max_tasks : int
(** Hard enumeration guard (4 tasks). *)

val max_workers : int
(** Hard enumeration guard (8 positions). *)

val allocate :
  ctx:Inner.ctx -> dev_weight:float -> Spec.t list -> Inner.assignment list
(** Assignments in input spec order; juries are ascending positions.
    Deterministic: ties keep the lexicographically first owner vector.
    @raise Invalid_argument beyond {!max_tasks} × {!max_workers}. *)
