(** Independent greedy with conflict eviction — the fleet baseline.

    What a platform without a shared-pool allocator does: each task runs
    the per-task greedy on the {e full} pool as if it were alone, then a
    single pass in arrival order resolves contention by eviction — a
    worker already claimed by an earlier task is dropped from every
    later jury, and each evicted seat is backfilled greedily from the
    workers still unclaimed (within the task's remaining budget).  The
    result respects non-overlap and budgets but prices contention not at
    all, which is exactly what {!Allocator}'s price-based decomposition
    must beat (and is guaranteed to: the allocator takes the better of
    its auction and this baseline on every full re-allocation). *)

val allocate :
  ctx:Inner.ctx -> dev_weight:float -> Spec.t list -> Inner.assignment list
(** Specs in arrival order; assignments returned in the same order.
    Deterministic. *)

val aggregate : ctx:Inner.ctx -> dev_weight:float -> Spec.t list -> float
(** {!Inner.aggregate} of {!allocate}. *)
