(** Price-based shared-pool jury allocator.

    One pool, a stream of concurrent tasks, two hard constraints — no
    worker sits on two juries at once, and each task pays its own jury
    within its own budget — and a tier-weighted, deviation-soft
    aggregate JQ objective.  Solved by price-based (Lagrangian/auction)
    decomposition:

    - every position carries a {e price}, the shadow cost of contention,
      and each task's inner problem is the ordinary single-task JSP of
      the paper solved by the warm {!Jsp.Annealing.solve_engine} path
      against {e effective} costs (true cost + price).  Prices only
      shape preference: budgets are charged true costs, and since
      effective ≥ true cost, a priced-feasible jury is always feasible.
    - an outer loop counts demand per position across the per-task
      proposals, raises prices on over-subscribed positions and decays
      prices nobody pays, until demand clears or [max_rounds] runs out;
      a final commit pass walks tasks in {!Spec.compare_priority} order,
      granting each its proposal minus already-claimed positions and
      repairing evicted seats greedily — so non-overlap holds by
      construction, every epoch.

    Inner solves are shared and cached: tasks with equal
    {!Spec.signature} are interchangeable to the solver, so each auction
    round solves one inner problem per {e distinct} signature (fanned
    across domains via {!Expt.Parallel} with guided self-scheduling),
    and proposals are memoized keyed by (pool version, price epoch,
    scope, signature) — at 10k concurrent tasks over a handful of task
    shapes, an allocation is a handful of anneals plus one cheap commit
    sweep.  Arrival, departure and decide trigger {e delta} re-solves
    touching only the (capped) set of juries sharing a contended or
    freed worker; {!set_pool} resyncs on the registry's pool-version
    bumps — the same invalidation rule as every other cache over pools.

    Full re-allocations ({!reallocate}, and tiny instances routed to
    {!Exhaustive}) additionally take the better of the auction and the
    independent-greedy {!Baseline} on the same instance, so the
    price-based result is ≥ the baseline by construction there. *)

type config = {
  anneal : Jsp.Annealing.params;  (** Inner-solve schedule (fleet default: ε=1e-4, 128 moves/temp — light). *)
  num_buckets : int;      (** Bucket count for every JQ evaluation. *)
  restarts : int;         (** Anneal restarts per inner solve. *)
  price_step : float;     (** Price raise per unit of excess demand, in mean-cost units. *)
  price_decay : float;    (** Multiplicative decay on undemanded priced positions. *)
  max_rounds : int;       (** Outer price-adjustment rounds per full auction. *)
  delta_rounds : int;     (** Rounds cap for delta auctions (greedy-only inner solves). *)
  dev_weight : float;     (** Weight of the soft target-shortfall deviation. *)
  exact_tasks : int;      (** Route instances ≤ this many tasks … *)
  exact_workers : int;    (** … on pools ≤ this many workers to {!Exhaustive}. *)
  delta_cap : int;        (** Max juries a delta re-solve may touch. *)
  domains : int;          (** Domains for the inner-solve fan (1 = sequential). *)
  seed : int;             (** Deterministic inner-solve RNG root. *)
}

val default_config : config

type assignment = {
  id : string;
  jury : int list;   (** Ascending pool positions ([] when starved). *)
  score : float;     (** JQ estimate for the task's prior. *)
  cost : float;      (** True cost of the jury. *)
  tier : int;
}

type stats = {
  submits : int;
  releases : int;        (** Tasks released, including decided ones. *)
  decides : int;         (** Releases that carried a decision. *)
  full_solves : int;     (** Full re-allocations (incl. exact routes). *)
  delta_solves : int;    (** Delta re-solves (capped auctions). *)
  price_rounds : int;    (** Outer price-adjustment rounds run. *)
  inner_solves : int;    (** Per-signature inner solves actually run. *)
  proposal_hits : int;   (** Inner solves answered from the proposal cache. *)
  conflicts : int;       (** Commit-pass juries that lost a contested seat. *)
  resyncs : int;         (** Pool-version resyncs via {!set_pool}. *)
}

type t

val create : ?config:config -> pool:Engine.Pool.t -> version:int -> unit -> t
val config : t -> config
val pool : t -> Engine.Pool.t
val pool_version : t -> int
val epoch : t -> int
(** Current price epoch (bumped whenever any price moves). *)

val task_count : t -> int
val claimed : t -> int
(** Positions currently on some jury. *)

val priced : t -> int
(** Positions currently carrying a nonzero price. *)

val contention : t -> float
(** [priced / pool size] (0 on an empty pool) — how much of the pool the
    auction is actively arbitrating. *)

val submit : t -> Spec.t -> assignment
(** Admit a task and assign it a jury: a cached/warm full-pool proposal,
    claimed directly when unconteded, otherwise a delta auction over the
    owners of the contested positions (≤ [delta_cap] juries).  Tiny
    instances re-solve exactly.
    @raise Invalid_argument on duplicate id or a prior whose label count
    differs from the pool's. *)

val submit_all : t -> Spec.t list -> assignment list
(** Bulk arrival: admit every spec, then allocate the whole batch with
    one full price-based solve (per-signature inner solves shared across
    the batch — the 10k-concurrent-tasks path).  Assignments are
    returned in input order.  All-or-nothing validation as in {!submit}:
    a duplicate id or label mismatch raises before any allocation. *)

val release : t -> id:string -> decided:bool -> assignment option
(** Remove a task (its decision made, or withdrawn), free its jury, and
    delta re-solve the (capped) set of tasks whose proposals wanted the
    freed workers.  [None] when the id is unknown; otherwise the final
    assignment the task held. *)

val find : t -> id:string -> assignment option
val assignments : t -> assignment list
(** All resident tasks in {!Spec.compare_priority} order. *)

val reallocate : t -> unit
(** Full price-based re-allocation of every resident task (auction from
    the current prices, floored by {!Baseline} — aggregate never lands
    below independent greedy). *)

val set_pool : t -> pool:Engine.Pool.t -> version:int -> unit
(** Adopt a new pool snapshot (same-version calls are no-ops).  Tasks
    whose label count no longer matches are dropped; everything else is
    fully re-allocated against the new pool — registry version bumps
    (worker-quality batches, puts) invalidate fleet state exactly like
    they invalidate every other per-pool cache. *)

val aggregate : t -> float
(** Current tier-weighted deviation-soft aggregate utility. *)

val baseline_aggregate : t -> float
(** {!Baseline} re-run on the current instance (fresh computation). *)

val violations : t -> int
(** Overlapping position claims across resident juries — 0 by
    construction; exposed so tests and benches can assert it. *)

val stats : t -> stats
