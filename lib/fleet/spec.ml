type t = {
  id : string;
  task : Engine.Task.t;
  budget : float;
  tier : int;
  target : float;
  weight : float;
  signature : string;
}

let wire_safe id =
  id <> ""
  && String.for_all
       (fun c -> c <> ' ' && c <> '=' && c <> '\n' && c <> '\r')
       id

let make ?(tier = 0) ?(target = 0.) ~id ~prior ~budget () =
  if not (wire_safe id) then
    invalid_arg "Fleet.Spec.make: id must be non-empty and wire-safe";
  if tier < 0 then invalid_arg "Fleet.Spec.make: tier must be >= 0";
  if not (Float.is_finite target) || target < 0. || target > 1. then
    invalid_arg "Fleet.Spec.make: target must lie in [0, 1]";
  if not (Float.is_finite budget) then
    invalid_arg "Fleet.Spec.make: budget must be finite";
  Jsp.Budget.validate budget;
  let task = Engine.Task.make ~prior in
  let signature =
    Printf.sprintf "%s|%h|%d|%h" (Engine.Task.fingerprint task) budget tier
      target
  in
  {
    id;
    task;
    budget;
    tier;
    target;
    weight = 10. ** Float.neg (float_of_int tier);
    signature;
  }

let id t = t.id
let task t = t.task
let prior t = Engine.Task.prior t.task
let labels t = Engine.Task.labels t.task
let budget t = t.budget
let tier t = t.tier
let target t = t.target
let weight t = t.weight
let signature t = t.signature

let compare_priority a b =
  match compare a.tier b.tier with
  | 0 -> String.compare a.id b.id
  | c -> c

let pp ppf t =
  Format.fprintf ppf "%s(l=%d, B=%g, tier=%d%s)" t.id (labels t) t.budget
    t.tier
    (if t.target > 0. then Printf.sprintf ", target=%g" t.target else "")
