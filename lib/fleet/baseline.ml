let allocate ~ctx ~dev_weight:_ specs =
  let n = ctx.Inner.n in
  let all = Array.make n true in
  let eff = ctx.Inner.costs in
  (* One sort of the pool serves every task: the scan orders depend only
     on (rank, cost), never on the spec. *)
  let orders = Inner.greedy_orders ctx ~eff in
  (* Phase 1: each task solved independently on the full pool.  Tasks
     with equal signatures are interchangeable here (same prior, same
     budget, same full pool), so solve each shape once. *)
  let by_sig = Hashtbl.create 16 in
  let wants =
    List.map
      (fun spec ->
        let sign = Spec.signature spec in
        let want =
          match Hashtbl.find_opt by_sig sign with
          | Some w -> w
          | None ->
              let w =
                fst (Inner.greedy_jury ~orders ctx ~spec ~avail:all ~eff)
              in
              Hashtbl.add by_sig sign w;
              w
        in
        (spec, want))
      specs
  in
  let density = List.hd orders in
  (* Phase 2: arrival-order eviction — claimed workers drop out of later
     juries; evicted seats backfill greedily from what is left. *)
  let claimed = Array.make n false in
  List.map
    (fun (spec, want) ->
      let keep = List.filter (fun i -> not claimed.(i)) want in
      let evicted = List.length want - List.length keep in
      let jury =
        if evicted = 0 then keep
        else begin
          let spent = Inner.jury_cost ctx keep in
          let budget = Spec.budget spec in
          let taken = Array.make n false in
          List.iter (fun i -> taken.(i) <- true) keep;
          let order = density in
          let added = ref [] and spent = ref spent and missing = ref evicted in
          Array.iter
            (fun i ->
              if
                !missing > 0
                && (not claimed.(i))
                && (not taken.(i))
                && !spent +. ctx.Inner.costs.(i) <= budget +. 1e-9
              then begin
                added := i :: !added;
                spent := !spent +. ctx.Inner.costs.(i);
                decr missing
              end)
            order;
          List.sort compare (keep @ !added)
        end
      in
      List.iter (fun i -> claimed.(i) <- true) jury;
      let score = Inner.score_jury ctx ~task:(Spec.task spec) jury in
      { Inner.spec; jury; score })
    wants

let aggregate ~ctx ~dev_weight specs =
  Inner.aggregate ~dev_weight (allocate ~ctx ~dev_weight specs)
