(** OPTJS — the Optimal Jury Selection System (Figure 1).

    The one-stop facade over the library: estimate Jury Quality under the
    provably optimal Bayesian Voting strategy (Theorem 1), select juries
    under a budget (JSP, §5), build budget–quality tables, and aggregate
    collected votes.  The sub-libraries remain available for finer control:

    - {!Prob} — RNG, distributions, Poisson–binomial, statistics
    - {!Workers} — worker models, pools, generators, quality estimation
    - {!Voting} — the strategy zoo (MV, BV, RMV, RBV, weighted, multi-class)
    - {!Jq} — exact / closed-form / bucket-approximate JQ computation
    - {!Jsp} — exhaustive, annealing and greedy jury selection, MVJS baseline
    - {!Crowd} — simulated platform, synthetic AMT dataset, evaluation *)

type config = {
  num_buckets : int;                  (** Algorithm-1 resolution (default 50). *)
  annealing : Jsp.Annealing.params;   (** JSP search schedule. *)
}

val default_config : config

(** {1 Jury quality} *)

val jury_quality : ?config:config -> alpha:float -> Workers.Pool.t -> float
(** ĴQ(J, BV, α) by the bucket approximation — polynomial time, error under
    e^(nδ/4) − 1 and never above the true JQ. *)

val jury_quality_exact : alpha:float -> Workers.Pool.t -> float
(** Exact JQ(J, BV, α) by enumeration (juries of ≤ {!Jq.Exact.max_jury}). *)

val jury_quality_of : Voting.Strategy.t -> alpha:float -> Workers.Pool.t -> float
(** Exact JQ of any strategy, for comparisons (small juries). *)

(** {1 Jury selection (JSP)} *)

val select_jury :
  ?config:config ->
  rng:Prob.Rng.t ->
  alpha:float ->
  budget:float ->
  Workers.Pool.t ->
  Workers.Pool.t Jsp.Solver.result
(** Solve JSP for BV: the Lemma-1/2 fast paths when they apply, otherwise
    the best of simulated annealing (Algorithms 3–4) and the greedy seeds.
    The returned jury is always feasible. *)

val select_jury_exact :
  ?config:config ->
  alpha:float ->
  budget:float ->
  Workers.Pool.t ->
  Workers.Pool.t Jsp.Solver.result
(** Exhaustive JSP (pools of ≤ {!Jsp.Enumerate.max_pool}). *)

val budget_quality_table :
  ?config:config ->
  rng:Prob.Rng.t ->
  alpha:float ->
  budgets:float list ->
  Workers.Pool.t ->
  Jsp.Table.t
(** One {!select_jury} row per budget — the Figure-1 artifact. *)

(** {1 Packaged systems}

    The two end-to-end systems of the paper's §6 comparison, ready for
    {!Crowd.Campaign.run}. *)

val system : ?config:config -> unit -> Crowd.Campaign.system
(** OPTJS: select with {!select_jury}, aggregate with Bayesian Voting. *)

val mvjs_system : ?config:config -> unit -> Crowd.Campaign.system
(** The MVJS baseline: select for MV JQ, aggregate with Majority Voting. *)

(** {1 Aggregation} *)

val aggregate :
  alpha:float -> qualities:float array -> Voting.Vote.voting -> Voting.Vote.t
(** The Bayesian Voting decision for collected votes (Theorem 1). *)

val posterior_no :
  alpha:float -> qualities:float array -> Voting.Vote.voting -> float
(** Pr(t = 0 | V) — the confidence behind {!aggregate}'s answer. *)

val version : string
