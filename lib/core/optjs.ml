type config = { num_buckets : int; annealing : Jsp.Annealing.params }

let default_config =
  { num_buckets = Jq.Bucket.default_num_buckets; annealing = Jsp.Annealing.default_params }

let jury_quality ?(config = default_config) ~alpha jury =
  if Workers.Pool.is_empty jury then Float.max alpha (1. -. alpha)
  else
    Jq.Bucket.estimate ~num_buckets:config.num_buckets ~alpha
      (Workers.Pool.qualities jury)

let jury_quality_exact ~alpha jury =
  if Workers.Pool.is_empty jury then Float.max alpha (1. -. alpha)
  else Jq.Exact.jq_optimal ~alpha ~qualities:(Workers.Pool.qualities jury)

let jury_quality_of strategy ~alpha jury =
  Jq.Exact.jq strategy ~alpha ~qualities:(Workers.Pool.qualities jury)

let objective config = Jsp.Objective.bv_bucket ~num_buckets:config.num_buckets ()

let select_jury ?(config = default_config) ~rng ~alpha ~budget pool =
  let objective = objective config in
  match Jsp.Special.solve objective ~alpha ~budget pool with
  | Some result -> result
  | None ->
      let annealed =
        Jsp.Annealing.solve_optjs ~params:config.annealing
          ~num_buckets:config.num_buckets ~rng ~alpha ~budget pool
      in
      let greedy = Jsp.Greedy.best_of_all objective ~alpha ~budget pool in
      Jsp.Solver.best annealed greedy

let select_jury_exact ?(config = default_config) ~alpha ~budget pool =
  Jsp.Enumerate.solve (objective config) ~alpha ~budget pool

let budget_quality_table ?config ~rng ~alpha ~budgets pool =
  Jsp.Table.build ~budgets pool ~solve:(fun ~budget pool ->
      select_jury ?config ~rng ~alpha ~budget pool)

let system ?(config = default_config) () =
  {
    Crowd.Campaign.name = "OPTJS";
    select =
      (fun rng ~alpha ~budget pool ->
        (select_jury ~config ~rng ~alpha ~budget pool).Jsp.Solver.jury);
    aggregate =
      (fun _rng ~alpha ~qualities voting ->
        Voting.Bayesian.decide_exact ~alpha ~qualities voting);
  }

let mvjs_system ?(config = default_config) () =
  {
    Crowd.Campaign.name = "MVJS";
    select =
      (fun rng ~alpha ~budget pool ->
        (Jsp.Mvjs.select ~params:config.annealing ~rng ~alpha ~budget pool)
          .Jsp.Solver.jury);
    aggregate =
      (fun rng ~alpha ~qualities voting ->
        Voting.Strategy.run Jsp.Mvjs.strategy rng ~alpha ~qualities voting);
  }

let aggregate ~alpha ~qualities voting =
  Voting.Bayesian.decide_exact ~alpha ~qualities voting

let posterior_no ~alpha ~qualities voting =
  Voting.Bayesian.posterior_no ~alpha ~qualities voting

let version = "1.0.0"
