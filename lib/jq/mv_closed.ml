let check qualities =
  Array.iter
    (fun q ->
      if q < 0. || q > 1. || Float.is_nan q then
        invalid_arg "Mv_closed: quality outside [0, 1]")
    qualities

(* The count of truthful votes is PB(qualities) whichever the truth is; only
   the winning threshold depends on the truth because of tie-breaking. *)
let jq_from_tail ~alpha ~n ~tail =
  if alpha < 0. || alpha > 1. then invalid_arg "Mv_closed.jq_from_tail: alpha";
  if n < 0 then invalid_arg "Mv_closed.jq_from_tail: n < 0";
  (* MV on the empty voting returns 1 (0 zeros < 1/2): correct iff t = 1. *)
  if n = 0 then 1. -. alpha
  else begin
    let strict = tail ((n / 2) + 1) in
    if n mod 2 = 1 then strict
    else
      let with_tie = tail (n / 2) in
      (alpha *. strict) +. ((1. -. alpha) *. with_tie)
  end

let jq ~alpha ~qualities =
  check qualities;
  jq_from_tail ~alpha ~n:(Array.length qualities)
    ~tail:(Prob.Poisson_binomial.tail_at_least qualities)

let jq_tie_coin qualities =
  check qualities;
  Prob.Poisson_binomial.majority_correct qualities

let jq_half ~alpha ~qualities =
  check qualities;
  if alpha < 0. || alpha > 1. then invalid_arg "Mv_closed.jq_half: alpha";
  let n = Array.length qualities in
  if n = 0 then alpha
  else begin
    let strict = Prob.Poisson_binomial.tail_at_least qualities ((n / 2) + 1) in
    if n mod 2 = 1 then strict
    else
      let with_tie = Prob.Poisson_binomial.tail_at_least qualities (n / 2) in
      (alpha *. with_tie) +. ((1. -. alpha) *. strict)
  end
