(** Algorithm 1 (EstimateJQ): bucket-based approximation of JQ(J, BV, α).

    Computing JQ for BV exactly is NP-hard (Theorem 2).  The algorithm
    works on R(V) = ln Pr(V|t=0) − ln Pr(V|t=1) = Σ (1−2v_i)·φ(q_i): BV
    answers 0 exactly when R(V) ≥ 0, so at α = 0.5

      JQ = Σ_V [ 1(R(V) > 0)·e^u(V) + ½·1(R(V) = 0)·e^u(V) ].

    Each logit φ(q_i) is snapped to the nearest of numBuckets equal-width
    buckets, turning R into a *bounded integer*.  Since |R| ≤ Σ buckets,
    the key → probability-mass map is a dense float array of 2·Σb + 1
    cells (offset-indexed, ping-pong buffers from a {!Workspace}), grown
    one worker at a time; pruning (Algorithm 2) settles keys whose sign
    the remaining workers can no longer change, and in the dense kernel
    becomes index-range clamping of the scan window.

    Guarantees (§4.4, verified by property tests): ĴQ ≤ JQ and
    JQ − ĴQ < e^(nδ/4) − 1 — under 1% for numBuckets ≥ 200·n.

    Priors fold in through Theorem 3 ({!Prior.fold}); qualities below 0.5
    canonicalize through {!Reinterpret} (both leave the true JQ
    unchanged). *)

type stats = {
  value : float;           (** ĴQ, the estimated jury quality. *)
  upper : float;           (** Logit range used for bucketing. *)
  delta : float;           (** Bucket width δ (0 when all logits are 0). *)
  max_map_size : int;      (** Largest key-map across iterations (occupied
                               cells for the dense kernel, table entries
                               for the hashtable one). *)
  pruned_pairs : int;      (** (key, prob) pairs settled early by pruning. *)
  error_bound : float;     (** e^(nδ/4) − 1 for this run's δ and n. *)
}

type impl =
  | Flat      (** Dense offset-indexed DP over flat float arrays (default). *)
  | Hashtbl   (** Legacy key → mass hashtable kernel, kept as a
                  differential-testing oracle. *)

val default_num_buckets : int
(** 50, the paper's experimental default (§6.1.1). *)

val estimate :
  ?impl:impl ->
  ?workspace:Workspace.t ->
  ?num_buckets:int ->
  ?pruning:bool ->
  ?high_quality_shortcut:bool ->
  ?alpha:float ->
  float array ->
  float
(** [estimate qs] approximates JQ(J, BV, α).  Defaults: numBuckets = 50,
    pruning on, α = 0.5.  [high_quality_shortcut] (default [true]) applies
    §4.4's early return: when some quality exceeds 0.99, answer that quality
    (a ≤1%-error lower bound by Lemma 1) rather than bucket an unbounded
    logit range.  Degenerate priors (α ∈ {0,1}) and certain workers (q ∈
    {0,1}) return 1 exactly.

    [workspace] supplies the scratch buffers; it defaults to the calling
    domain's {!Workspace.default} and must not be shared across domains
    (see {!Workspace}).  The two kernels agree on [value] up to
    summation-order ulps (property-tested).
    @raise Invalid_argument for an empty jury, a non-positive numBuckets,
    or out-of-range qualities/α. *)

val estimate_stats :
  ?impl:impl ->
  ?workspace:Workspace.t ->
  ?num_buckets:int ->
  ?pruning:bool ->
  ?high_quality_shortcut:bool ->
  ?alpha:float ->
  float array ->
  stats
(** Same computation, with instrumentation. *)

val bucketize : num_buckets:int -> float array -> int array * float
(** [bucketize ~num_buckets logits] is [(b, delta)]: each logit mapped to
    its nearest bucket index b_i = ⌈φ_i/δ − ½⌉ with δ = max φ / numBuckets.
    Exposed for unit tests; returns (zeros, 0.) when every logit is 0. *)
