(** Exact Jury Quality by full enumeration (Definition 3).

    JQ(J, S, α) = Σ_V [ α·Pr(V|t=0)·E[1(S(V)=0)] + (1−α)·Pr(V|t=1)·E[1(S(V)=1)] ].

    Exponential in the jury size — this is the ground truth the
    approximation algorithm (and the NP-hardness discussion of §4.1) is
    measured against, usable for juries up to ~20 workers. *)

val max_jury : int
(** Largest jury size accepted (20). *)

val likelihoods : qualities:float array -> Voting.Vote.voting -> float * float
(** [(Pr(V | t = 0), Pr(V | t = 1))] under vote independence (§3.2):
    Pr(V|t=0) = Π q^(1−v)(1−q)^v and symmetrically for t = 1. *)

val jq : Voting.Strategy.t -> alpha:float -> qualities:float array -> float
(** Exact JQ of a strategy.  @raise Invalid_argument when the jury exceeds
    {!max_jury} or alpha lies outside [0, 1]. *)

val jq_optimal : alpha:float -> qualities:float array -> float
(** Exact JQ of the optimal strategy without going through the strategy
    interface: Σ_V max(P0(V), P1(V)).  Equal to [jq Bayesian.strategy] —
    a property test pins the equality — but twice as fast, and the form
    used in correctness arguments. *)

val jq_table :
  Voting.Strategy.t ->
  alpha:float ->
  qualities:float array ->
  (Voting.Vote.voting * float * float * float) list
(** Per-voting breakdown [(V, P0(V), P1(V), contribution)] — the rows of
    the paper's Figure 2 worked example. *)
