(** Exact Jury Quality by full enumeration (Definition 3).

    JQ(J, S, α) = Σ_V [ α·Pr(V|t=0)·E[1(S(V)=0)] + (1−α)·Pr(V|t=1)·E[1(S(V)=1)] ].

    Exponential in the jury size — this is the ground truth the
    approximation algorithm (and the NP-hardness discussion of §4.1) is
    measured against, usable for juries up to ~20 workers. *)

val max_jury : int
(** Largest jury size accepted by default (20); the default enumeration
    cap is [2^max_jury] votings.  Passing [?cap] moves the ceiling: a
    jury of [n] workers is feasible iff [2^n <= cap] and [n <= 25] (the
    {!Voting.Vote.enumerate} hard limit). *)

val feasible : ?cap:int -> int -> bool
(** Whether a jury of that size fits the enumeration cap (default
    [2^max_jury]) — the check the [jq] functions enforce, exposed so
    callers can branch instead of catching. *)

val likelihoods : qualities:float array -> Voting.Vote.voting -> float * float
(** [(Pr(V | t = 0), Pr(V | t = 1))] under vote independence (§3.2):
    Pr(V|t=0) = Π q^(1−v)(1−q)^v and symmetrically for t = 1. *)

val jq :
  ?cap:int -> Voting.Strategy.t -> alpha:float -> qualities:float array -> float
(** Exact JQ of a strategy.  @raise Invalid_argument when [2^n] exceeds
    [cap] (default [2^]{!max_jury}), [cap < 1], or alpha lies outside
    [0, 1]. *)

val jq_optimal : alpha:float -> qualities:float array -> float
(** Exact JQ of the optimal strategy without going through the strategy
    interface: Σ_V max(P0(V), P1(V)).  Equal to [jq Bayesian.strategy] —
    a property test pins the equality — but twice as fast, and the form
    used in correctness arguments. *)

val jq_optimal_capped :
  cap:int -> alpha:float -> qualities:float array -> float
(** {!jq_optimal} with the enumeration ceiling at [cap] votings instead
    of [2^max_jury] (no trailing positional argument means the cap
    cannot be an erasable optional here). *)

val jq_table :
  ?cap:int ->
  Voting.Strategy.t ->
  alpha:float ->
  qualities:float array ->
  (Voting.Vote.voting * float * float * float) list
(** Per-voting breakdown [(V, P0(V), P1(V), contribution)] — the rows of
    the paper's Figure 2 worked example. *)
