type stats = {
  value : float;
  upper : float;
  delta : float;
  max_map_size : int;
  pruned_pairs : int;
  error_bound : float;
}

let default_num_buckets = 50

let bucketize ~num_buckets logits =
  if num_buckets <= 0 then invalid_arg "Bucket.bucketize: num_buckets <= 0";
  let upper = Array.fold_left Float.max 0. logits in
  if upper = 0. then (Array.map (fun _ -> 0) logits, 0.)
  else
    let delta = upper /. float_of_int num_buckets in
    (* Nearest bucket: b = ceil(phi/delta - 1/2). *)
    ( Array.map
        (fun phi -> int_of_float (Float.ceil ((phi /. delta) -. 0.5)))
        logits,
      delta )

let validate_quality q =
  if q < 0. || q > 1. || Float.is_nan q then
    invalid_arg "Bucket.estimate: quality outside [0, 1]"

(* Core of Algorithm 1, after prior folding and canonicalization: all
   qualities lie in [0.5, 1). *)
let run ~num_buckets ~pruning qualities =
  let n = Array.length qualities in
  let logits = Array.map Prob.Log_space.logit qualities in
  let buckets, delta = bucketize ~num_buckets logits in
  let upper = Array.fold_left Float.max 0. logits in
  (* Process large buckets first so pruning settles pairs as early as
     possible (Algorithm 1 steps 2-3 sort both arrays in decreasing order). *)
  let order = Array.init n Fun.id in
  Array.sort
    (fun i j ->
      match compare buckets.(j) buckets.(i) with
      | 0 -> compare qualities.(j) qualities.(i)
      | c -> c)
    order;
  let sorted_buckets = Array.map (fun i -> buckets.(i)) order in
  let sorted_qualities = Array.map (fun i -> qualities.(i)) order in
  let aggregate = Prune.aggregate_buckets sorted_buckets in
  let settled = Prob.Kahan.create () in
  let pruned_pairs = ref 0 in
  let max_map_size = ref 1 in
  let current = ref (Hashtbl.create 64) in
  Hashtbl.add !current 0 1.0;
  for i = 0 to n - 1 do
    let next = Hashtbl.create (2 * Hashtbl.length !current) in
    let bump key mass =
      match Hashtbl.find_opt next key with
      | Some prob -> Hashtbl.replace next key (prob +. mass)
      | None -> Hashtbl.add next key mass
    in
    let b = sorted_buckets.(i) and q = sorted_qualities.(i) in
    Hashtbl.iter
      (fun key prob ->
        let verdict =
          if pruning then Prune.prune ~key ~remaining_swing:aggregate.(i)
          else Prune.Keep
        in
        match verdict with
        | Prune.Settled fraction ->
            incr pruned_pairs;
            Prob.Kahan.add settled (fraction *. prob)
        | Prune.Keep ->
            bump (key + b) (prob *. q);
            bump (key - b) (prob *. (1. -. q)))
      !current;
    current := next;
    if Hashtbl.length next > !max_map_size then max_map_size := Hashtbl.length next
  done;
  let acc = Prob.Kahan.create () in
  Prob.Kahan.add acc (Prob.Kahan.total settled);
  Hashtbl.iter
    (fun key prob ->
      if key > 0 then Prob.Kahan.add acc prob
      else if key = 0 then Prob.Kahan.add acc (0.5 *. prob))
    !current;
  let value = Float.min 1. (Float.max 0. (Prob.Kahan.total acc)) in
  {
    value;
    upper;
    delta;
    max_map_size = !max_map_size;
    pruned_pairs = !pruned_pairs;
    error_bound = Bounds.additive_bound ~upper ~num_buckets ~n;
  }

let trivial value =
  {
    value;
    upper = 0.;
    delta = 0.;
    max_map_size = 0;
    pruned_pairs = 0;
    error_bound = 0.;
  }

let estimate_stats ?(num_buckets = default_num_buckets) ?(pruning = true)
    ?(high_quality_shortcut = true) ?(alpha = 0.5) qualities =
  if Array.length qualities = 0 then invalid_arg "Bucket.estimate: empty jury";
  if num_buckets <= 0 then invalid_arg "Bucket.estimate: num_buckets <= 0";
  Array.iter validate_quality qualities;
  if Prior.is_degenerate alpha then trivial 1.0
  else begin
    let folded = Prior.fold ~alpha qualities in
    let canonical = Reinterpret.canonical_qualities folded in
    if Array.exists (fun q -> q = 1.) canonical then trivial 1.0
    else begin
      let top = Array.fold_left Float.max 0.5 canonical in
      if high_quality_shortcut && top > 0.99 then
        (* §4.4: JQ already exceeds this single quality (Lemma 1), which is
           within 1% of 1; avoid bucketing a near-unbounded logit range. *)
        { (trivial top) with error_bound = 1. -. top }
      else run ~num_buckets ~pruning canonical
    end
  end

let estimate ?num_buckets ?pruning ?high_quality_shortcut ?alpha qualities =
  (estimate_stats ?num_buckets ?pruning ?high_quality_shortcut ?alpha qualities)
    .value
