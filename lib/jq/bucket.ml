type stats = {
  value : float;
  upper : float;
  delta : float;
  max_map_size : int;
  pruned_pairs : int;
  error_bound : float;
}

type impl = Flat | Hashtbl

let default_num_buckets = 50

let bucketize ~num_buckets logits =
  if num_buckets <= 0 then invalid_arg "Bucket.bucketize: num_buckets <= 0";
  let upper = Array.fold_left Float.max 0. logits in
  if upper = 0. then (Array.map (fun _ -> 0) logits, 0.)
  else
    let delta = upper /. float_of_int num_buckets in
    (* Nearest bucket: b = ceil(phi/delta - 1/2). *)
    ( Array.map
        (fun phi -> int_of_float (Float.ceil ((phi /. delta) -. 0.5)))
        logits,
      delta )

let validate_quality q =
  if q < 0. || q > 1. || Float.is_nan q then
    invalid_arg "Bucket.estimate: quality outside [0, 1]"

(* In-place co-sort of bk.(0..n-1) and cq.(0..n-1), decreasing by bucket
   then quality (Algorithm 1 steps 2-3 sort both arrays in decreasing
   order so pruning settles pairs as early as possible).  Heapsort on the
   parallel arrays: no allocation, and monomorphic Int/Float comparisons
   instead of polymorphic [compare] in the hot path. *)
let sort_desc bk cq n =
  let less i j =
    let c = Int.compare bk.(i) bk.(j) in
    if c <> 0 then c < 0 else Float.compare cq.(i) cq.(j) < 0
  in
  let swap i j =
    let tb = bk.(i) in
    bk.(i) <- bk.(j);
    bk.(j) <- tb;
    let tq = cq.(i) in
    cq.(i) <- cq.(j);
    cq.(j) <- tq
  in
  let rec sift i len =
    let l = (2 * i) + 1 in
    if l < len then begin
      let c = if l + 1 < len && less l (l + 1) then l + 1 else l in
      if less i c then begin
        swap i c;
        sift c len
      end
    end
  in
  for i = (n / 2) - 1 downto 0 do
    sift i n
  done;
  for last = n - 1 downto 1 do
    swap 0 last;
    sift 0 last
  done;
  let i = ref 0 and j = ref (n - 1) in
  while !i < !j do
    swap !i !j;
    incr i;
    decr j
  done

(* Dense kernel.  Keys live in [-S, S] with S = agg.(0) = sum of all
   buckets, so the whole mass map is a flat array of 2S+1 cells indexed by
   key + S.  [lo, hi] tracks the current support bounds (both bounds
   always straddle 0, so the window never empties); each worker zeroes the
   next window and convolves the two shifted copies into it.  Algorithm
   2's pruning becomes index-range clamping: mass at keys the remaining
   swing r = agg.(i) can no longer flip (key > r settles to fraction 1,
   key < -r to fraction 0) leaves the window before the scan. *)
let run_flat ~ws ~pruning ~n ~bk ~cq ~agg =
  let off = agg.(0) in
  let size = (2 * off) + 1 in
  let a, b = Workspace.dp ws size in
  a.(off) <- 1.0;
  let cur = ref a and nxt = ref b in
  let lo = ref 0 and hi = ref 0 in
  let settled = Prob.Kahan.create () in
  let pruned_pairs = ref 0 in
  let max_cells = ref 1 in
  for i = 0 to n - 1 do
    let c = !cur and out = !nxt in
    let bkt = bk.(i) and q = cq.(i) in
    if pruning then begin
      let r = agg.(i) in
      if !hi > r then begin
        for k = max !lo (r + 1) to !hi do
          let p = c.(k + off) in
          if p <> 0. then begin
            incr pruned_pairs;
            Prob.Kahan.add settled p
          end
        done;
        hi := r
      end;
      if !lo < -r then begin
        for k = !lo to min !hi (-r - 1) do
          if c.(k + off) <> 0. then incr pruned_pairs
        done;
        lo := -r
      end
    end;
    let nlo = !lo - bkt and nhi = !hi + bkt in
    Array.fill out (nlo + off) (nhi - nlo + 1) 0.;
    let cells = ref 0 in
    let q1 = 1. -. q in
    for k = !lo to !hi do
      let p = c.(k + off) in
      if p <> 0. then begin
        let up = k + bkt + off and down = k - bkt + off in
        let u = out.(up) in
        if u = 0. then incr cells;
        out.(up) <- u +. (p *. q);
        let d = out.(down) in
        if d = 0. then incr cells;
        out.(down) <- d +. (p *. q1)
      end
    done;
    cur := out;
    nxt := c;
    lo := nlo;
    hi := nhi;
    if !cells > !max_cells then max_cells := !cells
  done;
  let acc = Prob.Kahan.create () in
  Prob.Kahan.add acc (Prob.Kahan.total settled);
  let c = !cur in
  if !lo <= 0 && 0 <= !hi then begin
    let p = c.(off) in
    if p <> 0. then Prob.Kahan.add acc (0.5 *. p)
  end;
  for k = max 1 !lo to !hi do
    let p = c.(k + off) in
    if p <> 0. then Prob.Kahan.add acc p
  done;
  let value = Float.min 1. (Float.max 0. (Prob.Kahan.total acc)) in
  (value, !max_cells, !pruned_pairs)

(* Reference hashtable kernel, kept behind [~impl:Hashtbl] for
   differential testing against the dense path. *)
let run_hashtbl ~pruning ~n ~bk ~cq ~agg =
  let settled = Prob.Kahan.create () in
  let pruned_pairs = ref 0 in
  let max_map_size = ref 1 in
  let current = ref (Hashtbl.create 64) in
  Hashtbl.add !current 0 1.0;
  for i = 0 to n - 1 do
    let next = Hashtbl.create (2 * Hashtbl.length !current) in
    let bump key mass =
      match Hashtbl.find_opt next key with
      | Some prob -> Hashtbl.replace next key (prob +. mass)
      | None -> Hashtbl.add next key mass
    in
    let b = bk.(i) and q = cq.(i) in
    Hashtbl.iter
      (fun key prob ->
        let verdict =
          if pruning then Prune.prune ~key ~remaining_swing:agg.(i)
          else Prune.Keep
        in
        match verdict with
        | Prune.Settled fraction ->
            incr pruned_pairs;
            Prob.Kahan.add settled (fraction *. prob)
        | Prune.Keep ->
            bump (key + b) (prob *. q);
            bump (key - b) (prob *. (1. -. q)))
      !current;
    current := next;
    if Hashtbl.length next > !max_map_size then max_map_size := Hashtbl.length next
  done;
  let acc = Prob.Kahan.create () in
  Prob.Kahan.add acc (Prob.Kahan.total settled);
  Hashtbl.iter
    (fun key prob ->
      if key > 0 then Prob.Kahan.add acc prob
      else if key = 0 then Prob.Kahan.add acc (0.5 *. prob))
    !current;
  let value = Float.min 1. (Float.max 0. (Prob.Kahan.total acc)) in
  (value, !max_map_size, !pruned_pairs)

(* Core of Algorithm 1, after prior folding and canonicalization: the
   first n cells of cq hold qualities in [0.5, 1) and belong to the
   workspace, so the prologue may sort them in place. *)
let run ~impl ~ws ~num_buckets ~pruning ~n cq =
  let lg = Workspace.floats ws ~slot:1 n in
  let upper = ref 0. in
  for i = 0 to n - 1 do
    let phi = Prob.Log_space.logit cq.(i) in
    lg.(i) <- phi;
    if phi > !upper then upper := phi
  done;
  let upper = !upper in
  let delta = if upper = 0. then 0. else upper /. float_of_int num_buckets in
  let bk = Workspace.ints ws ~slot:0 n in
  for i = 0 to n - 1 do
    bk.(i) <-
      (if delta = 0. then 0
       else int_of_float (Float.ceil ((lg.(i) /. delta) -. 0.5)))
  done;
  sort_desc bk cq n;
  let agg = Workspace.ints ws ~slot:1 n in
  let running = ref 0 in
  for i = n - 1 downto 0 do
    running := !running + bk.(i);
    agg.(i) <- !running
  done;
  let value, max_map_size, pruned_pairs =
    match impl with
    | Flat -> run_flat ~ws ~pruning ~n ~bk ~cq ~agg
    | Hashtbl -> run_hashtbl ~pruning ~n ~bk ~cq ~agg
  in
  {
    value;
    upper;
    delta;
    max_map_size;
    pruned_pairs;
    error_bound = Bounds.additive_bound ~upper ~num_buckets ~n;
  }

let trivial value =
  {
    value;
    upper = 0.;
    delta = 0.;
    max_map_size = 0;
    pruned_pairs = 0;
    error_bound = 0.;
  }

let estimate_stats ?(impl = Flat) ?workspace
    ?(num_buckets = default_num_buckets) ?(pruning = true)
    ?(high_quality_shortcut = true) ?(alpha = 0.5) qualities =
  if Array.length qualities = 0 then invalid_arg "Bucket.estimate: empty jury";
  if num_buckets <= 0 then invalid_arg "Bucket.estimate: num_buckets <= 0";
  Array.iter validate_quality qualities;
  if Prior.is_degenerate alpha then trivial 1.0
  else if alpha < 0. || alpha > 1. || Float.is_nan alpha then
    invalid_arg "Prior.fold: alpha outside [0, 1]"
  else
    Workspace.with_default workspace @@ fun ws ->
    (* Prior folding (Theorem 3) and canonicalization happen straight into
       workspace scratch: no intermediate arrays on the steady-state path. *)
    let n0 = Array.length qualities in
    let extra = if alpha = 0.5 then 0 else 1 in
    let n = n0 + extra in
    let cq = Workspace.floats ws ~slot:0 n in
    for i = 0 to n0 - 1 do
      let q = qualities.(i) in
      cq.(i) <- Float.max q (1. -. q)
    done;
    if extra = 1 then cq.(n0) <- Float.max alpha (1. -. alpha);
    let top = ref 0.5 in
    for i = 0 to n - 1 do
      if cq.(i) > !top then top := cq.(i)
    done;
    let top = !top in
    if top = 1. then trivial 1.0
    else if high_quality_shortcut && top > 0.99 then
      (* §4.4: JQ already exceeds this single quality (Lemma 1), which is
         within 1% of 1; avoid bucketing a near-unbounded logit range. *)
      { (trivial top) with error_bound = 1. -. top }
    else run ~impl ~ws ~num_buckets ~pruning ~n cq

let estimate ?impl ?workspace ?num_buckets ?pruning ?high_quality_shortcut
    ?alpha qualities =
  (estimate_stats ?impl ?workspace ?num_buckets ?pruning ?high_quality_shortcut
     ?alpha qualities)
    .value
