(** The approximation-error guarantee of §4.4.

    With bucket width δ and jury size n, Algorithm 1 satisfies
    ĴQ ≤ JQ  and  JQ − ĴQ < e^(nδ/4) − 1.
    With numBuckets = d·n and the logit range upper < 5 (i.e. no worker
    above quality 0.99), δ < 5/(d·n) and the bound becomes e^(5/(4d)) − 1,
    which is below 1% whenever d ≥ 200. *)

val additive_bound : upper:float -> num_buckets:int -> n:int -> float
(** [e^(n·δ/4) − 1] with δ = upper / num_buckets. *)

val buckets_for_error : upper:float -> n:int -> epsilon:float -> int
(** Minimal numBuckets guaranteeing [additive_bound <= epsilon]:
    ⌈upper·n / (4·ln(1+epsilon))⌉, clamped to at least 1 (denormal inputs
    can round the quotient below 1).  @raise Invalid_argument for
    [epsilon <= 0]. *)

val multiclass_bound :
  upper:float -> num_buckets:int -> n:int -> labels:int -> float
(** Bucketing-error bound for the ℓ-label tuple-key estimator of
    {!Multiclass_jq}: [(ℓ−1) · (e^((n+1)·δ/2) − 1)] with
    δ = upper / num_buckets, clamped to 1.  Each of a voting's ℓ−1
    log-ratio sums is built from n+1 terms rounded to the nearest bucket,
    so a voting can only be misclassified when some dimension's true sum
    lies within (n+1)·δ/2 of its acceptance boundary; the §4.4
    exponential-moment argument bounds that mass per dimension, and the
    dimensions union.  Truncation error (tracked exactly by the kernel)
    is additive on top.  Property-tested against [jq_exact] on small
    instances.
    @raise Invalid_argument for [num_buckets <= 0], [labels < 2] or
    [n < 0]. *)

val recommended_d : int
(** The paper's d ≥ 200 recommendation. *)

val paper_guarantee : float
(** e^(5/800) − 1 ≈ 0.627% — the bound quoted in §4.4 for d = 200. *)

val logit_upper_default : float
(** 5.0 — the "assume upper < 5" cap of §4.4, i.e. quality ≤ ~0.993. *)
