(** Monte-Carlo estimation of Jury Quality.

    A sampling-based alternative to enumeration and bucketing: draw
    (truth, voting) pairs from the generative model of §2.1 and count how
    often the strategy answers correctly.  Unbiased for any strategy —
    including randomized ones — with a Hoeffding confidence interval, at the
    price of O(trials·n) work and sampling noise.  Used as an independent
    cross-check of {!Exact} and {!Bucket} in tests and ablations. *)

type estimate = {
  value : float;           (** Fraction of correct aggregations. *)
  trials : int;
  confidence_99 : float * float;
      (** Two-sided 99% Hoeffding interval: value ± sqrt(ln(2/0.01)/(2·trials)),
          clipped to [0, 1]. *)
}

val jq :
  Prob.Rng.t ->
  trials:int ->
  strategy:Voting.Strategy.t ->
  alpha:float ->
  qualities:float array ->
  estimate
(** Estimate JQ(J, S, α) by simulation.
    @raise Invalid_argument for trials <= 0, alpha outside [0, 1], or
    qualities outside [0, 1]. *)

val jq_bv :
  Prob.Rng.t -> trials:int -> alpha:float -> qualities:float array -> estimate
(** {!jq} specialised to Bayesian Voting. *)

val trials_for_halfwidth : float -> int
(** Trials needed for a 99% Hoeffding half-width of at most the given value:
    ⌈ln(2/0.01) / (2·h²)⌉.  @raise Invalid_argument for h <= 0. *)
