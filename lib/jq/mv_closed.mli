(** Closed-form JQ under Majority Voting.

    Under MV the jury is correct exactly when enough workers vote the truth,
    and the number of truthful votes is Poisson–binomial in the qualities.
    This is the polynomial-time JQ computation available to MVJS ([7],
    discussed in §4.1) — no enumeration, O(n²) via the DP in
    {!Prob.Poisson_binomial}. *)

val jq : alpha:float -> qualities:float array -> float
(** JQ(J, MV, α) for the paper's MV (Example 1: ties on an even jury go to
    answer 1):
    α · Pr(correct ≥ ⌊n/2⌋+1 | t=0) + (1−α) · Pr(correct ≥ ⌈n/2⌉ | t=1).
    For odd juries the two thresholds coincide and the result is
    α-independent. *)

val jq_from_tail : alpha:float -> n:int -> tail:(int -> float) -> float
(** The same formula with the Poisson–binomial tail abstracted out:
    [tail k] must be [Pr(truthful votes >= k)] for a jury of size [n].
    This lets incremental pmf maintainers (e.g.
    {!Prob.Poisson_binomial.Incremental}) reuse the tie-breaking logic
    without materialising a quality array per evaluation. *)

val jq_tie_coin : float array -> float
(** JQ of MV with coin-flip tie-breaking: Pr(correct > n/2) + ½·Pr(tie).
    Independent of the prior (the correct-vote count has the same law under
    both truths). *)

val jq_half : alpha:float -> qualities:float array -> float
(** JQ of Half Voting (ties go to answer 0) — the mirror image of {!jq}. *)
