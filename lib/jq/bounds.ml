let additive_bound ~upper ~num_buckets ~n =
  if num_buckets <= 0 then invalid_arg "Bounds.additive_bound: num_buckets";
  if n <= 0 then 0.
  else
    let delta = upper /. float_of_int num_buckets in
    exp (float_of_int n *. delta /. 4.) -. 1.

let buckets_for_error ~upper ~n ~epsilon =
  if epsilon <= 0. then invalid_arg "Bounds.buckets_for_error: epsilon <= 0";
  if n <= 0 || upper <= 0. then 1
  else
    (* ceil can still land on 0 when upper·n / (4·log1p ε) underflows to a
       denormal (or rounds below 1 ulp); a bucket count of 0 would poison
       every downstream delta, so clamp to the minimum meaningful value. *)
    max 1
      (int_of_float (Float.ceil (upper *. float_of_int n /. (4. *. log1p epsilon))))

let multiclass_bound ~upper ~num_buckets ~n ~labels =
  if num_buckets <= 0 then invalid_arg "Bounds.multiclass_bound: num_buckets";
  if labels < 2 then invalid_arg "Bounds.multiclass_bound: labels";
  if n < 0 then invalid_arg "Bounds.multiclass_bound: n";
  let delta = upper /. float_of_int num_buckets in
  (* n+1 rounded terms per dimension (the prior contributes one), each off
     by at most δ/2; union over the ℓ−1 dimensions. *)
  Float.min 1.
    (float_of_int (labels - 1)
    *. (exp (float_of_int (n + 1) *. delta /. 2.) -. 1.))

let recommended_d = 200
let paper_guarantee = exp (5. /. 800.) -. 1.
let logit_upper_default = 5.
