let aggregate_buckets b =
  let n = Array.length b in
  let aggregate = Array.make n 0 in
  for i = n - 1 downto 0 do
    aggregate.(i) <- b.(i) + (if i = n - 1 then 0 else aggregate.(i + 1))
  done;
  aggregate

type verdict = Keep | Settled of float

let prune ~key ~remaining_swing =
  if key > 0 && key - remaining_swing > 0 then Settled 1.
  else if key < 0 && key + remaining_swing < 0 then Settled 0.
  else Keep

(* ---- Tuple-key generalization (ℓ-label BV) -------------------------- *)

(* The ℓ-label DP carries an (ℓ−1)-digit key; BV accepts the assumed
   truth iff digit m >= floors.(m) in every dimension.  Dimension m's
   remaining swing splits into an upper swing up(i) = Σ_{i'>=i} max_v
   binc and a lower swing dn(i) = Σ_{i'>=i} min_v binc (both over votes
   with positive mass only).  A digit below rej(i) = floors.(m) − up(i)
   can never climb back to the acceptance floor, so its cell is settled
   rejected — Algorithm 2's [Settled 0.] — and dropped outright.  A digit
   at or above cap(i) = floors.(m) − dn(i) can never fall below the
   floor: the dimension is settled accepted ([Settled 1.] componentwise),
   so all such digits are interchangeable and collapse onto cap(i).
   Collapsing is stable: cap(i) + binc_v >= cap(i+1) for every eligible
   vote, so a collapsed digit re-collapses at the next step.  At i = n
   both bounds meet at floors.(m): the surviving frontier holds exactly
   the accepted mass.

   Intersecting [rej, cap] with the forward-propagated reachable hull of
   the initial digit yields the per-step digit ranges the DP actually
   visits. *)

let sat_add ~sat a b =
  let s = a + b in
  if s > sat then sat else if s < -sat then -sat else s

let tuple_ranges ~sat ~nd ~n ~labels ~floors ~binit ~masses ~binc ~lo ~hi =
  (* Extremal bucketized increments of worker i in dimension m over its
     positive-mass votes; every worker has at least one (rows sum to 1).
     Results land in the shared cells below rather than a returned tuple —
     this runs 2·n·nd times per evaluation and must not allocate. *)
  let mn = ref 0 and mx = ref 0 in
  let minmax i m =
    mn := max_int;
    mx := min_int;
    for v = 0 to labels - 1 do
      if masses.((i * labels) + v) > 0. then begin
        let b = binc.((((i * labels) + v) * nd) + m) in
        if b < !mn then mn := b;
        if b > !mx then mx := b
      end
    done
  in
  (* Backward pass: lo rows hold up(i), hi rows hold dn(i); the forward
     pass below consumes row i+1 just before overwriting it with the
     clamped digit range of state i+1, so the two arrays double as their
     own scratch. *)
  for m = 0 to nd - 1 do
    lo.((n * nd) + m) <- 0;
    hi.((n * nd) + m) <- 0
  done;
  for i = n - 1 downto 0 do
    for m = 0 to nd - 1 do
      minmax i m;
      lo.((i * nd) + m) <- sat_add ~sat lo.(((i + 1) * nd) + m) !mx;
      hi.((i * nd) + m) <- sat_add ~sat hi.(((i + 1) * nd) + m) !mn
    done
  done;
  let live = ref true in
  for m = 0 to nd - 1 do
    let rej = floors.(m) - lo.(m) and cap = floors.(m) - hi.(m) in
    if binit.(m) < rej then live := false
    else begin
      let d = if binit.(m) > cap then cap else binit.(m) in
      lo.(m) <- d;
      hi.(m) <- d
    end
  done;
  if !live then
    for i = 0 to n - 1 do
      if !live then
        for m = 0 to nd - 1 do
          minmax i m;
          let rej = floors.(m) - lo.(((i + 1) * nd) + m)
          and cap = floors.(m) - hi.(((i + 1) * nd) + m) in
          let hl = sat_add ~sat lo.((i * nd) + m) !mn
          and hh = sat_add ~sat hi.((i * nd) + m) !mx in
          if hh < rej then live := false
          else begin
            lo.(((i + 1) * nd) + m) <-
              (if hl < rej then rej else if hl > cap then cap else hl);
            hi.(((i + 1) * nd) + m) <- (if hh > cap then cap else hh)
          end
        done
    done;
  !live
