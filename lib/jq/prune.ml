let aggregate_buckets b =
  let n = Array.length b in
  let aggregate = Array.make n 0 in
  for i = n - 1 downto 0 do
    aggregate.(i) <- b.(i) + (if i = n - 1 then 0 else aggregate.(i + 1))
  done;
  aggregate

type verdict = Keep | Settled of float

let prune ~key ~remaining_swing =
  if key > 0 && key - remaining_swing > 0 then Settled 1.
  else if key < 0 && key + remaining_swing < 0 then Settled 0.
  else Keep
