open Voting

let max_jury = 20

let likelihoods ~qualities voting =
  if Array.length qualities <> Array.length voting then
    invalid_arg "Exact.likelihoods: lengths differ";
  let p0 = ref 1. and p1 = ref 1. in
  Array.iteri
    (fun i v ->
      let q = qualities.(i) in
      match (v : Vote.t) with
      | Vote.No ->
          p0 := !p0 *. q;
          p1 := !p1 *. (1. -. q)
      | Vote.Yes ->
          p0 := !p0 *. (1. -. q);
          p1 := !p1 *. q)
    voting;
  (!p0, !p1)

(* [Vote.enumerate] itself refuses n > 25, so a raised cap tops out
   there; the cap's job is bounding the 2^n work a caller signed up
   for. *)
let fits ~cap n = n <= 25 && cap >= 1 && 1 lsl n <= cap
let feasible ?(cap = 1 lsl max_jury) n = fits ~cap n

let check ?(cap = 1 lsl max_jury) ~alpha ~qualities () =
  if alpha < 0. || alpha > 1. || Float.is_nan alpha then
    invalid_arg "Exact.jq: alpha outside [0, 1]";
  if cap < 1 then invalid_arg "Exact.jq: cap must be positive";
  if not (fits ~cap (Array.length qualities)) then
    invalid_arg "Exact.jq: jury too large for exact enumeration"

let jq ?cap strategy ~alpha ~qualities =
  check ?cap ~alpha ~qualities ();
  let n = Array.length qualities in
  let acc = Prob.Kahan.create () in
  Seq.iter
    (fun v ->
      let p0, p1 = likelihoods ~qualities v in
      let h = Strategy.prob_decide_no (Strategy.decide strategy ~alpha ~qualities v) in
      Prob.Kahan.add acc ((alpha *. p0 *. h) +. ((1. -. alpha) *. p1 *. (1. -. h))))
    (Vote.enumerate n);
  Prob.Kahan.total acc

let jq_optimal_capped ~cap ~alpha ~qualities =
  check ~cap ~alpha ~qualities ();
  let n = Array.length qualities in
  let acc = Prob.Kahan.create () in
  Seq.iter
    (fun v ->
      let p0, p1 = likelihoods ~qualities v in
      Prob.Kahan.add acc (Float.max (alpha *. p0) ((1. -. alpha) *. p1)))
    (Vote.enumerate n);
  Prob.Kahan.total acc

let jq_optimal ~alpha ~qualities =
  jq_optimal_capped ~cap:(1 lsl max_jury) ~alpha ~qualities

let jq_table ?cap strategy ~alpha ~qualities =
  check ?cap ~alpha ~qualities ();
  let n = Array.length qualities in
  List.of_seq
    (Seq.map
       (fun v ->
         let p0, p1 = likelihoods ~qualities v in
         let h = Strategy.prob_decide_no (Strategy.decide strategy ~alpha ~qualities v) in
         let contribution =
           (alpha *. p0 *. h) +. ((1. -. alpha) *. p1 *. (1. -. h))
         in
         (v, alpha *. p0, (1. -. alpha) *. p1, contribution))
       (Vote.enumerate n))
