open Voting

let max_jury = 20

let likelihoods ~qualities voting =
  if Array.length qualities <> Array.length voting then
    invalid_arg "Exact.likelihoods: lengths differ";
  let p0 = ref 1. and p1 = ref 1. in
  Array.iteri
    (fun i v ->
      let q = qualities.(i) in
      match (v : Vote.t) with
      | Vote.No ->
          p0 := !p0 *. q;
          p1 := !p1 *. (1. -. q)
      | Vote.Yes ->
          p0 := !p0 *. (1. -. q);
          p1 := !p1 *. q)
    voting;
  (!p0, !p1)

let check ~alpha ~qualities =
  if alpha < 0. || alpha > 1. || Float.is_nan alpha then
    invalid_arg "Exact.jq: alpha outside [0, 1]";
  if Array.length qualities > max_jury then
    invalid_arg "Exact.jq: jury too large for exact enumeration"

let jq strategy ~alpha ~qualities =
  check ~alpha ~qualities;
  let n = Array.length qualities in
  let acc = Prob.Kahan.create () in
  Seq.iter
    (fun v ->
      let p0, p1 = likelihoods ~qualities v in
      let h = Strategy.prob_decide_no (Strategy.decide strategy ~alpha ~qualities v) in
      Prob.Kahan.add acc ((alpha *. p0 *. h) +. ((1. -. alpha) *. p1 *. (1. -. h))))
    (Vote.enumerate n);
  Prob.Kahan.total acc

let jq_optimal ~alpha ~qualities =
  check ~alpha ~qualities;
  let n = Array.length qualities in
  let acc = Prob.Kahan.create () in
  Seq.iter
    (fun v ->
      let p0, p1 = likelihoods ~qualities v in
      Prob.Kahan.add acc (Float.max (alpha *. p0) ((1. -. alpha) *. p1)))
    (Vote.enumerate n);
  Prob.Kahan.total acc

let jq_table strategy ~alpha ~qualities =
  check ~alpha ~qualities;
  let n = Array.length qualities in
  List.of_seq
    (Seq.map
       (fun v ->
         let p0, p1 = likelihoods ~qualities v in
         let h = Strategy.prob_decide_no (Strategy.decide strategy ~alpha ~qualities v) in
         let contribution =
           (alpha *. p0 *. h) +. ((1. -. alpha) *. p1 *. (1. -. h))
         in
         (v, alpha *. p0, (1. -. alpha) *. p1, contribution))
       (Vote.enumerate n))
