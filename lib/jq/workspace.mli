(** Reusable scratch buffers for the dense JQ kernels.

    {!Bucket.run} and {!Multiclass_jq.h_estimate} run their DP over flat
    offset-indexed float arrays instead of hashtables.  A workspace owns
    those arrays (plus the small per-worker int/float scratch the binary
    prologue needs) and grows them monotonically, so repeated evaluations
    at steady state allocate nothing per call.

    Ownership and thread-safety contract: a workspace is single-owner
    mutable state — exactly one evaluation may use it at a time, and it
    must never be shared across domains.  Callers that evaluate from
    several domains keep one workspace per domain ({!Serve.Service} keeps
    one in each executor's per-shard state).  When no workspace is passed
    explicitly, kernels run inside {!with_default}, which reuses the
    calling domain's own workspace and falls back to a fresh one if that
    is mid-use by another sys-thread — always safe, at worst as slow as
    the pre-workspace allocation behaviour.  See docs/perf.md. *)

type t

val create : unit -> t
(** A fresh workspace with small initial buffers. *)

val with_default : t option -> (t -> 'a) -> 'a
(** [with_default explicit f]: run [f] with [explicit]'s workspace when
    given (the caller owns it for the duration), otherwise with the
    calling domain's latched default (domain-local storage; a fresh
    workspace when the default is already in use on this domain). *)

(** {2 Kernel-internal accessors}

    The returned arrays are at least the requested length and hold
    arbitrary stale data — kernels must initialize the range they read.
    The two {!dp} arrays and every slot are distinct, so a kernel may use
    them simultaneously.  Requesting a slot at a larger size replaces its
    buffer with a fresh (uncopied) one, so a kernel that ping-pongs two
    slots must only re-request the slot it is about to overwrite. *)

val dp : t -> int -> float array * float array
(** Ping-pong DP mass buffers, each of length >= the request.  A single
    request grows {e both} arrays, discarding their contents. *)

val floats : t -> slot:int -> int -> float array
(** Kernel float scratch; slots [0 .. 3] are distinct arrays. *)

val ints : t -> slot:int -> int -> int array
(** Kernel int scratch; slots [0 .. 9] are distinct arrays. *)
