(** Handling workers with quality below 0.5 (§3.3).

    A worker of quality q < 0.5 is informative in the negative: BV can
    treat her vote v as the opposite vote 1 − v from a worker of quality
    1 − q > 0.5.  Because JQ sums over all votings and the flip is a
    bijection of the voting space, the reinterpretation leaves
    JQ(J, BV, α) unchanged — so the bucket algorithm, which needs
    φ(q) ≥ 0, first canonicalizes through this module. *)

val canonicalize : float array -> float array * bool array
(** [canonicalize qs] is [(qs', flipped)] with [qs'.(i) = max qs.(i) (1 - qs.(i))]
    and [flipped.(i)] marking the workers whose votes must be inverted when
    the canonical jury is used on real votes.
    @raise Invalid_argument on qualities outside [0, 1]. *)

val canonical_qualities : float array -> float array
(** First component of {!canonicalize}. *)

val apply_flips : bool array -> Voting.Vote.voting -> Voting.Vote.voting
(** Invert the marked votes (fresh array). *)

val flipping_majority : bool array -> Voting.Strategy.t
(** MV run on flip-corrected votes — the §3.3 recipe "for MV, we can regard
    vote 0 as 1 and vote 1 as 0 if the vote is given by a worker whose
    quality is less than 0.5". *)
