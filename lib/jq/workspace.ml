type t = {
  mutable busy : bool;
  mutable dp_a : float array;
  mutable dp_b : float array;
  mutable f0 : float array;
  mutable f1 : float array;
  mutable i0 : int array;
  mutable i1 : int array;
}

let create () =
  {
    busy = false;
    dp_a = Array.make 256 0.;
    dp_b = Array.make 256 0.;
    f0 = Array.make 64 0.;
    f1 = Array.make 64 0.;
    i0 = Array.make 64 0;
    i1 = Array.make 64 0;
  }

(* Grow-only, doubling: amortized O(1) growth, never shrinks, so a warm
   workspace serves any request below its high-water mark without
   allocating. *)
let grown len size = max size (max (2 * len) 256)

let dp t size =
  if size < 0 then invalid_arg "Workspace.dp: negative size";
  if Array.length t.dp_a < size then t.dp_a <- Array.make (grown (Array.length t.dp_a) size) 0.;
  if Array.length t.dp_b < size then t.dp_b <- Array.make (grown (Array.length t.dp_b) size) 0.;
  (t.dp_a, t.dp_b)

let floats t ~slot size =
  match slot with
  | 0 ->
      if Array.length t.f0 < size then t.f0 <- Array.make (grown (Array.length t.f0) size) 0.;
      t.f0
  | 1 ->
      if Array.length t.f1 < size then t.f1 <- Array.make (grown (Array.length t.f1) size) 0.;
      t.f1
  | _ -> invalid_arg "Workspace.floats: slot"

let ints t ~slot size =
  match slot with
  | 0 ->
      if Array.length t.i0 < size then t.i0 <- Array.make (grown (Array.length t.i0) size) 0;
      t.i0
  | 1 ->
      if Array.length t.i1 < size then t.i1 <- Array.make (grown (Array.length t.i1) size) 0;
      t.i1
  | _ -> invalid_arg "Workspace.ints: slot"

(* One workspace per domain, so bare estimate calls reuse buffers without
   any coordination across domains.  Sys-threads of the same domain can
   interleave at safepoints, so the domain workspace carries a busy latch:
   the read-branch-write below has no allocation, call or loop between the
   check and the set, hence no safepoint a context switch could land on,
   and a thread that finds the latch taken (it preempted another mid-
   kernel) falls back to a fresh workspace — slower, never corrupt. *)
let key = Domain.DLS.new_key create

let with_default explicit f =
  match explicit with
  | Some ws -> f ws
  | None ->
      let ws = Domain.DLS.get key in
      if ws.busy then f (create ())
      else begin
        ws.busy <- true;
        Fun.protect ~finally:(fun () -> ws.busy <- false) (fun () -> f ws)
      end
