(* Slot counts cover the heaviest client: the multiclass sparse-frontier
   kernel uses int slots 0-8 and float slots 0-3 simultaneously (see
   Multiclass_jq); the binary kernel uses int slots 0-1 and float slots
   0-1.  Slots are preallocated tiny and grow on demand, so unused slots
   cost a few words each. *)
let int_slots = 10
let float_slots = 4

type t = {
  mutable busy : bool;
  mutable dp_a : float array;
  mutable dp_b : float array;
  float_scratch : float array array; (* slot -> buffer, grown in place *)
  int_scratch : int array array;
}

let create () =
  {
    busy = false;
    dp_a = Array.make 256 0.;
    dp_b = Array.make 256 0.;
    float_scratch = Array.init float_slots (fun _ -> Array.make 64 0.);
    int_scratch = Array.init int_slots (fun _ -> Array.make 64 0);
  }

(* Grow-only, doubling: amortized O(1) growth, never shrinks, so a warm
   workspace serves any request below its high-water mark without
   allocating. *)
let grown len size = max size (max (2 * len) 256)

let dp t size =
  if size < 0 then invalid_arg "Workspace.dp: negative size";
  if Array.length t.dp_a < size then t.dp_a <- Array.make (grown (Array.length t.dp_a) size) 0.;
  if Array.length t.dp_b < size then t.dp_b <- Array.make (grown (Array.length t.dp_b) size) 0.;
  (t.dp_a, t.dp_b)

let floats t ~slot size =
  if slot < 0 || slot >= float_slots then invalid_arg "Workspace.floats: slot";
  let a = t.float_scratch.(slot) in
  if Array.length a < size then begin
    let b = Array.make (grown (Array.length a) size) 0. in
    t.float_scratch.(slot) <- b;
    b
  end
  else a

let ints t ~slot size =
  if slot < 0 || slot >= int_slots then invalid_arg "Workspace.ints: slot";
  let a = t.int_scratch.(slot) in
  if Array.length a < size then begin
    let b = Array.make (grown (Array.length a) size) 0 in
    t.int_scratch.(slot) <- b;
    b
  end
  else a

(* One workspace per domain, so bare estimate calls reuse buffers without
   any coordination across domains.  Sys-threads of the same domain can
   interleave at safepoints, so the domain workspace carries a busy latch:
   the read-branch-write below has no allocation, call or loop between the
   check and the set, hence no safepoint a context switch could land on,
   and a thread that finds the latch taken (it preempted another mid-
   kernel) falls back to a fresh workspace — slower, never corrupt. *)
let key = Domain.DLS.new_key create

let with_default explicit f =
  match explicit with
  | Some ws -> f ws
  | None ->
      let ws = Domain.DLS.get key in
      if ws.busy then f (create ())
      else begin
        ws.busy <- true;
        Fun.protect ~finally:(fun () -> ws.busy <- false) (fun () -> f ws)
      end
