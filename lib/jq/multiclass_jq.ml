open Voting

let prob_voting ~truth ~jury voting =
  let p = ref 1. in
  Array.iteri
    (fun i v -> p := !p *. Workers.Confusion.prob jury.(i) ~truth ~vote:v)
    voting;
  !p

let h_exact ?cap strategy ~truth ~prior ~jury =
  let n = Array.length jury in
  let l = Array.length prior in
  let acc = Prob.Kahan.create () in
  Seq.iter
    (fun v ->
      let mass = prob_voting ~truth ~jury v in
      if mass > 0. then begin
        let outcome = Multiclass.decide strategy ~prior ~jury v in
        Prob.Kahan.add acc (mass *. Multiclass.prob_decide outcome truth)
      end)
    (Multiclass.enumerate_votings ?cap ~labels:l ~n ());
  Prob.Kahan.total acc

let jq_exact ?cap strategy ~prior ~jury =
  let acc = Prob.Kahan.create () in
  Array.iteri
    (fun truth alpha ->
      if alpha > 0. then
        Prob.Kahan.add acc (alpha *. h_exact ?cap strategy ~truth ~prior ~jury))
    prior;
  Prob.Kahan.total acc

(* ---- Iterative tuple-key estimation (BV only) ---------------------- *)

(* Keys saturate so that a label ruled out with certainty (log-ratio +inf)
   stays ruled out under subsequent additions. *)
let saturation = max_int / 4

let saturating_add a b =
  let s = a + b in
  if s > saturation then saturation
  else if s < -saturation then -saturation
  else s

let log_ratio num den =
  if num = 0. then neg_infinity
  else if den = 0. then infinity
  else log (num /. den)

(* Per-worker, per-vote expansion data: the probability of that vote under
   the assumed truth, and the increment vector d.(j) =
   ln C(truth, v) − ln C(j, v); plus the prior's constant vector.  Only
   the hashtable oracle builds these; the flat kernel's prologue writes
   the same numbers straight into workspace scratch. *)
type expansion = { mass : float; increment : float array }

let increments ~truth ~prior ~jury =
  let l = Array.length prior in
  let prior_vec =
    Array.init l (fun j -> if j = truth then 0. else log_ratio prior.(truth) prior.(j))
  in
  let worker_vecs =
    Array.map
      (fun c ->
        Array.init l (fun v ->
            {
              mass = Workers.Confusion.prob c ~truth ~vote:v;
              increment =
                Array.init l (fun j ->
                    if j = truth then 0.
                    else
                      log_ratio
                        (Workers.Confusion.prob c ~truth ~vote:v)
                        (Workers.Confusion.prob c ~truth:j ~vote:v));
            }))
      jury
  in
  (prior_vec, worker_vecs)

let max_abs_finite acc x =
  if Float.is_finite x then Float.max acc (Float.abs x) else acc

let bucketize_value ~delta x =
  if Float.is_nan x then
    (* int_of_float nan is 0: a NaN would silently land in the middle
       bucket and corrupt the classification; probabilities outside
       [0, +inf) are a model bug upstream, so fail loudly. *)
    invalid_arg "Multiclass_jq.bucketize_value: NaN log-ratio"
  else if x = infinity then saturation
  else if x = neg_infinity then -saturation
  else if delta = 0. then 0
  else int_of_float (Float.round (x /. delta))

(* BV (argmax with smallest-label ties) picks [truth] iff the key is
   strictly positive against every smaller label and nonnegative against
   every larger one. *)
let accepts ~truth key =
  let ok = ref true in
  Array.iteri
    (fun j k ->
      if j < truth then begin if k <= 0 then ok := false end
      else if j > truth then if k < 0 then ok := false)
    key;
  !ok

(* Process-wide count of flat-kernel evaluations that fell back to the
   hashtable oracle (frontier past [flat_cell_cap]); CLI front-ends poll
   it to surface the perf cliff once, and serve meters it per shard. *)
let fallback_count = Atomic.make 0
let flat_fallbacks () = Atomic.get fallback_count

(* Reference tuple-key hashtable kernel, kept behind [~impl:Hashtbl] (and
   as the fallback when the flat frontier would be too large). *)
let h_estimate_hashtbl ~num_buckets:_ ~truth ~delta ~prior_vec ~worker_vecs =
  let initial_key = Array.map (fun x -> bucketize_value ~delta x) prior_vec in
  let current = Hashtbl.create 64 in
  (* Keys track the bucketized log-ratios; masses track Pr(V^k | truth),
     so the prior's alpha_truth factor is not part of the mass (H sums
     plain conditional probabilities). *)
  Hashtbl.add current initial_key 1.0;
  let state = ref current in
  Array.iter
    (fun per_vote ->
      let next = Hashtbl.create (2 * Hashtbl.length !state) in
      let bump key mass =
        match Hashtbl.find_opt next key with
        | Some prob -> Hashtbl.replace next key (prob +. mass)
        | None -> Hashtbl.add next key mass
      in
      Hashtbl.iter
        (fun key prob ->
          Array.iter
            (fun e ->
              if e.mass > 0. then begin
                let key' =
                  Array.mapi
                    (fun j k ->
                      saturating_add k (bucketize_value ~delta e.increment.(j)))
                    key
                in
                bump key' (prob *. e.mass)
              end)
            per_vote)
        !state;
      state := next)
    worker_vecs;
  let acc = Prob.Kahan.create () in
  Hashtbl.iter
    (fun key prob -> if accepts ~truth key then Prob.Kahan.add acc prob)
    !state;
  Float.min 1. (Float.max 0. (Prob.Kahan.total acc))

(* ---- Flat sparse-frontier kernel ------------------------------------ *)

(* The DP's live cells (distinct bucketized ℓ−1-digit keys) number at
   most ℓ^i and in practice far fewer, while the dense digit box grows as
   a product over dimensions — so the flat kernel stores the frontier
   sparsely: an open-addressing table over workspace int buffers maps a
   digit tuple to its entry index, and entries keep their digits and mass
   in flat parallel arrays.  No tuple is ever hashed as an array and no
   per-cell allocation happens; a warm workspace serves the whole
   evaluation from its high-water buffers.

   Pruning (Algorithm 2 on tuple keys, {!Prune.tuple_ranges}) clamps each
   dimension's digits to the per-step reachable range intersected with
   the acceptance region: digits that can no longer reach the acceptance
   floor drop their cell outright (settled reject, exact), digits that
   can no longer fall below it collapse onto the range top (settled
   accept, exact).  At the final step both bounds meet at the acceptance
   floor, so the surviving frontier is a single cell holding exactly the
   accepted mass.

   Truncation drops source cells whose mass falls below [trunc_mass]
   before expanding them, and accumulates every dropped mass into the
   returned truncation error — the estimate only ever loses mass, so the
   paper's JQhat <= JQ direction is preserved and the loss is tracked
   exactly. *)

let flat_cell_cap = 1 lsl 22

(* Workspace slot map (one evaluation owns the workspace, see
   {!Workspace}): ints 0 = bucketized increments (n·ℓ·(ℓ−1)), 1/2 =
   per-step digit ranges ((n+1)·(ℓ−1) each), 3 = initial digits, 4 =
   acceptance floors, 5 = target-digit scratch (ℓ−1 each), 6 = probe
   table, 7/8 = ping-pong entry digits; floats 0 = vote masses (n·ℓ),
   1 = raw log-ratios, 2/3 = ping-pong entry masses. *)

let rec pow2 acc n = if acc >= n then acc else pow2 (2 * acc) n

let fnv_prime = 0x100000001B3

let h_estimate_flat ~ws ~truth ~delta ~trunc_mass ~prior ~jury ~masses ~logr =
  let l = Array.length prior in
  let nd = l - 1 in
  let n = Array.length jury in
  let binc = Workspace.ints ws ~slot:0 (n * l * nd) in
  (* [bucketize_value], inlined: a float-argument call per entry would
     box; the arithmetic must stay bitwise identical to the hashtable
     path's calls. *)
  for k = 0 to (n * l * nd) - 1 do
    let x = logr.(k) in
    binc.(k) <-
      (if Float.is_nan x then
         invalid_arg "Multiclass_jq.bucketize_value: NaN log-ratio"
       else if x = infinity then saturation
       else if x = neg_infinity then -saturation
       else if delta = 0. then 0
       else int_of_float (Float.round (x /. delta)))
  done;
  let binit = Workspace.ints ws ~slot:3 nd in
  let floors = Workspace.ints ws ~slot:4 nd in
  for m = 0 to nd - 1 do
    let j = if m < truth then m else m + 1 in
    binit.(m) <- bucketize_value ~delta (log_ratio prior.(truth) prior.(j));
    floors.(m) <- (if j < truth then 1 else 0)
  done;
  let lo = Workspace.ints ws ~slot:1 ((n + 1) * nd) in
  let hi = Workspace.ints ws ~slot:2 ((n + 1) * nd) in
  if
    not
      (Prune.tuple_ranges ~sat:saturation ~nd ~n ~labels:l ~floors ~binit
         ~masses ~binc ~lo ~hi)
  then Some (0., 1, 0, 0.)
  else begin
    let tdig = Workspace.ints ws ~slot:5 nd in
    let cur_digs = ref (Workspace.ints ws ~slot:7 (max 1 nd)) in
    let cur_mass = ref (Workspace.floats ws ~slot:2 1) in
    for m = 0 to nd - 1 do
      (!cur_digs).(m) <- lo.(m)
    done;
    (!cur_mass).(0) <- 1.;
    let a_is_cur = ref true in
    let cnt = ref 1 in
    let pruned = ref 0 and max_frontier = ref 1 in
    let trunc = Prob.Kahan.create () in
    (* Hot-loop state, hoisted: a ref allocated inside the per-cell loops
       would cost a minor block per expansion and defeat the zero-
       steady-state-allocation contract. *)
    let dead = ref false and h = ref 0 in
    let s = ref 0 and placed = ref false in
    try
      for i = 0 to n - 1 do
        if !cnt > 0 then begin
          let lob = (i + 1) * nd in
          let elig = ref 0 in
          for v = 0 to l - 1 do
            if masses.((i * l) + v) > 0. then incr elig
          done;
          (* Upper bound on the next frontier: expansions from the current
             one, the dense box of the pruned ranges (saturated at the
             cap), and the hard cap itself.  Only a cap-clamped bound can
             be exceeded — that overflow aborts to the oracle. *)
          let box = ref 1 in
          for m = 0 to nd - 1 do
            let r = hi.(lob + m) - lo.(lob + m) + 1 in
            if !box > (flat_cell_cap + 1) / r then box := flat_cell_cap + 1
            else box := !box * r
          done;
          let next_cap = min (!cnt * !elig) (min !box flat_cell_cap) in
          let tsize = pow2 2 (2 * next_cap) in
          let mask = tsize - 1 in
          let tbl = Workspace.ints ws ~slot:6 tsize in
          Array.fill tbl 0 tsize 0;
          let nxt_digs =
            Workspace.ints ws
              ~slot:(if !a_is_cur then 8 else 7)
              (max 1 (next_cap * nd))
          in
          let nxt_mass =
            Workspace.floats ws ~slot:(if !a_is_cur then 3 else 2) next_cap
          in
          let ncnt = ref 0 in
          let cd = !cur_digs and cm = !cur_mass in
          for e = 0 to !cnt - 1 do
            let p = cm.(e) in
            if p < trunc_mass then Prob.Kahan.add trunc p
            else begin
              let dbase = e * nd in
              for v = 0 to l - 1 do
                let fm = masses.((i * l) + v) in
                if fm > 0. then begin
                  let bbase = ((i * l) + v) * nd in
                  dead := false;
                  h := 0;
                  for m = 0 to nd - 1 do
                    let d = cd.(dbase + m) + binc.(bbase + m) in
                    let top = hi.(lob + m) in
                    let d = if d > top then top else d in
                    if d < lo.(lob + m) then dead := true;
                    tdig.(m) <- d;
                    h := (!h lxor (d land max_int)) * fnv_prime
                  done;
                  if !dead then incr pruned
                  else begin
                    let mass = p *. fm in
                    s := !h land mask;
                    placed := false;
                    while not !placed do
                      let s0 = tbl.(!s) in
                      if s0 = 0 then begin
                        if !ncnt >= next_cap then raise_notrace Exit;
                        tbl.(!s) <- !ncnt + 1;
                        let nb = !ncnt * nd in
                        for m = 0 to nd - 1 do
                          nxt_digs.(nb + m) <- tdig.(m)
                        done;
                        nxt_mass.(!ncnt) <- mass;
                        incr ncnt;
                        placed := true
                      end
                      else begin
                        let eb = (s0 - 1) * nd in
                        let same = ref true in
                        for m = 0 to nd - 1 do
                          if nxt_digs.(eb + m) <> tdig.(m) then same := false
                        done;
                        if !same then begin
                          nxt_mass.(s0 - 1) <- nxt_mass.(s0 - 1) +. mass;
                          placed := true
                        end
                        else s := (!s + 1) land mask
                      end
                    done
                  end
                end
              done
            end
          done;
          cur_digs := nxt_digs;
          cur_mass := nxt_mass;
          a_is_cur := not !a_is_cur;
          cnt := !ncnt;
          if !ncnt > !max_frontier then max_frontier := !ncnt
        end
      done;
      (* Both pruning bounds meet at the acceptance floor after the last
         worker, so at most one cell survives and it holds exactly the
         accepted mass. *)
      let value =
        if !cnt = 0 then 0.
        else Float.min 1. (Float.max 0. (!cur_mass).(0))
      in
      Some (value, !max_frontier, !pruned, Prob.Kahan.total trunc)
    with Exit -> None
  end

(* Prologue for the flat kernel, entirely on workspace scratch: vote
   masses and raw log-ratios land in float slots 0/1 and the logit range
   [upper] falls out of the same pass — no expansion records, no
   list/array round-trips. *)
let flat_prologue ~truth ~prior ~jury ~masses ~logr =
  let l = Array.length prior in
  let nd = l - 1 in
  let n = Array.length jury in
  let upper = ref 0. in
  for j = 0 to l - 1 do
    if j <> truth then
      upper := max_abs_finite !upper (log_ratio prior.(truth) prior.(j))
  done;
  (* Hot loops read matrix rows directly ([Confusion.unsafe_row]) and
     inline [log_ratio]/[max_abs_finite]: per-entry [prob] calls and
     float-argument helpers would box a float per entry, and this
     prologue runs for every truth of every evaluation. *)
  for i = 0 to n - 1 do
    let c = jury.(i) in
    let row_t = Workers.Confusion.unsafe_row c truth in
    for m = 0 to nd - 1 do
      let j = if m < truth then m else m + 1 in
      let row_j = Workers.Confusion.unsafe_row c j in
      for v = 0 to l - 1 do
        let num = row_t.(v) in
        if m = 0 then masses.((i * l) + v) <- num;
        let den = row_j.(v) in
        let x =
          if num = 0. then neg_infinity
          else if den = 0. then infinity
          else log (num /. den)
        in
        logr.((((i * l) + v) * nd) + m) <- x;
        if Float.is_finite x then begin
          let a = Float.abs x in
          if a > !upper then upper := a
        end
      done
    done
  done;
  !upper

(* One H(truth) evaluation: (value, max_frontier, pruned_cells,
   trunc_error, fallbacks, upper).  The hashtable oracle computes the
   same delta from the same logit range, so the two impls classify every
   voting identically and the bucketing bound applies to both. *)
let h_core ~impl ~ws ~num_buckets ~trunc_mass ~truth ~prior jury =
  let l = Array.length prior in
  if l = 1 then (1., 1, 0, 0., 0, 0.)
    (* degenerate single-label task: BV always answers the only label *)
  else begin
    let n = Array.length jury in
    let oracle ~delta ~fell_back ~upper =
      let prior_vec, worker_vecs = increments ~truth ~prior ~jury in
      ( h_estimate_hashtbl ~num_buckets ~truth ~delta ~prior_vec ~worker_vecs,
        0,
        0,
        0.,
        fell_back,
        upper )
    in
    match impl with
    | Bucket.Hashtbl ->
        let prior_vec, worker_vecs = increments ~truth ~prior ~jury in
        let upper =
          let m = Array.fold_left max_abs_finite 0. prior_vec in
          Array.fold_left
            (fun acc per_vote ->
              Array.fold_left
                (fun acc e -> Array.fold_left max_abs_finite acc e.increment)
                acc per_vote)
            m worker_vecs
        in
        let delta = if upper = 0. then 0. else upper /. float_of_int num_buckets in
        ( h_estimate_hashtbl ~num_buckets ~truth ~delta ~prior_vec ~worker_vecs,
          0,
          0,
          0.,
          0,
          upper )
    | Bucket.Flat -> (
        let nd = l - 1 in
        let masses = Workspace.floats ws ~slot:0 (n * l) in
        let logr = Workspace.floats ws ~slot:1 (n * l * nd) in
        let upper = flat_prologue ~truth ~prior ~jury ~masses ~logr in
        let delta = if upper = 0. then 0. else upper /. float_of_int num_buckets in
        match
          h_estimate_flat ~ws ~truth ~delta ~trunc_mass ~prior ~jury ~masses
            ~logr
        with
        | Some (value, frontier, pruned, trunc) ->
            (value, frontier, pruned, trunc, 0, upper)
        | None ->
            (* Frontier past flat_cell_cap: hand the evaluation to the
               oracle, and meter the cliff (serve reads the per-call
               count, CLIs poll the process-wide one). *)
            Atomic.incr fallback_count;
            oracle ~delta ~fell_back:1 ~upper)
  end

(* ---- Public estimators ---------------------------------------------- *)

type stats = {
  value : float;
  upper : float;
  delta : float;
  max_frontier : int;
  pruned_cells : int;
  trunc_error : float;
  error_bound : float;
  fallbacks : int;
}

let default_trunc_mass = 1e-12

let validate_common ~num_buckets ~trunc_mass ~what =
  if num_buckets <= 0 then invalid_arg (what ^ ": num_buckets");
  if trunc_mass < 0. || Float.is_nan trunc_mass then
    invalid_arg (what ^ ": trunc_mass")

let h_estimate ?(impl = Bucket.Flat) ?workspace
    ?(num_buckets = Bucket.default_num_buckets)
    ?(trunc_mass = default_trunc_mass) ~truth ~prior jury =
  let l = Array.length prior in
  if truth < 0 || truth >= l then invalid_arg "Multiclass_jq.h_estimate: truth";
  validate_common ~num_buckets ~trunc_mass ~what:"Multiclass_jq.h_estimate";
  if prior.(truth) = 0. then 0.
  else
    Workspace.with_default workspace (fun ws ->
        let value, _, _, _, _, _ =
          h_core ~impl ~ws ~num_buckets ~trunc_mass ~truth ~prior jury
        in
        value)

let estimate_bv_stats ?(impl = Bucket.Flat) ?workspace
    ?(num_buckets = Bucket.default_num_buckets)
    ?(trunc_mass = default_trunc_mass) ~prior jury =
  validate_common ~num_buckets ~trunc_mass ~what:"Multiclass_jq.estimate_bv";
  let l = Array.length prior in
  let n = Array.length jury in
  let acc = Prob.Kahan.create () in
  let bound = Prob.Kahan.create () in
  let trunc_total = Prob.Kahan.create () in
  let upper_max = ref 0. in
  let max_frontier = ref 0 and pruned_cells = ref 0 and fallbacks = ref 0 in
  Workspace.with_default workspace (fun ws ->
      Array.iteri
        (fun truth alpha ->
          if alpha > 0. then begin
            let value, frontier, pruned, trunc, fell_back, upper =
              h_core ~impl ~ws ~num_buckets ~trunc_mass ~truth ~prior jury
            in
            Prob.Kahan.add acc (alpha *. value);
            if l >= 2 then
              Prob.Kahan.add bound
                (alpha *. Bounds.multiclass_bound ~upper ~num_buckets ~n ~labels:l);
            Prob.Kahan.add trunc_total (alpha *. trunc);
            if upper > !upper_max then upper_max := upper;
            if frontier > !max_frontier then max_frontier := frontier;
            pruned_cells := !pruned_cells + pruned;
            fallbacks := !fallbacks + fell_back
          end)
        prior);
  let trunc_error = Prob.Kahan.total trunc_total in
  let upper = !upper_max in
  {
    value = Prob.Kahan.total acc;
    upper;
    delta = (if upper = 0. then 0. else upper /. float_of_int num_buckets);
    max_frontier = !max_frontier;
    pruned_cells = !pruned_cells;
    trunc_error;
    error_bound = Prob.Kahan.total bound +. trunc_error;
    fallbacks = !fallbacks;
  }

let estimate_bv ?impl ?workspace ?num_buckets ?trunc_mass ~prior jury =
  (estimate_bv_stats ?impl ?workspace ?num_buckets ?trunc_mass ~prior jury)
    .value
