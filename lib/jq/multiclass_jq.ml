open Voting

let prob_voting ~truth ~jury voting =
  let p = ref 1. in
  Array.iteri
    (fun i v -> p := !p *. Workers.Confusion.prob jury.(i) ~truth ~vote:v)
    voting;
  !p

let h_exact strategy ~truth ~prior ~jury =
  let n = Array.length jury in
  let l = Array.length prior in
  let acc = Prob.Kahan.create () in
  Seq.iter
    (fun v ->
      let mass = prob_voting ~truth ~jury v in
      if mass > 0. then begin
        let outcome = Multiclass.decide strategy ~prior ~jury v in
        Prob.Kahan.add acc (mass *. Multiclass.prob_decide outcome truth)
      end)
    (Multiclass.enumerate_votings ~labels:l ~n);
  Prob.Kahan.total acc

let jq_exact strategy ~prior ~jury =
  let acc = Prob.Kahan.create () in
  Array.iteri
    (fun truth alpha ->
      if alpha > 0. then
        Prob.Kahan.add acc (alpha *. h_exact strategy ~truth ~prior ~jury))
    prior;
  Prob.Kahan.total acc

(* ---- Iterative tuple-key estimation (BV only) ---------------------- *)

(* Keys saturate so that a label ruled out with certainty (log-ratio +inf)
   stays ruled out under subsequent additions. *)
let saturation = max_int / 4

let saturating_add a b =
  let s = a + b in
  if s > saturation then saturation
  else if s < -saturation then -saturation
  else s

let log_ratio num den =
  if num = 0. then neg_infinity
  else if den = 0. then infinity
  else log (num /. den)

(* Per-worker, per-vote expansion data: the probability of that vote under
   the assumed truth, and the increment vector d.(j) =
   ln C(truth, v) − ln C(j, v); plus the prior's constant vector. *)
type expansion = { mass : float; increment : float array }

let increments ~truth ~prior ~jury =
  let l = Array.length prior in
  let prior_vec =
    Array.init l (fun j -> if j = truth then 0. else log_ratio prior.(truth) prior.(j))
  in
  let worker_vecs =
    Array.map
      (fun c ->
        Array.init l (fun v ->
            {
              mass = Workers.Confusion.prob c ~truth ~vote:v;
              increment =
                Array.init l (fun j ->
                    if j = truth then 0.
                    else
                      log_ratio
                        (Workers.Confusion.prob c ~truth ~vote:v)
                        (Workers.Confusion.prob c ~truth:j ~vote:v));
            }))
      jury
  in
  (prior_vec, worker_vecs)

let max_abs_finite acc x =
  if Float.is_finite x then Float.max acc (Float.abs x) else acc

let bucketize_value ~delta x =
  if x = infinity then saturation
  else if x = neg_infinity then -saturation
  else if delta = 0. then 0
  else int_of_float (Float.round (x /. delta))

(* BV (argmax with smallest-label ties) picks [truth] iff the key is
   strictly positive against every smaller label and nonnegative against
   every larger one. *)
let accepts ~truth key =
  let ok = ref true in
  Array.iteri
    (fun j k ->
      if j < truth then begin if k <= 0 then ok := false end
      else if j > truth then if k < 0 then ok := false)
    key;
  !ok

let h_estimate ?(num_buckets = Bucket.default_num_buckets) ~truth ~prior jury =
  let l = Array.length prior in
  if truth < 0 || truth >= l then invalid_arg "Multiclass_jq.h_estimate: truth";
  if num_buckets <= 0 then invalid_arg "Multiclass_jq.h_estimate: num_buckets";
  if prior.(truth) = 0. then 0.
  else begin
    let prior_vec, worker_vecs = increments ~truth ~prior ~jury in
    let upper =
      let m = Array.fold_left max_abs_finite 0. prior_vec in
      Array.fold_left
        (fun acc per_vote ->
          Array.fold_left
            (fun acc e -> Array.fold_left max_abs_finite acc e.increment)
            acc per_vote)
        m worker_vecs
    in
    let delta = if upper = 0. then 0. else upper /. float_of_int num_buckets in
    let initial_key = Array.map (fun x -> bucketize_value ~delta x) prior_vec in
    let current = Hashtbl.create 64 in
    (* Keys track the bucketized log-ratios; masses track Pr(V^k | truth),
       so the prior's alpha_truth factor is not part of the mass (H sums
       plain conditional probabilities). *)
    Hashtbl.add current initial_key 1.0;
    let state = ref current in
    Array.iter
      (fun per_vote ->
        let next = Hashtbl.create (2 * Hashtbl.length !state) in
        let bump key mass =
          match Hashtbl.find_opt next key with
          | Some prob -> Hashtbl.replace next key (prob +. mass)
          | None -> Hashtbl.add next key mass
        in
        Hashtbl.iter
          (fun key prob ->
            Array.iter
              (fun e ->
                if e.mass > 0. then begin
                  let key' =
                    Array.mapi
                      (fun j k ->
                        saturating_add k (bucketize_value ~delta e.increment.(j)))
                      key
                  in
                  bump key' (prob *. e.mass)
                end)
              per_vote)
          !state;
        state := next)
      worker_vecs;
    let acc = Prob.Kahan.create () in
    Hashtbl.iter
      (fun key prob -> if accepts ~truth key then Prob.Kahan.add acc prob)
      !state;
    Float.min 1. (Float.max 0. (Prob.Kahan.total acc))
  end

let estimate_bv ?num_buckets ~prior jury =
  let acc = Prob.Kahan.create () in
  Array.iteri
    (fun truth alpha ->
      if alpha > 0. then
        Prob.Kahan.add acc (alpha *. h_estimate ?num_buckets ~truth ~prior jury))
    prior;
  Prob.Kahan.total acc
