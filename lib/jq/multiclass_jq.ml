open Voting

let prob_voting ~truth ~jury voting =
  let p = ref 1. in
  Array.iteri
    (fun i v -> p := !p *. Workers.Confusion.prob jury.(i) ~truth ~vote:v)
    voting;
  !p

let h_exact strategy ~truth ~prior ~jury =
  let n = Array.length jury in
  let l = Array.length prior in
  let acc = Prob.Kahan.create () in
  Seq.iter
    (fun v ->
      let mass = prob_voting ~truth ~jury v in
      if mass > 0. then begin
        let outcome = Multiclass.decide strategy ~prior ~jury v in
        Prob.Kahan.add acc (mass *. Multiclass.prob_decide outcome truth)
      end)
    (Multiclass.enumerate_votings ~labels:l ~n);
  Prob.Kahan.total acc

let jq_exact strategy ~prior ~jury =
  let acc = Prob.Kahan.create () in
  Array.iteri
    (fun truth alpha ->
      if alpha > 0. then
        Prob.Kahan.add acc (alpha *. h_exact strategy ~truth ~prior ~jury))
    prior;
  Prob.Kahan.total acc

(* ---- Iterative tuple-key estimation (BV only) ---------------------- *)

(* Keys saturate so that a label ruled out with certainty (log-ratio +inf)
   stays ruled out under subsequent additions. *)
let saturation = max_int / 4

let saturating_add a b =
  let s = a + b in
  if s > saturation then saturation
  else if s < -saturation then -saturation
  else s

let log_ratio num den =
  if num = 0. then neg_infinity
  else if den = 0. then infinity
  else log (num /. den)

(* Per-worker, per-vote expansion data: the probability of that vote under
   the assumed truth, and the increment vector d.(j) =
   ln C(truth, v) − ln C(j, v); plus the prior's constant vector. *)
type expansion = { mass : float; increment : float array }

let increments ~truth ~prior ~jury =
  let l = Array.length prior in
  let prior_vec =
    Array.init l (fun j -> if j = truth then 0. else log_ratio prior.(truth) prior.(j))
  in
  let worker_vecs =
    Array.map
      (fun c ->
        Array.init l (fun v ->
            {
              mass = Workers.Confusion.prob c ~truth ~vote:v;
              increment =
                Array.init l (fun j ->
                    if j = truth then 0.
                    else
                      log_ratio
                        (Workers.Confusion.prob c ~truth ~vote:v)
                        (Workers.Confusion.prob c ~truth:j ~vote:v));
            }))
      jury
  in
  (prior_vec, worker_vecs)

let max_abs_finite acc x =
  if Float.is_finite x then Float.max acc (Float.abs x) else acc

let bucketize_value ~delta x =
  if x = infinity then saturation
  else if x = neg_infinity then -saturation
  else if delta = 0. then 0
  else int_of_float (Float.round (x /. delta))

(* BV (argmax with smallest-label ties) picks [truth] iff the key is
   strictly positive against every smaller label and nonnegative against
   every larger one. *)
let accepts ~truth key =
  let ok = ref true in
  Array.iteri
    (fun j k ->
      if j < truth then begin if k <= 0 then ok := false end
      else if j > truth then if k < 0 then ok := false)
    key;
  !ok

(* Reference tuple-key hashtable kernel, kept behind [~impl:Hashtbl] (and
   as the fallback when the flat key space would be too large). *)
let h_estimate_hashtbl ~num_buckets:_ ~truth ~delta ~prior_vec ~worker_vecs =
  let initial_key = Array.map (fun x -> bucketize_value ~delta x) prior_vec in
  let current = Hashtbl.create 64 in
  (* Keys track the bucketized log-ratios; masses track Pr(V^k | truth),
     so the prior's alpha_truth factor is not part of the mass (H sums
     plain conditional probabilities). *)
  Hashtbl.add current initial_key 1.0;
  let state = ref current in
  Array.iter
    (fun per_vote ->
      let next = Hashtbl.create (2 * Hashtbl.length !state) in
      let bump key mass =
        match Hashtbl.find_opt next key with
        | Some prob -> Hashtbl.replace next key (prob +. mass)
        | None -> Hashtbl.add next key mass
      in
      Hashtbl.iter
        (fun key prob ->
          Array.iter
            (fun e ->
              if e.mass > 0. then begin
                let key' =
                  Array.mapi
                    (fun j k ->
                      saturating_add k (bucketize_value ~delta e.increment.(j)))
                    key
                in
                bump key' (prob *. e.mass)
              end)
            per_vote)
        !state;
      state := next)
    worker_vecs;
  let acc = Prob.Kahan.create () in
  Hashtbl.iter
    (fun key prob -> if accepts ~truth key then Prob.Kahan.add acc prob)
    !state;
  Float.min 1. (Float.max 0. (Prob.Kahan.total acc))

(* ---- Flat mixed-radix kernel --------------------------------------- *)

(* The ℓ-tuple key (with the truth component dropped — it is identically
   0) flattens to a single mixed-radix integer.  Dimension m covers label
   [label_of_dim m]; its digit saturates at S_m = 1 + |finite initial
   bucket| + Σ_i max finite |increment bucket|, which is sign-equivalent
   to the hashtable kernel's max_int/4 saturation: a finite-only path
   never reaches ±S_m, and any path through a +inf increment (mass > 0
   rules out −inf) stays ≥ 1 under later finite decrements, so both
   kernels classify every voting identically and differ only in float
   summation order. *)

let flat_cell_cap = 1 lsl 22

(* Per-worker, per-vote data with bucketized increments over the ℓ−1
   varying dimensions; +inf increments keep [saturation] as a marker and
   clamp to S_m at add time. *)
type flat_expansion = { fmass : float; binc : int array }

let h_estimate_flat ~ws ~truth ~delta ~prior_vec ~worker_vecs =
  let l = Array.length prior_vec in
  let nd = l - 1 in
  if nd = 0 then None (* degenerate single-label task: use the oracle *)
  else begin
    let label_of_dim = Array.init nd (fun m -> if m < truth then m else m + 1) in
    let n = Array.length worker_vecs in
    (* Bucketized initial key and per-worker expansions over varying dims. *)
    let binit =
      Array.init nd (fun m -> bucketize_value ~delta prior_vec.(label_of_dim.(m)))
    in
    let expansions =
      Array.map
        (fun per_vote ->
          let elig = Array.of_list
              (List.filter (fun e -> e.mass > 0.) (Array.to_list per_vote))
          in
          Array.map
            (fun e ->
              {
                fmass = e.mass;
                binc =
                  Array.init nd (fun m ->
                      bucketize_value ~delta e.increment.(label_of_dim.(m)));
              })
            elig)
        worker_vecs
    in
    (* Per-dimension saturating bound. *)
    let sats =
      Array.init nd (fun m ->
          let s = ref 1 in
          if binit.(m) <> saturation && binit.(m) <> -saturation then
            s := !s + abs binit.(m);
          Array.iter
            (fun per_vote ->
              let worst = ref 0 in
              Array.iter
                (fun e ->
                  let b = e.binc.(m) in
                  if b <> saturation && b <> -saturation && abs b > !worst then
                    worst := abs b)
                per_vote;
              s := !s + !worst)
            expansions;
          !s)
    in
    let radix = Array.map (fun s -> (2 * s) + 1) sats in
    let size =
      Array.fold_left
        (fun acc r -> if acc < 0 || acc > flat_cell_cap / r then -1 else acc * r)
        1 radix
    in
    if size < 0 || size > flat_cell_cap then None
    else begin
      let strides = Array.make nd 1 in
      for m = nd - 2 downto 0 do
        strides.(m) <- strides.(m + 1) * radix.(m + 1)
      done;
      let clamp m k =
        if k > sats.(m) then sats.(m)
        else if k < -sats.(m) then -sats.(m)
        else k
      in
      let a, b = Workspace.dp ws size in
      let cur = ref a and nxt = ref b in
      let dlo = Array.init nd (fun m -> clamp m binit.(m)) in
      let dhi = Array.copy dlo in
      let idx0 = ref 0 in
      for m = 0 to nd - 1 do
        idx0 := !idx0 + ((dlo.(m) + sats.(m)) * strides.(m))
      done;
      a.(!idx0) <- 1.0;
      let digits = Array.make nd 0 in
      for i = 0 to n - 1 do
        let per_vote = expansions.(i) in
        let c = !cur and out = !nxt in
        (* Next window bounds: clamp is monotone, so per-vote images of the
           current box stay inside the hull of the shifted bounds. *)
        let nlo = Array.make nd max_int and nhi = Array.make nd min_int in
        for m = 0 to nd - 1 do
          Array.iter
            (fun e ->
              let tl = clamp m (dlo.(m) + e.binc.(m))
              and th = clamp m (dhi.(m) + e.binc.(m)) in
              if tl < nlo.(m) then nlo.(m) <- tl;
              if th > nhi.(m) then nhi.(m) <- th)
            per_vote
        done;
        let rec fill m base =
          if m = nd - 1 then
            Array.fill out (base + nlo.(m) + sats.(m)) (nhi.(m) - nlo.(m) + 1) 0.
          else
            for d = nlo.(m) to nhi.(m) do
              fill (m + 1) (base + ((d + sats.(m)) * strides.(m)))
            done
        in
        fill 0 0;
        let nvotes = Array.length per_vote in
        let rec scan m base =
          if m = nd then begin
            let p = c.(base) in
            if p <> 0. then
              for v = 0 to nvotes - 1 do
                let e = per_vote.(v) in
                let t = ref 0 in
                for m' = 0 to nd - 1 do
                  let kk = clamp m' (digits.(m') + e.binc.(m')) in
                  t := !t + ((kk + sats.(m')) * strides.(m'))
                done;
                out.(!t) <- out.(!t) +. (p *. e.fmass)
              done
          end
          else
            for d = dlo.(m) to dhi.(m) do
              digits.(m) <- d;
              scan (m + 1) (base + ((d + sats.(m)) * strides.(m)))
            done
        in
        scan 0 0;
        cur := out;
        nxt := c;
        Array.blit nlo 0 dlo 0 nd;
        Array.blit nhi 0 dhi 0 nd
      done;
      (* BV accepts truth on the contiguous sub-box: digit > 0 against
         smaller labels, >= 0 against larger ones. *)
      let alo =
        Array.init nd (fun m ->
            let floor = if label_of_dim.(m) < truth then 1 else 0 in
            max dlo.(m) floor)
      in
      let empty = ref false in
      for m = 0 to nd - 1 do
        if alo.(m) > dhi.(m) then empty := true
      done;
      if !empty then Some 0.
      else begin
        let acc = Prob.Kahan.create () in
        let c = !cur in
        let rec sum m base =
          if m = nd then begin
            let p = c.(base) in
            if p <> 0. then Prob.Kahan.add acc p
          end
          else
            for d = alo.(m) to dhi.(m) do
              sum (m + 1) (base + ((d + sats.(m)) * strides.(m)))
            done
        in
        sum 0 0;
        Some (Float.min 1. (Float.max 0. (Prob.Kahan.total acc)))
      end
    end
  end

let h_estimate ?(impl = Bucket.Flat) ?workspace
    ?(num_buckets = Bucket.default_num_buckets) ~truth ~prior jury =
  let l = Array.length prior in
  if truth < 0 || truth >= l then invalid_arg "Multiclass_jq.h_estimate: truth";
  if num_buckets <= 0 then invalid_arg "Multiclass_jq.h_estimate: num_buckets";
  if prior.(truth) = 0. then 0.
  else begin
    let prior_vec, worker_vecs = increments ~truth ~prior ~jury in
    let upper =
      let m = Array.fold_left max_abs_finite 0. prior_vec in
      Array.fold_left
        (fun acc per_vote ->
          Array.fold_left
            (fun acc e -> Array.fold_left max_abs_finite acc e.increment)
            acc per_vote)
        m worker_vecs
    in
    let delta = if upper = 0. then 0. else upper /. float_of_int num_buckets in
    let flat_result =
      match impl with
      | Bucket.Hashtbl -> None
      | Bucket.Flat ->
          Workspace.with_default workspace (fun ws ->
              h_estimate_flat ~ws ~truth ~delta ~prior_vec ~worker_vecs)
    in
    match flat_result with
    | Some v -> v
    | None -> h_estimate_hashtbl ~num_buckets ~truth ~delta ~prior_vec ~worker_vecs
  end

let estimate_bv ?impl ?workspace ?num_buckets ~prior jury =
  let acc = Prob.Kahan.create () in
  Array.iteri
    (fun truth alpha ->
      if alpha > 0. then
        Prob.Kahan.add acc
          (alpha *. h_estimate ?impl ?workspace ?num_buckets ~truth ~prior jury))
    prior;
  Prob.Kahan.total acc
