(** Algorithm 2: the pruning companion to EstimateJQ.

    During the iterative key expansion, a partial key whose sign can no
    longer change — because the remaining workers' buckets cannot overcome
    it — is settled immediately: a permanently positive key contributes its
    whole probability mass (completions of a prefix have total conditional
    mass 1), a permanently negative key contributes nothing. *)

val aggregate_buckets : int array -> int array
(** [aggregate_buckets b] is the suffix-sum array:
    [aggregate.(i) = b.(i) + b.(i+1) + ... + b.(n-1)] — the maximum swing
    the workers from position [i] on can still apply to a key. *)

type verdict =
  | Keep                   (** Sign still undecided; keep expanding. *)
  | Settled of float       (** Contribution is decided: this fraction of the
                               pair's probability mass joins the estimate. *)

val prune : key:int -> remaining_swing:int -> verdict
(** Decision rule of Algorithm 2's [Prune]:
    [key > 0] and [key − remaining_swing > 0] → [Settled 1.];
    [key < 0] and [key + remaining_swing < 0] → [Settled 0.];
    otherwise [Keep]. *)

val tuple_ranges :
  sat:int ->
  nd:int ->
  n:int ->
  labels:int ->
  floors:int array ->
  binit:int array ->
  masses:float array ->
  binc:int array ->
  lo:int array ->
  hi:int array ->
  bool
(** Algorithm 2 generalized to the ℓ-label tuple keys of
    {!Multiclass_jq}: per-dimension reachable digit ranges, clamped by
    settled-accept/settled-reject bounds.

    Inputs describe the DP over [nd = ℓ−1] varying dimensions and [n]
    workers: [floors.(m)] is the acceptance floor of dimension [m] (1
    against smaller labels, 0 against larger), [binit.(m)] the bucketized
    initial digit, [masses.((i·labels)+v)] the vote masses Pr(v | truth)
    and [binc.(((i·labels)+v)·nd+m)] the bucketized increments (votes
    with mass 0 are ignored).  Swing sums saturate at ±[sat], the
    kernels' ±∞ marker.

    On return, [lo]/[hi] (both of length at least [(n+1)·nd], used as
    their own scratch) hold for every DP state [i ∈ 0..n] the inclusive
    digit range [lo.(i·nd+m) .. hi.(i·nd+m)] the kernel must visit: a
    digit that would leave the range downward is settled rejected (its
    cell is dropped — it can never reach the floor again), and digits
    above the range collapse onto [hi] (settled accepted in that
    dimension).  At [i = n] the range is the single digit [floors.(m)],
    so the final frontier holds exactly the accepted mass.  Returns
    [false] when every completion is already settled rejected (the
    estimate is 0 and the DP can be skipped). *)
