(** Algorithm 2: the pruning companion to EstimateJQ.

    During the iterative key expansion, a partial key whose sign can no
    longer change — because the remaining workers' buckets cannot overcome
    it — is settled immediately: a permanently positive key contributes its
    whole probability mass (completions of a prefix have total conditional
    mass 1), a permanently negative key contributes nothing. *)

val aggregate_buckets : int array -> int array
(** [aggregate_buckets b] is the suffix-sum array:
    [aggregate.(i) = b.(i) + b.(i+1) + ... + b.(n-1)] — the maximum swing
    the workers from position [i] on can still apply to a key. *)

type verdict =
  | Keep                   (** Sign still undecided; keep expanding. *)
  | Settled of float       (** Contribution is decided: this fraction of the
                               pair's probability mass joins the estimate. *)

val prune : key:int -> remaining_swing:int -> verdict
(** Decision rule of Algorithm 2's [Prune]:
    [key > 0] and [key − remaining_swing > 0] → [Settled 1.];
    [key < 0] and [key + remaining_swing < 0] → [Settled 0.];
    otherwise [Keep]. *)
