(** The NP-hardness reduction behind Theorem 2, executable.

    §4.1 proves that computing JQ(J, BV, 0.5) is NP-hard by reducing the
    Partition problem to it: given positive integers a_1..a_n, build a jury
    whose i-th worker has logit φ(q_i) proportional to a_i, i.e.
    q_i = σ(a_i·δ).  Then R(V) = Σ (1 − 2 v_i)·φ(q_i) = δ·Σ ± a_i, so some
    voting V has R(V) = 0 — the case Definition 3 must split in half —
    exactly when the multiset admits an equal-sum partition.  Detecting
    whether that "tie mass" is zero is therefore as hard as Partition.

    This module constructs the reduction and exposes both sides: the
    tie-mass detector driven by the same signed-sum dynamic programming the
    bucket algorithm uses, and an independent subset-sum decision procedure,
    so tests can confirm they always agree. *)

val jury_of_instance : ?delta:float -> int list -> float array
(** [jury_of_instance [a1; ...; an]] is the quality vector
    [q_i = 1 / (1 + exp(−a_i·δ))] (δ defaults to 1e-3; any positive value
    yields the same signed-sum structure).
    @raise Invalid_argument on an empty list or non-positive integers. *)

val tie_mass : int list -> float
(** The probability mass Pr(V | t = 0) carried by votings with R(V) = 0
    for the constructed jury — strictly positive iff the instance
    partitions.  Computed by the exact signed-sum map (no bucketing error:
    the keys are the integers themselves). *)

val partitionable_via_jq : int list -> bool
(** [tie_mass instance > 0]. *)

val partitionable_direct : int list -> bool
(** Classic pseudo-polynomial subset-sum decision: is there a subset whose
    sum is half the total?  (False when the total is odd.) *)

val signed_sums : int list -> (int * float) list
(** All reachable signed sums Σ ± a_i with the probability mass of the
    corresponding votings under t = 0, sorted by key — the exact analogue
    of Algorithm 1's (key, prob) map. *)
