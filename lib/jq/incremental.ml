(* Anytime JQ with worker removal.

   The per-worker DP step of Algorithm 1 is a linear convolution of the
   (key, prob) map with the kernel {+b ↦ q, −b ↦ 1−q}.  That step is
   invertible as long as q ≠ 0.5: processing keys in ascending order,
     new[k] = q·prev[k−b] + (1−q)·prev[k+b]
   determines prev[k+b] once prev[k−b] is known, and the smallest key of
   [new] has no prev[k−b] term.  [remove_worker] applies that inverse in
   O(span); numerical drift is guarded by a mass-renormalization check and
   a periodic full rebuild from the tracked worker multiset.

   Representation: the keys reachable after convolving buckets b_1..b_m lie
   in the contiguous range [−Σb_i, Σb_i], so the map is a dense float array
   indexed by key + capacity rather than a hash table — convolution,
   deconvolution and the value sum are straight array passes with no
   allocation beyond occasional doubling, which is what makes a probe on
   the annealing hot path cheaper than a from-scratch Bucket.run. *)

type entry = { bucket : int; q : float }

type t = {
  delta : float;              (* Fixed bucket width: phi(0.99) / num_buckets. *)
  upper : float;              (* The global logit cap phi(0.99). *)
  num_buckets : int;
  mutable dp : float array;   (* Mass at key k lives at dp.(k + cap). *)
  mutable scratch : float array;  (* Swap buffer for convolution passes. *)
  mutable cap : int;          (* Center offset; arrays have 2*cap+1 cells. *)
  mutable span : int;         (* Current key support: [-span, span]. *)
  mutable pos : float;        (* Σ_{k>0} dp[k] + dp[0]/2, maintained during
                                 each convolution pass so [value] is O(1). *)
  mutable n : int;            (* Jury size: adds minus removes, excluding the prior. *)
  mutable coins : int;        (* q = 0.5 members: never convolved. *)
  mutable certain_workers : int;  (* q ∈ {0, 1} members: JQ = 1 while any is present. *)
  mutable highs : float list; (* q > 0.99 members: floor the value instead of
                                 bucketing a near-unbounded logit (§4.4). *)
  mutable entries : entry list;   (* Convolved (or pending) logits, newest first. *)
  mutable stale : bool;       (* Map diverged from [entries]; rebuild before reading. *)
  mutable removals : int;     (* Deconvolutions since the last rebuild. *)
  mutable rebuilds : int;
  alpha : float;
  prior : entry option;       (* The Theorem-3 pseudo-worker, when alpha /= 0.5. *)
  prior_high : float option;  (* ...unless the prior itself exceeds the cap. *)
  prior_certain : bool;
}

let rebuild_period = 512

(* Reinterpretation first (sub-0.5 workers flip), then bucketize against the
   fixed width.  Only called for reinterpreted q <= 0.99, so the top bucket
   is exactly num_buckets. *)
let fold_quality ~delta quality =
  let q = Float.max quality (1. -. quality) in
  let phi = Prob.Log_space.logit q in
  { bucket = int_of_float (Float.ceil ((phi /. delta) -. 0.5)); q }

let certain t = t.prior_certain || t.certain_workers > 0

let convolved t =
  List.length t.entries + match t.prior with Some _ -> 1 | None -> 0

(* The Lemma-1 floor: BV dominates both the prior-only strategy and any
   single-member dictator, so JQ >= max(alpha, 1-alpha) and JQ >= q for
   every (reinterpreted) member quality q.  Only members above the 0.99
   bucketing cap contribute here — everyone else is convolved. *)
let floor_value t =
  let hq = List.fold_left Float.max 0. t.highs in
  let hq = match t.prior_high with Some q -> Float.max hq q | None -> hq in
  Float.max hq (Float.max t.alpha (1. -. t.alpha))

let has_high t = t.highs <> [] || t.prior_high <> None

let reset_map t =
  Array.fill t.dp 0 (Array.length t.dp) 0.;
  t.dp.(t.cap) <- 1.0;
  t.span <- 0;
  t.pos <- 0.5

(* Make room for a support of [span] keys on either side of 0. *)
let ensure_cap t span =
  if span > t.cap then begin
    let cap = max span (2 * t.cap) in
    let dp = Array.make ((2 * cap) + 1) 0. in
    Array.blit t.dp 0 dp (cap - t.cap) ((2 * t.cap) + 1);
    t.dp <- dp;
    t.scratch <- Array.make ((2 * cap) + 1) 0.;
    t.cap <- cap
  end

(* dp <- dp convolved with {+b ↦ q, −b ↦ 1−q}, via the scratch buffer.
   [pos] is rebuilt from the masses as they are written: above-center mass
   counts in full, the center cell for half (the tie-break convention of
   Algorithm 1). *)
let push t { bucket = b; q } =
  ensure_cap t (t.span + b);
  let dp = t.dp and out = t.scratch and cap = t.cap in
  let lo = cap - t.span - b and hi = cap + t.span + b in
  Array.fill out lo (hi - lo + 1) 0.;
  let pos = ref 0. in
  for i = cap - t.span to cap + t.span do
    let p = dp.(i) in
    if p <> 0. then begin
      let up = p *. q and down = p *. (1. -. q) in
      out.(i + b) <- out.(i + b) +. up;
      out.(i - b) <- out.(i - b) +. down;
      if i + b > cap then pos := !pos +. up
      else if i + b = cap then pos := !pos +. (0.5 *. up);
      if i - b > cap then pos := !pos +. down
      else if i - b = cap then pos := !pos +. (0.5 *. down)
    end
  done;
  t.dp <- out;
  t.scratch <- dp;
  t.span <- t.span + b;
  t.pos <- !pos

(* Inverse of [push].  Returns false (leaving the map stale) when
   accumulated float drift makes the reconstruction untrustworthy
   (negative mass, or total mass off 1). *)
let deconvolve t { bucket = b; q } =
  let dp = t.dp and prev = t.scratch and cap = t.cap in
  let span' = t.span - b in
  Array.fill prev (cap - span') ((2 * span') + 1) 0.;
  let total = ref 0. and pos = ref 0. in
  let drift = ref false in
  (* Ascending keys: prev[k+b] is determined by new[k] and prev[k−b]. *)
  for i = cap - t.span to cap + t.span do
    let carried = if i - b >= cap - span' && i - b <= cap + span' then prev.(i - b) else 0. in
    let p = (dp.(i) -. (q *. carried)) /. (1. -. q) in
    if p < -1e-9 then drift := true
    else if p > 1e-18 && i + b <= cap + span' then begin
      prev.(i + b) <- p;
      total := !total +. p;
      if i + b > cap then pos := !pos +. p
      else if i + b = cap then pos := !pos +. (0.5 *. p)
    end
  done;
  if !drift || Float.abs (!total -. 1.) > 1e-6 then false
  else begin
    t.dp <- prev;
    t.scratch <- dp;
    t.span <- span';
    t.pos <- !pos;
    true
  end

let rebuild t =
  reset_map t;
  List.iter (fun e -> push t e) (List.rev t.entries);
  (match t.prior with Some e -> push t e | None -> ());
  t.stale <- false;
  t.removals <- 0;
  t.rebuilds <- t.rebuilds + 1

let create ?(num_buckets = Bucket.default_num_buckets) ?(alpha = 0.5) () =
  if num_buckets <= 0 then invalid_arg "Incremental.create: num_buckets <= 0";
  if alpha < 0. || alpha > 1. || Float.is_nan alpha then
    invalid_arg "Incremental.create: alpha outside [0, 1]";
  let upper = Prob.Log_space.logit 0.99 in
  let delta = upper /. float_of_int num_buckets in
  let prior_certain = Prior.is_degenerate alpha in
  let pseudo = Float.max alpha (1. -. alpha) in
  let prior, prior_high =
    if prior_certain || alpha = 0.5 then (None, None)
    else if pseudo > 0.99 then (None, Some pseudo)
    else (Some (fold_quality ~delta alpha), None)
  in
  let cap = num_buckets in
  let t =
    {
      delta;
      upper;
      num_buckets;
      dp = Array.make ((2 * cap) + 1) 0.;
      scratch = Array.make ((2 * cap) + 1) 0.;
      cap;
      span = 0;
      pos = 0.5;
      n = 0;
      coins = 0;
      certain_workers = 0;
      highs = [];
      entries = [];
      stale = false;
      removals = 0;
      rebuilds = 0;
      alpha;
      prior;
      prior_high;
      prior_certain;
    }
  in
  t.dp.(t.cap) <- 1.0;
  (match prior with Some e -> push t e | None -> ());
  t

let validate name quality =
  if quality < 0. || quality > 1. || Float.is_nan quality then
    invalid_arg (Printf.sprintf "Incremental.%s: quality outside [0, 1]" name)

let add_worker t quality =
  validate "add_worker" quality;
  t.n <- t.n + 1;
  let q = Float.max quality (1. -. quality) in
  if q = 0.5 then t.coins <- t.coins + 1
    (* A coin shifts no key and splits mass 50/50 onto the same key: the
       map is unchanged up to a factor that cancels, so skip it. *)
  else if q = 1. then begin
    t.certain_workers <- t.certain_workers + 1
    (* The map is left alone: while a certain member is present the value
       is 1 regardless, and [entries] keeps enough state to rebuild once
       the certain member is removed again. *)
  end
  else if q > 0.99 then t.highs <- q :: t.highs
    (* Above the fixed-width cap: floors the value (Lemma 1) instead of
       being convolved — the same shortcut Bucket.estimate applies. *)
  else begin
    let e = fold_quality ~delta:t.delta quality in
    t.entries <- e :: t.entries;
    if not (certain t) && not t.stale then push t e
  end

(* Drop one occurrence of [e] from a multiset list; None when absent. *)
let rec drop_entry e = function
  | [] -> None
  | x :: rest ->
      if x.bucket = e.bucket && x.q = e.q then Some rest
      else Option.map (fun r -> x :: r) (drop_entry e rest)

(* Drop one occurrence of [q] from a float multiset; None when absent. *)
let rec drop_float q = function
  | [] -> None
  | x :: rest ->
      if x = q then Some rest
      else Option.map (fun r -> x :: r) (drop_float q rest)

let remove_worker t quality =
  validate "remove_worker" quality;
  let absent () = invalid_arg "Incremental.remove_worker: worker not in jury" in
  let q = Float.max quality (1. -. quality) in
  if q = 0.5 then begin
    if t.coins = 0 then absent ();
    t.coins <- t.coins - 1;
    t.n <- t.n - 1
  end
  else if q = 1. then begin
    if t.certain_workers = 0 then absent ();
    t.certain_workers <- t.certain_workers - 1;
    t.n <- t.n - 1;
    (* Leaving the certain regime: the map missed every mutation since the
       certain member arrived, so force a rebuild before the next read. *)
    if not (certain t) then t.stale <- true
  end
  else if q > 0.99 then begin
    (match drop_float q t.highs with
    | None -> absent ()
    | Some rest -> t.highs <- rest);
    t.n <- t.n - 1
  end
  else begin
    let e = fold_quality ~delta:t.delta quality in
    (match drop_entry e t.entries with
    | None -> absent ()
    | Some rest -> t.entries <- rest);
    t.n <- t.n - 1;
    if certain t || t.stale then ()
    else begin
      t.removals <- t.removals + 1;
      if t.removals >= rebuild_period then t.stale <- true
      else if not (deconvolve t e) then t.stale <- true
    end
  end

let reset t =
  t.n <- 0;
  t.coins <- 0;
  t.certain_workers <- 0;
  t.highs <- [];
  t.entries <- [];
  t.stale <- false;
  t.removals <- 0;
  reset_map t;
  match t.prior with Some e -> push t e | None -> ()

let value t =
  if certain t then 1.
  else if convolved t = 0 then floor_value t
  else begin
    if t.stale then rebuild t;
    let est = Float.min 1. (Float.max 0. t.pos) in
    Float.max est (floor_value t)
  end

let size t = t.n
let coins t = t.coins
let rebuilds t = t.rebuilds

let error_bound t =
  if certain t then 0.
  else if has_high t then
    (* Mirror Bucket.estimate's high-quality shortcut: the value is floored
       at the top member (or prior) quality, so the true JQ is within
       1 - floor of it — the additive DP bound does not apply to the
       uncapped logit. *)
    1. -. floor_value t
  else
    Bounds.additive_bound ~upper:t.upper ~num_buckets:t.num_buckets
      ~n:(convolved t)
