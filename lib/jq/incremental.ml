type t = {
  delta : float;              (* Fixed bucket width: phi(0.99) / num_buckets. *)
  num_buckets : int;
  mutable map : (int, float) Hashtbl.t;
  mutable n : int;            (* Workers folded in, excluding the prior. *)
  mutable certain : bool;     (* A quality-1 worker arrived: JQ = 1 forever. *)
  alpha : float;
}

let fold_quality t q =
  (* Reinterpretation first (sub-0.5 workers flip), then bucketize against
     the fixed width; qualities at the 0.99 cap land on the top bucket. *)
  let q = Float.max q (1. -. q) in
  if q >= 0.99 then (t.num_buckets, Float.min q 0.99)
  else
    let phi = Prob.Log_space.logit q in
    (int_of_float (Float.ceil ((phi /. t.delta) -. 0.5)), q)

let push t quality =
  if quality = 0.5 then ()
    (* A coin shifts no key and splits mass 50/50 onto the same key: the
       map is unchanged up to a factor that cancels, so skip it. *)
  else begin
    let bucket, q = fold_quality t quality in
    let next = Hashtbl.create (2 * Hashtbl.length t.map) in
    let bump key mass =
      match Hashtbl.find_opt next key with
      | Some prob -> Hashtbl.replace next key (prob +. mass)
      | None -> Hashtbl.add next key mass
    in
    Hashtbl.iter
      (fun key prob ->
        bump (key + bucket) (prob *. q);
        bump (key - bucket) (prob *. (1. -. q)))
      t.map;
    t.map <- next
  end

let create ?(num_buckets = Bucket.default_num_buckets) ?(alpha = 0.5) () =
  if num_buckets <= 0 then invalid_arg "Incremental.create: num_buckets <= 0";
  if alpha < 0. || alpha > 1. || Float.is_nan alpha then
    invalid_arg "Incremental.create: alpha outside [0, 1]";
  let map = Hashtbl.create 64 in
  Hashtbl.add map 0 1.0;
  let t =
    {
      delta = Prob.Log_space.logit 0.99 /. float_of_int num_buckets;
      num_buckets;
      map;
      n = 0;
      certain = Prior.is_degenerate alpha;
      alpha;
    }
  in
  if (not t.certain) && alpha <> 0.5 then push t alpha;
  t

let add_worker t quality =
  if quality < 0. || quality > 1. || Float.is_nan quality then
    invalid_arg "Incremental.add_worker: quality outside [0, 1]";
  if quality = 0. || quality = 1. then t.certain <- true
  else if not t.certain then push t quality;
  t.n <- t.n + 1

let value t =
  if t.certain then 1.
  else if t.n = 0 then Float.max t.alpha (1. -. t.alpha)
  else begin
    let acc = Prob.Kahan.create () in
    Hashtbl.iter
      (fun key prob ->
        if key > 0 then Prob.Kahan.add acc prob
        else if key = 0 then Prob.Kahan.add acc (0.5 *. prob))
      t.map;
    Float.min 1. (Float.max 0. (Prob.Kahan.total acc))
  end

let size t = t.n

let error_bound t =
  if t.n = 0 then 0.
  else exp (float_of_int t.n *. t.delta /. 4.) -. 1.
