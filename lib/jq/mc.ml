open Voting

type estimate = {
  value : float;
  trials : int;
  confidence_99 : float * float;
}

let hoeffding_halfwidth trials =
  sqrt (log (2. /. 0.01) /. (2. *. float_of_int trials))

let jq rng ~trials ~strategy ~alpha ~qualities =
  if trials <= 0 then invalid_arg "Mc.jq: trials <= 0";
  if alpha < 0. || alpha > 1. || Float.is_nan alpha then
    invalid_arg "Mc.jq: alpha outside [0, 1]";
  Array.iter
    (fun q ->
      if q < 0. || q > 1. || Float.is_nan q then
        invalid_arg "Mc.jq: quality outside [0, 1]")
    qualities;
  let n = Array.length qualities in
  let correct = ref 0 in
  let voting = Array.make n Vote.No in
  for _ = 1 to trials do
    let truth = if Prob.Rng.bernoulli rng alpha then Vote.No else Vote.Yes in
    for i = 0 to n - 1 do
      voting.(i) <-
        (if Prob.Rng.bernoulli rng qualities.(i) then truth else Vote.flip truth)
    done;
    let answer = Strategy.run strategy rng ~alpha ~qualities voting in
    if Vote.equal answer truth then incr correct
  done;
  let value = float_of_int !correct /. float_of_int trials in
  let h = hoeffding_halfwidth trials in
  {
    value;
    trials;
    confidence_99 = (Float.max 0. (value -. h), Float.min 1. (value +. h));
  }

let jq_bv rng ~trials ~alpha ~qualities =
  jq rng ~trials ~strategy:Bayesian.strategy ~alpha ~qualities

let trials_for_halfwidth h =
  if h <= 0. then invalid_arg "Mc.trials_for_halfwidth: h <= 0";
  int_of_float (Float.ceil (log (2. /. 0.01) /. (2. *. h *. h)))
