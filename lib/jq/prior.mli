(** Incorporating the task provider's prior (Theorem 3, §4.5).

    JQ(J, BV, α) = JQ(J ∪ {pseudo-worker of quality α}, BV, 0.5): the prior
    behaves exactly like one more juror whose "vote" is the belief itself.
    All α-aware JQ computation funnels through {!fold}. *)

val fold : alpha:float -> float array -> float array
(** [fold ~alpha qs] is the quality vector of the α = 0.5 equivalent jury:
    [qs] itself when α = 0.5 (the pseudo-worker would be a coin and coins
    never change BV's decision), otherwise [qs] with α appended.
    @raise Invalid_argument for α outside [0, 1]. *)

val is_degenerate : float -> bool
(** α ∈ {0, 1}: the prior already decides the task, so JQ(J, BV, α) = 1 for
    every jury. *)
