let validate instance =
  if instance = [] then invalid_arg "Hardness: empty instance";
  List.iter
    (fun a -> if a <= 0 then invalid_arg "Hardness: integers must be positive")
    instance

let jury_of_instance ?(delta = 1e-3) instance =
  validate instance;
  if delta <= 0. then invalid_arg "Hardness: delta must be positive";
  Array.of_list
    (List.map (fun a -> 1. /. (1. +. exp (-.(float_of_int a *. delta)))) instance)

(* The exact (key, prob) map of section 4.2 with integer keys a_i instead of
   bucketized logits: worker i votes 0 with probability q_i (key += a_i) or
   1 with probability 1 - q_i (key -= a_i). *)
let signed_sum_map instance =
  let qualities = jury_of_instance instance in
  let current = Hashtbl.create 64 in
  Hashtbl.add current 0 1.0;
  let state = ref current in
  List.iteri
    (fun i a ->
      let q = qualities.(i) in
      let next = Hashtbl.create (2 * Hashtbl.length !state) in
      let bump key mass =
        match Hashtbl.find_opt next key with
        | Some prob -> Hashtbl.replace next key (prob +. mass)
        | None -> Hashtbl.add next key mass
      in
      Hashtbl.iter
        (fun key prob ->
          bump (key + a) (prob *. q);
          bump (key - a) (prob *. (1. -. q)))
        !state;
      state := next)
    instance;
  !state

let signed_sums instance =
  validate instance;
  let map = signed_sum_map instance in
  List.sort compare (Hashtbl.fold (fun k p acc -> (k, p) :: acc) map [])

let tie_mass instance =
  validate instance;
  match Hashtbl.find_opt (signed_sum_map instance) 0 with
  | Some mass -> mass
  | None -> 0.

let partitionable_via_jq instance = tie_mass instance > 0.

let partitionable_direct instance =
  validate instance;
  let total = List.fold_left ( + ) 0 instance in
  if total mod 2 = 1 then false
  else begin
    let target = total / 2 in
    let reachable = Array.make (target + 1) false in
    reachable.(0) <- true;
    List.iter
      (fun a ->
        for s = target downto a do
          if reachable.(s - a) then reachable.(s) <- true
        done)
      instance;
    reachable.(target)
  end
