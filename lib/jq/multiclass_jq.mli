(** Jury Quality for multi-choice tasks with confusion-matrix workers (§7).

    JQ generalizes to Σ_t′ α_t′ · H(t′) with
    H(t′) = Σ_V Pr(V | t = t′) · E[1(S(V) = t′)]  (Equation 11).

    Two computations are provided: exact enumeration over the ℓ^n votings,
    and the paper's iterative tuple-key scheme for BV — the key of a
    partial voting is the vector of bucketized log-ratios
    ln (Pr(V|t′)·α_t′) / (Pr(V|j)·α_j) over labels j, which BV accepts for
    t′ exactly when every component is ≥ 0 (with the tie convention of
    {!Voting.Multiclass.bayesian}: strict for j < t′).

    The estimator's default kernel runs the DP as a sparse frontier over
    {!Workspace} buffers: digit tuples live in flat int arrays behind an
    open-addressing probe table (no per-key allocation or polymorphic
    hashing), {!Prune.tuple_ranges} clamps every dimension to the digits
    that can still change the answer (Algorithm 2 on tuple keys), and
    cells whose mass falls below [trunc_mass] are dropped with the lost
    mass accumulated into a tracked additive error — so the estimate only
    ever loses mass and the paper's ĴQ ≤ JQ direction survives pruning
    and truncation.  The legacy hashtable kernel remains available as
    [~impl:Hashtbl] and is the automatic fallback when the pruned
    frontier would still exceed a few million cells (counted by
    {!flat_fallbacks}).  The two kernels derive bitwise-identical bucket
    widths, classify every voting identically, and agree up to
    truncation plus summation-order ulps (property-tested). *)

val jq_exact :
  ?cap:int ->
  Voting.Multiclass.t ->
  prior:float array ->
  jury:Workers.Confusion.t array ->
  float
(** Exact multi-class JQ of a strategy by enumeration.
    @raise Invalid_argument when ℓ^n exceeds [cap] (default
    {!Voting.Multiclass.enumeration_cap}) or the model is
    inconsistent. *)

val h_exact :
  ?cap:int ->
  Voting.Multiclass.t ->
  truth:int ->
  prior:float array ->
  jury:Workers.Confusion.t array ->
  float
(** H(truth) by enumeration, subject to the same [cap]. *)

val estimate_bv :
  ?impl:Bucket.impl ->
  ?workspace:Workspace.t ->
  ?num_buckets:int ->
  ?trunc_mass:float ->
  prior:float array ->
  Workers.Confusion.t array ->
  float
(** [estimate_bv ~prior jury] — iterative tuple-key estimate of JQ under
    multi-class BV (numBuckets defaults to {!Bucket.default_num_buckets},
    [trunc_mass] to {!default_trunc_mass}; [trunc_mass = 0.] disables
    truncation).  With ℓ = 2 and symmetric binary matrices this agrees
    with {!Bucket.estimate} (property-tested).  [workspace] defaults to
    the calling domain's workspace via {!Workspace.with_default}; see
    {!Workspace} for the sharing contract. *)

type stats = {
  value : float;  (** The JQ estimate (identical to {!estimate_bv}). *)
  upper : float;
      (** Largest finite |log-ratio| over every truth's expansion — the
          logit range the bucket width is derived from. *)
  delta : float;  (** Bucket width [upper / num_buckets]. *)
  max_frontier : int;
      (** Largest live-cell count any DP step reached (flat kernel). *)
  pruned_cells : int;
      (** Cells dropped as settled-rejected by tuple pruning. *)
  trunc_error : float;
      (** Total prior-weighted probability mass dropped by truncation —
          an exact, not estimated, lower-bound gap. *)
  error_bound : float;
      (** Additive guarantee: Σ_t α_t · {!Bounds.multiclass_bound} plus
          [trunc_error]; [|value − jq_exact| <= error_bound]
          (property-tested on small instances). *)
  fallbacks : int;
      (** Truth evaluations that overflowed the flat frontier cap and
          fell back to the hashtable oracle this call. *)
}

val estimate_bv_stats :
  ?impl:Bucket.impl ->
  ?workspace:Workspace.t ->
  ?num_buckets:int ->
  ?trunc_mass:float ->
  prior:float array ->
  Workers.Confusion.t array ->
  stats
(** {!estimate_bv} with kernel instrumentation and the certified
    additive error bound.  One workspace acquisition serves all ℓ truth
    evaluations. *)

val h_estimate :
  ?impl:Bucket.impl ->
  ?workspace:Workspace.t ->
  ?num_buckets:int ->
  ?trunc_mass:float ->
  truth:int ->
  prior:float array ->
  Workers.Confusion.t array ->
  float
(** [h_estimate ~truth ~prior jury] — iterative tuple-key estimate of
    H(truth) under BV. *)

val default_trunc_mass : float
(** 1e-12 — the default per-cell mass floor.  Far below any bucketing
    bound a practical [num_buckets] yields, so truncation never dominates
    the certified error, yet it keeps degenerate near-zero cells from
    bloating the frontier. *)

val flat_fallbacks : unit -> int
(** Process-wide count of flat-kernel evaluations that exceeded the
    frontier cap and silently fell back to the hashtable oracle.
    Monotonic; front-ends snapshot it around calls to detect (and report
    once) the performance cliff. *)
