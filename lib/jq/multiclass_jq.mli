(** Jury Quality for multi-choice tasks with confusion-matrix workers (§7).

    JQ generalizes to Σ_t′ α_t′ · H(t′) with
    H(t′) = Σ_V Pr(V | t = t′) · E[1(S(V) = t′)]  (Equation 11).

    Two computations are provided: exact enumeration over the ℓ^n votings,
    and the paper's iterative tuple-key scheme for BV — the key of a
    partial voting is the vector of bucketized log-ratios
    ln (Pr(V|t′)·α_t′) / (Pr(V|j)·α_j) over labels j, which BV accepts for
    t′ exactly when every component is ≥ 0 (with the tie convention of
    {!Voting.Multiclass.bayesian}: strict for j < t′).

    The estimator's default kernel flattens the ℓ-tuple keys into a single
    mixed-radix integer over per-dimension saturating bounds and runs the
    DP over dense {!Workspace} buffers (no tuple hashing or allocation per
    key); the legacy hashtable kernel remains available as
    [~impl:Hashtbl], and is also the automatic fallback when the flat key
    space would exceed a few million cells.  The two kernels classify
    every voting identically and agree up to summation-order ulps
    (property-tested). *)

val jq_exact :
  Voting.Multiclass.t ->
  prior:float array ->
  jury:Workers.Confusion.t array ->
  float
(** Exact multi-class JQ of a strategy by enumeration.
    @raise Invalid_argument when ℓ^n exceeds the {!Voting.Multiclass.enumerate_votings}
    limit or the model is inconsistent. *)

val h_exact :
  Voting.Multiclass.t ->
  truth:int ->
  prior:float array ->
  jury:Workers.Confusion.t array ->
  float
(** H(truth) by enumeration. *)

val estimate_bv :
  ?impl:Bucket.impl ->
  ?workspace:Workspace.t ->
  ?num_buckets:int ->
  prior:float array ->
  Workers.Confusion.t array ->
  float
(** [estimate_bv ~prior jury] — iterative tuple-key estimate of JQ under
    multi-class BV (numBuckets defaults to {!Bucket.default_num_buckets}).
    With ℓ = 2 and symmetric binary matrices this agrees with
    {!Bucket.estimate} (property-tested).  [workspace] defaults to the
    calling domain's workspace via {!Workspace.with_default}; see
    {!Workspace} for the sharing contract. *)

val h_estimate :
  ?impl:Bucket.impl ->
  ?workspace:Workspace.t ->
  ?num_buckets:int ->
  truth:int ->
  prior:float array ->
  Workers.Confusion.t array ->
  float
(** [h_estimate ~truth ~prior jury] — iterative tuple-key estimate of
    H(truth) under BV. *)
