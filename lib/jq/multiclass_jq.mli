(** Jury Quality for multi-choice tasks with confusion-matrix workers (§7).

    JQ generalizes to Σ_t′ α_t′ · H(t′) with
    H(t′) = Σ_V Pr(V | t = t′) · E[1(S(V) = t′)]  (Equation 11).

    Two computations are provided: exact enumeration over the ℓ^n votings,
    and the paper's iterative tuple-key scheme for BV — the key of a
    partial voting is the vector of bucketized log-ratios
    ln (Pr(V|t′)·α_t′) / (Pr(V|j)·α_j) over labels j, which BV accepts for
    t′ exactly when every component is ≥ 0 (with the tie convention of
    {!Voting.Multiclass.bayesian}: strict for j < t′). *)

val jq_exact :
  Voting.Multiclass.t ->
  prior:float array ->
  jury:Workers.Confusion.t array ->
  float
(** Exact multi-class JQ of a strategy by enumeration.
    @raise Invalid_argument when ℓ^n exceeds the {!Voting.Multiclass.enumerate_votings}
    limit or the model is inconsistent. *)

val h_exact :
  Voting.Multiclass.t ->
  truth:int ->
  prior:float array ->
  jury:Workers.Confusion.t array ->
  float
(** H(truth) by enumeration. *)

val estimate_bv :
  ?num_buckets:int ->
  prior:float array ->
  Workers.Confusion.t array ->
  float
(** [estimate_bv ~prior jury] — iterative tuple-key estimate of JQ under
    multi-class BV (numBuckets defaults to {!Bucket.default_num_buckets}).
    With ℓ = 2 and symmetric binary matrices this agrees with
    {!Bucket.estimate} (property-tested). *)

val h_estimate :
  ?num_buckets:int ->
  truth:int ->
  prior:float array ->
  Workers.Confusion.t array ->
  float
(** [h_estimate ~truth ~prior jury] — iterative tuple-key estimate of
    H(truth) under BV. *)
