(** Anytime (incremental) JQ estimation.

    Algorithm 1 processes a *fixed* jury; when workers arrive one at a time
    — online collection, greedy jury growth — recomputing from scratch after
    each arrival costs O(n) passes over the key map.  This module keeps the
    (key, prob) map alive between arrivals: {!add_worker} folds one worker
    in (one map pass), {!value} reads the current estimate.

    One deliberate difference from {!Bucket}: the bucket width is fixed up
    front from the global logit cap φ(0.99) rather than the jury's own
    maximum logit (unknowable in advance), so a width-d·n guarantee is kept
    by construction for any arrival order.  Estimates therefore differ from
    {!Bucket.estimate}'s by at most the sum of both error bounds (a property
    test pins this), and the ĴQ ≤ JQ direction still holds. *)

type t
(** Mutable accumulator over an implicit growing jury. *)

val create : ?num_buckets:int -> ?alpha:float -> unit -> t
(** Empty jury.  [num_buckets] defaults to {!Bucket.default_num_buckets};
    a non-half prior is folded in as the usual pseudo-worker (Theorem 3).
    @raise Invalid_argument for num_buckets <= 0 or alpha outside [0, 1]. *)

val add_worker : t -> float -> unit
(** Fold one worker of the given quality into the jury (sub-0.5 qualities
    are reinterpreted as usual).
    @raise Invalid_argument for a quality outside [0, 1]. *)

val value : t -> float
(** The current ĴQ: max(α, 1−α) while the jury is empty, 1 after a certain
    worker (q ∈ {0, 1}) arrived, the map estimate otherwise. *)

val size : t -> int
(** Workers folded in so far (excluding the prior pseudo-worker). *)

val error_bound : t -> float
(** e^(n·δ/4) − 1 for the current size and the fixed bucket width. *)
