(** Anytime (incremental) JQ estimation with worker removal.

    Algorithm 1 processes a *fixed* jury; when workers arrive one at a time
    — online collection, greedy jury growth, or the annealer's swap moves —
    recomputing from scratch after each change costs O(n) passes over the
    key map.  This module keeps the key map alive between changes as a
    dense array over the contiguous key span [−Σbᵢ, Σbᵢ]: {!add_worker}
    folds one worker in (one array pass), {!remove_worker} deconvolves one
    back out (also one pass — the per-worker DP step is a linear
    convolution with kernel [{+b ↦ q, −b ↦ 1−q}], which is invertible for
    q ≠ 0.5), and {!value} reads an estimate maintained during those
    passes in O(1).

    One deliberate difference from {!Bucket}: the bucket width is fixed up
    front from the global logit cap φ(0.99) rather than the jury's own
    maximum logit (unknowable in advance), so a width-d·n guarantee is kept
    by construction for any arrival order.  Estimates therefore differ from
    {!Bucket.estimate}'s by at most the sum of both error bounds (a property
    test pins this), and the ĴQ ≤ JQ direction still holds.

    Removal is numerically the exact inverse of addition; accumulated float
    drift is caught by a mass-renormalization check after each
    deconvolution, plus a periodic full rebuild from the tracked worker
    multiset, so a long add/remove stream (the annealing hot path) cannot
    degrade silently. *)

type t
(** Mutable accumulator over an implicit jury multiset. *)

val create : ?num_buckets:int -> ?alpha:float -> unit -> t
(** Empty jury.  [num_buckets] defaults to {!Bucket.default_num_buckets};
    a non-half prior is folded in as the usual pseudo-worker (Theorem 3).
    @raise Invalid_argument for num_buckets <= 0 or alpha outside [0, 1]. *)

val add_worker : t -> float -> unit
(** Fold one worker of the given quality into the jury (sub-0.5 qualities
    are reinterpreted as usual).
    @raise Invalid_argument for a quality outside [0, 1]. *)

val remove_worker : t -> float -> unit
(** Take one worker of the given quality back out of the jury, in O(span).
    Qualities q and 1−q are the same member after reinterpretation.
    @raise Invalid_argument for a quality outside [0, 1], or when no member
    of that (reinterpreted) quality is currently in the jury. *)

val reset : t -> unit
(** Back to the empty jury (the prior pseudo-worker is re-folded) while
    keeping the allocated key-map arrays, so a long-lived evaluator — a
    serving executor scoring one pool after another — reuses its grown
    capacity instead of reallocating per query.  Does not count as a
    {!rebuilds} event. *)

val value : t -> float
(** The current ĴQ: 1 while a certain worker (q ∈ {0, 1}) is present,
    otherwise the key-map estimate floored at the Lemma-1 lower bounds —
    max(α, 1−α) (BV dominates prior-only play; this is also the empty-jury
    value) and the top member quality above 0.99 (BV dominates the
    single-member dictator; such members are never bucketized, mirroring
    {!Bucket.estimate}'s high-quality shortcut). *)

val size : t -> int
(** Current jury size: workers added minus workers removed (excluding the
    prior pseudo-worker). *)

val convolved : t -> int
(** The number of logits actually convolved into the key map: non-coin,
    non-certain members plus the prior pseudo-worker when α ≠ 0.5.  This —
    not {!size} — is the n of the §4.4 error bound. *)

val coins : t -> int
(** Current q = 0.5 members (never convolved; they cannot change BV's JQ). *)

val rebuilds : t -> int
(** Full map rebuilds performed so far (drift guard / periodic fallback). *)

val error_bound : t -> float
(** {!Jq.Bounds.additive_bound} with [upper = φ(0.99)] (the fixed-width
    construction's logit cap) and [n = convolved t]: exactly the logits in
    the map, counting the prior pseudo-worker and skipping coins and
    certain-shortcut members.  0 while a certain member is present.  When a
    member (or the prior) exceeds the 0.99 cap the bound is [1 − floor]
    instead — the same semantics {!Bucket.estimate_stats} reports under its
    high-quality shortcut. *)
