open Voting

let canonicalize qs =
  Array.iter
    (fun q ->
      if q < 0. || q > 1. || Float.is_nan q then
        invalid_arg "Reinterpret.canonicalize: quality outside [0, 1]")
    qs;
  let flipped = Array.map (fun q -> q < 0.5) qs in
  let canonical = Array.map (fun q -> Float.max q (1. -. q)) qs in
  (canonical, flipped)

let canonical_qualities qs = fst (canonicalize qs)

let apply_flips flipped voting =
  if Array.length flipped <> Array.length voting then
    invalid_arg "Reinterpret.apply_flips: lengths differ";
  Array.mapi (fun i v -> if flipped.(i) then Vote.flip v else v) voting

let flipping_majority flipped =
  Strategy.make ~name:"MV-flip" (fun ~alpha ~qualities voting ->
      Strategy.decide Classic.majority ~alpha ~qualities (apply_flips flipped voting))
