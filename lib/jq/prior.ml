let fold ~alpha qs =
  if alpha < 0. || alpha > 1. || Float.is_nan alpha then
    invalid_arg "Prior.fold: alpha outside [0, 1]";
  if alpha = 0.5 then Array.copy qs else Array.append qs [| alpha |]

let is_degenerate alpha = alpha = 0. || alpha = 1.
