(** Line-delimited wire protocol for the jury-selection service.

    One request per line, one response per line, ASCII throughout — a
    protocol you can drive with [nc].  A request is a verb followed by
    space-separated [key=value] fields; a response line starts with [ok]
    or [err].  The full grammar lives in [docs/serving.md]; examples:

    {v
    jq q=0.9,0.6,0.6 prior=0.5,0.5 buckets=50
    jq pool=default alpha=0.5 buckets=50
    select pool=default budget=10 prior=0.3,0.7 seed=42
    table pool=default budgets=5,10,15 prior=0.2,0.5,0.3 seed=42
    pool-put name=default workers=0.9:3,0.6:1,0.8:2
    pool-put name=m3 workers=0.8;0.1;0.1;0.2;0.7;0.1;0.1;0.2;0.7:2,...
    pool-list
    stats
    ping
    open pool=default task=t1 alpha=0.5 budget=6 confidence=0.97 policy=gain
    vote pool=default task=t1 worker=0 label=1
    advise pool=default task=t1 k=3
    decide pool=default task=t1 truth=1
    close pool=default task=t1
    report pool=default votes=7:0:1,7:1:0:0,8:2:1
    quality pool=default
    recal pool=default
    fleet-submit pool=default task=f1 prior=0.3,0.7 budget=6 tier=0
    fleet-status pool=default task=f1
    fleet-release pool=default task=f1 decide=1
    v}

    Tasks are named by a prior vector [prior=p0,p1,…] over ℓ ≥ 2 labels
    (nonnegative, summing to 1 ±1e-9).  [alpha=x] is accepted on decode as
    sugar for the binary [prior=x,1−x] — the two keys are exclusive, and
    omitting both means the uniform binary prior.  Pool rows are either
    the scalar [quality:cost] or a flattened ℓ×ℓ row-stochastic confusion
    matrix [m00;m01;…;mkk:cost] (row major); one pool holds one worker
    model, so rows must agree in kind and ℓ.

    The codec is strict: {!decode_request} accepts exactly the values the
    service can serve (qualities, priors and matrix entries in [0, 1],
    matrix rows summing to 1, finite nonnegative costs and budgets,
    positive bucket counts, pool names over [A-Za-z0-9_.-]) and returns
    [Error] — never raises — on anything else, so a malformed line costs
    one reply, not a connection.  Floats are rendered
    shortest-round-trip, making [encode] and [decode] exact inverses on
    valid messages (a property test pins this; [alpha=] sugar is the one
    decode-only spelling). *)

(** Where a [jq] query gets its quality vector. *)
type source =
  | Inline of float list  (** Qualities carried in the request. *)
  | Named of string       (** A registered pool's qualities. *)

(** One worker row of a [pool-put]. *)
type pool_row =
  | Scalar of float * float
      (** (quality, cost) — the binary worker model. *)
  | Matrix_row of float array array * float
      (** (ℓ×ℓ row-stochastic confusion matrix, cost) — §7 workers. *)

type request =
  | Ping
  | Jq of { source : source; prior : float list; num_buckets : int }
  | Select of { pool : string; budget : float; prior : float list; seed : int }
  | Table of {
      pool : string;
      budgets : float list;
      prior : float list;
      seed : int;
    }
  | Pool_put of { name : string; workers : pool_row list }
      (** Rows of one kind; ids and names are assigned by position. *)
  | Pool_list
  | Stats
  | Session_open of {
      pool : string;
      task : string;
      prior : float list;
      budget : float;
      confidence : float;  (** Posterior threshold, in (1/ℓ, 1]. *)
      gain_floor : float;  (** 0 disables the marginal-gain floor. *)
      policy : Session.Policy.t;
    }
      (** Open a sequential session keyed by (pool, task id).  Task ids
          share the pool-name charset.  [confidence], [floor] and [policy]
          may be omitted ({!default_confidence}, 0, {!Session.Policy.default}). *)
  | Session_vote of { pool : string; task : string; worker : int; label : int }
      (** Feed one vote: positional worker index, label in [0, ℓ). *)
  | Session_advise of { pool : string; task : string; k : int }
      (** The top-[k] workers to ask next (no state change; [k] defaults
          to 1 and may be omitted on the wire). *)
  | Session_decide of { pool : string; task : string; truth : int option }
      (** Force a terminal decision now.  With [truth=] the session closes
          as a gold example: its votes feed the pool's calibrator carrying
          the ground-truth label. *)
  | Session_close of { pool : string; task : string }
      (** Drop the session, freeing its store slot. *)
  | Report of { pool : string; votes : Workers.Calib.vote list }
      (** Ingest a batch of (task, worker, label[, truth]) votes into the
          pool's streaming calibrator. *)
  | Quality of { pool : string }
      (** Per-worker quality readback. *)
  | Recal of { pool : string }
      (** Force a full calibration step now. *)
  | Fleet_submit of {
      pool : string;
      task : string;
      prior : float list;
      budget : float;
      tier : int;     (** Priority tier, 0 = highest ([tier=] defaults to 0). *)
      target : float; (** Soft quality target in [0, 1]; 0 = none. *)
    }
      (** Admit a task into the pool's shared-pool fleet allocator and
          answer with its assigned jury.  Task ids share the pool-name
          charset; [prior]/[alpha], [tier] and [target] may be omitted. *)
  | Fleet_status of { pool : string; task : string option }
      (** Without [task=]: the pool's allocator summary.  With it: that
          task's current assignment (read-only either way). *)
  | Fleet_release of { pool : string; task : string; decided : bool }
      (** Remove a task (its decision made when [decide=1], withdrawn
          otherwise), free its jury and delta re-solve the neighbours. *)

type error_code =
  | Bad_request      (** Unparseable or invalid request line. *)
  | Unknown_pool     (** Named pool not in the registry. *)
  | Unknown_session  (** No live session under (pool, task): never opened,
                         closed, idle-expired, or invalidated by a pool
                         version bump. *)
  | Unknown_task     (** No resident fleet task under (pool, task). *)
  | Overload         (** Admission control refused: queue or session store full. *)
  | Deadline         (** The request expired before an executor reached it. *)
  | Shutdown         (** The service is draining. *)
  | Internal         (** Executor failure (bug or resource trouble). *)

(** Lifecycle position reported by a session reply. *)
type session_state =
  | Sess_open       (** Soliciting: votes accepted, advice available. *)
  | Sess_decided    (** Terminal with an answer. *)
  | Sess_exhausted  (** Terminal: budget/pool ran out before confidence. *)
  | Sess_closed     (** Reply to [close]: the session is gone. *)

type table_row = {
  budget : float;
  ids : int list;     (** Selected worker ids, in pool order. *)
  quality : float;
  required : float;
}

type response =
  | Pong
  | Jq_result of { value : float; error_bound : float; n : int }
  | Select_result of { ids : int list; score : float; cost : float }
  | Table_result of table_row list
  | Pool_info of { name : string; version : int; size : int }
  | Pool_entries of (string * int * int) list
      (** (name, version, size), sorted by name. *)
  | Stats_result of (string * float) list
      (** Metric (key, value) pairs, sorted by key. *)
  | Session_result of {
      pool : string;
      task : string;
      state : session_state;
      posterior : float list;   (** Normalized, one entry per label. *)
      votes : int;
      spent : float;
      next : int option;        (** Policy advice while [Sess_open]. *)
      advice : int list;        (** Top-K advice — [advise k=K] fills K
                                    entries, other verbs at most one
                                    (equal to [next]). *)
      decision : int option;    (** Argmax label once terminal. *)
      certified : bool;         (** Decision provably cannot flip. *)
      reason : Session.Stopping.reason option;  (** Why it stopped. *)
    }
      (** Every session verb answers with the full session snapshot, so
          clients never need a follow-up read. *)
  | Report_result of {
      name : string;
      version : int;   (** Pool version after the call — bumped iff the
                           batch was applied. *)
      applied : int;   (** Votes folded in now (0 = buffered for later). *)
      pending : int;   (** Votes awaiting the next calibration step. *)
      drifted : int list;  (** Workers flagged by the drift detector. *)
      stale : bool;    (** Standing juries predate a drift flag. *)
      recals : int;    (** Standing juries re-selected by this call. *)
    }
  | Quality_result of {
      name : string;
      version : int;
      workers : (int * float * int) list;
          (** (worker id, quality, votes seen) in pool order. *)
    }
  | Fleet_task of {
      pool : string;
      task : string;
      jury : int list;   (** Assigned pool positions ([] when starved). *)
      score : float;     (** JQ estimate for the task's prior. *)
      cost : float;      (** True cost of the jury. *)
      tier : int;
    }
      (** Reply to [fleet-submit] and per-task [fleet-status]. *)
  | Fleet_summary of {
      pool : string;
      version : int;     (** Pool version the allocator is synced to. *)
      epoch : int;       (** Price epoch (bumps whenever a price moves). *)
      tasks : int;       (** Resident tasks. *)
      assigned : int;    (** Resident tasks holding a nonempty jury. *)
      claimed : int;     (** Pool positions currently on some jury. *)
      priced : int;      (** Positions carrying a nonzero contention price. *)
      aggregate : float; (** Tier-weighted deviation-soft aggregate utility. *)
    }
      (** Reply to pool-level [fleet-status]. *)
  | Fleet_released of { pool : string; task : string; freed : int }
      (** Reply to [fleet-release]: [freed] jury seats returned to the
          pool. *)
  | Error of { code : error_code; message : string }

val valid_pool_name : string -> bool
(** Nonempty, at most 64 chars, all in [A-Za-z0-9_.-]. *)

val error_code_to_string : error_code -> string
(** The wire token, e.g. [Bad_request] ↦ ["bad-request"]. *)

val encode_request : request -> string
(** One line, without the trailing newline. *)

val default_prior : float list
(** [[0.5; 0.5]] — the binary uniform prior assumed when a request names
    neither [prior=] nor [alpha=]. *)

val default_confidence : float
(** 0.95 — the posterior threshold assumed when [open] omits
    [confidence=]. *)

val session_state_to_string : session_state -> string
(** The wire token, e.g. [Sess_open] ↦ ["open"]. *)

val decode_request : string -> (request, string) result
(** Strict parse of one request line.  [prior]/[alpha], [buckets] and
    [seed] may be omitted (defaults {!default_prior},
    {!Jq.Bucket.default_num_buckets}, 42); all other fields of a verb are
    mandatory, unknown or duplicate keys are errors.  Never raises. *)

val encode_response : response -> string
val decode_response : string -> (response, string) result
(** Inverse of {!encode_response} (used by clients: load generator,
    integration tests).  Never raises. *)
