type t = {
  max_line : int;
  mutable buf : Bytes.t;
  mutable start : int;    (* first unconsumed byte *)
  mutable len : int;      (* end of valid data *)
  mutable scanned : int;  (* '\n'-scan progress, start <= scanned <= len *)
  mutable discard : bool; (* dropping an over-limit line up to its '\n' *)
}

let cap t = t.max_line + 1

let create ?(initial = 4096) ~max_line () =
  if max_line <= 0 then invalid_arg "Lineframe.create: max_line <= 0";
  let initial = min (max 64 initial) (max_line + 1) in
  {
    max_line;
    buf = Bytes.create initial;
    start = 0;
    len = 0;
    scanned = 0;
    discard = false;
  }

let buffered t = t.len - t.start

let compact t =
  if t.start > 0 then begin
    let n = t.len - t.start in
    if n > 0 then Bytes.blit t.buf t.start t.buf 0 n;
    t.scanned <- t.scanned - t.start;
    t.start <- 0;
    t.len <- n
  end

let reserve t =
  if t.len = Bytes.length t.buf then begin
    compact t;
    if t.len = Bytes.length t.buf && Bytes.length t.buf < cap t then begin
      let grown = Bytes.create (min (cap t) (2 * Bytes.length t.buf)) in
      Bytes.blit t.buf 0 grown 0 t.len;
      t.buf <- grown
    end
  end;
  if t.len = Bytes.length t.buf then None
  else Some (t.buf, t.len, Bytes.length t.buf - t.len)

let commit t n =
  if n < 0 || t.len + n > Bytes.length t.buf then
    invalid_arg "Lineframe.commit";
  t.len <- t.len + n

let find_nl t from =
  match Bytes.index_from_opt t.buf from '\n' with
  | Some i when i < t.len -> Some i
  | _ -> None

let rec next t =
  if t.discard then begin
    match find_nl t t.start with
    | Some i ->
        t.discard <- false;
        t.start <- i + 1;
        t.scanned <- t.start;
        next t
    | None ->
        (* Drop everything buffered: the over-limit line is still
           coming, and none of it will ever be served. *)
        t.start <- t.len;
        t.scanned <- t.len;
        if t.start = t.len then begin
          t.start <- 0;
          t.len <- 0;
          t.scanned <- 0
        end;
        `Await
  end
  else
    match find_nl t (max t.start t.scanned) with
    | Some i ->
        if i - t.start > t.max_line then begin
          (* A terminated line can exceed the limit only if the buffer
             was created larger than the cap; handle it anyway. *)
          t.start <- i + 1;
          t.scanned <- t.start;
          `Too_long
        end
        else begin
          let line = Bytes.sub_string t.buf t.start (i - t.start) in
          t.start <- i + 1;
          t.scanned <- t.start;
          if t.start = t.len then begin
            t.start <- 0;
            t.len <- 0;
            t.scanned <- 0
          end;
          `Line line
        end
    | None ->
        t.scanned <- t.len;
        if t.len - t.start > t.max_line then begin
          t.discard <- true;
          t.start <- 0;
          t.len <- 0;
          t.scanned <- 0;
          `Too_long
        end
        else `Await

let has_room t = t.len - t.start < cap t

let pending t =
  t.discard
  || (t.len > t.start && match find_nl t t.start with None -> true | Some _ -> false)
