/* Readiness notification for the connection plane.

   Two backends behind one int-mask interface (1 = readable, 2 =
   writable, 4 = error): epoll(7) on Linux — O(1) per wakeup however
   many mostly-idle connections are registered — and poll(2) everywhere
   else.  Both waits release the OCaml runtime lock, so executor domains
   and the metrics thread keep running while the event thread blocks.

   The syscalls run against C stack/heap buffers only; OCaml arrays are
   touched before release and after re-acquisition of the runtime lock
   (they may move during the blocking section, so the rooted values are
   re-read afterwards). */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/memory.h>
#include <caml/threads.h>

#include <errno.h>
#include <poll.h>
#include <string.h>
#include <sys/resource.h>

#ifdef __linux__
#include <sys/epoll.h>
#endif

#define OPTJS_EV_READ 1
#define OPTJS_EV_WRITE 2
#define OPTJS_EV_ERROR 4

/* Bounded per-wait batch: level-triggered readiness re-reports anything
   left over, so a small fixed batch costs one extra syscall at worst. */
#define OPTJS_EV_BATCH 512

CAMLprim value optjs_evloop_has_epoll(value unit)
{
  (void)unit;
#ifdef __linux__
  return Val_true;
#else
  return Val_false;
#endif
}

CAMLprim value optjs_epoll_create(value unit)
{
  (void)unit;
#ifdef __linux__
  int fd = epoll_create1(EPOLL_CLOEXEC);
  return Val_long(fd < 0 ? -errno : fd);
#else
  return Val_long(-ENOSYS);
#endif
}

/* op: 0 = add, 1 = mod, 2 = del.  Returns 0 or -errno. */
CAMLprim value optjs_epoll_ctl(value vepfd, value vop, value vfd, value vmask)
{
#ifdef __linux__
  struct epoll_event ev;
  int mask = Int_val(vmask);
  int ops[3] = { EPOLL_CTL_ADD, EPOLL_CTL_MOD, EPOLL_CTL_DEL };
  memset(&ev, 0, sizeof ev);
  ev.events = 0;
  if (mask & OPTJS_EV_READ) ev.events |= EPOLLIN;
  if (mask & OPTJS_EV_WRITE) ev.events |= EPOLLOUT;
  ev.data.fd = Int_val(vfd);
  if (epoll_ctl(Int_val(vepfd), ops[Int_val(vop)], Int_val(vfd), &ev) != 0)
    return Val_long(-errno);
  return Val_long(0);
#else
  (void)vepfd; (void)vop; (void)vfd; (void)vmask;
  return Val_long(-ENOSYS);
#endif
}

/* Fills fds/evs (int arrays) with up to min(len, OPTJS_EV_BATCH) ready
   descriptors and their masks; returns the count, 0 on timeout or
   EINTR, -errno otherwise.  timeout is in ms, -1 = infinite. */
CAMLprim value optjs_epoll_wait(value vepfd, value vtimeout, value vfds,
                                value vevs)
{
  CAMLparam4(vepfd, vtimeout, vfds, vevs);
#ifdef __linux__
  struct epoll_event buf[OPTJS_EV_BATCH];
  int cap = Wosize_val(vfds);
  int epfd = Int_val(vepfd);
  int timeout = Int_val(vtimeout);
  int n, i;
  if ((int)Wosize_val(vevs) < cap) cap = Wosize_val(vevs);
  if (cap > OPTJS_EV_BATCH) cap = OPTJS_EV_BATCH;
  caml_release_runtime_system();
  n = epoll_wait(epfd, buf, cap, timeout);
  caml_acquire_runtime_system();
  if (n < 0) CAMLreturn(Val_long(errno == EINTR ? 0 : -errno));
  for (i = 0; i < n; i++) {
    int m = 0;
    if (buf[i].events & (EPOLLIN | EPOLLHUP)) m |= OPTJS_EV_READ;
    if (buf[i].events & EPOLLOUT) m |= OPTJS_EV_WRITE;
    if (buf[i].events & EPOLLERR) m |= OPTJS_EV_ERROR;
    Field(vfds, i) = Val_int(buf[i].data.fd);
    Field(vevs, i) = Val_int(m);
  }
  CAMLreturn(Val_long(n));
#else
  (void)vepfd; (void)vtimeout; (void)vfds; (void)vevs;
  CAMLreturn(Val_long(-ENOSYS));
#endif
}

/* Portable fallback: poll every fd in vfds with interest vmasks, write
   result masks into vrevs.  Returns ready count, 0 on timeout/EINTR,
   -errno otherwise. */
CAMLprim value optjs_poll(value vfds, value vmasks, value vrevs,
                          value vtimeout)
{
  CAMLparam4(vfds, vmasks, vrevs, vtimeout);
  int n = Wosize_val(vfds);
  int timeout = Int_val(vtimeout);
  int r, i;
  struct pollfd *pfds;
  if ((int)Wosize_val(vmasks) < n) n = Wosize_val(vmasks);
  if ((int)Wosize_val(vrevs) < n) n = Wosize_val(vrevs);
  pfds = caml_stat_alloc((n > 0 ? n : 1) * sizeof(struct pollfd));
  for (i = 0; i < n; i++) {
    int mask = Int_val(Field(vmasks, i));
    pfds[i].fd = Int_val(Field(vfds, i));
    pfds[i].events = 0;
    pfds[i].revents = 0;
    if (mask & OPTJS_EV_READ) pfds[i].events |= POLLIN;
    if (mask & OPTJS_EV_WRITE) pfds[i].events |= POLLOUT;
  }
  caml_release_runtime_system();
  r = poll(pfds, n, timeout);
  caml_acquire_runtime_system();
  if (r < 0) {
    int e = errno;
    caml_stat_free(pfds);
    CAMLreturn(Val_long(e == EINTR ? 0 : -e));
  }
  for (i = 0; i < n; i++) {
    int m = 0;
    if (pfds[i].revents & (POLLIN | POLLHUP)) m |= OPTJS_EV_READ;
    if (pfds[i].revents & POLLOUT) m |= OPTJS_EV_WRITE;
    if (pfds[i].revents & (POLLERR | POLLNVAL)) m |= OPTJS_EV_ERROR;
    Field(vrevs, i) = Val_int(m);
  }
  caml_stat_free(pfds);
  CAMLreturn(Val_long(r));
}

/* Query (soft < 0) or set-and-query the RLIMIT_NOFILE soft limit,
   clamped to the hard limit.  Returns the soft limit in effect, or
   -errno.  The fd-exhaustion tests shrink it to provoke EMFILE in
   accept(2); the connection-scaling bench checks headroom with it. */
CAMLprim value optjs_rlimit_nofile(value vsoft)
{
  struct rlimit rl;
  long want = Long_val(vsoft);
  if (getrlimit(RLIMIT_NOFILE, &rl) != 0) return Val_long(-errno);
  if (want >= 0) {
    rlim_t ns = (rlim_t)want;
    if (rl.rlim_max != RLIM_INFINITY && ns > rl.rlim_max) ns = rl.rlim_max;
    rl.rlim_cur = ns;
    if (setrlimit(RLIMIT_NOFILE, &rl) != 0) return Val_long(-errno);
  }
  if (rl.rlim_cur == RLIM_INFINITY || rl.rlim_cur > (rlim_t)Max_long)
    return Val_long(Max_long);
  return Val_long((long)rl.rlim_cur);
}
