let recommended_domains () = min 8 (Domain.recommended_domain_count ())

(* A one-shot mailbox: the submitting thread blocks in [await] until the
   executor [fill]s it.  Executors always fill every job they pop or
   steal, and shutdown drains every shard, so a submitted job cannot be
   dropped. *)
module Cell = struct
  type t = {
    lock : Mutex.t;
    cond : Condition.t;
    mutable value : Wire.response option;
  }

  let create () =
    { lock = Mutex.create (); cond = Condition.create (); value = None }

  let fill t v =
    Mutex.lock t.lock;
    t.value <- Some v;
    Condition.broadcast t.cond;
    Mutex.unlock t.lock

  let await t =
    Mutex.lock t.lock;
    while t.value = None do
      Condition.wait t.cond t.lock
    done;
    let v = Option.get t.value in
    Mutex.unlock t.lock;
    v
end

type job = {
  request : Wire.request;   (* Data-plane verbs only: jq/select/table/session. *)
  submitted : float;        (* Monotonic (Clock.now). *)
  deadline : float;         (* Absolute monotonic; [infinity] when unset. *)
  complete : Wire.response -> unit;
      (* Exactly-once completion: a blocking submit fills a Cell, an
         async submit hands the response to the event loop.  Runs on the
         executor domain, so it must stay cheap and never raise. *)
}

(* Warm per-executor state.  The executor domain is the only writer; the
   stats thread reads the memo lists under [lock] (list structure is
   immutable once published) and the Objective_cache counters racily —
   fine for monitoring, and documented in docs/serving.md. *)
type exec = {
  shard : int;              (* This executor's queue and metrics shard. *)
  lock : Mutex.t;
  mutable select_memos :
    ((string * int * float list * float * int) * Jsp.Objective_cache.t) list;
      (* (pool, version, prior, budget, seed) -> warm solver memo.  Budget
         and seed are part of the key on purpose: incremental objective
         values are path-dependent at ulp level, so a memo warmed by a
         *different* request could flip a Boltzmann accept and change the
         returned jury.  Keyed by the full request, a warm replay sees
         exactly the values the cold run computed — responses stay
         byte-identical whatever the cache temperature.  (The annealer
         additionally salts keys, but the full-request key also keeps each
         request's working set from evicting another's.) *)
  mutable retired : Jsp.Objective_cache.stats;
      (* Counters of memos dropped by the LRU cap, so hit-rates never
         regress in the stats output. *)
  mutable jq_memo :
    ((string * int * float list * int) * (float * float * int)) list;
      (* (pool, version, prior, buckets) -> (value, bound, n). *)
  mutable incs : ((float * int) * Jq.Incremental.t) list;
      (* (alpha, buckets) -> reusable fixed-width evaluator (binary pools). *)
  workspace : Jq.Workspace.t;
      (* Dense-kernel scratch, owned by this executor domain alone: jq
         evaluations at steady state reuse its buffers instead of
         allocating.  Never handed to another domain (see Jq.Workspace). *)
}

let select_memo_cap = 32
let jq_memo_cap = 128
let inc_cap = 8

type t = {
  registry : Registry.t;
  metrics : Metrics.t;
  queue : job Dispatch.t;
  queue_capacity : int;
  n_domains : int;
  deadline : float option;
  batch_max : int;
  num_buckets : int;
  inline_rr : int Atomic.t;   (* Spreads affinity-free requests. *)
  session_stores : (Mutex.t * Session.Store.t) array;
      (* One store per shard, indexed by the pool-name hash — the same
         affinity that routes session verbs, so a session's whole
         lifetime normally runs on its home executor's store.  The mutex
         (not shard ownership) is what guarantees consistency: a stolen
         or spilled session job still locks the session's *home* store,
         so state never splits across shards. *)
  fleet_stores : (Mutex.t * (string, Fleet.Allocator.t) Hashtbl.t) array;
      (* One allocator per pool, homed on the pool's affinity shard like
         session stores: same-pool fleet verbs serialize on one warm
         allocator (prices, proposal cache, memos), and the lock — not
         shard ownership — is what keeps a stolen fleet job
         consistent. *)
  shutdown_lock : Mutex.t;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
}

let registry t = t.registry
let metrics t = t.metrics
let domains t = t.n_domains

let with_lock lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

(* ---- executor-side evaluation -------------------------------------- *)

let exec_cache_stats exec =
  with_lock exec.lock (fun () ->
      List.fold_left
        (fun acc (_, memo) ->
          Jsp.Objective_cache.merge_stats acc (Jsp.Objective_cache.stats memo))
        exec.retired exec.select_memos)

let truncate_assoc ~cap ~drop list =
  if List.length list <= cap then list
  else begin
    let kept = List.filteri (fun i _ -> i < cap) list in
    List.iteri (fun i entry -> if i >= cap then drop entry) list;
    kept
  end

let select_memo exec ~pool_name ~version ~prior ~budget ~seed ~n =
  with_lock exec.lock (fun () ->
      let key = (pool_name, version, prior, budget, seed) in
      match List.assoc_opt key exec.select_memos with
      | Some memo -> memo
      | None ->
          let memo = Jsp.Objective_cache.create ~n () in
          exec.select_memos <-
            truncate_assoc ~cap:select_memo_cap
              ~drop:(fun (_, old) ->
                exec.retired <-
                  Jsp.Objective_cache.merge_stats exec.retired
                    (Jsp.Objective_cache.stats old))
              ((key, memo) :: exec.select_memos);
          memo)

let incremental_for exec ~alpha ~num_buckets =
  with_lock exec.lock (fun () ->
      let key = (alpha, num_buckets) in
      match List.assoc_opt key exec.incs with
      | Some inc -> inc
      | None ->
          let inc = Jq.Incremental.create ~num_buckets ~alpha () in
          exec.incs <-
            truncate_assoc ~cap:inc_cap ~drop:(fun _ -> ())
              ((key, inc) :: exec.incs);
          inc)

let unknown_pool name =
  Wire.Error
    { code = Wire.Unknown_pool; message = Printf.sprintf "no pool %S" name }

let unknown_session message = Wire.Error { code = Wire.Unknown_session; message }
let bad_request message = Wire.Error { code = Wire.Bad_request; message }

let unknown_task ~pool_name ~task_name =
  Wire.Error
    {
      code = Wire.Unknown_task;
      message = Printf.sprintf "no fleet task %s/%s" pool_name task_name;
    }

let session_store t name =
  t.session_stores.(Hashtbl.hash name mod Array.length t.session_stores)

let fleet_store t name =
  t.fleet_stores.(Hashtbl.hash name mod Array.length t.fleet_stores)

let prior_mismatch ~prior ~labels =
  Wire.Error
    {
      code = Wire.Bad_request;
      message =
        Printf.sprintf "prior has %d labels but pool has %d"
          (List.length prior) labels;
    }

let task_of_prior prior = Engine.Task.make ~prior:(Array.of_list prior)

(* Pool-jq: memoized per pool version; a binary-pool miss reuses the
   executor's fixed-width incremental evaluator (reset + one add pass per
   member), a matrix-pool miss runs the tuple-key bucket estimator. *)
let eval_jq_pool t exec ~name ~prior ~num_buckets =
  match Registry.find t.registry name with
  | None -> unknown_pool name
  | Some (pool, version) ->
      if List.length prior <> Engine.Pool.labels pool then
        prior_mismatch ~prior ~labels:(Engine.Pool.labels pool)
      else
        let key = (name, version, prior, num_buckets) in
        let value, bound, n =
          match
            with_lock exec.lock (fun () -> List.assoc_opt key exec.jq_memo)
          with
          | Some hit ->
              Metrics.jq_memo_hit t.metrics ~shard:exec.shard;
              hit
          | None ->
              let t0 = Clock.now () in
              let entry =
                match Engine.Pool.repr pool with
                | Engine.Pool.Binary scalars ->
                    let alpha = List.hd prior in
                    let inc = incremental_for exec ~alpha ~num_buckets in
                    Jq.Incremental.reset inc;
                    Array.iter (Jq.Incremental.add_worker inc)
                      (Workers.Pool.qualities scalars);
                    ( Jq.Incremental.value inc,
                      Jq.Incremental.error_bound inc,
                      Workers.Pool.size scalars )
                | Engine.Pool.Matrix _ ->
                    let scored =
                      Engine.Objective.bv_bucket_scored ~num_buckets
                        ~workspace:exec.workspace ()
                        ~task:(task_of_prior prior) pool
                    in
                    Metrics.jq_flat_fallback t.metrics ~shard:exec.shard
                      ~count:scored.Engine.Objective.flat_fallbacks;
                    ( scored.Engine.Objective.score,
                      scored.Engine.Objective.bound,
                      Engine.Pool.size pool )
              in
              Metrics.jq_eval t.metrics ~shard:exec.shard
                ~ns:(1e9 *. (Clock.now () -. t0));
              with_lock exec.lock (fun () ->
                  exec.jq_memo <-
                    truncate_assoc ~cap:jq_memo_cap ~drop:(fun _ -> ())
                      ((key, entry) :: exec.jq_memo));
              entry
        in
        Wire.Jq_result { value; error_bound = bound; n }

let eval_jq_inline t exec ~qualities ~prior ~num_buckets =
  match prior with
  | [ alpha; _ ] ->
      let t0 = Clock.now () in
      let stats =
        Jq.Bucket.estimate_stats ~workspace:exec.workspace ~num_buckets ~alpha
          (Array.of_list qualities)
      in
      Metrics.jq_eval t.metrics ~shard:exec.shard
        ~ns:(1e9 *. (Clock.now () -. t0));
      Wire.Jq_result
        {
          value = stats.Jq.Bucket.value;
          error_bound = stats.Jq.Bucket.error_bound;
          n = List.length qualities;
        }
  | _ ->
      Wire.Error
        {
          code = Wire.Bad_request;
          message = "inline qualities are binary: prior must have 2 labels";
        }

let solve_select t exec ~pool ~version ~pool_name ~budget ~prior ~seed =
  let memo =
    select_memo exec ~pool_name ~version ~prior ~budget ~seed
      ~n:(Engine.Pool.size pool)
  in
  let rng = Prob.Rng.create seed in
  Jsp.Annealing.solve_engine ~num_buckets:t.num_buckets ~memo ~rng
    ~task:(task_of_prior prior) ~budget pool

let eval_select t exec ~name ~budget ~prior ~seed =
  match Registry.find t.registry name with
  | None -> unknown_pool name
  | Some (pool, version) ->
      if List.length prior <> Engine.Pool.labels pool then
        prior_mismatch ~prior ~labels:(Engine.Pool.labels pool)
      else
        let result =
          solve_select t exec ~pool ~version ~pool_name:name ~budget ~prior
            ~seed
        in
        let ids = Engine.Pool.ids result.Jsp.Solver.jury in
        Registry.note_standing t.registry ~name ~budget ~prior ~seed ~jury:ids;
        Wire.Select_result
          {
            ids;
            score = result.Jsp.Solver.score;
            cost = Engine.Pool.total_cost result.Jsp.Solver.jury;
          }

(* Each row is solved exactly as the equivalent [select] (fresh RNG from
   the same seed, same memo key), so a table is byte-wise consistent with
   row-by-row selects. *)
let eval_table t exec ~name ~budgets ~prior ~seed =
  match Registry.find t.registry name with
  | None -> unknown_pool name
  | Some (pool, version) ->
      if List.length prior <> Engine.Pool.labels pool then
        prior_mismatch ~prior ~labels:(Engine.Pool.labels pool)
      else
        let rows =
          List.map
            (fun budget ->
              let result =
                solve_select t exec ~pool ~version ~pool_name:name ~budget
                  ~prior ~seed
              in
              {
                Wire.budget;
                ids = Engine.Pool.ids result.Jsp.Solver.jury;
                quality = result.Jsp.Solver.score;
                required = Engine.Pool.total_cost result.Jsp.Solver.jury;
              })
            budgets
        in
        Wire.Table_result rows

(* ---- quality plane --------------------------------------------------- *)

(* Drift-triggered re-selection: re-solve every standing jury recorded for
   the pool against its freshly bumped version.  Each spec re-runs the
   annealer exactly as the equivalent [select] would (fresh RNG, version-
   keyed memo), so the refreshed juries are byte-identical to what a
   client re-issuing the original requests would get. *)
let reselect_standing t exec ~name =
  match Registry.find t.registry name with
  | None -> 0
  | Some (pool, version) -> (
      match Registry.standing t.registry name with
      | [] ->
          Registry.clear_stale t.registry ~name;
          0
      | specs ->
          let juries =
            List.map
              (fun (budget, prior, seed, _old) ->
                let result =
                  solve_select t exec ~pool ~version ~pool_name:name ~budget
                    ~prior ~seed
                in
                (budget, prior, seed, Engine.Pool.ids result.Jsp.Solver.jury))
              specs
          in
          Registry.refresh_standing t.registry ~name ~juries;
          Metrics.recal_run t.metrics ~shard:exec.shard
            ~count:(List.length juries);
          List.length juries)

let eval_report t exec ~name votes =
  let t0 = Clock.now () in
  match Registry.report t.registry ~name votes with
  | Error `Unknown_pool -> unknown_pool name
  | Error (`Invalid msg) -> bad_request msg
  | Ok r ->
      Metrics.ingest t.metrics ~shard:exec.shard ~votes:r.Registry.applied
        ~ns:(1e9 *. (Clock.now () -. t0));
      let recals =
        if r.Registry.stale then reselect_standing t exec ~name else 0
      in
      Wire.Report_result
        {
          name;
          version = r.Registry.version;
          applied = r.Registry.applied;
          pending = r.Registry.pending;
          drifted =
            List.map (fun (d : Workers.Calib.drift) -> d.worker) r.drifted;
          stale = r.Registry.stale;
          recals;
        }

let eval_recal t exec ~name =
  let t0 = Clock.now () in
  match Registry.recal t.registry ~name with
  | Error `Unknown_pool -> unknown_pool name
  | Ok r ->
      Metrics.ingest t.metrics ~shard:exec.shard ~votes:r.Registry.applied
        ~ns:(1e9 *. (Clock.now () -. t0));
      let recals =
        if r.Registry.stale then reselect_standing t exec ~name else 0
      in
      Wire.Report_result
        {
          name;
          version = r.Registry.version;
          applied = r.Registry.applied;
          pending = r.Registry.pending;
          drifted =
            List.map (fun (d : Workers.Calib.drift) -> d.worker) r.drifted;
          stale = r.Registry.stale;
          recals;
        }

let eval_quality t ~name =
  match Registry.quality t.registry ~name with
  | None -> unknown_pool name
  | Some (workers, version) -> Wire.Quality_result { name; version; workers }

(* Decided sessions feed the quality plane exactly once: their votes enter
   the pool's calibrator as gold examples when [decide] carried a truth
   label, ungraded otherwise.  Runs after the session store lock is
   released (the calibrator has its own lock, and a drift flag here can
   trigger a solver run). *)
let ingest_session_votes t exec ~pool_name ~task_name ~truth votes =
  let task_id = Hashtbl.hash task_name in
  let calib_votes =
    List.map
      (fun (worker, label) ->
        { Workers.Calib.task = task_id; worker; label; truth })
      votes
  in
  let t0 = Clock.now () in
  match Registry.report t.registry ~name:pool_name calib_votes with
  | Error _ -> ()
  | Ok r ->
      Metrics.ingest t.metrics ~shard:exec.shard ~votes:r.Registry.applied
        ~ns:(1e9 *. (Clock.now () -. t0));
      if r.Registry.stale then
        ignore (reselect_standing t exec ~name:pool_name)

(* ---- session verbs -------------------------------------------------- *)

(* Every session verb answers with the full session snapshot.  The reply
   is a pure function of (pool contents, vote history, request) — the
   clock only feeds idle-expiry bookkeeping — so warm and cold replays
   stay byte-identical, matching the jq/select determinism contract. *)
let session_reply ~pool_name ~task_name ?(closed = false) ?advice session =
  let state, decision, certified, reason =
    match Session.Task.progress session with
    | Session.Task.Soliciting -> (Wire.Sess_open, None, false, None)
    | Session.Task.Decided { label; certified; reason } ->
        (Wire.Sess_decided, Some label, certified, Some reason)
    | Session.Task.Exhausted { label; reason } ->
        ( Wire.Sess_exhausted,
          Some label,
          Session.Task.certified_now session,
          Some reason )
  in
  let next = Session.Task.next session in
  let advice =
    match advice with
    | Some a -> a
    | None -> ( match next with None -> [] | Some i -> [ i ])
  in
  Wire.Session_result
    {
      pool = pool_name;
      task = task_name;
      state = (if closed then Wire.Sess_closed else state);
      posterior = Array.to_list (Session.Task.posterior session);
      votes = Session.Task.votes_seen session;
      spent = Session.Task.spent session;
      next;
      advice;
      decision;
      certified;
      reason;
    }

let terminal session =
  match Session.Task.progress session with
  | Session.Task.Soliciting -> false
  | Session.Task.Decided _ | Session.Task.Exhausted _ -> true

let eval_session_open t exec ~pool_name ~task_name ~prior ~budget ~confidence
    ~gain_floor ~policy =
  match Registry.find t.registry pool_name with
  | None -> unknown_pool pool_name
  | Some (pool, version) ->
      if List.length prior <> Engine.Pool.labels pool then
        prior_mismatch ~prior ~labels:(Engine.Pool.labels pool)
      else (
        match
          Session.Task.create ~workspace:exec.workspace ~pool
            ~pool_version:version ~task:(task_of_prior prior) ~budget
            ~confidence ~gain_floor ~policy ~now:(Clock.now ()) ()
        with
        | Error msg -> bad_request msg
        | Ok session ->
            let lock, store = session_store t pool_name in
            with_lock lock (fun () ->
                match
                  Session.Store.open_session store ~pool:pool_name
                    ~task:task_name ~session ~now:(Clock.now ())
                with
                | `Ok ->
                    if terminal session then Session.Store.note_decided store;
                    session_reply ~pool_name ~task_name session
                | `Exists ->
                    bad_request
                      (Printf.sprintf "session %s/%s already open" pool_name
                         task_name)
                | `Full ->
                    Wire.Error
                      {
                        code = Wire.Overload;
                        message = "session store full";
                      }))

(* Look up a live session under its home store's lock and run [f] on it.
   The registry is consulted first so a pool-put between two votes
   invalidates the session here, not at some later sweep. *)
let with_session t ~pool_name ~task_name f =
  match Registry.find t.registry pool_name with
  | None -> unknown_pool pool_name
  | Some (_, version) ->
      let lock, store = session_store t pool_name in
      with_lock lock (fun () ->
          match
            Session.Store.find store ~pool:pool_name ~task:task_name
              ~now:(Clock.now ()) ~version
          with
          | `Missing ->
              unknown_session
                (Printf.sprintf "no session %s/%s" pool_name task_name)
          | `Expired ->
              unknown_session
                (Printf.sprintf "session %s/%s idle-expired" pool_name
                   task_name)
          | `Invalidated ->
              unknown_session
                (Printf.sprintf
                   "session %s/%s invalidated by a pool update" pool_name
                   task_name)
          | `Found session -> f store session)

let eval_session_vote t exec ~pool_name ~task_name ~worker ~label =
  let feed = ref None in
  let response =
    with_session t ~pool_name ~task_name (fun store session ->
        let was_open = not (terminal session) in
        match
          Session.Task.vote ~workspace:exec.workspace session ~worker ~label
            ~now:(Clock.now ())
        with
        | Error msg -> bad_request msg
        | Ok () ->
            if was_open && terminal session then begin
              Session.Store.note_decided store;
              if Session.Task.mark_fed session then
                feed := Some (Session.Task.votes session)
            end;
            session_reply ~pool_name ~task_name session)
  in
  (match !feed with
  | Some votes when votes <> [] ->
      ingest_session_votes t exec ~pool_name ~task_name ~truth:None votes
  | _ -> ());
  response

let eval_session_advise t exec ~pool_name ~task_name ~k =
  with_session t ~pool_name ~task_name (fun _store session ->
      let advice =
        Session.Task.advise_k ~workspace:exec.workspace session ~k
          ~now:(Clock.now ())
      in
      session_reply ~pool_name ~task_name ~advice session)

let eval_session_decide t exec ~pool_name ~task_name ~truth =
  let feed = ref None in
  let response =
    with_session t ~pool_name ~task_name (fun store session ->
        let labels = Engine.Task.labels (Session.Task.task session) in
        match truth with
        | Some g when g < 0 || g >= labels ->
            bad_request
              (Printf.sprintf "truth %d out of range for %d labels" g labels)
        | _ ->
            let was_open = not (terminal session) in
            Session.Task.decide session ~now:(Clock.now ());
            if was_open then Session.Store.note_decided store;
            if Session.Task.mark_fed session then
              feed := Some (Session.Task.votes session);
            session_reply ~pool_name ~task_name session)
  in
  (match !feed with
  | Some votes when votes <> [] ->
      ingest_session_votes t exec ~pool_name ~task_name ~truth votes
  | _ -> ());
  response

let eval_session_close t ~pool_name ~task_name =
  let lock, store = session_store t pool_name in
  with_lock lock (fun () ->
      match Session.Store.remove store ~pool:pool_name ~task:task_name with
      | None ->
          unknown_session
            (Printf.sprintf "no session %s/%s" pool_name task_name)
      | Some session -> session_reply ~pool_name ~task_name ~closed:true session)

let eval_session t exec request =
  let t0 = Clock.now () in
  let response =
    match request with
    | Wire.Session_open { pool; task; prior; budget; confidence; gain_floor; policy }
      ->
        eval_session_open t exec ~pool_name:pool ~task_name:task ~prior ~budget
          ~confidence ~gain_floor ~policy
    | Wire.Session_vote { pool; task; worker; label } ->
        eval_session_vote t exec ~pool_name:pool ~task_name:task ~worker ~label
    | Wire.Session_advise { pool; task; k } ->
        eval_session_advise t exec ~pool_name:pool ~task_name:task ~k
    | Wire.Session_decide { pool; task; truth } ->
        eval_session_decide t exec ~pool_name:pool ~task_name:task ~truth
    | Wire.Session_close { pool; task } ->
        eval_session_close t ~pool_name:pool ~task_name:task
    | _ -> assert false
  in
  Metrics.session_verb t.metrics ~shard:exec.shard
    ~ns:(1e9 *. (Clock.now () -. t0));
  response

(* ---- fleet verbs ---------------------------------------------------- *)

(* Look up the pool's shared allocator under its home store's lock,
   creating it on first touch and resyncing it when the registry version
   moved — quality-plane batches and pool-puts invalidate fleet state by
   the same version rule as every other per-pool cache.  The allocator
   fans inner solves itself, so it runs with [domains = 1] here: the
   service's parallelism is across shards, not within one verb. *)
let with_fleet t ~pool_name f =
  match Registry.find t.registry pool_name with
  | None -> unknown_pool pool_name
  | Some (pool, version) ->
      let lock, store = fleet_store t pool_name in
      with_lock lock (fun () ->
          let alloc =
            match Hashtbl.find_opt store pool_name with
            | Some a ->
                Fleet.Allocator.set_pool a ~pool ~version;
                a
            | None ->
                let config =
                  { Fleet.Allocator.default_config with
                    num_buckets = t.num_buckets;
                  }
                in
                let a = Fleet.Allocator.create ~config ~pool ~version () in
                Hashtbl.add store pool_name a;
                a
          in
          f alloc)

let fleet_task_reply ~pool_name (a : Fleet.Allocator.assignment) =
  Wire.Fleet_task
    {
      pool = pool_name;
      task = a.id;
      jury = a.jury;
      score = a.score;
      cost = a.cost;
      tier = a.tier;
    }

let eval_fleet_submit t exec ~pool_name ~task_name ~prior ~budget ~tier ~target
    =
  with_fleet t ~pool_name (fun alloc ->
      let labels = Engine.Pool.labels (Fleet.Allocator.pool alloc) in
      if List.length prior <> labels then prior_mismatch ~prior ~labels
      else
        match
          Fleet.Spec.make ~tier ~target ~id:task_name
            ~prior:(Array.of_list prior) ~budget ()
        with
        | exception Invalid_argument msg -> bad_request msg
        | spec -> (
            let t0 = Clock.now () in
            match Fleet.Allocator.submit alloc spec with
            | exception Invalid_argument msg -> bad_request msg
            | assignment ->
                Metrics.fleet_assign t.metrics ~shard:exec.shard
                  ~ns:(1e9 *. (Clock.now () -. t0));
                fleet_task_reply ~pool_name assignment))

let eval_fleet_status t ~pool_name ~task_name =
  with_fleet t ~pool_name (fun alloc ->
      match task_name with
      | Some task_name -> (
          match Fleet.Allocator.find alloc ~id:task_name with
          | None -> unknown_task ~pool_name ~task_name
          | Some assignment -> fleet_task_reply ~pool_name assignment)
      | None ->
          let assigned =
            List.length
              (List.filter
                 (fun (a : Fleet.Allocator.assignment) -> a.jury <> [])
                 (Fleet.Allocator.assignments alloc))
          in
          Wire.Fleet_summary
            {
              pool = pool_name;
              version = Fleet.Allocator.pool_version alloc;
              epoch = Fleet.Allocator.epoch alloc;
              tasks = Fleet.Allocator.task_count alloc;
              assigned;
              claimed = Fleet.Allocator.claimed alloc;
              priced = Fleet.Allocator.priced alloc;
              aggregate = Fleet.Allocator.aggregate alloc;
            })

let eval_fleet_release t exec ~pool_name ~task_name ~decided =
  with_fleet t ~pool_name (fun alloc ->
      match Fleet.Allocator.release alloc ~id:task_name ~decided with
      | None -> unknown_task ~pool_name ~task_name
      | Some (assignment : Fleet.Allocator.assignment) ->
          Metrics.fleet_release t.metrics ~shard:exec.shard;
          Wire.Fleet_released
            {
              pool = pool_name;
              task = task_name;
              freed = List.length assignment.jury;
            })

(* Summed allocator counters across every shard store — the [fleet_*]
   gauge rows of [stats].  Runs on the snapshotting thread, taking each
   store's lock in turn. *)
let fleet_gauges t =
  let pools = ref 0
  and tasks = ref 0
  and claimed = ref 0
  and priced = ref 0
  and capacity = ref 0 in
  let full = ref 0
  and delta = ref 0
  and rounds = ref 0
  and inner = ref 0
  and hits = ref 0
  and conflicts = ref 0
  and resyncs = ref 0 in
  Array.iter
    (fun (lock, store) ->
      with_lock lock (fun () ->
          Hashtbl.iter
            (fun _ alloc ->
              incr pools;
              tasks := !tasks + Fleet.Allocator.task_count alloc;
              claimed := !claimed + Fleet.Allocator.claimed alloc;
              priced := !priced + Fleet.Allocator.priced alloc;
              capacity :=
                !capacity + Engine.Pool.size (Fleet.Allocator.pool alloc);
              let s = Fleet.Allocator.stats alloc in
              full := !full + s.Fleet.Allocator.full_solves;
              delta := !delta + s.Fleet.Allocator.delta_solves;
              rounds := !rounds + s.Fleet.Allocator.price_rounds;
              inner := !inner + s.Fleet.Allocator.inner_solves;
              hits := !hits + s.Fleet.Allocator.proposal_hits;
              conflicts := !conflicts + s.Fleet.Allocator.conflicts;
              resyncs := !resyncs + s.Fleet.Allocator.resyncs)
            store))
    t.fleet_stores;
  let f = float_of_int in
  [
    ("fleet_pools", f !pools);
    ("fleet_tasks", f !tasks);
    ("fleet_claimed", f !claimed);
    ("fleet_priced", f !priced);
    ( "fleet_contention",
      if !capacity = 0 then 0. else f !priced /. f !capacity );
    ("fleet_full_solves", f !full);
    ("fleet_delta_solves", f !delta);
    ("fleet_price_rounds", f !rounds);
    ("fleet_inner_solves", f !inner);
    ("fleet_proposal_hits", f !hits);
    ("fleet_conflicts", f !conflicts);
    ("fleet_resyncs", f !resyncs);
  ]

let eval t exec request =
  match request with
  | Wire.Jq { source = Wire.Named name; prior; num_buckets } ->
      eval_jq_pool t exec ~name ~prior ~num_buckets
  | Wire.Jq { source = Wire.Inline qualities; prior; num_buckets } ->
      eval_jq_inline t exec ~qualities ~prior ~num_buckets
  | Wire.Select { pool; budget; prior; seed } ->
      eval_select t exec ~name:pool ~budget ~prior ~seed
  | Wire.Table { pool; budgets; prior; seed } ->
      eval_table t exec ~name:pool ~budgets ~prior ~seed
  | Wire.Session_open _ | Wire.Session_vote _ | Wire.Session_advise _
  | Wire.Session_decide _ | Wire.Session_close _ ->
      eval_session t exec request
  | Wire.Report { pool; votes } -> eval_report t exec ~name:pool votes
  | Wire.Recal { pool } -> eval_recal t exec ~name:pool
  | Wire.Quality { pool } -> eval_quality t ~name:pool
  | Wire.Fleet_submit { pool; task; prior; budget; tier; target } ->
      eval_fleet_submit t exec ~pool_name:pool ~task_name:task ~prior ~budget
        ~tier ~target
  | Wire.Fleet_status { pool; task } ->
      eval_fleet_status t ~pool_name:pool ~task_name:task
  | Wire.Fleet_release { pool; task; decided } ->
      eval_fleet_release t exec ~pool_name:pool ~task_name:task ~decided
  | Wire.Ping | Wire.Stats | Wire.Pool_put _ | Wire.Pool_list ->
      (* Control-plane verbs are answered inline by [submit]. *)
      assert false

let safe_eval t exec request =
  try eval t exec request
  with exn ->
    Wire.Error { code = Wire.Internal; message = Printexc.to_string exn }

let verb_of = function
  | Wire.Ping -> "ping"
  | Wire.Jq _ -> "jq"
  | Wire.Select _ -> "select"
  | Wire.Table _ -> "table"
  | Wire.Pool_put _ -> "pool-put"
  | Wire.Pool_list -> "pool-list"
  | Wire.Stats -> "stats"
  | Wire.Session_open _ -> "open"
  | Wire.Session_vote _ -> "vote"
  | Wire.Session_advise _ -> "advise"
  | Wire.Session_decide _ -> "decide"
  | Wire.Session_close _ -> "close"
  | Wire.Report _ -> "report"
  | Wire.Quality _ -> "quality"
  | Wire.Recal _ -> "recal"
  | Wire.Fleet_submit _ -> "fleet-submit"
  | Wire.Fleet_status _ -> "fleet-status"
  | Wire.Fleet_release _ -> "fleet-release"

let response_ok = function Wire.Error _ -> false | _ -> true

let reply t exec job response =
  job.complete response;
  Metrics.record t.metrics ~shard:exec.shard ~verb:(verb_of job.request)
    ~latency:(Clock.now () -. job.submitted)
    ~ok:(response_ok response)

(* Two queued jobs coalesce when they are jq queries answered by the very
   same evaluation: same named pool, prior and bucket count. *)
let batchable a b =
  match (a.request, b.request) with
  | ( Wire.Jq { source = Wire.Named p1; prior = a1; num_buckets = b1 },
      Wire.Jq { source = Wire.Named p2; prior = a2; num_buckets = b2 } ) ->
      String.equal p1 p2 && a1 = a2 && b1 = b2
  | _ -> false

let process_batch t exec jobs =
  let now = Clock.now () in
  let live, expired =
    List.partition (fun (job : job) -> now <= job.deadline) jobs
  in
  List.iter
    (fun job ->
      Metrics.deadline t.metrics ~shard:exec.shard;
      reply t exec job
        (Wire.Error { code = Wire.Deadline; message = "expired in queue" }))
    expired;
  match live with
  | [] -> ()
  | first :: rest ->
      let response = safe_eval t exec first.request in
      reply t exec first response;
      (* Followers are compatible by construction: same evaluation. *)
      if rest <> [] then begin
        Metrics.batch t.metrics ~shard:exec.shard ~size:(List.length live);
        List.iter (fun job -> reply t exec job response) rest
      end

(* Annealing solves allocate heavily, and in a multi-domain runtime
   every minor collection is a stop-the-world handshake across all
   domains.  A serving executor trades a little memory (32 MB of minor
   heap per domain) for an order-of-magnitude fewer handshakes — on an
   overcommitted host the sync cost, not the collection itself, is what
   collapses multi-domain throughput. *)
let executor_minor_heap_words = 4 * 1024 * 1024

let executor_loop t exec =
  Gc.set { (Gc.get ()) with minor_heap_size = executor_minor_heap_words };
  let rec loop () =
    match
      Dispatch.pop_batch t.queue ~shard:exec.shard ~max:t.batch_max
        ~compatible:batchable
    with
    | None -> ()
    | Some (jobs, origin) ->
        if origin = `Stolen then Metrics.steal t.metrics ~shard:exec.shard;
        process_batch t exec jobs;
        loop ()
  in
  loop ()

(* ---- lifecycle and submission -------------------------------------- *)

let create ?domains:(n_domains = recommended_domains ()) ?(queue_capacity = 256)
    ?deadline ?(batch_max = 32) ?(num_buckets = Jq.Bucket.default_num_buckets)
    ?(session_cap = Session.Store.default_cap)
    ?(session_ttl = Session.Store.default_ttl) ?calib_config () =
  if n_domains <= 0 then invalid_arg "Service.create: domains <= 0";
  if queue_capacity <= 0 then invalid_arg "Service.create: queue_capacity <= 0";
  if batch_max <= 0 then invalid_arg "Service.create: batch_max <= 0";
  if num_buckets <= 0 then invalid_arg "Service.create: num_buckets <= 0";
  (match deadline with
  | Some d when d <= 0. || Float.is_nan d ->
      invalid_arg "Service.create: deadline <= 0"
  | _ -> ());
  let t =
    {
      registry = Registry.create ?calib_config ();
      metrics = Metrics.create ~shards:n_domains ();
      queue = Dispatch.create ~shards:n_domains ~capacity:queue_capacity;
      queue_capacity;
      n_domains;
      deadline;
      batch_max;
      num_buckets;
      inline_rr = Atomic.make 0;
      session_stores =
        Array.init n_domains (fun _ ->
            ( Mutex.create (),
              Session.Store.create ~cap:session_cap ~ttl:session_ttl () ));
      fleet_stores =
        Array.init n_domains (fun _ -> (Mutex.create (), Hashtbl.create 4));
      shutdown_lock = Mutex.create ();
      closed = false;
      workers = [];
    }
  in
  Array.iter
    (fun (lock, store) ->
      Metrics.add_sessions t.metrics ~stats:(fun () ->
          with_lock lock (fun () -> Session.Store.stats store)))
    t.session_stores;
  Metrics.add_gauges t.metrics ~gauges:(fun () -> fleet_gauges t);
  t.workers <-
    List.init n_domains (fun shard ->
        let exec =
          {
            shard;
            lock = Mutex.create ();
            select_memos = [];
            retired = Jsp.Objective_cache.empty_stats;
            jq_memo = [];
            incs = [];
            workspace = Jq.Workspace.create ();
          }
        in
        Metrics.add_cache t.metrics ~merge:(fun () -> exec_cache_stats exec);
        Domain.spawn (fun () -> executor_loop t exec));
  t

let stats t =
  let f = float_of_int in
  List.sort compare
    (Metrics.snapshot t.metrics
    @ [
        ("domains", f t.n_domains);
        ("queue_len", f (Dispatch.length t.queue));
        ("queue_capacity", f t.queue_capacity);
        ("stale_pools", f (Registry.stale_pools t.registry));
        ("drift_flags", f (Registry.drift_total t.registry));
      ])

let inline_reply t ~start request response =
  Metrics.record t.metrics
    ~shard:(Metrics.submitter t.metrics)
    ~verb:(verb_of request)
    ~latency:(Clock.now () -. start)
    ~ok:(response_ok response);
  response

(* Same-pool requests land on the same shard — preserving batching and
   that shard's warm caches; requests without a pool spread round-robin
   (any executor computes the identical reply). *)
let affinity_of t request =
  match request with
  | Wire.Jq { source = Wire.Named name; _ }
  | Wire.Select { pool = name; _ }
  | Wire.Table { pool = name; _ }
  | Wire.Session_open { pool = name; _ }
  | Wire.Session_vote { pool = name; _ }
  | Wire.Session_advise { pool = name; _ }
  | Wire.Session_decide { pool = name; _ }
  | Wire.Session_close { pool = name; _ }
  | Wire.Report { pool = name; _ }
  | Wire.Quality { pool = name; _ }
  | Wire.Recal { pool = name; _ }
  | Wire.Fleet_submit { pool = name; _ }
  | Wire.Fleet_status { pool = name; _ }
  | Wire.Fleet_release { pool = name; _ } ->
      Hashtbl.hash name
  | _ -> Atomic.fetch_and_add t.inline_rr 1

(* One submission path for both faces: control-plane verbs are answered
   inline on the calling thread (and [complete]d immediately), compute
   verbs are enqueued with [complete] as their continuation.  [complete]
   is called exactly once — synchronously for inline replies, admission
   rejections and drain refusals, from an executor domain otherwise. *)
let dispatch t request ~complete =
  let start = Clock.now () in
  match request with
  | Wire.Ping -> complete (inline_reply t ~start request Wire.Pong)
  | Wire.Stats ->
      complete (inline_reply t ~start request (Wire.Stats_result (stats t)))
  | Wire.Pool_list ->
      complete
        (inline_reply t ~start request
           (Wire.Pool_entries (Registry.list t.registry)))
  | Wire.Pool_put { name; workers } -> (
      (* Wire decoding already validated the rows (uniform kind and ℓ,
         entries in range, stochastic matrix rows), so construction can
         only fail on a genuinely malformed request. *)
      match
        match workers with
        | Wire.Matrix_row _ :: _ ->
            Engine.Pool.of_confusions
              (Array.of_list
                 (List.mapi
                    (fun id -> function
                      | Wire.Matrix_row (matrix, cost) ->
                          Workers.Confusion.make ~id ~matrix ~cost ()
                      | Wire.Scalar _ -> assert false)
                    workers))
        | _ ->
            Engine.Pool.of_workers
              (Workers.Pool.of_list
                 (List.mapi
                    (fun id -> function
                      | Wire.Scalar (quality, cost) ->
                          Workers.Worker.make ~id ~quality ~cost ()
                      | Wire.Matrix_row _ -> assert false)
                    workers))
      with
      | pool ->
          let version = Registry.upsert t.registry ~name pool in
          complete
            (inline_reply t ~start request
               (Wire.Pool_info { name; version; size = Engine.Pool.size pool }))
      | exception Invalid_argument msg ->
          complete
            (inline_reply t ~start request
               (Wire.Error { code = Wire.Bad_request; message = msg })))
  | Wire.Jq _ | Wire.Select _ | Wire.Table _ | Wire.Session_open _
  | Wire.Session_vote _ | Wire.Session_advise _ | Wire.Session_decide _
  | Wire.Session_close _ | Wire.Report _ | Wire.Quality _ | Wire.Recal _
  | Wire.Fleet_submit _ | Wire.Fleet_status _ | Wire.Fleet_release _ -> (
      let job =
        {
          request;
          submitted = start;
          deadline =
            (match t.deadline with Some d -> start +. d | None -> infinity);
          complete;
        }
      in
      match Dispatch.push t.queue ~affinity:(affinity_of t request) job with
      | `Ok -> ()
      | `Closed ->
          complete
            (inline_reply t ~start request
               (Wire.Error { code = Wire.Shutdown; message = "service draining" }))
      | `Overload ->
          Metrics.overload t.metrics;
          complete
            (Wire.Error
               {
                 code = Wire.Overload;
                 message =
                   Printf.sprintf "queue full (%d waiting)" t.queue_capacity;
               }))

let submit t request =
  let cell = Cell.create () in
  dispatch t request ~complete:(Cell.fill cell);
  Cell.await cell

let submit_async t request ~k = dispatch t request ~complete:k

let shutdown t =
  let workers =
    with_lock t.shutdown_lock (fun () ->
        if t.closed then []
        else begin
          t.closed <- true;
          Dispatch.close t.queue;
          let w = t.workers in
          t.workers <- [];
          w
        end)
  in
  List.iter Domain.join workers
