(** Bounded newline framing over a per-connection reused buffer.

    The event loop reads straight into the frame's buffer
    ({!reserve}/{!commit} — no per-read allocation) and pulls complete
    request lines out with {!next}.  The buffer never grows past
    [max_line + 1] bytes, so an attacker streaming a newline-free line
    costs a bounded buffer and one [`Too_long] event, not unbounded
    memory: the frame then discards input up to the next ['\n'] and
    resumes framing, keeping the connection usable.

    A full buffer that holds complete-but-unconsumed lines (a pipelining
    client outrunning the service) makes {!reserve} return [None] —
    the caller's backpressure signal to stop reading until {!next}
    drains. *)

type t

val create : ?initial:int -> max_line:int -> unit -> t
(** [max_line] is the longest accepted line, exclusive of the
    terminating newline; the buffer starts at [initial] (default 4096,
    clamped to the cap) bytes and grows on demand to [max_line + 1].
    @raise Invalid_argument for [max_line <= 0]. *)

val reserve : t -> (Bytes.t * int * int) option
(** [Some (buf, off, room)]: read up to [room] bytes into [buf] at
    [off], then {!commit} the count actually read.  [None] when the
    buffer is full of undrained lines (backpressure). *)

val commit : t -> int -> unit
(** Account [n] bytes just read into the last {!reserve} window. *)

val next : t -> [ `Line of string | `Too_long | `Await ]
(** Pull the next complete line (newline stripped; bytes otherwise
    untouched).  [`Too_long] reports an over-limit line once — the
    frame switches to discarding until the line's newline arrives, then
    frames normally again.  [`Await] means no complete line is
    buffered. *)

val pending : t -> bool
(** True when a partial line (or an over-limit line still being
    discarded) is buffered — the condition the server's read deadline
    (slow-loris defense) applies to.  Complete undrained lines alone do
    not count as pending. *)

val has_room : t -> bool
(** True when {!reserve} would return a window — the read-interest
    condition for the event loop. *)

val buffered : t -> int
(** Bytes currently buffered (diagnostics). *)
