#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

/* CLOCK_MONOTONIC never steps: an NTP adjustment of the wall clock cannot
   mis-expire queued jobs or corrupt latency quantiles.  Seconds as a
   double keeps call sites drop-in for the Unix.gettimeofday they replace
   (53-bit mantissa ~ nanosecond resolution for centuries of uptime). */
CAMLprim value optjs_clock_monotonic_s(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_double((double)ts.tv_sec + 1e-9 * (double)ts.tv_nsec);
}
