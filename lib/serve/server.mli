(** TCP front end for a {!Service}: newline-delimited {!Wire} messages.

    One systhread accepts connections; each connection gets a reader
    thread that decodes a line, calls {!Service.submit}, and writes the
    encoded reply — so a connection is a serial request/response stream
    (pipeline depth 1), while concurrency comes from many connections.
    Unparseable lines are answered [err bad-request ...]; only EOF or a
    socket error closes a connection. *)

type t

val create : ?backlog:int -> port:int -> Service.t -> t
(** Bind and listen on 127.0.0.1:[port] ([port] 0 picks an ephemeral port
    — read it back with {!port}).  [backlog] defaults to 64.
    @raise Unix.Unix_error when the address is taken. *)

val port : t -> int
(** The actually bound port. *)

val start : t -> unit
(** Launch the accept loop in a background thread and return. *)

val run : ?log_interval:float -> t -> unit
(** {!start}, plus a periodic {!Metrics.pp_line} log line to stderr every
    [log_interval] seconds (omit to disable), then block forever — the
    daemon main loop. *)

val stop : t -> unit
(** Close the listening socket and stop accepting.  Established
    connections finish their in-flight request and close on their next
    read.  The underlying service is left running (callers that own it
    should {!Service.shutdown} it separately).  Idempotent. *)
