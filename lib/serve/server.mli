(** TCP front end for a {!Service}: newline-delimited {!Wire} messages
    over a single-threaded readiness event loop ({!Evloop}: epoll on
    Linux, poll elsewhere).

    One event thread owns every descriptor: it accepts on a non-blocking
    listener, reads into per-connection reused buffers ({!Lineframe}),
    decodes complete lines, and hands requests to
    {!Service.submit_async}; executor completions are queued back to the
    loop (self-pipe wakeup), which writes replies with partial-write
    continuation.  A connection is a serial request/response stream —
    clients may pipeline request lines freely; the server buffers them
    (with backpressure past the line bound) and answers strictly in
    order, so replies are byte-identical to direct {!Service.submit}
    calls.  Concurrency comes from many connections, which cost a
    buffer each, not a thread each.

    Failure modes are contained by construction:

    - transient accept errors (EINTR, ECONNABORTED) retry immediately;
      descriptor exhaustion (EMFILE, ENFILE, ...) pauses accepting with
      exponential backoff and retries — only a dead listener stops the
      loop (see {!accept_action});
    - SIGPIPE is ignored at {!create}, and EPIPE/ECONNRESET on any
      connection are clean teardown, never process death;
    - request lines are bounded ([max_line], default 64 KiB): an
      over-limit line costs one [err bad-request] reply and input is
      discarded to the next newline, after which the connection works
      normally;
    - a connection cap ([max_conns]) sheds excess accepts gracefully
      with a best-effort [err overload] line before closing;
    - a partial request line older than [idle_timeout] closes the
      connection (slow-loris defense).  Connections idling with an
      *empty* buffer are never reaped — mostly-idle long-lived
      conversations are the design workload.

    The loop exports [conns_open], [conns_accepted], [conns_rejected],
    [read_timeouts], [long_lines], [accept_retries] and
    [accept_backoffs] into the service's [stats] via
    {!Metrics.add_gauges}. *)

type t

val default_max_line : int
(** 65536 — the longest accepted request line, newline exclusive. *)

val create :
  ?backlog:int ->
  ?max_conns:int ->
  ?idle_timeout:float ->
  ?max_line:int ->
  ?force_poll:bool ->
  port:int ->
  Service.t ->
  t
(** Bind and listen on 127.0.0.1:[port] ([port] 0 picks an ephemeral
    port — read it back with {!port}).  [backlog] defaults to 64,
    [max_conns] to 1024 open connections, [idle_timeout] to 0 (no
    partial-line deadline), [max_line] to {!default_max_line};
    [force_poll] selects the portable poll(2) backend even on Linux.
    Ignores SIGPIPE process-wide.
    @raise Unix.Unix_error when the address is taken.
    @raise Invalid_argument on non-positive [max_conns]/[max_line] or a
    negative/NaN [idle_timeout]. *)

val port : t -> int
(** The actually bound port. *)

val start : t -> unit
(** Launch the event loop in a background thread and return. *)

val run : ?log_interval:float -> t -> unit
(** {!start}, plus a periodic {!Metrics.pp_line} log line to stderr every
    [log_interval] seconds (omit to disable), then block forever — the
    daemon main loop. *)

val stop : t -> unit
(** Shut the connection plane down: close the listener, flush what can
    be written without blocking, close every connection, release the
    event backend and join the event thread (no thread or descriptor
    outlives this call).  In-flight requests still complete inside the
    service; their replies are dropped.  The service itself is left
    running (callers that own it should {!Service.shutdown} it
    separately).  Idempotent. *)

val accept_action :
  Unix.error -> [ `Retry | `Drained | `Backoff | `Stop ]
(** Classification of [accept(2)] failures, exposed for the
    fault-injection tests: [`Retry] — transient per-connection trouble
    (EINTR, ECONNABORTED), try again immediately; [`Drained] — EAGAIN /
    EWOULDBLOCK, the backlog is empty; [`Backoff] — resource exhaustion
    (EMFILE, ENFILE, ENOBUFS, ENOMEM) and anything unrecognized, pause
    accepting with exponential backoff (50 ms doubling to 1 s) and
    retry; [`Stop] — the listener itself is gone (EBADF, EINVAL,
    ENOTSOCK). *)
