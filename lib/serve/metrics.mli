(** Service metrics: request/error/overload counters, latency histograms
    and quantiles, cache hit-rates.

    One instance is shared by every connection thread and executor domain;
    all mutation happens under an internal lock (the touched state is a
    handful of ints and one ring-buffer write, so contention is dwarfed by
    the work being measured).  Latency keeps two views, both built on
    {!Prob}: a fixed-bucket {!Prob.Histogram} over [0, 1] s for the
    periodic log line, and a ring of the most recent samples from which
    {!snapshot} computes p50/p95/p99 with {!Prob.Stats.quantile}. *)

type t

val create : unit -> t
(** Fresh counters; uptime is measured from this call. *)

val record : t -> verb:string -> latency:float -> ok:bool -> unit
(** Count one completed request (latency in seconds, [ok] false for error
    replies of any kind). *)

val overload : t -> unit
(** Count one admission-control rejection (also counts as an error reply;
    do not additionally call {!record} for it). *)

val deadline : t -> unit
(** Count one request expired in queue (the reply itself still goes
    through {!record} with [ok:false]). *)

val batch : t -> size:int -> unit
(** Count one executor batch of [size] coalesced jq queries ([size >= 2];
    saved evaluations = size − 1). *)

val jq_memo_hit : t -> unit
(** Count one pool-jq query answered from the executor memo. *)

val add_cache : t -> merge:(unit -> Jsp.Objective_cache.stats) -> unit
(** Register a pull-source of solver-cache counters (one per executor);
    {!snapshot} sums every registered source.  The thunk is called from
    the snapshotting thread — it must be safe to run concurrently with
    the executor (racy int reads are acceptable for monitoring). *)

val snapshot : t -> (string * float) list
(** Current values, sorted by key: [uptime_s], [requests], [ok], [errors],
    [overloads], [deadlines], [batches], [batched_saved], [jq_memo_hits],
    [req_<verb>] per seen verb, [p50_ms]/[p95_ms]/[p99_ms] over recent
    latencies (absent until a first sample), and [cache_hits],
    [cache_misses], [cache_hit_rate], [cache_entries], [cache_evictions]
    summed over registered sources. *)

val pp_line : Format.formatter -> t -> unit
(** One-line human summary plus the latency histogram buckets that are
    nonempty — the periodic server log line. *)
