(** Service metrics, sharded per executor domain.

    The pre-sharding design funnelled every request completion from every
    executor through one mutex, which showed up directly in the negative
    multi-domain scaling of the serve bench.  Now each executor domain
    owns a private metrics shard (counters, per-verb table, latency
    histogram and ring) guarded by a mutex that only that executor and
    the occasional {!snapshot} ever take — the record path never blocks
    on another domain's traffic.  Submitting threads (control-plane
    replies, overload rejections) share one extra shard: those events are
    rare and cheap, so contention there is irrelevant.

    Shards are merged only at {!snapshot}/{!pp_line} time: counters sum,
    per-verb tables sum, histogram buckets sum, and the latency quantiles
    are computed over the concatenation of the shards' recent-sample
    rings.  A property test checks the merge against a single-accumulator
    oracle run on the same event stream. *)

type t

val create : ?shards:int -> unit -> t
(** [shards] is the executor-domain count (default 1); one extra internal
    shard is added for submitter-side events.  Uptime is measured from
    this call on the monotonic clock.
    @raise Invalid_argument for [shards <= 0]. *)

val shards : t -> int
(** Total shard count, including the submitter shard — valid [shard]
    arguments are [0 .. shards t - 1]. *)

val submitter : t -> int
(** Index of the shard for events recorded by submitting threads. *)

val record : t -> shard:int -> verb:string -> latency:float -> ok:bool -> unit
(** Count one completed request on [shard] (latency in seconds, [ok]
    false for error replies of any kind). *)

val overload : t -> unit
(** Count one admission-control rejection on the submitter shard (also
    counts as an error reply; do not additionally call {!record}). *)

val deadline : t -> shard:int -> unit
(** Count one request expired in queue (the reply itself still goes
    through {!record} with [ok:false]). *)

val batch : t -> shard:int -> size:int -> unit
(** Count one executor batch of [size] coalesced jq queries ([size >= 2];
    saved evaluations = size − 1). *)

val jq_memo_hit : t -> shard:int -> unit
(** Count one pool-jq query answered from the executor memo. *)

val steal : t -> shard:int -> unit
(** Count one batch obtained by work-stealing from another shard's
    queue. *)

val jq_eval : t -> shard:int -> ns:float -> unit
(** Record one from-scratch JQ kernel evaluation on [shard] taking [ns]
    nanoseconds (memo hits are not kernel evaluations and count through
    {!jq_memo_hit} instead).  Feeds the per-shard [jq_eval_ns] histogram
    and the merged [jq_eval_ns_p*] quantiles, so dense-kernel regressions
    are visible in production metrics. *)

val jq_flat_fallback : t -> shard:int -> count:int -> unit
(** Count [count] flat-kernel evaluations on [shard] that overflowed the
    frontier cap and silently fell back to the hashtable oracle (a
    correctness-preserving but order-of-magnitude slower path; a nonzero
    rate means the pool/bucket configuration defeats the flat kernel).
    No-op for [count <= 0]. *)

val session_verb : t -> shard:int -> ns:float -> unit
(** Record one session-verb evaluation (open/vote/advise/decide/close) on
    [shard] taking [ns] nanoseconds.  Feeds the per-shard session
    histogram and the merged [session_verb_ns_p*] quantiles, so posterior
    updates and policy scans are tracked separately from jq kernel
    time. *)

val ingest : t -> shard:int -> votes:int -> ns:float -> unit
(** Record one applied calibration batch on [shard]: [votes] votes folded
    into a pool's quality plane in [ns] nanoseconds (registry time only —
    drift-triggered re-selection is counted via {!recal_run}, not here).
    Feeds the [ingests]/[votes_ingested] counters and the merged
    [ingest_ns_p50/95/99] quantiles. *)

val recal_run : t -> shard:int -> count:int -> unit
(** Count [count] drift-triggered jury re-selections (solver re-runs over
    standing jury specs) on [shard].  No-op for [count <= 0]. *)

val fleet_assign : t -> shard:int -> ns:float -> unit
(** Record one fleet submit assigned on [shard] in [ns] nanoseconds
    (allocator time only — queueing is covered by the request latency).
    Feeds the [fleet_assigns] counter and the merged
    [fleet_assign_ns_p50/95/99] quantiles, so assignment-latency
    regressions in the price-based allocator are visible in [stats]. *)

val fleet_release : t -> shard:int -> unit
(** Count one fleet task released on [shard] ([fleet_releases]). *)

val add_sessions : t -> stats:(unit -> Session.Store.stats) -> unit
(** Register a pull-source of session-store counters (one per shard
    store); {!snapshot} sums every registered source into the
    [sessions_*] rows.  Same concurrency contract as {!add_cache}. *)

val add_gauges : t -> gauges:(unit -> (string * float) list) -> unit
(** Register a pull-source of free-form gauge rows appended verbatim to
    {!snapshot} (e.g. the TCP server's [conns_open]/[conns_rejected]/
    [read_timeouts] counters).  Keys should not collide with the built-in
    rows.  Same concurrency contract as {!add_cache}: the thunk runs on
    the snapshotting thread and may read other threads' counters
    racily. *)

val add_cache : t -> merge:(unit -> Jsp.Objective_cache.stats) -> unit
(** Register a pull-source of solver-cache counters (one per executor);
    {!snapshot} sums every registered source.  The thunk is called from
    the snapshotting thread — it must be safe to run concurrently with
    the executor (racy int reads are acceptable for monitoring). *)

val snapshot : t -> (string * float) list
(** Merged values, sorted by key: [uptime_s], [requests], [ok], [errors],
    [overloads], [deadlines], [batches], [batched_saved], [jq_memo_hits],
    [steals], [jq_evals], [jq_flat_fallbacks], [req_<verb>] per seen
    verb,
    [p50_ms]/[p95_ms]/[p99_ms] over recent latencies,
    [jq_eval_ns_p50]/[jq_eval_ns_p95]/[jq_eval_ns_p99] over recent kernel
    evaluations and [session_verb_ns_p50/95/99] over recent session verbs
    (each trio absent until a first sample), [session_verbs],
    [ingests]/[votes_ingested]/[recal_runs] with
    [ingest_ns_p50/95/99] over recent calibration batches,
    [fleet_assigns]/[fleet_releases] with [fleet_assign_ns_p50/95/99]
    over recent fleet assignments, plus the
    [sessions_open]/[sessions_opened]/[sessions_decided]/
    [sessions_expired]/[sessions_invalidated]/[sessions_rejected] rows
    summed over registered session stores, and
    [cache_hits], [cache_misses], [cache_hit_rate], [cache_entries],
    [cache_evictions] summed over registered sources. *)

val pp_line : Format.formatter -> t -> unit
(** One-line human summary plus the merged latency-histogram buckets that
    are nonempty — the periodic server log line. *)
