(* Hand-rolled line codec.  Requests and responses are single ASCII lines:
   a verb (or ok/err marker) followed by space-separated key=value fields.
   Composite values use one-character sub-separators that cannot occur in
   the atoms they join: ',' between list elements, ':' inside worker and
   pool rows, '@' inside table rows, '.' between ids (ids are integers, so
   '.' is free).  Empty lists render as "-".

   Everything decodes with explicit (_, string) result — a service must
   answer a malformed line with [err bad-request ...], never die on it. *)

type source = Inline of float list | Named of string

type pool_row =
  | Scalar of float * float
  | Matrix_row of float array array * float

type request =
  | Ping
  | Jq of { source : source; prior : float list; num_buckets : int }
  | Select of { pool : string; budget : float; prior : float list; seed : int }
  | Table of {
      pool : string;
      budgets : float list;
      prior : float list;
      seed : int;
    }
  | Pool_put of { name : string; workers : pool_row list }
  | Pool_list
  | Stats
  | Session_open of {
      pool : string;
      task : string;
      prior : float list;
      budget : float;
      confidence : float;
      gain_floor : float;
      policy : Session.Policy.t;
    }
  | Session_vote of { pool : string; task : string; worker : int; label : int }
  | Session_advise of { pool : string; task : string; k : int }
  | Session_decide of { pool : string; task : string; truth : int option }
  | Session_close of { pool : string; task : string }
  | Report of { pool : string; votes : Workers.Calib.vote list }
  | Quality of { pool : string }
  | Recal of { pool : string }
  | Fleet_submit of {
      pool : string;
      task : string;
      prior : float list;
      budget : float;
      tier : int;
      target : float;
    }
  | Fleet_status of { pool : string; task : string option }
  | Fleet_release of { pool : string; task : string; decided : bool }

type error_code =
  | Bad_request
  | Unknown_pool
  | Unknown_session
  | Unknown_task
  | Overload
  | Deadline
  | Shutdown
  | Internal

type table_row = {
  budget : float;
  ids : int list;
  quality : float;
  required : float;
}

type session_state = Sess_open | Sess_decided | Sess_exhausted | Sess_closed

type response =
  | Pong
  | Jq_result of { value : float; error_bound : float; n : int }
  | Select_result of { ids : int list; score : float; cost : float }
  | Table_result of table_row list
  | Pool_info of { name : string; version : int; size : int }
  | Pool_entries of (string * int * int) list
  | Stats_result of (string * float) list
  | Session_result of {
      pool : string;
      task : string;
      state : session_state;
      posterior : float list;
      votes : int;
      spent : float;
      next : int option;
      advice : int list;
      decision : int option;
      certified : bool;
      reason : Session.Stopping.reason option;
    }
  | Report_result of {
      name : string;
      version : int;
      applied : int;
      pending : int;
      drifted : int list;
      stale : bool;
      recals : int;
    }
  | Quality_result of {
      name : string;
      version : int;
      workers : (int * float * int) list;
          (** (worker id, quality, votes seen) in pool order. *)
    }
  | Fleet_task of {
      pool : string;
      task : string;
      jury : int list;
      score : float;
      cost : float;
      tier : int;
    }
  | Fleet_summary of {
      pool : string;
      version : int;
      epoch : int;
      tasks : int;
      assigned : int;
      claimed : int;
      priced : int;
      aggregate : float;
    }
  | Fleet_released of { pool : string; task : string; freed : int }
  | Error of { code : error_code; message : string }

(* ---- atoms --------------------------------------------------------- *)

let valid_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '.' || c = '-'

let valid_pool_name s =
  String.length s > 0 && String.length s <= 64 && String.for_all valid_name_char s

(* Shortest decimal rendering that parses back to the same float. *)
let float_to_string f =
  let s = Printf.sprintf "%.12g" f in
  if float_of_string s = f then s else Printf.sprintf "%.17g" f

let ( let* ) = Result.bind

(* The [response] constructor [Error] shadows [result]'s from here on;
   [fail] keeps the parsing helpers on the stdlib one. *)
let fail msg = Stdlib.Error msg

let parse_float what s =
  match float_of_string_opt s with
  | Some f when Float.is_finite f -> Ok f
  | _ -> fail (Printf.sprintf "%s: not a finite number: %S" what s)

let parse_prob what s =
  let* f = parse_float what s in
  if f < 0. || f > 1. then
    fail (Printf.sprintf "%s: %s outside [0, 1]" what (float_to_string f))
  else Ok f

let parse_nonneg what s =
  let* f = parse_float what s in
  if f < 0. then fail (Printf.sprintf "%s: must be nonnegative" what) else Ok f

let parse_int what s =
  match int_of_string_opt s with
  | Some i -> Ok i
  | None -> fail (Printf.sprintf "%s: not an integer: %S" what s)

let parse_positive_int what s =
  let* i = parse_int what s in
  if i <= 0 then fail (Printf.sprintf "%s: must be positive" what) else Ok i

let parse_nonneg_int what s =
  let* i = parse_int what s in
  if i < 0 then fail (Printf.sprintf "%s: must be nonnegative" what) else Ok i

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)

let parse_list what ~sep parse s =
  if s = "-" then Ok []
  else if s = "" then fail (Printf.sprintf "%s: empty" what)
  else map_result parse (String.split_on_char sep s)

let parse_nonempty_list what ~sep parse s =
  let* xs = parse_list what ~sep parse s in
  if xs = [] then fail (Printf.sprintf "%s: empty list" what) else Ok xs

let list_to_string ~sep to_string = function
  | [] -> "-"
  | xs -> String.concat sep (List.map to_string xs)

(* Percent-escaping for free-text error messages: anything outside the
   printable ASCII range, plus '%' and the protocol separators. *)
let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      if c > ' ' && c < '\x7f' && c <> '%' then Buffer.add_char buf c
      else Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c)))
    s;
  Buffer.contents buf

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i >= n then Ok (Buffer.contents buf)
    else if s.[i] = '%' then
      if i + 2 >= n then fail "message: truncated %-escape"
      else
        match int_of_string_opt (Printf.sprintf "0x%c%c" s.[i + 1] s.[i + 2]) with
        | Some code ->
            Buffer.add_char buf (Char.chr code);
            go (i + 3)
        | None -> fail "message: bad %-escape"
    else begin
      Buffer.add_char buf s.[i];
      go (i + 1)
    end
  in
  go 0

(* ---- key=value field maps ------------------------------------------ *)

(* Fields are parsed into a mutable assoc list; [take] consumes, and
   [finish] rejects anything left over, so unknown keys are errors. *)
type fields = (string * string) list ref

let parse_fields tokens : (fields, string) result =
  let rec go acc = function
    | [] -> Ok (ref (List.rev acc))
    | tok :: rest -> (
        match String.index_opt tok '=' with
        | None -> fail (Printf.sprintf "expected key=value, got %S" tok)
        | Some i ->
            let key = String.sub tok 0 i in
            let value = String.sub tok (i + 1) (String.length tok - i - 1) in
            if key = "" then fail (Printf.sprintf "empty key in %S" tok)
            else if List.mem_assoc key acc then
              fail (Printf.sprintf "duplicate key %S" key)
            else go ((key, value) :: acc) rest)
  in
  go [] tokens

let take (fields : fields) key =
  match List.assoc_opt key !fields with
  | None -> None
  | Some v ->
      fields := List.remove_assoc key !fields;
      Some v

let required fields key parse =
  match take fields key with
  | None -> fail (Printf.sprintf "missing %s=" key)
  | Some v -> parse key v

let optional fields key ~default parse =
  match take fields key with None -> Ok default | Some v -> parse key v

let finish fields value =
  match !fields with
  | [] -> Ok value
  | (k, _) :: _ -> fail (Printf.sprintf "unknown key %S" k)

let parse_pool_name what s =
  if valid_pool_name s then Ok s
  else fail (Printf.sprintf "%s: invalid pool name %S" what s)

(* A pool row is either the binary "quality:cost" or a flattened
   row-stochastic confusion matrix "m00;m01;…;mkk:cost" (ℓ² entries, row
   major; ℓ ≥ 2 so a matrix row always contains ';').  Row sums are
   validated here with the same Kahan ±1e-9 rule as [Workers.Confusion.make],
   so a decoded row can always be turned into a worker. *)
let parse_worker what s =
  match String.split_on_char ':' s with
  | [ entries; c ] when String.contains entries ';' ->
      let* es =
        map_result (parse_prob (what ^ " entry")) (String.split_on_char ';' entries)
      in
      let* c = parse_nonneg (what ^ " cost") c in
      let k = List.length es in
      let l = int_of_float (Float.round (sqrt (float_of_int k))) in
      if l < 2 || l * l <> k then
        fail (Printf.sprintf "%s: matrix must be square with >= 2 labels" what)
      else
        let flat = Array.of_list es in
        let m = Array.init l (fun j -> Array.sub flat (j * l) l) in
        let row_ok r = Float.abs (Prob.Kahan.sum_array r -. 1.) <= 1e-9 in
        if Array.for_all row_ok m then Ok (Matrix_row (m, c))
        else fail (Printf.sprintf "%s: matrix row does not sum to 1" what)
  | [ q; c ] ->
      let* q = parse_prob (what ^ " quality") q in
      let* c = parse_nonneg (what ^ " cost") c in
      Ok (Scalar (q, c))
  | _ ->
      fail
        (Printf.sprintf
           "%s: expected quality:cost or m00;m01;...:cost, got %S" what s)

let pool_row_labels = function
  | Scalar _ -> 2
  | Matrix_row (m, _) -> Array.length m

let worker_to_string = function
  | Scalar (q, c) -> float_to_string q ^ ":" ^ float_to_string c
  | Matrix_row (m, c) ->
      let entries =
        Array.to_list (Array.concat (Array.to_list m))
        |> List.map float_to_string
      in
      String.concat ";" entries ^ ":" ^ float_to_string c

(* ---- requests ------------------------------------------------------ *)

let default_seed = 42
let default_prior = [ 0.5; 0.5 ]
let default_confidence = 0.95

let prior_to_string prior = list_to_string ~sep:"," float_to_string prior

let parse_task_name what s =
  if valid_pool_name s then Ok s
  else fail (Printf.sprintf "%s: invalid task id %S" what s)

let parse_policy what s =
  match Session.Policy.of_string s with
  | Some p -> Ok p
  | None ->
      fail
        (Printf.sprintf "%s: unknown policy %S (gain|jq|quality|cheap)" what s)

let parse_confidence what s =
  let* f = parse_prob what s in
  if f <= 0. then fail (Printf.sprintf "%s: must be positive" what) else Ok f

(* Optional nonnegative ints ([next=], [decision=]) render None as "-". *)
let opt_int_to_string = function None -> "-" | Some i -> string_of_int i

let parse_opt_int what s =
  if s = "-" then Ok None
  else
    let* i = parse_nonneg_int what s in
    Ok (Some i)

(* [prior=p0,p1,…] names the task's label distribution; [alpha=x] is
   decode-side sugar for the binary [prior=x,1−x] (the two are exclusive).
   Encoding always emits [prior=] so encode∘decode is the identity. *)
let decode_prior fields =
  let prior = take fields "prior" and alpha = take fields "alpha" in
  match (prior, alpha) with
  | Some _, Some _ -> fail "prior= and alpha= are exclusive"
  | None, None -> Ok default_prior
  | None, Some a ->
      let* a = parse_prob "alpha" a in
      Ok [ a; 1. -. a ]
  | Some p, None ->
      let* ps = parse_nonempty_list "prior" ~sep:',' (parse_prob "prior") p in
      if List.length ps < 2 then fail "prior: need at least 2 labels"
      else if
        Float.abs (Prob.Kahan.sum_array (Array.of_list ps) -. 1.) > 1e-9
      then fail "prior: does not sum to 1"
      else Ok ps

(* A reported vote is "task:worker:label" — "task:worker:label:truth" when
   it is a gold question.  Ids are nonnegative ints; label ranges are
   checked by the service against the pool's ℓ. *)
let report_vote_to_string (v : Workers.Calib.vote) =
  match v.truth with
  | None -> Printf.sprintf "%d:%d:%d" v.task v.worker v.label
  | Some tr -> Printf.sprintf "%d:%d:%d:%d" v.task v.worker v.label tr

let parse_report_vote what s =
  match String.split_on_char ':' s with
  | [ t; w; l ] ->
      let* task = parse_nonneg_int (what ^ " task") t in
      let* worker = parse_nonneg_int (what ^ " worker") w in
      let* label = parse_nonneg_int (what ^ " label") l in
      Ok { Workers.Calib.task; worker; label; truth = None }
  | [ t; w; l; g ] ->
      let* task = parse_nonneg_int (what ^ " task") t in
      let* worker = parse_nonneg_int (what ^ " worker") w in
      let* label = parse_nonneg_int (what ^ " label") l in
      let* truth = parse_nonneg_int (what ^ " truth") g in
      Ok { Workers.Calib.task; worker; label; truth = Some truth }
  | _ ->
      fail
        (Printf.sprintf "%s: expected task:worker:label[:truth], got %S" what s)

let encode_request = function
  | Ping -> "ping"
  | Jq { source; prior; num_buckets } ->
      let src =
        match source with
        | Inline qs -> "q=" ^ list_to_string ~sep:"," float_to_string qs
        | Named pool -> "pool=" ^ pool
      in
      Printf.sprintf "jq %s prior=%s buckets=%d" src (prior_to_string prior)
        num_buckets
  | Select { pool; budget; prior; seed } ->
      Printf.sprintf "select pool=%s budget=%s prior=%s seed=%d" pool
        (float_to_string budget) (prior_to_string prior) seed
  | Table { pool; budgets; prior; seed } ->
      Printf.sprintf "table pool=%s budgets=%s prior=%s seed=%d" pool
        (list_to_string ~sep:"," float_to_string budgets)
        (prior_to_string prior) seed
  | Pool_put { name; workers } ->
      Printf.sprintf "pool-put name=%s workers=%s" name
        (list_to_string ~sep:"," worker_to_string workers)
  | Pool_list -> "pool-list"
  | Stats -> "stats"
  | Session_open { pool; task; prior; budget; confidence; gain_floor; policy }
    ->
      Printf.sprintf
        "open pool=%s task=%s prior=%s budget=%s confidence=%s floor=%s \
         policy=%s"
        pool task (prior_to_string prior) (float_to_string budget)
        (float_to_string confidence)
        (float_to_string gain_floor)
        (Session.Policy.to_string policy)
  | Session_vote { pool; task; worker; label } ->
      Printf.sprintf "vote pool=%s task=%s worker=%d label=%d" pool task worker
        label
  | Session_advise { pool; task; k } ->
      if k = 1 then Printf.sprintf "advise pool=%s task=%s" pool task
      else Printf.sprintf "advise pool=%s task=%s k=%d" pool task k
  | Session_decide { pool; task; truth } -> (
      match truth with
      | None -> Printf.sprintf "decide pool=%s task=%s" pool task
      | Some tr -> Printf.sprintf "decide pool=%s task=%s truth=%d" pool task tr)
  | Session_close { pool; task } ->
      Printf.sprintf "close pool=%s task=%s" pool task
  | Report { pool; votes } ->
      Printf.sprintf "report pool=%s votes=%s" pool
        (list_to_string ~sep:"," report_vote_to_string votes)
  | Quality { pool } -> Printf.sprintf "quality pool=%s" pool
  | Recal { pool } -> Printf.sprintf "recal pool=%s" pool
  | Fleet_submit { pool; task; prior; budget; tier; target } ->
      Printf.sprintf
        "fleet-submit pool=%s task=%s prior=%s budget=%s tier=%d target=%s"
        pool task (prior_to_string prior) (float_to_string budget) tier
        (float_to_string target)
  | Fleet_status { pool; task = None } ->
      Printf.sprintf "fleet-status pool=%s" pool
  | Fleet_status { pool; task = Some task } ->
      Printf.sprintf "fleet-status pool=%s task=%s" pool task
  | Fleet_release { pool; task; decided } ->
      if decided then
        Printf.sprintf "fleet-release pool=%s task=%s decide=1" pool task
      else Printf.sprintf "fleet-release pool=%s task=%s" pool task

let split_line line =
  (* Tolerate a trailing CR (telnet) and repeated spaces. *)
  let line =
    let n = String.length line in
    if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line
  in
  List.filter (fun tok -> tok <> "") (String.split_on_char ' ' line)

let no_fields fields request = finish fields request

let decode_jq fields =
  let q = take fields "q" and pool = take fields "pool" in
  let* source =
    match (q, pool) with
    | Some _, Some _ -> fail "jq: q= and pool= are exclusive"
    | None, None -> fail "jq: need q= or pool="
    | Some qs, None ->
        let* qs = parse_nonempty_list "q" ~sep:',' (parse_prob "q") qs in
        Ok (Inline qs)
    | None, Some name ->
        let* name = parse_pool_name "pool" name in
        Ok (Named name)
  in
  let* prior = decode_prior fields in
  let* num_buckets =
    optional fields "buckets" ~default:Jq.Bucket.default_num_buckets
      parse_positive_int
  in
  finish fields (Jq { source; prior; num_buckets })

let decode_select fields =
  let* pool = required fields "pool" parse_pool_name in
  let* budget = required fields "budget" parse_nonneg in
  let* prior = decode_prior fields in
  let* seed = optional fields "seed" ~default:default_seed parse_int in
  finish fields (Select { pool; budget; prior; seed })

let decode_table fields =
  let* pool = required fields "pool" parse_pool_name in
  let* budgets =
    required fields "budgets" (fun what s ->
        parse_nonempty_list what ~sep:',' (parse_nonneg what) s)
  in
  let* prior = decode_prior fields in
  let* seed = optional fields "seed" ~default:default_seed parse_int in
  finish fields (Table { pool; budgets; prior; seed })

let decode_pool_put fields =
  let* name = required fields "name" parse_pool_name in
  let* workers =
    required fields "workers" (fun what s ->
        parse_nonempty_list what ~sep:',' (parse_worker what) s)
  in
  (* One worker model per pool: all scalar rows, or all matrix rows over
     one ℓ — the registry stores a single task-model pool per name. *)
  let* () =
    match workers with
    | [] -> Ok ()
    | first :: rest ->
        let scalar = function Scalar _ -> true | Matrix_row _ -> false in
        if List.exists (fun w -> scalar w <> scalar first) rest then
          fail "workers: cannot mix scalar and matrix rows"
        else if
          List.exists (fun w -> pool_row_labels w <> pool_row_labels first) rest
        then fail "workers: matrix rows disagree on label count"
        else Ok ()
  in
  finish fields (Pool_put { name; workers })

let decode_session_open fields =
  let* pool = required fields "pool" parse_pool_name in
  let* task = required fields "task" parse_task_name in
  let* prior = decode_prior fields in
  let* budget = required fields "budget" parse_nonneg in
  let* confidence =
    optional fields "confidence" ~default:default_confidence parse_confidence
  in
  let* gain_floor = optional fields "floor" ~default:0. parse_nonneg in
  let* policy =
    optional fields "policy" ~default:Session.Policy.default parse_policy
  in
  finish fields
    (Session_open { pool; task; prior; budget; confidence; gain_floor; policy })

let decode_session_vote fields =
  let* pool = required fields "pool" parse_pool_name in
  let* task = required fields "task" parse_task_name in
  let* worker = required fields "worker" parse_nonneg_int in
  let* label = required fields "label" parse_nonneg_int in
  finish fields (Session_vote { pool; task; worker; label })

let decode_session_ref fields make =
  let* pool = required fields "pool" parse_pool_name in
  let* task = required fields "task" parse_task_name in
  finish fields (make ~pool ~task)

let decode_session_advise fields =
  let* pool = required fields "pool" parse_pool_name in
  let* task = required fields "task" parse_task_name in
  let* k = optional fields "k" ~default:1 parse_positive_int in
  finish fields (Session_advise { pool; task; k })

let decode_session_decide fields =
  let* pool = required fields "pool" parse_pool_name in
  let* task = required fields "task" parse_task_name in
  let* truth =
    match take fields "truth" with
    | None -> Ok None
    | Some s ->
        let* tr = parse_nonneg_int "truth" s in
        Ok (Some tr)
  in
  finish fields (Session_decide { pool; task; truth })

let decode_report fields =
  let* pool = required fields "pool" parse_pool_name in
  let* votes =
    required fields "votes" (fun what s ->
        parse_nonempty_list what ~sep:',' (parse_report_vote what) s)
  in
  finish fields (Report { pool; votes })

let decode_pool_ref fields make =
  let* pool = required fields "pool" parse_pool_name in
  finish fields (make ~pool)

let parse_flag what s =
  match s with
  | "0" -> Ok false
  | "1" -> Ok true
  | _ -> fail (Printf.sprintf "%s: expected 0 or 1" what)

let decode_fleet_submit fields =
  let* pool = required fields "pool" parse_pool_name in
  let* task = required fields "task" parse_task_name in
  let* prior = decode_prior fields in
  let* budget = required fields "budget" parse_nonneg in
  let* tier = optional fields "tier" ~default:0 parse_nonneg_int in
  let* target = optional fields "target" ~default:0. parse_prob in
  finish fields (Fleet_submit { pool; task; prior; budget; tier; target })

let decode_fleet_status fields =
  let* pool = required fields "pool" parse_pool_name in
  let* task =
    match take fields "task" with
    | None -> Ok None
    | Some s ->
        let* name = parse_task_name "task" s in
        Ok (Some name)
  in
  finish fields (Fleet_status { pool; task })

let decode_fleet_release fields =
  let* pool = required fields "pool" parse_pool_name in
  let* task = required fields "task" parse_task_name in
  let* decided = optional fields "decide" ~default:false parse_flag in
  finish fields (Fleet_release { pool; task; decided })

let decode_request line =
  match split_line line with
  | [] -> fail "empty request"
  | verb :: rest -> (
      let* fields = parse_fields rest in
      match verb with
      | "ping" -> no_fields fields Ping
      | "jq" -> decode_jq fields
      | "select" -> decode_select fields
      | "table" -> decode_table fields
      | "pool-put" -> decode_pool_put fields
      | "pool-list" -> no_fields fields Pool_list
      | "stats" -> no_fields fields Stats
      | "open" -> decode_session_open fields
      | "vote" -> decode_session_vote fields
      | "advise" -> decode_session_advise fields
      | "decide" -> decode_session_decide fields
      | "close" ->
          decode_session_ref fields (fun ~pool ~task ->
              Session_close { pool; task })
      | "report" -> decode_report fields
      | "quality" -> decode_pool_ref fields (fun ~pool -> Quality { pool })
      | "recal" -> decode_pool_ref fields (fun ~pool -> Recal { pool })
      | "fleet-submit" -> decode_fleet_submit fields
      | "fleet-status" -> decode_fleet_status fields
      | "fleet-release" -> decode_fleet_release fields
      | _ -> fail (Printf.sprintf "unknown verb %S" verb))

(* ---- responses ----------------------------------------------------- *)

let error_code_to_string = function
  | Bad_request -> "bad-request"
  | Unknown_pool -> "unknown-pool"
  | Unknown_session -> "unknown-session"
  | Unknown_task -> "unknown-task"
  | Overload -> "overload"
  | Deadline -> "deadline"
  | Shutdown -> "shutdown"
  | Internal -> "internal"

let error_code_of_string = function
  | "bad-request" -> Ok Bad_request
  | "unknown-pool" -> Ok Unknown_pool
  | "unknown-session" -> Ok Unknown_session
  | "unknown-task" -> Ok Unknown_task
  | "overload" -> Ok Overload
  | "deadline" -> Ok Deadline
  | "shutdown" -> Ok Shutdown
  | "internal" -> Ok Internal
  | s -> fail (Printf.sprintf "unknown error code %S" s)

let session_state_to_string = function
  | Sess_open -> "open"
  | Sess_decided -> "decided"
  | Sess_exhausted -> "exhausted"
  | Sess_closed -> "closed"

let session_state_of_string = function
  | "open" -> Ok Sess_open
  | "decided" -> Ok Sess_decided
  | "exhausted" -> Ok Sess_exhausted
  | "closed" -> Ok Sess_closed
  | s -> fail (Printf.sprintf "unknown session state %S" s)

let ids_to_string ids = list_to_string ~sep:"." string_of_int ids

let parse_ids what s = parse_list what ~sep:'.' (parse_nonneg_int what) s

let row_to_string { budget; ids; quality; required } =
  Printf.sprintf "%s@%s@%s@%s" (float_to_string budget) (ids_to_string ids)
    (float_to_string quality) (float_to_string required)

let parse_row what s =
  match String.split_on_char '@' s with
  | [ budget; ids; quality; required ] ->
      let* budget = parse_nonneg (what ^ " budget") budget in
      let* ids = parse_ids (what ^ " ids") ids in
      let* quality = parse_prob (what ^ " quality") quality in
      let* required = parse_nonneg (what ^ " required") required in
      Ok { budget; ids; quality; required }
  | _ -> fail (Printf.sprintf "%s: expected budget@ids@quality@required" what)

let entry_to_string (name, version, size) =
  Printf.sprintf "%s:%d:%d" name version size

let parse_entry what s =
  match String.split_on_char ':' s with
  | [ name; version; size ] ->
      let* name = parse_pool_name what name in
      let* version = parse_nonneg_int (what ^ " version") version in
      let* size = parse_nonneg_int (what ^ " size") size in
      Ok (name, version, size)
  | _ -> fail (Printf.sprintf "%s: expected name:version:size" what)

let stat_to_string (key, value) = key ^ "=" ^ float_to_string value

let encode_response = function
  | Pong -> "ok pong"
  | Jq_result { value; error_bound; n } ->
      Printf.sprintf "ok jq value=%s bound=%s n=%d" (float_to_string value)
        (float_to_string error_bound) n
  | Select_result { ids; score; cost } ->
      Printf.sprintf "ok select ids=%s score=%s cost=%s" (ids_to_string ids)
        (float_to_string score) (float_to_string cost)
  | Table_result rows ->
      Printf.sprintf "ok table rows=%s" (list_to_string ~sep:";" row_to_string rows)
  | Pool_info { name; version; size } ->
      Printf.sprintf "ok pool name=%s version=%d size=%d" name version size
  | Pool_entries entries ->
      Printf.sprintf "ok pools list=%s"
        (list_to_string ~sep:"," entry_to_string entries)
  | Stats_result stats ->
      if stats = [] then "ok stats"
      else "ok stats " ^ String.concat " " (List.map stat_to_string stats)
  | Session_result
      {
        pool;
        task;
        state;
        posterior;
        votes;
        spent;
        next;
        advice;
        decision;
        certified;
        reason;
      } ->
      Printf.sprintf
        "ok session pool=%s task=%s state=%s posterior=%s votes=%d spent=%s \
         next=%s advice=%s decision=%s certified=%d reason=%s"
        pool task
        (session_state_to_string state)
        (prior_to_string posterior) votes (float_to_string spent)
        (opt_int_to_string next) (ids_to_string advice)
        (opt_int_to_string decision)
        (if certified then 1 else 0)
        (match reason with
        | None -> "-"
        | Some r -> Session.Stopping.reason_to_string r)
  | Report_result { name; version; applied; pending; drifted; stale; recals } ->
      Printf.sprintf
        "ok report name=%s version=%d applied=%d pending=%d drifted=%s \
         stale=%d recals=%d"
        name version applied pending (ids_to_string drifted)
        (if stale then 1 else 0)
        recals
  | Quality_result { name; version; workers } ->
      let worker_to_string (id, q, seen) =
        Printf.sprintf "%d:%s:%d" id (float_to_string q) seen
      in
      Printf.sprintf "ok quality name=%s version=%d workers=%s" name version
        (list_to_string ~sep:"," worker_to_string workers)
  | Fleet_task { pool; task; jury; score; cost; tier } ->
      Printf.sprintf "ok fleet-task pool=%s task=%s jury=%s score=%s cost=%s tier=%d"
        pool task (ids_to_string jury) (float_to_string score)
        (float_to_string cost) tier
  | Fleet_summary { pool; version; epoch; tasks; assigned; claimed; priced; aggregate }
    ->
      Printf.sprintf
        "ok fleet-summary pool=%s version=%d epoch=%d tasks=%d assigned=%d \
         claimed=%d priced=%d aggregate=%s"
        pool version epoch tasks assigned claimed priced
        (float_to_string aggregate)
  | Fleet_released { pool; task; freed } ->
      Printf.sprintf "ok fleet-released pool=%s task=%s freed=%d" pool task freed
  | Error { code; message } ->
      Printf.sprintf "err %s message=%s" (error_code_to_string code)
        (escape message)

let decode_ok_response kind fields =
  match kind with
  | "pong" -> no_fields fields Pong
  | "jq" ->
      let* value = required fields "value" parse_prob in
      let* error_bound = required fields "bound" parse_nonneg in
      let* n = required fields "n" parse_nonneg_int in
      finish fields (Jq_result { value; error_bound; n })
  | "select" ->
      let* ids = required fields "ids" parse_ids in
      let* score = required fields "score" parse_prob in
      let* cost = required fields "cost" parse_nonneg in
      finish fields (Select_result { ids; score; cost })
  | "table" ->
      let* rows =
        required fields "rows" (fun what s ->
            parse_list what ~sep:';' (parse_row what) s)
      in
      finish fields (Table_result rows)
  | "pool" ->
      let* name = required fields "name" parse_pool_name in
      let* version = required fields "version" parse_nonneg_int in
      let* size = required fields "size" parse_nonneg_int in
      finish fields (Pool_info { name; version; size })
  | "pools" ->
      let* entries =
        required fields "list" (fun what s ->
            parse_list what ~sep:',' (parse_entry what) s)
      in
      finish fields (Pool_entries entries)
  | "stats" ->
      let* stats =
        map_result
          (fun (key, v) ->
            if not (valid_pool_name key) then
              fail (Printf.sprintf "stats: invalid key %S" key)
            else
              let* v = parse_float key v in
              Ok (key, v))
          !fields
      in
      fields := [];
      finish fields (Stats_result stats)
  | "session" ->
      let* pool = required fields "pool" parse_pool_name in
      let* task = required fields "task" parse_task_name in
      let* state =
        required fields "state" (fun _ s -> session_state_of_string s)
      in
      let* posterior =
        required fields "posterior" (fun what s ->
            parse_nonempty_list what ~sep:',' (parse_prob what) s)
      in
      let* votes = required fields "votes" parse_nonneg_int in
      let* spent = required fields "spent" parse_nonneg in
      let* next = required fields "next" parse_opt_int in
      let* advice = required fields "advice" parse_ids in
      let* decision = required fields "decision" parse_opt_int in
      let* certified =
        required fields "certified" (fun what s ->
            match s with
            | "0" -> Ok false
            | "1" -> Ok true
            | _ -> fail (Printf.sprintf "%s: expected 0 or 1" what))
      in
      let* reason =
        required fields "reason" (fun what s ->
            if s = "-" then Ok None
            else
              match Session.Stopping.reason_of_string s with
              | Some r -> Ok (Some r)
              | None -> fail (Printf.sprintf "%s: unknown reason %S" what s))
      in
      finish fields
        (Session_result
           {
             pool;
             task;
             state;
             posterior;
             votes;
             spent;
             next;
             advice;
             decision;
             certified;
             reason;
           })
  | "report" ->
      let* name = required fields "name" parse_pool_name in
      let* version = required fields "version" parse_nonneg_int in
      let* applied = required fields "applied" parse_nonneg_int in
      let* pending = required fields "pending" parse_nonneg_int in
      let* drifted = required fields "drifted" parse_ids in
      let* stale =
        required fields "stale" (fun what s ->
            match s with
            | "0" -> Ok false
            | "1" -> Ok true
            | _ -> fail (Printf.sprintf "%s: expected 0 or 1" what))
      in
      let* recals = required fields "recals" parse_nonneg_int in
      finish fields
        (Report_result { name; version; applied; pending; drifted; stale; recals })
  | "quality" ->
      let* name = required fields "name" parse_pool_name in
      let* version = required fields "version" parse_nonneg_int in
      let* workers =
        required fields "workers" (fun what s ->
            parse_list what ~sep:','
              (fun row ->
                match String.split_on_char ':' row with
                | [ id; q; seen ] ->
                    let* id = parse_nonneg_int (what ^ " id") id in
                    let* q = parse_prob (what ^ " quality") q in
                    let* seen = parse_nonneg_int (what ^ " votes") seen in
                    Ok (id, q, seen)
                | _ -> fail (Printf.sprintf "%s: expected id:quality:votes" what))
              s)
      in
      finish fields (Quality_result { name; version; workers })
  | "fleet-task" ->
      let* pool = required fields "pool" parse_pool_name in
      let* task = required fields "task" parse_task_name in
      let* jury = required fields "jury" parse_ids in
      let* score = required fields "score" parse_prob in
      let* cost = required fields "cost" parse_nonneg in
      let* tier = required fields "tier" parse_nonneg_int in
      finish fields (Fleet_task { pool; task; jury; score; cost; tier })
  | "fleet-summary" ->
      let* pool = required fields "pool" parse_pool_name in
      let* version = required fields "version" parse_nonneg_int in
      let* epoch = required fields "epoch" parse_nonneg_int in
      let* tasks = required fields "tasks" parse_nonneg_int in
      let* assigned = required fields "assigned" parse_nonneg_int in
      let* claimed = required fields "claimed" parse_nonneg_int in
      let* priced = required fields "priced" parse_nonneg_int in
      let* aggregate = required fields "aggregate" parse_float in
      finish fields
        (Fleet_summary
           { pool; version; epoch; tasks; assigned; claimed; priced; aggregate })
  | "fleet-released" ->
      let* pool = required fields "pool" parse_pool_name in
      let* task = required fields "task" parse_task_name in
      let* freed = required fields "freed" parse_nonneg_int in
      finish fields (Fleet_released { pool; task; freed })
  | _ -> fail (Printf.sprintf "unknown ok kind %S" kind)

let decode_response line =
  match split_line line with
  | "ok" :: kind :: rest ->
      let* fields = parse_fields rest in
      decode_ok_response kind fields
  | "err" :: code :: rest ->
      let* code = error_code_of_string code in
      let* fields = parse_fields rest in
      let* message = required fields "message" (fun _ s -> unescape s) in
      finish fields (Error { code; message })
  | _ -> fail "expected 'ok <kind> ...' or 'err <code> ...'"
