(** The embeddable jury-selection service: registry + scheduler + metrics.

    A service owns a sharded work plane ({!Dispatch}: one bounded shard
    queue per executor {!Domain}, affinity-routed by pool name, with
    spill and bounded work-stealing) fed by {!submit}.  Control-plane
    requests (ping, stats, pool upsert/list) are answered inline by the
    submitting thread — they stay responsive however backed up the
    compute plane is.  Compute requests (jq, select, table, and the
    session verbs open/vote/advise/decide/close) are enqueued
    on their pool's shard; when every shard with room is full the reply
    is an immediate [err overload] (admission control — total queue depth
    never grows past its bound), and a request that waits past its
    monotonic-clock deadline ({!Clock}) is answered [err deadline] by the
    executor that finally pops it.  Metrics are likewise sharded per
    domain and merged only at snapshot time, so completing a request
    takes no lock contended across domains.

    Each executor domain owns warm state keyed by pool version:

    - one {!Jsp.Objective_cache} per (pool, version, prior, budget, seed)
      — passed to {!Jsp.Annealing.solve_engine} via its [?memo] hook, so a
      repeated [select]/[table] query starts its solve with every score of
      the previous identical run already cached (budget and seed are in
      the key deliberately: incremental objective values are
      path-dependent at ulp level, and a memo warmed by a different
      request could flip an accept decision and change the reply);
    - one reusable {!Jq.Incremental} evaluator per (alpha, buckets), used
      for [jq] over binary pools: {!Jq.Incremental.reset} + re-adding the
      pool reuses the grown key-map arrays, memoized per pool version.
      Matrix-pool [jq] runs the ℓ-tuple bucket estimator and shares the
      same (pool, version, prior, buckets) memo;
    - batching: consecutive queued [jq] queries naming the same (pool,
      prior, buckets) are popped together and answered with a single
      evaluation — same-pool affinity routing keeps such runs on one
      shard, so sharding does not break coalescing.

    Caching is invisible in results: solver scores are deterministic
    functions of (pool, version, prior, budget, seed) regardless of cache
    warmth, so any executor — warm or cold, owner or work-stealing thief
    — returns byte-identical responses, whichever worker model the pool
    holds.

    Sequential sessions ({!Session.Task}) live in per-shard
    {!Session.Store}s indexed by the same pool-name hash that routes the
    data plane, so a session's verbs normally all run on its home
    executor; each store carries its own mutex, so even a stolen or
    spilled session job mutates the home store consistently.  Session
    replies are pure functions of (pool contents, vote history, request)
    — byte-deterministic at any cache warmth — and a [pool-put] bumping
    the registry version invalidates the pool's open sessions on their
    next touch.

    The live quality plane rides the same machinery: [report]/[recal]
    (and decided sessions auto-feeding their votes) mutate the pool's
    streaming calibrator through {!Registry.report}; an applied batch
    bumps the pool version, so every warm cache and open session keyed by
    the old version invalidates exactly as under [pool-put].  Drift flags
    mark the pool stale, and the executor reacts inline by re-solving the
    pool's recorded standing juries ([select] requests register them)
    before replying — visible in [stats] as [recal_runs], [drift_flags],
    [stale_pools] and the [ingest_ns_p*] latency trio.

    The fleet plane ([fleet-submit]/[fleet-status]/[fleet-release])
    shares a {!Fleet.Allocator} per pool, homed on the pool's affinity
    shard exactly like session stores: same-pool fleet verbs serialize on
    one warm allocator (prices, proposal cache, solver memos), and the
    store mutex keeps a stolen or spilled job consistent.  A registry
    version bump (pool-put, applied calibration batch) resyncs the
    allocator on its next touch via {!Fleet.Allocator.set_pool} — the
    same invalidation rule as every other per-pool cache.  [stats] grows
    the [fleet_assigns]/[fleet_releases] counters, the
    [fleet_assign_ns_p50/95/99] latency trio and the [fleet_*] gauge rows
    (resident tasks, claimed/priced positions, contention rate, full vs
    delta solve counts, price rounds, proposal-cache hits). *)

type t

val recommended_domains : unit -> int
(** [Domain.recommended_domain_count ()] capped at 8. *)

val create :
  ?domains:int ->
  ?queue_capacity:int ->
  ?deadline:float ->
  ?batch_max:int ->
  ?num_buckets:int ->
  ?session_cap:int ->
  ?session_ttl:float ->
  ?calib_config:Workers.Calib.config ->
  unit ->
  t
(** Start the executor domains.  Defaults: [domains] =
    {!recommended_domains}[ ()], [queue_capacity] = 256, no deadline,
    [batch_max] = 32, [num_buckets] = {!Jq.Bucket.default_num_buckets}
    (the Algorithm-1 resolution used for select/table scoring),
    [session_cap] = {!Session.Store.default_cap} open sessions per shard
    store, [session_ttl] = {!Session.Store.default_ttl} seconds of idle
    life, [calib_config] = {!Workers.Calib.default_config} for the
    streaming calibrators behind [report]/[recal].
    @raise Invalid_argument on non-positive sizes, deadline, cap or
    ttl. *)

val submit : t -> Wire.request -> Wire.response
(** Serve one request, blocking until its reply is ready.  Never raises:
    every failure mode is an [Error] response.  Thread-safe; call it from
    as many threads as you like. *)

val submit_async : t -> Wire.request -> k:(Wire.response -> unit) -> unit
(** Like {!submit}, but non-blocking: [k] receives the response exactly
    once — synchronously on the calling thread for control-plane verbs,
    admission rejections and post-shutdown refusals, from an executor
    domain otherwise.  [k] must be cheap, thread-safe and non-raising
    (the TCP event loop's completion hook is the intended caller). *)

val registry : t -> Registry.t
val metrics : t -> Metrics.t
val domains : t -> int

val stats : t -> (string * float) list
(** {!Metrics.snapshot} plus service gauges ([domains], [queue_len],
    [queue_capacity]), sorted by key — the payload of the [stats] verb. *)

val shutdown : t -> unit
(** Close the queue, finish already-admitted work, and join the executor
    domains.  Later compute submissions get [err shutdown]; control-plane
    requests keep working.  Idempotent. *)
