type entry = { pool : Engine.Pool.t; version : int }

type t = {
  mutable generation : int;
  table : (string, entry) Hashtbl.t;
  lock : Mutex.t;
}

let create () = { generation = 0; table = Hashtbl.create 16; lock = Mutex.create () }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let upsert t ~name pool =
  with_lock t (fun () ->
      t.generation <- t.generation + 1;
      Hashtbl.replace t.table name { pool; version = t.generation };
      t.generation)

let find t name =
  with_lock t (fun () ->
      Option.map
        (fun { pool; version } -> (pool, version))
        (Hashtbl.find_opt t.table name))

let list t =
  with_lock t (fun () ->
      Hashtbl.fold
        (fun name { pool; version } acc ->
          (name, version, Engine.Pool.size pool) :: acc)
        t.table []
      |> List.sort compare)

let size t = with_lock t (fun () -> Hashtbl.length t.table)
