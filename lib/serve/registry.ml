type standing = {
  budget : float;
  prior : float list;
  seed : int;
  mutable jury : int list;
}

type entry = {
  mutable pool : Engine.Pool.t;
  template : Engine.Pool.t; (* ids / names / costs as uploaded *)
  mutable version : int;
  calib : Workers.Calib.t;
  mutable stale : bool;
  mutable standing : standing list; (* most recent first, bounded *)
}

type t = {
  mutable generation : int;
  table : (string, entry) Hashtbl.t;
  lock : Mutex.t;
  calib_config : Workers.Calib.config;
  standing_cap : int;
  mutable drift_total : int;
}

type ingest = {
  version : int;
  applied : int;
  pending : int;
  drifted : Workers.Calib.drift list;
  stale : bool;
}

let create ?(calib_config = Workers.Calib.default_config) ?(standing_cap = 8) () =
  {
    generation = 0;
    table = Hashtbl.create 16;
    lock = Mutex.create ();
    calib_config;
    standing_cap;
    drift_total = 0;
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let calib_base pool =
  match Engine.Pool.repr pool with
  | Engine.Pool.Binary p -> Workers.Calib.Scalar (Workers.Pool.qualities p)
  | Engine.Pool.Matrix cs ->
      Workers.Calib.Matrix
        (Array.map
           (fun c ->
             Array.init (Workers.Confusion.labels c) (Workers.Confusion.row c))
           cs)

(* Rebuild the served pool from the template's ids/names/costs and the
   calibrator's current estimates, preserving the representation. *)
let rebuild_pool template calib =
  match Engine.Pool.repr template with
  | Engine.Pool.Binary p ->
      let workers =
        Array.mapi
          (fun i w ->
            Workers.Worker.make ~name:(Workers.Worker.name w)
              ~id:(Workers.Worker.id w)
              ~quality:(Workers.Calib.quality calib i)
              ~cost:(Workers.Worker.cost w) ())
          (Workers.Pool.to_array p)
      in
      Engine.Pool.of_workers (Workers.Pool.of_array workers)
  | Engine.Pool.Matrix cs ->
      Engine.Pool.of_confusions
        (Array.mapi
           (fun i c ->
             Workers.Confusion.make ~name:(Workers.Confusion.name c)
               ~id:(Workers.Confusion.id c)
               ~matrix:(Workers.Calib.confusion calib i)
               ~cost:(Workers.Confusion.cost c) ())
           cs)

let upsert t ~name pool =
  with_lock t (fun () ->
      t.generation <- t.generation + 1;
      let entry =
        {
          pool;
          template = pool;
          version = t.generation;
          calib = Workers.Calib.create ~config:t.calib_config ~base:(calib_base pool) ();
          stale = false;
          standing = [];
        }
      in
      Hashtbl.replace t.table name entry;
      t.generation)

let find t name =
  with_lock t (fun () ->
      Option.map
        (fun (e : entry) -> (e.pool, e.version))
        (Hashtbl.find_opt t.table name))

let list t =
  with_lock t (fun () ->
      Hashtbl.fold
        (fun name (e : entry) acc -> (name, e.version, Engine.Pool.size e.pool) :: acc)
        t.table []
      |> List.sort compare)

let size t = with_lock t (fun () -> Hashtbl.length t.table)

(* Fold a completed calibration step into the entry: rebuild the pool and
   bump the registry-wide generation so every version-keyed cache built
   against the old quality state retires. *)
let absorb t (entry : entry) (r : Workers.Calib.step_result) =
  if r.applied > 0 || r.changed then begin
    entry.pool <- rebuild_pool entry.template entry.calib;
    t.generation <- t.generation + 1;
    entry.version <- t.generation
  end;
  if r.drifted <> [] then begin
    entry.stale <- true;
    t.drift_total <- t.drift_total + List.length r.drifted
  end;
  {
    version = entry.version;
    applied = r.applied;
    pending = Workers.Calib.pending entry.calib;
    drifted = r.drifted;
    stale = entry.stale;
  }

let ingest_of (entry : entry) =
  {
    version = entry.version;
    applied = 0;
    pending = Workers.Calib.pending entry.calib;
    drifted = [];
    stale = entry.stale;
  }

let report t ~name votes =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table name with
      | None -> Error `Unknown_pool
      | Some entry -> (
          match Workers.Calib.feed entry.calib votes with
          | Error msg -> Error (`Invalid msg)
          | Ok _ ->
              if Workers.Calib.due entry.calib then
                Ok (absorb t entry (Workers.Calib.step entry.calib))
              else Ok (ingest_of entry)))

let recal t ~name =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table name with
      | None -> Error `Unknown_pool
      | Some entry -> Ok (absorb t entry (Workers.Calib.recalibrate entry.calib)))

let quality t ~name =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table name with
      | None -> None
      | Some entry ->
          let ids = Array.of_list (Engine.Pool.ids entry.pool) in
          let rows =
            List.init (Array.length ids) (fun i ->
                ( ids.(i),
                  Workers.Calib.quality entry.calib i,
                  Workers.Calib.votes_seen entry.calib i ))
          in
          Some (rows, entry.version))

let note_standing t ~name ~budget ~prior ~seed ~jury =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table name with
      | None -> ()
      | Some entry ->
          let same s = s.budget = budget && s.prior = prior && s.seed = seed in
          let rest = List.filter (fun s -> not (same s)) entry.standing in
          let spec = { budget; prior; seed; jury } in
          let keep = min (t.standing_cap - 1) (List.length rest) in
          entry.standing <- spec :: List.filteri (fun i _ -> i < keep) rest)

let standing t name =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table name with
      | None -> []
      | Some entry ->
          List.map (fun s -> (s.budget, s.prior, s.seed, s.jury)) entry.standing)

let refresh_standing t ~name ~juries =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table name with
      | None -> ()
      | Some entry ->
          List.iter
            (fun (budget, prior, seed, jury) ->
              List.iter
                (fun s ->
                  if s.budget = budget && s.prior = prior && s.seed = seed then
                    s.jury <- jury)
                entry.standing)
            juries;
          entry.stale <- false)

let clear_stale t ~name =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table name with
      | None -> ()
      | Some entry -> entry.stale <- false)

let stale_pools t =
  with_lock t (fun () ->
      Hashtbl.fold
        (fun _ (e : entry) acc -> if e.stale then acc + 1 else acc)
        t.table 0)

let drift_total t = with_lock t (fun () -> t.drift_total)
