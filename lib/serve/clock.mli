(** Monotonic time for the serving layer.

    Deadlines, queue-wait expiry and latency measurements must survive a
    wall-clock step (NTP slew, manual reset, VM resume): they are all
    differences of instants, so they read CLOCK_MONOTONIC, whose epoch is
    arbitrary but which never jumps.  Nothing in [lib/serve] should call
    [Unix.gettimeofday] for interval arithmetic. *)

val now : unit -> float
(** Seconds since an arbitrary (per-boot) epoch, monotonic non-decreasing
    across threads and domains. Only differences are meaningful. *)
