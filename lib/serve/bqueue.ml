type 'a t = {
  buf : 'a option array;   (* Ring buffer; [None] marks a free slot. *)
  mutable head : int;      (* Index of the oldest item. *)
  mutable len : int;
  mutable closed : bool;
  lock : Mutex.t;
  nonempty : Condition.t;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Bqueue.create: capacity <= 0";
  {
    buf = Array.make capacity None;
    head = 0;
    len = 0;
    closed = false;
    lock = Mutex.create ();
    nonempty = Condition.create ();
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let capacity t = Array.length t.buf

let try_push t x =
  with_lock t (fun () ->
      if t.closed || t.len = capacity t then false
      else begin
        t.buf.((t.head + t.len) mod capacity t) <- Some x;
        t.len <- t.len + 1;
        Condition.signal t.nonempty;
        true
      end)

let take_front t =
  match t.buf.(t.head) with
  | None -> assert false
  | Some x ->
      t.buf.(t.head) <- None;
      t.head <- (t.head + 1) mod capacity t;
      t.len <- t.len - 1;
      x

let pop_batch t ~max ~compatible =
  with_lock t (fun () ->
      while t.len = 0 && not t.closed do
        Condition.wait t.nonempty t.lock
      done;
      if t.len = 0 then None
      else begin
        let first = take_front t in
        let batch = ref [ first ] in
        let count = ref 1 in
        let continue = ref true in
        while !continue && t.len > 0 && !count < max do
          match t.buf.(t.head) with
          | Some next when compatible first next ->
              batch := take_front t :: !batch;
              incr count
          | _ -> continue := false
        done;
        Some (List.rev !batch)
      end)

let close t =
  with_lock t (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty)

let length t = with_lock t (fun () -> t.len)
