type 'a t = {
  buf : 'a option array;   (* Ring buffer; [None] marks a free slot. *)
  mutable head : int;      (* Index of the oldest item. *)
  mutable len : int;
  mutable closed : bool;
  mutable invites : int;   (* Latched steal invitations for the owner. *)
  lock : Mutex.t;
  wake : Condition.t;      (* Owner sleeps here; push/invite/close signal. *)
}

type push_result = Pushed of int | Full | Closed

let create ~capacity =
  if capacity <= 0 then invalid_arg "Bqueue.create: capacity <= 0";
  {
    buf = Array.make capacity None;
    head = 0;
    len = 0;
    closed = false;
    invites = 0;
    lock = Mutex.create ();
    wake = Condition.create ();
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let capacity t = Array.length t.buf

let push t x =
  with_lock t (fun () ->
      if t.closed then Closed
      else if t.len = capacity t then Full
      else begin
        t.buf.((t.head + t.len) mod capacity t) <- Some x;
        t.len <- t.len + 1;
        Condition.signal t.wake;
        Pushed t.len
      end)

let take_front t =
  match t.buf.(t.head) with
  | None -> assert false
  | Some x ->
      t.buf.(t.head) <- None;
      t.head <- (t.head + 1) mod capacity t;
      t.len <- t.len - 1;
      x

(* Caller holds the lock and has checked [t.len > 0]. *)
let drain_run t ~max ~compatible =
  let first = take_front t in
  let batch = ref [ first ] in
  let count = ref 1 in
  let continue = ref true in
  while !continue && t.len > 0 && !count < max do
    match t.buf.(t.head) with
    | Some next when compatible first next ->
        batch := take_front t :: !batch;
        incr count
    | _ -> continue := false
  done;
  List.rev !batch

let pop_batch t ~max ~compatible =
  with_lock t (fun () ->
      (* Queued work first, then invitations, then shutdown: the shard is
         always drained before its owner exits. *)
      let rec wait () =
        if t.len > 0 then `Batch (drain_run t ~max ~compatible)
        else if t.invites > 0 then begin
          t.invites <- 0;
          `Invited
        end
        else if t.closed then `Closed
        else begin
          Condition.wait t.wake t.lock;
          wait ()
        end
      in
      wait ())

let steal t ~max ~compatible =
  with_lock t (fun () ->
      (* A lone queued item is the owner's next pop; stealing it buys
         nothing and moves the work to a colder executor.  Only a real
         backlog (or a closed queue being drained) is worth taking. *)
      if t.len = 0 || (t.len < 2 && not t.closed) then []
      else drain_run t ~max ~compatible)

let invite t =
  with_lock t (fun () ->
      t.invites <- t.invites + 1;
      Condition.signal t.wake)

let close t =
  with_lock t (fun () ->
      t.closed <- true;
      Condition.broadcast t.wake)

let length t = with_lock t (fun () -> t.len)
