(** Readiness-event loop over the C stubs in [evloop_stubs.c]: epoll(7)
    on Linux, poll(2) elsewhere (or with [force_poll], for testing the
    portable path on any host).

    One {!t} belongs to one thread — the server's event thread — which
    is the only caller of {!add}/{!modify}/{!remove}/{!wait}.  Interest
    is level-triggered on both backends: a descriptor stays ready until
    drained, so a bounded per-wait batch never loses events.  Waits
    release the OCaml runtime lock.

    Masks are bitwise: {!readable} lor {!writable}; handlers also see
    {!error} for error/hangup conditions. *)

type t

val readable : int
(** Interest/result bit 1: the descriptor has bytes (or EOF) to read. *)

val writable : int
(** Interest/result bit 2: the descriptor accepts writes. *)

val error : int
(** Result-only bit 4: error or hangup reported by the kernel. *)

val create : ?force_poll:bool -> unit -> t
(** [force_poll] (default false) selects the poll(2) backend even where
    epoll is available.  @raise Failure if the backend cannot start. *)

val backend : t -> [ `Epoll | `Poll ]

val add : t -> Unix.file_descr -> int -> unit
(** Register [fd] with an interest mask ({!readable} lor {!writable},
    possibly 0).  @raise Failure on a kernel-level registration error. *)

val modify : t -> Unix.file_descr -> int -> unit
(** Change a registered descriptor's interest mask. *)

val remove : t -> Unix.file_descr -> unit
(** Deregister [fd].  Safe to call with an already-closed descriptor
    (the kernel auto-removes closed fds from an epoll set); unknown fds
    are ignored. *)

val registered : t -> int
(** Number of currently registered descriptors. *)

val wait : t -> timeout_ms:int -> handle:(Unix.file_descr -> int -> unit) -> int
(** Block up to [timeout_ms] (-1 = forever) for readiness, then call
    [handle fd mask] for each ready descriptor; returns the ready
    count (0 on timeout or EINTR).  [handle] may add/modify/remove
    descriptors — including the ones still queued in this batch; a
    handler must tolerate events for descriptors it just removed. *)

val close : t -> unit
(** Release the backend (closes the epoll fd).  Idempotent. *)

val rlimit_nofile : ?set:int -> unit -> int
(** The process RLIMIT_NOFILE soft limit; with [set], first update it
    (clamped to the hard limit).  Used by the fd-exhaustion tests and
    the connection-scaling bench.  @raise Failure on rlimit errors. *)
