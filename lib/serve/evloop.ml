external fd_int : Unix.file_descr -> int = "%identity"
external fd_of_int : int -> Unix.file_descr = "%identity"
external has_epoll : unit -> bool = "optjs_evloop_has_epoll"
external epoll_create : unit -> int = "optjs_epoll_create"
external epoll_ctl : int -> int -> int -> int -> int = "optjs_epoll_ctl"

external epoll_wait_stub : int -> int -> int array -> int array -> int
  = "optjs_epoll_wait"

external poll_stub : int array -> int array -> int array -> int -> int
  = "optjs_poll"

external rlimit_nofile_stub : int -> int = "optjs_rlimit_nofile"

let readable = 1
let writable = 2
let error = 4
let batch = 512

type t = {
  kind : [ `Epoll | `Poll ];
  epfd : int;                        (* epoll backend only *)
  interest : (int, int) Hashtbl.t;   (* fd -> mask, both backends *)
  out_fds : int array;               (* epoll wait scratch *)
  out_evs : int array;
  mutable poll_fds : int array;      (* poll wait scratch, grown on demand *)
  mutable poll_masks : int array;
  mutable poll_revs : int array;
  mutable closed : bool;
}

let fail fn code =
  (* [code] is -errno from the stub. *)
  failwith
    (Printf.sprintf "Evloop.%s: %s" fn
       (Unix.error_message (Unix.EUNKNOWNERR (-code))))

let create ?(force_poll = false) () =
  let use_epoll = (not force_poll) && has_epoll () in
  let epfd =
    if not use_epoll then -1
    else
      let fd = epoll_create () in
      if fd < 0 then fail "create" fd else fd
  in
  {
    kind = (if use_epoll then `Epoll else `Poll);
    epfd;
    interest = Hashtbl.create 64;
    out_fds = Array.make batch 0;
    out_evs = Array.make batch 0;
    poll_fds = Array.make 64 0;
    poll_masks = Array.make 64 0;
    poll_revs = Array.make 64 0;
    closed = false;
  }

let backend t = t.kind
let registered t = Hashtbl.length t.interest

let ctl t fn op fd mask =
  if t.kind = `Epoll then begin
    let r = epoll_ctl t.epfd op (fd_int fd) mask in
    if r < 0 then fail fn r
  end

let add t fd mask =
  Hashtbl.replace t.interest (fd_int fd) mask;
  ctl t "add" 0 fd mask

let modify t fd mask =
  match Hashtbl.find_opt t.interest (fd_int fd) with
  | None -> add t fd mask
  | Some old when old = mask -> ()
  | Some _ ->
      Hashtbl.replace t.interest (fd_int fd) mask;
      ctl t "modify" 1 fd mask

let remove t fd =
  let key = fd_int fd in
  if Hashtbl.mem t.interest key then begin
    Hashtbl.remove t.interest key;
    (* DEL may legitimately fail with EBADF when the caller already
       closed the descriptor — the kernel dropped it for us. *)
    if t.kind = `Epoll then ignore (epoll_ctl t.epfd 2 key 0)
  end

let wait_epoll t ~timeout_ms ~handle =
  let n = epoll_wait_stub t.epfd timeout_ms t.out_fds t.out_evs in
  if n < 0 then fail "wait" n;
  for i = 0 to n - 1 do
    handle (fd_of_int t.out_fds.(i)) t.out_evs.(i)
  done;
  n

let wait_poll t ~timeout_ms ~handle =
  let count = Hashtbl.length t.interest in
  if Array.length t.poll_fds < count then begin
    let cap = max count (2 * Array.length t.poll_fds) in
    t.poll_fds <- Array.make cap 0;
    t.poll_masks <- Array.make cap 0;
    t.poll_revs <- Array.make cap 0
  end;
  let i = ref 0 in
  Hashtbl.iter
    (fun fd mask ->
      t.poll_fds.(!i) <- fd;
      t.poll_masks.(!i) <- mask;
      t.poll_revs.(!i) <- 0;
      incr i)
    t.interest;
  let n =
    poll_stub
      (Array.sub t.poll_fds 0 count)
      (Array.sub t.poll_masks 0 count)
      t.poll_revs timeout_ms
  in
  if n < 0 then fail "wait" n;
  let fired = ref 0 in
  for j = 0 to count - 1 do
    (* poll reports on the snapshot we submitted; a handler may have
       removed a descriptor meanwhile, so skip the deregistered. *)
    if t.poll_revs.(j) <> 0 && Hashtbl.mem t.interest t.poll_fds.(j) then begin
      incr fired;
      handle (fd_of_int t.poll_fds.(j)) t.poll_revs.(j)
    end
  done;
  !fired

let wait t ~timeout_ms ~handle =
  match t.kind with
  | `Epoll -> wait_epoll t ~timeout_ms ~handle
  | `Poll -> wait_poll t ~timeout_ms ~handle

let close t =
  if not t.closed then begin
    t.closed <- true;
    Hashtbl.reset t.interest;
    if t.kind = `Epoll then
      try Unix.close (fd_of_int t.epfd) with Unix.Unix_error _ -> ()
  end

let rlimit_nofile ?(set = -1) () =
  let r = rlimit_nofile_stub set in
  if r < 0 then fail "rlimit_nofile" r else r
