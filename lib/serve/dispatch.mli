(** Sharded dispatcher: routes work to per-executor shard queues.

    One {!Bqueue} shard per executor domain.  A request is routed by an
    [affinity] hash (the service hashes the pool name), so same-pool
    requests land on the same shard — preserving same-pool batching and
    that shard's warm [Objective_cache] / [Jq.Incremental] state — while
    different pools spread across shards and never touch each other's
    locks.

    Two mechanisms keep a skewed affinity distribution from serializing
    the plane:

    - {b spill}: when the affinity shard is full, the push is retried on
      the least-loaded other shard with room (admission control is the
      total capacity, not one shard's slice);
    - {b stealing}: a push that observes backlog (post-push length ≥ 2)
      invites one other shard's owner, round-robin; an invited owner with
      an empty shard steals a bounded front run from the longest
      neighbour.

    Replies stay byte-deterministic under both: executor warm state is
    keyed by the full request, so any executor — owner or thief —
    computes the identical response. *)

type 'a t

val create : shards:int -> capacity:int -> 'a t
(** [capacity] is the total bound across shards (each shard gets
    [ceil (capacity / shards)] slots).
    @raise Invalid_argument for non-positive [shards] or [capacity]. *)

val push : 'a t -> affinity:int -> 'a -> [ `Ok | `Overload | `Closed ]
(** Never blocks.  [`Overload] means every shard with capacity is full;
    [`Closed] that the dispatcher was shut down. *)

val pop_batch :
  'a t ->
  shard:int ->
  max:int ->
  compatible:('a -> 'a -> bool) ->
  ('a list * [ `Own | `Stolen ]) option
(** Executor loop for [shard]: block for a batch from the own shard, or —
    when invited while empty — steal one from the longest other shard.
    [None] once the dispatcher is closed and the own shard drained
    (leftovers on other shards are drained by their owners). *)

val close : 'a t -> unit
(** Close every shard and wake every owner.  Queued items are still
    handed out. *)

val length : 'a t -> int
(** Total queued items across shards (racy snapshot, for metrics). *)

val shards : 'a t -> int
val capacity : 'a t -> int
(** Total capacity actually allocated (= shards × per-shard slots). *)
