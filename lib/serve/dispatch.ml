type 'a t = {
  shards : 'a Bqueue.t array;
  rr : int Atomic.t;  (* Round-robin cursor for steal invitations. *)
}

let create ~shards ~capacity =
  if shards <= 0 then invalid_arg "Dispatch.create: shards <= 0";
  if capacity <= 0 then invalid_arg "Dispatch.create: capacity <= 0";
  let per_shard = (capacity + shards - 1) / shards in
  {
    shards = Array.init shards (fun _ -> Bqueue.create ~capacity:per_shard);
    rr = Atomic.make 0;
  }

let invite_backlog = 4

let shards t = Array.length t.shards
let capacity t = Array.length t.shards * Bqueue.capacity t.shards.(0)

let length t =
  Array.fold_left (fun acc q -> acc + Bqueue.length q) 0 t.shards

(* Invite one *other* shard's owner to steal; the cursor spreads
   successive invitations over all neighbours, so sustained single-pool
   backlog wakes every executor rather than hammering one. *)
let invite_neighbour t s =
  let n = Array.length t.shards in
  let k = Atomic.fetch_and_add t.rr 1 in
  let j = (s + 1 + (abs k mod (n - 1))) mod n in
  Bqueue.invite t.shards.(j)

let push t ~affinity x =
  let n = Array.length t.shards in
  let s = abs (affinity mod n) in
  match Bqueue.push t.shards.(s) x with
  | Bqueue.Pushed len ->
      (* Invite only on the edge into a real backlog (len crossing the
         threshold), not on every backlogged push: a shallow queue is
         the owner's next batch, and a per-push invite storm wakes idle
         executors thousands of times a second just to fight the owner
         over single items.  Under sustained overload the owner's pops
         recreate the crossing often enough to keep neighbours fed. *)
      if len = invite_backlog && n > 1 then invite_neighbour t s;
      `Ok
  | Bqueue.Closed -> `Closed
  | Bqueue.Full ->
      (* Spill: admission control is the total bound, so a single hot
         pool may use other shards' slack.  Try the least-loaded other
         shard; under a race, walk the rest before giving up. *)
      let order =
        List.sort
          (fun a b -> compare (Bqueue.length t.shards.(a)) (Bqueue.length t.shards.(b)))
          (List.filter (fun j -> j <> s) (List.init n Fun.id))
      in
      let rec try_spill = function
        | [] -> `Overload
        | j :: rest -> (
            match Bqueue.push t.shards.(j) x with
            | Bqueue.Pushed _ -> `Ok  (* push signalled shard j's owner *)
            | Bqueue.Closed -> `Closed
            | Bqueue.Full -> try_spill rest)
      in
      try_spill order

(* Steal a bounded front run from the longest other shard. *)
let try_steal t ~shard ~max ~compatible =
  let n = Array.length t.shards in
  let victim = ref (-1) and longest = ref 0 in
  for j = 0 to n - 1 do
    if j <> shard then begin
      let len = Bqueue.length t.shards.(j) in
      if len > !longest then begin
        longest := len;
        victim := j
      end
    end
  done;
  if !victim < 0 then [] else Bqueue.steal t.shards.(!victim) ~max ~compatible

let rec pop_batch t ~shard ~max ~compatible =
  match Bqueue.pop_batch t.shards.(shard) ~max ~compatible with
  | `Batch batch -> Some (batch, `Own)
  | `Closed -> None
  | `Invited -> (
      match try_steal t ~shard ~max ~compatible with
      | [] -> pop_batch t ~shard ~max ~compatible
      | batch ->
          (* Work-conserving thief: re-latch our own invitation so the
             next pop tries to steal again before sleeping.  One steal
             per wake-up would pay a scheduler round-trip per run;
             re-latching drains the backlog in a tight loop and only
             parks once every victim is shallow. *)
          Bqueue.invite t.shards.(shard);
          Some (batch, `Stolen))

let close t = Array.iter Bqueue.close t.shards
