let ring_size = 8192

type t = {
  started_at : float;
  lock : Mutex.t;
  mutable requests : int;
  mutable ok : int;
  mutable errors : int;
  mutable overloads : int;
  mutable deadlines : int;
  mutable batches : int;
  mutable batched_saved : int;
  mutable jq_memo_hits : int;
  per_verb : (string, int ref) Hashtbl.t;
  histogram : Prob.Histogram.t;      (* seconds, [0, 1] in 10 ms buckets *)
  ring : float array;                (* recent latencies, seconds *)
  mutable ring_len : int;
  mutable ring_next : int;
  mutable cache_sources : (unit -> Jsp.Objective_cache.stats) list;
}

let create () =
  {
    started_at = Unix.gettimeofday ();
    lock = Mutex.create ();
    requests = 0;
    ok = 0;
    errors = 0;
    overloads = 0;
    deadlines = 0;
    batches = 0;
    batched_saved = 0;
    jq_memo_hits = 0;
    per_verb = Hashtbl.create 8;
    histogram = Prob.Histogram.create ~lo:0. ~hi:1. ~buckets:100;
    ring = Array.make ring_size 0.;
    ring_len = 0;
    ring_next = 0;
    cache_sources = [];
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let record t ~verb ~latency ~ok =
  with_lock t (fun () ->
      t.requests <- t.requests + 1;
      if ok then t.ok <- t.ok + 1 else t.errors <- t.errors + 1;
      (match Hashtbl.find_opt t.per_verb verb with
      | Some r -> incr r
      | None -> Hashtbl.add t.per_verb verb (ref 1));
      Prob.Histogram.add t.histogram latency;
      t.ring.(t.ring_next) <- latency;
      t.ring_next <- (t.ring_next + 1) mod ring_size;
      if t.ring_len < ring_size then t.ring_len <- t.ring_len + 1)

let overload t =
  with_lock t (fun () ->
      t.overloads <- t.overloads + 1;
      t.requests <- t.requests + 1;
      t.errors <- t.errors + 1)

let deadline t = with_lock t (fun () -> t.deadlines <- t.deadlines + 1)

let batch t ~size =
  with_lock t (fun () ->
      t.batches <- t.batches + 1;
      t.batched_saved <- t.batched_saved + (size - 1))

let jq_memo_hit t = with_lock t (fun () -> t.jq_memo_hits <- t.jq_memo_hits + 1)

let add_cache t ~merge =
  with_lock t (fun () -> t.cache_sources <- merge :: t.cache_sources)

let snapshot t =
  let base, latencies, sources =
    with_lock t (fun () ->
        let f = float_of_int in
        let base =
          [
            ("uptime_s", Unix.gettimeofday () -. t.started_at);
            ("requests", f t.requests);
            ("ok", f t.ok);
            ("errors", f t.errors);
            ("overloads", f t.overloads);
            ("deadlines", f t.deadlines);
            ("batches", f t.batches);
            ("batched_saved", f t.batched_saved);
            ("jq_memo_hits", f t.jq_memo_hits);
          ]
          @ Hashtbl.fold
              (fun verb r acc -> ("req_" ^ verb, f !r) :: acc)
              t.per_verb []
        in
        (base, Array.sub t.ring 0 t.ring_len, t.cache_sources))
  in
  (* Quantiles and cache sources are computed outside the lock: sorting the
     ring copy is O(n log n), and the sources read executor-owned counters
     on their own terms. *)
  let quantiles =
    if Array.length latencies = 0 then []
    else
      let q p = 1000. *. Prob.Stats.quantile latencies p in
      [ ("p50_ms", q 0.5); ("p95_ms", q 0.95); ("p99_ms", q 0.99) ]
  in
  let cache =
    List.fold_left
      (fun acc merge -> Jsp.Objective_cache.merge_stats acc (merge ()))
      Jsp.Objective_cache.empty_stats sources
  in
  let cache_rows =
    let f = float_of_int in
    let lookups = cache.Jsp.Objective_cache.hits + cache.misses in
    [
      ("cache_hits", f cache.Jsp.Objective_cache.hits);
      ("cache_misses", f cache.misses);
      ( "cache_hit_rate",
        if lookups = 0 then 0.
        else f cache.Jsp.Objective_cache.hits /. f lookups );
      ("cache_entries", f cache.entries);
      ("cache_evictions", f cache.evictions);
    ]
  in
  List.sort compare (base @ quantiles @ cache_rows)

let pp_line ppf t =
  let snap = snapshot t in
  let get key = List.assoc_opt key snap in
  let int_of key = match get key with Some v -> int_of_float v | None -> 0 in
  Format.fprintf ppf "serve: up %.0fs reqs %d ok %d err %d over %d"
    (Option.value ~default:0. (get "uptime_s"))
    (int_of "requests") (int_of "ok") (int_of "errors") (int_of "overloads");
  (match (get "p50_ms", get "p95_ms", get "p99_ms") with
  | Some p50, Some p95, Some p99 ->
      Format.fprintf ppf " lat_ms p50 %.2f p95 %.2f p99 %.2f" p50 p95 p99
  | _ -> ());
  (match get "cache_hit_rate" with
  | Some rate when int_of "cache_hits" + int_of "cache_misses" > 0 ->
      Format.fprintf ppf " cache %.0f%%" (100. *. rate)
  | _ -> ());
  let counts = Prob.Histogram.counts t.histogram in
  let nonempty = ref [] in
  Array.iteri
    (fun i c ->
      if c > 0 then
        let lo, hi = Prob.Histogram.bucket_bounds t.histogram i in
        nonempty := Printf.sprintf "[%.0f,%.0f)ms:%d" (1000. *. lo) (1000. *. hi) c :: !nonempty)
    counts;
  if !nonempty <> [] then
    Format.fprintf ppf " hist %s" (String.concat " " (List.rev !nonempty))
