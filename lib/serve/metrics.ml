let ring_size = 2048  (* per shard; quantiles merge the shards' rings *)

type shard = {
  lock : Mutex.t;  (* one writer domain + the snapshot thread: uncontended *)
  mutable requests : int;
  mutable ok : int;
  mutable errors : int;
  mutable overloads : int;
  mutable deadlines : int;
  mutable batches : int;
  mutable batched_saved : int;
  mutable jq_memo_hits : int;
  mutable steals : int;
  per_verb : (string, int ref) Hashtbl.t;
  histogram : Prob.Histogram.t;      (* seconds, [0, 1] in 10 ms buckets *)
  ring : float array;                (* recent latencies, seconds *)
  mutable ring_len : int;
  mutable ring_next : int;
  mutable jq_evals : int;
  mutable jq_flat_fallbacks : int;   (* flat-kernel evals that fell back *)
  jq_histogram : Prob.Histogram.t;   (* kernel eval ns, [0, 10 ms) buckets *)
  jq_ring : float array;             (* recent kernel eval times, ns *)
  mutable jq_ring_len : int;
  mutable jq_ring_next : int;
  mutable session_verbs : int;
  session_histogram : Prob.Histogram.t;  (* session verb eval ns *)
  session_ring : float array;            (* recent session verb times, ns *)
  mutable session_ring_len : int;
  mutable session_ring_next : int;
  mutable ingests : int;                 (* applied report/recal calls *)
  mutable votes_ingested : int;
  mutable recal_runs : int;              (* standing juries re-solved *)
  ingest_histogram : Prob.Histogram.t;   (* ingest (calibration) ns *)
  ingest_ring : float array;             (* recent ingest times, ns *)
  mutable ingest_ring_len : int;
  mutable ingest_ring_next : int;
  mutable fleet_assigns : int;           (* fleet submits assigned *)
  mutable fleet_releases : int;          (* fleet tasks released *)
  fleet_histogram : Prob.Histogram.t;    (* fleet assign ns *)
  fleet_ring : float array;              (* recent fleet assign times, ns *)
  mutable fleet_ring_len : int;
  mutable fleet_ring_next : int;
}

type t = {
  started_at : float;                (* monotonic; uptime is a difference *)
  shards : shard array;              (* executors 0 .. n-1, submitter at n *)
  sources_lock : Mutex.t;
  mutable cache_sources : (unit -> Jsp.Objective_cache.stats) list;
  mutable session_sources : (unit -> Session.Store.stats) list;
  mutable gauge_sources : (unit -> (string * float) list) list;
}

let fresh_shard () =
  {
    lock = Mutex.create ();
    requests = 0;
    ok = 0;
    errors = 0;
    overloads = 0;
    deadlines = 0;
    batches = 0;
    batched_saved = 0;
    jq_memo_hits = 0;
    steals = 0;
    per_verb = Hashtbl.create 8;
    histogram = Prob.Histogram.create ~lo:0. ~hi:1. ~buckets:100;
    ring = Array.make ring_size 0.;
    ring_len = 0;
    ring_next = 0;
    jq_evals = 0;
    jq_flat_fallbacks = 0;
    jq_histogram = Prob.Histogram.create ~lo:0. ~hi:1e7 ~buckets:100;
    jq_ring = Array.make ring_size 0.;
    jq_ring_len = 0;
    jq_ring_next = 0;
    session_verbs = 0;
    session_histogram = Prob.Histogram.create ~lo:0. ~hi:1e7 ~buckets:100;
    session_ring = Array.make ring_size 0.;
    session_ring_len = 0;
    session_ring_next = 0;
    ingests = 0;
    votes_ingested = 0;
    recal_runs = 0;
    ingest_histogram = Prob.Histogram.create ~lo:0. ~hi:1e8 ~buckets:100;
    ingest_ring = Array.make ring_size 0.;
    ingest_ring_len = 0;
    ingest_ring_next = 0;
    fleet_assigns = 0;
    fleet_releases = 0;
    fleet_histogram = Prob.Histogram.create ~lo:0. ~hi:1e8 ~buckets:100;
    fleet_ring = Array.make ring_size 0.;
    fleet_ring_len = 0;
    fleet_ring_next = 0;
  }

let create ?(shards = 1) () =
  if shards <= 0 then invalid_arg "Metrics.create: shards <= 0";
  {
    started_at = Clock.now ();
    shards = Array.init (shards + 1) (fun _ -> fresh_shard ());
    sources_lock = Mutex.create ();
    cache_sources = [];
    session_sources = [];
    gauge_sources = [];
  }

let shards t = Array.length t.shards
let submitter t = Array.length t.shards - 1

let with_shard t i f =
  let s = t.shards.(i) in
  Mutex.lock s.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.lock) (fun () -> f s)

let record t ~shard ~verb ~latency ~ok =
  with_shard t shard (fun s ->
      s.requests <- s.requests + 1;
      if ok then s.ok <- s.ok + 1 else s.errors <- s.errors + 1;
      (match Hashtbl.find_opt s.per_verb verb with
      | Some r -> incr r
      | None -> Hashtbl.add s.per_verb verb (ref 1));
      Prob.Histogram.add s.histogram latency;
      s.ring.(s.ring_next) <- latency;
      s.ring_next <- (s.ring_next + 1) mod ring_size;
      if s.ring_len < ring_size then s.ring_len <- s.ring_len + 1)

let overload t =
  with_shard t (submitter t) (fun s ->
      s.overloads <- s.overloads + 1;
      s.requests <- s.requests + 1;
      s.errors <- s.errors + 1)

let deadline t ~shard =
  with_shard t shard (fun s -> s.deadlines <- s.deadlines + 1)

let batch t ~shard ~size =
  with_shard t shard (fun s ->
      s.batches <- s.batches + 1;
      s.batched_saved <- s.batched_saved + (size - 1))

let jq_memo_hit t ~shard =
  with_shard t shard (fun s -> s.jq_memo_hits <- s.jq_memo_hits + 1)

let steal t ~shard = with_shard t shard (fun s -> s.steals <- s.steals + 1)

let jq_eval t ~shard ~ns =
  with_shard t shard (fun s ->
      s.jq_evals <- s.jq_evals + 1;
      Prob.Histogram.add s.jq_histogram ns;
      s.jq_ring.(s.jq_ring_next) <- ns;
      s.jq_ring_next <- (s.jq_ring_next + 1) mod ring_size;
      if s.jq_ring_len < ring_size then s.jq_ring_len <- s.jq_ring_len + 1)

let jq_flat_fallback t ~shard ~count =
  if count > 0 then
    with_shard t shard (fun s ->
        s.jq_flat_fallbacks <- s.jq_flat_fallbacks + count)

let session_verb t ~shard ~ns =
  with_shard t shard (fun s ->
      s.session_verbs <- s.session_verbs + 1;
      Prob.Histogram.add s.session_histogram ns;
      s.session_ring.(s.session_ring_next) <- ns;
      s.session_ring_next <- (s.session_ring_next + 1) mod ring_size;
      if s.session_ring_len < ring_size then
        s.session_ring_len <- s.session_ring_len + 1)

let ingest t ~shard ~votes ~ns =
  with_shard t shard (fun s ->
      s.ingests <- s.ingests + 1;
      s.votes_ingested <- s.votes_ingested + votes;
      Prob.Histogram.add s.ingest_histogram ns;
      s.ingest_ring.(s.ingest_ring_next) <- ns;
      s.ingest_ring_next <- (s.ingest_ring_next + 1) mod ring_size;
      if s.ingest_ring_len < ring_size then
        s.ingest_ring_len <- s.ingest_ring_len + 1)

let recal_run t ~shard ~count =
  if count > 0 then
    with_shard t shard (fun s -> s.recal_runs <- s.recal_runs + count)

let fleet_assign t ~shard ~ns =
  with_shard t shard (fun s ->
      s.fleet_assigns <- s.fleet_assigns + 1;
      Prob.Histogram.add s.fleet_histogram ns;
      s.fleet_ring.(s.fleet_ring_next) <- ns;
      s.fleet_ring_next <- (s.fleet_ring_next + 1) mod ring_size;
      if s.fleet_ring_len < ring_size then
        s.fleet_ring_len <- s.fleet_ring_len + 1)

let fleet_release t ~shard =
  with_shard t shard (fun s -> s.fleet_releases <- s.fleet_releases + 1)

let add_cache t ~merge =
  Mutex.lock t.sources_lock;
  t.cache_sources <- merge :: t.cache_sources;
  Mutex.unlock t.sources_lock

let add_sessions t ~stats =
  Mutex.lock t.sources_lock;
  t.session_sources <- stats :: t.session_sources;
  Mutex.unlock t.sources_lock

let add_gauges t ~gauges =
  Mutex.lock t.sources_lock;
  t.gauge_sources <- gauges :: t.gauge_sources;
  Mutex.unlock t.sources_lock

(* Merged view of every shard: counters and histogram buckets sum, the
   per-verb tables sum, and the rings concatenate.  Each shard is locked
   only for its own copy-out. *)
type merged = {
  m_requests : int;
  m_ok : int;
  m_errors : int;
  m_overloads : int;
  m_deadlines : int;
  m_batches : int;
  m_batched_saved : int;
  m_jq_memo_hits : int;
  m_steals : int;
  m_per_verb : (string, int) Hashtbl.t;
  m_counts : int array;
  m_latencies : float array;
  m_jq_evals : int;
  m_jq_flat_fallbacks : int;
  m_jq_counts : int array;
  m_jq_ns : float array;
  m_session_verbs : int;
  m_session_ns : float array;
  m_ingests : int;
  m_votes_ingested : int;
  m_recal_runs : int;
  m_ingest_ns : float array;
  m_fleet_assigns : int;
  m_fleet_releases : int;
  m_fleet_ns : float array;
}

let merge t =
  let per_verb = Hashtbl.create 8 in
  let counts = ref [||] in
  let rings = ref [] in
  let requests = ref 0 and ok = ref 0 and errors = ref 0 in
  let overloads = ref 0 and deadlines = ref 0 in
  let batches = ref 0 and batched_saved = ref 0 in
  let jq_memo_hits = ref 0 and steals = ref 0 in
  let jq_evals = ref 0 and jq_flat_fallbacks = ref 0 in
  let jq_counts = ref [||] in
  let jq_rings = ref [] in
  let session_verbs = ref 0 in
  let session_rings = ref [] in
  let ingests = ref 0 and votes_ingested = ref 0 and recal_runs = ref 0 in
  let ingest_rings = ref [] in
  let fleet_assigns = ref 0 and fleet_releases = ref 0 in
  let fleet_rings = ref [] in
  Array.iteri
    (fun i _ ->
      with_shard t i (fun s ->
          requests := !requests + s.requests;
          ok := !ok + s.ok;
          errors := !errors + s.errors;
          overloads := !overloads + s.overloads;
          deadlines := !deadlines + s.deadlines;
          batches := !batches + s.batches;
          batched_saved := !batched_saved + s.batched_saved;
          jq_memo_hits := !jq_memo_hits + s.jq_memo_hits;
          steals := !steals + s.steals;
          Hashtbl.iter
            (fun verb r ->
              Hashtbl.replace per_verb verb
                (!r + Option.value ~default:0 (Hashtbl.find_opt per_verb verb)))
            s.per_verb;
          let c = Prob.Histogram.counts s.histogram in
          if Array.length !counts = 0 then counts := c
          else Array.iteri (fun k v -> !counts.(k) <- !counts.(k) + v) c;
          if s.ring_len > 0 then rings := Array.sub s.ring 0 s.ring_len :: !rings;
          jq_evals := !jq_evals + s.jq_evals;
          jq_flat_fallbacks := !jq_flat_fallbacks + s.jq_flat_fallbacks;
          let jc = Prob.Histogram.counts s.jq_histogram in
          if Array.length !jq_counts = 0 then jq_counts := jc
          else Array.iteri (fun k v -> !jq_counts.(k) <- !jq_counts.(k) + v) jc;
          if s.jq_ring_len > 0 then
            jq_rings := Array.sub s.jq_ring 0 s.jq_ring_len :: !jq_rings;
          session_verbs := !session_verbs + s.session_verbs;
          if s.session_ring_len > 0 then
            session_rings :=
              Array.sub s.session_ring 0 s.session_ring_len :: !session_rings;
          ingests := !ingests + s.ingests;
          votes_ingested := !votes_ingested + s.votes_ingested;
          recal_runs := !recal_runs + s.recal_runs;
          if s.ingest_ring_len > 0 then
            ingest_rings :=
              Array.sub s.ingest_ring 0 s.ingest_ring_len :: !ingest_rings;
          fleet_assigns := !fleet_assigns + s.fleet_assigns;
          fleet_releases := !fleet_releases + s.fleet_releases;
          if s.fleet_ring_len > 0 then
            fleet_rings :=
              Array.sub s.fleet_ring 0 s.fleet_ring_len :: !fleet_rings))
    t.shards;
  {
    m_requests = !requests;
    m_ok = !ok;
    m_errors = !errors;
    m_overloads = !overloads;
    m_deadlines = !deadlines;
    m_batches = !batches;
    m_batched_saved = !batched_saved;
    m_jq_memo_hits = !jq_memo_hits;
    m_steals = !steals;
    m_per_verb = per_verb;
    m_counts = !counts;
    m_latencies = Array.concat !rings;
    m_jq_evals = !jq_evals;
    m_jq_flat_fallbacks = !jq_flat_fallbacks;
    m_jq_counts = !jq_counts;
    m_jq_ns = Array.concat !jq_rings;
    m_session_verbs = !session_verbs;
    m_session_ns = Array.concat !session_rings;
    m_ingests = !ingests;
    m_votes_ingested = !votes_ingested;
    m_recal_runs = !recal_runs;
    m_ingest_ns = Array.concat !ingest_rings;
    m_fleet_assigns = !fleet_assigns;
    m_fleet_releases = !fleet_releases;
    m_fleet_ns = Array.concat !fleet_rings;
  }

let snapshot t =
  let m = merge t in
  let sources, session_sources, gauge_sources =
    Mutex.lock t.sources_lock;
    let s = t.cache_sources
    and ss = t.session_sources
    and gs = t.gauge_sources in
    Mutex.unlock t.sources_lock;
    (s, ss, gs)
  in
  let f = float_of_int in
  let base =
    [
      ("uptime_s", Clock.now () -. t.started_at);
      ("requests", f m.m_requests);
      ("ok", f m.m_ok);
      ("errors", f m.m_errors);
      ("overloads", f m.m_overloads);
      ("deadlines", f m.m_deadlines);
      ("batches", f m.m_batches);
      ("batched_saved", f m.m_batched_saved);
      ("jq_memo_hits", f m.m_jq_memo_hits);
      ("steals", f m.m_steals);
      ("jq_evals", f m.m_jq_evals);
      ("jq_flat_fallbacks", f m.m_jq_flat_fallbacks);
      ("session_verbs", f m.m_session_verbs);
      ("ingests", f m.m_ingests);
      ("votes_ingested", f m.m_votes_ingested);
      ("recal_runs", f m.m_recal_runs);
      ("fleet_assigns", f m.m_fleet_assigns);
      ("fleet_releases", f m.m_fleet_releases);
    ]
    @ Hashtbl.fold (fun verb n acc -> ("req_" ^ verb, f n) :: acc) m.m_per_verb []
  in
  (* Quantiles and cache sources run outside every shard lock: sorting the
     merged ring is O(n log n), and the sources read executor-owned
     counters on their own terms. *)
  let quantiles =
    if Array.length m.m_latencies = 0 then []
    else
      let q p = 1000. *. Prob.Stats.quantile m.m_latencies p in
      [ ("p50_ms", q 0.5); ("p95_ms", q 0.95); ("p99_ms", q 0.99) ]
  in
  let jq_quantiles =
    if Array.length m.m_jq_ns = 0 then []
    else
      let q p = Prob.Stats.quantile m.m_jq_ns p in
      [
        ("jq_eval_ns_p50", q 0.5);
        ("jq_eval_ns_p95", q 0.95);
        ("jq_eval_ns_p99", q 0.99);
      ]
  in
  let session_quantiles =
    if Array.length m.m_session_ns = 0 then []
    else
      let q p = Prob.Stats.quantile m.m_session_ns p in
      [
        ("session_verb_ns_p50", q 0.5);
        ("session_verb_ns_p95", q 0.95);
        ("session_verb_ns_p99", q 0.99);
      ]
  in
  let ingest_quantiles =
    if Array.length m.m_ingest_ns = 0 then []
    else
      let q p = Prob.Stats.quantile m.m_ingest_ns p in
      [
        ("ingest_ns_p50", q 0.5);
        ("ingest_ns_p95", q 0.95);
        ("ingest_ns_p99", q 0.99);
      ]
  in
  let fleet_quantiles =
    if Array.length m.m_fleet_ns = 0 then []
    else
      let q p = Prob.Stats.quantile m.m_fleet_ns p in
      [
        ("fleet_assign_ns_p50", q 0.5);
        ("fleet_assign_ns_p95", q 0.95);
        ("fleet_assign_ns_p99", q 0.99);
      ]
  in
  let cache =
    List.fold_left
      (fun acc merge -> Jsp.Objective_cache.merge_stats acc (merge ()))
      Jsp.Objective_cache.empty_stats sources
  in
  let sessions =
    List.fold_left
      (fun acc stats -> Session.Store.add_stats acc (stats ()))
      Session.Store.zero_stats session_sources
  in
  let session_rows =
    [
      ("sessions_open", f sessions.Session.Store.open_now);
      ("sessions_opened", f sessions.Session.Store.opened);
      ("sessions_decided", f sessions.Session.Store.decided);
      ("sessions_expired", f sessions.Session.Store.expired);
      ("sessions_invalidated", f sessions.Session.Store.invalidated);
      ("sessions_rejected", f sessions.Session.Store.rejected);
    ]
  in
  let cache_rows =
    let lookups = cache.Jsp.Objective_cache.hits + cache.misses in
    [
      ("cache_hits", f cache.Jsp.Objective_cache.hits);
      ("cache_misses", f cache.misses);
      ( "cache_hit_rate",
        if lookups = 0 then 0.
        else f cache.Jsp.Objective_cache.hits /. f lookups );
      ("cache_entries", f cache.entries);
      ("cache_evictions", f cache.evictions);
    ]
  in
  let gauge_rows = List.concat_map (fun gauges -> gauges ()) gauge_sources in
  List.sort compare
    (base @ quantiles @ jq_quantiles @ session_quantiles @ ingest_quantiles
   @ fleet_quantiles @ cache_rows @ session_rows @ gauge_rows)

let pp_line ppf t =
  let snap = snapshot t in
  let get key = List.assoc_opt key snap in
  let int_of key = match get key with Some v -> int_of_float v | None -> 0 in
  Format.fprintf ppf "serve: up %.0fs reqs %d ok %d err %d over %d"
    (Option.value ~default:0. (get "uptime_s"))
    (int_of "requests") (int_of "ok") (int_of "errors") (int_of "overloads");
  (match (get "p50_ms", get "p95_ms", get "p99_ms") with
  | Some p50, Some p95, Some p99 ->
      Format.fprintf ppf " lat_ms p50 %.2f p95 %.2f p99 %.2f" p50 p95 p99
  | _ -> ());
  (match get "cache_hit_rate" with
  | Some rate when int_of "cache_hits" + int_of "cache_misses" > 0 ->
      Format.fprintf ppf " cache %.0f%%" (100. *. rate)
  | _ -> ());
  let m = merge t in
  let bounds = t.shards.(0).histogram in
  let nonempty = ref [] in
  Array.iteri
    (fun i c ->
      if c > 0 then
        let lo, hi = Prob.Histogram.bucket_bounds bounds i in
        nonempty :=
          Printf.sprintf "[%.0f,%.0f)ms:%d" (1000. *. lo) (1000. *. hi) c
          :: !nonempty)
    m.m_counts;
  if !nonempty <> [] then
    Format.fprintf ppf " hist %s" (String.concat " " (List.rev !nonempty))
