external now : unit -> float = "optjs_clock_monotonic_s"
