(** Bounded multi-producer multi-consumer work queue.

    The admission-control point of the service: producers never block —
    {!try_push} either enqueues or reports the queue full, so overload
    turns into an explicit wire reply instead of unbounded growth.
    Consumers block on a condition variable; {!pop_batch} additionally
    drains a run of compatible items from the front in one critical
    section, which is how same-pool [jq] queries coalesce into one
    cache-warm evaluation.  Safe across OCaml 5 domains and systhreads
    (one mutex, one condition). *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument for capacity <= 0. *)

val try_push : 'a t -> 'a -> bool
(** Enqueue without blocking; [false] when the queue is full or closed. *)

val pop_batch : 'a t -> max:int -> compatible:('a -> 'a -> bool) -> 'a list option
(** Block until an item is available; return it plus up to [max - 1]
    immediately following items [compatible] with it (FIFO order is
    preserved — draining stops at the first incompatible item).  [None]
    once the queue is closed {i and} drained. *)

val close : 'a t -> unit
(** Stop accepting pushes and wake every blocked consumer.  Items already
    queued are still handed out. *)

val length : 'a t -> int
(** Items currently queued (a racy snapshot, for metrics). *)
