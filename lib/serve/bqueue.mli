(** Bounded single-owner work queue — one shard of the serve data plane.

    Each executor domain owns exactly one shard: the owner blocks in
    {!pop_batch} on the shard's private mutex/condvar, so two executors
    never contend on the same lock in steady state (the failure mode that
    made the pre-sharding single global queue scale negatively).  Other
    actors touch a foreign shard only briefly: producers {!push} into it,
    idle executors {!steal} a run from its front, and a producer that
    observes backlog {!invite}s a neighbouring shard's owner to come
    stealing.

    Batching is preserved per shard: both {!pop_batch} and {!steal} drain
    a FIFO run of [compatible] items from the front in one critical
    section, which is how same-pool [jq] queries keep coalescing into one
    cache-warm evaluation after sharding. *)

type 'a t

type push_result =
  | Pushed of int  (** Enqueued; payload is the queue length after the push. *)
  | Full           (** At capacity — the dispatcher may spill elsewhere. *)
  | Closed         (** Shut down — no further pushes will ever succeed. *)

val create : capacity:int -> 'a t
(** @raise Invalid_argument for capacity <= 0. *)

val push : 'a t -> 'a -> push_result
(** Enqueue without blocking and wake the owner if it sleeps. *)

val pop_batch :
  'a t ->
  max:int ->
  compatible:('a -> 'a -> bool) ->
  [ `Batch of 'a list | `Invited | `Closed ]
(** Owner-only.  Block until something happens on this shard:
    [`Batch items] — the front item plus up to [max - 1] immediately
    following [compatible] items (FIFO order, stopping at the first
    incompatible one); [`Invited] — a producer signalled backlog on some
    other shard, go try {!steal}ing (the invitation counter is consumed);
    [`Closed] — the shard is closed {i and} drained, the owner may exit. *)

val steal : 'a t -> max:int -> compatible:('a -> 'a -> bool) -> 'a list
(** Thief-side, never blocks: take a front run exactly like {!pop_batch}
    would, or [[]] when the shard is empty.  Items already queued remain
    stealable after {!close} (they still must be answered). *)

val invite : 'a t -> unit
(** Ask the shard's owner to wake up and steal from its neighbours.  The
    invitation is latched in a counter, so it is not lost when the owner
    is busy: it is consumed at the owner's next idle {!pop_batch}. *)

val close : 'a t -> unit
(** Stop accepting pushes and wake the owner.  Items already queued are
    still handed out (to the owner or to thieves). *)

val length : 'a t -> int
(** Items currently queued (a racy snapshot, for routing and metrics). *)

val capacity : 'a t -> int
