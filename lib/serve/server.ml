(* Epoll/poll event-loop connection plane.  One event thread owns the
   listener, every connection descriptor, the Evloop backend and the
   [conns] table; the only cross-thread traffic is the completion queue
   (executor domains push finished replies) and [stop], both of which
   talk to the loop through a self-pipe. *)

external fd_int : Unix.file_descr -> int = "%identity"

let default_max_line = 65536
let accept_backoff_base = 0.05
let accept_backoff_max = 1.0
let read_burst = 16 (* reads per readiness event, fairness bound *)

let accept_action = function
  | Unix.EINTR | Unix.ECONNABORTED -> `Retry
  | Unix.EAGAIN | Unix.EWOULDBLOCK -> `Drained
  | Unix.EMFILE | Unix.ENFILE | Unix.ENOBUFS | Unix.ENOMEM -> `Backoff
  | Unix.EBADF | Unix.EINVAL | Unix.ENOTSOCK -> `Stop
  | _ -> `Backoff

type conn = {
  fd : Unix.file_descr;
  frame : Lineframe.t;
  mutable obuf : Bytes.t; (* pending reply bytes: [out_off, out_len) *)
  mutable out_off : int;
  mutable out_len : int;
  mutable busy : bool; (* one request in flight with the service *)
  mutable alive : bool;
  mutable mask : int; (* interest currently registered with the loop *)
  mutable line_deadline : float; (* partial-line reap time; infinity = none *)
}

type t = {
  service : Service.t;
  listener : Unix.file_descr;
  port : int;
  max_conns : int;
  idle_timeout : float;
  max_line : int;
  loop : Evloop.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  (* [qlock] guards [completions], [wake_open] and writes to [wake_w];
     everything else below the line is event-thread-only (counters are
     read racily by the stats gauges, which is fine for monitoring). *)
  qlock : Mutex.t;
  mutable completions : (conn * Wire.response) list; (* LIFO *)
  mutable wake_open : bool;
  conns : (int, conn) Hashtbl.t;
  lock : Mutex.t;
  mutable state : [ `Created | `Running | `Stopped ];
  mutable thread : Thread.t option;
  mutable conns_open : int;
  mutable conns_accepted : int;
  mutable conns_rejected : int;
  mutable read_timeouts : int;
  mutable long_lines : int;
  mutable accept_retries : int;
  mutable accept_backoffs : int;
  mutable accept_pause_until : float; (* 0. = accepting *)
  mutable accept_backoff : float;
  mutable listener_dead : bool;
}

let port t = t.port

(* -- cross-thread wakeup ------------------------------------------------ *)

let wake_byte = Bytes.make 1 '!'

(* Wake-pipe writes stay under [qlock] and behind [wake_open] so a late
   executor completion can never write to a closed (and possibly reused)
   descriptor. *)
let wake_locked t =
  if t.wake_open then
    try ignore (Unix.write t.wake_w wake_byte 0 1)
    with Unix.Unix_error _ -> () (* full pipe = wakeup already pending *)

let wake t =
  Mutex.lock t.qlock;
  wake_locked t;
  Mutex.unlock t.qlock

let completed t conn response =
  Mutex.lock t.qlock;
  if t.wake_open then begin
    t.completions <- (conn, response) :: t.completions;
    wake_locked t
  end;
  Mutex.unlock t.qlock

(* -- connection bookkeeping (event thread only) ------------------------- *)

let close_conn t conn =
  if conn.alive then begin
    conn.alive <- false;
    Evloop.remove t.loop conn.fd;
    Hashtbl.remove t.conns (fd_int conn.fd);
    (try Unix.close conn.fd with Unix.Unix_error _ -> ());
    t.conns_open <- t.conns_open - 1
  end

let out_pending conn = conn.out_len - conn.out_off

let out_append conn s =
  let n = String.length s in
  if conn.out_len + n > Bytes.length conn.obuf then begin
    let pending = out_pending conn in
    if pending > 0 && conn.out_off > 0 then
      Bytes.blit conn.obuf conn.out_off conn.obuf 0 pending;
    conn.out_off <- 0;
    conn.out_len <- pending;
    if pending + n > Bytes.length conn.obuf then begin
      let grown = Bytes.create (max (pending + n) (2 * Bytes.length conn.obuf)) in
      Bytes.blit conn.obuf 0 grown 0 pending;
      conn.obuf <- grown
    end
  end;
  Bytes.blit_string s 0 conn.obuf conn.out_len n;
  conn.out_len <- conn.out_len + n

let rec flush_out t conn =
  if conn.alive then begin
    let pending = out_pending conn in
    if pending = 0 then begin
      conn.out_off <- 0;
      conn.out_len <- 0
    end
    else
      match Unix.write conn.fd conn.obuf conn.out_off pending with
      | n ->
          conn.out_off <- conn.out_off + n;
          if n = pending then begin
            conn.out_off <- 0;
            conn.out_len <- 0
          end
          (* n < pending: the socket buffer filled mid-write; keep the
             remainder and wait for writability. *)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> flush_out t conn
      | exception Unix.Unix_error (_, _, _) ->
          (* EPIPE / ECONNRESET / anything else: the peer is gone. *)
          close_conn t conn
  end

let enqueue_reply _t conn response =
  out_append conn (Wire.encode_response response);
  out_append conn "\n"

(* Refresh interest mask and the partial-line deadline after any
   activity.  The deadline arms when a partial line first appears and is
   deliberately NOT refreshed by further trickled bytes — a slow-loris
   sender cannot keep a line alive by dripping one byte per tick. *)
let settle t conn =
  if conn.alive then begin
    flush_out t conn;
    if conn.alive then begin
      let mask =
        (if Lineframe.has_room conn.frame then Evloop.readable else 0)
        lor (if out_pending conn > 0 then Evloop.writable else 0)
      in
      if mask <> conn.mask then begin
        conn.mask <- mask;
        Evloop.modify t.loop conn.fd mask
      end;
      if
        t.idle_timeout > 0. && (not conn.busy)
        && Lineframe.pending conn.frame
      then begin
        if conn.line_deadline = infinity then
          conn.line_deadline <- Clock.now () +. t.idle_timeout
      end
      else conn.line_deadline <- infinity
    end
  end

let rec process t conn =
  if conn.alive && not conn.busy then
    match Lineframe.next conn.frame with
    | `Await -> ()
    | `Too_long ->
        t.long_lines <- t.long_lines + 1;
        enqueue_reply t conn
          (Wire.Error
             {
               code = Wire.Bad_request;
               message =
                 Printf.sprintf
                   "line-too-long: request line exceeds %d bytes" t.max_line;
             });
        process t conn
    | `Line line -> (
        match Wire.decode_request line with
        | Error message ->
            enqueue_reply t conn
              (Wire.Error { code = Wire.Bad_request; message });
            process t conn
        | Ok request ->
            conn.busy <- true;
            Service.submit_async t.service request ~k:(completed t conn))

let rec read_pump t conn budget =
  if conn.alive && budget > 0 then
    match Lineframe.reserve conn.frame with
    | None -> () (* backpressure: settle drops read interest *)
    | Some (buf, off, room) -> (
        match Unix.read conn.fd buf off room with
        | 0 -> close_conn t conn
        | n ->
            Lineframe.commit conn.frame n;
            process t conn;
            if n = room then read_pump t conn (budget - 1)
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          ->
            ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) ->
            read_pump t conn budget
        | exception Unix.Unix_error (_, _, _) -> close_conn t conn)

(* -- accepting ---------------------------------------------------------- *)

let shed t fd =
  t.conns_rejected <- t.conns_rejected + 1;
  let line =
    Wire.encode_response
      (Wire.Error
         {
           code = Wire.Overload;
           message =
             Printf.sprintf "connection cap reached (%d open)" t.max_conns;
         })
    ^ "\n"
  in
  (try
     Unix.set_nonblock fd;
     ignore (Unix.write_substring fd line 0 (String.length line))
   with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let add_conn t fd =
  Unix.set_nonblock fd;
  (try Unix.setsockopt fd Unix.TCP_NODELAY true
   with Unix.Unix_error _ -> ());
  let conn =
    {
      fd;
      frame = Lineframe.create ~max_line:t.max_line ();
      obuf = Bytes.create 1024;
      out_off = 0;
      out_len = 0;
      busy = false;
      alive = true;
      mask = Evloop.readable;
      line_deadline = infinity;
    }
  in
  Hashtbl.replace t.conns (fd_int fd) conn;
  Evloop.add t.loop fd Evloop.readable;
  t.conns_open <- t.conns_open + 1;
  t.conns_accepted <- t.conns_accepted + 1

let kill_listener t =
  if not t.listener_dead then begin
    t.listener_dead <- true;
    Evloop.remove t.loop t.listener;
    try Unix.close t.listener with Unix.Unix_error _ -> ()
  end

let pause_accept t =
  t.accept_backoffs <- t.accept_backoffs + 1;
  t.accept_pause_until <- Clock.now () +. t.accept_backoff;
  t.accept_backoff <- Float.min accept_backoff_max (2. *. t.accept_backoff);
  (* Keep the listener registered with an empty mask so readiness stops
     spinning the loop while paused. *)
  Evloop.modify t.loop t.listener 0

let rec accept_pump t =
  if (not t.listener_dead) && t.accept_pause_until = 0. then
    match Unix.accept ~cloexec:true t.listener with
    | fd, _ ->
        t.accept_backoff <- accept_backoff_base;
        if t.conns_open >= t.max_conns then shed t fd else add_conn t fd;
        accept_pump t
    | exception Unix.Unix_error (e, _, _) -> (
        match accept_action e with
        | `Drained -> ()
        | `Retry ->
            t.accept_retries <- t.accept_retries + 1;
            accept_pump t
        | `Backoff -> pause_accept t
        | `Stop -> kill_listener t)

(* -- event-loop body ---------------------------------------------------- *)

let drain_wake t =
  let buf = Bytes.create 256 in
  let rec go () =
    match Unix.read t.wake_r buf 0 256 with
    | 256 -> go ()
    | _ -> ()
    | exception Unix.Unix_error _ -> ()
  in
  go ()

let handle t fd mask =
  if fd = t.wake_r then drain_wake t
  else if fd = t.listener then begin
    if mask land (Evloop.readable lor Evloop.error) <> 0 then accept_pump t
  end
  else
    match Hashtbl.find_opt t.conns (fd_int fd) with
    | None -> () (* closed earlier in this batch *)
    | Some conn ->
        if mask land Evloop.error <> 0 then close_conn t conn
        else begin
          if mask land Evloop.writable <> 0 then flush_out t conn;
          if conn.alive && mask land Evloop.readable <> 0 then
            read_pump t conn read_burst;
          settle t conn
        end

let drain_completions t =
  let rec go () =
    Mutex.lock t.qlock;
    let batch = t.completions in
    t.completions <- [];
    Mutex.unlock t.qlock;
    match batch with
    | [] -> ()
    | batch ->
        List.iter
          (fun (conn, response) ->
            if conn.alive then begin
              enqueue_reply t conn response;
              conn.busy <- false;
              process t conn;
              settle t conn
            end)
          (List.rev batch);
        (* [process] answers control verbs synchronously, which lands new
           completions; loop until quiescent. *)
        go ()
  in
  go ()

let timers t =
  let now = Clock.now () in
  if t.accept_pause_until > 0. && now >= t.accept_pause_until then begin
    t.accept_pause_until <- 0.;
    if not t.listener_dead then begin
      Evloop.modify t.loop t.listener Evloop.readable;
      accept_pump t
    end
  end;
  if t.idle_timeout > 0. then begin
    let doomed =
      Hashtbl.fold
        (fun _ c acc -> if c.line_deadline <= now then c :: acc else acc)
        t.conns []
    in
    List.iter
      (fun c ->
        t.read_timeouts <- t.read_timeouts + 1;
        close_conn t c)
      doomed
  end

let next_timeout_ms t =
  let soonest = ref infinity in
  if t.accept_pause_until > 0. then
    soonest := Float.min !soonest t.accept_pause_until;
  if t.idle_timeout > 0. then
    Hashtbl.iter
      (fun _ c ->
        if c.line_deadline < !soonest then soonest := c.line_deadline)
      t.conns;
  if !soonest = infinity then -1
  else
    let ms = ceil (1000. *. (!soonest -. Clock.now ())) in
    max 1 (int_of_float (Float.min ms 60_000.))

let cleanup t =
  kill_listener t;
  let all = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
  List.iter
    (fun c ->
      flush_out t c;
      close_conn t c)
    all;
  Mutex.lock t.qlock;
  t.wake_open <- false;
  t.completions <- [];
  Mutex.unlock t.qlock;
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  (try Unix.close t.wake_w with Unix.Unix_error _ -> ());
  Evloop.close t.loop

let rec loop_body t =
  let stopping =
    Mutex.lock t.lock;
    let s = t.state = `Stopped in
    Mutex.unlock t.lock;
    s
  in
  if stopping then cleanup t
  else begin
    ignore (Evloop.wait t.loop ~timeout_ms:(next_timeout_ms t) ~handle:(handle t));
    drain_completions t;
    timers t;
    loop_body t
  end

(* -- lifecycle ---------------------------------------------------------- *)

let ignore_sigpipe () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ -> () (* non-Unix platform *)

let create ?(backlog = 64) ?(max_conns = 1024) ?(idle_timeout = 0.)
    ?(max_line = default_max_line) ?(force_poll = false) ~port service =
  if max_conns <= 0 then invalid_arg "Server.create: max_conns <= 0";
  if max_line <= 0 then invalid_arg "Server.create: max_line <= 0";
  if not (idle_timeout >= 0.) then
    invalid_arg "Server.create: idle_timeout < 0 or NaN";
  ignore_sigpipe ();
  let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt listener Unix.SO_REUSEADDR true;
     Unix.bind listener (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
     Unix.listen listener backlog;
     Unix.set_nonblock listener
   with exn ->
     (try Unix.close listener with Unix.Unix_error _ -> ());
     raise exn);
  let port =
    match Unix.getsockname listener with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  let loop =
    try Evloop.create ~force_poll ()
    with exn ->
      (try Unix.close listener with Unix.Unix_error _ -> ());
      raise exn
  in
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  Evloop.add loop listener Evloop.readable;
  Evloop.add loop wake_r Evloop.readable;
  let t =
    {
      service;
      listener;
      port;
      max_conns;
      idle_timeout;
      max_line;
      loop;
      wake_r;
      wake_w;
      qlock = Mutex.create ();
      completions = [];
      wake_open = true;
      conns = Hashtbl.create 64;
      lock = Mutex.create ();
      state = `Created;
      thread = None;
      conns_open = 0;
      conns_accepted = 0;
      conns_rejected = 0;
      read_timeouts = 0;
      long_lines = 0;
      accept_retries = 0;
      accept_backoffs = 0;
      accept_pause_until = 0.;
      accept_backoff = accept_backoff_base;
      listener_dead = false;
    }
  in
  Metrics.add_gauges (Service.metrics service) ~gauges:(fun () ->
      let f = float_of_int in
      [
        ("conns_open", f t.conns_open);
        ("conns_accepted", f t.conns_accepted);
        ("conns_rejected", f t.conns_rejected);
        ("read_timeouts", f t.read_timeouts);
        ("long_lines", f t.long_lines);
        ("accept_retries", f t.accept_retries);
        ("accept_backoffs", f t.accept_backoffs);
      ]);
  t

let start t =
  Mutex.lock t.lock;
  if t.state = `Created then begin
    t.state <- `Running;
    t.thread <- Some (Thread.create loop_body t)
  end;
  Mutex.unlock t.lock

let run ?log_interval t =
  start t;
  match log_interval with
  | Some interval when interval > 0. ->
      let rec log_forever () =
        Thread.delay interval;
        Format.eprintf "%a@." Metrics.pp_line (Service.metrics t.service);
        log_forever ()
      in
      log_forever ()
  | _ ->
      let rec sleep_forever () =
        Thread.delay 3600.;
        sleep_forever ()
      in
      sleep_forever ()

let stop t =
  Mutex.lock t.lock;
  let prev = t.state in
  t.state <- `Stopped;
  let th = t.thread in
  t.thread <- None;
  Mutex.unlock t.lock;
  match prev with
  | `Stopped -> ()
  | `Running -> (
      wake t;
      match th with Some th -> Thread.join th | None -> ())
  | `Created -> cleanup t
