type t = {
  service : Service.t;
  listener : Unix.file_descr;
  port : int;
  lock : Mutex.t;
  mutable state : [ `Created | `Running | `Stopped ];
}

let create ?(backlog = 64) ~port service =
  let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt listener Unix.SO_REUSEADDR true;
     Unix.bind listener (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
     Unix.listen listener backlog
   with exn ->
     Unix.close listener;
     raise exn);
  let port =
    match Unix.getsockname listener with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  { service; listener; port; lock = Mutex.create (); state = `Created }

let port t = t.port

let handle_line service line =
  match Wire.decode_request line with
  | Ok request -> Service.submit service request
  | Error message -> Wire.Error { code = Wire.Bad_request; message }

(* One reader thread per connection: closes its own descriptor on EOF or
   any socket error, and never lets an exception escape the thread. *)
let connection_loop service fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let rec loop () =
    let line = input_line ic in
    output_string oc (Wire.encode_response (handle_line service line));
    output_char oc '\n';
    flush oc;
    loop ()
  in
  (try loop () with _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_loop t =
  let rec loop () =
    match Unix.accept t.listener with
    | fd, _ ->
        ignore (Thread.create (fun () -> connection_loop t.service fd) ());
        loop ()
    | exception Unix.Unix_error _ -> ()  (* listener closed: stop accepting *)
    | exception Sys_error _ -> ()
  in
  loop ()

let start t =
  Mutex.lock t.lock;
  let launch = t.state = `Created in
  if launch then t.state <- `Running;
  Mutex.unlock t.lock;
  if launch then ignore (Thread.create (fun () -> accept_loop t) ())

let run ?log_interval t =
  start t;
  match log_interval with
  | Some interval when interval > 0. ->
      let rec log_forever () =
        Thread.delay interval;
        Format.eprintf "%a@." Metrics.pp_line (Service.metrics t.service);
        log_forever ()
      in
      log_forever ()
  | _ ->
      let rec sleep_forever () =
        Thread.delay 3600.;
        sleep_forever ()
      in
      sleep_forever ()

let stop t =
  Mutex.lock t.lock;
  let close = t.state <> `Stopped in
  t.state <- `Stopped;
  Mutex.unlock t.lock;
  if close then try Unix.close t.listener with Unix.Unix_error _ -> ()
