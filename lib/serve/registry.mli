(** Versioned quality-plane owner: named pools plus their live calibrators.

    Until PR 8 this was a copy-on-write map of immutable CSV snapshots.
    It now owns the full worker-quality state: each named pool carries a
    {!Workers.Calib.t} streaming calibrator, and the served
    {!Engine.Pool.t} is rebuilt from the upload template (ids, names,
    costs) and the calibrator's current estimates whenever a vote batch is
    applied.

    The invalidation contract is unchanged and is what keeps every warm
    cache correct by construction: all quality mutations flow through
    {!report} / {!recal}, every applied batch bumps the registry-wide
    generation and stamps the pool with a fresh version, and executor-side
    caches ({!Jsp.Objective_cache}, jq memos, incremental evaluators,
    session stores) are keyed by (name, version, ...), so there is no code
    path that can observe recalibrated qualities through a stale cache.

    Drift flags raised by the calibrator mark the pool [stale]; the service
    reacts by re-solving the recorded standing juries ({!standing} /
    {!refresh_standing}) against the new version. *)

type t

val create :
  ?calib_config:Workers.Calib.config -> ?standing_cap:int -> unit -> t
(** [calib_config] applies to calibrators created by subsequent upserts;
    [standing_cap] (default 8) bounds recorded standing-jury specs per
    pool. *)

val upsert : t -> name:string -> Engine.Pool.t -> int
(** Insert or replace the named pool; returns the new version.  Versions
    come from one registry-wide counter, so they are unique across pools
    and strictly increasing over time.  Replacing a pool resets its
    calibrator: the uploaded qualities are the new anchor. *)

val find : t -> string -> (Engine.Pool.t * int) option
(** Snapshot of the named pool (as currently calibrated) and its version. *)

val list : t -> (string * int * int) list
(** (name, version, size) rows, sorted by name. *)

val size : t -> int
(** Number of registered pools. *)

type ingest = {
  version : int;  (** Pool version after the call. *)
  applied : int;  (** Votes folded in by this call (0 = only buffered). *)
  pending : int;  (** Votes still buffered for the next step. *)
  drifted : Workers.Calib.drift list;
  stale : bool;   (** Standing juries may predate a drift flag. *)
}

val report :
  t ->
  name:string ->
  Workers.Calib.vote list ->
  (ingest, [ `Unknown_pool | `Invalid of string ]) result
(** Ingest a vote batch.  Votes are buffered; once the calibrator's batch
    threshold is reached a mini-batch calibration step runs inline and —
    when it applied votes or moved an estimate — the pool version is
    bumped.  [`Invalid] reports out-of-range worker/label/truth ids
    (nothing is buffered in that case). *)

val recal : t -> name:string -> (ingest, [ `Unknown_pool ]) result
(** Force a full calibration step now (pending votes included, EM run to
    convergence), bumping the version when anything moved. *)

val quality : t -> name:string -> ((int * float * int) list * int) option
(** Per-worker readback: (worker id, current quality, votes seen) in pool
    order, plus the pool version. *)

val note_standing :
  t -> name:string -> budget:float -> prior:float list -> seed:int ->
  jury:int list -> unit
(** Record a solved standing jury for the pool (spec = budget, prior,
    seed).  Specs are deduplicated and capped; unknown pools are ignored. *)

val standing : t -> string -> (float * float list * int * int list) list
(** Recorded (budget, prior, seed, jury) specs, most recent first. *)

val refresh_standing :
  t -> name:string -> juries:(float * float list * int * int list) list -> unit
(** Install re-solved juries for matching specs and clear the stale flag —
    the tail end of a drift-triggered re-selection. *)

val clear_stale : t -> name:string -> unit

val stale_pools : t -> int
(** Pools currently flagged stale (drifted, standing juries not yet
    re-solved). *)

val drift_total : t -> int
(** Cumulative drift flags across all pools. *)
