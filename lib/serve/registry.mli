(** Versioned registry of named worker pools.

    The shared mutable state of the service.  Pools themselves are
    immutable ({!Engine.Pool.t}), so an update is copy-on-write: {!upsert}
    replaces the binding under the registry lock and bumps a global version
    counter, while readers take the lock only long enough to grab the
    current (pool, version) pair — a returned snapshot can never change
    under its reader, whatever later upserts do.

    Versions are what make executor-side caching safe: a warm cache is
    keyed by (name, version, ...), so replacing a pool silently retires
    every cache built against its old contents. *)

type t

val create : unit -> t

val upsert : t -> name:string -> Engine.Pool.t -> int
(** Insert or replace the named pool; returns the new version.  Versions
    come from one registry-wide counter, so they are unique across pools
    and strictly increasing over time. *)

val find : t -> string -> (Engine.Pool.t * int) option
(** Snapshot of the named pool and its version. *)

val list : t -> (string * int * int) list
(** (name, version, size) rows, sorted by name. *)

val size : t -> int
(** Number of registered pools. *)
