(** Deterministic voting strategies from Table 2 that are not Bayesian. *)

val majority : Strategy.t
(** Majority Voting (MV) exactly as in Example 1: result is 0 when
    Σ(1 − v_i) ≥ (n+1)/2, i.e. when a strict majority voted 0; everything
    else — including an exact tie on an even jury — returns 1.  Ignores the
    prior and the qualities. *)

val majority_tie_coin : Strategy.t
(** MV variant that resolves an exact tie with a fair coin (randomized on
    ties only).  Used by benches to show the tie convention does not change
    JQ at α = 0.5. *)

val half : Strategy.t
(** Half Voting [28]: 0 wins already at half the votes, i.e. result is 0
    when Σ(1 − v_i) ≥ n/2.  Differs from {!majority} only on even-jury
    ties, which it awards to 0. *)

val weighted_majority : weights:float array -> Strategy.t
(** Weighted MV [23] with caller-supplied nonnegative weights (aligned with
    the jury): result is 0 when Σ w_i (1 − 2 v_i) ≥ 0.
    @raise Invalid_argument at decision time if lengths differ. *)

val logit_weighted_majority : Strategy.t
(** Weighted MV whose weights are the logits φ(q_i) = ln(q_i / (1 − q_i))
    of the jury qualities.  At α = 0.5 this coincides with Bayesian Voting
    (a property test pins this down). *)

val recursive_majority : Strategy.t
(** Recursive (triadic-style) majority, in the spirit of Triadic Consensus
    [2]: votes are grouped into consecutive triples, each triple is reduced
    to its majority, and the procedure recurses on the reduced voting until
    one vote remains (a short tail of fewer than three votes is reduced by
    plain MV with its tie convention).  Deterministic; known to be weaker
    than flat majority for independent votes — the optimality property
    tests exercise exactly that. *)

val constant : Vote.t -> Strategy.t
(** The degenerate strategy that always answers the given vote — a lower
    bound used in optimality tests. *)
