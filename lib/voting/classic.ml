let majority =
  Strategy.make ~name:"MV" (fun ~alpha:_ ~qualities:_ voting ->
      let n = Array.length voting in
      let zeros = Vote.count_no voting in
      (* zeros >= (n+1)/2 in the reals, i.e. 2*zeros >= n+1. *)
      if 2 * zeros >= n + 1 then Strategy.Decide Vote.No
      else Strategy.Decide Vote.Yes)

let majority_tie_coin =
  Strategy.make ~name:"MV-coin" (fun ~alpha:_ ~qualities:_ voting ->
      let n = Array.length voting in
      let zeros = Vote.count_no voting in
      if 2 * zeros > n then Strategy.Decide Vote.No
      else if 2 * zeros < n then Strategy.Decide Vote.Yes
      else Strategy.Randomize 0.5)

let half =
  Strategy.make ~name:"HALF" (fun ~alpha:_ ~qualities:_ voting ->
      let n = Array.length voting in
      let zeros = Vote.count_no voting in
      if 2 * zeros >= n then Strategy.Decide Vote.No else Strategy.Decide Vote.Yes)

let signed_weight_sum weights voting =
  if Array.length weights <> Array.length voting then
    invalid_arg "Classic.weighted_majority: weights and voting lengths differ";
  let acc = Prob.Kahan.create () in
  Array.iteri
    (fun i v ->
      match (v : Vote.t) with
      | Vote.No -> Prob.Kahan.add acc weights.(i)
      | Vote.Yes -> Prob.Kahan.add acc (-.weights.(i)))
    voting;
  Prob.Kahan.total acc

let weighted_majority ~weights =
  Strategy.make ~name:"WMV" (fun ~alpha:_ ~qualities:_ voting ->
      if signed_weight_sum weights voting >= 0. then Strategy.Decide Vote.No
      else Strategy.Decide Vote.Yes)

(* Clamp away from {0, 1} so certain workers get a huge-but-finite weight
   instead of crashing the logit. *)
let safe_logit q = Prob.Log_space.logit (Float.max 1e-12 (Float.min (1. -. 1e-12) q))

let logit_weighted_majority =
  Strategy.make ~name:"WMV-logit" (fun ~alpha:_ ~qualities voting ->
      let weights = Array.map safe_logit qualities in
      if signed_weight_sum weights voting >= 0. then Strategy.Decide Vote.No
      else Strategy.Decide Vote.Yes)

let recursive_majority =
  let majority_of_chunk chunk =
    let n = List.length chunk in
    let zeros = List.fold_left (fun a v -> if v = Vote.No then a + 1 else a) 0 chunk in
    if 2 * zeros >= n + 1 then Vote.No else Vote.Yes
  in
  let rec chunks3 = function
    | a :: b :: c :: rest -> [ a; b; c ] :: chunks3 rest
    | [] -> []
    | tail -> [ tail ]
  in
  let rec reduce votes =
    match votes with
    | [] -> Vote.Yes (* matches MV on the empty voting *)
    | [ v ] -> v
    | _ -> reduce (List.map majority_of_chunk (chunks3 votes))
  in
  Strategy.make ~name:"TRIADIC" (fun ~alpha:_ ~qualities:_ voting ->
      Strategy.Decide (reduce (Array.to_list voting)))

let constant v =
  let name = Printf.sprintf "CONST-%d" (Vote.to_int v) in
  Strategy.make ~name (fun ~alpha:_ ~qualities:_ _ -> Strategy.Decide v)
