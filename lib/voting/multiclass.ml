type outcome = Decide of int | Randomize of float array

type t = {
  name : string;
  decide_fn :
    prior:float array -> jury:Workers.Confusion.t array -> int array -> outcome;
}

let make ~name decide_fn = { name; decide_fn }
let name t = t.name

let validate ~prior ~jury voting =
  let l = Array.length prior in
  if l < 2 then invalid_arg "Multiclass: prior needs at least 2 labels";
  if Float.abs (Prob.Kahan.sum_array prior -. 1.) > 1e-9 then
    invalid_arg "Multiclass: prior does not sum to 1";
  if Array.length jury <> Array.length voting then
    invalid_arg "Multiclass: jury and voting lengths differ";
  Array.iter
    (fun c ->
      if Workers.Confusion.labels c <> l then
        invalid_arg "Multiclass: juror label count differs from prior")
    jury;
  Array.iter
    (fun v -> if v < 0 || v >= l then invalid_arg "Multiclass: vote out of range")
    voting

let decide t ~prior ~jury voting =
  validate ~prior ~jury voting;
  match t.decide_fn ~prior ~jury voting with
  | Decide l ->
      if l < 0 || l >= Array.length prior then
        invalid_arg (t.name ^ ": decided label out of range")
      else Decide l
  | Randomize p ->
      if Array.length p <> Array.length prior then
        invalid_arg (t.name ^ ": outcome distribution has wrong arity")
      else if Float.abs (Prob.Kahan.sum_array p -. 1.) > 1e-9 then
        invalid_arg (t.name ^ ": outcome distribution does not sum to 1")
      else Randomize p

let prob_decide outcome label =
  match outcome with
  | Decide l -> if l = label then 1. else 0.
  | Randomize p -> p.(label)

let run t rng ~prior ~jury voting =
  match decide t ~prior ~jury voting with
  | Decide l -> l
  | Randomize p -> Prob.Distributions.sample_categorical rng p

let argmax_smallest arr =
  let best = ref 0 in
  Array.iteri (fun i x -> if x > arr.(!best) then best := i) arr;
  !best

let plurality =
  make ~name:"PLURALITY" (fun ~prior ~jury:_ voting ->
      let counts = Array.make (Array.length prior) 0 in
      Array.iter (fun v -> counts.(v) <- counts.(v) + 1) voting;
      Decide (argmax_smallest (Array.map float_of_int counts)))

let log_joint ~prior ~jury voting =
  Array.init (Array.length prior) (fun j ->
      let acc = ref (Prob.Log_space.of_prob prior.(j)) in
      Array.iteri
        (fun i v ->
          acc :=
            !acc
            +. Prob.Log_space.of_prob (Workers.Confusion.prob jury.(i) ~truth:j ~vote:v))
        voting;
      !acc)

let posterior ~prior ~jury voting =
  let lj = log_joint ~prior ~jury voting in
  let z = Prob.Log_space.sum_array lj in
  if z = neg_infinity then
    Array.make (Array.length prior) (1. /. float_of_int (Array.length prior))
  else Array.map (fun l -> exp (l -. z)) lj

let bayesian =
  make ~name:"BV" (fun ~prior ~jury voting ->
      Decide (argmax_smallest (log_joint ~prior ~jury voting)))

let random_ballot =
  make ~name:"RBV" (fun ~prior ~jury:_ _ ->
      Randomize (Array.make (Array.length prior) (1. /. float_of_int (Array.length prior))))

let enumeration_cap = 1 lsl 22

let enumeration_fits ?(cap = enumeration_cap) ~labels ~n () =
  if labels < 2 || n < 0 || cap < 1 then invalid_arg "Multiclass.enumeration_fits";
  (* Early exit keeps the product from overflowing for large juries. *)
  let rec go acc i =
    if acc > cap then false
    else if i = 0 then true
    else go (acc * labels) (i - 1)
  in
  go 1 n

let enumerate_votings ?cap ~labels ~n () =
  if labels < 2 || n < 0 then invalid_arg "Multiclass.enumerate_votings";
  if not (enumeration_fits ?cap ~labels ~n ()) then
    invalid_arg "Multiclass.enumerate_votings: space too large";
  let count =
    let rec pow acc i = if i = 0 then acc else pow (acc * labels) (i - 1) in
    pow 1 n
  in
  let of_index idx =
    let v = Array.make n 0 in
    let rest = ref idx in
    for i = n - 1 downto 0 do
      v.(i) <- !rest mod labels;
      rest := !rest / labels
    done;
    v
  in
  Seq.map of_index (Seq.init count Fun.id)
