(** Voting strategies (§3.1).

    A strategy S(V, J, α) estimates the task's true answer from a voting.
    Definition 1 (deterministic) and Definition 2 (randomized) are unified
    here by making a strategy return an {!outcome}: either a definite
    decision, or the probability with which 0 would be returned.  The
    expectation E[1(S(V)=0)] that Definition 3's JQ needs is exactly
    {!prob_decide_no} of that outcome, so the same JQ code covers both
    strategy classes. *)

type outcome =
  | Decide of Vote.t       (** Deterministic result. *)
  | Randomize of float     (** Return [No] with this probability, [Yes] otherwise. *)

type t
(** A named strategy. *)

val make :
  name:string ->
  (alpha:float -> qualities:float array -> Vote.voting -> outcome) ->
  t
(** [make ~name decide]: [decide] receives the prior α = Pr(t = 0), the
    jury's quality vector (aligned with the voting), and the voting. *)

val name : t -> string

val decide : t -> alpha:float -> qualities:float array -> Vote.voting -> outcome
(** Apply the strategy.  @raise Invalid_argument if the qualities and voting
    lengths differ, or alpha lies outside [0, 1]. *)

val prob_decide_no : outcome -> float
(** E[1(S(V) = 0)]: 1 or 0 for [Decide], [p] for [Randomize p]. *)

val run : t -> Prob.Rng.t -> alpha:float -> qualities:float array -> Vote.voting -> Vote.t
(** Execute the strategy, sampling if the outcome is randomized. *)

val is_deterministic_on :
  t -> alpha:float -> qualities:float array -> n:int -> bool
(** Whether the strategy returns [Decide] on every voting of size [n] under
    the given prior and qualities (checked by enumeration; n ≤ 25). *)
