(** Votes and votings for decision-making tasks (§2.1).

    A vote is an answer to a binary task; the paper writes 0 for "no" and 1
    for "yes".  A voting V = (v_1, ..., v_n) collects one vote per jury
    member, in jury order. *)

type t = No | Yes
(** [No] is the paper's 0, [Yes] its 1. *)

val to_int : t -> int
(** [No -> 0], [Yes -> 1]. *)

val of_int : int -> t
(** Inverse of {!to_int}. @raise Invalid_argument on other ints. *)

val flip : t -> t
(** The opposite vote (the paper's v̄ = 1 − v). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

type voting = t array
(** One vote per jury member, jury order. *)

val voting_of_ints : int list -> voting
val flip_all : voting -> voting
(** The paper's V̄ (flip every component). *)

val count_no : voting -> int
(** Σ (1 − v_i): how many voted 0. *)

val count_yes : voting -> int

val enumerate : int -> voting Seq.t
(** All 2^n votings over [n] workers, lazily, in lexicographic order with
    the first worker as the most significant position.
    @raise Invalid_argument for n > 25 (enumeration would not fit). *)

val pp_voting : Format.formatter -> voting -> unit
