(** Voting strategies for multi-choice tasks with confusion-matrix workers
    (§7).  Votes are labels in 0..ℓ−1; the prior is a distribution ~α over
    labels; each juror is a {!Workers.Confusion.t}. *)

type outcome =
  | Decide of int               (** Deterministic label. *)
  | Randomize of float array    (** Distribution over labels. *)

type t
(** A named multi-class strategy. *)

val make :
  name:string ->
  (prior:float array -> jury:Workers.Confusion.t array -> int array -> outcome) ->
  t

val name : t -> string

val decide :
  t -> prior:float array -> jury:Workers.Confusion.t array -> int array -> outcome
(** Apply the strategy.  Validates: jury and voting lengths match, every
    juror has ℓ = length of [prior] labels, votes in range, prior sums to 1
    (±1e-9).  @raise Invalid_argument on violations. *)

val prob_decide : outcome -> int -> float
(** E[1(S(V) = label)] of an outcome. *)

val run :
  t -> Prob.Rng.t -> prior:float array -> jury:Workers.Confusion.t array ->
  int array -> int
(** Execute, sampling when randomized. *)

val plurality : t
(** Multi-class MV: the label with the most votes; ties broken toward the
    smallest label (deterministic, so runs are reproducible). *)

val bayesian : t
(** Multi-class BV (Equation 10): argmax over labels t′ of
    α_t′ · Π_i C_i(t′, v_i), computed in the log domain; ties toward the
    smallest label. *)

val random_ballot : t
(** Uniformly random label regardless of the votes (ℓ-ary coin). *)

val log_joint :
  prior:float array -> jury:Workers.Confusion.t array -> int array -> float array
(** [ln (α_j · Π_i C_i(j, v_i))] for each label j. *)

val posterior :
  prior:float array -> jury:Workers.Confusion.t array -> int array -> float array
(** Normalized posterior over labels (uniform if all mass vanished). *)

val enumeration_cap : int
(** Default largest voting-space size {!enumerate_votings} will
    materialize (2^22). *)

val enumeration_fits : ?cap:int -> labels:int -> n:int -> unit -> bool
(** Whether ℓ^n ≤ [cap] (default {!enumeration_cap}), computed without
    overflow — callers can test this instead of catching the
    {!enumerate_votings} exception.  @raise Invalid_argument for
    [cap < 1]. *)

val enumerate_votings : ?cap:int -> labels:int -> n:int -> unit -> int array Seq.t
(** All ℓ^n votings of [n] workers, lazily.  @raise Invalid_argument when
    ℓ^n would exceed [cap] (default {!enumeration_cap}). *)
