(** Randomized voting strategies from Table 2. *)

val randomized_majority : Strategy.t
(** RMV [20] (Example 1): returns 0 with probability
    p = (1/n) Σ (1 − v_i) — proportional to the share of 0-votes. *)

val random_ballot : Strategy.t
(** RBV [33]: picks one ballot uniformly at random and returns it; the
    probability of answering 0 is therefore the share of 0-votes — for the
    *unweighted* ballot model used in the paper's experiments (§6.1.4,
    footnote 4) the paper instead fixes 50/50; see {!coin_flip}. *)

val coin_flip : Strategy.t
(** The paper's experimental RBV ("randomly returns 0 or 1 with 50%"),
    i.e. a pure coin ignoring the votes.  Its JQ is pinned at 50%. *)

val randomized_weighted_majority : weights:float array -> Strategy.t
(** Randomized weighted MV [23]: returns 0 with probability
    Σ w_i (1 − v_i) / Σ w_i (nonnegative weights; zero total weight falls
    back to a fair coin). *)

val randomized_logit_weighted : Strategy.t
(** {!randomized_weighted_majority} with logit-of-quality weights. *)

val mixture : float -> Strategy.t -> Strategy.t -> Strategy.t
(** [mixture p a b] runs [a] with probability p and [b] otherwise — closed
    under Definition 2, used by optimality property tests to generate
    arbitrary randomized strategies. *)
