let share_of_no voting =
  let n = Array.length voting in
  if n = 0 then 0.5 else float_of_int (Vote.count_no voting) /. float_of_int n

let randomized_majority =
  Strategy.make ~name:"RMV" (fun ~alpha:_ ~qualities:_ voting ->
      Strategy.Randomize (share_of_no voting))

let random_ballot =
  Strategy.make ~name:"RBV-ballot" (fun ~alpha:_ ~qualities:_ voting ->
      Strategy.Randomize (share_of_no voting))

let coin_flip =
  Strategy.make ~name:"RBV" (fun ~alpha:_ ~qualities:_ _ -> Strategy.Randomize 0.5)

let randomized_weighted_majority ~weights =
  Strategy.make ~name:"RWMV" (fun ~alpha:_ ~qualities:_ voting ->
      if Array.length weights <> Array.length voting then
        invalid_arg "Randomized.randomized_weighted_majority: lengths differ";
      let total = Prob.Kahan.sum_array weights in
      if total <= 0. then Strategy.Randomize 0.5
      else begin
        let no_weight = Prob.Kahan.create () in
        Array.iteri
          (fun i v -> if v = Vote.No then Prob.Kahan.add no_weight weights.(i))
          voting;
        Strategy.Randomize (Prob.Kahan.total no_weight /. total)
      end)

let randomized_logit_weighted =
  Strategy.make ~name:"RWMV-logit" (fun ~alpha ~qualities voting ->
      (* A worker below 0.5 is informative in the negative: use the absolute
         log-odds as her weight and count her ballot for the opposite
         answer (the section-3.3 reinterpretation), keeping weights
         nonnegative as Definition 2 requires of the outcome. *)
      let safe_logit q =
        Prob.Log_space.logit (Float.max 1e-12 (Float.min (1. -. 1e-12) q))
      in
      let weights = Array.map (fun q -> Float.abs (safe_logit q)) qualities in
      let corrected =
        Array.mapi
          (fun i v -> if qualities.(i) < 0.5 then Vote.flip v else v)
          voting
      in
      let s = randomized_weighted_majority ~weights in
      Strategy.decide s ~alpha ~qualities corrected)

let mixture p a b =
  if p < 0. || p > 1. then invalid_arg "Randomized.mixture: p outside [0, 1]";
  let name = Printf.sprintf "MIX(%.2f,%s,%s)" p (Strategy.name a) (Strategy.name b) in
  Strategy.make ~name (fun ~alpha ~qualities voting ->
      let pa = Strategy.prob_decide_no (Strategy.decide a ~alpha ~qualities voting) in
      let pb = Strategy.prob_decide_no (Strategy.decide b ~alpha ~qualities voting) in
      Strategy.Randomize ((p *. pa) +. ((1. -. p) *. pb)))
