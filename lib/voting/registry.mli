(** Name → strategy lookup, so CLIs and benches can select strategies by
    the names the paper uses (MV, BV, RMV, RBV, ...). *)

val all : Strategy.t list
(** Every built-in binary strategy that needs no per-jury parameters:
    MV, MV-coin, HALF, TRIADIC, BV, WMV-logit, RMV, RBV, RBV-ballot,
    RWMV-logit. *)

val find : string -> Strategy.t option
(** Case-insensitive lookup by {!Strategy.name}. *)

val find_exn : string -> Strategy.t
(** @raise Not_found when the name is unknown. *)

val names : unit -> string list
(** Registered names, in registration order. *)

val comparison_set : Strategy.t list
(** The four strategies of Figure 8: MV, BV, RBV, RMV. *)
