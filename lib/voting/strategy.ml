type outcome = Decide of Vote.t | Randomize of float

type t = {
  name : string;
  decide_fn : alpha:float -> qualities:float array -> Vote.voting -> outcome;
}

let make ~name decide_fn = { name; decide_fn }
let name t = t.name

let decide t ~alpha ~qualities voting =
  if Array.length qualities <> Array.length voting then
    invalid_arg "Strategy.decide: qualities and voting lengths differ";
  if alpha < 0. || alpha > 1. || Float.is_nan alpha then
    invalid_arg "Strategy.decide: alpha outside [0, 1]";
  match t.decide_fn ~alpha ~qualities voting with
  | Decide _ as o -> o
  | Randomize p ->
      if p < -.1e-12 || p > 1. +. 1e-12 || Float.is_nan p then
        invalid_arg (t.name ^ ": randomized outcome probability outside [0, 1]")
      else Randomize (Float.min 1. (Float.max 0. p))

let prob_decide_no = function
  | Decide Vote.No -> 1.
  | Decide Vote.Yes -> 0.
  | Randomize p -> p

let run t rng ~alpha ~qualities voting =
  match decide t ~alpha ~qualities voting with
  | Decide v -> v
  | Randomize p -> if Prob.Rng.bernoulli rng p then Vote.No else Vote.Yes

let is_deterministic_on t ~alpha ~qualities ~n =
  Seq.for_all
    (fun v ->
      match decide t ~alpha ~qualities v with
      | Decide _ -> true
      | Randomize p -> p = 0. || p = 1.)
    (Vote.enumerate n)
