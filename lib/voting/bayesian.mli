(** Bayesian Voting — the optimal strategy (Theorem 1 / Corollary 1).

    BV returns 1 exactly when
    α · Π q_i^(1−v_i) (1−q_i)^v_i  <  (1−α) · Π q_i^v_i (1−q_i)^(1−v_i),
    and 0 otherwise (ties go to 0, matching Theorem 1's "P0 − P1 ≥ 0 ⇒ 0").
    All products are evaluated in the log domain so juries of hundreds of
    workers do not underflow. *)

val strategy : Strategy.t
(** The BV strategy. *)

val log_joint : alpha:float -> qualities:float array -> Vote.voting -> float * float
(** [(ln P0(V), ln P1(V))] where P_t(V) = Pr(t) · Pr(V | t).  Underflow-free;
    [neg_infinity] encodes zero mass (e.g. α = 0). *)

val posterior_no : alpha:float -> qualities:float array -> Vote.voting -> float
(** Pr(t = 0 | V), the normalized posterior Bayesian Voting thresholds on.
    Returns 0.5 when both joints are zero (degenerate inputs). *)

val decide_exact : alpha:float -> qualities:float array -> Vote.voting -> Vote.t
(** The BV decision itself (a plain function, used by hot loops that do not
    want the strategy wrapper). *)
