let log_joint ~alpha ~qualities voting =
  if Array.length qualities <> Array.length voting then
    invalid_arg "Bayesian.log_joint: qualities and voting lengths differ";
  let l0 = ref (Prob.Log_space.of_prob alpha) in
  let l1 = ref (Prob.Log_space.of_prob (1. -. alpha)) in
  Array.iteri
    (fun i v ->
      let q = qualities.(i) in
      let lq = Prob.Log_space.of_prob q in
      let lnq = Prob.Log_space.of_prob (1. -. q) in
      match (v : Vote.t) with
      | Vote.No ->
          l0 := !l0 +. lq;
          l1 := !l1 +. lnq
      | Vote.Yes ->
          l0 := !l0 +. lnq;
          l1 := !l1 +. lq)
    voting;
  (!l0, !l1)

let decide_exact ~alpha ~qualities voting =
  let l0, l1 = log_joint ~alpha ~qualities voting in
  (* Theorem 1: 1 only on strict inequality P0 < P1; ties return 0. *)
  if l0 < l1 then Vote.Yes else Vote.No

let posterior_no ~alpha ~qualities voting =
  let l0, l1 = log_joint ~alpha ~qualities voting in
  if l0 = neg_infinity && l1 = neg_infinity then 0.5
  else
    let z = Prob.Log_space.add l0 l1 in
    exp (l0 -. z)

let strategy =
  Strategy.make ~name:"BV" (fun ~alpha ~qualities voting ->
      Strategy.Decide (decide_exact ~alpha ~qualities voting))
