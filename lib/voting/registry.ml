let all =
  [
    Classic.majority;
    Classic.majority_tie_coin;
    Classic.half;
    Classic.recursive_majority;
    Bayesian.strategy;
    Classic.logit_weighted_majority;
    Randomized.randomized_majority;
    Randomized.coin_flip;
    Randomized.random_ballot;
    Randomized.randomized_logit_weighted;
  ]

let find name =
  let target = String.lowercase_ascii name in
  List.find_opt (fun s -> String.lowercase_ascii (Strategy.name s) = target) all

let find_exn name =
  match find name with Some s -> s | None -> raise Not_found

let names () = List.map Strategy.name all

let comparison_set =
  [ Classic.majority; Bayesian.strategy; Randomized.coin_flip; Randomized.randomized_majority ]
