type t = No | Yes

let to_int = function No -> 0 | Yes -> 1

let of_int = function
  | 0 -> No
  | 1 -> Yes
  | n -> invalid_arg (Printf.sprintf "Vote.of_int: %d is not a binary vote" n)

let flip = function No -> Yes | Yes -> No
let equal a b = a = b
let pp ppf v = Format.pp_print_int ppf (to_int v)

type voting = t array

let voting_of_ints l = Array.of_list (List.map of_int l)
let flip_all v = Array.map flip v

let count_no v =
  Array.fold_left (fun acc x -> match x with No -> acc + 1 | Yes -> acc) 0 v

let count_yes v = Array.length v - count_no v

let enumerate n =
  if n < 0 || n > 25 then invalid_arg "Vote.enumerate: n outside [0, 25]";
  let of_mask mask =
    Array.init n (fun i ->
        if mask land (1 lsl (n - 1 - i)) <> 0 then Yes else No)
  in
  Seq.map of_mask (Seq.init (1 lsl n) Fun.id)

let pp_voting ppf v =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_array ~pp_sep:(fun _ () -> ()) pp)
    v
