type outcome = {
  noise_sigma : float;
  evaluation_error : float;
  selection_regret : float;
  samples : int;
}

let perturb rng ~sigma pool =
  Workers.Pool.of_list
    (List.map
       (fun w ->
         let noisy =
           Prob.Distributions.sample_gaussian_clamped rng
             ~mu:(Workers.Worker.quality w) ~sigma ~lo:0.5 ~hi:0.99
         in
         Workers.Worker.with_quality w noisy)
       (Workers.Pool.to_list pool))

(* Score a jury chosen from the estimate under the true pool: members are
   matched by id. *)
let true_jq ~alpha ~truth jury =
  let true_quality id =
    match Workers.Pool.find_id truth id with
    | Some w -> Workers.Worker.quality w
    | None -> invalid_arg "Sensitivity: jury member not in the true pool"
  in
  let qualities =
    Array.map (fun w -> true_quality (Workers.Worker.id w)) (Workers.Pool.to_array jury)
  in
  if Array.length qualities = 0 then Float.max alpha (1. -. alpha)
  else Jq.Exact.jq_optimal ~alpha ~qualities

let measure rng ?(samples = 20) ~alpha ~budget ~sigma pool =
  if sigma < 0. || Float.is_nan sigma then invalid_arg "Sensitivity.measure: sigma";
  if samples <= 0 then invalid_arg "Sensitivity.measure: samples <= 0";
  let optimal = Enumerate.solve Objective.bv_exact ~alpha ~budget pool in
  let eval_errors = Prob.Kahan.create () in
  let regrets = Prob.Kahan.create () in
  for _ = 1 to samples do
    let estimate = perturb rng ~sigma pool in
    let selected = Enumerate.solve Objective.bv_exact ~alpha ~budget estimate in
    let believed = selected.Solver.score in
    let actual = true_jq ~alpha ~truth:pool selected.Solver.jury in
    Prob.Kahan.add eval_errors (Float.abs (believed -. actual));
    Prob.Kahan.add regrets (Float.max 0. (optimal.Solver.score -. actual))
  done;
  let n = float_of_int samples in
  {
    noise_sigma = sigma;
    evaluation_error = Prob.Kahan.total eval_errors /. n;
    selection_regret = Prob.Kahan.total regrets /. n;
    samples;
  }
