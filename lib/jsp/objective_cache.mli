(** Bounded memo table for jury scores, keyed on the selection bitset.

    For a fixed candidate pool a jury {i is} its selection bitset, and the
    annealer revisits juries heavily once the temperature drops — most
    moves are rejected and the walk oscillates around a few states.  The
    cache turns those repeat evaluations into hash lookups, with
    hit/miss/evals-saved counters surfaced through {!Solver.result} and the
    bench rows.

    Eviction is by epoch: when the table reaches capacity it is emptied
    wholesale.  The annealer's working set late in cooling is tiny, so it
    repopulates within a few moves; no per-entry bookkeeping taxes the hot
    path. *)

type t
(** A cache for one fixed candidate pool (keys are [n]-bit selections). *)

type key = string
(** Packed selection bitset ((n+7)/8 bytes). *)

type stats = {
  hits : int;            (** Lookups answered from the table. *)
  misses : int;          (** Lookups that had to evaluate. *)
  evals_saved : int;     (** Objective evaluations avoided (= hits). *)
  entries : int;         (** Entries resident at snapshot time. *)
  evictions : int;       (** Epoch resets performed. *)
}

val default_capacity : int
(** 65536 entries. *)

val create : ?capacity:int -> n:int -> unit -> t
(** A fresh cache over an [n]-candidate pool.
    @raise Invalid_argument for [capacity <= 0] or [n < 0]. *)

val key : ?salt:string -> t -> bool array -> key
(** Pack a selection into its key.  [salt] (default ["" ]) is an opaque
    prefix under the caller's control: keys built with different salts
    occupy disjoint key spaces, so one table can serve solves whose scores
    would disagree — {!Annealing} salts with a digest of (objective, task,
    budget, RNG state), which is what makes caller-owned memo sharing safe
    by construction.  Callers must use fixed-length salts per table.
    @raise Invalid_argument when the array length differs from [n]. *)

val key_swapped : ?salt:string -> t -> bool array -> out:int -> into:int -> key
(** [key] of the selection with positions [out] and [into] toggled —
    probing a swap candidate without mutating the selection. *)

val find_or_eval : t -> key -> (unit -> float) -> float
(** Memoized call: return the cached score for [key], or evaluate, store
    and return it. *)

val stats : t -> stats
(** Counters so far (cheap snapshot). *)

val empty_stats : stats
val merge_stats : stats -> stats -> stats
(** Pointwise sum — aggregate over restarts. *)

val pp_stats : Format.formatter -> stats -> unit
