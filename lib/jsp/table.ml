type row = {
  budget : float;
  jury : Workers.Pool.t;
  quality : float;
  required : float;
}

type t = row list

let build ~solve ~budgets pool =
  List.map
    (fun budget ->
      let result = solve ~budget pool in
      {
        budget;
        jury = result.Solver.jury;
        quality = result.Solver.score;
        required = Budget.jury_cost result.Solver.jury;
      })
    budgets

let build_exact ?num_buckets ~alpha ~budgets pool =
  build ~budgets pool ~solve:(fun ~budget pool ->
      Enumerate.solve_bv ?num_buckets ~alpha ~budget pool)

let jury_names jury =
  String.concat ", " (List.map Workers.Worker.name (Workers.Pool.to_list jury))

let pp ppf rows =
  Format.fprintf ppf "%-8s  %-24s  %-8s  %s@." "Budget" "Optimal Jury Set"
    "Quality" "Required";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-8g  %-24s  %-8s  %g@." r.budget
        ("{" ^ jury_names r.jury ^ "}")
        (Printf.sprintf "%.2f%%" (100. *. r.quality))
        r.required)
    rows

let to_csv rows =
  let line r =
    Printf.sprintf "%g,%s,%.6f,%g" r.budget
      (String.concat ";" (List.map Workers.Worker.name (Workers.Pool.to_list r.jury)))
      r.quality r.required
  in
  String.concat "\n" ("budget,jury,quality,required" :: List.map line rows)
