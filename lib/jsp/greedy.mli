(** Greedy JSP baselines.

    None of these carries a guarantee — they exist as cheap baselines for
    the ablation benches and as seeds for local search. *)

val by_quality :
  Objective.t -> alpha:float -> budget:Budget.t -> Workers.Pool.t -> Workers.Pool.t Solver.result
(** Scan workers by decreasing quality, adding each one that still fits. *)

val by_cheapest :
  Objective.t -> alpha:float -> budget:Budget.t -> Workers.Pool.t -> Workers.Pool.t Solver.result
(** Scan by increasing cost — maximizes jury size (Lemma 1 heuristic). *)

val by_density :
  Objective.t -> alpha:float -> budget:Budget.t -> Workers.Pool.t -> Workers.Pool.t Solver.result
(** Scan by decreasing logit(q)/cost — the knapsack value-density heuristic
    with a worker's log-odds as its value. *)

val best_of_all :
  Objective.t -> alpha:float -> budget:Budget.t -> Workers.Pool.t -> Workers.Pool.t Solver.result
(** The best-scoring of the three greedy juries. *)
