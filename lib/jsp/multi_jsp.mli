(** Jury selection for multi-choice tasks with confusion-matrix workers —
    the §7 "Jury Selection Problem Extension".

    The paper observes that "the simulated annealing heuristic regards
    computing JQ as a black box, so it can be simply extended": here the
    black box is {!Jq.Multiclass_jq.estimate_bv} and a location is a subset
    of matrix workers.  Lemma 1 still holds (more workers never hurt BV), so
    affordable additions are accepted unconditionally; the quality
    monotonicity of Lemma 2 has no direct matrix analogue, so greedy seeding
    uses the spammer score of {!Workers.Spammer} as the §7-suggested
    heuristic. *)

type result = {
  jury : Workers.Confusion.t array;
  score : float;            (** Estimated multi-class JQ(J, BV, ~alpha). *)
  evaluations : int;
}

val jury_cost : Workers.Confusion.t array -> float

val greedy :
  ?num_buckets:int ->
  prior:float array ->
  budget:Budget.t ->
  Workers.Confusion.t array ->
  result
(** Best of three greedy scans — by spammer-score density (score / cost),
    by raw score, and cheapest-first — each adding every worker who still
    fits the budget. *)

val anneal :
  ?params:Annealing.params ->
  ?num_buckets:int ->
  rng:Prob.Rng.t ->
  prior:float array ->
  budget:Budget.t ->
  Workers.Confusion.t array ->
  result
(** Algorithms 3–4 over matrix workers with the tuple-key JQ estimate as
    the objective.  Keeps the best jury seen. *)

val select :
  ?params:Annealing.params ->
  ?num_buckets:int ->
  rng:Prob.Rng.t ->
  prior:float array ->
  budget:Budget.t ->
  Workers.Confusion.t array ->
  result
(** The production path: best of {!anneal} and {!greedy}. *)

val exhaustive :
  ?num_buckets:int ->
  prior:float array ->
  budget:Budget.t ->
  Workers.Confusion.t array ->
  result
(** Exact argmax over all subsets (candidate sets of ≤ 15 workers). *)
