(** Jury selection for multi-choice tasks with confusion-matrix workers —
    the §7 "Jury Selection Problem Extension".

    The paper observes that "the simulated annealing heuristic regards
    computing JQ as a black box, so it can be simply extended": here the
    black box is the engine's BV objective over an {!Engine.Pool.t} and a
    location is a subset of matrix workers.  {!anneal} is
    {!Annealing.solve_engine} — the same schedule, memoization and result
    contract as the binary solvers, with ℓ=2 symmetric pools lowered onto
    the dense binary fast path — so multi-class selection gets cached
    annealing and restarts instead of greedy-only.  Lemma 1 still holds
    (more workers never hurt BV), so affordable additions are accepted
    unconditionally; the quality monotonicity of Lemma 2 has no direct
    matrix analogue, so greedy seeding uses the spammer score of
    {!Workers.Spammer} as the §7-suggested heuristic.

    Every entry point returns a [Workers.Confusion.t array Solver.result]:
    the jury members are the caller's own candidate values (selection never
    rebuilds matrices), scores are estimated multi-class JQ(J, BV, ~alpha),
    and [result.cache] carries memo counters when annealing was cached. *)

val jury_cost : Workers.Confusion.t array -> float

val greedy :
  ?num_buckets:int ->
  prior:float array ->
  budget:Budget.t ->
  Workers.Confusion.t array ->
  Workers.Confusion.t array Solver.result
(** Best of three greedy scans — by spammer-score density (score / cost),
    by raw score, and cheapest-first — each adding every worker who still
    fits the budget. *)

val anneal :
  ?params:Annealing.params ->
  ?num_buckets:int ->
  ?cache:bool ->
  ?memo:Objective_cache.t ->
  rng:Prob.Rng.t ->
  prior:float array ->
  budget:Budget.t ->
  Workers.Confusion.t array ->
  Workers.Confusion.t array Solver.result
(** {!Annealing.solve_engine} over the candidates ([cache] defaults to
    [true]; [memo] as in {!Annealing.solve} — key salting makes sharing
    safe).  Keeps the best jury seen. *)

val select :
  ?params:Annealing.params ->
  ?num_buckets:int ->
  ?restarts:int ->
  rng:Prob.Rng.t ->
  prior:float array ->
  budget:Budget.t ->
  Workers.Confusion.t array ->
  Workers.Confusion.t array Solver.result
(** The production path: best of [restarts] annealing runs (default 1;
    further runs draw independent streams via {!Prob.Rng.split}) and
    {!greedy}.  Evaluations accumulate across all runs.
    @raise Invalid_argument when [restarts < 1]. *)

val exhaustive :
  ?num_buckets:int ->
  prior:float array ->
  budget:Budget.t ->
  Workers.Confusion.t array ->
  Workers.Confusion.t array Solver.result
(** Exact argmax over all subsets (candidate sets of ≤ 15 workers). *)
