type applicability = All_affordable | Uniform_cost of float | General

let classify ~budget pool =
  Budget.validate budget;
  if Budget.feasible ~budget pool then All_affordable
  else
    let costs = Workers.Pool.costs pool in
    let n = Array.length costs in
    if n = 0 then All_affordable
    else begin
      let c = costs.(0) in
      if Array.for_all (fun x -> Float.abs (x -. c) <= 1e-12) costs && c > 0. then
        Uniform_cost c
      else General
    end

let top_k_by_quality k pool =
  Workers.Pool.take k (Workers.Pool.sorted_by_quality_desc pool)

let solve (objective : Objective.t) ~alpha ~budget pool =
  match classify ~budget pool with
  | General -> None
  | All_affordable ->
      let score = objective.score ~alpha pool in
      Some { Solver.jury = pool; score; evaluations = 1; cache = None }
  | Uniform_cost c ->
      let k = min (int_of_float (Float.floor ((budget +. 1e-9) /. c))) (Workers.Pool.size pool) in
      let jury = top_k_by_quality k pool in
      let score = objective.score ~alpha jury in
      Some { Solver.jury; score; evaluations = 1; cache = None }
