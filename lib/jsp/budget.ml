type t = float

let tolerance = 1e-9

let validate b =
  if b < 0. || Float.is_nan b then invalid_arg "Budget.validate: negative budget"

let jury_cost = Workers.Pool.total_cost
let feasible ~budget jury = jury_cost jury <= budget +. tolerance
let remaining ~budget jury = budget -. jury_cost jury

let affordable_workers ~budget ~spent pool =
  Workers.Pool.filter (fun w -> spent +. Workers.Worker.cost w <= budget +. tolerance) pool

let cheapest_cost pool =
  if Workers.Pool.is_empty pool then None
  else
    Some
      (Array.fold_left
         (fun acc w -> Float.min acc (Workers.Worker.cost w))
         infinity
         (Workers.Pool.to_array pool))
