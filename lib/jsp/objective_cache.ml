(* Memoized jury scores keyed on the selection bitset.

   Simulated annealing revisits juries heavily late in cooling (low
   temperature rejects most moves, so the walk oscillates around a few
   states); for a fixed candidate pool the jury is exactly the selection
   bitset, so a score cache turns those revisits into hash lookups.  The
   table is bounded: on reaching capacity it is emptied wholesale (epoch
   eviction) — O(1) amortized, no LRU bookkeeping on the hot path, and the
   annealer immediately repopulates the handful of states it is actually
   oscillating between. *)

type stats = {
  hits : int;
  misses : int;
  evals_saved : int;
  entries : int;
  evictions : int;
}

type t = {
  n : int;                          (* candidate-pool size the keys cover *)
  capacity : int;
  table : (string, float) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let default_capacity = 1 lsl 16

let create ?(capacity = default_capacity) ~n () =
  if capacity <= 0 then invalid_arg "Objective_cache.create: capacity <= 0";
  if n < 0 then invalid_arg "Objective_cache.create: n < 0";
  {
    n;
    capacity;
    table = Hashtbl.create 256;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

type key = string

let bytes_for n = (n + 7) / 8

(* A salt is an opaque caller-chosen prefix: keys with different salts can
   never collide (the bitset always starts at the same offset for a given
   cache [n], and salts are fixed-length digests at the call sites), so one
   table safely serves solves whose scores would disagree — different
   objectives, priors, budgets or RNG trajectories land in disjoint key
   spaces. *)
let pack ?(salt = "") t selected =
  if Array.length selected <> t.n then
    invalid_arg "Objective_cache: selection length mismatch";
  let off = String.length salt in
  let b = Bytes.make (off + bytes_for t.n) '\000' in
  Bytes.blit_string salt 0 b 0 off;
  for i = 0 to t.n - 1 do
    if selected.(i) then begin
      let byte = off + (i lsr 3) and bit = i land 7 in
      Bytes.unsafe_set b byte
        (Char.unsafe_chr (Char.code (Bytes.unsafe_get b byte) lor (1 lsl bit)))
    end
  done;
  b

let key ?salt t selected = Bytes.unsafe_to_string (pack ?salt t selected)

let flip ~off b i =
  let byte = off + (i lsr 3) and bit = i land 7 in
  Bytes.unsafe_set b byte
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get b byte) lxor (1 lsl bit)))

(* The key of [selected] with positions [out] and [into] toggled — the
   annealer probes swap candidates without mutating its selection first. *)
let key_swapped ?(salt = "") t selected ~out ~into =
  let b = pack ~salt t selected in
  let off = String.length salt in
  flip ~off b out;
  flip ~off b into;
  Bytes.unsafe_to_string b

let find_or_eval t k f =
  match Hashtbl.find_opt t.table k with
  | Some v ->
      t.hits <- t.hits + 1;
      v
  | None ->
      t.misses <- t.misses + 1;
      let v = f () in
      if Hashtbl.length t.table >= t.capacity then begin
        Hashtbl.reset t.table;
        t.evictions <- t.evictions + 1
      end;
      Hashtbl.replace t.table k v;
      v

let stats t =
  {
    hits = t.hits;
    misses = t.misses;
    evals_saved = t.hits;
    entries = Hashtbl.length t.table;
    evictions = t.evictions;
  }

let empty_stats = { hits = 0; misses = 0; evals_saved = 0; entries = 0; evictions = 0 }

let merge_stats (a : stats) (b : stats) =
  {
    hits = a.hits + b.hits;
    misses = a.misses + b.misses;
    evals_saved = a.evals_saved + b.evals_saved;
    entries = a.entries + b.entries;
    evictions = a.evictions + b.evictions;
  }

let pp_stats ppf (s : stats) =
  Format.fprintf ppf "hits=%d misses=%d saved=%d entries=%d evictions=%d"
    s.hits s.misses s.evals_saved s.entries s.evictions
