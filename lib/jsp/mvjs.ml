let select ?params ~rng ~alpha ~budget pool =
  let objective = Objective.mv_closed in
  let annealed = Annealing.solve_mvjs ?params ~rng ~alpha ~budget pool in
  let greedy = Greedy.best_of_all objective ~alpha ~budget pool in
  Solver.best annealed greedy

let select_exact ~alpha ~budget pool =
  Enumerate.solve Objective.mv_closed ~alpha ~budget pool

let jq_of_jury ~alpha jury =
  Jq.Mv_closed.jq ~alpha ~qualities:(Workers.Pool.qualities jury)

let strategy = Voting.Classic.majority
