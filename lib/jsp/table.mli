(** Budget–quality tables (Figure 1).

    Given a candidate pool and a list of budgets, solve JSP at each budget
    and report the chosen jury, its estimated JQ and the money it actually
    requires — the artifact the task provider uses to pick a budget–quality
    trade-off. *)

type row = {
  budget : float;
  jury : Workers.Pool.t;
  quality : float;        (** Estimated JQ of the chosen jury. *)
  required : float;       (** What the jury actually costs (≤ budget). *)
}

type t = row list

val build :
  solve:(budget:Budget.t -> Workers.Pool.t -> Workers.Pool.t Solver.result) ->
  budgets:float list ->
  Workers.Pool.t ->
  t
(** One row per budget, in the given order. *)

val build_exact :
  ?num_buckets:int -> alpha:float -> budgets:float list -> Workers.Pool.t -> t
(** Rows from exhaustive OPTJS search (small pools) — regenerates the
    Figure 1 table. *)

val pp : Format.formatter -> t -> unit
(** Aligned rendering with worker names, e.g.
    ["15 | {B, C, G} | 84.5%% | 14"]. *)

val to_csv : t -> string
(** "budget,jury,quality,required" lines (jury as ;-separated names). *)
