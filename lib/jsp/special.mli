(** Closed-form JSP fast paths from the monotonicity lemmas (§5).

    Lemma 1 (jury size): when workers are free, or the whole pool fits the
    budget, the optimal jury is everyone.  Lemma 2 (quality): with a
    uniform per-worker cost c, the optimal jury is the top-k workers by
    quality with k = min(⌊B/c⌋, N). *)

type applicability =
  | All_affordable      (** Σ c_i ≤ B (includes the all-volunteer case). *)
  | Uniform_cost of float  (** Every worker costs the same c > 0. *)
  | General             (** Neither fast path applies. *)

val classify : budget:Budget.t -> Workers.Pool.t -> applicability

val solve :
  Objective.t ->
  alpha:float ->
  budget:Budget.t ->
  Workers.Pool.t ->
  Workers.Pool.t Solver.result option
(** The fast-path solution when one applies, [None] otherwise.  The
    objective is only used to score the chosen jury. *)

val top_k_by_quality : int -> Workers.Pool.t -> Workers.Pool.t
(** The k highest-quality workers (deterministic tie-breaking). *)
