type result = {
  jury : Workers.Confusion.t array;
  score : float;
  evaluations : int;
}

let jury_cost jury =
  Prob.Kahan.sum_array (Array.map Workers.Confusion.cost jury)

(* The empty multi-class jury: BV answers the prior's argmax. *)
let empty_score prior = Array.fold_left Float.max 0. prior

let make_objective ?num_buckets ~prior counter =
  fun jury ->
    incr counter;
    if Array.length jury = 0 then empty_score prior
    else Jq.Multiclass_jq.estimate_bv ?num_buckets ~prior jury

let subset_of_flags candidates flags =
  let members = ref [] in
  for i = Array.length candidates - 1 downto 0 do
    if flags.(i) then members := candidates.(i) :: !members
  done;
  Array.of_list !members

let greedy_scan objective ~budget order =
  let chosen = ref [] and spent = ref 0. in
  Array.iter
    (fun c ->
      let cost = Workers.Confusion.cost c in
      if !spent +. cost <= budget +. 1e-9 then begin
        chosen := c :: !chosen;
        spent := !spent +. cost
      end)
    order;
  let jury = Array.of_list (List.rev !chosen) in
  (jury, objective jury)

let sorted_by key candidates =
  let order = Array.copy candidates in
  Array.sort (fun a b -> compare (key b) (key a)) order;
  order

let greedy ?num_buckets ~prior ~budget candidates =
  Budget.validate budget;
  let evaluations = ref 0 in
  let objective = make_objective ?num_buckets ~prior evaluations in
  (* Three seeds, mirroring the binary Greedy module: informativeness per
     cost, raw informativeness, and maximal jury size (Lemma 1). *)
  let density c =
    Workers.Spammer.score c /. Float.max 1e-9 (Workers.Confusion.cost c)
  in
  let orders =
    [
      sorted_by density candidates;
      sorted_by Workers.Spammer.score candidates;
      sorted_by (fun c -> -.Workers.Confusion.cost c) candidates;
    ]
  in
  let best_jury = ref [||] and best_score = ref neg_infinity in
  List.iter
    (fun order ->
      let jury, score = greedy_scan objective ~budget order in
      if score > !best_score then begin
        best_jury := jury;
        best_score := score
      end)
    orders;
  { jury = !best_jury; score = !best_score; evaluations = !evaluations }

let anneal ?(params = Annealing.default_params) ?num_buckets ~rng ~prior ~budget
    candidates =
  Budget.validate budget;
  let n = Array.length candidates in
  let evaluations = ref 0 in
  let objective = make_objective ?num_buckets ~prior evaluations in
  let flags = Array.make n false in
  let spent = ref 0. in
  let current_score = ref (objective [||]) in
  let best_flags = ref (Array.copy flags) in
  let best_score = ref !current_score in
  let remember () =
    if !current_score > !best_score then begin
      best_score := !current_score;
      best_flags := Array.copy flags
    end
  in
  let cost i = Workers.Confusion.cost candidates.(i) in
  let indexes_where p =
    let acc = ref [] in
    Array.iteri (fun i f -> if p f then acc := i :: !acc) flags;
    !acc
  in
  let swap temperature r =
    let partners = indexes_where (fun f -> f <> flags.(r)) in
    match partners with
    | [] -> ()
    | _ ->
        let k = List.nth partners (Prob.Rng.int rng (List.length partners)) in
        let out, into = if flags.(r) then (r, k) else (k, r) in
        if !spent -. cost out +. cost into <= budget +. 1e-9 then begin
          flags.(out) <- false;
          flags.(into) <- true;
          let candidate_score = objective (subset_of_flags candidates flags) in
          let delta = candidate_score -. !current_score in
          if delta >= 0. || Prob.Rng.unit_float rng < exp (delta /. temperature)
          then begin
            spent := !spent -. cost out +. cost into;
            current_score := candidate_score
          end
          else begin
            (* Revert the tentative move. *)
            flags.(out) <- true;
            flags.(into) <- false
          end
        end
  in
  let moves = match params.Annealing.moves_per_temp with Some m -> m | None -> n in
  let temperature = ref params.Annealing.t_initial in
  while !temperature >= params.Annealing.epsilon && n > 0 do
    for _ = 1 to moves do
      let r = Prob.Rng.int rng n in
      if (not flags.(r)) && !spent +. cost r <= budget +. 1e-9 then begin
        flags.(r) <- true;
        spent := !spent +. cost r;
        current_score := objective (subset_of_flags candidates flags)
      end
      else swap !temperature r;
      remember ()
    done;
    temperature := !temperature /. params.Annealing.cooling
  done;
  let jury =
    if params.Annealing.keep_best then subset_of_flags candidates !best_flags
    else subset_of_flags candidates flags
  in
  let score = if params.Annealing.keep_best then !best_score else !current_score in
  { jury; score; evaluations = !evaluations }

let select ?params ?num_buckets ~rng ~prior ~budget candidates =
  let a = anneal ?params ?num_buckets ~rng ~prior ~budget candidates in
  let g = greedy ?num_buckets ~prior ~budget candidates in
  if g.score > a.score then g else a

let exhaustive ?num_buckets ~prior ~budget candidates =
  Budget.validate budget;
  let n = Array.length candidates in
  if n > 15 then invalid_arg "Multi_jsp.exhaustive: too many candidates";
  let evaluations = ref 0 in
  let objective = make_objective ?num_buckets ~prior evaluations in
  let best = ref [||] and best_score = ref neg_infinity in
  for mask = 0 to (1 lsl n) - 1 do
    let flags = Array.init n (fun i -> mask land (1 lsl i) <> 0) in
    let jury = subset_of_flags candidates flags in
    if jury_cost jury <= budget +. 1e-9 then begin
      let score = objective jury in
      if score > !best_score then begin
        best := jury;
        best_score := score
      end
    end
  done;
  { jury = !best; score = !best_score; evaluations = !evaluations }
