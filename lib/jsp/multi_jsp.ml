(* Multi-class jury selection as a thin wrapper over the engine: candidates
   become an [Engine.Pool.t] (ℓ=2 symmetric pools lower to the binary fast
   path), annealing is [Annealing.solve_engine], and every entry point
   returns the shared ['jury Solver.result] contract. *)

let jury_cost jury =
  Prob.Kahan.sum_array (Array.map Workers.Confusion.cost jury)

let task_of ~prior = Engine.Task.make ~prior

(* Map an engine jury back onto the caller's candidate structs.  [Matrix]
   juries are subsets of the original array already; lowered [Binary]
   juries carry the original ids, which resolve against the candidates
   (first binding wins on duplicate ids). *)
let members_of ~candidates epool =
  match Engine.Pool.repr epool with
  | Engine.Pool.Matrix a -> a
  | Engine.Pool.Binary p ->
      let by_id = Hashtbl.create (Array.length candidates) in
      Array.iter
        (fun c ->
          let id = Workers.Confusion.id c in
          if not (Hashtbl.mem by_id id) then Hashtbl.add by_id id c)
        candidates;
      Array.map
        (fun w ->
          match Hashtbl.find_opt by_id (Workers.Worker.id w) with
          | Some c -> c
          | None -> assert false)
        (Workers.Pool.to_array p)

let make_objective ?num_buckets ~task counter =
  let objective = Engine.Objective.bv_bucket ?num_buckets () in
  fun jury ->
    incr counter;
    Engine.Objective.score objective ~task (Engine.Pool.of_confusions jury)

let greedy_scan objective ~budget order =
  let chosen = ref [] and spent = ref 0. in
  Array.iter
    (fun c ->
      let cost = Workers.Confusion.cost c in
      if !spent +. cost <= budget +. 1e-9 then begin
        chosen := c :: !chosen;
        spent := !spent +. cost
      end)
    order;
  let jury = Array.of_list (List.rev !chosen) in
  (jury, objective jury)

let sorted_by key candidates =
  let order = Array.copy candidates in
  Array.sort (fun a b -> compare (key b) (key a)) order;
  order

let greedy ?num_buckets ~prior ~budget candidates =
  Budget.validate budget;
  let task = task_of ~prior in
  let evaluations = ref 0 in
  let objective = make_objective ?num_buckets ~task evaluations in
  (* Three seeds, mirroring the binary Greedy module: informativeness per
     cost, raw informativeness, and maximal jury size (Lemma 1). *)
  let density c =
    Workers.Spammer.score c /. Float.max 1e-9 (Workers.Confusion.cost c)
  in
  let orders =
    [
      sorted_by density candidates;
      sorted_by Workers.Spammer.score candidates;
      sorted_by (fun c -> -.Workers.Confusion.cost c) candidates;
    ]
  in
  let best_jury = ref [||] and best_score = ref neg_infinity in
  List.iter
    (fun order ->
      let jury, score = greedy_scan objective ~budget order in
      if score > !best_score then begin
        best_jury := jury;
        best_score := score
      end)
    orders;
  {
    Solver.jury = !best_jury;
    score = !best_score;
    evaluations = !evaluations;
    cache = None;
  }

let anneal ?params ?num_buckets ?cache ?memo ~rng ~prior ~budget candidates =
  let task = task_of ~prior in
  let epool = Engine.Pool.of_confusions candidates in
  Solver.map_jury
    (members_of ~candidates)
    (Annealing.solve_engine ?params ?num_buckets ?cache ?memo ~rng ~task
       ~budget epool)

let select ?params ?num_buckets ?(restarts = 1) ~rng ~prior ~budget candidates =
  if restarts < 1 then invalid_arg "Multi_jsp.select: restarts < 1";
  let best =
    ref (anneal ?params ?num_buckets ~rng ~prior ~budget candidates)
  in
  for _ = 2 to restarts do
    (* Independent streams per restart; counters accumulate. *)
    let r =
      anneal ?params ?num_buckets ~rng:(Prob.Rng.split rng) ~prior ~budget
        candidates
    in
    let merged_cache =
      match ((!best).Solver.cache, r.Solver.cache) with
      | Some a, Some b -> Some (Objective_cache.merge_stats a b)
      | one, None | None, one -> one
    in
    let keep = if r.Solver.score > (!best).Solver.score then r else !best in
    best :=
      {
        keep with
        Solver.evaluations = (!best).Solver.evaluations + r.Solver.evaluations;
        cache = merged_cache;
      }
  done;
  let g = greedy ?num_buckets ~prior ~budget candidates in
  let winner = if g.Solver.score > (!best).Solver.score then g else !best in
  {
    winner with
    Solver.evaluations = g.Solver.evaluations + (!best).Solver.evaluations;
    cache = (!best).Solver.cache;
  }

let subset_of_flags candidates flags =
  let members = ref [] in
  for i = Array.length candidates - 1 downto 0 do
    if flags.(i) then members := candidates.(i) :: !members
  done;
  Array.of_list !members

let exhaustive ?num_buckets ~prior ~budget candidates =
  Budget.validate budget;
  let n = Array.length candidates in
  if n > 15 then invalid_arg "Multi_jsp.exhaustive: too many candidates";
  let task = task_of ~prior in
  let evaluations = ref 0 in
  let objective = make_objective ?num_buckets ~task evaluations in
  let best = ref [||] and best_score = ref neg_infinity in
  for mask = 0 to (1 lsl n) - 1 do
    let flags = Array.init n (fun i -> mask land (1 lsl i) <> 0) in
    let jury = subset_of_flags candidates flags in
    if jury_cost jury <= budget +. 1e-9 then begin
      let score = objective jury in
      if score > !best_score then begin
        best := jury;
        best_score := score
      end
    end
  done;
  {
    Solver.jury = !best;
    score = !best_score;
    evaluations = !evaluations;
    cache = None;
  }
