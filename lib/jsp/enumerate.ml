let max_pool = 20

let solve (objective : Objective.t) ~alpha ~budget pool =
  Budget.validate budget;
  if Workers.Pool.size pool > max_pool then
    invalid_arg "Enumerate.solve: pool too large for exhaustive search";
  let evaluations = ref 0 in
  let consider acc jury =
    if not (Budget.feasible ~budget jury) then acc
    else begin
      incr evaluations;
      let score = objective.score ~alpha jury in
      match acc with
      | None -> Some (jury, score)
      | Some (best_jury, best_score) ->
          if
            score > best_score
            || (score = best_score
                && Budget.jury_cost jury < Budget.jury_cost best_jury)
          then Some (jury, score)
          else acc
    end
  in
  match Seq.fold_left consider None (Workers.Pool.subsets pool) with
  | None -> Solver.empty_result objective ~alpha
  | Some (jury, score) ->
      { Solver.jury; score; evaluations = !evaluations; cache = None }

let solve_bv ?num_buckets ~alpha ~budget pool =
  solve (Objective.bv_bucket ?num_buckets ()) ~alpha ~budget pool
