(** Simulated-annealing JSP solver (Algorithms 3 and 4, §5.1).

    Locations are juries; the objective value is the (estimated) JQ.  A
    temperature T starts at 1.0 and halves until it drops below ε
    (paper default 1e-8).  At each temperature, N local searches run: a
    random worker r is either added outright when the budget allows
    (Lemma 1 — more workers never hurt BV), or proposed in a swap against a
    random selected/unselected partner (Algorithm 4); a swap that lowers JQ
    by Δ is still accepted with probability exp(−Δ/T) (Boltzmann), which
    lets the search escape local optima.

    Two scoring engines share the schedule.  {!solve} evaluates an
    {!Objective.t} from scratch per move (the reference engine);
    {!solve_incremental} maintains one {!Objective.Incremental} accumulator
    per search and applies O(state) add/remove deltas per move — the
    production hot path.  Either can memoize scores on the selection bitset
    with an {!Objective_cache} ([cache]); caching never changes the search
    trajectory (the objective is pure and the Boltzmann draw is skipped
    exactly when it was skipped uncached), so cached runs return
    bit-identical juries and scores.  Partner picks use O(1) reads of a
    permutation array — the hot loop allocates nothing. *)

type params = {
  t_initial : float;      (** Starting temperature (paper: 1.0). *)
  epsilon : float;        (** Stop once T < ε (paper: 1e-8). *)
  cooling : float;        (** Divisor applied to T per phase (paper: 2). *)
  moves_per_temp : int option;
      (** Local searches per temperature; [None] means the pool size N,
          as in Algorithm 3's inner loop. *)
  keep_best : bool;
      (** Return the best jury seen rather than the final one (default
          [true]; the final-state behaviour of the literal pseudo-code is
          available with [false]). *)
}

val default_params : params

val solve :
  ?params:params ->
  ?cache:bool ->
  ?memo:Objective_cache.t ->
  Objective.t ->
  rng:Prob.Rng.t ->
  alpha:float ->
  budget:Budget.t ->
  Workers.Pool.t ->
  Solver.result
(** Run the annealer with from-scratch scoring.  The result is always
    feasible.  Deterministic given the [rng] state; [cache] (default
    [false]) memoizes repeat evaluations without changing the outcome and
    surfaces counters in [result.cache].

    [memo] supplies a caller-owned {!Objective_cache} instead (overriding
    [cache]); it survives the solve, so a long-lived caller — a serving
    executor answering repeated queries against one pool — starts each
    solve with a warm table.  The cache key is the selection bitset alone:
    share a table only across solves over the same pool (same order), the
    same alpha and the same objective (budgets may differ — feasibility is
    not cached).  [result.cache] then reports the table's cumulative
    counters.
    @raise Invalid_argument on invalid budget or params
    (ε ≤ 0, cooling ≤ 1, t_initial ≤ ε), or when a supplied [memo] was
    created for a different pool size. *)

val solve_incremental :
  ?params:params ->
  ?cache:bool ->
  ?memo:Objective_cache.t ->
  Objective.Incremental.t ->
  rng:Prob.Rng.t ->
  alpha:float ->
  budget:Budget.t ->
  Workers.Pool.t ->
  Solver.result
(** Run the annealer with incremental scoring ([cache] defaults to
    [true]).  The returned score is a final from-scratch evaluation of the
    winning jury by the objective's [rescore], so it is directly comparable
    with the other solvers' scores.

    One caveat sharpens [solve]'s [?memo] contract here: incremental
    objective values are path-dependent at ulp level (add/remove float
    drift), so an entry computed during one solve can differ in the last
    bits from what another solve would have computed for the same bitset —
    enough to flip a Boltzmann accept.  Reusing a [memo] across solves
    with the {e same} (budget, seed, alpha) replays the warm run
    byte-identically; sharing across different budgets or seeds keeps
    scores within the approximation bounds but may return a different
    (equally feasible) jury than a cold run would. *)

val solve_optjs :
  ?params:params ->
  ?num_buckets:int ->
  ?cache:bool ->
  ?memo:Objective_cache.t ->
  rng:Prob.Rng.t ->
  alpha:float ->
  budget:Budget.t ->
  Workers.Pool.t ->
  Solver.result
(** OPTJS: {!solve_incremental} over the bucket-approximated BV objective
    ({!Objective.bv_bucket_incremental}). *)

val solve_mvjs :
  ?params:params ->
  ?cache:bool ->
  ?memo:Objective_cache.t ->
  rng:Prob.Rng.t ->
  alpha:float ->
  budget:Budget.t ->
  Workers.Pool.t ->
  Solver.result
(** The MVJS baseline of the experiments: identical search, but the
    objective is JQ under Majority Voting (closed form, maintained as an
    incremental Poisson–binomial pmf), i.e. [7]'s argmax_J JQ(J, MV, α). *)
