(** Simulated-annealing JSP solver (Algorithms 3 and 4, §5.1).

    Locations are juries; the objective value is the (estimated) JQ.  A
    temperature T starts at 1.0 and halves until it drops below ε
    (paper default 1e-8).  At each temperature, N local searches run: a
    random worker r is either added outright when the budget allows
    (Lemma 1 — more workers never hurt BV), or proposed in a swap against a
    random selected/unselected partner (Algorithm 4); a swap that lowers JQ
    by Δ is still accepted with probability exp(−Δ/T) (Boltzmann), which
    lets the search escape local optima.

    Scoring engines share the schedule.  {!solve} evaluates an
    {!Objective.t} from scratch per move (the reference engine);
    {!solve_incremental} maintains one {!Objective.Incremental} accumulator
    per search and applies O(state) add/remove deltas per move — the
    production hot path for binary pools.  {!solve_engine} runs against an
    {!Engine.Pool.t} of either representation, dispatching binary pools to
    the incremental engine and ℓ-label matrix pools to memoized
    from-scratch scoring of the §7 tuple-key objective.  Any of them can
    memoize scores with an {!Objective_cache} ([cache]); caching never
    changes the search trajectory of the pure-objective engines (the
    Boltzmann draw is skipped exactly when it was skipped uncached), so
    cached runs return bit-identical juries and scores.  Partner picks use
    O(1) reads of a permutation array — the hot loop allocates nothing.

    Every solve prefixes its cache keys with a salt — a digest of
    (objective name, alpha/prior, budget, RNG state), derived before the
    first draw — so entries written by solves that could disagree on a
    selection's score live in disjoint key spaces.  A caller-owned [?memo]
    is therefore safe to share across arbitrary solves over one pool: a
    repeat of an earlier (objective, alpha, budget, seed) replays its warm
    run byte-identically, and any other solve simply cannot observe the
    foreign entries (they only compete for capacity). *)

type params = {
  t_initial : float;      (** Starting temperature (paper: 1.0). *)
  epsilon : float;        (** Stop once T < ε (paper: 1e-8). *)
  cooling : float;        (** Divisor applied to T per phase (paper: 2). *)
  moves_per_temp : int option;
      (** Local searches per temperature; [None] means the pool size N,
          as in Algorithm 3's inner loop. *)
  keep_best : bool;
      (** Return the best jury seen rather than the final one (default
          [true]; the final-state behaviour of the literal pseudo-code is
          available with [false]). *)
}

val default_params : params

val solve :
  ?params:params ->
  ?cache:bool ->
  ?memo:Objective_cache.t ->
  Objective.t ->
  rng:Prob.Rng.t ->
  alpha:float ->
  budget:Budget.t ->
  Workers.Pool.t ->
  Workers.Pool.t Solver.result
(** Run the annealer with from-scratch scoring.  The result is always
    feasible.  Deterministic given the [rng] state; [cache] (default
    [false]) memoizes repeat evaluations without changing the outcome and
    surfaces counters in [result.cache].

    [memo] supplies a caller-owned {!Objective_cache} instead (overriding
    [cache]); it survives the solve, so a long-lived caller — a serving
    executor answering repeated queries against one pool — starts each
    solve with a warm table.  It must have been created with [~n] equal to
    the pool size; key salting (see above) takes care of everything else.
    [result.cache] then reports the table's cumulative counters.
    @raise Invalid_argument on invalid budget or params
    (ε ≤ 0, cooling ≤ 1, t_initial ≤ ε), or when a supplied [memo] was
    created for a different pool size. *)

val solve_incremental :
  ?params:params ->
  ?cache:bool ->
  ?memo:Objective_cache.t ->
  Objective.Incremental.t ->
  rng:Prob.Rng.t ->
  alpha:float ->
  budget:Budget.t ->
  Workers.Pool.t ->
  Workers.Pool.t Solver.result
(** Run the annealer with incremental scoring ([cache] defaults to
    [true]).  The returned score is a final from-scratch evaluation of the
    winning jury by the objective's [rescore], so it is directly comparable
    with the other solvers' scores.

    Incremental objective values are path-dependent at ulp level
    (add/remove float drift), so an entry computed during one solve can
    differ in the last bits from what another solve would have computed for
    the same bitset — which is exactly why the salt folds the budget and
    the RNG state in: a warm [?memo] replays the same request
    byte-identically and is invisible to every other request. *)

val solve_optjs :
  ?params:params ->
  ?num_buckets:int ->
  ?cache:bool ->
  ?memo:Objective_cache.t ->
  rng:Prob.Rng.t ->
  alpha:float ->
  budget:Budget.t ->
  Workers.Pool.t ->
  Workers.Pool.t Solver.result
(** OPTJS: {!solve_incremental} over the bucket-approximated BV objective
    ({!Objective.bv_bucket_incremental}). *)

val solve_mvjs :
  ?params:params ->
  ?cache:bool ->
  ?memo:Objective_cache.t ->
  rng:Prob.Rng.t ->
  alpha:float ->
  budget:Budget.t ->
  Workers.Pool.t ->
  Workers.Pool.t Solver.result
(** The MVJS baseline of the experiments: identical search, but the
    objective is JQ under Majority Voting (closed form, maintained as an
    incremental Poisson–binomial pmf), i.e. [7]'s argmax_J JQ(J, MV, α). *)

val solve_engine :
  ?params:params ->
  ?num_buckets:int ->
  ?workspace:Jq.Workspace.t ->
  ?cache:bool ->
  ?memo:Objective_cache.t ->
  rng:Prob.Rng.t ->
  task:Engine.Task.t ->
  budget:Budget.t ->
  Engine.Pool.t ->
  Engine.Pool.t Solver.result
(** OPTJS against the task-model engine, for any worker model.  [Binary]
    pools (including ℓ=2 symmetric matrix pools, which
    {!Engine.Pool.of_confusions} lowers) run {!solve_optjs} verbatim —
    same trajectory, same juries, same scores; [Matrix] pools run the same
    schedule with memoized from-scratch evaluations of
    {!Engine.Objective.bv_bucket} ([cache] defaults to [true];
    [workspace] pins those evaluations' kernel scratch — single-owner, see
    {!Jq.Workspace} — and is ignored on the binary path, whose
    incremental evaluator owns its own state).  The
    result's jury preserves the input representation.
    @raise Invalid_argument when the pool and task label counts differ (or
    on the parameter violations of {!solve}). *)
