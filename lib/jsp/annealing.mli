(** Simulated-annealing JSP solver (Algorithms 3 and 4, §5.1).

    Locations are juries; the objective value is the (estimated) JQ.  A
    temperature T starts at 1.0 and halves until it drops below ε
    (paper default 1e-8).  At each temperature, N local searches run: a
    random worker r is either added outright when the budget allows
    (Lemma 1 — more workers never hurt BV), or proposed in a swap against a
    random selected/unselected partner (Algorithm 4); a swap that lowers JQ
    by Δ is still accepted with probability exp(−Δ/T) (Boltzmann), which
    lets the search escape local optima. *)

type params = {
  t_initial : float;      (** Starting temperature (paper: 1.0). *)
  epsilon : float;        (** Stop once T < ε (paper: 1e-8). *)
  cooling : float;        (** Divisor applied to T per phase (paper: 2). *)
  moves_per_temp : int option;
      (** Local searches per temperature; [None] means the pool size N,
          as in Algorithm 3's inner loop. *)
  keep_best : bool;
      (** Return the best jury seen rather than the final one (default
          [true]; the final-state behaviour of the literal pseudo-code is
          available with [false]). *)
}

val default_params : params

val solve :
  ?params:params ->
  Objective.t ->
  rng:Prob.Rng.t ->
  alpha:float ->
  budget:Budget.t ->
  Workers.Pool.t ->
  Solver.result
(** Run the annealer.  The result is always feasible.  Deterministic given
    the [rng] state.  @raise Invalid_argument on invalid budget or params
    (ε ≤ 0, cooling ≤ 1, t_initial ≤ ε). *)

val solve_optjs :
  ?params:params ->
  ?num_buckets:int ->
  rng:Prob.Rng.t ->
  alpha:float ->
  budget:Budget.t ->
  Workers.Pool.t ->
  Solver.result
(** OPTJS: annealing over the bucket-approximated BV objective. *)

val solve_mvjs :
  ?params:params ->
  rng:Prob.Rng.t ->
  alpha:float ->
  budget:Budget.t ->
  Workers.Pool.t ->
  Solver.result
(** The MVJS baseline of the experiments: identical search, but the
    objective is JQ under Majority Voting (closed form), i.e. [7]'s
    argmax_J JQ(J, MV, α). *)
