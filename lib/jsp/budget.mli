(** Budget feasibility (§2.2): a jury is feasible when its total cost does
    not exceed the task provider's budget B. *)

type t = float
(** A budget in cost units; must be nonnegative. *)

val validate : t -> unit
(** @raise Invalid_argument on negative or NaN budgets. *)

val jury_cost : Workers.Pool.t -> float
(** Σ c_i over the jury (alias of {!Workers.Pool.total_cost}). *)

val feasible : budget:t -> Workers.Pool.t -> bool
(** Whether the jury fits the budget (with a 1e-9 tolerance so that juries
    priced exactly at B are not rejected by rounding). *)

val remaining : budget:t -> Workers.Pool.t -> float
(** Budget left after paying the jury (may be negative when infeasible). *)

val affordable_workers : budget:t -> spent:float -> Workers.Pool.t -> Workers.Pool.t
(** The candidates whose individual cost still fits after [spent]. *)

val cheapest_cost : Workers.Pool.t -> float option
(** Cost of the cheapest candidate; [None] on an empty pool. *)
