type t = { name : string; score : alpha:float -> Workers.Pool.t -> float }

let empty_bv_score alpha = Float.max alpha (1. -. alpha)

let bv_bucket ?num_buckets () =
  {
    name = "BV/bucket";
    score =
      (fun ~alpha jury ->
        if Workers.Pool.is_empty jury then empty_bv_score alpha
        else Jq.Bucket.estimate ?num_buckets ~alpha (Workers.Pool.qualities jury));
  }

let bv_exact =
  {
    name = "BV/exact";
    score =
      (fun ~alpha jury ->
        if Workers.Pool.is_empty jury then empty_bv_score alpha
        else Jq.Exact.jq_optimal ~alpha ~qualities:(Workers.Pool.qualities jury));
  }

let mv_closed =
  {
    name = "MV/closed";
    score =
      (fun ~alpha jury ->
        Jq.Mv_closed.jq ~alpha ~qualities:(Workers.Pool.qualities jury));
  }

let strategy_exact strategy =
  {
    name = Voting.Strategy.name strategy ^ "/exact";
    score =
      (fun ~alpha jury ->
        Jq.Exact.jq strategy ~alpha ~qualities:(Workers.Pool.qualities jury));
  }
