type t = { name : string; score : alpha:float -> Workers.Pool.t -> float }

let empty_bv_score alpha = Float.max alpha (1. -. alpha)

let bv_bucket ?num_buckets ?workspace () =
  {
    name = "BV/bucket";
    score =
      (fun ~alpha jury ->
        if Workers.Pool.is_empty jury then empty_bv_score alpha
        else
          Jq.Bucket.estimate ?workspace ?num_buckets ~alpha
            (Workers.Pool.qualities jury));
  }

let bv_exact =
  {
    name = "BV/exact";
    score =
      (fun ~alpha jury ->
        if Workers.Pool.is_empty jury then empty_bv_score alpha
        else Jq.Exact.jq_optimal ~alpha ~qualities:(Workers.Pool.qualities jury));
  }

let mv_closed =
  {
    name = "MV/closed";
    score =
      (fun ~alpha jury ->
        Jq.Mv_closed.jq ~alpha ~qualities:(Workers.Pool.qualities jury));
  }

let strategy_exact strategy =
  {
    name = Voting.Strategy.name strategy ^ "/exact";
    score =
      (fun ~alpha jury ->
        Jq.Exact.jq strategy ~alpha ~qualities:(Workers.Pool.qualities jury));
  }

module Incremental = struct
  type state = {
    add : float -> unit;
    remove : float -> unit;
    value : unit -> float;
  }

  type objective = t

  type t = {
    name : string;
    init : alpha:float -> state;
    rescore : objective;
  }
end

let bv_bucket_incremental ?(num_buckets = Jq.Bucket.default_num_buckets)
    ?workspace () =
  (* The fixed-width construction divides the global logit cap phi(0.99),
     roughly twice the jury max logit Bucket.run divides by on typical
     pools.  Double the bucket count for the accumulator so the effective
     width matches: this only sharpens the swap guidance — the returned
     score is re-computed by [rescore] at the requested resolution. *)
  {
    Incremental.name = "BV/bucket-incr";
    init =
      (fun ~alpha ->
        let acc = Jq.Incremental.create ~num_buckets:(2 * num_buckets) ~alpha () in
        {
          Incremental.add = Jq.Incremental.add_worker acc;
          remove = Jq.Incremental.remove_worker acc;
          value = (fun () -> Jq.Incremental.value acc);
        });
    rescore = bv_bucket ~num_buckets ?workspace ();
  }

let mv_closed_incremental =
  {
    Incremental.name = "MV/closed-incr";
    init =
      (fun ~alpha ->
        let pb = Prob.Poisson_binomial.Incremental.create () in
        {
          Incremental.add = Prob.Poisson_binomial.Incremental.add pb;
          remove = Prob.Poisson_binomial.Incremental.remove pb;
          value =
            (fun () ->
              Jq.Mv_closed.jq_from_tail ~alpha
                ~n:(Prob.Poisson_binomial.Incremental.size pb)
                ~tail:(Prob.Poisson_binomial.Incremental.tail_at_least pb));
        });
    rescore = mv_closed;
  }
