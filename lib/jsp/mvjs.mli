(** MVJS — the Majority-Voting Jury Selection baseline (Cao et al. [7]).

    The system the paper compares against: it searches for
    argmax_J JQ(J, MV, 0.5) and aggregates the selected jury's votes with
    Majority Voting.  The original implementation is closed source; per
    DESIGN.md we reproduce its *objective* exactly (closed-form MV JQ, the
    polynomial computation cited in §4.1) and drive the same annealing
    search OPTJS uses, seeded additionally with the greedy juries so the
    baseline is not handicapped by search noise. *)

val select :
  ?params:Annealing.params ->
  rng:Prob.Rng.t ->
  alpha:float ->
  budget:Budget.t ->
  Workers.Pool.t ->
  Workers.Pool.t Solver.result
(** The MVJS jury: best of (annealing, greedy seeds) under the MV
    objective.  The [score] field is JQ(J, MV, α). *)

val select_exact :
  alpha:float -> budget:Budget.t -> Workers.Pool.t -> Workers.Pool.t Solver.result
(** Exhaustive argmax of MV JQ — usable for pools within
    {!Enumerate.max_pool}. *)

val jq_of_jury : alpha:float -> Workers.Pool.t -> float
(** JQ(J, MV, α) of a jury in closed form. *)

val strategy : Voting.Strategy.t
(** The aggregation MVJS uses at answer time: {!Voting.Classic.majority}. *)
