let scan (objective : Objective.t) ~alpha ~budget ordered =
  Budget.validate budget;
  let chosen = ref [] in
  let spent = ref 0. in
  Array.iter
    (fun w ->
      let c = Workers.Worker.cost w in
      if !spent +. c <= budget +. 1e-9 then begin
        chosen := w :: !chosen;
        spent := !spent +. c
      end)
    ordered;
  let jury = Workers.Pool.of_list (List.rev !chosen) in
  { Solver.jury; score = objective.score ~alpha jury; evaluations = 1; cache = None }

let by_quality objective ~alpha ~budget pool =
  scan objective ~alpha ~budget
    (Workers.Pool.to_array (Workers.Pool.sorted_by_quality_desc pool))

let by_cheapest objective ~alpha ~budget pool =
  scan objective ~alpha ~budget
    (Workers.Pool.to_array (Workers.Pool.sorted_by_cost pool))

let by_density objective ~alpha ~budget pool =
  let density w =
    let q = Float.max 0.5 (Float.min 0.99 (Workers.Worker.quality w)) in
    let value = Prob.Log_space.logit q in
    let c = Float.max 1e-9 (Workers.Worker.cost w) in
    value /. c
  in
  let workers = Workers.Pool.to_array pool in
  Array.sort (fun a b -> compare (density b) (density a)) workers;
  scan objective ~alpha ~budget workers

let best_of_all objective ~alpha ~budget pool =
  let a = by_quality objective ~alpha ~budget pool in
  let b = by_cheapest objective ~alpha ~budget pool in
  let c = by_density objective ~alpha ~budget pool in
  Solver.best (Solver.best a b) c
