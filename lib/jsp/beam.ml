let default_width = 32

(* A partial jury: members in reverse consideration order plus cached cost
   and objective score. *)
type state = { members : Workers.Worker.t list; cost : float; score : float }

let density w =
  let q =
    Float.max 0.5 (Float.min 0.99 (Workers.Worker.quality w))
  in
  Prob.Log_space.logit q /. Float.max 1e-9 (Workers.Worker.cost w)

let solve ?(width = default_width) (objective : Objective.t) ~alpha ~budget pool =
  if width <= 0 then invalid_arg "Beam.solve: width <= 0";
  Budget.validate budget;
  let workers = Workers.Pool.to_array pool in
  Array.sort (fun a b -> compare (density b) (density a)) workers;
  let evaluations = ref 0 in
  let score members =
    incr evaluations;
    objective.score ~alpha (Workers.Pool.of_list (List.rev members))
  in
  let empty = { members = []; cost = 0.; score = score [] } in
  let best = ref empty in
  let remember s = if s.score > !best.score then best := s in
  let step beam w =
    let c = Workers.Worker.cost w in
    let extended =
      List.filter_map
        (fun s ->
          if s.cost +. c <= budget +. 1e-9 then begin
            let members = w :: s.members in
            let s' = { members; cost = s.cost +. c; score = score members } in
            remember s';
            Some s'
          end
          else None)
        beam
    in
    (* Keep the top [width] of skip-states and take-states combined; dedup
       identical (cost, score) pairs, which are almost surely the same jury
       quality-wise and only waste beam slots. *)
    let merged = List.sort (fun a b -> compare b.score a.score) (beam @ extended) in
    let rec dedup seen = function
      | [] -> []
      | s :: rest ->
          let key = (Float.round (s.cost *. 1e9), Float.round (s.score *. 1e12)) in
          if List.mem key seen then dedup seen rest
          else s :: dedup (key :: seen) rest
    in
    let rec take k = function
      | [] -> []
      | s :: rest -> if k = 0 then [] else s :: take (k - 1) rest
    in
    take width (dedup [] merged)
  in
  let _final = Array.fold_left step [ empty ] workers in
  {
    Solver.jury = Workers.Pool.of_list (List.rev !best.members);
    score = !best.score;
    evaluations = !evaluations;
    cache = None;
  }
