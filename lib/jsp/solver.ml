type 'jury result = {
  jury : 'jury;
  score : float;
  evaluations : int;
  cache : Objective_cache.stats option;
}

let empty_result (objective : Objective.t) ~alpha =
  let jury = Workers.Pool.of_list [] in
  { jury; score = objective.score ~alpha jury; evaluations = 1; cache = None }

let best a b = if b.score > a.score then b else a

let map_jury f r =
  { jury = f r.jury; score = r.score; evaluations = r.evaluations; cache = r.cache }
