(** Beam-search JSP solver.

    A deterministic alternative to simulated annealing: workers are
    considered one at a time (highest log-odds-per-cost first) and a beam of
    the [width] most promising partial juries is carried through the
    take/skip branching.  With an unbounded beam this is exhaustive search;
    with a finite beam it costs O(N · width) objective evaluations and no
    randomness, making it a useful reproducible baseline for the ablation
    benches (annealing vs greedy vs beam vs exhaustive). *)

val default_width : int
(** 32. *)

val solve :
  ?width:int ->
  Objective.t ->
  alpha:float ->
  budget:Budget.t ->
  Workers.Pool.t ->
  Workers.Pool.t Solver.result
(** The best feasible jury found.  Always feasible; at least as good as the
    empty jury.  @raise Invalid_argument for width <= 0 or a negative
    budget. *)
