type params = {
  t_initial : float;
  epsilon : float;
  cooling : float;
  moves_per_temp : int option;
  keep_best : bool;
}

let default_params =
  {
    t_initial = 1.0;
    epsilon = 1e-8;
    cooling = 2.0;
    moves_per_temp = None;
    keep_best = true;
  }

let validate_params p =
  if p.epsilon <= 0. then invalid_arg "Annealing: epsilon <= 0";
  if p.cooling <= 1. then invalid_arg "Annealing: cooling <= 1";
  if p.t_initial < p.epsilon then invalid_arg "Annealing: t_initial < epsilon"

(* Mutable search state over the candidate pool, polymorphic in the jury
   representation: the schedule only needs member costs and a way to
   materialize the selected subset.  [idx] is a permutation of worker
   indices with the selected ones occupying the prefix [0, n_sel); [pos] is
   its inverse.  A uniformly random selected (or unselected) partner is
   then one array read — the hot loop allocates nothing. *)
type 'jury state = {
  costs : float array;
  materialize : bool array -> 'jury;
  selected : bool array;
  idx : int array;
  pos : int array;
  mutable n_sel : int;
  mutable spent : float;
  mutable score : float;
  mutable evaluations : int;
}

let make_state ~costs ~materialize =
  let n = Array.length costs in
  {
    costs;
    materialize;
    selected = Array.make n false;
    idx = Array.init n Fun.id;
    pos = Array.init n Fun.id;
    n_sel = 0;
    spent = 0.;
    score = 0.;
    evaluations = 0;
  }

(* Move worker [i] to slot [target] of [idx] by swapping with its occupant. *)
let relocate st i target =
  let p = st.pos.(i) in
  let j = st.idx.(target) in
  st.idx.(target) <- i;
  st.idx.(p) <- j;
  st.pos.(i) <- target;
  st.pos.(j) <- p

let mark_selected st i =
  relocate st i st.n_sel;
  st.n_sel <- st.n_sel + 1;
  st.selected.(i) <- true

let mark_unselected st i =
  relocate st i (st.n_sel - 1);
  st.n_sel <- st.n_sel - 1;
  st.selected.(i) <- false

let random_selected st rng =
  if st.n_sel = 0 then None else Some st.idx.(Prob.Rng.int rng st.n_sel)

let random_unselected st rng =
  let m = Array.length st.costs - st.n_sel in
  if m = 0 then None else Some st.idx.(st.n_sel + Prob.Rng.int rng m)

let cost st i = st.costs.(i)

(* Materialized juries are only built off the hot path: at the initial
   evaluation, on cache misses, and when a new best is remembered. *)
let current_jury st = st.materialize st.selected

let jury_without_with st ~out ~into =
  let flags = Array.copy st.selected in
  flags.(out) <- false;
  flags.(into) <- true;
  st.materialize flags

(* The annealing schedule of Algorithm 3, shared by every engine.
   [score_current] scores the selection just after a state change;
   [probe_swap] returns the candidate score of flipping (out, into) plus
   whether the scorer already mutated itself to that state (incremental
   cache misses do); [commit_swap]/[undo_probe] reconcile the scorer with
   the accept/reject decision. *)
let run params st ~rng ~budget ~score_current ~probe_swap ~commit_add
    ~commit_swap ~undo_probe =
  let n = Array.length st.costs in
  st.score <- score_current ();
  let best_jury = ref (current_jury st) in
  let best_score = ref st.score in
  let remember () =
    if st.score > !best_score then begin
      best_score := st.score;
      best_jury := current_jury st
    end
  in
  let moves = match params.moves_per_temp with Some m -> m | None -> n in
  let temperature = ref params.t_initial in
  while !temperature >= params.epsilon && n > 0 do
    for _ = 1 to moves do
      let r = Prob.Rng.int rng n in
      if (not st.selected.(r)) && st.spent +. cost st r <= budget +. 1e-9 then begin
        (* Lemma 1: a free addition can only help; accept unconditionally. *)
        commit_add r;
        mark_selected st r;
        st.spent <- st.spent +. cost st r;
        st.score <- score_current ()
      end
      else begin
        (* Algorithm 4: pair r with a random opposite-side partner and
           accept by the Boltzmann rule. *)
        let partner =
          if st.selected.(r) then random_unselected st rng
          else random_selected st rng
        in
        match partner with
        | None -> ()
        | Some k ->
            let out, into = if st.selected.(r) then (r, k) else (k, r) in
            if st.spent -. cost st out +. cost st into <= budget +. 1e-9 then begin
              let candidate_score, mutated = probe_swap ~out ~into in
              let delta = candidate_score -. st.score in
              let accept =
                delta >= 0.
                || Prob.Rng.unit_float rng < exp (delta /. !temperature)
              in
              if accept then begin
                commit_swap ~out ~into ~mutated;
                mark_unselected st out;
                mark_selected st into;
                st.spent <- st.spent -. cost st out +. cost st into;
                st.score <- candidate_score
              end
              else if mutated then undo_probe ~out ~into
            end
      end;
      remember ()
    done;
    temperature := !temperature /. params.cooling
  done;
  if params.keep_best then (!best_jury, !best_score)
  else (current_jury st, st.score)

(* A caller-owned memo table ([?memo]) survives across solves — a serving
   executor shares one so repeated queries hit a warm table.  It must have
   been created with [~n:(Pool.size pool)].  Every solve salts its keys
   with a digest of (objective, task, budget, RNG state), so solves that
   could disagree on a selection's score occupy disjoint key spaces and
   sharing is safe by construction. *)
let memo_table ~cache ~memo ~n =
  match memo with
  | Some _ as m -> m
  | None -> if cache then Some (Objective_cache.create ~n ()) else None

(* The salt must be derived before the schedule draws from [rng]:
   [Rng.fingerprint] identifies the whole future stream, so together with
   the objective, the task scope and the budget it pins every input the
   solve's (selection -> score) map and trajectory depend on. *)
let solve_salt ~objective ~scope ~budget ~rng =
  Digest.string
    (Printf.sprintf "%s|%s|%Lx|%s" objective scope
       (Int64.bits_of_float budget)
       (Prob.Rng.fingerprint rng))

let alpha_scope ~alpha = Printf.sprintf "a%Lx" (Int64.bits_of_float alpha)

let binary_materialize workers flags =
  let members = ref [] in
  for i = Array.length workers - 1 downto 0 do
    if flags.(i) then members := workers.(i) :: !members
  done;
  Workers.Pool.of_list !members

let solve ?(params = default_params) ?(cache = false) ?memo
    (objective : Objective.t) ~rng ~alpha ~budget pool =
  Budget.validate budget;
  validate_params params;
  let workers = Workers.Pool.to_array pool in
  let st =
    make_state
      ~costs:(Array.map Workers.Worker.cost workers)
      ~materialize:(binary_materialize workers)
  in
  let memo = memo_table ~cache ~memo ~n:(Array.length workers) in
  let salt =
    solve_salt ~objective:objective.name ~scope:(alpha_scope ~alpha) ~budget ~rng
  in
  let eval jury =
    st.evaluations <- st.evaluations + 1;
    objective.score ~alpha jury
  in
  let memoized key_of jury_of =
    match memo with
    | None -> eval (jury_of ())
    | Some c -> Objective_cache.find_or_eval c (key_of c) (fun () -> eval (jury_of ()))
  in
  let score_current () =
    memoized
      (fun c -> Objective_cache.key ~salt c st.selected)
      (fun () -> current_jury st)
  in
  let probe_swap ~out ~into =
    ( memoized
        (fun c -> Objective_cache.key_swapped ~salt c st.selected ~out ~into)
        (fun () -> jury_without_with st ~out ~into),
      false )
  in
  let jury, score =
    run params st ~rng ~budget ~score_current ~probe_swap
      ~commit_add:(fun _ -> ())
      ~commit_swap:(fun ~out:_ ~into:_ ~mutated:_ -> ())
      ~undo_probe:(fun ~out:_ ~into:_ -> ())
  in
  {
    Solver.jury;
    score;
    evaluations = st.evaluations;
    cache = Option.map Objective_cache.stats memo;
  }

let solve_incremental ?(params = default_params) ?(cache = true) ?memo
    (inc : Objective.Incremental.t) ~rng ~alpha ~budget pool =
  Budget.validate budget;
  validate_params params;
  let workers = Workers.Pool.to_array pool in
  let st =
    make_state
      ~costs:(Array.map Workers.Worker.cost workers)
      ~materialize:(binary_materialize workers)
  in
  let quality i = Workers.Worker.quality workers.(i) in
  let memo = memo_table ~cache ~memo ~n:(Array.length workers) in
  let salt =
    solve_salt ~objective:inc.Objective.Incremental.name
      ~scope:(alpha_scope ~alpha) ~budget ~rng
  in
  let acc = inc.Objective.Incremental.init ~alpha in
  let eval () =
    st.evaluations <- st.evaluations + 1;
    acc.Objective.Incremental.value ()
  in
  (* The accumulator always mirrors the *selection*, except transiently
     inside a swap probe: a cache miss mutates it to the candidate state
     (that is how the candidate is scored at all), and the accept/reject
     outcome either keeps the mutation or rolls it back. *)
  let mutate_to ~out ~into =
    acc.Objective.Incremental.remove (quality out);
    acc.Objective.Incremental.add (quality into)
  in
  let score_current () =
    match memo with
    | None -> eval ()
    | Some c ->
        Objective_cache.find_or_eval c (Objective_cache.key ~salt c st.selected) eval
  in
  let probe_swap ~out ~into =
    match memo with
    | None ->
        mutate_to ~out ~into;
        (eval (), true)
    | Some c ->
        let key = Objective_cache.key_swapped ~salt c st.selected ~out ~into in
        let mutated = ref false in
        let v =
          Objective_cache.find_or_eval c key (fun () ->
              mutated := true;
              mutate_to ~out ~into;
              eval ())
        in
        (v, !mutated)
  in
  let jury, _incr_score =
    run params st ~rng ~budget ~score_current ~probe_swap
      ~commit_add:(fun r -> acc.Objective.Incremental.add (quality r))
      ~commit_swap:(fun ~out ~into ~mutated ->
        if not mutated then mutate_to ~out ~into)
      ~undo_probe:(fun ~out ~into -> mutate_to ~out:into ~into:out)
  in
  (* Report the jury on the standard scale: one from-scratch evaluation of
     the final jury keeps scores comparable with the other solvers (the
     incremental estimate differs within the combined error bounds). *)
  st.evaluations <- st.evaluations + 1;
  let score = inc.Objective.Incremental.rescore.score ~alpha jury in
  {
    Solver.jury;
    score;
    evaluations = st.evaluations;
    cache = Option.map Objective_cache.stats memo;
  }

let solve_optjs ?params ?num_buckets ?cache ?memo ~rng ~alpha ~budget pool =
  solve_incremental ?params ?cache ?memo
    (Objective.bv_bucket_incremental ?num_buckets ())
    ~rng ~alpha ~budget pool

let solve_mvjs ?params ?cache ?memo ~rng ~alpha ~budget pool =
  solve_incremental ?params ?cache ?memo Objective.mv_closed_incremental ~rng
    ~alpha ~budget pool

(* Matrix pools run the from-scratch schedule against the engine objective
   with memoization; binary pools fall through to the incremental OPTJS
   engine — [Engine.Pool.of_confusions] has already lowered ℓ=2 symmetric
   matrix pools to that representation, so §7 pools pay the tuple-key
   scorer only when they genuinely need it. *)
let solve_matrix ~params ~cache ~memo ~num_buckets ~workspace ~rng ~task
    ~budget epool =
  Budget.validate budget;
  validate_params params;
  let objective = Engine.Objective.bv_bucket ?num_buckets ?workspace () in
  let st =
    make_state ~costs:(Engine.Pool.costs epool)
      ~materialize:(Engine.Pool.sub epool)
  in
  let memo = memo_table ~cache ~memo ~n:(Engine.Pool.size epool) in
  let salt =
    solve_salt
      ~objective:(Engine.Objective.name objective)
      ~scope:(Engine.Task.fingerprint task)
      ~budget ~rng
  in
  let eval jury =
    st.evaluations <- st.evaluations + 1;
    Engine.Objective.score objective ~task jury
  in
  let memoized key_of jury_of =
    match memo with
    | None -> eval (jury_of ())
    | Some c -> Objective_cache.find_or_eval c (key_of c) (fun () -> eval (jury_of ()))
  in
  let score_current () =
    memoized
      (fun c -> Objective_cache.key ~salt c st.selected)
      (fun () -> current_jury st)
  in
  let probe_swap ~out ~into =
    ( memoized
        (fun c -> Objective_cache.key_swapped ~salt c st.selected ~out ~into)
        (fun () -> jury_without_with st ~out ~into),
      false )
  in
  let jury, score =
    run params st ~rng ~budget ~score_current ~probe_swap
      ~commit_add:(fun _ -> ())
      ~commit_swap:(fun ~out:_ ~into:_ ~mutated:_ -> ())
      ~undo_probe:(fun ~out:_ ~into:_ -> ())
  in
  {
    Solver.jury;
    score;
    evaluations = st.evaluations;
    cache = Option.map Objective_cache.stats memo;
  }

let solve_engine ?(params = default_params) ?num_buckets ?workspace
    ?(cache = true) ?memo ~rng ~task ~budget epool =
  match Engine.Pool.repr epool with
  | Engine.Pool.Binary pool ->
      if Engine.Task.labels task <> 2 then
        invalid_arg "Annealing.solve_engine: binary pool under a non-binary task";
      Solver.map_jury Engine.Pool.of_workers
        (solve_optjs ~params ?num_buckets ~cache ?memo ~rng
           ~alpha:(Engine.Task.alpha task) ~budget pool)
  | Engine.Pool.Matrix _ ->
      if Engine.Pool.labels epool <> Engine.Task.labels task then
        invalid_arg "Annealing.solve_engine: pool and task label counts differ";
      solve_matrix ~params ~cache ~memo ~num_buckets ~workspace ~rng ~task
        ~budget epool
