type params = {
  t_initial : float;
  epsilon : float;
  cooling : float;
  moves_per_temp : int option;
  keep_best : bool;
}

let default_params =
  {
    t_initial = 1.0;
    epsilon = 1e-8;
    cooling = 2.0;
    moves_per_temp = None;
    keep_best = true;
  }

let validate_params p =
  if p.epsilon <= 0. then invalid_arg "Annealing: epsilon <= 0";
  if p.cooling <= 1. then invalid_arg "Annealing: cooling <= 1";
  if p.t_initial < p.epsilon then invalid_arg "Annealing: t_initial < epsilon"

(* Mutable search state over the candidate pool: selection flags, the spent
   budget, and the cached objective value of the current jury. *)
type state = {
  workers : Workers.Worker.t array;
  selected : bool array;
  mutable spent : float;
  mutable score : float;
  mutable evaluations : int;
}

let current_jury st =
  let members = ref [] in
  for i = Array.length st.workers - 1 downto 0 do
    if st.selected.(i) then members := st.workers.(i) :: !members
  done;
  Workers.Pool.of_list !members

let jury_without_with st ~out ~into =
  let members = ref [] in
  for i = Array.length st.workers - 1 downto 0 do
    let keep = if i = out then false else if i = into then true else st.selected.(i) in
    if keep then members := st.workers.(i) :: !members
  done;
  Workers.Pool.of_list !members

let selected_indexes st =
  let acc = ref [] in
  Array.iteri (fun i s -> if s then acc := i :: !acc) st.selected;
  !acc

let unselected_indexes st =
  let acc = ref [] in
  Array.iteri (fun i s -> if not s then acc := i :: !acc) st.selected;
  !acc

let evaluate (objective : Objective.t) st ~alpha jury =
  st.evaluations <- st.evaluations + 1;
  objective.score ~alpha jury

(* Algorithm 4.  [r] was drawn by the caller; we pair it with a random
   selected (resp. unselected) partner and accept by the Boltzmann rule. *)
let swap objective st ~alpha ~budget ~temperature rng r =
  let pick_from = if st.selected.(r) then unselected_indexes st else selected_indexes st in
  match pick_from with
  | [] -> ()
  | candidates ->
      let k = List.nth candidates (Prob.Rng.int rng (List.length candidates)) in
      let out, into = if st.selected.(r) then (r, k) else (k, r) in
      let cost_out = Workers.Worker.cost st.workers.(out) in
      let cost_into = Workers.Worker.cost st.workers.(into) in
      if st.spent -. cost_out +. cost_into <= budget +. 1e-9 then begin
        let candidate = jury_without_with st ~out ~into in
        let candidate_score = evaluate objective st ~alpha candidate in
        let delta = candidate_score -. st.score in
        let accept =
          delta >= 0.
          || Prob.Rng.unit_float rng < exp (delta /. temperature)
        in
        if accept then begin
          st.selected.(out) <- false;
          st.selected.(into) <- true;
          st.spent <- st.spent -. cost_out +. cost_into;
          st.score <- candidate_score
        end
      end

let solve ?(params = default_params) (objective : Objective.t) ~rng ~alpha ~budget
    pool =
  Budget.validate budget;
  validate_params params;
  let workers = Workers.Pool.to_array pool in
  let n = Array.length workers in
  let st =
    {
      workers;
      selected = Array.make n false;
      spent = 0.;
      score = 0.;
      evaluations = 0;
    }
  in
  st.score <- evaluate objective st ~alpha (current_jury st);
  let best_jury = ref (current_jury st) in
  let best_score = ref st.score in
  let remember () =
    if st.score > !best_score then begin
      best_score := st.score;
      best_jury := current_jury st
    end
  in
  let moves = match params.moves_per_temp with Some m -> m | None -> n in
  let temperature = ref params.t_initial in
  while !temperature >= params.epsilon && n > 0 do
    for _ = 1 to moves do
      let r = Prob.Rng.int rng n in
      if (not st.selected.(r)) && st.spent +. Workers.Worker.cost workers.(r) <= budget +. 1e-9
      then begin
        (* Lemma 1: a free addition can only help; accept unconditionally. *)
        st.selected.(r) <- true;
        st.spent <- st.spent +. Workers.Worker.cost workers.(r);
        st.score <- evaluate objective st ~alpha (current_jury st)
      end
      else swap objective st ~alpha ~budget ~temperature:!temperature rng r;
      remember ()
    done;
    temperature := !temperature /. params.cooling
  done;
  if params.keep_best then
    { Solver.jury = !best_jury; score = !best_score; evaluations = st.evaluations }
  else
    { Solver.jury = current_jury st; score = st.score; evaluations = st.evaluations }

let solve_optjs ?params ?num_buckets ~rng ~alpha ~budget pool =
  solve ?params (Objective.bv_bucket ?num_buckets ()) ~rng ~alpha ~budget pool

let solve_mvjs ?params ~rng ~alpha ~budget pool =
  solve ?params Objective.mv_closed ~rng ~alpha ~budget pool
