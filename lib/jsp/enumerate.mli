(** Exact JSP by exhaustive subset enumeration.

    JSP is NP-hard (Theorem 4); for pools of up to ~20 workers the 2^N
    feasible juries can still be enumerated, which is how the paper obtains
    the optimal J* in Figure 7(a)/Table 3 (N = 11) and how Figure 1's
    budget–quality table is computed. *)

val max_pool : int
(** Largest pool accepted (20). *)

val solve :
  Objective.t -> alpha:float -> budget:Budget.t -> Workers.Pool.t -> Workers.Pool.t Solver.result
(** The feasible jury with the maximum objective score; among equal scores,
    the cheaper jury wins (then the earlier-enumerated, so results are
    deterministic).  The empty jury is always feasible, so the result is
    total.  @raise Invalid_argument when the pool exceeds {!max_pool}. *)

val solve_bv :
  ?num_buckets:int ->
  alpha:float ->
  budget:Budget.t ->
  Workers.Pool.t ->
  Workers.Pool.t Solver.result
(** [solve] with the bucket-BV objective (OPTJS's exact-search variant). *)
