(** Common result type and contract for jury-selection solvers. *)

type result = {
  jury : Workers.Pool.t;       (** The selected jury (feasible by contract). *)
  score : float;               (** The objective's JQ estimate for it. *)
  evaluations : int;           (** Objective evaluations spent. *)
  cache : Objective_cache.stats option;
      (** Memoization counters, when the solver ran with an
          {!Objective_cache} ([None] for uncached solvers). *)
}

val empty_result : Objective.t -> alpha:float -> result
(** The no-jury fallback (used when even the cheapest worker exceeds B). *)

val best : result -> result -> result
(** The result with the higher score (ties keep the first). *)
