(** Common result type and contract for jury-selection solvers.

    The jury type is a parameter so every solver — binary
    ({!Workers.Pool.t}), multi-class ({!Workers.Confusion.t array}, see
    {!Multi_jsp}) or engine-level — shares one contract, and experiment and
    report code handles them uniformly. *)

type 'jury result = {
  jury : 'jury;                (** The selected jury (feasible by contract). *)
  score : float;               (** The objective's JQ estimate for it. *)
  evaluations : int;           (** Objective evaluations spent. *)
  cache : Objective_cache.stats option;
      (** Memoization counters, when the solver ran with an
          {!Objective_cache} ([None] for uncached solvers). *)
}

val empty_result : Objective.t -> alpha:float -> Workers.Pool.t result
(** The no-jury fallback (used when even the cheapest worker exceeds B). *)

val best : 'jury result -> 'jury result -> 'jury result
(** The result with the higher score (ties keep the first). *)

val map_jury : ('a -> 'b) -> 'a result -> 'b result
(** Re-represent the jury, keeping score and counters. *)
