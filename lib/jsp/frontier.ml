type point = { cost : float; quality : float; jury : Workers.Pool.t }

(* Keep only Pareto-dominant points from (cost, quality) candidates:
   sort by cost then sweep, keeping strictly improving quality. *)
let pareto candidates =
  let sorted =
    List.sort
      (fun a b ->
        match compare a.cost b.cost with
        | 0 -> compare b.quality a.quality
        | c -> c)
      candidates
  in
  let rec sweep best acc = function
    | [] -> List.rev acc
    | p :: rest ->
        if p.quality > best +. 1e-12 then sweep p.quality (p :: acc) rest
        else sweep best acc rest
  in
  sweep neg_infinity [] sorted

let exact (objective : Objective.t) ~alpha pool =
  let candidates =
    Seq.fold_left
      (fun acc jury ->
        {
          cost = Budget.jury_cost jury;
          quality = objective.score ~alpha jury;
          jury;
        }
        :: acc)
      []
      (Workers.Pool.subsets pool)
  in
  pareto candidates

let sampled ~solve ~budgets pool =
  let candidates =
    List.map
      (fun budget ->
        let r = solve ~budget pool in
        {
          cost = Budget.jury_cost r.Solver.jury;
          quality = r.Solver.score;
          jury = r.Solver.jury;
        })
      budgets
  in
  pareto candidates

let quality_at points ~budget =
  List.fold_left
    (fun best p -> if p.cost <= budget +. 1e-9 then Float.max best p.quality else best)
    0. points

let cheapest_for points ~quality =
  List.find_opt (fun p -> p.quality >= quality -. 1e-12) points

let pp ppf points =
  Format.fprintf ppf "%-10s  %-8s  %s@." "Cost" "Quality" "Jury";
  List.iter
    (fun p ->
      Format.fprintf ppf "%-10g  %-8s  %a@." p.cost
        (Printf.sprintf "%.2f%%" (100. *. p.quality))
        Workers.Pool.pp p.jury)
    points
