(** The quantity a jury-selection solver maximizes: an estimate of
    JQ(J, S, α) as a function of the jury.

    Solvers are generic in the objective so the same search code serves
    OPTJS (Bayesian-voting JQ, bucket-approximated), MVJS (majority-voting
    JQ, closed form) and exact ground-truth runs. *)

type t = {
  name : string;
  score : alpha:float -> Workers.Pool.t -> float;
      (** JQ estimate for a jury; must accept the empty jury. *)
}

val bv_bucket : ?num_buckets:int -> ?workspace:Jq.Workspace.t -> unit -> t
(** OPTJS objective: Algorithm-1 estimate of JQ(J, BV, α)
    (numBuckets defaults to {!Jq.Bucket.default_num_buckets}).  The empty
    jury scores max(α, 1−α): BV answers the prior's favourite.
    [workspace] pins the dense kernel's scratch buffers (single owner, one
    domain — see {!Jq.Workspace}); by default evaluations reuse the
    calling domain's workspace. *)

val bv_exact : t
(** Ground-truth objective: exact JQ(J, BV, α) by enumeration.  Only for
    juries within {!Jq.Exact.max_jury}. *)

val mv_closed : t
(** MVJS objective: exact JQ(J, MV, α) in closed form ([7]'s polynomial
    computation). *)

val strategy_exact : Voting.Strategy.t -> t
(** Exact JQ of an arbitrary strategy (enumeration; small juries). *)

(** Objectives that score by {i mutating} a per-search accumulator instead
    of re-running the full JQ computation on each candidate jury.  The
    annealer's moves change one or two members at a time, so an O(state)
    add/remove pair replaces the O(d·n³)-class from-scratch evaluation on
    the hot path. *)
module Incremental : sig
  type state = {
    add : float -> unit;     (** Fold one worker quality into the jury. *)
    remove : float -> unit;  (** Take one worker quality back out. *)
    value : unit -> float;   (** JQ estimate of the current multiset. *)
  }

  type objective = t

  type t = {
    name : string;
    init : alpha:float -> state;  (** Fresh empty-jury accumulator. *)
    rescore : objective;
        (** The matching from-scratch objective; solvers re-score their
            final jury with it so reported scores stay on the standard
            scale (e.g. {!Jq.Bucket.estimate}'s per-jury bucket width
            rather than {!Jq.Incremental}'s fixed global width). *)
  }
end

val bv_bucket_incremental :
  ?num_buckets:int -> ?workspace:Jq.Workspace.t -> unit -> Incremental.t
(** OPTJS objective over {!Jq.Incremental}: O(|map|) per add/remove.
    Values agree with {!bv_bucket}'s within the two constructions' combined
    §4.4 error bounds (the incremental map uses a fixed bucket width).
    [workspace] is threaded to the [rescore] objective's dense kernel. *)

val mv_closed_incremental : Incremental.t
(** MVJS objective over {!Prob.Poisson_binomial.Incremental}: O(k) per
    add/remove, exact up to float drift (guarded by periodic rebuilds). *)
