(** The quantity a jury-selection solver maximizes: an estimate of
    JQ(J, S, α) as a function of the jury.

    Solvers are generic in the objective so the same search code serves
    OPTJS (Bayesian-voting JQ, bucket-approximated), MVJS (majority-voting
    JQ, closed form) and exact ground-truth runs. *)

type t = {
  name : string;
  score : alpha:float -> Workers.Pool.t -> float;
      (** JQ estimate for a jury; must accept the empty jury. *)
}

val bv_bucket : ?num_buckets:int -> unit -> t
(** OPTJS objective: Algorithm-1 estimate of JQ(J, BV, α)
    (numBuckets defaults to {!Jq.Bucket.default_num_buckets}).  The empty
    jury scores max(α, 1−α): BV answers the prior's favourite. *)

val bv_exact : t
(** Ground-truth objective: exact JQ(J, BV, α) by enumeration.  Only for
    juries within {!Jq.Exact.max_jury}. *)

val mv_closed : t
(** MVJS objective: exact JQ(J, MV, α) in closed form ([7]'s polynomial
    computation). *)

val strategy_exact : Voting.Strategy.t -> t
(** Exact JQ of an arbitrary strategy (enumeration; small juries). *)
