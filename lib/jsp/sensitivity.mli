(** Sensitivity of jury selection to quality-estimation error.

    JSP optimizes against *estimated* qualities (§2.1 assumes they are
    known; §6.2 derives them from ~20 graded answers, so they carry noise
    of order ±0.1).  Two different questions follow:

    - {e evaluation error}: how far is the selected jury's believed JQ from
      its JQ under the true qualities?
    - {e selection regret}: how much JQ is lost by optimizing against the
      noisy estimates instead of the truth — i.e. JQ(true-optimal jury)
      − JQ(estimate-optimal jury), both scored under the truth?

    This module perturbs a pool's qualities with truncated Gaussian noise
    and measures both, using exhaustive solves so the numbers reflect the
    problem rather than any heuristic. *)

type outcome = {
  noise_sigma : float;
  evaluation_error : float;
      (** Mean |believed JQ − true JQ| of the estimate-selected jury. *)
  selection_regret : float;
      (** Mean JQ(true-optimal) − JQ(estimate-selected), under the truth;
          nonnegative. *)
  samples : int;
}

val perturb :
  Prob.Rng.t -> sigma:float -> Workers.Pool.t -> Workers.Pool.t
(** Each worker's quality receives independent N(0, sigma²) noise, clamped
    into [0.5, 0.99] (the §3.3 regime); ids, names and costs unchanged. *)

val measure :
  Prob.Rng.t ->
  ?samples:int ->
  alpha:float ->
  budget:Budget.t ->
  sigma:float ->
  Workers.Pool.t ->
  outcome
(** [measure rng ~alpha ~budget ~sigma pool] treats [pool] as the truth and
    draws [samples] (default 20) noisy estimates of it; for each, JSP is
    solved exhaustively against the estimate and judged against the truth.
    Pools must be within {!Enumerate.max_pool}.
    @raise Invalid_argument on sigma < 0 or samples <= 0. *)
