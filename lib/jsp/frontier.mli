(** The budget–quality Pareto frontier.

    Figure 1's table samples four budgets; the frontier is the full
    staircase: every (cost, JQ) pair such that no cheaper jury achieves at
    least that JQ.  A task provider reading the frontier sees exactly where
    extra money stops buying quality — the "is going from 15 to 20 units
    worth 2.5%?" judgement of §1, for all budgets at once. *)

type point = {
  cost : float;            (** What the jury actually costs. *)
  quality : float;         (** Its (estimated) JQ. *)
  jury : Workers.Pool.t;
}

val exact :
  Objective.t -> alpha:float -> Workers.Pool.t -> point list
(** The exact frontier by subset enumeration (pools within
    {!Enumerate.max_pool}): points in strictly increasing cost *and*
    strictly increasing quality; the first point is the best free jury
    (usually the empty jury).  Deterministic. *)

val sampled :
  solve:(budget:Budget.t -> Workers.Pool.t -> Workers.Pool.t Solver.result) ->
  budgets:float list ->
  Workers.Pool.t ->
  point list
(** Approximate frontier from solving JSP at the given budget ladder and
    keeping the Pareto-dominant results (same ordering guarantees). *)

val quality_at : point list -> budget:float -> float
(** Best quality the frontier offers within [budget] (the step function
    evaluated at [budget]); 0 when no frontier point is affordable. *)

val cheapest_for : point list -> quality:float -> point option
(** The cheapest frontier point reaching at least [quality]. *)

val pp : Format.formatter -> point list -> unit
