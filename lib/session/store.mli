(** A store of open sessions keyed by (pool name, task id).

    One store lives in each serve shard's warm state: pool-affinity
    dispatch routes every verb for a given pool name to the same home
    shard, so a session's whole lifetime runs against one store.  Three
    eviction mechanisms keep the stores bounded and correct:

    - {b version invalidation}: a session snapshots its pool's registry
      version at open; {!find} is handed the registry's current version
      and drops the session the moment they disagree, so a [pool-put]
      invalidates in-flight sessions by construction, exactly like the
      warm JQ caches;
    - {b TTL / idle expiry}: sessions untouched for [ttl] seconds are
      dropped, lazily on access plus an amortized sweep (at most one full
      scan per ttl/4);
    - {b capacity cap with admission control}: [open] beyond [cap] first
      tries to reclaim expired sessions, then refuses.

    The store is not thread-safe; each serve shard guards its own with a
    mutex.  All eviction outcomes are counted for the [stats] verb. *)

type t

type stats = {
  open_now : int;      (** Sessions currently resident. *)
  opened : int;        (** Sessions ever admitted. *)
  decided : int;       (** Terminal transitions recorded via {!note_decided}. *)
  expired : int;       (** TTL evictions. *)
  invalidated : int;   (** Pool-version evictions. *)
  rejected : int;      (** Opens refused at capacity. *)
}

val default_cap : int
val default_ttl : float

val create : ?cap:int -> ?ttl:float -> unit -> t
(** @raise Invalid_argument for cap ≤ 0 or ttl ≤ 0. *)

val open_session :
  t ->
  pool:string ->
  task:string ->
  session:Task.t ->
  now:float ->
  [ `Ok | `Exists | `Full ]

val find :
  t ->
  pool:string ->
  task:string ->
  now:float ->
  version:int ->
  [ `Found of Task.t | `Missing | `Expired | `Invalidated ]
(** Look up a live session.  [version] is the pool's {e current} registry
    version; a mismatch evicts and reports [`Invalidated].  An idle-expired
    entry evicts and reports [`Expired]. *)

val remove : t -> pool:string -> task:string -> Task.t option
(** Close: drop and return the session if present (no version check — a
    close must always succeed in freeing the slot). *)

val note_decided : t -> unit
(** Count one session reaching a terminal state. *)

val sweep : t -> now:float -> unit
(** Evict every idle-expired session now. *)

val open_count : t -> int
val stats : t -> stats
val zero_stats : stats
val add_stats : stats -> stats -> stats
