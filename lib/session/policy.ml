type t = Info_gain | Marginal_jq | Quality_greedy | Cheapest_first

let to_string = function
  | Info_gain -> "gain"
  | Marginal_jq -> "jq"
  | Quality_greedy -> "quality"
  | Cheapest_first -> "cheap"

let of_string = function
  | "gain" -> Some Info_gain
  | "jq" -> Some Marginal_jq
  | "quality" -> Some Quality_greedy
  | "cheap" -> Some Cheapest_first
  | _ -> None

let default = Info_gain
let all = [ Info_gain; Marginal_jq; Quality_greedy; Cheapest_first ]
let min_cost = 1e-9

(* Quality summary used by the greedy policy: scalar quality for binary
   workers, mean diagonal for confusion matrices. *)
let quality_of pool i =
  match Engine.Pool.repr pool with
  | Engine.Pool.Binary p -> Workers.Worker.quality (Workers.Pool.get p i)
  | Engine.Pool.Matrix arr ->
      Workers.Confusion.accuracy_given_uniform_prior arr.(i)

let gain_of pool ~posterior i =
  match Engine.Pool.repr pool with
  | Engine.Pool.Binary p ->
      Crowd.Online.expected_entropy_gain ~posterior_no:posterior.(0)
        ~quality:(Workers.Worker.quality (Workers.Pool.get p i))
  | Engine.Pool.Matrix arr ->
      Crowd.Online.expected_entropy_gain_vector ~posterior ~confusion:arr.(i)

(* Marginal JQ of adding candidate [i] to the asked set.  Binary pools
   probe a warm incremental evaluator (add, read, deconvolve back out);
   matrix pools re-score the asked subset through the bucket objective. *)
let marginal_jq ~task ~pool ~asked ?inc ?workspace i =
  match (Engine.Pool.repr pool, inc) with
  | Engine.Pool.Binary p, Some inc ->
      let q = Workers.Worker.quality (Workers.Pool.get p i) in
      let base = Jq.Incremental.value inc in
      Jq.Incremental.add_worker inc q;
      let v = Jq.Incremental.value inc in
      Jq.Incremental.remove_worker inc q;
      v -. base
  | _ ->
      let score flags =
        (Engine.Objective.bv_bucket_scored ?workspace () ~task
           (Engine.Pool.sub pool flags))
          .score
      in
      let base = score asked in
      let flags = Array.copy asked in
      flags.(i) <- true;
      score flags -. base

let score policy ~task ~pool ~posterior ~asked ?inc ?workspace i =
  let cost = Float.max min_cost (Engine.Pool.cost pool i) in
  match policy with
  | Info_gain -> gain_of pool ~posterior i /. cost
  | Marginal_jq ->
      Float.max 0. (marginal_jq ~task ~pool ~asked ?inc ?workspace i) /. cost
  | Quality_greedy -> quality_of pool i
  | Cheapest_first -> -.Engine.Pool.cost pool i

let pick policy ~task ~pool ~posterior ~asked ~remaining ?inc ?workspace () =
  let n = Engine.Pool.size pool in
  let best = ref None in
  let best_score = ref neg_infinity in
  for i = 0 to n - 1 do
    if (not asked.(i)) && Engine.Pool.cost pool i <= remaining +. 1e-9 then begin
      let s = score policy ~task ~pool ~posterior ~asked ?inc ?workspace i in
      if s > !best_score then begin
        best := Some i;
        best_score := s
      end
    end
  done;
  match !best with None -> None | Some i -> Some (i, !best_score)

let pick_k policy ~task ~pool ~posterior ~asked ~remaining ~k ?inc ?workspace ()
    =
  if k < 1 then invalid_arg "Policy.pick_k: k must be >= 1";
  let n = Engine.Pool.size pool in
  let scored = ref [] in
  for i = n - 1 downto 0 do
    if (not asked.(i)) && Engine.Pool.cost pool i <= remaining +. 1e-9 then
      let s = score policy ~task ~pool ~posterior ~asked ?inc ?workspace i in
      scored := (i, s) :: !scored
  done;
  (* Highest score first; ties toward the lowest index, matching [pick]
     (whose strict [>] keeps the earliest maximum). *)
  let sorted =
    List.stable_sort (fun (_, a) (_, b) -> compare (b : float) a) !scored
  in
  List.filteri (fun rank _ -> rank < k) sorted
