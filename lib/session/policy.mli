(** Solicitation policies: which candidate worker to ask next.

    A sequential session holds a posterior over the task's ℓ labels and a
    frontier of not-yet-asked workers; a policy ranks the affordable
    frontier and proposes the best candidate.  All four policies are
    deterministic (ties break toward the lowest positional index), so a
    session's advice — and therefore every serve reply — is a pure function
    of (pool, prior, vote history, budget). *)

type t =
  | Info_gain
      (** Greatest expected posterior-entropy reduction per unit cost —
          {!Crowd.Online.expected_entropy_gain} (binary fast path) /
          {!Crowd.Online.expected_entropy_gain_vector} (ℓ-label). *)
  | Marginal_jq
      (** Greatest marginal JQ of the asked-so-far jury per unit cost,
          probed through a warm {!Jq.Incremental} evaluator for binary
          pools and the bucket objective for matrix pools. *)
  | Quality_greedy
      (** Highest quality first (mean diagonal for matrix workers). *)
  | Cheapest_first  (** Lowest cost first. *)

val to_string : t -> string
(** Wire token: ["gain"], ["jq"], ["quality"], ["cheap"]. *)

val of_string : string -> t option

val default : t
(** [Info_gain]. *)

val all : t list

val score :
  t ->
  task:Engine.Task.t ->
  pool:Engine.Pool.t ->
  posterior:float array ->
  asked:bool array ->
  ?inc:Jq.Incremental.t ->
  ?workspace:Jq.Workspace.t ->
  int ->
  float
(** The policy's score for one candidate (positional index).  Units depend
    on the policy: nats/cost for [Info_gain], ΔJQ/cost (floored at 0) for
    [Marginal_jq], a quality for [Quality_greedy], negated cost for
    [Cheapest_first].  [inc], when given, must hold exactly the asked
    workers (binary pools); [workspace] pins kernel scratch for matrix
    marginal-JQ probes. *)

val pick :
  t ->
  task:Engine.Task.t ->
  pool:Engine.Pool.t ->
  posterior:float array ->
  asked:bool array ->
  remaining:float ->
  ?inc:Jq.Incremental.t ->
  ?workspace:Jq.Workspace.t ->
  unit ->
  (int * float) option
(** Best unasked candidate whose cost fits in [remaining] (±1e-9), with its
    score, or [None] when no affordable candidate is left. *)

val pick_k :
  t ->
  task:Engine.Task.t ->
  pool:Engine.Pool.t ->
  posterior:float array ->
  asked:bool array ->
  remaining:float ->
  k:int ->
  ?inc:Jq.Incremental.t ->
  ?workspace:Jq.Workspace.t ->
  unit ->
  (int * float) list
(** The top [min k |affordable|] candidates, best first (ties toward the
    lowest index — the head is exactly {!pick}'s answer).  Batch
    solicitation: ask all [k] in one round trip instead of re-advising
    after every vote.  @raise Invalid_argument when [k < 1]. *)
