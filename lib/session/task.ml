type progress =
  | Soliciting
  | Decided of { label : int; certified : bool; reason : Stopping.reason }
  | Exhausted of { label : int; reason : Stopping.reason }

type t = {
  pool : Engine.Pool.t;
  version : int;
  task : Engine.Task.t;
  budget : float;
  confidence : float;
  gain_floor : float;
  policy : Policy.t;
  log_post : float array;
  asked : bool array;
  mutable votes : (int * int) list;
  mutable n_votes : int;
  mutable spent : float;
  mutable progress : progress;
  mutable next : int option;
  inc : Jq.Incremental.t option;
  mutable last_touch : float;
  mutable fed : bool;
}

let pool t = t.pool
let version t = t.version
let task t = t.task
let budget t = t.budget
let spent t = t.spent
let votes_seen t = t.n_votes
let votes t = List.rev t.votes
let progress t = t.progress
let next t = t.next
let last_touch t = t.last_touch
let touch t ~now = t.last_touch <- now
let remaining t = t.budget -. t.spent

let posterior t =
  let l = Array.length t.log_post in
  let m = ref neg_infinity in
  for j = 0 to l - 1 do
    if t.log_post.(j) > !m then m := t.log_post.(j)
  done;
  if !m = neg_infinity then Array.make l (1. /. float_of_int l)
  else begin
    let p = Array.make l 0. in
    let z = ref 0. in
    for j = 0 to l - 1 do
      p.(j) <- exp (t.log_post.(j) -. !m);
      z := !z +. p.(j)
    done;
    for j = 0 to l - 1 do
      p.(j) <- p.(j) /. !z
    done;
    p
  end

let decision_label t =
  let best = ref 0 in
  Array.iteri (fun j x -> if x > t.log_post.(!best) then best := j) t.log_post;
  !best

let certified_now t =
  Stopping.no_flip t.pool ~log_post:t.log_post ~asked:t.asked
    ~remaining:(remaining t)

(* Run the stopping cascade and refresh the cached advice.  Called after
   every state change so [next] is always consistent with the posterior. *)
let check_stop ?workspace t =
  match t.progress with
  | Decided _ | Exhausted _ -> t.next <- None
  | Soliciting ->
      let p = posterior t in
      let pmax = Array.fold_left Float.max neg_infinity p in
      if pmax >= t.confidence then begin
        t.progress <-
          Decided
            {
              label = decision_label t;
              certified = certified_now t;
              reason = Stopping.Confident;
            };
        t.next <- None
      end
      else if certified_now t then begin
        t.progress <-
          Decided
            { label = decision_label t; certified = true; reason = Stopping.Certified };
        t.next <- None
      end
      else begin
        let pick =
          Policy.pick t.policy ~task:t.task ~pool:t.pool ~posterior:p
            ~asked:t.asked ~remaining:(remaining t) ?inc:t.inc ?workspace ()
        in
        match pick with
        | None ->
            let any_unasked = Array.exists not t.asked in
            let reason =
              if any_unasked then Stopping.Budget_exhausted
              else Stopping.Pool_exhausted
            in
            t.progress <- Exhausted { label = decision_label t; reason };
            t.next <- None
        | Some (i, score) ->
            if t.gain_floor > 0. && score < t.gain_floor then begin
              t.progress <-
                Decided
                  {
                    label = decision_label t;
                    certified = certified_now t;
                    reason = Stopping.Gain_floor;
                  };
              t.next <- None
            end
            else t.next <- Some i
      end

let create ?workspace ~pool ~pool_version ~task ~budget ?(confidence = 0.95)
    ?(gain_floor = 0.) ?(policy = Policy.default) ~now () =
  let l = Engine.Task.labels task in
  if (not (Engine.Pool.is_empty pool)) && Engine.Pool.labels pool <> l then
    Error "prior label count does not match the pool's worker model"
  else if Float.is_nan budget || budget < 0. then Error "budget must be >= 0"
  else if
    Float.is_nan confidence
    || confidence <= 1. /. float_of_int l
    || confidence > 1.
  then Error "confidence must lie in (1/labels, 1]"
  else if Float.is_nan gain_floor || gain_floor < 0. then
    Error "gain floor must be >= 0"
  else begin
    let prior = Engine.Task.prior task in
    let log_post =
      Array.map (fun p -> if p > 0. then log p else neg_infinity) prior
    in
    let inc =
      match Engine.Pool.repr pool with
      | Engine.Pool.Binary _ ->
          Some (Jq.Incremental.create ~alpha:(Engine.Task.alpha task) ())
      | Engine.Pool.Matrix _ -> None
    in
    let t =
      {
        pool;
        version = pool_version;
        task;
        budget;
        confidence;
        gain_floor;
        policy;
        log_post;
        asked = Array.make (Engine.Pool.size pool) false;
        votes = [];
        n_votes = 0;
        spent = 0.;
        progress = Soliciting;
        next = None;
        inc;
        last_touch = now;
        fed = false;
      }
    in
    check_stop ?workspace t;
    Ok t
  end

let log_or_ninf x = if x > 0. then log x else neg_infinity

let vote ?workspace t ~worker ~label ~now =
  touch t ~now;
  match t.progress with
  | Decided _ -> Error "session already decided"
  | Exhausted _ -> Error "session already exhausted"
  | Soliciting ->
      let n = Engine.Pool.size t.pool in
      let l = Engine.Task.labels t.task in
      if worker < 0 || worker >= n then Error "worker index out of range"
      else if label < 0 || label >= l then Error "label out of range"
      else if t.asked.(worker) then Error "worker already voted"
      else begin
        (match Engine.Pool.repr t.pool with
        | Engine.Pool.Binary p ->
            let q = Workers.Worker.quality (Workers.Pool.get p worker) in
            (* Pr(vote = label | truth = j) for the scalar model. *)
            t.log_post.(0) <-
              t.log_post.(0)
              +. (if label = 0 then log_or_ninf q else log_or_ninf (1. -. q));
            t.log_post.(1) <-
              t.log_post.(1)
              +. (if label = 1 then log_or_ninf q else log_or_ninf (1. -. q));
            Option.iter (fun inc -> Jq.Incremental.add_worker inc q) t.inc
        | Engine.Pool.Matrix arr ->
            let c = arr.(worker) in
            for j = 0 to l - 1 do
              t.log_post.(j) <-
                t.log_post.(j)
                +. log_or_ninf (Workers.Confusion.prob c ~truth:j ~vote:label)
            done);
        t.asked.(worker) <- true;
        t.votes <- (worker, label) :: t.votes;
        t.n_votes <- t.n_votes + 1;
        t.spent <- t.spent +. Engine.Pool.cost t.pool worker;
        check_stop ?workspace t;
        Ok ()
      end

let advise ?workspace t ~now =
  touch t ~now;
  ignore workspace;
  t.next

let advise_k ?workspace t ~k ~now =
  touch t ~now;
  match t.progress with
  | Decided _ | Exhausted _ -> []
  | Soliciting ->
      if k = 1 then match t.next with None -> [] | Some i -> [ i ]
      else
        Policy.pick_k t.policy ~task:t.task ~pool:t.pool ~posterior:(posterior t)
          ~asked:t.asked ~remaining:(remaining t) ~k ?inc:t.inc ?workspace ()
        |> List.map fst

let fed t = t.fed
let mark_fed t =
  let first = not t.fed in
  t.fed <- true;
  first

let decide t ~now =
  touch t ~now;
  match t.progress with
  | Decided _ | Exhausted _ -> ()
  | Soliciting ->
      t.progress <-
        Decided
          {
            label = decision_label t;
            certified = certified_now t;
            reason = Stopping.Forced;
          };
      t.next <- None
