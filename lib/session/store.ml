type key = { pool : string; task : string }

module Tbl = Hashtbl.Make (struct
  type t = key

  let equal a b = String.equal a.pool b.pool && String.equal a.task b.task
  let hash k = Hashtbl.hash (k.pool, k.task)
end)

type stats = {
  open_now : int;
  opened : int;
  decided : int;
  expired : int;
  invalidated : int;
  rejected : int;
}

type t = {
  tbl : Task.t Tbl.t;
  cap : int;
  ttl : float;
  mutable opened : int;
  mutable decided : int;
  mutable expired : int;
  mutable invalidated : int;
  mutable rejected : int;
  mutable last_sweep : float;
}

let default_cap = 1024
let default_ttl = 900.

let create ?(cap = default_cap) ?(ttl = default_ttl) () =
  if cap <= 0 then invalid_arg "Store.create: cap <= 0";
  if ttl <= 0. || Float.is_nan ttl then invalid_arg "Store.create: ttl <= 0";
  {
    tbl = Tbl.create 64;
    cap;
    ttl;
    opened = 0;
    decided = 0;
    expired = 0;
    invalidated = 0;
    rejected = 0;
    last_sweep = neg_infinity;
  }

let open_count t = Tbl.length t.tbl

let expired_entry t session ~now = now -. Task.last_touch session > t.ttl

let sweep t ~now =
  t.last_sweep <- now;
  let dead = ref [] in
  Tbl.iter
    (fun k s -> if expired_entry t s ~now then dead := k :: !dead)
    t.tbl;
  List.iter
    (fun k ->
      Tbl.remove t.tbl k;
      t.expired <- t.expired + 1)
    !dead

(* Amortized expiry: a full sweep at most every ttl/4 (floored at 1s), so
   a hot store does not pay O(n) on every verb. *)
let maybe_sweep t ~now =
  if now -. t.last_sweep > Float.max 1. (t.ttl /. 4.) then sweep t ~now

let open_session t ~pool ~task ~session ~now =
  maybe_sweep t ~now;
  let k = { pool; task } in
  if Tbl.mem t.tbl k then `Exists
  else if Tbl.length t.tbl >= t.cap then begin
    (* Admission control: try to free capacity before refusing. *)
    sweep t ~now;
    if Tbl.length t.tbl >= t.cap then begin
      t.rejected <- t.rejected + 1;
      `Full
    end
    else begin
      Tbl.replace t.tbl k session;
      t.opened <- t.opened + 1;
      `Ok
    end
  end
  else begin
    Tbl.replace t.tbl k session;
    t.opened <- t.opened + 1;
    `Ok
  end

let find t ~pool ~task ~now ~version =
  maybe_sweep t ~now;
  let k = { pool; task } in
  match Tbl.find_opt t.tbl k with
  | None -> `Missing
  | Some s ->
      if expired_entry t s ~now then begin
        Tbl.remove t.tbl k;
        t.expired <- t.expired + 1;
        `Expired
      end
      else if Task.version s <> version then begin
        Tbl.remove t.tbl k;
        t.invalidated <- t.invalidated + 1;
        `Invalidated
      end
      else `Found s

let remove t ~pool ~task =
  let k = { pool; task } in
  match Tbl.find_opt t.tbl k with
  | None -> None
  | Some s ->
      Tbl.remove t.tbl k;
      Some s

let note_decided t = t.decided <- t.decided + 1

let stats t =
  {
    open_now = Tbl.length t.tbl;
    opened = t.opened;
    decided = t.decided;
    expired = t.expired;
    invalidated = t.invalidated;
    rejected = t.rejected;
  }

let zero_stats =
  {
    open_now = 0;
    opened = 0;
    decided = 0;
    expired = 0;
    invalidated = 0;
    rejected = 0;
  }

let add_stats a b =
  {
    open_now = a.open_now + b.open_now;
    opened = a.opened + b.opened;
    decided = a.decided + b.decided;
    expired = a.expired + b.expired;
    invalidated = a.invalidated + b.invalidated;
    rejected = a.rejected + b.rejected;
  }
