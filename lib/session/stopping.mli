(** Stopping rules for sequential sessions.

    A session stops soliciting when the posterior's favourite label is
    confident enough, when no affordable marginal action remains, when the
    best action's marginal score falls under a floor — or, strongest of
    all, when the decision provably cannot flip: the log-posterior margin
    of the leading label over every rival exceeds the summed worst-case
    log-likelihood-ratio influence of every still-affordable unasked
    worker.  The last test is sound (never stops a flippable decision)
    because each remaining vote can move any pairwise log-posterior gap by
    at most that worker's {!max_log_ratio}, the per-worker logit magnitude
    the §4.4 bound machinery discretizes. *)

type reason =
  | Confident         (** Max posterior reached the confidence threshold. *)
  | Certified         (** The certified no-flip early stop fired. *)
  | Gain_floor        (** Best marginal score fell below the floor. *)
  | Budget_exhausted  (** Unasked workers remain but none is affordable. *)
  | Pool_exhausted    (** Every worker has voted. *)
  | Forced            (** The client demanded a decision ([decide]). *)

val reason_to_string : reason -> string
(** Wire tokens: [confident], [certified], [gain-floor], [budget],
    [exhausted], [forced]. *)

val reason_of_string : string -> reason option
val all_reasons : reason list

val max_log_ratio : Engine.Pool.t -> int -> float
(** Worst-case |Δ log-posterior-ratio| a single vote from the given worker
    (positional index) can inflict on any label pair: |logit q| for a
    scalar worker, max over votes v of ln(max_j C(j,v) / min_j C(j,v)) for
    a matrix worker; [infinity] for certain workers (q ∈ {0, 1} or a zero
    matrix entry under a vote some truth can emit). *)

val remaining_influence :
  Engine.Pool.t -> asked:bool array -> remaining:float -> float
(** Σ {!max_log_ratio} over unasked workers individually affordable within
    the remaining budget — an upper bound on how far any continuation of
    the session can move a pairwise log-posterior gap. *)

val no_flip :
  Engine.Pool.t ->
  log_post:float array ->
  asked:bool array ->
  remaining:float ->
  bool
(** Whether the current argmax label is certified to survive every
    possible continuation of the session. *)
