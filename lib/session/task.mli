(** The sequential-jury task state machine.

    A session is one crowdsourcing task being answered adaptively: it holds
    an ℓ-label posterior over the task's answer, the votes seen so far, the
    spend, and the frontier of candidate workers not yet asked.  The client
    loop is [open → (advise → vote)* → decided/exhausted], where every
    [vote] folds one worker's answer into the posterior (scalar-quality
    workers by the classic odds update, confusion-matrix workers row-wise,
    both in log space) and then runs the stopping cascade:

    + max posterior ≥ confidence threshold ([Confident]);
    + certified no-flip early stop ([Certified], see {!Stopping.no_flip});
    + no affordable candidate left ([Budget_exhausted] / [Pool_exhausted]);
    + best candidate's marginal score under the floor ([Gain_floor]).

    Everything is deterministic — policies break ties by position and no
    clock or RNG feeds the state — so replies built from a session are
    byte-identical however the underlying caches are warmed.  A session is
    not thread-safe; callers (the serve data plane) serialize access. *)

type progress =
  | Soliciting  (** Open: accepting votes, advice available. *)
  | Decided of { label : int; certified : bool; reason : Stopping.reason }
      (** Terminal: a confident (or forced) answer.  [certified] means the
          no-flip test holds — no continuation could change the label. *)
  | Exhausted of { label : int; reason : Stopping.reason }
      (** Terminal: ran out of budget or workers before confidence;
          [label] is the posterior argmax at that point. *)

type t

val create :
  ?workspace:Jq.Workspace.t ->
  pool:Engine.Pool.t ->
  pool_version:int ->
  task:Engine.Task.t ->
  budget:float ->
  ?confidence:float ->
  ?gain_floor:float ->
  ?policy:Policy.t ->
  now:float ->
  unit ->
  (t, string) result
(** Open a session over a snapshot of [pool] (remembering [pool_version]
    for invalidation).  [confidence] defaults to 0.95 and must lie in
    (1/ℓ, 1]; [budget] ≥ 0; [gain_floor] ≥ 0 (0 disables the floor);
    [policy] defaults to {!Policy.default}.  The stopping cascade runs
    immediately — a sufficiently peaked prior decides with zero votes. *)

val vote :
  ?workspace:Jq.Workspace.t ->
  t ->
  worker:int ->
  label:int ->
  now:float ->
  (unit, string) result
(** Fold one vote (positional worker index, label in [0, ℓ)) into the
    posterior, charge the worker's cost, and run the stopping cascade.
    Errors (state untouched): terminal session, out-of-range worker or
    label, duplicate vote. *)

val advise : ?workspace:Jq.Workspace.t -> t -> now:float -> int option
(** The cached policy advice: which worker to ask next, or [None] when the
    session is terminal or nothing affordable remains. *)

val advise_k : ?workspace:Jq.Workspace.t -> t -> k:int -> now:float -> int list
(** Batch advice: the top [min k |affordable|] candidates, best first (the
    head is {!advise}'s answer).  [k = 1] reuses the cached advice; larger
    [k] ranks the frontier afresh.  Empty on terminal sessions. *)

val decide : t -> now:float -> unit
(** Force a terminal decision ([Forced]) on a soliciting session;
    idempotent on terminal sessions. *)

val progress : t -> progress
val posterior : t -> float array
(** Normalized posterior over the ℓ labels. *)

val decision_label : t -> int
(** Posterior argmax, ties toward the lowest label. *)

val certified_now : t -> bool
val next : t -> int option
(** Same value {!advise} returns, without touching the idle clock. *)

val pool : t -> Engine.Pool.t
val version : t -> int
val task : t -> Engine.Task.t
val budget : t -> float
val remaining : t -> float
val spent : t -> float
val votes_seen : t -> int
val votes : t -> (int * int) list
(** (worker, label) pairs in arrival order. *)

val last_touch : t -> float
val touch : t -> now:float -> unit
(** Idle-expiry bookkeeping for {!Store}. *)

val fed : t -> bool
val mark_fed : t -> bool
(** Calibration bookkeeping: a decided session's votes feed the pool's
    quality plane exactly once.  [mark_fed] sets the flag and returns
    whether this call was the first (i.e. the caller should feed now). *)
