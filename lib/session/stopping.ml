type reason =
  | Confident
  | Certified
  | Gain_floor
  | Budget_exhausted
  | Pool_exhausted
  | Forced

let reason_to_string = function
  | Confident -> "confident"
  | Certified -> "certified"
  | Gain_floor -> "gain-floor"
  | Budget_exhausted -> "budget"
  | Pool_exhausted -> "exhausted"
  | Forced -> "forced"

let reason_of_string = function
  | "confident" -> Some Confident
  | "certified" -> Some Certified
  | "gain-floor" -> Some Gain_floor
  | "budget" -> Some Budget_exhausted
  | "exhausted" -> Some Pool_exhausted
  | "forced" -> Some Forced
  | _ -> None

let all_reasons =
  [ Confident; Certified; Gain_floor; Budget_exhausted; Pool_exhausted; Forced ]

(* One vote from worker [i] shifts the log-posterior gap between any two
   labels j, k by ln C(j,v) − ln C(k,v); the worker's influence is the
   supremum of |that| over votes and label pairs.  For a scalar-quality
   worker this is |logit q| — the same per-worker logit the §4.4 bucket
   bound discretizes. *)
let max_log_ratio pool i =
  match Engine.Pool.repr pool with
  | Engine.Pool.Binary p ->
      let q = Workers.Worker.quality (Workers.Pool.get p i) in
      if q <= 0. || q >= 1. then infinity else Float.abs (log (q /. (1. -. q)))
  | Engine.Pool.Matrix arr ->
      let c = arr.(i) in
      let l = Workers.Confusion.labels c in
      let worst = ref 0. in
      for v = 0 to l - 1 do
        let hi = ref neg_infinity and lo = ref infinity in
        for j = 0 to l - 1 do
          let p = Workers.Confusion.prob c ~truth:j ~vote:v in
          if p > !hi then hi := p;
          if p < !lo then lo := p
        done;
        (* A vote no truth can emit shifts nothing; a vote some truths
           cannot emit at all is infinitely informative. *)
        if !hi > 0. then
          if !lo <= 0. then worst := infinity
          else worst := Float.max !worst (log (!hi /. !lo))
      done;
      !worst

let remaining_influence pool ~asked ~remaining =
  let n = Engine.Pool.size pool in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    if (not asked.(i)) && Engine.Pool.cost pool i <= remaining +. 1e-9 then
      acc := !acc +. max_log_ratio pool i
  done;
  !acc

let no_flip pool ~log_post ~asked ~remaining =
  let l = Array.length log_post in
  let top = ref 0 in
  for j = 1 to l - 1 do
    if log_post.(j) > log_post.(!top) then top := j
  done;
  let margin = ref infinity in
  for j = 0 to l - 1 do
    if j <> !top then margin := Float.min !margin (log_post.(!top) -. log_post.(j))
  done;
  if Float.is_nan !margin then false
  else if !margin = infinity then true
  else !margin > remaining_influence pool ~asked ~remaining
