(* Sequential-session benchmark: what adaptive solicitation buys over a
   fixed jury, plus the serving cost of the session verbs.

   Part 1 replays the synthetic AMT dataset (Crowd.Amt_dataset).  For
   each question the static arm solves JSP once over the question's
   candidate workers (uniform unit costs) and aggregates that jury's
   recorded votes with Bayesian Voting; the adaptive arm opens a
   lib/session task over the same candidates and budget and follows the
   policy's advice through the same recorded votes until the session
   stops.  Both arms see identical workers, identical estimated
   qualities, and identical answers — the only difference is when they
   stop asking — so cost-per-task at matched accuracy is exactly the
   sequential-sampling claim.

   Part 2 runs open/advise/vote/close conversations through an
   in-process Serve.Service and reports client-side vote-verb latency
   quantiles.

   Flags:
     --fast     replay fewer questions and shorter serving runs (CI)
     --tasks N  replay exactly N questions
     --gate     exit 1 unless adaptive cost/task <= 0.8x static with
                accuracy within 0.5 points, and vote p95 stays under
                the latency bound

   Results are dumped as BENCH_session.json. *)

module Wire = Serve.Wire

let alpha = 0.5
let budget = 9.
let confidence = 0.995
let vote_p95_gate_ns = 5e6

type replay = {
  tasks : int;
  static_cost : float;
  static_correct : int;
  adaptive_cost : float;
  adaptive_correct : int;
  adaptive_votes : int;
  errors : int;
}

let replay_amt ~n_tasks =
  let dataset = Crowd.Amt_dataset.generate (Prob.Rng.create 11) in
  let open Crowd.Amt_dataset in
  let costs = Array.make dataset.params.n_workers 1. in
  let n_tasks = min n_tasks (Array.length dataset.tasks) in
  let rng = Prob.Rng.create 29 in
  let acc =
    ref
      {
        tasks = 0;
        static_cost = 0.;
        static_correct = 0;
        adaptive_cost = 0.;
        adaptive_correct = 0;
        adaptive_votes = 0;
        errors = 0;
      }
  in
  for task_id = 0 to n_tasks - 1 do
    let cpool = candidate_pool dataset ~costs ~task_id in
    let truth = Voting.Vote.to_int (Crowd.Task.truth_exn dataset.tasks.(task_id)) in
    let vote_of =
      let table = Hashtbl.create 32 in
      Array.iter
        (fun (w, v) -> if not (Hashtbl.mem table w) then Hashtbl.add table w v)
        dataset.votes.(task_id);
      fun worker_id -> Hashtbl.find table worker_id
    in
    (* Static arm: one JSP solve, then BV over the jury's recorded
       answers. *)
    let jury =
      (Optjs.select_jury ~rng ~alpha ~budget cpool).Jsp.Solver.jury
    in
    let jury_workers = Workers.Pool.to_list jury in
    let voting =
      Array.of_list
        (List.map (fun w -> vote_of (Workers.Worker.id w)) jury_workers)
    in
    let static_decision =
      Voting.Vote.to_int
        (Optjs.aggregate ~alpha ~qualities:(Workers.Pool.qualities jury) voting)
    in
    let static_cost =
      List.fold_left (fun a w -> a +. Workers.Worker.cost w) 0. jury_workers
    in
    (* Adaptive arm: same candidates, same budget, votes revealed only
       when the policy asks for them. *)
    let epool = Engine.Pool.of_workers cpool in
    let etask = Engine.Task.binary ~alpha in
    (match
       Session.Task.create ~pool:epool ~pool_version:0 ~task:etask ~budget
         ~confidence ~now:0. ()
     with
    | Error e ->
        Printf.eprintf "task %d: create failed: %s\n" task_id e;
        acc := { !acc with errors = !acc.errors + 1 }
    | Ok session ->
        let failed = ref false in
        let continue = ref true in
        while !continue && not !failed do
          match
            (Session.Task.progress session, Session.Task.advise session ~now:0.)
          with
          | Session.Task.Soliciting, Some i ->
              let worker_id =
                Workers.Worker.id (Workers.Pool.get cpool i)
              in
              let label = Voting.Vote.to_int (vote_of worker_id) in
              (match Session.Task.vote session ~worker:i ~label ~now:0. with
              | Ok () -> ()
              | Error e ->
                  Printf.eprintf "task %d: vote failed: %s\n" task_id e;
                  failed := true)
          | _ -> continue := false
        done;
        if !failed then acc := { !acc with errors = !acc.errors + 1 }
        else begin
          let label =
            match Session.Task.progress session with
            | Session.Task.Decided { label; _ } | Session.Task.Exhausted { label; _ }
              ->
                label
            | Session.Task.Soliciting -> Session.Task.decision_label session
          in
          acc :=
            {
              tasks = !acc.tasks + 1;
              static_cost = !acc.static_cost +. static_cost;
              static_correct =
                (!acc.static_correct + if static_decision = truth then 1 else 0);
              adaptive_cost = !acc.adaptive_cost +. Session.Task.spent session;
              adaptive_correct =
                (!acc.adaptive_correct + if label = truth then 1 else 0);
              adaptive_votes =
                !acc.adaptive_votes + Session.Task.votes_seen session;
              errors = !acc.errors;
            }
        end)
  done;
  !acc

(* ---- serving latency ---------------------------------------------- *)

type verb_lat = { p50 : float; p95 : float; p99 : float; count : int }

let quantiles samples =
  let arr = Array.of_list samples in
  let q p = if Array.length arr = 0 then 0. else Prob.Stats.quantile arr p in
  { p50 = q 0.5; p95 = q 0.95; p99 = q 0.99; count = Array.length arr }

let serve_sessions ~sessions =
  let service = Serve.Service.create ~domains:1 ~queue_capacity:256 () in
  let pool =
    Workers.Generator.gaussian_pool (Prob.Rng.create 7)
      Workers.Generator.default 40
  in
  let workers =
    List.map
      (fun w -> Wire.Scalar (Workers.Worker.quality w, Workers.Worker.cost w))
      (Workers.Pool.to_list pool)
  in
  (match Serve.Service.submit service (Wire.Pool_put { name = "bench"; workers })
   with
  | Wire.Pool_info _ -> ()
  | r -> failwith ("pool-put: " ^ Wire.encode_response r));
  let rng = Prob.Rng.create 13 in
  let vote_lats = ref [] in
  let errors = ref 0 in
  let timed request =
    let t0 = Serve.Clock.now () in
    let reply = Serve.Service.submit service request in
    let t1 = Serve.Clock.now () in
    (match request with
    | Wire.Session_vote _ -> vote_lats := (1e9 *. (t1 -. t0)) :: !vote_lats
    | _ -> ());
    (match reply with
    | Wire.Session_result _ -> ()
    | _ -> incr errors);
    reply
  in
  for s = 0 to sessions - 1 do
    let task_id = Printf.sprintf "bench-%d" s in
    let truth = if Prob.Rng.float rng 1. < alpha then 0 else 1 in
    let still_open = function
      | Wire.Session_result { state = Wire.Sess_open; _ } -> true
      | _ -> false
    in
    let reply =
      ref
        (timed
           (Wire.Session_open
              {
                pool = "bench";
                task = task_id;
                prior = [ alpha; 1. -. alpha ];
                budget;
                confidence;
                gain_floor = 0.;
                policy = Session.Policy.default;
              }))
    in
    let steps = ref 0 in
    while still_open !reply && !steps <= Workers.Pool.size pool do
      incr steps;
      (* Batch solicitation: one advise answers the next three workers to
         ask, so the drive loop spends one round trip per three votes. *)
      match
        timed (Wire.Session_advise { pool = "bench"; task = task_id; k = 3 })
      with
      | Wire.Session_result { state = Wire.Sess_open; advice = _ :: _ as advice; _ }
        ->
          List.iter
            (fun i ->
              if still_open !reply then begin
                let q = Workers.Worker.quality (Workers.Pool.get pool i) in
                let label =
                  if Prob.Rng.float rng 1. < q then truth else 1 - truth
                in
                reply :=
                  timed
                    (Wire.Session_vote
                       { pool = "bench"; task = task_id; worker = i; label })
              end)
            advice
      | r -> reply := r
    done;
    ignore (timed (Wire.Session_close { pool = "bench"; task = task_id }))
  done;
  Serve.Service.shutdown service;
  (quantiles !vote_lats, !errors)

let () =
  let n_tasks = ref 600 in
  let sessions = ref 400 in
  let gate = ref false in
  let rec parse = function
    | [] -> ()
    | "--fast" :: rest ->
        n_tasks := 120;
        sessions := 100;
        parse rest
    | "--tasks" :: n :: rest ->
        n_tasks := int_of_string n;
        parse rest
    | "--gate" :: rest ->
        gate := true;
        parse rest
    | arg :: _ -> failwith ("unknown argument " ^ arg)
  in
  parse (List.tl (Array.to_list Sys.argv));
  let r = replay_amt ~n_tasks:!n_tasks in
  let per_task v = v /. float_of_int (max 1 r.tasks) in
  let acc_of c = float_of_int c /. float_of_int (max 1 r.tasks) in
  let static_cost = per_task r.static_cost in
  let adaptive_cost = per_task r.adaptive_cost in
  let cost_ratio = if static_cost > 0. then adaptive_cost /. static_cost else 1. in
  let static_acc = acc_of r.static_correct in
  let adaptive_acc = acc_of r.adaptive_correct in
  let lat, serve_errors = serve_sessions ~sessions:!sessions in
  let json =
    Printf.sprintf
      "{\"tasks\": %d, \"budget\": %g, \"confidence\": %g,\n\
      \ \"static_cost_per_task\": %.3f, \"adaptive_cost_per_task\": %.3f, \
       \"cost_ratio\": %.4f,\n\
      \ \"static_accuracy\": %.4f, \"adaptive_accuracy\": %.4f, \
       \"accuracy_delta_pt\": %.2f,\n\
      \ \"adaptive_votes_per_task\": %.2f, \"replay_errors\": %d,\n\
      \ \"serve_sessions\": %d, \"serve_errors\": %d, \"vote_p50_ns\": %.0f, \
       \"vote_p95_ns\": %.0f, \"vote_p99_ns\": %.0f, \"vote_verbs\": %d}"
      r.tasks budget confidence static_cost adaptive_cost cost_ratio static_acc
      adaptive_acc
      (100. *. (adaptive_acc -. static_acc))
      (per_task (float_of_int r.adaptive_votes))
      r.errors !sessions serve_errors lat.p50 lat.p95 lat.p99 lat.count
  in
  let oc = open_out "BENCH_session.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  print_endline json;
  if !gate then begin
    let fail = ref [] in
    if r.errors > 0 || serve_errors > 0 then
      fail := Printf.sprintf "errors (replay %d, serve %d)" r.errors serve_errors :: !fail;
    if cost_ratio > 0.8 then
      fail := Printf.sprintf "cost_ratio %.4f > 0.8" cost_ratio :: !fail;
    (* Adaptive may out-score the fixed jury; only a drop is a failure. *)
    if static_acc -. adaptive_acc > 0.005 then
      fail :=
        Printf.sprintf "accuracy dropped %.2f pt > 0.5"
          (100. *. (static_acc -. adaptive_acc))
        :: !fail;
    if lat.p95 > vote_p95_gate_ns then
      fail := Printf.sprintf "vote p95 %.0f ns > %.0f" lat.p95 vote_p95_gate_ns :: !fail;
    match !fail with
    | [] -> print_endline "gate: ok"
    | fs ->
        List.iter (fun f -> Printf.eprintf "gate: %s\n" f) fs;
        exit 1
  end
