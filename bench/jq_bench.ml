(* Kernel microbenchmark: dense flat JQ kernels vs the hashtable baseline.

   Times [Jq.Bucket.estimate] (binary) over n x num_buckets grid cells and
   [Jq.Multiclass_jq.estimate_bv] (l-label) rows, each with ~impl:Flat
   (one reused workspace, the production configuration) and ~impl:Hashtbl
   (the legacy kernel), and reports ns/eval plus minor-heap allocation per
   eval.  Results land in BENCH_jq.json; see docs/perf.md for the schema.

   Flags:
     --gate     exit nonzero unless flat >= 2x hashtbl at n=500/d=200
                (binary), >= 5x at l=3 and >= 2x at l=5 (multiclass), and
                the warm l=3 flat kernel allocates < 1024 minor words/eval
     --fast     shorter measurement windows (CI smoke)
     --seed N   pool seed (default 42) *)

type options = {
  mutable gate : bool;
  mutable fast : bool;
  mutable seed : int;
}

let parse_options () =
  let o = { gate = false; fast = false; seed = 42 } in
  let rec go = function
    | [] -> ()
    | "--gate" :: rest ->
        o.gate <- true;
        go rest
    | "--fast" :: rest ->
        o.fast <- true;
        go rest
    | "--seed" :: n :: rest ->
        o.seed <- int_of_string n;
        go rest
    | arg :: _ -> failwith (Printf.sprintf "unknown argument %S" arg)
  in
  go (List.tl (Array.to_list Sys.argv));
  o

(* Time [f] over enough repetitions to fill [target_s] of wall clock
   (calibrated from a single warm call), best of three windows, and read
   the minor-word delta across one window.  Returns (ns/eval, minor
   words/eval). *)
let measure ~target_s f =
  ignore (f ());
  let _, once = Expt.Series.timed f in
  let reps = max 3 (int_of_float (Float.ceil (target_s /. Float.max once 1e-9))) in
  let window () =
    let _, s =
      Expt.Series.timed (fun () ->
          for _ = 1 to reps do
            ignore (f ())
          done)
    in
    s
  in
  let best = ref (window ()) in
  let minor0 = Gc.minor_words () in
  let s = window () in
  let minor1 = Gc.minor_words () in
  if s < !best then best := s;
  let s = window () in
  if s < !best then best := s;
  let per = float_of_int reps in
  (1e9 *. !best /. per, (minor1 -. minor0) /. per)

(* ---- Binary grid ------------------------------------------------------- *)

let binary_cell ~target_s ~workspace ~n ~num_buckets qualities =
  let run impl workspace () =
    Jq.Bucket.estimate ~impl ?workspace ~num_buckets
      ~high_quality_shortcut:false qualities
  in
  let flat_ns, flat_words =
    measure ~target_s (run Jq.Bucket.Flat (Some workspace))
  in
  let ht_ns, ht_words = measure ~target_s (run Jq.Bucket.Hashtbl None) in
  let speedup = if flat_ns > 0. then ht_ns /. flat_ns else Float.infinity in
  let json =
    Printf.sprintf
      "{\"n\": %d, \"num_buckets\": %d, \"flat_ns\": %.1f, \"hashtbl_ns\": \
       %.1f, \"flat_minor_words_per_eval\": %.1f, \
       \"hashtbl_minor_words_per_eval\": %.1f, \"speedup\": %.2f}"
      n num_buckets flat_ns ht_ns flat_words ht_words speedup
  in
  (json, speedup)

(* ---- Multiclass rows ---------------------------------------------------- *)

(* Diagonal-dominant confusion jury derived from a scalar gaussian pool,
   mirroring bench/main.ml's matrix_pool. *)
let matrix_jury ~seed ~labels n =
  let rng = Prob.Rng.create (seed + labels) in
  let scalar = Workers.Generator.gaussian_pool rng Workers.Generator.default n in
  Array.of_list
    (List.mapi
       (fun id w ->
         let d = Workers.Worker.quality w in
         let off = (1. -. d) /. float_of_int (labels - 1) in
         let matrix =
           Array.init labels (fun j ->
               Array.init labels (fun v -> if j = v then d else off))
         in
         Workers.Confusion.make ~id ~matrix ~cost:(Workers.Worker.cost w) ())
       (Workers.Pool.to_list scalar))

let multiclass_row ~target_s ~workspace ~seed ~labels ~n =
  let jury = matrix_jury ~seed ~labels n in
  let prior = Array.make labels (1. /. float_of_int labels) in
  let run impl workspace () =
    Jq.Multiclass_jq.estimate_bv ~impl ?workspace ~prior jury
  in
  let flat_ns, flat_words =
    measure ~target_s (run Jq.Bucket.Flat (Some workspace))
  in
  let ht_ns, ht_words = measure ~target_s (run Jq.Bucket.Hashtbl None) in
  let speedup = if flat_ns > 0. then ht_ns /. flat_ns else Float.infinity in
  let json =
    Printf.sprintf
      "{\"labels\": %d, \"n\": %d, \"flat_ns\": %.1f, \"hashtbl_ns\": %.1f, \
       \"flat_minor_words_per_eval\": %.1f, \"hashtbl_minor_words_per_eval\": \
       %.1f, \"speedup\": %.2f}"
      labels n flat_ns ht_ns flat_words ht_words speedup
  in
  (json, speedup, flat_words)

(* ---- Driver ------------------------------------------------------------ *)

let () =
  let o = parse_options () in
  let target_s = if o.fast then 0.05 else 0.3 in
  let workspace = Jq.Workspace.create () in
  let pool n =
    Workers.Pool.qualities
      (Workers.Generator.gaussian_pool (Prob.Rng.create o.seed)
         Workers.Generator.default n)
  in
  let q50 = pool 50 and q200 = pool 200 and q500 = pool 500 in
  let gate_binary = ref nan in
  let binary_rows =
    List.map
      (fun (n, qualities) ->
        List.map
          (fun num_buckets ->
            let json, speedup =
              binary_cell ~target_s ~workspace ~n ~num_buckets qualities
            in
            if n = 500 && num_buckets = 200 then gate_binary := speedup;
            json)
          [ 50; 200 ])
      [ (50, q50); (200, q200); (500, q500) ]
    |> List.concat
  in
  (* Tuple-range pruning keeps the sparse frontier bounded well past the
     sizes the dense-box kernel could reach, so l=5 runs (and is gated) on
     the flat path rather than falling back. *)
  let gate_l3 = ref nan and gate_l5 = ref nan in
  let gate_l3_words = ref nan in
  let multiclass_rows =
    List.map
      (fun (labels, n) ->
        let json, speedup, flat_words =
          multiclass_row ~target_s ~workspace ~seed:o.seed ~labels ~n
        in
        if labels = 3 then begin
          gate_l3 := speedup;
          gate_l3_words := flat_words
        end;
        if labels = 5 then gate_l5 := speedup;
        json)
      [ (2, 40); (3, 16); (5, 8) ]
  in
  let json =
    Printf.sprintf
      "{\"bench\": \"jq_kernels\", \"binary\": [\n  %s\n],\n\"multiclass\": [\n\
      \  %s\n]}\n"
      (String.concat ",\n  " binary_rows)
      (String.concat ",\n  " multiclass_rows)
  in
  let oc = open_out "BENCH_jq.json" in
  output_string oc json;
  close_out oc;
  print_string json;
  if o.gate then begin
    let failed = ref false in
    if not (!gate_binary >= 2.0) then begin
      Printf.eprintf
        "FAIL: binary flat kernel is %.2fx hashtbl at n=500/d=200 (need >= \
         2.0x)\n"
        !gate_binary;
      failed := true
    end;
    if not (!gate_l3 >= 5.0) then begin
      Printf.eprintf
        "FAIL: l=3 flat kernel is %.2fx hashtbl (need >= 5.0x)\n" !gate_l3;
      failed := true
    end;
    if not (!gate_l5 >= 2.0) then begin
      Printf.eprintf
        "FAIL: l=5 flat kernel is %.2fx hashtbl (need >= 2.0x)\n" !gate_l5;
      failed := true
    end;
    (* Steady-state allocation: the warm flat kernel must stay within the
       fixed stats/accumulator scaffolding (well under one frontier's
       worth of floats) per evaluation. *)
    if not (!gate_l3_words < 1024.) then begin
      Printf.eprintf
        "FAIL: l=3 flat kernel allocates %.0f minor words/eval (need < \
         1024)\n"
        !gate_l3_words;
      failed := true
    end;
    if !failed then exit 1;
    Printf.printf
      "GATE OK: binary %.2fx (>= 2.0), l=3 %.2fx (>= 5.0), l=5 %.2fx (>= \
       2.0), l=3 %.0f minor words/eval (< 1024)\n"
      !gate_binary !gate_l3 !gate_l5 !gate_l3_words
  end
