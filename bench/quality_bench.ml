(* Live worker-quality plane benchmark: what the streaming calibrator
   buys over a static registration, and what it costs to serve.

   Part 1 replays the synthetic AMT dataset (Crowd.Amt_dataset) through a
   Workers.Calib registered with an uninformed base (0.5 everywhere),
   stepping on the serve plane's mini-batch cadence, then forces a full
   recalibration and compares the streaming EM fit per worker against the
   offline Dawid-Skene run over the same votes.  It also scores the final
   blended estimates against the latent qualities, versus what serving the
   static registration would keep using.

   Part 2 drives an in-process Serve.Service through the wire verbs: a
   pool is put, a standing jury selected, then the jury's best worker
   turns into a coin flipper mid-stream.  Gold votes flow through
   [report]; the bench measures how many votes it takes the drift
   detector to flag the spammer, and then scores the re-selected jury
   against the original static one on post-drift simulated tasks.

   Part 3 measures [report] ingest latency through the service (batches
   sized to apply on every call, so each submit pays a calibration step).

   Flags:
     --fast    smaller replay and fewer latency rows (CI)
     --gate    exit 1 unless
               - streaming EM matches offline Dawid-Skene within 1e-6,
               - calibrated estimates beat the static base's error,
               - the spammer is flagged within one drift window of votes,
               - the re-selected jury scores at least the stale one, and
               - ingest p95 stays under the latency bound.

   Results are dumped as BENCH_quality.json. *)

module Wire = Serve.Wire

let alpha = 0.5
let em_match_tolerance = 1e-6
let ingest_p95_gate_ns = 5e7

(* ---- part 1: AMT replay, streaming vs offline ----------------------- *)

type replay = {
  tasks : int;
  votes : int;
  steps : int;
  em_max_diff : float;     (* streaming vs offline EM, per worker *)
  calib_error : float;     (* mean |blend - latent| *)
  base_error : float;      (* mean |0.5 - latent| *)
  empirical_error : float; (* mean |paper's empirical estimate - latent| *)
}

let replay_amt ~n_tasks =
  let dataset = Crowd.Amt_dataset.generate (Prob.Rng.create 11) in
  let open Crowd.Amt_dataset in
  let n_tasks = min n_tasks (Array.length dataset.tasks) in
  let n_workers = dataset.params.n_workers in
  (* Keep every vote in the EM window and disable drift so the offline
     comparison is over the identical retained set — a reset mid-replay
     would legitimately drop votes the offline run still sees. *)
  let config =
    {
      Workers.Calib.default_config with
      Workers.Calib.task_window = max 1024 n_tasks;
      window = 2048;
      drift_z = 1e9;
      spammer_threshold = 1e-9;
    }
  in
  let calib =
    Workers.Calib.create ~config
      ~base:(Workers.Calib.Scalar (Array.make n_workers 0.5))
      ()
  in
  let triples = ref [] in
  let steps = ref 0 in
  let votes_total = ref 0 in
  for task = 0 to n_tasks - 1 do
    let votes =
      Array.to_list dataset.votes.(task)
      |> List.map (fun (worker, v) ->
             let label = Voting.Vote.to_int v in
             triples := (task, worker, label) :: !triples;
             { Workers.Calib.task; worker; label; truth = None })
    in
    votes_total := !votes_total + List.length votes;
    (match Workers.Calib.feed calib votes with
    | Ok _ -> ()
    | Error msg -> failwith ("replay feed: " ^ msg));
    if Workers.Calib.due calib then begin
      ignore (Workers.Calib.step calib);
      incr steps
    end
  done;
  ignore (Workers.Calib.recalibrate calib);
  incr steps;
  let streaming =
    match Workers.Calib.em_qualities calib with
    | Some q -> q
    | None -> failwith "replay: EM never ran"
  in
  (* Offline reference over the same votes in the calibrator's canonical
     ordering (task ids are already dense and ascending here). *)
  let ds_votes =
    List.sort compare !triples
    |> List.map (fun (task, worker, label) ->
           { Workers.Dawid_skene.task; worker; label })
  in
  let offline =
    Workers.Dawid_skene.run ~max_iterations:200 ~smoothing:0.01
      ~n_tasks ~n_workers ~n_labels:2 ds_votes
  in
  let offline_q = Workers.Dawid_skene.binary_qualities offline in
  let em_max_diff = ref 0. in
  Array.iteri
    (fun i q -> em_max_diff := Float.max !em_max_diff (Float.abs (q -. offline_q.(i))))
    streaming;
  let mean_err of_i =
    let acc = Prob.Kahan.create () in
    for i = 0 to n_workers - 1 do
      Prob.Kahan.add acc (Float.abs (of_i i -. dataset.true_qualities.(i)))
    done;
    Prob.Kahan.total acc /. float_of_int n_workers
  in
  {
    tasks = n_tasks;
    votes = !votes_total;
    steps = !steps;
    em_max_diff = !em_max_diff;
    calib_error = mean_err (Workers.Calib.quality calib);
    base_error = mean_err (fun _ -> 0.5);
    empirical_error = mean_err (fun i -> dataset.estimated_qualities.(i));
  }

(* ---- part 2: spammer onset and re-selection ------------------------- *)

type drift_run = {
  votes_to_flag : int;     (* gold votes fed before the flag *)
  window : int;            (* the drift window W the gate compares to *)
  recals : int;
  static_accuracy : float; (* original jury, stale belief weights *)
  live_accuracy : float;   (* re-selected jury, calibrated weights *)
  eval_tasks : int;
}

let latents =
  [| 0.92; 0.85; 0.84; 0.83; 0.7; 0.68; 0.66; 0.64; 0.62; 0.6; 0.58; 0.56 |]

let drift_and_reselect ~eval_tasks =
  let batch = 8 in
  let calib_config =
    { Workers.Calib.default_config with Workers.Calib.batch } in
  let service =
    Serve.Service.create ~calib_config ~domains:1 ~queue_capacity:64 ()
  in
  Fun.protect
    ~finally:(fun () -> Serve.Service.shutdown service)
    (fun () ->
      let submit r = Serve.Service.submit service r in
      let rows =
        Array.to_list (Array.map (fun q -> Wire.Scalar (q, 1.)) latents)
      in
      (match submit (Wire.Pool_put { name = "live"; workers = rows }) with
      | Wire.Pool_info _ -> ()
      | r -> failwith ("pool-put: " ^ Wire.encode_response r));
      let select () =
        match
          submit
            (Wire.Select
               { pool = "live"; budget = 5.; prior = Wire.default_prior; seed = 7 })
        with
        | Wire.Select_result { ids; _ } -> ids
        | r -> failwith ("select: " ^ Wire.encode_response r)
      in
      let static_jury = select () in
      (* Worker 0 goes spammer: gold votes at exactly chance agreement,
         one applied mini-batch at a time until the detector fires. *)
      let fed = ref 0 in
      let recals = ref 0 in
      let flagged = ref false in
      let window = Workers.Calib.default_config.Workers.Calib.drift_window in
      while (not !flagged) && !fed < 4 * window do
        let votes =
          List.init batch (fun i ->
              {
                Workers.Calib.task = 9000 + !fed + i;
                worker = 0;
                label = (!fed + i) mod 2;
                truth = Some 1;
              })
        in
        (match submit (Wire.Report { pool = "live"; votes }) with
        | Wire.Report_result { drifted; recals = r; _ } ->
            fed := !fed + batch;
            recals := !recals + r;
            if List.mem 0 drifted then flagged := true
        | r -> failwith ("report: " ^ Wire.encode_response r));
      done;
      let live_jury = select () in
      let live_belief =
        match submit (Wire.Quality { pool = "live" }) with
        | Wire.Quality_result { workers; _ } ->
            let a = Array.make (Array.length latents) 0.5 in
            List.iter (fun (i, q, _) -> a.(i) <- q) workers;
            a
        | r -> failwith ("quality: " ^ Wire.encode_response r)
      in
      (* Post-drift world: worker 0 now answers at chance.  Score both
         juries on fresh simulated tasks — the static arm still believes
         the registration, the live arm the calibrated readback. *)
      let truth_latents = Array.copy latents in
      truth_latents.(0) <- 0.5;
      let rng = Prob.Rng.create 23 in
      let accuracy jury belief =
        let qualities = Array.of_list (List.map (fun i -> belief.(i)) jury) in
        let correct = ref 0 in
        for _ = 1 to eval_tasks do
          let truth = Crowd.Simulate.sample_truth rng ~alpha in
          let voting =
            Array.of_list
              (List.map
                 (fun i ->
                   Crowd.Simulate.vote rng ~truth ~quality:truth_latents.(i))
                 jury)
          in
          if Voting.Vote.equal (Optjs.aggregate ~alpha ~qualities voting) truth
          then incr correct
        done;
        float_of_int !correct /. float_of_int eval_tasks
      in
      {
        votes_to_flag = !fed;
        window;
        recals = !recals;
        static_accuracy = accuracy static_jury latents;
        live_accuracy = accuracy live_jury live_belief;
        eval_tasks;
      })

(* ---- part 3: ingest latency ----------------------------------------- *)

type ingest_lat = { p50 : float; p95 : float; p99 : float; reports : int }

let ingest_latency ~reports =
  let service = Serve.Service.create ~domains:1 ~queue_capacity:64 () in
  Fun.protect
    ~finally:(fun () -> Serve.Service.shutdown service)
    (fun () ->
      let submit r = Serve.Service.submit service r in
      let n = 16 in
      let rows = List.init n (fun i -> Wire.Scalar (0.55 +. (0.02 *. float_of_int i), 1.)) in
      (match submit (Wire.Pool_put { name = "lat"; workers = rows }) with
      | Wire.Pool_info _ -> ()
      | r -> failwith ("pool-put: " ^ Wire.encode_response r));
      let batch = Workers.Calib.default_config.Workers.Calib.batch in
      let rng = Prob.Rng.create 31 in
      let lats = ref [] in
      for round = 0 to reports - 1 do
        (* Batch-sized reports: every submit applies a calibration step,
           so the timing covers the worst-case ingest path. *)
        let votes =
          List.init batch (fun i ->
              {
                Workers.Calib.task = (round * batch) + i;
                worker = Prob.Rng.int rng n;
                label = Prob.Rng.int rng 2;
                truth = (if Prob.Rng.int rng 4 = 0 then Some 1 else None);
              })
        in
        let t0 = Serve.Clock.now () in
        (match submit (Wire.Report { pool = "lat"; votes }) with
        | Wire.Report_result _ -> ()
        | r -> failwith ("report: " ^ Wire.encode_response r));
        lats := (1e9 *. (Serve.Clock.now () -. t0)) :: !lats
      done;
      let arr = Array.of_list !lats in
      let q p = if Array.length arr = 0 then 0. else Prob.Stats.quantile arr p in
      { p50 = q 0.5; p95 = q 0.95; p99 = q 0.99; reports })

(* ---- driver ---------------------------------------------------------- *)

let () =
  let n_tasks = ref 600 in
  let eval_tasks = ref 2000 in
  let reports = ref 40 in
  let gate = ref false in
  let rec parse = function
    | [] -> ()
    | "--fast" :: rest ->
        n_tasks := 150;
        eval_tasks := 800;
        reports := 15;
        parse rest
    | "--tasks" :: n :: rest ->
        n_tasks := int_of_string n;
        parse rest
    | "--gate" :: rest ->
        gate := true;
        parse rest
    | arg :: _ -> failwith ("unknown argument " ^ arg)
  in
  parse (List.tl (Array.to_list Sys.argv));
  let r = replay_amt ~n_tasks:!n_tasks in
  let d = drift_and_reselect ~eval_tasks:!eval_tasks in
  let l = ingest_latency ~reports:!reports in
  let json =
    Printf.sprintf
      "{\"replay_tasks\": %d, \"replay_votes\": %d, \"calib_steps\": %d,\n\
      \ \"em_max_diff\": %.2e, \"calib_error\": %.4f, \"base_error\": %.4f, \
       \"empirical_error\": %.4f,\n\
      \ \"votes_to_flag\": %d, \"drift_window\": %d, \"recals\": %d,\n\
      \ \"static_accuracy\": %.4f, \"live_accuracy\": %.4f, \"eval_tasks\": %d,\n\
      \ \"ingest_p50_ns\": %.0f, \"ingest_p95_ns\": %.0f, \"ingest_p99_ns\": \
       %.0f, \"reports\": %d}"
      r.tasks r.votes r.steps r.em_max_diff r.calib_error r.base_error
      r.empirical_error d.votes_to_flag d.window d.recals d.static_accuracy
      d.live_accuracy d.eval_tasks l.p50 l.p95 l.p99 l.reports
  in
  let oc = open_out "BENCH_quality.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  print_endline json;
  if !gate then begin
    let fail = ref [] in
    if r.em_max_diff > em_match_tolerance then
      fail :=
        Printf.sprintf "em_max_diff %.2e > %.0e" r.em_max_diff em_match_tolerance
        :: !fail;
    if r.calib_error >= r.base_error then
      fail :=
        Printf.sprintf "calib_error %.4f did not beat base %.4f" r.calib_error
          r.base_error
        :: !fail;
    if d.votes_to_flag > d.window then
      fail :=
        Printf.sprintf "spammer flagged after %d votes > window %d"
          d.votes_to_flag d.window
        :: !fail;
    if d.recals < 1 then fail := "no standing jury re-selected" :: !fail;
    if d.live_accuracy < d.static_accuracy then
      fail :=
        Printf.sprintf "live accuracy %.4f below static %.4f" d.live_accuracy
          d.static_accuracy
        :: !fail;
    if l.p95 > ingest_p95_gate_ns then
      fail :=
        Printf.sprintf "ingest p95 %.0f ns > %.0f" l.p95 ingest_p95_gate_ns
        :: !fail;
    match !fail with
    | [] -> print_endline "gate: ok"
    | fs ->
        List.iter (fun f -> Printf.eprintf "gate: %s\n" f) fs;
        exit 1
  end
