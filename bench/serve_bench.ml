(* Serving throughput benchmark: an in-process Serve.Service driven by
   closed-loop client threads, at 1, 2 and the recommended number of
   executor domains.  Each row reports sustained request throughput and
   client-side latency quantiles; the summary compares the widest row
   against the single-domain row (on a multi-core host the scheduler
   should scale; on a 1-core host the rows collapse and speedup ~ 1).

   The mix is the serving hot path: same-pool jq queries (exercising the
   batcher and the per-version memo) and selects over a rotating set of
   seeds (exercising warm Objective_cache replays).

   Flags:
     --fast        short rows (~0.5 s) for CI
     --seconds S   row duration (default 3.0)

   Results are dumped as BENCH_serve.json. *)

module Wire = Serve.Wire

type row = {
  domains : int;
  requests : int;
  overloads : int;
  errors : int;
  wall_s : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
}

let pool_size = 40
let budget = 12.
let seeds = 16
let clients_per_domain = 2

let bench_row ~duration ~workers ~domains =
  let service =
    Serve.Service.create ~domains ~queue_capacity:1024 ()
  in
  (match
     Serve.Service.submit service
       (Wire.Pool_put { name = "bench"; workers })
   with
  | Wire.Pool_info _ -> ()
  | r -> failwith ("pool-put: " ^ Wire.encode_response r));
  (* Warm-up: one solve per seed so the timed region measures the steady
     state (warm memo replays), not first-touch compilation of caches. *)
  for seed = 0 to seeds - 1 do
    ignore
      (Serve.Service.submit service
         (Wire.Select { pool = "bench"; budget; prior = [ 0.5; 0.5 ]; seed }))
  done;
  let n_clients = clients_per_domain * domains in
  let counts = Array.make n_clients (0, 0, 0) in
  let lats = Array.make n_clients [] in
  let t_start = Unix.gettimeofday () in
  let t_end = t_start +. duration in
  let client i =
    let rng = Prob.Rng.create (100 + i) in
    let sent = ref 0 and overload = ref 0 and errors = ref 0 in
    let acc = ref [] in
    while Unix.gettimeofday () < t_end do
      let request =
        (* 3:1 jq-to-select, interleaved deterministically per thread. *)
        if !sent mod 4 < 3 then
          Wire.Jq
            {
              source = Wire.Named "bench";
              prior = [ 0.5; 0.5 ];
              num_buckets = Jq.Bucket.default_num_buckets;
            }
        else
          Wire.Select
            { pool = "bench"; budget; prior = [ 0.5; 0.5 ]; seed = Prob.Rng.int rng seeds }
      in
      let t0 = Unix.gettimeofday () in
      let reply = Serve.Service.submit service request in
      let t1 = Unix.gettimeofday () in
      incr sent;
      acc := (t1 -. t0) :: !acc;
      (match reply with
      | Wire.Jq_result _ | Wire.Select_result _ -> ()
      | Wire.Error { code = Wire.Overload; _ } -> incr overload
      | Wire.Error _ -> incr errors
      | _ -> incr errors)
    done;
    counts.(i) <- (!sent, !overload, !errors);
    lats.(i) <- !acc
  in
  let threads = List.init n_clients (fun i -> Thread.create client i) in
  List.iter Thread.join threads;
  let wall_s = Unix.gettimeofday () -. t_start in
  Serve.Service.shutdown service;
  let requests = Array.fold_left (fun a (s, _, _) -> a + s) 0 counts in
  let overloads = Array.fold_left (fun a (_, o, _) -> a + o) 0 counts in
  let errors = Array.fold_left (fun a (_, _, e) -> a + e) 0 counts in
  let all = Array.of_list (List.concat (Array.to_list lats)) in
  let q p = if Array.length all = 0 then 0. else 1000. *. Prob.Stats.quantile all p in
  {
    domains;
    requests;
    overloads;
    errors;
    wall_s;
    p50_ms = q 0.5;
    p95_ms = q 0.95;
    p99_ms = q 0.99;
  }

let row_json r =
  Printf.sprintf
    "{\"domains\": %d, \"requests\": %d, \"throughput_rps\": %.1f, \
     \"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": %.3f, \
     \"overloads\": %d, \"errors\": %d}"
    r.domains r.requests
    (float_of_int r.requests /. r.wall_s)
    r.p50_ms r.p95_ms r.p99_ms r.overloads r.errors

let () =
  let duration = ref 3.0 in
  let rec parse = function
    | [] -> ()
    | "--fast" :: rest ->
        duration := 0.5;
        parse rest
    | "--seconds" :: s :: rest ->
        duration := float_of_string s;
        parse rest
    | arg :: _ -> failwith ("unknown argument " ^ arg)
  in
  parse (List.tl (Array.to_list Sys.argv));
  let pool =
    Workers.Generator.gaussian_pool (Prob.Rng.create 7)
      Workers.Generator.default pool_size
  in
  let workers =
    List.map
      (fun w -> Wire.Scalar (Workers.Worker.quality w, Workers.Worker.cost w))
      (Workers.Pool.to_list pool)
  in
  let widths =
    List.sort_uniq compare [ 1; 2; Serve.Service.recommended_domains () ]
  in
  let rows =
    List.map
      (fun domains ->
        let r = bench_row ~duration:!duration ~workers ~domains in
        Printf.eprintf "domains=%d: %s\n%!" domains (row_json r);
        r)
      widths
  in
  let throughput r = float_of_int r.requests /. r.wall_s in
  let base = List.hd rows in
  let widest = List.nth rows (List.length rows - 1) in
  let speedup =
    if throughput base > 0. then throughput widest /. throughput base else 0.
  in
  let json =
    Printf.sprintf
      "{\"bench\": \"serve\", \"pool_size\": %d, \"budget\": %.2f, \
       \"seconds_per_row\": %.2f, \"rows\": [%s], \
       \"speedup_vs_1_domain\": %.2f}\n"
      pool_size budget !duration
      (String.concat ", " (List.map row_json rows))
      speedup
  in
  let oc = open_out "BENCH_serve.json" in
  output_string oc json;
  close_out oc;
  print_string json
