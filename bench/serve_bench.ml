(* Serving throughput benchmark: an in-process Serve.Service driven by
   closed-loop client threads, at 1, 2 and 4 executor domains.  Each row
   reports sustained request throughput and client-side latency
   quantiles; the summary compares the 2-domain and widest rows against
   the single-domain row.  On a multi-core host the sharded plane should
   scale; on a 1-core host true parallel speedup is impossible, but the
   sharded queues and per-domain metrics must not *lose* throughput to
   contention the way a single global lock does.

   The mix is the serving hot path: same-pool jq queries (exercising the
   batcher and the per-version memo) and selects over a rotating set of
   seeds (exercising warm Objective_cache replays).

   A second section exercises the connection plane over real TCP: rows
   of 100 and 1000 simultaneously open connections against a running
   Serve.Server, where a small active subset runs closed-loop jq
   requests while the rest sit idle on the event loop.  Each row reports
   how fast the loop drained the accept burst and the active clients'
   reply latency quantiles — the regression this catches is the
   connection plane itself (accept path, readiness bookkeeping, timer
   scans) degrading as open-connection count grows.

   Flags:
     --fast        short rows (~1 s) for CI
     --seconds S   row duration (default 3.0)
     --gate        exit 1 when any row has errors, when
                   speedup_vs_1_domain falls below the core-aware
                   threshold (1.3 on >= 2 cores, 0.8 on a 1-core host
                   where only contention overhead is measurable), or
                   when a connection row sheds/errors/fails to hold its
                   conns or its active p95 exceeds 1 s

   Results are dumped as BENCH_serve.json. *)

module Wire = Serve.Wire

(* Four pools whose names land on distinct shards at 4 shards and split
   2/2 at 2 shards (affinity is [Hashtbl.hash name mod shards]), so the
   scaling rows measure the sharded plane itself rather than the luck of
   the hash.  Every pool holds the same generated worker set. *)
let pool_names = [| "bench-1"; "bench-2"; "bench-12"; "bench-0" |]

type row = {
  domains : int;
  requests : int;
  overloads : int;
  errors : int;
  wall_s : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
}

let pool_size = 40
let budget = 12.
let seeds = 8

(* Closed-loop offered load is held constant across rows — two clients
   per pool — so the domain axis varies service parallelism only. *)
let n_clients = 2 * 4

let bench_row ~duration ~workers ~domains =
  let service =
    Serve.Service.create ~domains ~queue_capacity:1024 ()
  in
  Array.iter
    (fun name ->
      match
        Serve.Service.submit service (Wire.Pool_put { name; workers })
      with
      | Wire.Pool_info _ -> ()
      | r -> failwith ("pool-put: " ^ Wire.encode_response r))
    pool_names;
  (* Warm-up: one thread per pool solves every seed on that pool.
     Affinity routes each pool's solves to the executor that will own it
     in the timed region, so measurements start from warm memo replays
     rather than first-touch full solves. *)
  let warm_threads =
    Array.to_list
      (Array.map
         (fun pool ->
           Thread.create
             (fun () ->
               for seed = 0 to seeds - 1 do
                 ignore
                   (Serve.Service.submit service
                      (Wire.Select
                         { pool; budget; prior = [ 0.5; 0.5 ]; seed }))
               done)
             ())
         pool_names)
  in
  List.iter Thread.join warm_threads;
  let counts = Array.make n_clients (0, 0, 0) in
  let lats = Array.make n_clients [] in
  let t_start = Serve.Clock.now () in
  let t_end = t_start +. duration in
  let client i =
    let pool = pool_names.(i mod Array.length pool_names) in
    let rng = Prob.Rng.create (100 + i) in
    let sent = ref 0 and overload = ref 0 and errors = ref 0 in
    let acc = ref [] in
    while Serve.Clock.now () < t_end do
      let request =
        (* 3:1 jq-to-select on the client's own pool, interleaved
           deterministically per thread — contiguous same-pool jq
           queries are the batcher's coalescing case. *)
        if !sent mod 4 < 3 then
          Wire.Jq
            {
              source = Wire.Named pool;
              prior = [ 0.5; 0.5 ];
              num_buckets = Jq.Bucket.default_num_buckets;
            }
        else
          Wire.Select
            { pool; budget; prior = [ 0.5; 0.5 ]; seed = Prob.Rng.int rng seeds }
      in
      let t0 = Serve.Clock.now () in
      let reply = Serve.Service.submit service request in
      let t1 = Serve.Clock.now () in
      incr sent;
      acc := (t1 -. t0) :: !acc;
      (match reply with
      | Wire.Jq_result _ | Wire.Select_result _ -> ()
      | Wire.Error { code = Wire.Overload; _ } -> incr overload
      | Wire.Error _ -> incr errors
      | _ -> incr errors)
    done;
    counts.(i) <- (!sent, !overload, !errors);
    lats.(i) <- !acc
  in
  let threads = List.init n_clients (fun i -> Thread.create client i) in
  List.iter Thread.join threads;
  let wall_s = Serve.Clock.now () -. t_start in
  Serve.Service.shutdown service;
  let requests = Array.fold_left (fun a (s, _, _) -> a + s) 0 counts in
  let overloads = Array.fold_left (fun a (_, o, _) -> a + o) 0 counts in
  let errors = Array.fold_left (fun a (_, _, e) -> a + e) 0 counts in
  (match Serve.Service.submit service Wire.Stats with
  | Wire.Stats_result kv ->
      List.iter
        (fun (k, v) ->
          match k with
          | "batches" | "batched_saved" | "steals" | "jq_memo_hits"
          | "requests" | "overloads" ->
              Printf.eprintf "  %s=%.0f" k v
          | _ -> ())
        kv;
      Printf.eprintf "\n%!"
  | _ -> ());
  let all = Array.of_list (List.concat (Array.to_list lats)) in
  let q p = if Array.length all = 0 then 0. else 1000. *. Prob.Stats.quantile all p in
  {
    domains;
    requests;
    overloads;
    errors;
    wall_s;
    p50_ms = q 0.5;
    p95_ms = q 0.95;
    p99_ms = q 0.99;
  }

let row_json r =
  Printf.sprintf
    "{\"domains\": %d, \"requests\": %d, \"throughput_rps\": %.1f, \
     \"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": %.3f, \
     \"overloads\": %d, \"errors\": %d}"
    r.domains r.requests
    (float_of_int r.requests /. r.wall_s)
    r.p50_ms r.p95_ms r.p99_ms r.overloads r.errors

(* ---- connection-scaling rows (real TCP against a Server) ------------ *)

type conn_row = {
  conns : int;
  held : int; (* conns_open once the accept burst drained *)
  accept_s : float;
  accepted_per_s : float;
  c_requests : int;
  c_overloads : int;
  c_errors : int;
  rejected : int;
  timeouts : int;
  c_p50_ms : float;
  c_p95_ms : float;
  c_p99_ms : float;
}

let active_clients = 8

let stat service key =
  match List.assoc_opt key (Serve.Service.stats service) with
  | Some v -> v
  | None -> 0.

let bench_conns ~duration ~workers ~conns:n =
  (* Headroom: n client fds here + n accepted fds in the server + the
     process's own descriptors, all in one process. *)
  let need = (2 * n) + 512 in
  if Serve.Evloop.rlimit_nofile () < need then
    ignore (Serve.Evloop.rlimit_nofile ~set:need ());
  let service = Serve.Service.create ~domains:2 ~queue_capacity:1024 () in
  let pool = "bench-1" in
  (match Serve.Service.submit service (Wire.Pool_put { name = pool; workers })
   with
  | Wire.Pool_info _ -> ()
  | r -> failwith ("pool-put: " ^ Wire.encode_response r));
  let server =
    Serve.Server.create ~backlog:1024 ~max_conns:(n + 16) ~idle_timeout:30.
      ~port:0 service
  in
  Serve.Server.start server;
  let port = Serve.Server.port server in
  let addr = Unix.ADDR_INET (Unix.inet_addr_loopback, port) in
  (* Accept burst: open every connection, then wait for the event loop
     to drain the backlog (conns_open is the server's own gauge). *)
  let t0 = Serve.Clock.now () in
  let fds =
    Array.init n (fun _ ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.connect fd addr;
        fd)
  in
  let deadline = Serve.Clock.now () +. 30. in
  while stat service "conns_open" < float_of_int n
        && Serve.Clock.now () < deadline do
    Thread.yield ()
  done;
  let accept_s = Serve.Clock.now () -. t0 in
  let held = int_of_float (stat service "conns_open") in
  (* Active subset: closed-loop jq on the first [active_clients]
     already-open connections while the other n - [active_clients]
     connections idle on the loop. *)
  let counts = Array.make active_clients (0, 0, 0) in
  let lats = Array.make active_clients [] in
  let t_end = Serve.Clock.now () +. duration in
  let client i =
    let ic = Unix.in_channel_of_descr fds.(i) in
    let oc = Unix.out_channel_of_descr fds.(i) in
    let sent = ref 0 and overload = ref 0 and errors = ref 0 in
    let acc = ref [] in
    let request =
      Wire.encode_request
        (Wire.Jq
           {
             source = Wire.Named pool;
             prior = [ 0.5; 0.5 ];
             num_buckets = Jq.Bucket.default_num_buckets;
           })
    in
    (try
       while Serve.Clock.now () < t_end do
         let t0 = Serve.Clock.now () in
         output_string oc request;
         output_char oc '\n';
         flush oc;
         let reply = input_line ic in
         let t1 = Serve.Clock.now () in
         incr sent;
         acc := (t1 -. t0) :: !acc;
         match Wire.decode_response reply with
         | Ok (Wire.Jq_result _) -> ()
         | Ok (Wire.Error { code = Wire.Overload; _ }) -> incr overload
         | Ok _ | Error _ -> incr errors
       done
     with End_of_file | Sys_error _ | Unix.Unix_error _ -> incr errors);
    counts.(i) <- (!sent, !overload, !errors);
    lats.(i) <- !acc
  in
  let threads = List.init active_clients (fun i -> Thread.create client i) in
  List.iter Thread.join threads;
  let rejected = int_of_float (stat service "conns_rejected") in
  let timeouts = int_of_float (stat service "read_timeouts") in
  Array.iter
    (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    fds;
  Serve.Server.stop server;
  Serve.Service.shutdown service;
  let c_requests = Array.fold_left (fun a (s, _, _) -> a + s) 0 counts in
  let c_overloads = Array.fold_left (fun a (_, o, _) -> a + o) 0 counts in
  let c_errors = Array.fold_left (fun a (_, _, e) -> a + e) 0 counts in
  let all = Array.of_list (List.concat (Array.to_list lats)) in
  let q p =
    if Array.length all = 0 then 0. else 1000. *. Prob.Stats.quantile all p
  in
  {
    conns = n;
    held;
    accept_s;
    accepted_per_s = (if accept_s > 0. then float_of_int held /. accept_s else 0.);
    c_requests;
    c_overloads;
    c_errors;
    rejected;
    timeouts;
    c_p50_ms = q 0.5;
    c_p95_ms = q 0.95;
    c_p99_ms = q 0.99;
  }

let conn_row_json r =
  Printf.sprintf
    "{\"conns\": %d, \"held\": %d, \"accept_s\": %.3f, \
     \"accepted_per_s\": %.0f, \"requests\": %d, \"p50_ms\": %.3f, \
     \"p95_ms\": %.3f, \"p99_ms\": %.3f, \"overloads\": %d, \
     \"errors\": %d, \"rejected\": %d, \"read_timeouts\": %d}"
    r.conns r.held r.accept_s r.accepted_per_s r.c_requests r.c_p50_ms
    r.c_p95_ms r.c_p99_ms r.c_overloads r.c_errors r.rejected r.timeouts

let () =
  (* Executor domains size their own minor heaps (Serve.Service); the
     client threads allocate in this domain, whose collections handshake
     with every executor just the same. *)
  Gc.set { (Gc.get ()) with minor_heap_size = 4 * 1024 * 1024 };
  (* The connection rows write into sockets the server may close first. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let duration = ref 3.0 in
  let gate = ref false in
  let rec parse = function
    | [] -> ()
    | "--fast" :: rest ->
        duration := 1.0;
        parse rest
    | "--seconds" :: s :: rest ->
        duration := float_of_string s;
        parse rest
    | "--gate" :: rest ->
        gate := true;
        parse rest
    | arg :: _ -> failwith ("unknown argument " ^ arg)
  in
  parse (List.tl (Array.to_list Sys.argv));
  let pool =
    Workers.Generator.gaussian_pool (Prob.Rng.create 7)
      Workers.Generator.default pool_size
  in
  let workers =
    List.map
      (fun w -> Wire.Scalar (Workers.Worker.quality w, Workers.Worker.cost w))
      (Workers.Pool.to_list pool)
  in
  let widths = [ 1; 2; 4 ] in
  let rows =
    List.map
      (fun domains ->
        let r = bench_row ~duration:!duration ~workers ~domains in
        Printf.eprintf "domains=%d: %s\n%!" domains (row_json r);
        r)
      widths
  in
  let throughput r = float_of_int r.requests /. r.wall_s in
  let base = List.hd rows in
  let widest = List.nth rows (List.length rows - 1) in
  let speedup_of r =
    if throughput base > 0. then throughput r /. throughput base else 0.
  in
  let speedup = speedup_of widest in
  let scaling_2d =
    match List.find_opt (fun r -> r.domains = 2) rows with
    | Some r -> speedup_of r
    | None -> speedup
  in
  let cores = Domain.recommended_domain_count () in
  (* On a single-core host the executor domains time-slice one CPU, so a
     parallel speedup target is meaningless; what the gate can still
     catch there is the contention-collapse regression this bench was
     built to expose (the global-lock plane scored 0.65-0.73).  The
     sharded plane measures ~0.86-0.96 here; 0.8 splits the two with
     margin for run-to-run noise. *)
  let threshold = if cores >= 2 then 1.3 else 0.8 in
  let total_errors = List.fold_left (fun a r -> a + r.errors) 0 rows in
  let conn_rows =
    List.map
      (fun conns ->
        let r = bench_conns ~duration:!duration ~workers ~conns in
        Printf.eprintf "conns=%d: %s\n%!" conns (conn_row_json r);
        r)
      [ 100; 1000 ]
  in
  let json =
    Printf.sprintf
      "{\"bench\": \"serve\", \"pool_size\": %d, \"budget\": %.2f, \
       \"seconds_per_row\": %.2f, \"cores\": %d, \"rows\": [%s], \
       \"conn_rows\": [%s], \"scaling_2d\": %.2f, \
       \"speedup_vs_1_domain\": %.2f, \"gate_threshold\": %.2f}\n"
      pool_size budget !duration cores
      (String.concat ", " (List.map row_json rows))
      (String.concat ", " (List.map conn_row_json conn_rows))
      scaling_2d speedup threshold
  in
  let oc = open_out "BENCH_serve.json" in
  output_string oc json;
  close_out oc;
  print_string json;
  if !gate then begin
    if total_errors > 0 then begin
      Printf.eprintf "GATE FAIL: %d request errors across rows\n%!"
        total_errors;
      exit 1
    end;
    if speedup < threshold then begin
      Printf.eprintf
        "GATE FAIL: speedup_vs_1_domain %.2f < %.2f (host has %d core%s)\n%!"
        speedup threshold cores
        (if cores = 1 then "" else "s");
      exit 1
    end;
    List.iter
      (fun r ->
        if r.held < r.conns then begin
          Printf.eprintf
            "GATE FAIL: held %d of %d connections after the accept burst\n%!"
            r.held r.conns;
          exit 1
        end;
        if r.rejected > 0 || r.c_errors > 0 || r.timeouts > 0 then begin
          Printf.eprintf
            "GATE FAIL: conns=%d rejected=%d errors=%d read_timeouts=%d\n%!"
            r.conns r.rejected r.c_errors r.timeouts;
          exit 1
        end;
        (* Generous: active p95 must not collapse as idle conns scale. *)
        if r.c_p95_ms > 1000. then begin
          Printf.eprintf "GATE FAIL: conns=%d active p95 %.1f ms > 1000 ms\n%!"
            r.conns r.c_p95_ms;
          exit 1
        end)
      conn_rows;
    Printf.eprintf
      "GATE OK: speedup %.2f >= %.2f on %d core%s, 0 errors, conn rows clean\n%!"
      speedup threshold cores
      (if cores = 1 then "" else "s")
  end
