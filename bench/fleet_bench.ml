(* Fleet allocator benchmark: price-based shared-pool assignment at 1k
   and 10k concurrent tasks on one pool.

   Each row bulk-loads n tasks (a handful of distinct signatures, so the
   shared-inner-solve path is exercised the way a platform's task mix
   would) through [submit_all], then drives a steady-state churn of
   single-task decide/arrive cycles — the delta path.  Reported per row:

   - bulk allocation throughput (tasks/s) and the aggregate JQ of the
     price-based result vs the independent-greedy-with-eviction
     baseline on the identical instance;
   - non-overlap violations (must be zero by construction);
   - delta submit/release latency quantiles over the churn;
   - the cost of one delta re-solve after a single decide vs one cold
     full re-allocation of every resident task.

   Flags:
     --fast    1k + 2k rows and a shorter churn (CI)
     --gate    exit 1 unless, on the largest row: aggregate strictly
               beats the greedy baseline, violations = 0, delta-submit
               p95 stays under 50 ms, and the delta re-solve is >= 5x
               faster than the cold full re-allocation

   Results are dumped as BENCH_fleet.json. *)

let pool_size = 200
let submit_p95_gate_ns = 50e6
let delta_speedup_gate = 5.

let quantile samples p =
  if Array.length samples = 0 then 0. else Prob.Stats.quantile samples p

(* A platform's task mix: a few priors, budgets and tiers — many tasks,
   few signatures, which is what the proposal cache feeds on. *)
let spec_of i =
  let alphas = [| 0.3; 0.5; 0.7 |] in
  let budgets = [| 2.; 4. |] in
  Fleet.Spec.make
    ~tier:(i mod 3)
    ~id:(Printf.sprintf "t%d" i)
    ~prior:
      (let a = alphas.(i mod Array.length alphas) in
       [| a; 1. -. a |])
    ~budget:budgets.(i / 3 mod Array.length budgets)
    ()

type row = {
  tasks : int;
  bulk_s : float;
  tasks_per_s : float;
  aggregate : float;
  baseline : float;
  violations : int;
  contention : float;
  submit_p50 : float;
  submit_p95 : float;
  submit_p99 : float;
  release_p50 : float;
  release_p95 : float;
  delta_ns : float;
  full_ns : float;
  delta_speedup : float;
  price_rounds : int;
  inner_solves : int;
  proposal_hits : int;
}

let run_row ~tasks ~churn =
  let pool =
    Engine.Pool.of_workers
      (Workers.Generator.gaussian_pool (Prob.Rng.create 7)
         Workers.Generator.default pool_size)
  in
  let t = Fleet.Allocator.create ~pool ~version:1 () in
  let specs = List.init tasks spec_of in
  let t0 = Serve.Clock.now () in
  ignore (Fleet.Allocator.submit_all t specs);
  let bulk_s = Serve.Clock.now () -. t0 in
  let aggregate = Fleet.Allocator.aggregate t in
  let baseline = Fleet.Allocator.baseline_aggregate t in
  let violations = Fleet.Allocator.violations t in
  let contention = Fleet.Allocator.contention t in
  (* Steady-state churn: decide the oldest resident, admit a fresh
     arrival — every cycle runs the delta path twice. *)
  let submit_lats = Array.make churn 0. in
  let release_lats = Array.make churn 0. in
  for i = 0 to churn - 1 do
    let old_id = Printf.sprintf "t%d" i in
    let r0 = Serve.Clock.now () in
    ignore (Fleet.Allocator.release t ~id:old_id ~decided:true);
    release_lats.(i) <- 1e9 *. (Serve.Clock.now () -. r0);
    let s0 = Serve.Clock.now () in
    ignore (Fleet.Allocator.submit t (spec_of (tasks + i)));
    submit_lats.(i) <- 1e9 *. (Serve.Clock.now () -. s0)
  done;
  if Fleet.Allocator.violations t <> 0 then
    failwith "non-overlap violated after churn";
  (* One delta re-solve after a single decide, vs one cold full
     re-allocation of everything resident — the acceptance ratio. *)
  let d0 = Serve.Clock.now () in
  ignore (Fleet.Allocator.release t ~id:(Printf.sprintf "t%d" churn) ~decided:true);
  let delta_ns = 1e9 *. (Serve.Clock.now () -. d0) in
  let f0 = Serve.Clock.now () in
  Fleet.Allocator.reallocate t;
  let full_ns = 1e9 *. (Serve.Clock.now () -. f0) in
  let st = Fleet.Allocator.stats t in
  {
    tasks;
    bulk_s;
    tasks_per_s = float_of_int tasks /. Float.max 1e-9 bulk_s;
    aggregate;
    baseline;
    violations;
    contention;
    submit_p50 = quantile submit_lats 0.5;
    submit_p95 = quantile submit_lats 0.95;
    submit_p99 = quantile submit_lats 0.99;
    release_p50 = quantile release_lats 0.5;
    release_p95 = quantile release_lats 0.95;
    delta_ns;
    full_ns;
    delta_speedup = full_ns /. Float.max 1. delta_ns;
    price_rounds = st.price_rounds;
    inner_solves = st.inner_solves;
    proposal_hits = st.proposal_hits;
  }

let row_json r =
  Printf.sprintf
    "{\"tasks\": %d, \"bulk_s\": %.4f, \"tasks_per_s\": %.0f,\n\
    \  \"aggregate\": %.4f, \"baseline\": %.4f, \"violations\": %d, \
     \"contention\": %.3f,\n\
    \  \"submit_p50_ns\": %.0f, \"submit_p95_ns\": %.0f, \"submit_p99_ns\": \
     %.0f,\n\
    \  \"release_p50_ns\": %.0f, \"release_p95_ns\": %.0f,\n\
    \  \"delta_ns\": %.0f, \"full_ns\": %.0f, \"delta_speedup\": %.1f,\n\
    \  \"price_rounds\": %d, \"inner_solves\": %d, \"proposal_hits\": %d}"
    r.tasks r.bulk_s r.tasks_per_s r.aggregate r.baseline r.violations
    r.contention r.submit_p50 r.submit_p95 r.submit_p99 r.release_p50
    r.release_p95 r.delta_ns r.full_ns r.delta_speedup r.price_rounds
    r.inner_solves r.proposal_hits

let () =
  let sizes = ref [ 1_000; 10_000 ] in
  let churn = ref 200 in
  let gate = ref false in
  let rec parse = function
    | [] -> ()
    | "--fast" :: rest ->
        sizes := [ 1_000; 2_000 ];
        churn := 60;
        parse rest
    | "--gate" :: rest ->
        gate := true;
        parse rest
    | arg :: _ -> failwith ("unknown argument " ^ arg)
  in
  parse (List.tl (Array.to_list Sys.argv));
  let rows = List.map (fun tasks -> run_row ~tasks ~churn:!churn) !sizes in
  let json =
    Printf.sprintf "{\"pool_size\": %d, \"rows\": [\n%s\n]}" pool_size
      (String.concat ",\n" (List.map row_json rows))
  in
  let oc = open_out "BENCH_fleet.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  print_endline json;
  if !gate then begin
    let fail = ref [] in
    List.iter
      (fun r ->
        let tag msg = Printf.sprintf "%d tasks: %s" r.tasks msg in
        if r.violations <> 0 then
          fail := tag (Printf.sprintf "%d violations" r.violations) :: !fail;
        if r.aggregate <= r.baseline then
          fail :=
            tag
              (Printf.sprintf "aggregate %.4f does not beat baseline %.4f"
                 r.aggregate r.baseline)
            :: !fail;
        if r.submit_p95 > submit_p95_gate_ns then
          fail :=
            tag
              (Printf.sprintf "submit p95 %.0f ns > %.0f" r.submit_p95
                 submit_p95_gate_ns)
            :: !fail)
      rows;
    (let widest = List.nth rows (List.length rows - 1) in
     if widest.delta_speedup < delta_speedup_gate then
       fail :=
         Printf.sprintf "%d tasks: delta %.1fx < %.0fx vs full re-solve"
           widest.tasks widest.delta_speedup delta_speedup_gate
         :: !fail);
    match !fail with
    | [] -> print_endline "gate: ok"
    | fs ->
        List.iter (fun f -> Printf.eprintf "gate: %s\n" f) fs;
        exit 1
  end
