(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (section 6) and times the core computations with Bechamel.

   Phase 1 prints the rows/series of each artifact (fig1, fig2, fig6a-d,
   fig7a, tab3, fig7b, fig8a-b, fig9a-d, fig10a-d) via Expt.Experiments —
   the same drivers `optjs_cli expt` exposes.

   Phase 2 runs one Bechamel micro-benchmark per artifact, timing the
   computational kernel behind that figure (JQ estimation, exhaustive or
   annealed JSP, system comparison, per-question selection on the
   synthetic AMT data).

   Flags:
     --fast           smoke-test configuration (tiny reps; used by CI)
     --reps N         replications per plotted point (default 20)
     --questions N    synthetic-AMT questions for the fig10 sweeps
     --seed N         master seed
     --only ID        only the artifact ID (phase 1), e.g. --only fig6a
     --skip-rows      skip phase 1
     --skip-timing    skip phase 2
     --csv-dir DIR    also write each phase-1 table as CSV
     --smoke          one timed seed-vs-incremental comparison, written as
                      BENCH_jsp.json (CI smoke; combine with a positional
                      artifact id, e.g. `fig7b --reps 1 --smoke`)
     --multiclass     engine jq throughput and select latency at l = 2, 3, 5,
                      written as BENCH_multiclass.json; asserts the l = 2 row
                      stays within 5% of the binary solver (exits nonzero)

   A bare positional argument is shorthand for --only ID. *)

open Bechamel
open Toolkit

(* ---- Argument parsing ------------------------------------------------ *)

type options = {
  mutable config : Expt.Config.t;
  mutable only : string option;
  mutable skip_rows : bool;
  mutable skip_timing : bool;
  mutable skip_ablations : bool;
  mutable charts : bool;
  mutable csv_dir : string option;
  mutable smoke : bool;
  mutable multiclass : bool;
}

let parse_options () =
  let o =
    {
      config = Expt.Config.default;
      only = None;
      skip_rows = false;
      skip_timing = false;
      skip_ablations = false;
      charts = false;
      csv_dir = None;
      smoke = false;
      multiclass = false;
    }
  in
  let rec go = function
    | [] -> ()
    | "--fast" :: rest ->
        o.config <- { Expt.Config.fast with seed = o.config.Expt.Config.seed };
        go rest
    | "--reps" :: n :: rest ->
        o.config <- Expt.Config.with_reps (int_of_string n) o.config;
        go rest
    | "--questions" :: n :: rest ->
        o.config <- Expt.Config.with_questions (int_of_string n) o.config;
        go rest
    | "--seed" :: n :: rest ->
        o.config <- Expt.Config.with_seed (int_of_string n) o.config;
        go rest
    | "--domains" :: n :: rest ->
        o.config <- Expt.Config.with_domains (int_of_string n) o.config;
        go rest
    | "--only" :: id :: rest ->
        o.only <- Some id;
        go rest
    | "--skip-rows" :: rest ->
        o.skip_rows <- true;
        go rest
    | "--skip-timing" :: rest ->
        o.skip_timing <- true;
        go rest
    | "--skip-ablations" :: rest ->
        o.skip_ablations <- true;
        go rest
    | "--charts" :: rest ->
        o.charts <- true;
        go rest
    | "--csv-dir" :: dir :: rest ->
        o.csv_dir <- Some dir;
        go rest
    | "--smoke" :: rest ->
        o.smoke <- true;
        go rest
    | "--multiclass" :: rest ->
        o.multiclass <- true;
        go rest
    | arg :: rest when String.length arg > 0 && arg.[0] <> '-' ->
        o.only <- Some arg;
        go rest
    | arg :: _ -> failwith (Printf.sprintf "unknown argument %S" arg)
  in
  go (List.tl (Array.to_list Sys.argv));
  o

(* ---- Phase 1: experiment rows ----------------------------------------- *)

let print_rows o =
  let emit table =
    Expt.Report.print table;
    if o.charts then
      Option.iter print_string (Expt.Chart.render table);
    match o.csv_dir with
    | Some dir -> ignore (Expt.Report.save_csv ~dir table)
    | None -> ()
  in
  let lookup id =
    match Expt.Experiments.by_id id with
    | Some _ as d -> d
    | None -> Expt.Ablations.by_id id
  in
  match o.only with
  | Some id -> (
      match lookup id with
      | Some driver -> emit (driver ~config:o.config ())
      | None -> failwith (Printf.sprintf "unknown experiment %S" id))
  | None ->
      List.iter emit (Expt.Experiments.all ~config:o.config ());
      if not o.skip_ablations then
        List.iter emit (Expt.Ablations.all ~config:o.config ())

(* ---- Smoke: seed solver vs cached incremental --------------------------- *)

(* One timed comparison on the fig7b workload (annealed JSP at N = 500,
   B = 0.5) between the seed solver and the cached + incremental engine,
   dumped as BENCH_jsp.json so CI can assert on the speedup without parsing
   report tables. *)
let run_smoke o =
  (match o.only with
  | Some id when id <> "fig7b" ->
      failwith (Printf.sprintf "--smoke supports fig7b, not %S" id)
  | _ -> ());
  let config = o.config in
  let n = 500 in
  let budget = 0.5 in
  let pool =
    Workers.Generator.gaussian_pool
      (Prob.Rng.create config.Expt.Config.seed)
      config.Expt.Config.generator n
  in
  let _, seed_s =
    Expt.Series.timed (fun () ->
        Jsp.Annealing.solve ~params:config.Expt.Config.annealing
          (Jsp.Objective.bv_bucket ~num_buckets:config.Expt.Config.num_buckets ())
          ~rng:(Prob.Rng.create 7) ~alpha:config.Expt.Config.alpha ~budget pool)
  in
  let inc, inc_s =
    Expt.Series.timed (fun () ->
        Jsp.Annealing.solve_optjs ~params:config.Expt.Config.annealing
          ~num_buckets:config.Expt.Config.num_buckets
          ~rng:(Prob.Rng.create 7) ~alpha:config.Expt.Config.alpha ~budget pool)
  in
  let hits, misses =
    match inc.Jsp.Solver.cache with
    | Some s -> (s.Jsp.Objective_cache.hits, s.Jsp.Objective_cache.misses)
    | None -> (0, 0)
  in
  let speedup = if inc_s > 0. then seed_s /. inc_s else Float.infinity in
  let json =
    Printf.sprintf
      "{\"bench\": \"fig7b\", \"n\": %d, \"budget\": %.2f, \
       \"seed_solver_s\": %.6f, \"cached_incremental_s\": %.6f, \
       \"speedup\": %.2f, \"cache_hits\": %d, \"cache_misses\": %d, \
       \"evaluations\": %d}\n"
      n budget seed_s inc_s speedup hits misses inc.Jsp.Solver.evaluations
  in
  let oc = open_out "BENCH_jsp.json" in
  output_string oc json;
  close_out oc;
  print_string json

(* ---- Multiclass: engine throughput at l = 2, 3, 5 ----------------------- *)

(* JQ throughput and select latency through the task-model engine, dumped
   as BENCH_multiclass.json.  The l = 2 row is the fig7b workload (N = 500,
   B = 0.5) run via [solve_engine]; because the engine's Binary branch
   delegates to [solve_optjs] verbatim, it must stay within 5% of an
   in-process [solve_optjs] baseline — a larger gap means dispatch overhead
   crept into the binary hot path, and the run exits nonzero. *)
let run_multiclass o =
  let config = o.config in
  let seed = config.Expt.Config.seed in
  let params = config.Expt.Config.annealing in
  let num_buckets = config.Expt.Config.num_buckets in
  let best_of k f =
    let best = ref infinity in
    for _ = 1 to k do
      let _, s = Expt.Series.timed f in
      if s < !best then best := s
    done;
    !best
  in
  let jq_per_s ~reps epool task =
    let objective = Engine.Objective.bv_bucket ~num_buckets () in
    let _, s =
      Expt.Series.timed (fun () ->
          for _ = 1 to reps do
            ignore (Engine.Objective.score objective ~task epool)
          done)
    in
    if s > 0. then float_of_int reps /. s else Float.infinity
  in
  let matrix_pool ~labels n =
    let rng = Prob.Rng.create (seed + labels) in
    let scalar =
      Workers.Generator.gaussian_pool rng config.Expt.Config.generator n
    in
    Engine.Pool.of_confusions
      (Array.of_list
         (List.mapi
            (fun id w ->
              let d = Workers.Worker.quality w in
              let off = (1. -. d) /. float_of_int (labels - 1) in
              let matrix =
                Array.init labels (fun j ->
                    Array.init labels (fun v -> if j = v then d else off))
              in
              Workers.Confusion.make ~id ~matrix
                ~cost:(Workers.Worker.cost w)
                ())
            (Workers.Pool.to_list scalar)))
  in
  (* l = 2: the fig7b cell, engine vs direct binary solver. *)
  let n2 = 500 and budget2 = 0.5 in
  let pool2 =
    Workers.Generator.gaussian_pool (Prob.Rng.create seed)
      config.Expt.Config.generator n2
  in
  let epool2 = Engine.Pool.of_workers pool2 in
  let task2 = Engine.Task.binary ~alpha:config.Expt.Config.alpha in
  let baseline_s =
    best_of 3 (fun () ->
        Jsp.Annealing.solve_optjs ~params ~num_buckets
          ~rng:(Prob.Rng.create 7)
          ~alpha:config.Expt.Config.alpha ~budget:budget2 pool2)
  in
  let select2_s =
    best_of 3 (fun () ->
        Jsp.Annealing.solve_engine ~params ~num_buckets
          ~rng:(Prob.Rng.create 7)
          ~task:task2 ~budget:budget2 epool2)
  in
  let ratio = select2_s /. baseline_s in
  let jq2 = jq_per_s ~reps:20 epool2 task2 in
  (* Matrix pools: smaller n — every move rescoring is l-tuple work. *)
  let matrix_row ~labels ~n ~reps =
    let epool = matrix_pool ~labels n in
    let task =
      Engine.Task.make
        ~prior:(Array.make labels (1. /. float_of_int labels))
    in
    let budget = 0.5 *. Engine.Pool.total_cost epool in
    let jq = jq_per_s ~reps epool task in
    let select_s =
      best_of 3 (fun () ->
          Jsp.Annealing.solve_engine ~params ~num_buckets
            ~rng:(Prob.Rng.create 7)
            ~task ~budget epool)
    in
    Printf.sprintf
      "{\"labels\": %d, \"n\": %d, \"jq_per_s\": %.1f, \"select_s\": %.6f}"
      labels n jq select_s
  in
  (* Full-pool tuple-key evals grow steeply in l and n (~0.2 s at l=3
     n=12, ~2 s at l=5 n=8); these sizes keep the smoke under a minute. *)
  let row3 = matrix_row ~labels:3 ~n:12 ~reps:5 in
  let row5 = matrix_row ~labels:5 ~n:6 ~reps:5 in
  let json =
    Printf.sprintf
      "{\"bench\": \"multiclass\", \"rows\": [\n\
      \  {\"labels\": 2, \"n\": %d, \"jq_per_s\": %.1f, \"select_s\": %.6f, \
       \"baseline_optjs_s\": %.6f, \"ratio\": %.3f},\n\
      \  %s,\n\
      \  %s\n\
       ]}\n"
      n2 jq2 select2_s baseline_s ratio row3 row5
  in
  let oc = open_out "BENCH_multiclass.json" in
  output_string oc json;
  close_out oc;
  print_string json;
  if ratio > 1.05 then begin
    Printf.eprintf
      "FAIL: engine l=2 select is %.1f%% slower than solve_optjs (limit 5%%)\n"
      ((ratio -. 1.) *. 100.);
    exit 1
  end

(* ---- Phase 2: Bechamel timing ------------------------------------------ *)

(* Fixed inputs shared by the timing kernels, prepared once outside the
   timed region. *)
let bench_tests config =
  let gen = Workers.Generator.default in
  let rng = Prob.Rng.create 987 in
  let pool7 = Workers.Generator.figure1_pool () in
  let pool11 = Workers.Generator.gaussian_pool rng gen 11 in
  let pool50 = Workers.Generator.gaussian_pool rng gen 50 in
  let pool100 = Workers.Generator.gaussian_pool rng gen 100 in
  let q11 = Workers.Pool.qualities pool11 in
  let q200 =
    Workers.Pool.qualities (Workers.Generator.gaussian_pool rng gen 200)
  in
  let annealing = config.Expt.Config.annealing in
  let dataset = Crowd.Amt_dataset.generate (Prob.Rng.create 4242) in
  let costs = Array.make 128 0.05 in
  let amt_pool = Crowd.Amt_dataset.candidate_pool dataset ~costs ~task_id:0 in
  let solve_rng = Prob.Rng.create 31337 in
  let test name f = Test.make ~name (Staged.stage f) in
  [
    test "fig1/budget-quality-table (exact, N=7)" (fun () ->
        Jsp.Table.build ~budgets:[ 5.; 10.; 15.; 20. ] pool7
          ~solve:(fun ~budget pool ->
            Jsp.Enumerate.solve Jsp.Objective.bv_exact ~alpha:0.5 ~budget pool));
    test "fig2/exact-jq-enumeration (n=3)" (fun () ->
        Jq.Exact.jq Voting.Bayesian.strategy ~alpha:0.5
          ~qualities:Workers.Generator.example2_qualities);
    test "fig6/system-comparison-point (N=50)" (fun () ->
        let mv =
          Jsp.Mvjs.select ~params:annealing ~rng:solve_rng ~alpha:0.5 ~budget:0.5
            pool50
        in
        let opt =
          Optjs.select_jury ~rng:solve_rng ~alpha:0.5 ~budget:0.5 pool50
        in
        (mv.Jsp.Solver.score, opt.Jsp.Solver.score));
    test "fig7a+tab3/exhaustive-jsp (N=11)" (fun () ->
        Jsp.Enumerate.solve_bv ~alpha:0.5 ~budget:0.3 pool11);
    test "fig7b/annealed-jsp (N=100)" (fun () ->
        Jsp.Annealing.solve ~params:annealing (Jsp.Objective.bv_bucket ())
          ~rng:solve_rng ~alpha:0.5 ~budget:0.5 pool100);
    test "fig8/four-strategy-exact-jq (n=11)" (fun () ->
        List.map
          (fun s -> Jq.Exact.jq s ~alpha:0.5 ~qualities:q11)
          Voting.Registry.comparison_set);
    test "fig9a/bucket-estimate (n=11, buckets=50)" (fun () ->
        Jq.Bucket.estimate ~num_buckets:50 q11);
    test "fig9b+c/bucket-estimate (n=11, buckets=200)" (fun () ->
        Jq.Bucket.estimate ~num_buckets:200 q11);
    test "fig9d/bucket-estimate-pruned (n=200)" (fun () ->
        Jq.Bucket.estimate ~pruning:true q200);
    test "fig9d/bucket-estimate-unpruned (n=200)" (fun () ->
        Jq.Bucket.estimate ~pruning:false q200);
    test "fig10/per-question-jsp (synthetic AMT, N=20)" (fun () ->
        let mv =
          Jsp.Mvjs.select ~params:annealing ~rng:solve_rng ~alpha:0.5 ~budget:0.5
            amt_pool
        in
        let opt =
          Optjs.select_jury ~rng:solve_rng ~alpha:0.5 ~budget:0.5 amt_pool
        in
        (mv.Jsp.Solver.score, opt.Jsp.Solver.score));
    test "fig10d/first-z-grading (z=9, 600 questions)" (fun () ->
        Crowd.Evaluate.strategy_on_dataset ~strategy:Voting.Bayesian.strategy ~z:9
          dataset);
  ]

let run_timing config =
  let tests = bench_tests config in
  let grouped = Test.make_grouped ~name:"optjs" tests in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] grouped in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name result acc ->
        let ns =
          match Analyze.OLS.estimates result with
          | Some (x :: _) -> x
          | Some [] | None -> nan
        in
        (name, ns) :: acc)
      results []
  in
  let rows = List.sort compare rows in
  Printf.printf "== timing: Bechamel (monotonic clock, ns/run) ==\n";
  Printf.printf "%-55s  %s\n" "benchmark" "time/run";
  Printf.printf "%s  %s\n" (String.make 55 '-') (String.make 12 '-');
  List.iter
    (fun (name, ns) ->
      let human =
        if Float.is_nan ns then "n/a"
        else if ns >= 1e9 then Printf.sprintf "%.3f s" (ns /. 1e9)
        else if ns >= 1e6 then Printf.sprintf "%.3f ms" (ns /. 1e6)
        else if ns >= 1e3 then Printf.sprintf "%.3f us" (ns /. 1e3)
        else Printf.sprintf "%.0f ns" ns
      in
      Printf.printf "%-55s  %s\n" name human)
    rows;
  print_newline ()

let () =
  let o = parse_options () in
  if o.multiclass then run_multiclass o
  else if o.smoke then run_smoke o
  else begin
    if not o.skip_rows then print_rows o;
    if not o.skip_timing then run_timing o.config
  end
