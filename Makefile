.PHONY: all build test test-slow bench bench-smoke clean

all: build

build:
	dune build

test:
	dune runtest

# The alcotest `Slow cases (qcheck sweeps, SA-vs-exact) need the -e flag.
test-slow: build
	dune exec test/test_prob.exe -- -e
	dune exec test/test_jq.exe -- -e
	dune exec test/test_jsp.exe -- -e
	dune exec test/test_expt.exe -- -e

bench:
	dune exec bench/main.exe

# Fast CI smoke for the annealing hot path: one fig7b cell at N = 500,
# seed solver vs cached-incremental, emitting BENCH_jsp.json.
bench-smoke:
	dune exec bench/main.exe -- fig7b --reps 1 --smoke

clean:
	dune clean
	rm -f BENCH_jsp.json
