.PHONY: all build test test-slow bench bench-smoke bench-jq \
  bench-multiclass bench-serve bench-session bench-quality bench-fleet \
  serve-smoke clean

all: build

build:
	dune build

test:
	dune runtest

# The alcotest `Slow cases (qcheck sweeps, SA-vs-exact) need the -e flag.
test-slow: build
	dune exec test/test_prob.exe -- -e
	dune exec test/test_jq.exe -- -e
	dune exec test/test_jsp.exe -- -e
	dune exec test/test_expt.exe -- -e

bench:
	dune exec bench/main.exe

# Fast CI smoke for the annealing hot path: one fig7b cell at N = 500,
# seed solver vs cached-incremental, emitting BENCH_jsp.json; then the
# engine rows at l = 2, 3, 5 (BENCH_multiclass.json), whose l = 2 select
# must stay within 5% of the direct binary solver; then short gated
# serving rows at 1/2/4 domains (BENCH_serve.json) — the gate fails on
# any request error or on multi-domain speedup below the core-aware
# threshold (1.3 with >= 2 cores, 0.8 parity floor on 1 core); then the
# gated flat-vs-hashtbl kernel grid (BENCH_jq.json), which fails unless
# the dense kernel is >= 2x the hashtable at n=500/d=200 (binary) and
# >= 1.5x at l = 3 (multiclass); finally the gated session replay
# (BENCH_session.json), which fails unless adaptive sessions cost at
# most 0.8x the fixed jury with accuracy within 0.5 points and vote-verb
# p95 stays under its latency bound; last the gated quality-plane run
# (BENCH_quality.json), which fails unless the streaming calibrator's
# full-replay EM matches the offline Dawid-Skene fit within 1e-6, a
# mid-stream spammer is flagged within one drift window of votes with
# the standing jury re-selected past the stale one, and report-verb
# ingest p95 stays under its bound; and the gated fleet allocation rows
# (BENCH_fleet.json), which fail unless price-based shared-pool
# assignment beats the independent-greedy baseline on aggregate JQ with
# zero non-overlap violations, delta-submit p95 under 50 ms, and a
# single-decide delta re-solve >= 5x faster than a cold full
# re-allocation.
bench-smoke:
	dune exec bench/main.exe -- fig7b --reps 1 --smoke
	dune exec bench/main.exe -- --multiclass
	dune exec bench/serve_bench.exe -- --fast --gate
	dune exec bench/jq_bench.exe -- --fast --gate
	dune exec bench/session_bench.exe -- --fast --gate
	dune exec bench/quality_bench.exe -- --fast --gate
	dune exec bench/fleet_bench.exe -- --fast --gate

# Flat dense-array kernel vs hashtable baseline over the full binary
# n x num_buckets grid and l = 2, 3, 5 multiclass rows, written to
# BENCH_jq.json with ns/eval and minor-words/eval per cell.  --gate as in
# bench-smoke.
bench-jq:
	dune exec bench/jq_bench.exe -- --gate

# Engine jq throughput and select latency at l = 2, 3 and 5, written to
# BENCH_multiclass.json.  Exits nonzero when the l = 2 row regresses more
# than 5% against solve_optjs on the same fig7b workload.
bench-multiclass:
	dune exec bench/main.exe -- --multiclass

# Serving throughput at 1, 2 and 4 executor domains over four
# shard-spread pools, plus connection-scaling rows (100 and 1000 open
# TCP connections with a closed-loop active subset), written to
# BENCH_serve.json with the 2-domain (scaling_2d) and widest-row
# (speedup_vs_1_domain) ratios and per-row conn_rows.  --gate as in
# bench-smoke: nonzero exit on errors, shed connections, read timeouts,
# a sub-threshold speedup or a collapsed active p95.
bench-serve: build
	dune exec bench/serve_bench.exe -- --gate

# Adaptive sessions vs one-shot juries on the synthetic AMT replay
# (cost/task at matched accuracy), plus session-verb latency quantiles
# through an in-process service, written to BENCH_session.json.  --gate
# as in bench-smoke.
bench-session: build
	dune exec bench/session_bench.exe -- --gate

# Streaming calibration vs the static registration: AMT replay matching
# the offline Dawid-Skene fit, spammer-onset flagging latency, live
# re-selection accuracy against the stale standing jury, and report-verb
# ingest latency, written to BENCH_quality.json.  --gate as in
# bench-smoke.
bench-quality: build
	dune exec bench/quality_bench.exe -- --gate

# Price-based shared-pool fleet allocation at 1k and 10k concurrent
# tasks: bulk throughput, aggregate JQ vs the independent-greedy
# baseline, delta-path latency quantiles and the single-decide delta vs
# cold-full re-solve ratio, written to BENCH_fleet.json.  --gate as in
# bench-smoke.
bench-fleet: build
	dune exec bench/fleet_bench.exe -- --gate

# End-to-end daemon smoke: boot `optjs_cli serve`, run the closed-loop
# load generator against it — once with the default scalar pool, once
# with a 3-label confusion-matrix pool, once with a session-heavy mix,
# once with a fleet-heavy mix (shared-pool contention churn) — and
# assert zero protocol errors (loadgen exits nonzero otherwise).
# The built binary is run directly so backgrounding and kill behave
# predictably.
SERVE_SMOKE_PORT ?= 17871
serve-smoke: build
	@./_build/default/bin/optjs_cli.exe serve --port $(SERVE_SMOKE_PORT) \
	  --log-interval 0 >/dev/null 2>&1 & pid=$$!; \
	sleep 1; \
	./_build/default/bin/optjs_cli.exe loadgen --port $(SERVE_SMOKE_PORT) \
	  --connections 4 --duration 3 && \
	./_build/default/bin/optjs_cli.exe loadgen --port $(SERVE_SMOKE_PORT) \
	  --labels 3 --connections 4 --duration 3 && \
	./_build/default/bin/optjs_cli.exe loadgen --port $(SERVE_SMOKE_PORT) \
	  --mix "jqpool:2,session:3" --connections 4 --duration 3 && \
	./_build/default/bin/optjs_cli.exe loadgen --port $(SERVE_SMOKE_PORT) \
	  --mix "fleet:4,jq:1" --fleet-depth 8 --connections 4 \
	  --duration 3; status=$$?; \
	kill $$pid 2>/dev/null; \
	exit $$status

clean:
	dune clean
	rm -f BENCH_jsp.json BENCH_serve.json BENCH_multiclass.json \
	  BENCH_jq.json BENCH_session.json BENCH_quality.json BENCH_fleet.json
