(* optjs — command-line front end.

   Subcommands:
     jq       estimate/exactly compute JQ for a quality vector
     select   solve JSP for a synthetic pool or an inline worker list
     table    budget-quality table for an inline worker list
     expt     regenerate one paper experiment (or all) as ASCII tables
     amt      generate the synthetic AMT dataset and print its statistics
     serve    run the jury-selection TCP daemon
     loadgen  closed-loop load generator for the daemon
     session  drive sequential-jury sessions against the daemon
     fleet    drive the shared-pool fleet allocator over the wire *)

open Cmdliner

let parse_floats s =
  List.map
    (fun tok ->
      match float_of_string_opt (String.trim tok) with
      | Some f -> f
      | None -> failwith (Printf.sprintf "not a number: %S" tok))
    (String.split_on_char ',' s)

let alpha_arg =
  let doc = "Prior alpha = Pr(t = 0)." in
  Arg.(value & opt float 0.5 & info [ "a"; "alpha" ] ~doc)

let prior_arg =
  let doc =
    "Comma-separated prior vector p0,p1,... over the task's labels \
     (overrides --alpha; entries in [0,1] summing to 1)."
  in
  Arg.(value & opt (some string) None & info [ "prior" ] ~doc)

let task_of ~alpha ~prior =
  match prior with
  | Some s -> Engine.Task.make ~prior:(Array.of_list (parse_floats s))
  | None -> Engine.Task.binary ~alpha

let binary_alpha task =
  if Engine.Task.labels task <> 2 then
    failwith "inline qualities are binary: the prior must have 2 labels";
  Engine.Task.alpha task

let epool_of_doc = function
  | Workers.Pool_io.Scalar_rows pool -> Engine.Pool.of_workers pool
  | Workers.Pool_io.Matrix_rows confusions ->
      Engine.Pool.of_confusions confusions

let check_labels task epool =
  if
    (not (Engine.Pool.is_empty epool))
    && Engine.Task.labels task <> Engine.Pool.labels epool
  then
    failwith
      (Printf.sprintf "prior has %d labels but the pool has %d"
         (Engine.Task.labels task) (Engine.Pool.labels epool))

let buckets_arg =
  let doc = "numBuckets for the approximation (Algorithm 1)." in
  Arg.(value & opt int Jq.Bucket.default_num_buckets & info [ "buckets" ] ~doc)

let seed_arg =
  let doc = "Random seed." in
  Arg.(value & opt int 42 & info [ "seed" ] ~doc)

(* ---- jq ----------------------------------------------------------- *)

(* The multiclass flat kernel falls back to the hashtable oracle when the
   pruned frontier would still exceed its cell cap — correct but an order
   of magnitude slower.  Surface that silent cliff once per process:
   snapshot the process-wide counter before the work, warn on a delta. *)
let warn_flat_fallback_once =
  let printed = ref false in
  fun before ->
    if (not !printed) && Jq.Multiclass_jq.flat_fallbacks () > before then begin
      printed := true;
      Printf.eprintf
        "optjs: note: the flat multiclass JQ kernel overflowed its frontier \
         cap and fell back to the slower hashtable kernel (results are \
         unaffected); fewer buckets or labels restore the fast path\n"
    end

let file_arg =
  let doc =
    "Load the worker pool from a CSV file (scalar rows name,quality,cost \
     or confusion-matrix rows name,cost,m00,m01,...)."
  in
  Arg.(value & opt (some string) None & info [ "f"; "file" ] ~doc)

(* Past the enumeration cap the estimator's certified error bound is the
   honest answer: print the interval [ĴQ, ĴQ + bound] the one-sided
   underestimation guarantee implies instead of silently skipping. *)
let print_certified_interval ~value ~bound =
  Printf.printf
    "exact JQ (BV):     in [%.6f, %.6f] (certified bound; enumeration \
     exceeds --exact-cap)\n"
    value
    (Float.min 1. (value +. bound))

let jq_inline ~qualities ~alpha ~buckets ~exact ~exact_cap =
  let qs = Array.of_list (parse_floats qualities) in
  let stats = Jq.Bucket.estimate_stats ~num_buckets:buckets ~alpha qs in
  Printf.printf "estimated JQ (BV): %.6f  (error bound %.4f%%)\n" stats.value
    (100. *. stats.error_bound);
  if exact then begin
    if Jq.Exact.feasible ?cap:exact_cap (Array.length qs) then begin
      let qualities = Jq.Prior.fold ~alpha qs in
      let exact_jq =
        match exact_cap with
        | None -> Jq.Exact.jq_optimal ~alpha ~qualities
        | Some cap -> Jq.Exact.jq_optimal_capped ~cap ~alpha ~qualities
      in
      Printf.printf "exact JQ (BV):     %.6f\n" exact_jq
    end
    else
      print_certified_interval ~value:stats.value
        ~bound:(stats.value *. stats.error_bound)
  end;
  Printf.printf "JQ under MV:       %.6f\n" (Jq.Mv_closed.jq ~alpha ~qualities:qs)

let jq_pool ~path ~task ~buckets ~exact ~exact_cap =
  let epool = epool_of_doc (Workers.Pool_io.load_doc path) in
  check_labels task epool;
  let before = Jq.Multiclass_jq.flat_fallbacks () in
  let scored =
    Engine.Objective.bv_bucket_scored ~num_buckets:buckets () ~task epool
  in
  warn_flat_fallback_once before;
  Printf.printf "estimated JQ (BV): %.6f  (error bound %.4f%%)\n"
    scored.Engine.Objective.score
    (100. *. scored.Engine.Objective.bound);
  if exact then begin
    let n = Engine.Pool.size epool in
    let feasible =
      match Engine.Pool.repr epool with
      | Engine.Pool.Binary _ -> Jq.Exact.feasible ?cap:exact_cap n
      | Engine.Pool.Matrix _ ->
          Voting.Multiclass.enumeration_fits ?cap:exact_cap
            ~labels:(Engine.Pool.labels epool) ~n ()
    in
    if feasible then
      Printf.printf "exact JQ (BV):     %.6f\n"
        (Engine.Objective.score
           (Engine.Objective.bv_exact_capped ?cap:exact_cap ())
           ~task epool)
    else
      print_certified_interval ~value:scored.Engine.Objective.score
        ~bound:scored.Engine.Objective.bound
  end;
  match Engine.Pool.to_workers epool with
  | Some pool when Engine.Task.is_binary task ->
      Printf.printf "JQ under MV:       %.6f\n"
        (Jq.Mv_closed.jq ~alpha:(Engine.Task.alpha task)
           ~qualities:(Workers.Pool.qualities pool))
  | _ -> ()

let jq_cmd =
  let run file qualities alpha prior buckets exact exact_cap =
    let task = task_of ~alpha ~prior in
    match (file, qualities) with
    | Some path, _ -> jq_pool ~path ~task ~buckets ~exact ~exact_cap
    | None, Some qualities ->
        jq_inline ~qualities ~alpha:(binary_alpha task) ~buckets ~exact
          ~exact_cap
    | None, None -> failwith "provide --qualities or --file"
  in
  let qualities_opt =
    let doc = "Comma-separated worker qualities, e.g. 0.9,0.6,0.6." in
    Arg.(value & opt (some string) None & info [ "q"; "qualities" ] ~doc)
  in
  let exact =
    Arg.(
      value & flag
      & info [ "exact" ]
          ~doc:
            "Also compute the exact JQ by enumeration (binary: n <= 20; \
             multi-class: l^n within the enumeration cap).")
  in
  let exact_cap =
    Arg.(
      value
      & opt (some int) None
      & info [ "exact-cap" ]
          ~doc:
            "Cap on enumerated votings for --exact (default: 2^20 binary, \
             2^22 multi-class; binary juries top out at 25 workers \
             regardless).  Past the cap the certified interval from the \
             bucket estimator's error bound is printed instead.")
  in
  Cmd.v
    (Cmd.info "jq" ~doc:"Compute the Jury Quality of a pool or quality vector.")
    Term.(
      const run $ file_arg $ qualities_opt $ alpha_arg $ prior_arg $ buckets_arg
      $ exact $ exact_cap)

(* ---- select ------------------------------------------------------- *)

let budget_arg =
  let doc = "Budget B." in
  Arg.(required & opt (some float) None & info [ "b"; "budget" ] ~doc)

let pool_of qualities costs =
  let qs = parse_floats qualities and cs = parse_floats costs in
  if List.length qs <> List.length cs then
    failwith "qualities and costs must have the same length";
  Workers.Pool.of_list
    (List.mapi
       (fun id (q, c) -> Workers.Worker.make ~id ~quality:q ~cost:c ())
       (List.combine qs cs))

let select_cmd =
  let qualities_opt =
    Arg.(value & opt (some string) None & info [ "q"; "qualities" ] ~doc:"Worker qualities.")
  in
  let costs_opt =
    Arg.(value & opt (some string) None & info [ "c"; "costs" ] ~doc:"Worker costs.")
  in
  let run file qualities costs alpha prior budget seed =
    let epool =
      match (file, qualities, costs) with
      | Some path, _, _ -> epool_of_doc (Workers.Pool_io.load_doc path)
      | None, Some q, Some c -> Engine.Pool.of_workers (pool_of q c)
      | None, _, _ -> failwith "provide --file or both --qualities and --costs"
    in
    let task = task_of ~alpha ~prior in
    check_labels task epool;
    let rng = Prob.Rng.create seed in
    let result =
      match Engine.Pool.repr epool with
      | Engine.Pool.Binary pool ->
          (* The binary stack's full portfolio: special cases, annealing
             and greedy sweeps — exactly what `select` always ran. *)
          Jsp.Solver.map_jury Engine.Pool.of_workers
            (Optjs.select_jury ~rng ~alpha:(Engine.Task.alpha task) ~budget
               pool)
      | Engine.Pool.Matrix _ ->
          Jsp.Annealing.solve_engine ~rng ~task ~budget epool
    in
    Format.printf "jury: %a@." Engine.Pool.pp result.Jsp.Solver.jury;
    Printf.printf "estimated JQ: %.6f\ncost: %g (budget %g)\n"
      result.Jsp.Solver.score
      (Engine.Pool.total_cost result.Jsp.Solver.jury)
      budget
  in
  Cmd.v
    (Cmd.info "select" ~doc:"Solve JSP for an inline or CSV-loaded worker list.")
    Term.(
      const run $ file_arg $ qualities_opt $ costs_opt $ alpha_arg $ prior_arg
      $ budget_arg $ seed_arg)

(* ---- table -------------------------------------------------------- *)

let table_cmd =
  let budgets_arg =
    let doc = "Comma-separated budgets for the table rows." in
    Arg.(value & opt string "5,10,15,20" & info [ "budgets" ] ~doc)
  in
  let figure1 =
    Arg.(value & flag & info [ "figure1" ] ~doc:"Use the paper's Figure-1 workers A-G.")
  in
  let qualities_opt =
    Arg.(value & opt (some string) None & info [ "q"; "qualities" ] ~doc:"Worker qualities.")
  in
  let costs_opt =
    Arg.(value & opt (some string) None & info [ "c"; "costs" ] ~doc:"Worker costs.")
  in
  let run figure1 file qualities costs alpha prior budgets seed =
    let epool =
      if figure1 then Engine.Pool.of_workers (Workers.Generator.figure1_pool ())
      else
        match (file, qualities, costs) with
        | Some path, _, _ -> epool_of_doc (Workers.Pool_io.load_doc path)
        | None, Some q, Some c -> Engine.Pool.of_workers (pool_of q c)
        | None, _, _ ->
            failwith "provide --figure1, --file, or both --qualities and --costs"
    in
    let task = task_of ~alpha ~prior in
    check_labels task epool;
    let budgets = parse_floats budgets in
    match Engine.Pool.repr epool with
    | Engine.Pool.Binary pool ->
        let alpha = Engine.Task.alpha task in
        let table =
          if Workers.Pool.size pool <= Jsp.Enumerate.max_pool then
            (* Exact rows are independent pure solves, so they fan out
               across domains (each with its own kernel workspace); the
               order-preserving map keeps the table byte-identical to a
               sequential build. *)
            Array.to_list
              (Expt.Parallel.map_array
                 ~domains:
                   (min (List.length budgets)
                      (Expt.Parallel.recommended_domains ()))
                 (fun budget ->
                   let result =
                     Jsp.Enumerate.solve Jsp.Objective.bv_exact ~alpha ~budget
                       pool
                   in
                   {
                     Jsp.Table.budget;
                     jury = result.Jsp.Solver.jury;
                     quality = result.Jsp.Solver.score;
                     required = Jsp.Budget.jury_cost result.Jsp.Solver.jury;
                   })
                 (Array.of_list budgets))
          else
            let rng = Prob.Rng.create seed in
            Optjs.budget_quality_table ~rng ~alpha ~budgets pool
        in
        Format.printf "%a" Jsp.Table.pp table
    | Engine.Pool.Matrix _ ->
        List.iter
          (fun budget ->
            let before = Jq.Multiclass_jq.flat_fallbacks () in
            let result =
              Jsp.Annealing.solve_engine
                ~rng:(Prob.Rng.create seed) ~task ~budget epool
            in
            warn_flat_fallback_once before;
            let jury = result.Jsp.Solver.jury in
            Printf.printf "%g | {%s} | %.1f%% | %g\n" budget
              (String.concat ", "
                 (List.map string_of_int (Engine.Pool.ids jury)))
              (100. *. result.Jsp.Solver.score)
              (Engine.Pool.total_cost jury))
          budgets
  in
  Cmd.v
    (Cmd.info "table" ~doc:"Print a budget-quality table (Figure 1).")
    Term.(
      const run $ figure1 $ file_arg $ qualities_opt $ costs_opt $ alpha_arg
      $ prior_arg $ budgets_arg $ seed_arg)

(* ---- expt --------------------------------------------------------- *)

let expt_cmd =
  let id_arg =
    let doc = "Experiment id (fig1, fig2, fig6a..fig10d, tab3) or 'all'." in
    Arg.(value & pos 0 string "all" & info [] ~docv:"ID" ~doc)
  in
  let reps_arg =
    Arg.(value & opt (some int) None & info [ "reps" ] ~doc:"Replications per point.")
  in
  let questions_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "questions" ] ~doc:"Synthetic-AMT questions for fig10 sweeps.")
  in
  let fast_arg =
    Arg.(value & flag & info [ "fast" ] ~doc:"Smoke-test configuration (tiny reps).")
  in
  let csv_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv-dir" ] ~doc:"Also write each table as CSV into this directory.")
  in
  let run id reps questions fast seed csv_dir =
    let config = if fast then Expt.Config.fast else Expt.Config.default in
    let config = Expt.Config.with_seed seed config in
    let config =
      match reps with Some r -> Expt.Config.with_reps r config | None -> config
    in
    let config =
      match questions with
      | Some q -> Expt.Config.with_questions q config
      | None -> config
    in
    let emit table =
      Expt.Report.print table;
      match csv_dir with
      | Some dir -> ignore (Expt.Report.save_csv ~dir table)
      | None -> ()
    in
    match String.lowercase_ascii id with
    | "all" -> List.iter emit (Expt.Experiments.all ~config ())
    | "ablations" -> List.iter emit (Expt.Ablations.all ~config ())
    | name -> (
        let driver =
          match Expt.Experiments.by_id name with
          | Some _ as d -> d
          | None -> Expt.Ablations.by_id name
        in
        match driver with
        | Some driver -> emit (driver ~config ())
        | None ->
            failwith
              (Printf.sprintf "unknown experiment %S; known: %s" name
                 (String.concat ", "
                    (Expt.Experiments.ids @ Expt.Ablations.ids))))
  in
  Cmd.v
    (Cmd.info "expt" ~doc:"Regenerate paper experiments.")
    Term.(
      const run $ id_arg $ reps_arg $ questions_arg $ fast_arg $ seed_arg $ csv_arg)

(* ---- frontier ------------------------------------------------------ *)

let frontier_cmd =
  let figure1 =
    Arg.(value & flag & info [ "figure1" ] ~doc:"Use the paper's Figure-1 workers A-G.")
  in
  let run figure1 file alpha =
    let pool =
      if figure1 then Workers.Generator.figure1_pool ()
      else
        match file with
        | Some path -> Workers.Pool_io.load path
        | None -> failwith "provide --figure1 or --file"
    in
    if Workers.Pool.size pool > Jsp.Enumerate.max_pool then
      failwith "exact frontier needs a pool of at most 20 workers";
    let points = Jsp.Frontier.exact Jsp.Objective.bv_exact ~alpha pool in
    Format.printf "%a" Jsp.Frontier.pp points
  in
  Cmd.v
    (Cmd.info "frontier" ~doc:"Print the exact budget-quality Pareto frontier.")
    Term.(const run $ figure1 $ file_arg $ alpha_arg)

(* ---- online --------------------------------------------------------- *)

let online_cmd =
  let policy_arg =
    let policies =
      [
        ("quality", Crowd.Online.By_quality);
        ("cost", Crowd.Online.By_cost);
        ("random", Crowd.Online.Random_order);
        ("gain", Crowd.Online.By_information_gain);
      ]
    in
    let doc = "Ask policy: quality, cost, random, or gain." in
    Arg.(value & opt (enum policies) Crowd.Online.By_information_gain & info [ "policy" ] ~doc)
  in
  let confidence_arg =
    Arg.(value & opt float 0.95 & info [ "confidence" ] ~doc:"Posterior stopping threshold.")
  in
  let tasks_arg =
    Arg.(value & opt int 1000 & info [ "tasks" ] ~doc:"Simulated tasks.")
  in
  let n_arg =
    Arg.(value & opt int 25 & info [ "n" ] ~doc:"Pool size (synthetic Gaussian pool).")
  in
  let run policy confidence budget alpha tasks n seed =
    let rng = Prob.Rng.create seed in
    let pool = Workers.Generator.gaussian_pool rng Workers.Generator.default n in
    let s =
      Crowd.Online.simulate_many rng ~policy ~confidence ~budget ~alpha ~tasks pool
    in
    Printf.printf "tasks: %d\naccuracy: %.4f\nmean cost/task: %.4f\nmean votes/task: %.2f\n"
      s.Crowd.Online.tasks s.Crowd.Online.accuracy s.Crowd.Online.mean_cost
      s.Crowd.Online.mean_votes
  in
  Cmd.v
    (Cmd.info "online" ~doc:"Simulate adaptive (online) vote collection.")
    Term.(
      const run $ policy_arg $ confidence_arg $ budget_arg $ alpha_arg $ tasks_arg
      $ n_arg $ seed_arg)

(* ---- estimate ------------------------------------------------------- *)

let estimate_cmd =
  let votes_arg =
    let doc = "Votes CSV (task,worker,vote[,truth])." in
    Arg.(required & opt (some string) None & info [ "votes" ] ~doc)
  in
  let method_arg =
    let doc = "Estimator: 'gold' (needs truth column) or 'em' (Dawid-Skene)." in
    Arg.(value & opt (enum [ ("gold", `Gold); ("em", `Em) ]) `Em & info [ "method" ] ~doc)
  in
  let run votes_path method_ =
    let records = Crowd.Votes_io.load votes_path in
    let n_tasks, n_workers, n_labels = Crowd.Votes_io.dimensions records in
    if n_workers = 0 then failwith "no votes in file";
    Printf.printf "# %d votes, %d tasks, %d workers, %d labels\n"
      (List.length records) n_tasks n_workers n_labels;
    (match method_ with
    | `Gold ->
        let histories = Crowd.Votes_io.histories records in
        Printf.printf "worker,quality,answers\n";
        Array.iter
          (fun h ->
            match Workers.History.empirical_quality h with
            | Some q ->
                Printf.printf "%d,%.4f,%d\n" (Workers.History.worker_id h) q
                  (Workers.History.graded_count h)
            | None ->
                Printf.printf "%d,,%d\n" (Workers.History.worker_id h)
                  (Workers.History.length h))
          histories
    | `Em ->
        let result =
          Workers.Dawid_skene.run ~n_tasks ~n_workers
            ~n_labels:(max 2 n_labels)
            (Crowd.Votes_io.to_dawid_skene records)
        in
        Printf.printf "# EM converged in %d iterations (log-likelihood %.2f)\n"
          result.Workers.Dawid_skene.iterations
          result.Workers.Dawid_skene.log_likelihood;
        if n_labels <= 2 then begin
          Printf.printf "worker,quality\n";
          Array.iteri
            (fun w q -> Printf.printf "%d,%.4f\n" w q)
            (Workers.Dawid_skene.binary_qualities result)
        end
        else begin
          Printf.printf "worker,diagonal_accuracy\n";
          Array.iteri
            (fun w m ->
              let l = Array.length m in
              let diag = ref 0. in
              for j = 0 to l - 1 do
                diag := !diag +. m.(j).(j)
              done;
              Printf.printf "%d,%.4f\n" w (!diag /. float_of_int l))
            result.Workers.Dawid_skene.confusions
        end)
  in
  Cmd.v
    (Cmd.info "estimate"
       ~doc:"Estimate worker qualities from a votes CSV (gold or Dawid-Skene EM).")
    Term.(const run $ votes_arg $ method_arg)

(* ---- serve --------------------------------------------------------- *)

let port_arg ~default =
  Arg.(value & opt int default & info [ "port" ] ~doc:"TCP port (0 = ephemeral).")

let serve_cmd =
  let domains_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ]
          ~doc:"Executor domains (default: recommended for this host).")
  in
  let queue_arg =
    Arg.(
      value & opt int 256
      & info [ "queue-cap" ] ~doc:"Work-queue bound (admission control).")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~doc:"Per-request deadline in seconds (none by default).")
  in
  let log_arg =
    Arg.(
      value
      & opt (some float) (Some 10.)
      & info [ "log-interval" ] ~doc:"Seconds between stderr metric lines (0 = off).")
  in
  let batch_max_arg =
    Arg.(
      value & opt int 32
      & info [ "batch-max" ]
          ~doc:"Most same-pool jq queries coalesced into one evaluation.")
  in
  let session_cap_arg =
    Arg.(
      value
      & opt int Session.Store.default_cap
      & info [ "session-cap" ]
          ~doc:"Most open sessions per shard (admission control).")
  in
  let session_ttl_arg =
    Arg.(
      value
      & opt float Session.Store.default_ttl
      & info [ "session-ttl" ] ~doc:"Idle-session expiry in seconds.")
  in
  let calib_batch_arg =
    Arg.(
      value
      & opt int Workers.Calib.default_config.Workers.Calib.batch
      & info [ "calib-batch" ]
          ~doc:
            "Reported votes buffered before a mini-batch calibration step \
             runs (and the pool version bumps).")
  in
  let calib_window_arg =
    Arg.(
      value
      & opt int Workers.Calib.default_config.Workers.Calib.window
      & info [ "calib-window" ]
          ~doc:"Per-worker history ring capacity for calibration.")
  in
  let max_conns_arg =
    Arg.(
      value & opt int 1024
      & info [ "max-conns" ]
          ~doc:
            "Most simultaneously open connections; excess accepts are shed \
             with an err overload line.")
  in
  let idle_timeout_arg =
    Arg.(
      value & opt float 30.
      & info [ "idle-timeout" ]
          ~doc:
            "Seconds a partial request line may sit unfinished before the \
             connection is closed (slow-loris defense; 0 disables).  \
             Connections idling between complete requests are never reaped.")
  in
  let run port domains queue_cap deadline log_interval batch_max session_cap
      session_ttl calib_batch calib_window max_conns idle_timeout file =
    (* Executor domains size their own minor heaps; the accept/submit
       threads allocate here, and this domain's collections handshake
       with every executor just the same. *)
    Gc.set { (Gc.get ()) with minor_heap_size = 4 * 1024 * 1024 };
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let calib_config =
      {
        Workers.Calib.default_config with
        Workers.Calib.batch = calib_batch;
        window = calib_window;
      }
    in
    let service =
      Serve.Service.create ?domains ~queue_capacity:queue_cap ?deadline
        ~batch_max ~session_cap ~session_ttl ~calib_config ()
    in
    (match file with
    | Some path ->
        let pool = epool_of_doc (Workers.Pool_io.load_doc path) in
        ignore
          (Serve.Registry.upsert (Serve.Service.registry service) ~name:"default"
             pool);
        Printf.printf "loaded pool 'default' (%d workers, %d labels) from %s\n"
          (Engine.Pool.size pool) (Engine.Pool.labels pool) path
    | None -> ());
    let server =
      Serve.Server.create ~max_conns ~idle_timeout ~port service
    in
    Printf.printf
      "optjs serve: listening on 127.0.0.1:%d (%d domains, queue %d, conn cap %d)\n%!"
      (Serve.Server.port server)
      (Serve.Service.domains service)
      queue_cap max_conns;
    let log_interval =
      match log_interval with Some i when i > 0. -> Some i | _ -> None
    in
    Serve.Server.run ?log_interval server
  in
  Cmd.v
    (Cmd.info "serve" ~doc:"Run the jury-selection TCP daemon.")
    Term.(
      const run $ port_arg ~default:7071 $ domains_arg $ queue_arg $ deadline_arg
      $ log_arg $ batch_max_arg $ session_cap_arg $ session_ttl_arg
      $ calib_batch_arg $ calib_window_arg $ max_conns_arg $ idle_timeout_arg
      $ file_arg)

(* ---- loadgen ------------------------------------------------------- *)

(* Closed-loop load generator: each connection thread sends one request,
   waits for the reply, and repeats until the deadline.  Overload and
   deadline replies are valid protocol outcomes and counted separately;
   only undecodable or mismatched replies count as protocol errors (and
   make the command exit nonzero, which is what `make serve-smoke`
   asserts). *)

type lg_counters = {
  mutable sent : int;
  mutable ok : int;
  mutable overloaded : int;
  mutable deadlined : int;
  mutable server_errors : int;
  mutable protocol_errors : int;
  mutable fleet_submitted : int;
  mutable fleet_released : int;
  mutable latencies : float list;  (* seconds, newest first *)
}

let lg_fresh () =
  {
    sent = 0;
    ok = 0;
    overloaded = 0;
    deadlined = 0;
    server_errors = 0;
    protocol_errors = 0;
    fleet_submitted = 0;
    fleet_released = 0;
    latencies = [];
  }

let lg_connect host port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)

let lg_roundtrip ic oc request =
  output_string oc (Serve.Wire.encode_request request);
  output_char oc '\n';
  flush oc;
  Serve.Wire.decode_response (input_line ic)

let lg_mix_parse s =
  List.map
    (fun tok ->
      match String.split_on_char ':' (String.trim tok) with
      | [ kind; weight ] -> (
          match (kind, int_of_string_opt weight) with
          | ( ("jq" | "jqpool" | "select" | "table" | "session" | "report"
              | "quality" | "fleet"),
              Some w )
            when w > 0 ->
              (kind, w)
          | _ -> failwith (Printf.sprintf "bad mix entry %S" tok))
      | _ -> failwith (Printf.sprintf "bad mix entry %S" tok))
    (String.split_on_char ',' s)

let host_arg =
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~doc:"Server address.")

let loadgen_cmd =
  let connections_arg =
    Arg.(value & opt int 4 & info [ "connections" ] ~doc:"Concurrent connections.")
  in
  let duration_arg =
    Arg.(value & opt float 5. & info [ "duration" ] ~doc:"Run time in seconds.")
  in
  let mix_arg =
    Arg.(
      value
      & opt string "jqpool:6,select:3,jq:2,table:1"
      & info [ "mix" ]
          ~doc:
            "Weighted request mix over jq, jqpool, select, table, session \
             (a session entry runs a whole open-advise-vote-close \
             conversation, each verb counted as one request), report (a \
             calibration vote batch sampled from the generator's known \
             qualities), quality (per-worker readback) and fleet (each \
             draw submits a concurrent task into the shared-pool \
             allocator until the connection holds --fleet-depth of them, \
             then releases the oldest as decided — a steady-state \
             contention workload).")
  in
  let fleet_depth_arg =
    Arg.(
      value & opt int 8
      & info [ "fleet-depth" ]
          ~doc:
            "Concurrent fleet tasks each connection keeps resident (the \
             contention knob: connections x depth juries compete for one \
             shared pool).")
  in
  let pool_size_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "pool-size" ]
          ~doc:
            "Synthetic pool size (default 40, or 12 for matrix pools — \
             tuple-key scoring grows steeply in the jury size).")
  in
  let labels_arg =
    Arg.(
      value & opt int 2
      & info [ "labels" ]
          ~doc:
            "Task labels: 2 registers a scalar pool, more a \
             confusion-matrix pool (and prior-vector requests).")
  in
  let lg_budget_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "b"; "budget" ]
          ~doc:
            "Budget for select/table requests (default 12, or 6 for \
             matrix pools).")
  in
  let pools_arg =
    Arg.(
      value & opt int 1
      & info [ "pools" ]
          ~doc:
            "Distinct pools to register and spread connections over — \
             each connection sticks to one pool, so the server's \
             pool-affinity sharding sees several independent streams.")
  in
  let run host port connections duration mix pool_size labels budget pools
      fleet_depth seed =
    (* A daemon dying mid-reply must show up as a counted error, not kill
       the generator with SIGPIPE. *)
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    if connections <= 0 then failwith "connections must be positive";
    if duration <= 0. then failwith "duration must be positive";
    if labels < 2 then failwith "labels must be at least 2";
    if pools <= 0 then failwith "pools must be positive";
    if fleet_depth <= 0 then failwith "fleet-depth must be positive";
    let pool_size =
      match pool_size with Some n -> n | None -> if labels = 2 then 40 else 12
    in
    let budget =
      match budget with Some b -> b | None -> if labels = 2 then 12. else 6.
    in
    let mix = lg_mix_parse mix in
    let kinds =
      Array.concat
        (List.map (fun (kind, w) -> Array.make w kind) mix)
    in
    let pool_names =
      Array.init pools (fun i ->
          if pools = 1 then "loadgen" else Printf.sprintf "loadgen-%d" i)
    in
    let pool_prior = List.init labels (fun _ -> 1. /. float_of_int labels) in
    (* One-time setup on its own connection: register the target pools. *)
    let pool =
      Workers.Generator.gaussian_pool (Prob.Rng.create seed)
        Workers.Generator.default pool_size
    in
    let workers =
      if labels = 2 then
        List.map
          (fun w ->
            Serve.Wire.Scalar (Workers.Worker.quality w, Workers.Worker.cost w))
          (Workers.Pool.to_list pool)
      else
        (* Reuse the scalar generator's qualities as diagonals: each worker
           votes the truth with its quality and spreads the rest evenly. *)
        List.map
          (fun w ->
            let d = Workers.Worker.quality w in
            let off = (1. -. d) /. float_of_int (labels - 1) in
            let matrix =
              Array.init labels (fun j ->
                  Array.init labels (fun v -> if j = v then d else off))
            in
            Serve.Wire.Matrix_row (matrix, Workers.Worker.cost w))
          (Workers.Pool.to_list pool)
    in
    (let fd, ic, oc = lg_connect host port in
     Array.iter
       (fun name ->
         match
           lg_roundtrip ic oc (Serve.Wire.Pool_put { name; workers })
         with
         | Ok (Serve.Wire.Pool_info _) -> ()
         | Ok r ->
             failwith
               ("pool-put: unexpected reply " ^ Serve.Wire.encode_response r)
         | Error e -> failwith ("pool-put: " ^ e))
       pool_names;
     Unix.close fd);
    let request_of ~pool_name rng = function
      | "jq" ->
          (* Inline qualities are the binary model whatever the pool. *)
          let qs =
            List.init 5 (fun _ -> 0.5 +. Prob.Rng.float rng 0.45)
          in
          Serve.Wire.Jq
            {
              source = Serve.Wire.Inline qs;
              prior = Serve.Wire.default_prior;
              num_buckets = Jq.Bucket.default_num_buckets;
            }
      | "jqpool" ->
          Serve.Wire.Jq
            {
              source = Serve.Wire.Named pool_name;
              prior = pool_prior;
              num_buckets = Jq.Bucket.default_num_buckets;
            }
      | "select" ->
          Serve.Wire.Select
            {
              pool = pool_name;
              budget;
              prior = pool_prior;
              seed = Prob.Rng.int rng 16;
            }
      | "table" ->
          Serve.Wire.Table
            {
              pool = pool_name;
              budgets = [ budget /. 2.; budget ];
              prior = pool_prior;
              seed = Prob.Rng.int rng 16;
            }
      | "report" ->
          (* Votes sampled from the generator's known qualities, a quarter
             of them gold — so the server's calibrators converge toward
             the uploaded pool rather than drifting randomly. *)
          let votes =
            List.init 8 (fun _ ->
                let task = Prob.Rng.int rng 4096 in
                let worker = Prob.Rng.int rng pool_size in
                let truth = Prob.Rng.int rng labels in
                let q = Workers.Worker.quality (Workers.Pool.get pool worker) in
                let label =
                  if Prob.Rng.float rng 1. < q then truth
                  else (truth + 1 + Prob.Rng.int rng (labels - 1)) mod labels
                in
                {
                  Workers.Calib.task;
                  worker;
                  label;
                  truth =
                    (if Prob.Rng.float rng 1. < 0.25 then Some truth else None);
                })
          in
          Serve.Wire.Report { pool = pool_name; votes }
      | "quality" -> Serve.Wire.Quality { pool = pool_name }
      | _ -> assert false
    in
    let expected_kind request response =
      match (request, response) with
      | Serve.Wire.Jq _, Serve.Wire.Jq_result _
      | Serve.Wire.Select _, Serve.Wire.Select_result _
      | Serve.Wire.Table _, Serve.Wire.Table_result _
      | ( ( Serve.Wire.Session_open _ | Serve.Wire.Session_vote _
          | Serve.Wire.Session_advise _ | Serve.Wire.Session_decide _
          | Serve.Wire.Session_close _ ),
          Serve.Wire.Session_result _ )
      | ( (Serve.Wire.Report _ | Serve.Wire.Recal _),
          Serve.Wire.Report_result _ )
      | Serve.Wire.Quality _, Serve.Wire.Quality_result _
      | Serve.Wire.Fleet_submit _, Serve.Wire.Fleet_task _
      | Serve.Wire.Fleet_status _, (Serve.Wire.Fleet_task _ | Serve.Wire.Fleet_summary _)
      | Serve.Wire.Fleet_release _, Serve.Wire.Fleet_released _ ->
          true
      | _ -> false
    in
    let t_start = Serve.Clock.now () in
    let t_end = t_start +. duration in
    let results = Array.init connections (fun _ -> lg_fresh ()) in
    let worker i =
      let counters = results.(i) in
      let pool_name = pool_names.(i mod Array.length pool_names) in
      let rng = Prob.Rng.create (seed + (1000 * (i + 1))) in
      let sessions = ref 0 in
      try
        let fd, ic, oc = lg_connect host port in
        let timed request =
          let t0 = Serve.Clock.now () in
          let reply = lg_roundtrip ic oc request in
          let t1 = Serve.Clock.now () in
          counters.sent <- counters.sent + 1;
          counters.latencies <- (t1 -. t0) :: counters.latencies;
          (match reply with
          | Ok response when expected_kind request response ->
              counters.ok <- counters.ok + 1
          | Ok (Serve.Wire.Error { code = Serve.Wire.Overload; _ }) ->
              counters.overloaded <- counters.overloaded + 1
          | Ok (Serve.Wire.Error { code = Serve.Wire.Deadline; _ }) ->
              counters.deadlined <- counters.deadlined + 1
          | Ok (Serve.Wire.Error _) ->
              counters.server_errors <- counters.server_errors + 1
          | Ok _ | Error _ ->
              counters.protocol_errors <- counters.protocol_errors + 1);
          reply
        in
        (* One whole session conversation: open, follow advice voting a
           sample from the generator's known quality, close.  Every verb
           is a counted, latency-tracked request of its own. *)
        let run_session () =
          incr sessions;
          let task_id = Printf.sprintf "lg%d-%d-%d" seed i !sessions in
          let truth = Prob.Rng.int rng labels in
          let vote_of w =
            let q = Workers.Worker.quality (Workers.Pool.get pool w) in
            if Prob.Rng.float rng 1. < q then truth
            else (truth + 1 + Prob.Rng.int rng (labels - 1)) mod labels
          in
          let still_open = function
            | Ok (Serve.Wire.Session_result { state = Serve.Wire.Sess_open; _ })
              ->
                true
            | _ -> false
          in
          let reply =
            ref
              (timed
                 (Serve.Wire.Session_open
                    {
                      pool = pool_name;
                      task = task_id;
                      prior = pool_prior;
                      budget;
                      confidence = Serve.Wire.default_confidence;
                      gain_floor = 0.;
                      policy = Session.Policy.default;
                    }))
          in
          let steps = ref 0 in
          while !reply |> still_open && !steps <= pool_size do
            incr steps;
            match
              timed
                (Serve.Wire.Session_advise
                   { pool = pool_name; task = task_id; k = 3 })
            with
            | Ok
                (Serve.Wire.Session_result
                   { state = Serve.Wire.Sess_open; advice = _ :: _ as advice; _ })
              ->
                (* Batch solicitation: vote down the advised list until the
                   session leaves the open state. *)
                List.iter
                  (fun w ->
                    if still_open !reply then
                      reply :=
                        timed
                          (Serve.Wire.Session_vote
                             {
                               pool = pool_name;
                               task = task_id;
                               worker = w;
                               label = vote_of w;
                             }))
                  advice
            | r -> reply := r
          done;
          (* Closing the loop on the quality plane: the decide carries the
             simulated ground truth, so the session's votes feed the
             pool's calibrator as gold examples. *)
          ignore
            (timed
               (Serve.Wire.Session_decide
                  { pool = pool_name; task = task_id; truth = Some truth }));
          ignore
            (timed (Serve.Wire.Session_close { pool = pool_name; task = task_id }))
        in
        (* Steady-state contention: submit concurrent fleet tasks until
           this connection holds --fleet-depth of them, then cycle by
           releasing the oldest as decided.  Connections x depth juries
           stay resident on the shared pool for the whole run. *)
        let fleet_resident = Queue.create () in
        let fleet_seq = ref 0 in
        let release_oldest () =
          let id = Queue.pop fleet_resident in
          ignore
            (timed
               (Serve.Wire.Fleet_release
                  { pool = pool_name; task = id; decided = true }));
          counters.fleet_released <- counters.fleet_released + 1
        in
        let run_fleet () =
          if Queue.length fleet_resident >= fleet_depth then release_oldest ()
          else begin
            incr fleet_seq;
            let id = Printf.sprintf "fl%d-%d-%d" seed i !fleet_seq in
            ignore
              (timed
                 (Serve.Wire.Fleet_submit
                    {
                      pool = pool_name;
                      task = id;
                      prior = pool_prior;
                      budget;
                      tier = !fleet_seq mod 3;
                      target = 0.;
                    }));
            Queue.push id fleet_resident;
            counters.fleet_submitted <- counters.fleet_submitted + 1
          end
        in
        while Serve.Clock.now () < t_end do
          match kinds.(Prob.Rng.int rng (Array.length kinds)) with
          | "session" -> run_session ()
          | "fleet" -> run_fleet ()
          | kind -> ignore (timed (request_of ~pool_name rng kind))
        done;
        (* Drain this connection's resident fleet tasks so the run leaves
           the server's allocators empty. *)
        while not (Queue.is_empty fleet_resident) do
          release_oldest ()
        done;
        Unix.close fd
      with exn ->
        Printf.eprintf "loadgen connection %d: %s\n" i (Printexc.to_string exn);
        counters.protocol_errors <- counters.protocol_errors + 1
    in
    let threads =
      List.init connections (fun i -> Thread.create worker i)
    in
    List.iter Thread.join threads;
    let per_thread = Array.to_list results in
    let wall = Serve.Clock.now () -. t_start in
    let total = lg_fresh () in
    List.iter
      (fun c ->
        total.sent <- total.sent + c.sent;
        total.ok <- total.ok + c.ok;
        total.overloaded <- total.overloaded + c.overloaded;
        total.deadlined <- total.deadlined + c.deadlined;
        total.server_errors <- total.server_errors + c.server_errors;
        total.protocol_errors <- total.protocol_errors + c.protocol_errors;
        total.fleet_submitted <- total.fleet_submitted + c.fleet_submitted;
        total.fleet_released <- total.fleet_released + c.fleet_released;
        total.latencies <- c.latencies @ total.latencies)
      per_thread;
    Printf.printf "requests: %d in %.2fs (%.0f req/s)\n" total.sent wall
      (float_of_int total.sent /. wall);
    Printf.printf "ok: %d  overload: %d  deadline: %d  server-err: %d\n"
      total.ok total.overloaded total.deadlined total.server_errors;
    Printf.printf "protocol_errors: %d\n" total.protocol_errors;
    if List.mem_assoc "fleet" mix then
      Printf.printf
        "fleet: depth %d  submitted %d  released %d  still-resident %d\n"
        fleet_depth total.fleet_submitted total.fleet_released
        (total.fleet_submitted - total.fleet_released);
    (match total.latencies with
    | [] -> ()
    | lats ->
        let arr = Array.of_list lats in
        let q p = 1000. *. Prob.Stats.quantile arr p in
        Printf.printf "latency_ms: p50 %.2f  p95 %.2f  p99 %.2f\n" (q 0.5)
          (q 0.95) (q 0.99));
    (* Server-side view: shows the warm-cache hit rate under this load. *)
    (let fd, ic, oc = lg_connect host port in
     (match lg_roundtrip ic oc Serve.Wire.Stats with
     | Ok (Serve.Wire.Stats_result stats) ->
         print_endline "server stats:";
         List.iter
           (fun (key, v) -> Printf.printf "  %s: %g\n" key v)
           stats
     | _ -> print_endline "server stats: unavailable");
     Unix.close fd);
    if total.protocol_errors > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:"Closed-loop load generator for the serve daemon.")
    Term.(
      const run $ host_arg $ port_arg ~default:7071 $ connections_arg
      $ duration_arg $ mix_arg $ pool_size_arg $ labels_arg $ lg_budget_arg
      $ pools_arg $ fleet_depth_arg $ seed_arg)

(* ---- session ------------------------------------------------------- *)

(* Thin client over the session verbs.  Replies are printed as raw wire
   lines — the same bytes `nc` would show — so scripted callers can diff
   them and the docs' walkthrough matches exactly.  `drive` is the
   closed-loop variant: register a synthetic pool, open one session, and
   follow the server's advice (sampling votes from the generator's known
   qualities) until it reaches a terminal state. *)

let session_cmd =
  let action_arg =
    let actions =
      [
        ("open", `Open); ("vote", `Vote); ("advise", `Advise);
        ("decide", `Decide); ("close", `Close); ("drive", `Drive);
      ]
    in
    let doc =
      "Action: open, vote, advise, decide, close, or drive (register a \
       synthetic pool, open a session and follow the policy's advice to \
       a decision)."
    in
    Arg.(
      required
      & pos 0 (some (enum actions)) None
      & info [] ~docv:"ACTION" ~doc)
  in
  let pool_name_arg =
    Arg.(value & opt string "default" & info [ "pool" ] ~doc:"Pool name.")
  in
  let task_id_arg =
    Arg.(
      value & opt string "t0"
      & info [ "task" ] ~doc:"Task id (shares the pool-name charset).")
  in
  let session_budget_arg =
    Arg.(value & opt float 10. & info [ "b"; "budget" ] ~doc:"Session budget.")
  in
  let confidence_arg =
    Arg.(
      value
      & opt float Serve.Wire.default_confidence
      & info [ "confidence" ]
          ~doc:"Posterior stopping threshold, in (1/labels, 1].")
  in
  let floor_arg =
    Arg.(
      value & opt float 0.
      & info [ "floor" ] ~doc:"Marginal-gain floor (0 disables).")
  in
  let session_policy_arg =
    let policies =
      List.map (fun p -> (Session.Policy.to_string p, p)) Session.Policy.all
    in
    Arg.(
      value
      & opt (enum policies) Session.Policy.default
      & info [ "policy" ]
          ~doc:"Solicitation policy: gain, jq, quality, or cheap.")
  in
  let worker_arg =
    Arg.(
      value & opt (some int) None
      & info [ "worker" ] ~doc:"Worker index (vote).")
  in
  let k_arg =
    Arg.(
      value & opt int 1
      & info [ "k" ] ~doc:"Advice batch size: top-K workers per advise.")
  in
  let truth_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "truth" ]
          ~doc:
            "Ground-truth label for decide: the session's votes feed the \
             pool's calibrator as gold examples.")
  in
  let label_arg =
    Arg.(
      value & opt (some int) None & info [ "label" ] ~doc:"Vote label (vote).")
  in
  let drive_pool_size_arg =
    Arg.(
      value & opt int 25
      & info [ "pool-size" ] ~doc:"Synthetic pool size for drive.")
  in
  let run host port action pool task_id alpha prior budget confidence floor
      policy worker label k truth pool_size seed =
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let task = task_of ~alpha ~prior in
    let prior = Array.to_list (Engine.Task.prior task) in
    let fd, ic, oc = lg_connect host port in
    let round request =
      match lg_roundtrip ic oc request with
      | Ok r ->
          print_endline (Serve.Wire.encode_response r);
          r
      | Error e -> failwith ("undecodable reply: " ^ e)
    in
    let open_request =
      Serve.Wire.Session_open
        {
          pool; task = task_id; prior; budget; confidence;
          gain_floor = floor; policy;
        }
    in
    (match action with
    | `Open -> ignore (round open_request)
    | `Vote -> (
        match (worker, label) with
        | Some worker, Some label ->
            ignore
              (round (Serve.Wire.Session_vote { pool; task = task_id; worker; label }))
        | _ -> failwith "vote needs --worker and --label")
    | `Advise ->
        ignore (round (Serve.Wire.Session_advise { pool; task = task_id; k }))
    | `Decide ->
        ignore
          (round (Serve.Wire.Session_decide { pool; task = task_id; truth }))
    | `Close ->
        ignore (round (Serve.Wire.Session_close { pool; task = task_id }))
    | `Drive ->
        if Engine.Task.labels task <> 2 then
          failwith "drive simulates binary pools; use --alpha, not --prior";
        let rng = Prob.Rng.create seed in
        let wpool =
          Workers.Generator.gaussian_pool rng Workers.Generator.default
            pool_size
        in
        let workers =
          List.map
            (fun w ->
              Serve.Wire.Scalar
                (Workers.Worker.quality w, Workers.Worker.cost w))
            (Workers.Pool.to_list wpool)
        in
        (match lg_roundtrip ic oc (Serve.Wire.Pool_put { name = pool; workers }) with
        | Ok (Serve.Wire.Pool_info _) -> ()
        | Ok r ->
            failwith
              ("pool-put: unexpected reply " ^ Serve.Wire.encode_response r)
        | Error e -> failwith ("pool-put: " ^ e));
        let truth =
          if Prob.Rng.float rng 1. < Engine.Task.alpha task then 0 else 1
        in
        let still_open = function
          | Serve.Wire.Session_result { state = Serve.Wire.Sess_open; _ } ->
              true
          | _ -> false
        in
        let r = ref (round open_request) in
        let steps = ref 0 in
        while still_open !r && !steps <= pool_size do
          incr steps;
          match
            round (Serve.Wire.Session_advise { pool; task = task_id; k })
          with
          | Serve.Wire.Session_result
              { state = Serve.Wire.Sess_open; advice = _ :: _ as advice; _ } ->
              List.iter
                (fun i ->
                  if still_open !r then begin
                    let q = Workers.Worker.quality (Workers.Pool.get wpool i) in
                    let vote =
                      if Prob.Rng.float rng 1. < q then truth else 1 - truth
                    in
                    r :=
                      round
                        (Serve.Wire.Session_vote
                           { pool; task = task_id; worker = i; label = vote })
                  end)
                advice
          | reply -> r := reply
        done;
        (* Feed the conversation back into the quality plane: decide with
           the simulated truth turns the session into gold calibration
           data before the close drops it. *)
        ignore
          (round
             (Serve.Wire.Session_decide
                { pool; task = task_id; truth = Some truth }));
        ignore (round (Serve.Wire.Session_close { pool; task = task_id }));
        Printf.printf "# truth was %d\n" truth);
    Unix.close fd
  in
  Cmd.v
    (Cmd.info "session"
       ~doc:"Drive sequential-jury sessions against the serve daemon.")
    Term.(
      const run $ host_arg $ port_arg ~default:7071 $ action_arg
      $ pool_name_arg $ task_id_arg $ alpha_arg $ prior_arg
      $ session_budget_arg $ confidence_arg $ floor_arg $ session_policy_arg
      $ worker_arg $ label_arg $ k_arg $ truth_arg $ drive_pool_size_arg
      $ seed_arg)

(* ---- fleet --------------------------------------------------------- *)

(* Thin client over the fleet verbs, plus a closed-loop drive: register a
   synthetic pool, submit a wave of concurrent tasks, inspect the shared
   allocation, release half as decided, and show the delta re-solved
   remainder.  Replies are printed as raw wire lines, like the session
   client's. *)

let fleet_cmd =
  let action_arg =
    let actions =
      [
        ("submit", `Submit); ("status", `Status); ("release", `Release);
        ("drive", `Drive);
      ]
    in
    let doc =
      "Action: submit (admit one concurrent task and print its assigned \
       jury), status (one task's assignment, or the pool's allocator \
       summary without --task), release (free a task's jury), or drive \
       (register a synthetic pool, submit a wave of concurrent tasks, \
       then release half of them as decided)."
    in
    Arg.(
      required
      & pos 0 (some (enum actions)) None
      & info [] ~docv:"ACTION" ~doc)
  in
  let pool_name_arg =
    Arg.(value & opt string "default" & info [ "pool" ] ~doc:"Pool name.")
  in
  let task_id_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "task" ] ~doc:"Task id (shares the pool-name charset).")
  in
  let fleet_budget_arg =
    Arg.(value & opt float 10. & info [ "b"; "budget" ] ~doc:"Per-task budget.")
  in
  let tier_arg =
    Arg.(
      value & opt int 0
      & info [ "tier" ] ~doc:"Priority tier (0 = highest; weights 10^-tier).")
  in
  let target_arg =
    Arg.(
      value & opt float 0.
      & info [ "target" ] ~doc:"Soft quality target in [0,1] (0 = none).")
  in
  let decided_arg =
    Arg.(
      value & flag
      & info [ "decided" ]
          ~doc:"Release as decided (the task reached its answer) rather \
                than withdrawn.")
  in
  let tasks_arg =
    Arg.(
      value & opt int 12
      & info [ "tasks" ] ~doc:"Concurrent tasks submitted by drive.")
  in
  let drive_pool_size_arg =
    Arg.(
      value & opt int 40
      & info [ "pool-size" ] ~doc:"Synthetic pool size for drive.")
  in
  let run host port action pool task_id alpha prior budget tier target decided
      tasks pool_size seed =
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let taskv = task_of ~alpha ~prior in
    let prior = Array.to_list (Engine.Task.prior taskv) in
    let fd, ic, oc = lg_connect host port in
    let round request =
      match lg_roundtrip ic oc request with
      | Ok r ->
          print_endline (Serve.Wire.encode_response r);
          r
      | Error e -> failwith ("undecodable reply: " ^ e)
    in
    (match action with
    | `Submit ->
        let task =
          match task_id with
          | Some id -> id
          | None -> failwith "submit needs --task"
        in
        ignore
          (round
             (Serve.Wire.Fleet_submit { pool; task; prior; budget; tier; target }))
    | `Status ->
        ignore (round (Serve.Wire.Fleet_status { pool; task = task_id }))
    | `Release ->
        let task =
          match task_id with
          | Some id -> id
          | None -> failwith "release needs --task"
        in
        ignore
          (round (Serve.Wire.Fleet_release { pool; task; decided }))
    | `Drive ->
        if Engine.Task.labels taskv <> 2 then
          failwith "drive registers a binary pool; use --alpha, not --prior";
        let rng = Prob.Rng.create seed in
        let wpool =
          Workers.Generator.gaussian_pool rng Workers.Generator.default
            pool_size
        in
        let workers =
          List.map
            (fun w ->
              Serve.Wire.Scalar
                (Workers.Worker.quality w, Workers.Worker.cost w))
            (Workers.Pool.to_list wpool)
        in
        (match lg_roundtrip ic oc (Serve.Wire.Pool_put { name = pool; workers }) with
        | Ok (Serve.Wire.Pool_info _) -> ()
        | Ok r ->
            failwith
              ("pool-put: unexpected reply " ^ Serve.Wire.encode_response r)
        | Error e -> failwith ("pool-put: " ^ e));
        let id_of i = Printf.sprintf "fl%d-%d" seed i in
        for i = 0 to tasks - 1 do
          ignore
            (round
               (Serve.Wire.Fleet_submit
                  {
                    pool;
                    task = id_of i;
                    prior;
                    budget;
                    tier = i mod 3;
                    target;
                  }))
        done;
        ignore (round (Serve.Wire.Fleet_status { pool; task = None }));
        (* Decide every other task: each release delta re-solves the
           juries that wanted the freed workers. *)
        for i = 0 to tasks - 1 do
          if i mod 2 = 0 then
            ignore
              (round
                 (Serve.Wire.Fleet_release
                    { pool; task = id_of i; decided = true }))
        done;
        ignore (round (Serve.Wire.Fleet_status { pool; task = None })));
    Unix.close fd
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:"Drive the shared-pool fleet allocator against the serve daemon.")
    Term.(
      const run $ host_arg $ port_arg ~default:7071 $ action_arg
      $ pool_name_arg $ task_id_arg $ alpha_arg $ prior_arg $ fleet_budget_arg
      $ tier_arg $ target_arg $ decided_arg $ tasks_arg $ drive_pool_size_arg
      $ seed_arg)

(* ---- quality ------------------------------------------------------- *)

(* Thin client over the quality-plane verbs: per-worker readback, forced
   recalibration, and ad-hoc vote reporting.  Replies are printed as raw
   wire lines, like the session client's. *)

let quality_cmd =
  let action_arg =
    let actions = [ ("show", `Show); ("recal", `Recal); ("report", `Report) ] in
    let doc =
      "Action: show (per-worker quality readback), recal (force a full \
       calibration step), or report (ingest --votes)."
    in
    Arg.(
      required
      & pos 0 (some (enum actions)) None
      & info [] ~docv:"ACTION" ~doc)
  in
  let pool_name_arg =
    Arg.(value & opt string "default" & info [ "pool" ] ~doc:"Pool name.")
  in
  let votes_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "votes" ]
          ~doc:
            "Comma-separated task:worker:label[:truth] votes for report \
             (the wire's own vote syntax).")
  in
  let parse_vote tok =
    let ints = List.map int_of_string_opt (String.split_on_char ':' tok) in
    match ints with
    | [ Some task; Some worker; Some label ] ->
        { Workers.Calib.task; worker; label; truth = None }
    | [ Some task; Some worker; Some label; Some g ] ->
        { Workers.Calib.task; worker; label; truth = Some g }
    | _ ->
        failwith
          (Printf.sprintf "bad vote %S: expected task:worker:label[:truth]" tok)
  in
  let run host port action pool votes =
    let fd, ic, oc = lg_connect host port in
    let round request =
      match lg_roundtrip ic oc request with
      | Ok r -> print_endline (Serve.Wire.encode_response r)
      | Error e -> failwith ("undecodable reply: " ^ e)
    in
    (match action with
    | `Show -> round (Serve.Wire.Quality { pool })
    | `Recal -> round (Serve.Wire.Recal { pool })
    | `Report ->
        let votes =
          match votes with
          | None -> failwith "report needs --votes"
          | Some s ->
              List.map parse_vote
                (List.filter
                   (fun tok -> tok <> "")
                   (List.map String.trim (String.split_on_char ',' s)))
        in
        if votes = [] then failwith "report needs at least one vote";
        round (Serve.Wire.Report { pool; votes }));
    Unix.close fd
  in
  Cmd.v
    (Cmd.info "quality"
       ~doc:"Inspect and drive a pool's live worker-quality plane.")
    Term.(
      const run $ host_arg $ port_arg ~default:7071 $ action_arg
      $ pool_name_arg $ votes_arg)

(* ---- amt ---------------------------------------------------------- *)

let amt_cmd =
  let run seed =
    let dataset = Crowd.Amt_dataset.generate (Prob.Rng.create seed) in
    let s = Crowd.Amt_dataset.statistics dataset in
    Printf.printf "workers: %d\n" s.n_workers;
    Printf.printf "mean estimated quality: %.4f (paper: 0.71)\n"
      s.mean_estimated_quality;
    Printf.printf "estimated quality > 0.8: %d (paper: 40)\n" s.above_080;
    Printf.printf "estimated quality < 0.6: %d (paper: ~13)\n" s.below_060;
    Printf.printf "answered all questions: %d (paper: 2)\n" s.answered_all;
    Printf.printf "answered the minimum: %d (paper: 67)\n" s.answered_min;
    Printf.printf "mean answers per worker: %.2f (paper: 93.75)\n"
      s.mean_answers_per_worker
  in
  Cmd.v
    (Cmd.info "amt" ~doc:"Generate the synthetic AMT dataset and print statistics.")
    Term.(const run $ seed_arg)

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default
          (Cmd.info "optjs" ~version:Optjs.version
             ~doc:"Optimal Jury Selection System (EDBT 2015 reproduction).")
          [
            jq_cmd; select_cmd; table_cmd; frontier_cmd; online_cmd;
            estimate_cmd; expt_cmd; amt_cmd; serve_cmd; loadgen_cmd;
            session_cmd; fleet_cmd; quality_cmd;
          ]))
