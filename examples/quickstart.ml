(* Quickstart: the paper's Figure-1 walkthrough.

   Seven candidate workers A-G answer the decision-making task
   "Is Bill Gates now the CEO of Microsoft?".  We compute jury qualities,
   build the budget-quality table, pick the budget-15 jury, collect
   (simulated) votes, and aggregate them with Bayesian Voting.

   Run with: dune exec examples/quickstart.exe *)

let () =
  let pool = Workers.Generator.figure1_pool () in
  Format.printf "Candidate workers:@.  %a@.@." Workers.Pool.pp pool;

  (* 1. Jury quality of a hand-picked jury, exactly and approximately. *)
  let jury = Workers.Pool.sub pool [ 1; 2; 6 ] (* B, C, G *) in
  let exact = Optjs.jury_quality_exact ~alpha:0.5 jury in
  let approx = Optjs.jury_quality ~alpha:0.5 jury in
  Format.printf "JQ of {B, C, G} under Bayesian Voting: exact %.4f, bucket %.4f@."
    exact approx;
  Format.printf "JQ of the same jury under Majority Voting: %.4f@.@."
    (Jq.Mv_closed.jq ~alpha:0.5 ~qualities:(Workers.Pool.qualities jury));

  (* 2. The budget-quality table (Figure 1, right). *)
  let table =
    Jsp.Table.build ~budgets:[ 5.; 10.; 15.; 20. ] pool ~solve:(fun ~budget pool ->
        Jsp.Enumerate.solve Jsp.Objective.bv_exact ~alpha:0.5 ~budget pool)
  in
  Format.printf "Budget-quality table:@.%a@." Jsp.Table.pp table;

  (* 3. The task provider picks budget 15; collect votes and aggregate. *)
  let chosen =
    (Jsp.Enumerate.solve Jsp.Objective.bv_exact ~alpha:0.5 ~budget:15. pool)
      .Jsp.Solver.jury
  in
  Format.printf "Chosen jury at budget 15: %a (cost %g)@.@." Workers.Pool.pp chosen
    (Workers.Pool.total_cost chosen);

  let rng = Prob.Rng.create 193 in
  let truth = Voting.Vote.No (* ground truth: he is not the CEO anymore *) in
  let qualities = Workers.Pool.qualities chosen in
  let votes = Crowd.Simulate.voting rng ~truth qualities in
  Format.printf "Collected votes: %a@." Voting.Vote.pp_voting votes;
  let answer = Optjs.aggregate ~alpha:0.5 ~qualities votes in
  let confidence = Optjs.posterior_no ~alpha:0.5 ~qualities votes in
  Format.printf "Bayesian Voting answers: %d (posterior for 'no': %.3f)@."
    (Voting.Vote.to_int answer) confidence;
  Format.printf "Ground truth was:        %d@." (Voting.Vote.to_int truth)
