(* Sentiment analysis at crowd scale — the paper's section-6.2 scenario.

   A synthetic AMT-style campaign labels 600 tweets as positive/negative:
   128 workers of varying (latent) quality answer 20-question HITs.  We
   estimate worker qualities from their graded history, solve the Jury
   Selection Problem per question under a budget, and compare the two
   systems end to end:

     MVJS   (Cao et al. 2012)  - selects for Majority Voting, aggregates with MV
     OPTJS  (this paper)       - selects for Bayesian Voting, aggregates with BV

   Both selection *and* aggregation differ, so the measured accuracy gap is
   the real end-to-end effect of Theorem 1.

   Run with: dune exec examples/sentiment_analysis.exe *)

let () =
  let rng = Prob.Rng.create 60199 in
  Format.printf "Generating the synthetic AMT sentiment dataset...@.";
  let dataset = Crowd.Amt_dataset.generate rng in
  let stats = Crowd.Amt_dataset.statistics dataset in
  Format.printf
    "  %d workers, mean estimated quality %.3f, %d above 0.8, %d below 0.6@.@."
    stats.Crowd.Amt_dataset.n_workers stats.Crowd.Amt_dataset.mean_estimated_quality
    stats.Crowd.Amt_dataset.above_080 stats.Crowd.Amt_dataset.below_060;

  (* Per-worker costs, as in the paper's synthetic setting. *)
  let costs =
    Array.init 128 (fun _ ->
        Prob.Distributions.sample_gaussian_truncated rng ~mu:0.05
          ~sigma:(sqrt 0.2) ~lo:0.01 ~hi:infinity)
  in
  let budget = 0.5 and alpha = 0.5 in
  let questions = 150 in
  Format.printf "Solving JSP for %d questions (budget %.2f)...@." questions budget;

  let params = { Jsp.Annealing.default_params with epsilon = 1e-6 } in
  let pick_task i = i * 600 / questions in
  let opt_juries = Array.make 600 (Workers.Pool.of_list []) in
  let mv_juries = Array.make 600 (Workers.Pool.of_list []) in
  let opt_jq = Prob.Kahan.create () and mv_jq = Prob.Kahan.create () in
  for i = 0 to questions - 1 do
    let task_id = pick_task i in
    let pool = Crowd.Amt_dataset.candidate_pool dataset ~costs ~task_id in
    let opt =
      Optjs.select_jury
        ~config:{ Optjs.default_config with annealing = params }
        ~rng ~alpha ~budget pool
    in
    let mv = Jsp.Mvjs.select ~params ~rng ~alpha ~budget pool in
    opt_juries.(task_id) <- opt.Jsp.Solver.jury;
    mv_juries.(task_id) <- mv.Jsp.Solver.jury;
    Prob.Kahan.add opt_jq opt.Jsp.Solver.score;
    Prob.Kahan.add mv_jq mv.Jsp.Solver.score
  done;
  let qn = float_of_int questions in
  Format.printf "  average predicted JQ:  MVJS %.4f   OPTJS %.4f@.@."
    (Prob.Kahan.total mv_jq /. qn)
    (Prob.Kahan.total opt_jq /. qn);

  (* Grade both systems on the realized votes of the questions we solved. *)
  let grade strategy juries =
    let correct = ref 0 in
    for i = 0 to questions - 1 do
      let task_id = pick_task i in
      let jury = juries.(task_id) in
      let members = Workers.Pool.to_array jury in
      let votes =
        Array.map
          (fun w ->
            match
              Array.find_opt
                (fun (voter, _) -> voter = Workers.Worker.id w)
                dataset.Crowd.Amt_dataset.votes.(task_id)
            with
            | Some (_, v) -> v
            | None -> assert false)
          members
      in
      let qualities = Array.map Workers.Worker.quality members in
      let answer =
        Voting.Strategy.run strategy rng ~alpha ~qualities votes
      in
      if
        Voting.Vote.equal answer
          (Crowd.Task.truth_exn dataset.Crowd.Amt_dataset.tasks.(task_id))
      then incr correct
    done;
    float_of_int !correct /. qn
  in
  let acc_opt = grade Voting.Bayesian.strategy opt_juries in
  let acc_mv = grade Voting.Classic.majority mv_juries in
  Format.printf "  realized accuracy:     MVJS %.4f   OPTJS %.4f@." acc_mv acc_opt;
  Format.printf "  (OPTJS should match its predicted JQ and beat MVJS)@."
