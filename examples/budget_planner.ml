(* Budget planning for a large worker marketplace.

   A task provider faces a pool of 200 candidate workers (qualities and
   costs estimated from history) and wants to know how much budget a target
   quality requires.  Exhaustive search is hopeless at N = 200 (Theorem 4),
   so this example exercises the production path: simulated annealing with
   the bucket-approximated Bayesian-Voting objective, plus the Lemma-1/2
   fast paths where they apply, producing a budget-quality table and a
   cheapest-budget-for-target lookup.

   Run with: dune exec examples/budget_planner.exe *)

let () =
  let rng = Prob.Rng.create 314159 in
  let pool = Workers.Generator.gaussian_pool rng Workers.Generator.default 200 in
  Format.printf "Pool: %d workers, mean quality %.3f, total cost %.2f@.@."
    (Workers.Pool.size pool) (Workers.Pool.mean_quality pool)
    (Workers.Pool.total_cost pool);

  (* 1. The budget-quality table over a budget ladder. *)
  let budgets = [ 0.05; 0.1; 0.2; 0.4; 0.8; 1.6 ] in
  let table = Optjs.budget_quality_table ~rng ~alpha:0.5 ~budgets pool in
  Format.printf "Budget-quality table (annealed OPTJS):@.%a@." Jsp.Table.pp table;

  (* 2. Find the cheapest ladder budget reaching a target quality. *)
  let target = 0.95 in
  (match
     List.find_opt (fun (r : Jsp.Table.row) -> r.quality >= target) table
   with
  | Some row ->
      Format.printf "Cheapest ladder budget reaching %.0f%%: %.2f (jury of %d, JQ %.4f)@.@."
        (100. *. target) row.budget
        (Workers.Pool.size row.jury)
        row.quality
  | None ->
      Format.printf "No ladder budget reaches %.0f%%; consider more budget.@.@."
        (100. *. target));

  (* 3. The special cases the lemmas solve outright. *)
  let volunteers = Workers.Generator.free_pool rng Workers.Generator.default 25 in
  (match Jsp.Special.solve (Jsp.Objective.bv_bucket ()) ~alpha:0.5 ~budget:0. volunteers with
  | Some r ->
      Format.printf "Volunteers (all free): Lemma 1 selects everyone -> JQ %.4f@."
        r.Jsp.Solver.score
  | None -> assert false);
  let flat = Workers.Generator.uniform_cost_pool rng Workers.Generator.default ~cost:0.1 25 in
  (match Jsp.Special.solve (Jsp.Objective.bv_bucket ()) ~alpha:0.5 ~budget:0.55 flat with
  | Some r ->
      Format.printf
        "Uniform cost 0.1, budget 0.55: Lemma 2 takes the top-%d by quality -> JQ %.4f@.@."
        (Workers.Pool.size r.Jsp.Solver.jury)
        r.Jsp.Solver.score
  | None -> assert false);

  (* 4. The exact Pareto frontier on a committee-sized subset: every
     cost/quality trade-off at once, not just the sampled ladder. *)
  let committee = Workers.Pool.take 14 (Workers.Pool.sorted_by_cost pool) in
  let frontier = Jsp.Frontier.exact Jsp.Objective.bv_exact ~alpha:0.5 committee in
  Format.printf "Exact budget-quality frontier of the 14 cheapest workers (%d points):@."
    (List.length frontier);
  Format.printf "%a@." Jsp.Frontier.pp (Jsp.Frontier.exact Jsp.Objective.bv_exact ~alpha:0.5 (Workers.Pool.take 8 committee));
  (match Jsp.Frontier.cheapest_for frontier ~quality:0.9 with
  | Some p ->
      Format.printf "Cheapest committee jury reaching 90%%: cost %.3f, JQ %.4f@.@."
        p.Jsp.Frontier.cost p.Jsp.Frontier.quality
  | None -> Format.printf "No committee jury reaches 90%%.@.@.");

  (* 5. How much does the optimal strategy matter at a fixed budget? *)
  let budget = 0.4 in
  let opt = Optjs.select_jury ~rng ~alpha:0.5 ~budget pool in
  let mvjs = Jsp.Mvjs.select ~rng ~alpha:0.5 ~budget pool in
  Format.printf "At budget %.2f: OPTJS predicts %.4f, MVJS predicts %.4f (gap %.2f%%)@."
    budget opt.Jsp.Solver.score mvjs.Jsp.Solver.score
    (100. *. (opt.Jsp.Solver.score -. mvjs.Jsp.Solver.score))
