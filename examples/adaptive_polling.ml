(* Adaptive vote collection vs up-front jury selection.

   JSP (the paper's setting) commits to a jury before seeing any votes; the
   online systems it relates to (CDAS, Boim et al. — section 8) instead ask
   one worker at a time and stop as soon as the Bayesian posterior is
   confident.  This example runs the comparison through `lib/session` — the
   same state machine the serve daemon's open/advise/vote verbs drive — so
   every solicitation policy, stopping rule and certification here is
   exactly what a TCP client would see.  At the same per-task budget cap,
   adaptive collection matches the static jury's accuracy while leaving
   money on the table for easy tasks, and a measurable share of stops are
   *certified*: the remaining workers provably could not flip the answer.

   Run with: dune exec examples/adaptive_polling.exe *)

let () =
  let rng = Prob.Rng.create 8086 in
  let pool = Workers.Generator.gaussian_pool rng Workers.Generator.default 25 in
  let budget = 0.4 and alpha = 0.5 and tasks = 2_000 in
  Format.printf "Pool of %d workers (mean quality %.3f); per-task budget %.2f@.@."
    (Workers.Pool.size pool) (Workers.Pool.mean_quality pool) budget;

  (* Static baseline: solve JSP once, pay the same jury on every task. *)
  let static = Optjs.select_jury ~rng ~alpha ~budget pool in
  let jury = static.Jsp.Solver.jury in
  let qualities = Workers.Pool.qualities jury in
  let correct = ref 0 in
  for _ = 1 to tasks do
    let truth = Crowd.Simulate.sample_truth rng ~alpha in
    let votes = Crowd.Simulate.voting rng ~truth qualities in
    if Voting.Vote.equal (Optjs.aggregate ~alpha ~qualities votes) truth then
      incr correct
  done;
  Format.printf "static OPTJS jury (%d workers):@." (Workers.Pool.size jury);
  Format.printf "  predicted JQ %.4f, realized accuracy %.4f, cost/task %.3f@.@."
    static.Jsp.Solver.score
    (float_of_int !correct /. float_of_int tasks)
    (Workers.Pool.total_cost jury);

  (* Adaptive: one Session.Task per crowdsourcing task, stopping at 97%
     posterior confidence under the same budget cap.  Workers answer
     truthfully with their own probability, like the simulator above. *)
  let epool = Engine.Pool.of_workers pool in
  let etask = Engine.Task.binary ~alpha in
  let run_task policy =
    let truth = Voting.Vote.to_int (Crowd.Simulate.sample_truth rng ~alpha) in
    let session =
      match
        Session.Task.create ~pool:epool ~pool_version:0 ~task:etask ~budget
          ~confidence:0.97 ~policy ~now:0. ()
      with
      | Ok s -> s
      | Error e -> failwith e
    in
    let continue = ref true in
    while !continue do
      match
        (Session.Task.progress session, Session.Task.advise session ~now:0.)
      with
      | Session.Task.Soliciting, Some i ->
          let q = Workers.Worker.quality (Workers.Pool.get pool i) in
          let label =
            if Prob.Rng.float rng 1. < q then truth else 1 - truth
          in
          (match Session.Task.vote session ~worker:i ~label ~now:0. with
          | Ok () -> ()
          | Error e -> failwith e)
      | _ -> continue := false
    done;
    let correct = Session.Task.decision_label session = truth in
    let certified =
      match Session.Task.progress session with
      | Session.Task.Decided { certified; _ } -> certified
      | _ -> false
    in
    (correct, Session.Task.spent session, Session.Task.votes_seen session,
     certified)
  in
  let report policy =
    let correct = ref 0 and cost = ref 0. and votes = ref 0 in
    let certified = ref 0 in
    for _ = 1 to tasks do
      let ok, spent, seen, cert = run_task policy in
      if ok then incr correct;
      cost := !cost +. spent;
      votes := !votes + seen;
      if cert then incr certified
    done;
    let per v = v /. float_of_int tasks in
    Format.printf
      "  %-18s accuracy %.4f, cost/task %.3f, votes/task %.2f, certified %2.0f%%@."
      (Session.Policy.to_string policy)
      (per (float_of_int !correct))
      (per !cost)
      (per (float_of_int !votes))
      (100. *. per (float_of_int !certified))
  in
  Format.printf
    "adaptive sessions (confidence 0.97, same budget cap, lib/session):@.";
  List.iter report Session.Policy.all
