(* Adaptive vote collection vs up-front jury selection.

   JSP (the paper's setting) commits to a jury before seeing any votes; the
   online systems it relates to (CDAS, Boim et al. — section 8) instead ask
   one worker at a time and stop as soon as the Bayesian posterior is
   confident.  This example measures the trade-off on the same worker pool:
   at the same per-task budget cap, adaptive collection matches the static
   jury's accuracy while leaving money on the table for easy tasks, and the
   information-gain policy stretches the budget furthest.

   Run with: dune exec examples/adaptive_polling.exe *)

let () =
  let rng = Prob.Rng.create 8086 in
  let pool = Workers.Generator.gaussian_pool rng Workers.Generator.default 25 in
  let budget = 0.4 and alpha = 0.5 and tasks = 2_000 in
  Format.printf "Pool of %d workers (mean quality %.3f); per-task budget %.2f@.@."
    (Workers.Pool.size pool) (Workers.Pool.mean_quality pool) budget;

  (* Static baseline: solve JSP once, pay the same jury on every task. *)
  let static = Optjs.select_jury ~rng ~alpha ~budget pool in
  let jury = static.Jsp.Solver.jury in
  let qualities = Workers.Pool.qualities jury in
  let correct = ref 0 in
  for _ = 1 to tasks do
    let truth = Crowd.Simulate.sample_truth rng ~alpha in
    let votes = Crowd.Simulate.voting rng ~truth qualities in
    if Voting.Vote.equal (Optjs.aggregate ~alpha ~qualities votes) truth then
      incr correct
  done;
  Format.printf "static OPTJS jury (%d workers):@." (Workers.Pool.size jury);
  Format.printf "  predicted JQ %.4f, realized accuracy %.4f, cost/task %.3f@.@."
    static.Jsp.Solver.score
    (float_of_int !correct /. float_of_int tasks)
    (Workers.Pool.total_cost jury);

  (* Adaptive: stop at 97%% posterior confidence, never exceed the budget. *)
  let report name policy =
    let s =
      Crowd.Online.simulate_many rng ~policy ~confidence:0.97 ~budget ~alpha
        ~tasks pool
    in
    Format.printf "  %-18s accuracy %.4f, cost/task %.3f, votes/task %.2f@."
      name s.Crowd.Online.accuracy s.Crowd.Online.mean_cost
      s.Crowd.Online.mean_votes
  in
  Format.printf "adaptive collection (confidence 0.97, same budget cap):@.";
  report "information gain" Crowd.Online.By_information_gain;
  report "best quality" Crowd.Online.By_quality;
  report "cheapest first" Crowd.Online.By_cost;
  report "random order" Crowd.Online.Random_order
