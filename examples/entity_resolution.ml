(* Entity resolution with multi-choice tasks and confusion-matrix workers —
   the section-7 extension.

   Workers judge whether two product records refer to the same entity with
   three possible labels: 0 = same, 1 = different, 2 = unsure.  Each worker
   is a 3x3 confusion matrix (some are biased toward "unsure", one is a
   spammer).  We compute multi-class JQ exactly and with the tuple-key
   estimator, compare plurality voting against multi-class Bayesian Voting,
   and show BV's edge on simulated campaigns.

   Run with: dune exec examples/entity_resolution.exe *)

let labels = [| "same"; "different"; "unsure" |]

(* A careful worker: accurate, rarely answers "unsure". *)
let careful id =
  Workers.Confusion.make ~name:(Printf.sprintf "careful%d" id) ~id
    ~matrix:
      [|
        [| 0.85; 0.05; 0.10 |];
        [| 0.05; 0.85; 0.10 |];
        [| 0.10; 0.10; 0.80 |];
      |]
    ~cost:0.08 ()

(* A hedger: decent accuracy but drawn to "unsure". *)
let hedger id =
  Workers.Confusion.make ~name:(Printf.sprintf "hedger%d" id) ~id
    ~matrix:
      [|
        [| 0.55; 0.05; 0.40 |];
        [| 0.05; 0.55; 0.40 |];
        [| 0.05; 0.05; 0.90 |];
      |]
    ~cost:0.03 ()

let spammer id = Workers.Confusion.uniform_spammer ~labels:3 ~id ~cost:0.01

let () =
  let jury = [| careful 0; careful 1; hedger 2; hedger 3; spammer 4 |] in
  Format.printf "Jury:@.";
  Array.iter (fun c -> Format.printf "  %a@." Workers.Confusion.pp c) jury;

  (* Pairs of records are mostly distinct in a blocked ER pipeline. *)
  let prior = [| 0.35; 0.55; 0.10 |] in
  Format.printf "@.Prior over (same, different, unsure): (%.2f, %.2f, %.2f)@.@."
    prior.(0) prior.(1) prior.(2);

  (* 1. Multi-class JQ, exact vs tuple-key estimate (section 7). *)
  let jq_bv = Jq.Multiclass_jq.jq_exact Voting.Multiclass.bayesian ~prior ~jury in
  let jq_pl = Jq.Multiclass_jq.jq_exact Voting.Multiclass.plurality ~prior ~jury in
  let jq_est = Jq.Multiclass_jq.estimate_bv ~num_buckets:400 ~prior jury in
  Format.printf "JQ under plurality voting:      %.4f@." jq_pl;
  Format.printf "JQ under multi-class BV:        %.4f (exact)@." jq_bv;
  Format.printf "JQ under multi-class BV:        %.4f (tuple-key estimate)@.@." jq_est;

  (* 2. One concrete disagreement: the hedgers say "unsure", a careful
     worker says "same". *)
  let votes = [| 0; 1; 2; 2; 1 |] in
  let post = Voting.Multiclass.posterior ~prior ~jury votes in
  Format.printf "Votes (%s): posterior ("
    (String.concat ", " (List.map (fun v -> labels.(v)) (Array.to_list votes)));
  Array.iteri (fun i p -> Format.printf "%s%s %.3f" (if i > 0 then ", " else "") labels.(i) p) post;
  Format.printf ")@.";
  (match Voting.Multiclass.decide Voting.Multiclass.bayesian ~prior ~jury votes with
  | Voting.Multiclass.Decide l -> Format.printf "BV decides:        %s@." labels.(l)
  | Voting.Multiclass.Randomize _ -> assert false);
  (match Voting.Multiclass.decide Voting.Multiclass.plurality ~prior ~jury votes with
  | Voting.Multiclass.Decide l -> Format.printf "Plurality decides: %s@.@." labels.(l)
  | Voting.Multiclass.Randomize _ -> assert false);

  (* 3. Monte-Carlo check: simulate 20k record pairs and grade both
     strategies; realized accuracies must track the analytic JQs. *)
  let rng = Prob.Rng.create 77 in
  let trials = 20_000 in
  let correct_bv = ref 0 and correct_pl = ref 0 in
  for _ = 1 to trials do
    let truth = Prob.Distributions.sample_categorical rng prior in
    let votes = Crowd.Simulate.multi_voting rng ~truth jury in
    let bv = Voting.Multiclass.run Voting.Multiclass.bayesian rng ~prior ~jury votes in
    let pl = Voting.Multiclass.run Voting.Multiclass.plurality rng ~prior ~jury votes in
    if bv = truth then incr correct_bv;
    if pl = truth then incr correct_pl
  done;
  let t = float_of_int trials in
  Format.printf "Simulated %d record pairs:@." trials;
  Format.printf "  plurality accuracy: %.4f (analytic JQ %.4f)@."
    (float_of_int !correct_pl /. t) jq_pl;
  Format.printf "  BV accuracy:        %.4f (analytic JQ %.4f)@.@."
    (float_of_int !correct_bv /. t) jq_bv;

  (* 4. A full synthetic campaign: 200 pairs, 40 workers of mixed
     archetypes, matrices re-estimated from graded answers, spammers
     detected from the estimates, and jury selection on a real question's
     candidates. *)
  let dataset = Crowd.Multi_dataset.generate (Prob.Rng.create 4242) in
  Format.printf "Synthetic ER campaign (%d tasks, %d workers):@."
    dataset.Crowd.Multi_dataset.params.n_tasks
    dataset.Crowd.Multi_dataset.params.n_workers;
  Format.printf "  plurality accuracy on realized votes: %.4f@."
    (Crowd.Multi_dataset.grade dataset Voting.Multiclass.plurality);
  Format.printf "  BV accuracy on realized votes:        %.4f@."
    (Crowd.Multi_dataset.grade dataset Voting.Multiclass.bayesian);
  Format.printf "  spammer recall from estimated matrices: %.0f%%@."
    (100. *. Crowd.Multi_dataset.spammer_recall dataset);
  let candidates = Crowd.Multi_dataset.candidate_jury dataset ~task_id:0 in
  let selected =
    Jsp.Multi_jsp.select ~rng:(Prob.Rng.create 9)
      ~prior:dataset.Crowd.Multi_dataset.prior ~budget:0.25 candidates
  in
  Format.printf
    "  task 0: JSP over its %d answerers at budget 0.25 -> %d-worker jury, \
     estimated JQ %.4f@."
    (Array.length candidates)
    (Array.length selected.Jsp.Solver.jury)
    selected.Jsp.Solver.score
