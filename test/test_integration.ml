(* Cross-module integration tests: whole-pipeline behaviours that no single
   library can verify alone — the paper's end-to-end claims (OPTJS beats
   MVJS on realized accuracy; predicted JQ forecasts that accuracy), the
   Theorem-2 reduction, and the agreement of four independent JQ
   computations (enumeration, closed form, bucket, Monte Carlo). *)

open Voting

let check_close eps = Alcotest.(check (float eps))
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ---- Four JQ computations agree ----------------------------------------- *)

let test_four_jq_computations_agree () =
  let rng = Prob.Rng.create 11 in
  for _ = 1 to 10 do
    let qualities =
      Workers.Pool.qualities
        (Workers.Generator.gaussian_pool rng Workers.Generator.default 9)
    in
    let exact = Jq.Exact.jq_optimal ~alpha:0.5 ~qualities in
    let bucket = Jq.Bucket.estimate ~num_buckets:2000 qualities in
    let mc = (Jq.Mc.jq_bv rng ~trials:40_000 ~alpha:0.5 ~qualities).Jq.Mc.value in
    check_close 0.005 "bucket vs exact" exact bucket;
    check_close 0.02 "MC vs exact" exact mc;
    (* And MV closed form vs its own enumeration, on the same jury. *)
    let mv_exact = Jq.Exact.jq Classic.majority ~alpha:0.5 ~qualities in
    check_close 1e-9 "mv closed vs exact" mv_exact (Jq.Mv_closed.jq ~alpha:0.5 ~qualities)
  done

(* ---- End-to-end: OPTJS vs MVJS as full campaigns -------------------------- *)

let test_campaign_optjs_beats_mvjs () =
  let rng = Prob.Rng.create 42 in
  let pool = Workers.Generator.gaussian_pool rng Workers.Generator.default 30 in
  let n_tasks = 3_000 in
  let run system seed =
    Crowd.Campaign.run_uniform (Prob.Rng.create seed) system ~alpha:0.5 ~budget:0.3
      ~pool ~n_tasks
  in
  let opt = run (Optjs.system ()) 7 in
  let mv = run (Optjs.mvjs_system ()) 7 in
  check_int "same task count" opt.Crowd.Campaign.tasks mv.Crowd.Campaign.tasks;
  check_bool "OPTJS at least as accurate (within noise)" true
    (opt.Crowd.Campaign.accuracy >= mv.Crowd.Campaign.accuracy -. 0.015);
  check_bool "both respect the budget" true
    (opt.Crowd.Campaign.mean_jury_cost <= 0.3 +. 1e-6
    && mv.Crowd.Campaign.mean_jury_cost <= 0.3 +. 1e-6)

let test_campaign_accuracy_matches_predicted_jq () =
  let rng = Prob.Rng.create 43 in
  let pool = Workers.Generator.gaussian_pool rng Workers.Generator.default 30 in
  let selection = Optjs.select_jury ~rng ~alpha:0.5 ~budget:0.3 pool in
  let fixed_jury_system =
    {
      Crowd.Campaign.name = "fixed";
      select = (fun _ ~alpha:_ ~budget:_ _ -> selection.Jsp.Solver.jury);
      aggregate =
        (fun _ ~alpha ~qualities voting ->
          Voting.Bayesian.decide_exact ~alpha ~qualities voting);
    }
  in
  let result =
    Crowd.Campaign.run_uniform (Prob.Rng.create 44) fixed_jury_system ~alpha:0.5
      ~budget:0.3 ~pool ~n_tasks:20_000
  in
  check_close 0.01 "predicted JQ forecasts realized accuracy"
    selection.Jsp.Solver.score result.Crowd.Campaign.accuracy

let test_campaign_on_amt_dataset () =
  (* Candidate pools straight from the synthetic AMT dataset; the campaign
     re-simulates votes from estimated qualities, closing the loop between
     the dataset substrate and the selection stack. *)
  let dataset = Crowd.Amt_dataset.generate (Prob.Rng.create 77) in
  let costs = Array.make 128 0.05 in
  let tasks = Array.sub dataset.Crowd.Amt_dataset.tasks 0 50 in
  let result =
    Crowd.Campaign.run (Prob.Rng.create 78) (Optjs.system ()) ~alpha:0.5
      ~budget:0.4
      ~candidates:(fun task_id -> Crowd.Amt_dataset.candidate_pool dataset ~costs ~task_id)
      ~tasks
  in
  check_bool "high accuracy with 8-worker budget" true
    (result.Crowd.Campaign.accuracy > 0.85);
  check_bool "juries bounded by budget" true
    (result.Crowd.Campaign.mean_jury_cost <= 0.4 +. 1e-9)

(* ---- Theorem-2 reduction ---------------------------------------------------- *)

let instance_gen =
  QCheck2.Gen.(list_size (int_range 1 10) (int_range 1 20))

let test_hardness_reduction_agrees =
  qtest ~count:300 "tie mass > 0 iff instance partitions" instance_gen (fun instance ->
      Jq.Hardness.partitionable_via_jq instance
      = Jq.Hardness.partitionable_direct instance)

let test_hardness_known_instances () =
  check_bool "1+2=3 partitions" true (Jq.Hardness.partitionable_via_jq [ 1; 2; 3 ]);
  check_bool "odd total cannot" false (Jq.Hardness.partitionable_via_jq [ 1; 1; 1 ]);
  check_bool "equal pair" true (Jq.Hardness.partitionable_via_jq [ 5; 5 ]);
  check_bool "singleton cannot" false (Jq.Hardness.partitionable_via_jq [ 4 ])

let test_hardness_signed_sums_mass () =
  let sums = Jq.Hardness.signed_sums [ 1; 2 ] in
  check_int "four signed sums" 4 (List.length sums);
  let total = List.fold_left (fun acc (_, p) -> acc +. p) 0. sums in
  check_close 1e-9 "mass sums to 1" 1. total;
  (* Symmetric keys: -3, -1, 1, 3. *)
  Alcotest.(check (list int)) "keys" [ -3; -1; 1; 3 ] (List.map fst sums)

let test_hardness_jury_qualities () =
  let jury = Jq.Hardness.jury_of_instance [ 1; 2; 3 ] in
  Array.iter (fun q -> check_bool "above 1/2" true (q > 0.5 && q < 1.)) jury;
  check_bool "monotone in a_i" true (jury.(0) < jury.(1) && jury.(1) < jury.(2));
  Alcotest.check_raises "positivity" (Invalid_argument "Hardness: integers must be positive")
    (fun () -> ignore (Jq.Hardness.jury_of_instance [ 0 ]))

(* ---- Online vs static consistency ------------------------------------------- *)

let test_online_with_full_pool_matches_bv_jq () =
  (* With an unbounded budget and confidence 1-epsilon unreachable, the
     adaptive collector asks everyone — and BV over everyone realizes the
     pool's full-jury JQ. *)
  let rng = Prob.Rng.create 99 in
  let pool =
    Workers.Pool.of_list
      (List.init 9 (fun id ->
           Workers.Worker.make ~id ~quality:(0.55 +. (0.04 *. float_of_int id)) ~cost:0.01 ()))
  in
  let predicted = Optjs.jury_quality_exact ~alpha:0.5 pool in
  let s =
    Crowd.Online.simulate_many rng ~policy:Crowd.Online.By_quality ~confidence:1.0
      ~budget:10. ~alpha:0.5 ~tasks:20_000 pool
  in
  check_close 0.012 "exhaustive adaptive = full-jury BV" predicted
    s.Crowd.Online.accuracy;
  check_close 1e-9 "asked everyone" 9. s.Crowd.Online.mean_votes

(* ---- CSV pools through the whole stack ---------------------------------------- *)

let test_csv_pool_through_jsp () =
  let csv = Workers.Pool_io.to_csv_string (Workers.Generator.figure1_pool ()) in
  let pool = Workers.Pool_io.of_csv_string csv in
  let r = Optjs.select_jury_exact ~alpha:0.5 ~budget:15. pool in
  check_close 1e-6 "figure-1 answer from CSV" 0.845 r.Jsp.Solver.score

let () =
  Alcotest.run "integration"
    [
      ( "jq-consistency",
        [ Alcotest.test_case "four computations agree" `Slow test_four_jq_computations_agree ] );
      ( "campaigns",
        [
          Alcotest.test_case "OPTJS vs MVJS end-to-end" `Slow test_campaign_optjs_beats_mvjs;
          Alcotest.test_case "JQ forecasts accuracy" `Slow
            test_campaign_accuracy_matches_predicted_jq;
          Alcotest.test_case "AMT dataset pipeline" `Slow test_campaign_on_amt_dataset;
        ] );
      ( "hardness",
        [
          test_hardness_reduction_agrees;
          Alcotest.test_case "known instances" `Quick test_hardness_known_instances;
          Alcotest.test_case "signed sums" `Quick test_hardness_signed_sums_mass;
          Alcotest.test_case "constructed jury" `Quick test_hardness_jury_qualities;
        ] );
      ( "online",
        [
          Alcotest.test_case "exhaustive adaptive = BV JQ" `Slow
            test_online_with_full_pool_matches_bv_jq;
        ] );
      ( "io",
        [ Alcotest.test_case "CSV pool through JSP" `Quick test_csv_pool_through_jsp ] );
    ]
