(* Tests for jury selection: budgets, objectives, exhaustive search,
   fast paths (Lemmas 1-2), simulated annealing (Algorithms 3-4), greedy
   baselines, the MVJS baseline, and budget-quality tables. *)

let check_float = Alcotest.(check (float 1e-9))
let check_close eps = Alcotest.(check (float eps))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let w ~id ~q ~c = Workers.Worker.make ~id ~quality:q ~cost:c ()

let fig1 = Workers.Generator.figure1_pool ()

(* Random pools for property tests: up to 8 workers, reliable qualities,
   costs in (0, 2]. *)
let pool_gen =
  QCheck2.Gen.(
    int_range 1 8 >>= fun n ->
    array_size (return n)
      (pair (float_range 0.5 0.99) (float_range 0.05 2.))
    >>= fun specs ->
    return
      (Workers.Pool.of_list
         (List.mapi
            (fun id (q, c) -> w ~id ~q ~c)
            (Array.to_list specs))))

let budget_gen = QCheck2.Gen.float_range 0. 6.

(* ---- Budget ------------------------------------------------------------ *)

let test_budget_feasible () =
  check_bool "within" true (Jsp.Budget.feasible ~budget:20. (Workers.Pool.take 3 fig1));
  check_bool "exact boundary" true
    (Jsp.Budget.feasible ~budget:37. fig1);
  check_bool "over" false (Jsp.Budget.feasible ~budget:36.9 fig1);
  check_close 1e-9 "remaining" 3. (Jsp.Budget.remaining ~budget:40. fig1)

let test_budget_validate () =
  Alcotest.check_raises "negative" (Invalid_argument "Budget.validate: negative budget")
    (fun () -> Jsp.Budget.validate (-1.))

let test_budget_helpers () =
  (match Jsp.Budget.cheapest_cost fig1 with
  | Some c -> check_float "cheapest is F" 2. c
  | None -> Alcotest.fail "cheapest");
  check_bool "empty pool" true (Jsp.Budget.cheapest_cost (Workers.Pool.of_list []) = None);
  let affordable = Jsp.Budget.affordable_workers ~budget:5. ~spent:0. fig1 in
  check_int "affordable at 5" 4 (Workers.Pool.size affordable)

(* ---- Objective ----------------------------------------------------------- *)

let test_objective_empty () =
  let empty = Workers.Pool.of_list [] in
  let bucket = Jsp.Objective.bv_bucket () in
  check_float "bucket empty" 0.7 (bucket.Jsp.Objective.score ~alpha:0.7 empty);
  check_float "exact empty" 0.7 (Jsp.Objective.bv_exact.Jsp.Objective.score ~alpha:0.7 empty);
  (* MV with no jury answers 1; correct with probability 1 - alpha. *)
  check_close 1e-12 "mv empty" 0.3
    (Jsp.Objective.mv_closed.Jsp.Objective.score ~alpha:0.7 empty)

let test_objective_agreement =
  qtest "bucket objective tracks exact objective" pool_gen (fun pool ->
      let bucket = Jsp.Objective.bv_bucket ~num_buckets:2000 () in
      Float.abs
        (bucket.Jsp.Objective.score ~alpha:0.5 pool
        -. Jsp.Objective.bv_exact.Jsp.Objective.score ~alpha:0.5 pool)
      < 0.01)

(* ---- Enumerate ------------------------------------------------------------ *)

(* Reference: brute-force the best feasible subset with the exact objective. *)
let brute_force objective ~alpha ~budget pool =
  Seq.fold_left
    (fun best jury ->
      if not (Jsp.Budget.feasible ~budget jury) then best
      else
        let score = objective.Jsp.Objective.score ~alpha jury in
        match best with
        | Some (_, s) when s >= score -> best
        | _ -> Some (jury, score))
    None (Workers.Pool.subsets pool)

let test_enumerate_matches_brute_force =
  qtest ~count:60 "enumerate finds the optimum" (QCheck2.Gen.pair pool_gen budget_gen)
    (fun (pool, budget) ->
      let r = Jsp.Enumerate.solve Jsp.Objective.bv_exact ~alpha:0.5 ~budget pool in
      match brute_force Jsp.Objective.bv_exact ~alpha:0.5 ~budget pool with
      | Some (_, best) -> Float.abs (r.Jsp.Solver.score -. best) < 1e-9
      | None -> false)

let test_enumerate_feasible =
  qtest "enumerate result is feasible" (QCheck2.Gen.pair pool_gen budget_gen)
    (fun (pool, budget) ->
      let r = Jsp.Enumerate.solve_bv ~alpha:0.5 ~budget pool in
      Jsp.Budget.feasible ~budget r.Jsp.Solver.jury)

let test_enumerate_fig1 () =
  (* The paper's budget-quality table (Figure 1): JQ values are exact. *)
  let solve b = Jsp.Enumerate.solve Jsp.Objective.bv_exact ~alpha:0.5 ~budget:b fig1 in
  check_close 1e-9 "B=5" 0.75 (solve 5.).Jsp.Solver.score;
  check_close 1e-9 "B=10" 0.80 (solve 10.).Jsp.Solver.score;
  check_close 1e-9 "B=15" 0.845 (solve 15.).Jsp.Solver.score;
  check_close 1e-9 "B=20" 0.8695 (solve 20.).Jsp.Solver.score

let test_enumerate_zero_budget () =
  let r = Jsp.Enumerate.solve_bv ~alpha:0.5 ~budget:0. fig1 in
  check_int "empty jury" 0 (Workers.Pool.size r.Jsp.Solver.jury);
  check_float "coin score" 0.5 r.Jsp.Solver.score

let test_enumerate_pool_cap () =
  let big =
    Workers.Pool.of_list (List.init 21 (fun id -> w ~id ~q:0.7 ~c:1.))
  in
  Alcotest.check_raises "cap"
    (Invalid_argument "Enumerate.solve: pool too large for exhaustive search")
    (fun () -> ignore (Jsp.Enumerate.solve_bv ~alpha:0.5 ~budget:5. big))

(* ---- Special fast paths ------------------------------------------------------ *)

let test_special_classify () =
  check_bool "all affordable" true
    (Jsp.Special.classify ~budget:37. fig1 = Jsp.Special.All_affordable);
  check_bool "general" true
    (Jsp.Special.classify ~budget:10. fig1 = Jsp.Special.General);
  let uniform = Workers.Pool.of_list (List.init 5 (fun id -> w ~id ~q:0.7 ~c:2.)) in
  check_bool "uniform" true
    (Jsp.Special.classify ~budget:4. uniform = Jsp.Special.Uniform_cost 2.)

let test_special_all_affordable () =
  match Jsp.Special.solve Jsp.Objective.bv_exact ~alpha:0.5 ~budget:37. fig1 with
  | Some r -> check_int "everyone" 7 (Workers.Pool.size r.Jsp.Solver.jury)
  | None -> Alcotest.fail "fast path expected"

let test_special_uniform_topk () =
  let uniform =
    Workers.Pool.of_list
      [ w ~id:0 ~q:0.6 ~c:2.; w ~id:1 ~q:0.9 ~c:2.; w ~id:2 ~q:0.8 ~c:2.; w ~id:3 ~q:0.7 ~c:2. ]
  in
  (match Jsp.Special.solve Jsp.Objective.bv_exact ~alpha:0.5 ~budget:4.5 uniform with
  | Some r ->
      check_int "two workers" 2 (Workers.Pool.size r.Jsp.Solver.jury);
      Alcotest.(check (array (float 1e-9))) "top 2 by quality" [| 0.9; 0.8 |]
        (Workers.Pool.qualities r.Jsp.Solver.jury)
  | None -> Alcotest.fail "fast path expected");
  (* Fast-path answer equals the exhaustive optimum (Lemma 2). *)
  let exact = Jsp.Enumerate.solve Jsp.Objective.bv_exact ~alpha:0.5 ~budget:4.5 uniform in
  (match Jsp.Special.solve Jsp.Objective.bv_exact ~alpha:0.5 ~budget:4.5 uniform with
  | Some r -> check_close 1e-9 "matches exact" exact.Jsp.Solver.score r.Jsp.Solver.score
  | None -> Alcotest.fail "fast path expected")

let test_special_none_for_general () =
  check_bool "general has no fast path" true
    (Jsp.Special.solve Jsp.Objective.bv_exact ~alpha:0.5 ~budget:10. fig1 = None)

let test_top_k () =
  let top = Jsp.Special.top_k_by_quality 3 fig1 in
  Alcotest.(check (array (float 1e-9))) "order" [| 0.8; 0.77; 0.75 |]
    (Workers.Pool.qualities top)

(* ---- Annealing (Algorithms 3-4) ------------------------------------------------ *)

let light_params =
  { Jsp.Annealing.default_params with epsilon = 1e-4 }

let test_annealing_feasible =
  qtest ~count:60 "annealed jury is feasible"
    (QCheck2.Gen.triple pool_gen budget_gen (QCheck2.Gen.int_range 0 1000))
    (fun (pool, budget, seed) ->
      let rng = Prob.Rng.create seed in
      let r =
        Jsp.Annealing.solve ~params:light_params (Jsp.Objective.bv_bucket ()) ~rng
          ~alpha:0.5 ~budget pool
      in
      Jsp.Budget.feasible ~budget r.Jsp.Solver.jury)

let test_annealing_deterministic () =
  let pool =
    Workers.Pool.of_list (List.init 8 (fun id -> w ~id ~q:(0.55 +. (0.05 *. float_of_int id)) ~c:(1. +. (0.3 *. float_of_int id))))
  in
  let solve seed =
    Jsp.Annealing.solve ~params:light_params (Jsp.Objective.bv_bucket ())
      ~rng:(Prob.Rng.create seed) ~alpha:0.5 ~budget:4. pool
  in
  let a = solve 5 and b = solve 5 in
  check_bool "same jury" true (Workers.Pool.equal a.Jsp.Solver.jury b.Jsp.Solver.jury);
  check_float "same score" a.Jsp.Solver.score b.Jsp.Solver.score

let test_annealing_near_optimal () =
  (* Statistical: across seeds and pools, annealing lands within 2% of the
     exhaustive optimum (the paper's Table 3 shows the same concentration). *)
  let rng = Prob.Rng.create 2024 in
  let worst_gap = ref 0. in
  for _ = 1 to 25 do
    let pool =
      Workers.Generator.gaussian_pool rng Workers.Generator.default 10
    in
    let budget = 0.3 in
    let objective = Jsp.Objective.bv_bucket () in
    let star = Jsp.Enumerate.solve objective ~alpha:0.5 ~budget pool in
    let hat =
      Jsp.Annealing.solve ~params:light_params objective ~rng ~alpha:0.5 ~budget pool
    in
    worst_gap := Float.max !worst_gap (star.Jsp.Solver.score -. hat.Jsp.Solver.score)
  done;
  check_bool "within 2% of optimal" true (!worst_gap < 0.02)

let test_annealing_keep_best () =
  (* keep_best can only improve on the literal final state. *)
  let pool = Workers.Generator.gaussian_pool (Prob.Rng.create 1) Workers.Generator.default 12 in
  let objective = Jsp.Objective.bv_bucket () in
  let final =
    Jsp.Annealing.solve
      ~params:{ light_params with keep_best = false }
      objective ~rng:(Prob.Rng.create 3) ~alpha:0.5 ~budget:0.3 pool
  in
  let best =
    Jsp.Annealing.solve
      ~params:{ light_params with keep_best = true }
      objective ~rng:(Prob.Rng.create 3) ~alpha:0.5 ~budget:0.3 pool
  in
  check_bool "best >= final" true (best.Jsp.Solver.score >= final.Jsp.Solver.score -. 1e-12)

let test_annealing_empty_pool () =
  let r =
    Jsp.Annealing.solve (Jsp.Objective.bv_bucket ()) ~rng:(Prob.Rng.create 0)
      ~alpha:0.5 ~budget:1. (Workers.Pool.of_list [])
  in
  check_int "empty jury" 0 (Workers.Pool.size r.Jsp.Solver.jury)

let test_annealing_params_validation () =
  let bad f =
    Alcotest.check_raises "params" (Invalid_argument f) (fun () ->
        ignore
          (Jsp.Annealing.solve
             ~params:
               (match f with
               | "Annealing: epsilon <= 0" -> { light_params with epsilon = 0. }
               | "Annealing: cooling <= 1" -> { light_params with cooling = 1. }
               | _ -> { light_params with t_initial = 1e-9; epsilon = 1e-4 })
             (Jsp.Objective.bv_bucket ()) ~rng:(Prob.Rng.create 0) ~alpha:0.5
             ~budget:1. fig1))
  in
  bad "Annealing: epsilon <= 0";
  bad "Annealing: cooling <= 1";
  bad "Annealing: t_initial < epsilon"

let test_annealing_moves_override () =
  let r =
    Jsp.Annealing.solve
      ~params:{ light_params with moves_per_temp = Some 3 }
      (Jsp.Objective.bv_bucket ()) ~rng:(Prob.Rng.create 0) ~alpha:0.5 ~budget:10.
      fig1
  in
  check_bool "still feasible" true (Jsp.Budget.feasible ~budget:10. r.Jsp.Solver.jury)

(* ---- Annealing: memoized + incremental engines ----------------------------- *)

let test_annealing_cached_bit_identical =
  (* Memoization must not perturb the search: the objective is pure, and the
     Boltzmann draw is skipped exactly when it was skipped uncached. *)
  qtest ~count:40 "cached annealing = uncached annealing, bit for bit"
    (QCheck2.Gen.triple pool_gen budget_gen (QCheck2.Gen.int_range 0 1000))
    (fun (pool, budget, seed) ->
      let solve cache =
        Jsp.Annealing.solve ~params:light_params ~cache
          (Jsp.Objective.bv_bucket ()) ~rng:(Prob.Rng.create seed) ~alpha:0.5
          ~budget pool
      in
      let plain = solve false and cached = solve true in
      Workers.Pool.equal plain.Jsp.Solver.jury cached.Jsp.Solver.jury
      && plain.Jsp.Solver.score = cached.Jsp.Solver.score
      && cached.Jsp.Solver.cache <> None
      && plain.Jsp.Solver.cache = None
      && cached.Jsp.Solver.evaluations <= plain.Jsp.Solver.evaluations)

let test_annealing_incremental_cached_reproducible =
  (* Unlike the pure objective above, the incremental estimate is not a
     bit-pure function of the selection: deconvolution drift means even an
     uncached run scores a revisited jury ulps apart from the first visit,
     and a flipped `delta >= 0.` consumes an extra Boltzmann draw — so
     cached-vs-uncached bit-identity is unattainable here by construction.
     What must hold: each cache mode is exactly reproducible under a fixed
     seed, returns a feasible jury, and the cached run never evaluates
     more than the uncached one. *)
  qtest ~count:40 "cached incremental annealing is reproducible + feasible"
    (QCheck2.Gen.triple pool_gen budget_gen (QCheck2.Gen.int_range 0 1000))
    (fun (pool, budget, seed) ->
      let solve cache =
        Jsp.Annealing.solve_incremental ~params:light_params ~cache
          (Jsp.Objective.bv_bucket_incremental ())
          ~rng:(Prob.Rng.create seed) ~alpha:0.5 ~budget pool
      in
      let plain = solve false and cached = solve true in
      let again = solve true in
      Workers.Pool.equal cached.Jsp.Solver.jury again.Jsp.Solver.jury
      && cached.Jsp.Solver.score = again.Jsp.Solver.score
      && Jsp.Budget.feasible ~budget plain.Jsp.Solver.jury
      && Jsp.Budget.feasible ~budget cached.Jsp.Solver.jury
      && cached.Jsp.Solver.cache <> None
      && plain.Jsp.Solver.cache = None
      && cached.Jsp.Solver.evaluations <= plain.Jsp.Solver.evaluations)

let test_annealing_incremental_feasible =
  qtest ~count:60 "incremental annealed juries are feasible (both objectives)"
    (QCheck2.Gen.triple pool_gen budget_gen (QCheck2.Gen.int_range 0 1000))
    (fun (pool, budget, seed) ->
      let optjs =
        Jsp.Annealing.solve_optjs ~params:light_params
          ~rng:(Prob.Rng.create seed) ~alpha:0.5 ~budget pool
      in
      let mvjs =
        Jsp.Annealing.solve_mvjs ~params:light_params
          ~rng:(Prob.Rng.create seed) ~alpha:0.5 ~budget pool
      in
      Jsp.Budget.feasible ~budget optjs.Jsp.Solver.jury
      && Jsp.Budget.feasible ~budget mvjs.Jsp.Solver.jury)

let test_annealing_incremental_deterministic () =
  let pool = Workers.Generator.gaussian_pool (Prob.Rng.create 11) Workers.Generator.default 12 in
  let solve () =
    Jsp.Annealing.solve_optjs ~params:light_params ~rng:(Prob.Rng.create 7)
      ~alpha:0.5 ~budget:0.3 pool
  in
  let a = solve () and b = solve () in
  check_bool "same jury" true (Workers.Pool.equal a.Jsp.Solver.jury b.Jsp.Solver.jury);
  check_float "same score" a.Jsp.Solver.score b.Jsp.Solver.score

let test_annealing_incremental_near_optimal () =
  (* The incremental fixed-width estimate steers the search to juries whose
     (from-scratch rescored) JQ stays close to the exhaustive optimum.
     Best-of-3 seeds: a single annealing run can be absorbed — free adds
     greedily fill the budget with cheap mediocre workers until no swap to
     any remaining worker is feasible — which is exactly why the restart
     harness exists; a trapped trajectory says nothing about the estimate
     quality under test here. *)
  let rng = Prob.Rng.create 2024 in
  let worst_gap = ref 0. in
  for _ = 1 to 25 do
    let pool = Workers.Generator.gaussian_pool rng Workers.Generator.default 10 in
    let budget = 0.3 in
    let star = Jsp.Enumerate.solve (Jsp.Objective.bv_bucket ()) ~alpha:0.5 ~budget pool in
    let base_seed = Prob.Rng.int rng 1_000_000 in
    let best = ref neg_infinity in
    for restart = 0 to 2 do
      let hat =
        Jsp.Annealing.solve_optjs ~params:light_params
          ~rng:(Prob.Rng.create (base_seed + restart))
          ~alpha:0.5 ~budget pool
      in
      best := Float.max !best hat.Jsp.Solver.score
    done;
    worst_gap := Float.max !worst_gap (star.Jsp.Solver.score -. !best)
  done;
  check_bool "within 2% of optimal" true (!worst_gap < 0.02)

let test_annealing_mvjs_incremental_score_scale () =
  (* The reported score must be the closed-form MV JQ of the returned jury
     (the incremental engine re-scores through Objective.mv_closed). *)
  let pool = Workers.Generator.gaussian_pool (Prob.Rng.create 5) Workers.Generator.default 12 in
  let r =
    Jsp.Annealing.solve_mvjs ~params:light_params ~rng:(Prob.Rng.create 9)
      ~alpha:0.4 ~budget:0.3 pool
  in
  check_close 1e-9 "score = Mv_closed.jq of jury"
    (Jq.Mv_closed.jq ~alpha:0.4 ~qualities:(Workers.Pool.qualities r.Jsp.Solver.jury))
    r.Jsp.Solver.score

let test_annealing_cache_stats_populated () =
  let pool = Workers.Generator.gaussian_pool (Prob.Rng.create 2) Workers.Generator.default 20 in
  let r =
    Jsp.Annealing.solve_optjs ~rng:(Prob.Rng.create 1) ~alpha:0.5 ~budget:0.3 pool
  in
  match r.Jsp.Solver.cache with
  | None -> Alcotest.fail "cache stats missing"
  | Some s ->
      check_bool "misses counted" true (s.Jsp.Objective_cache.misses > 0);
      (* The paper schedule cools through ~27 temperatures over a 20-worker
         pool: late phases revisit juries, so hits must show up. *)
      check_bool "hits counted" true (s.Jsp.Objective_cache.hits > 0);
      check_int "saved = hits" s.Jsp.Objective_cache.hits s.Jsp.Objective_cache.evals_saved;
      (* Misses are the only evaluations besides the final rescore. *)
      check_int "misses + rescore = evaluations" r.Jsp.Solver.evaluations
        (s.Jsp.Objective_cache.misses + 1)

let test_objective_cache_unit () =
  let c = Jsp.Objective_cache.create ~capacity:2 ~n:4 () in
  let sel = [| true; false; true; false |] in
  let k = Jsp.Objective_cache.key c sel in
  let calls = ref 0 in
  let f () = incr calls; 0.75 in
  check_float "miss evaluates" 0.75 (Jsp.Objective_cache.find_or_eval c k f);
  check_float "hit reuses" 0.75 (Jsp.Objective_cache.find_or_eval c k f);
  check_int "evaluated once" 1 !calls;
  (* key_swapped = key of the mutated selection. *)
  let k' = Jsp.Objective_cache.key_swapped c sel ~out:0 ~into:1 in
  let sel' = [| false; true; true; false |] in
  check_bool "swapped key matches" true (k' = Jsp.Objective_cache.key c sel');
  check_bool "distinct from original" true (k' <> k);
  (* Epoch eviction at capacity. *)
  ignore (Jsp.Objective_cache.find_or_eval c k' (fun () -> 0.5));
  ignore
    (Jsp.Objective_cache.find_or_eval c
       (Jsp.Objective_cache.key c [| false; false; false; true |])
       (fun () -> 0.25));
  let s = Jsp.Objective_cache.stats c in
  check_bool "eviction happened" true (s.Jsp.Objective_cache.evictions >= 1);
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Objective_cache: selection length mismatch") (fun () ->
      ignore (Jsp.Objective_cache.key c [| true |]))

(* ---- Greedy -------------------------------------------------------------------- *)

let test_greedy_feasible =
  qtest "greedy juries are feasible" (QCheck2.Gen.pair pool_gen budget_gen)
    (fun (pool, budget) ->
      let o = Jsp.Objective.bv_bucket () in
      List.for_all
        (fun solve ->
          Jsp.Budget.feasible ~budget (solve o ~alpha:0.5 ~budget pool).Jsp.Solver.jury)
        [ Jsp.Greedy.by_quality; Jsp.Greedy.by_cheapest; Jsp.Greedy.by_density ])

let test_greedy_by_quality_order () =
  let r = Jsp.Greedy.by_quality (Jsp.Objective.bv_bucket ()) ~alpha:0.5 ~budget:9. fig1 in
  (* Best affordable prefix by quality: C (0.8, $6) then G (0.75, $3). *)
  Alcotest.(check (array (float 1e-9))) "C then G" [| 0.8; 0.75 |]
    (Workers.Pool.qualities r.Jsp.Solver.jury)

let test_greedy_cheapest_maximizes_size =
  qtest "cheapest-first picks at least as many workers"
    (QCheck2.Gen.pair pool_gen budget_gen) (fun (pool, budget) ->
      let o = Jsp.Objective.bv_bucket () in
      let cheap = Jsp.Greedy.by_cheapest o ~alpha:0.5 ~budget pool in
      let qual = Jsp.Greedy.by_quality o ~alpha:0.5 ~budget pool in
      Workers.Pool.size cheap.Jsp.Solver.jury >= Workers.Pool.size qual.Jsp.Solver.jury)

let test_greedy_best_of_all =
  qtest "best_of_all dominates each greedy" (QCheck2.Gen.pair pool_gen budget_gen)
    (fun (pool, budget) ->
      let o = Jsp.Objective.bv_bucket () in
      let best = Jsp.Greedy.best_of_all o ~alpha:0.5 ~budget pool in
      List.for_all
        (fun solve ->
          (solve o ~alpha:0.5 ~budget pool).Jsp.Solver.score
          <= best.Jsp.Solver.score +. 1e-12)
        [ Jsp.Greedy.by_quality; Jsp.Greedy.by_cheapest; Jsp.Greedy.by_density ])

(* ---- MVJS baseline --------------------------------------------------------------- *)

let test_mvjs_score_is_mv_jq =
  qtest ~count:60 "MVJS reports MV JQ of its jury"
    (QCheck2.Gen.pair pool_gen budget_gen) (fun (pool, budget) ->
      let r =
        Jsp.Mvjs.select ~params:light_params ~rng:(Prob.Rng.create 0) ~alpha:0.5
          ~budget pool
      in
      Float.abs
        (r.Jsp.Solver.score -. Jsp.Mvjs.jq_of_jury ~alpha:0.5 r.Jsp.Solver.jury)
      < 1e-9)

let test_mvjs_exact_optimal =
  qtest ~count:40 "exhaustive MVJS is optimal for MV"
    (QCheck2.Gen.pair pool_gen budget_gen) (fun (pool, budget) ->
      let r = Jsp.Mvjs.select_exact ~alpha:0.5 ~budget pool in
      match brute_force Jsp.Objective.mv_closed ~alpha:0.5 ~budget pool with
      | Some (_, best) -> Float.abs (r.Jsp.Solver.score -. best) < 1e-9
      | None -> false)

let test_optjs_beats_mvjs =
  (* The headline comparison: under the same budget, the BV-optimal jury's
     true JQ is at least the MV jury's true JQ. *)
  qtest ~count:60 "OPTJS jury (BV JQ) >= MVJS jury (MV JQ)"
    (QCheck2.Gen.pair pool_gen budget_gen) (fun (pool, budget) ->
      let opt = Jsp.Enumerate.solve Jsp.Objective.bv_exact ~alpha:0.5 ~budget pool in
      let mv = Jsp.Mvjs.select_exact ~alpha:0.5 ~budget pool in
      opt.Jsp.Solver.score >= mv.Jsp.Solver.score -. 1e-9)

(* ---- Table ------------------------------------------------------------------------- *)

let test_table_fig1 () =
  let table =
    Jsp.Table.build ~budgets:[ 5.; 10.; 15.; 20. ] fig1 ~solve:(fun ~budget pool ->
        Jsp.Enumerate.solve Jsp.Objective.bv_exact ~alpha:0.5 ~budget pool)
  in
  check_int "rows" 4 (List.length table);
  let qualities = List.map (fun (r : Jsp.Table.row) -> r.quality) table in
  Alcotest.(check (list (float 1e-9))) "paper qualities" [ 0.75; 0.80; 0.845; 0.8695 ]
    qualities;
  List.iter
    (fun (r : Jsp.Table.row) ->
      check_bool "required within budget" true (r.required <= r.budget +. 1e-9))
    table

let test_table_monotone_quality () =
  let table =
    Jsp.Table.build_exact ~num_buckets:2000 ~alpha:0.5
      ~budgets:[ 2.; 5.; 9.; 14.; 20.; 37. ] fig1
  in
  let rec check_monotone = function
    | (a : Jsp.Table.row) :: (b : Jsp.Table.row) :: rest ->
        check_bool "quality nondecreasing in budget" true (b.quality >= a.quality -. 1e-6);
        check_monotone (b :: rest)
    | _ -> ()
  in
  check_monotone table

(* ---- Frontier ------------------------------------------------------------------ *)

let test_frontier_fig1 () =
  let points = Jsp.Frontier.exact Jsp.Objective.bv_exact ~alpha:0.5 fig1 in
  (* Strictly increasing in both coordinates. *)
  let rec strictly_monotone = function
    | (a : Jsp.Frontier.point) :: (b : Jsp.Frontier.point) :: rest ->
        check_bool "cost increases" true (b.cost > a.cost);
        check_bool "quality increases" true (b.quality > a.quality);
        strictly_monotone (b :: rest)
    | _ -> ()
  in
  strictly_monotone points;
  (* Contains the Figure-1 optimal points. *)
  let has cost quality =
    List.exists
      (fun (p : Jsp.Frontier.point) ->
        Float.abs (p.cost -. cost) < 1e-9 && Float.abs (p.quality -. quality) < 1e-9)
      points
  in
  check_bool "(3, 75%)" true (has 3. 0.75);
  check_bool "(6, 80%)" true (has 6. 0.80);
  check_bool "(14, 84.5%)" true (has 14. 0.845);
  check_bool "(18, 86.95%)" true (has 18. 0.8695);
  (* The full pool is the most expensive Pareto point (Lemma 1). *)
  (match List.rev points with
  | last :: _ -> check_close 1e-9 "everyone at the top" 37. last.Jsp.Frontier.cost
  | [] -> Alcotest.fail "empty frontier")

let test_frontier_queries () =
  let points = Jsp.Frontier.exact Jsp.Objective.bv_exact ~alpha:0.5 fig1 in
  check_close 1e-9 "quality_at 15" 0.845 (Jsp.Frontier.quality_at points ~budget:15.);
  check_close 1e-9 "quality_at 0" 0.5 (Jsp.Frontier.quality_at points ~budget:0.);
  (match Jsp.Frontier.cheapest_for points ~quality:0.84 with
  | Some p -> check_close 1e-9 "cheapest for 84%" 14. p.Jsp.Frontier.cost
  | None -> Alcotest.fail "expected a point");
  check_bool "unreachable quality" true
    (Jsp.Frontier.cheapest_for points ~quality:0.999 = None)

let test_frontier_matches_enumerate =
  qtest ~count:40 "frontier step function = per-budget exhaustive optimum"
    (QCheck2.Gen.pair pool_gen budget_gen) (fun (pool, budget) ->
      let points = Jsp.Frontier.exact Jsp.Objective.bv_exact ~alpha:0.5 pool in
      let star = Jsp.Enumerate.solve Jsp.Objective.bv_exact ~alpha:0.5 ~budget pool in
      Float.abs (Jsp.Frontier.quality_at points ~budget -. star.Jsp.Solver.score)
      < 1e-9)

let test_frontier_sampled_subset () =
  let points =
    Jsp.Frontier.sampled
      ~solve:(fun ~budget pool ->
        Jsp.Enumerate.solve Jsp.Objective.bv_exact ~alpha:0.5 ~budget pool)
      ~budgets:[ 3.; 6.; 14.; 18. ] fig1
  in
  check_int "four dominant points" 4 (List.length points)

(* ---- Beam -------------------------------------------------------------------- *)

let test_beam_feasible =
  qtest "beam jury is feasible" (QCheck2.Gen.pair pool_gen budget_gen)
    (fun (pool, budget) ->
      let r = Jsp.Beam.solve (Jsp.Objective.bv_bucket ()) ~alpha:0.5 ~budget pool in
      Jsp.Budget.feasible ~budget r.Jsp.Solver.jury)

let test_beam_wide_is_exact =
  (* With a beam wider than 2^N the search is exhaustive over the branch
     tree, hence optimal. *)
  qtest ~count:40 "wide beam matches exhaustive optimum"
    (QCheck2.Gen.pair pool_gen budget_gen) (fun (pool, budget) ->
      let objective = Jsp.Objective.bv_exact in
      let beam = Jsp.Beam.solve ~width:1024 objective ~alpha:0.5 ~budget pool in
      let star = Jsp.Enumerate.solve objective ~alpha:0.5 ~budget pool in
      Float.abs (beam.Jsp.Solver.score -. star.Jsp.Solver.score) < 1e-9)

let test_beam_dominates_greedy =
  qtest ~count:40 "beam(32) at least as good as greedy"
    (QCheck2.Gen.pair pool_gen budget_gen) (fun (pool, budget) ->
      let objective = Jsp.Objective.bv_bucket () in
      let beam = Jsp.Beam.solve objective ~alpha:0.5 ~budget pool in
      let greedy = Jsp.Greedy.best_of_all objective ~alpha:0.5 ~budget pool in
      beam.Jsp.Solver.score >= greedy.Jsp.Solver.score -. 1e-9)

let test_beam_deterministic () =
  let pool = Workers.Generator.gaussian_pool (Prob.Rng.create 5) Workers.Generator.default 15 in
  let solve () = Jsp.Beam.solve (Jsp.Objective.bv_bucket ()) ~alpha:0.5 ~budget:0.3 pool in
  let a = solve () and b = solve () in
  check_bool "same jury" true (Workers.Pool.equal a.Jsp.Solver.jury b.Jsp.Solver.jury)

let test_beam_validation () =
  Alcotest.check_raises "width" (Invalid_argument "Beam.solve: width <= 0") (fun () ->
      ignore (Jsp.Beam.solve ~width:0 (Jsp.Objective.bv_bucket ()) ~alpha:0.5 ~budget:1. fig1))

(* ---- Sensitivity ----------------------------------------------------------------- *)

let test_sensitivity_zero_noise () =
  let rng = Prob.Rng.create 88 in
  let pool = Workers.Generator.gaussian_pool rng Workers.Generator.default 9 in
  let o =
    Jsp.Sensitivity.measure rng ~samples:5 ~alpha:0.5 ~budget:0.3 ~sigma:0. pool
  in
  check_close 1e-9 "no evaluation error at sigma 0" 0. o.Jsp.Sensitivity.evaluation_error;
  check_close 1e-9 "no regret at sigma 0" 0. o.Jsp.Sensitivity.selection_regret

let test_sensitivity_grows_with_noise () =
  let pool =
    Workers.Generator.gaussian_pool (Prob.Rng.create 89) Workers.Generator.default 9
  in
  let run sigma =
    Jsp.Sensitivity.measure (Prob.Rng.create 90) ~samples:30 ~alpha:0.5
      ~budget:0.3 ~sigma pool
  in
  let small = run 0.02 and large = run 0.15 in
  check_bool "evaluation error grows" true
    (large.Jsp.Sensitivity.evaluation_error
    >= small.Jsp.Sensitivity.evaluation_error -. 0.002);
  check_bool "regret nonnegative" true (small.Jsp.Sensitivity.selection_regret >= 0.)

let test_sensitivity_perturb_ranges =
  qtest ~count:50 "perturbed qualities stay in [0.5, 0.99]"
    QCheck2.Gen.(int_range 0 5_000) (fun seed ->
      let rng = Prob.Rng.create seed in
      let pool = Workers.Generator.gaussian_pool rng Workers.Generator.default 10 in
      let noisy = Jsp.Sensitivity.perturb rng ~sigma:0.3 pool in
      Workers.Pool.size noisy = 10
      && Array.for_all
           (fun q -> q >= 0.5 && q <= 0.99)
           (Workers.Pool.qualities noisy))

let test_sensitivity_validation () =
  let rng = Prob.Rng.create 0 in
  Alcotest.check_raises "sigma" (Invalid_argument "Sensitivity.measure: sigma")
    (fun () ->
      ignore (Jsp.Sensitivity.measure rng ~alpha:0.5 ~budget:1. ~sigma:(-1.) fig1))

(* ---- Multi-class JSP (section 7) ------------------------------------------------ *)

let mc_worker rng id =
  let diag = 0.45 +. Prob.Rng.float rng 0.45 in
  let off = (1. -. diag) /. 2. in
  Workers.Confusion.make ~id
    ~matrix:
      [|
        [| diag; off; off |]; [| off; diag; off |]; [| off; off; diag |];
      |]
    ~cost:(0.02 +. Prob.Rng.float rng 0.2)
    ()

let uniform3 = [| 1. /. 3.; 1. /. 3.; 1. /. 3. |]

let test_multi_jsp_feasible_and_near_exact () =
  let rng = Prob.Rng.create 71 in
  let worst_gap = ref 0. in
  for _ = 1 to 10 do
    let candidates = Array.init 8 (fun id -> mc_worker rng id) in
    let budget = 0.3 in
    let exact = Jsp.Multi_jsp.exhaustive ~prior:uniform3 ~budget candidates in
    let selected = Jsp.Multi_jsp.select ~rng ~prior:uniform3 ~budget candidates in
    check_bool "feasible" true
      (Jsp.Multi_jsp.jury_cost selected.Jsp.Solver.jury <= budget +. 1e-9);
    worst_gap :=
      Float.max !worst_gap
        (exact.Jsp.Solver.score -. selected.Jsp.Solver.score)
  done;
  check_bool "selection near exhaustive" true (!worst_gap < 0.02)

let test_multi_jsp_greedy_feasible () =
  let rng = Prob.Rng.create 72 in
  let candidates = Array.init 10 (fun id -> mc_worker rng id) in
  let r = Jsp.Multi_jsp.greedy ~prior:uniform3 ~budget:0.25 candidates in
  check_bool "feasible" true (Jsp.Multi_jsp.jury_cost r.Jsp.Solver.jury <= 0.25 +. 1e-9);
  check_bool "score in range" true
    (r.Jsp.Solver.score >= (1. /. 3.) -. 1e-9 && r.Jsp.Solver.score <= 1.)

let test_multi_jsp_exhaustive_cap () =
  let rng = Prob.Rng.create 73 in
  let candidates = Array.init 16 (fun id -> mc_worker rng id) in
  Alcotest.check_raises "cap" (Invalid_argument "Multi_jsp.exhaustive: too many candidates")
    (fun () -> ignore (Jsp.Multi_jsp.exhaustive ~prior:uniform3 ~budget:1. candidates))

let test_multi_jsp_empty_budget () =
  let rng = Prob.Rng.create 74 in
  let candidates = Array.init 5 (fun id -> mc_worker rng id) in
  let r = Jsp.Multi_jsp.select ~rng ~prior:uniform3 ~budget:0. candidates in
  check_int "empty jury" 0 (Array.length r.Jsp.Solver.jury);
  check_close 1e-9 "prior argmax score" (1. /. 3.) r.Jsp.Solver.score

let test_table_csv () =
  let table =
    Jsp.Table.build ~budgets:[ 5. ] fig1 ~solve:(fun ~budget pool ->
        Jsp.Enumerate.solve Jsp.Objective.bv_exact ~alpha:0.5 ~budget pool)
  in
  let csv = Jsp.Table.to_csv table in
  check_bool "header" true (String.length csv > 0 && String.sub csv 0 6 = "budget")

let () =
  Alcotest.run "jsp"
    [
      ( "budget",
        [
          Alcotest.test_case "feasible" `Quick test_budget_feasible;
          Alcotest.test_case "validate" `Quick test_budget_validate;
          Alcotest.test_case "helpers" `Quick test_budget_helpers;
        ] );
      ( "objective",
        [
          Alcotest.test_case "empty juries" `Quick test_objective_empty;
          test_objective_agreement;
        ] );
      ( "enumerate",
        [
          test_enumerate_matches_brute_force;
          test_enumerate_feasible;
          Alcotest.test_case "figure 1 values" `Quick test_enumerate_fig1;
          Alcotest.test_case "zero budget" `Quick test_enumerate_zero_budget;
          Alcotest.test_case "pool cap" `Quick test_enumerate_pool_cap;
        ] );
      ( "special",
        [
          Alcotest.test_case "classify" `Quick test_special_classify;
          Alcotest.test_case "all affordable" `Quick test_special_all_affordable;
          Alcotest.test_case "uniform top-k" `Quick test_special_uniform_topk;
          Alcotest.test_case "general" `Quick test_special_none_for_general;
          Alcotest.test_case "top-k" `Quick test_top_k;
        ] );
      ( "annealing",
        [
          test_annealing_feasible;
          Alcotest.test_case "deterministic" `Quick test_annealing_deterministic;
          Alcotest.test_case "near optimal" `Slow test_annealing_near_optimal;
          Alcotest.test_case "keep_best" `Quick test_annealing_keep_best;
          Alcotest.test_case "empty pool" `Quick test_annealing_empty_pool;
          Alcotest.test_case "params validation" `Quick test_annealing_params_validation;
          Alcotest.test_case "moves override" `Quick test_annealing_moves_override;
          test_annealing_cached_bit_identical;
          test_annealing_incremental_cached_reproducible;
          test_annealing_incremental_feasible;
          Alcotest.test_case "incremental deterministic" `Quick
            test_annealing_incremental_deterministic;
          Alcotest.test_case "incremental near optimal" `Slow
            test_annealing_incremental_near_optimal;
          Alcotest.test_case "mvjs incremental score scale" `Quick
            test_annealing_mvjs_incremental_score_scale;
          Alcotest.test_case "cache stats populated" `Quick
            test_annealing_cache_stats_populated;
          Alcotest.test_case "objective cache unit" `Quick test_objective_cache_unit;
        ] );
      ( "greedy",
        [
          test_greedy_feasible;
          Alcotest.test_case "by quality order" `Quick test_greedy_by_quality_order;
          test_greedy_cheapest_maximizes_size;
          test_greedy_best_of_all;
        ] );
      ( "mvjs",
        [
          test_mvjs_score_is_mv_jq;
          test_mvjs_exact_optimal;
          test_optjs_beats_mvjs;
        ] );
      ( "frontier",
        [
          Alcotest.test_case "figure 1 frontier" `Quick test_frontier_fig1;
          Alcotest.test_case "queries" `Quick test_frontier_queries;
          test_frontier_matches_enumerate;
          Alcotest.test_case "sampled" `Quick test_frontier_sampled_subset;
        ] );
      ( "beam",
        [
          test_beam_feasible;
          test_beam_wide_is_exact;
          test_beam_dominates_greedy;
          Alcotest.test_case "deterministic" `Quick test_beam_deterministic;
          Alcotest.test_case "validation" `Quick test_beam_validation;
        ] );
      ( "sensitivity",
        [
          Alcotest.test_case "zero noise" `Quick test_sensitivity_zero_noise;
          Alcotest.test_case "grows with noise" `Slow test_sensitivity_grows_with_noise;
          test_sensitivity_perturb_ranges;
          Alcotest.test_case "validation" `Quick test_sensitivity_validation;
        ] );
      ( "multi_jsp",
        [
          Alcotest.test_case "near exhaustive" `Slow test_multi_jsp_feasible_and_near_exact;
          Alcotest.test_case "greedy feasible" `Quick test_multi_jsp_greedy_feasible;
          Alcotest.test_case "exhaustive cap" `Quick test_multi_jsp_exhaustive_cap;
          Alcotest.test_case "empty budget" `Quick test_multi_jsp_empty_budget;
        ] );
      ( "table",
        [
          Alcotest.test_case "figure 1" `Quick test_table_fig1;
          Alcotest.test_case "monotone quality" `Quick test_table_monotone_quality;
          Alcotest.test_case "csv" `Quick test_table_csv;
        ] );
    ]
